#!/usr/bin/env bash
# Profile a benchmark run with the in-tree sampling profiler and leave a
# chrome://tracing JSON next to the attribution table.
#
#   scripts/profile.sh                      # default kernel set, 997 Hz
#   scripts/profile.sh --bench gemm         # one kernel
#   scripts/profile.sh --engine wavm --dataset medium --iters 500
#   LB_PROF_HZ=4999 scripts/profile.sh      # custom sampling rate
#
# Traces land in target/prof/ (one file per run, open in
# chrome://tracing or https://ui.perfetto.dev). All remaining arguments
# are passed through to the prof_report binary.
set -euo pipefail
cd "$(dirname "$0")/.."

hz="${LB_PROF_HZ:-997}"
out="${LB_PROF_OUT:-target/prof}"
mkdir -p "$out"

echo "==> sampling at ${hz} Hz, traces in ${out}/"
LB_PROF="sample:${hz}" LB_PROF_OUT="$out" \
  cargo run --release -p lb-bench --bin prof_report -- "$@"
echo "==> traces:"
ls -1 "$out" | sed 's/^/    /'
