#!/usr/bin/env bash
# The full local CI gate. Run from anywhere; exits nonzero on the first
# failure. Mirrors what a PR must pass:
#
#   1. release build of the whole workspace
#   2. the full test suite (unit, integration, differential, fuzz)
#   3. the in-tree repo lint (unsafe/mmap/opcode containment, signal
#      safety, unwrap policy)
#   4. translation validation end-to-end + mutation detection
#   5. elision-regression gate: no PolyBench kernel's static elision
#      ratio may fall below its recorded floor (scripts/elision_floors.tsv)
#   6. profiler smoke: one kernel sampled at 997 Hz, the chrome trace
#      must re-parse and the attribution percentages must sum to ~100
#   7. serving smoke: a short closed-loop serve_bench run; every admitted
#      request must resolve exactly once and the latency histogram must
#      be populated
#   8. mid-tier smoke: a three-kernel baseline-vs-mid comparison; the mid
#      tier must compile, agree, and report register-home work
#   9. guard-optimization smoke: a three-kernel fusion-off-vs-on
#      comparison; checksums must be bit-identical and the trap-strategy
#      geomean speedup at least 1.03x
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

run cargo build --release --workspace
run cargo test -q --workspace
run cargo test -q -p lb-analysis --test repo_lint
run cargo test -q --test verify_e2e
run cargo test -q --test verify_mutation
run cargo run --release -p lb-bench --bin analysis_report -- \
  --check scripts/elision_floors.tsv
run env LB_PROF=sample:997 LB_PROF_OUT=target/prof-smoke \
  cargo run --release -p lb-bench --bin prof_report -- --smoke
run cargo run --release -p lb-bench --bin serve_bench -- --smoke true
run cargo run --release -p lb-bench --bin midtier_bench -- --smoke
run cargo run --release -p lb-bench --bin guardopt_bench -- --smoke

echo "==> ci.sh: all gates passed"
