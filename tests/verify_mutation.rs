//! Mutation testing for the translation validator: seed-deterministic,
//! targeted corruptions of the *guard machinery* in real compiled code
//! (every PolyBench kernel), each of which genuinely weakens the
//! linear-memory sandbox — and `lb-verify` must flag every one.
//!
//! Mutation classes (all are safety-breaking by construction):
//!
//! * `guard-cc-flip` — invert the `ja` of a trap guard (`ja` → `jbe`):
//!   out-of-bounds falls through to the access.
//! * `guard-nop` — NOP out a function's *first* guard (cmp + ja): its
//!   access runs unchecked (first guard, so no earlier check can cover it).
//! * `guard-cmp-disp` — repoint the guard compare from `mem_size`
//!   (`[r15+8]`) to `stack_limit` (`[r15+40]`): compares against a huge
//!   host address, the guard never fires.
//! * `guard-cmp-rexw` — drop REX.W from the guard compare: a 32-bit
//!   compare ignores the high bits of `addr + extent`.
//! * `guard-ja-rel` — corrupt the guard's branch displacement so the OOB
//!   path jumps mid-instruction (kept only when the target is *not* an
//!   instruction boundary — a boundary target keeps every access behind
//!   its own check at this tier, which is corrupted-but-not-unsafe).
//! * `access-disp` — grow an access displacement past its guarded extent:
//!   reads/writes up to 64 bytes beyond `mem_size` (the trap strategy's
//!   reservation is read-write, so nothing faults).
//! * `access-rexb` — flip REX.B on the access SIB base (`r14` → `rsi`):
//!   the access goes through an arbitrary host pointer.
//! * `clamp-cc-flip` / `clamp-nop` — invert or remove the clamp `cmova`:
//!   out-of-bounds indices are no longer redirected.

mod common;

use lb_chaos::SplitMix64;
use lb_core::BoundsStrategy;
use lb_jit::codegen::{compile_function, CompileParams, OptLevel};
use lb_verify::isa::{Cc, Inst, Reg, W};
use lb_verify::{decode::decode_all, verify_function, FuncInput};
use lb_wasm::PAGE_SIZE;

/// Per-function, per-class cap on generated mutants (keeps the sweep
/// seconds-fast while still sampling every kernel).
const MUTANTS_PER_CLASS: usize = 3;

const SEED: u64 = 0x1B5E_C0DE_D00D_F00D;

struct Ctx<'a> {
    module: &'a lb_wasm::Module,
    meta: &'a lb_wasm::ModuleMeta,
    strategy: BoundsStrategy,
    di: usize,
    mem_min_bytes: u64,
}

/// Instruction stream with byte extents: (offset, length, inst).
fn decode_spans(code: &[u8]) -> Vec<(usize, usize, Inst)> {
    let insts = decode_all(code).expect("unmutated code decodes");
    let mut spans = Vec::with_capacity(insts.len());
    for (i, &(off, inst)) in insts.iter().enumerate() {
        let end = insts.get(i + 1).map_or(code.len(), |&(o, _)| o);
        spans.push((off, end - off, inst));
    }
    spans
}

/// Index of the REX byte inside one instruction's bytes (skips mandatory
/// `66`/`F2`/`F3` prefixes).
fn rex_index(bytes: &[u8]) -> Option<usize> {
    for (i, &b) in bytes.iter().enumerate().take(3) {
        match b {
            0x66 | 0xF2 | 0xF3 => continue,
            0x40..=0x4F => return Some(i),
            _ => return None,
        }
    }
    None
}

/// The guard compare: `cmp r, [r15 + MEM_SIZE]`, 64-bit.
fn is_guard_cmp(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::CmpRm { w: W::W64, m, .. }
            if m.base == Reg::R15 && m.index.is_none() && m.disp == 8
    )
}

fn has_r14_operand(inst: &Inst) -> Option<lb_verify::isa::Mem> {
    let m = match *inst {
        Inst::MovRm { m, .. }
        | Inst::MovMr { m, .. }
        | Inst::MovMr8 { m, .. }
        | Inst::MovMr16 { m, .. }
        | Inst::Movzx8 { m, .. }
        | Inst::Movzx16 { m, .. }
        | Inst::Movsx8 { m, .. }
        | Inst::Movsx16 { m, .. }
        | Inst::MovsxdM { m, .. }
        | Inst::Fload { m, .. }
        | Inst::Fstore { m, .. } => m,
        _ => return None,
    };
    (m.base == Reg::R14).then_some(m)
}

/// One byte-level corruption of compiled code.
struct Mutant {
    class: &'static str,
    /// (offset, replacement bytes) patches.
    patches: Vec<(usize, Vec<u8>)>,
}

fn nop_patch(off: usize, len: usize) -> (usize, Vec<u8>) {
    (off, vec![0x90; len])
}

/// Enumerate every safety-breaking mutant of `code` for the given
/// strategy (see the module docs for the class definitions).
fn enumerate_mutants(code: &[u8], strategy: BoundsStrategy) -> Vec<Mutant> {
    let spans = decode_spans(code);
    let boundaries: std::collections::HashSet<usize> = spans.iter().map(|&(off, ..)| off).collect();
    let mut out = Vec::new();
    let mut first_guard_seen = false;
    for (i, &(off, len, inst)) in spans.iter().enumerate() {
        if is_guard_cmp(&inst) {
            // The ja immediately follows the compare.
            let Some(&(ja_off, ja_len, Inst::Jcc { cc: Cc::A, rel })) = spans.get(i + 1) else {
                continue;
            };
            out.push(Mutant {
                class: "guard-cc-flip",
                // 0F 87 (ja) -> 0F 86 (jbe): second opcode byte.
                patches: vec![(ja_off + 1, vec![code[ja_off + 1] ^ 0x01])],
            });
            out.push(Mutant {
                class: "guard-cmp-disp",
                // disp8 8 -> 40: mem_size -> stack_limit.
                patches: vec![(off + len - 1, vec![0x28])],
            });
            if let Some(r) = rex_index(&code[off..off + len]) {
                out.push(Mutant {
                    class: "guard-cmp-rexw",
                    patches: vec![(off + r, vec![code[off + r] ^ 0x08])],
                });
            }
            if !first_guard_seen {
                first_guard_seen = true;
                out.push(Mutant {
                    class: "guard-nop",
                    patches: vec![nop_patch(off, len), nop_patch(ja_off, ja_len)],
                });
            }
            // Corrupt the low rel32 byte; keep the mutant only when the
            // new target is mid-instruction (see module docs).
            let new_rel = rel ^ 0x15;
            let new_target = (ja_off + ja_len) as i64 + i64::from(new_rel);
            if new_target < 0
                || new_target >= code.len() as i64
                || !boundaries.contains(&(new_target as usize))
            {
                out.push(Mutant {
                    class: "guard-ja-rel",
                    patches: vec![(ja_off + 2, vec![(new_rel & 0xFF) as u8])],
                });
            }
        }
        if let Some(m) = has_r14_operand(&inst) {
            if strategy == BoundsStrategy::Trap {
                // Grow the displacement without changing the encoding
                // length (disp8 stays disp8, disp32 stays disp32).
                let grown = m.disp + 0x40;
                if (1..=0x3F).contains(&m.disp) || m.disp > 0x7F {
                    let disp_bytes = if m.disp <= 0x7F { 1 } else { 4 };
                    let at = off + len - disp_bytes;
                    let bytes = if disp_bytes == 1 {
                        vec![grown as u8]
                    } else {
                        grown.to_le_bytes().to_vec()
                    };
                    out.push(Mutant {
                        class: "access-disp",
                        patches: vec![(at, bytes)],
                    });
                }
                if let Some(r) = rex_index(&code[off..off + len]) {
                    out.push(Mutant {
                        class: "access-rexb",
                        patches: vec![(off + r, vec![code[off + r] ^ 0x01])],
                    });
                }
            }
        }
        if strategy == BoundsStrategy::Clamp {
            if let Inst::Cmov {
                w: W::W64,
                cc: Cc::A,
                ..
            } = inst
            {
                // REX 0F 47 modrm: find the 0F, flip the cc byte after it.
                let bytes = &code[off..off + len];
                if let Some(p) = bytes.iter().position(|&b| b == 0x0F) {
                    out.push(Mutant {
                        class: "clamp-cc-flip",
                        patches: vec![(off + p + 1, vec![bytes[p + 1] ^ 0x01])],
                    });
                }
                out.push(Mutant {
                    class: "clamp-nop",
                    patches: vec![nop_patch(off, len)],
                });
            }
        }
    }
    out
}

fn verify(ctx: &Ctx<'_>, code: &[u8]) -> lb_verify::FuncReport {
    verify_function(&FuncInput {
        func_index: ctx.di,
        code,
        body: &ctx.module.functions[ctx.di].body,
        meta: &ctx.meta.funcs[ctx.di],
        strategy: ctx.strategy,
        plan: None,
        mem_min_bytes: ctx.mem_min_bytes,
        reserve_bytes: lb_core::DEFAULT_RESERVE_BYTES as u64,
        homes: None,
        limit_extents: None,
        guardopt: None,
    })
}

#[test]
fn validator_detects_safety_breaking_mutants() {
    let mut rng = SplitMix64::new(SEED);
    let mut by_class: std::collections::BTreeMap<&'static str, (u64, u64)> =
        std::collections::BTreeMap::new();
    let mut survivors: Vec<String> = Vec::new();

    for name in lb_polybench::NAMES {
        let bench = lb_polybench::by_name(name, lb_polybench::Dataset::Mini).expect("known kernel");
        let module = &bench.module;
        let meta = lb_wasm::validate(module).expect("kernel validates");
        let mem_min_bytes = module
            .memory
            .as_ref()
            .map_or(0, |m| u64::from(m.limits.min) * PAGE_SIZE as u64);

        for strategy in [BoundsStrategy::Trap, BoundsStrategy::Clamp] {
            let params = CompileParams {
                module,
                metas: &meta.funcs,
                strategy,
                // Basic: every check emitted, maximal guard density.
                opt: OptLevel::Basic,
                safepoints: false,
                funcptrs_base: 0,
                plans: None,
                guardopt: false,
                limit_extents: &[],
            };
            for di in 0..module.functions.len() {
                let code = compile_function(params, di);
                let ctx = Ctx {
                    module,
                    meta: &meta,
                    strategy,
                    di,
                    mem_min_bytes,
                };
                let clean = verify(&ctx, &code);
                assert!(
                    clean.findings.is_empty(),
                    "{name}/{strategy:?} func {di}: unmutated code must verify"
                );

                // Sample up to MUTANTS_PER_CLASS per class per function.
                let mut all = enumerate_mutants(&code, strategy);
                let mut picked: std::collections::HashMap<&'static str, usize> =
                    std::collections::HashMap::new();
                // Deterministic shuffle (Fisher–Yates).
                for i in (1..all.len()).rev() {
                    all.swap(i, rng.below(i as u64 + 1) as usize);
                }
                for mutant in all {
                    let n = picked.entry(mutant.class).or_insert(0);
                    if *n >= MUTANTS_PER_CLASS {
                        continue;
                    }
                    *n += 1;
                    let mut mutated = code.clone();
                    for (at, bytes) in &mutant.patches {
                        mutated[*at..*at + bytes.len()].copy_from_slice(bytes);
                    }
                    let report = verify(&ctx, &mutated);
                    let e = by_class.entry(mutant.class).or_insert((0, 0));
                    e.0 += 1;
                    if report.findings.is_empty() {
                        survivors.push(format!("{name}/{strategy:?} func {di}: {}", mutant.class));
                    } else {
                        e.1 += 1;
                    }
                }
            }
        }
    }

    let total: u64 = by_class.values().map(|(t, _)| t).sum();
    let detected: u64 = by_class.values().map(|(_, d)| d).sum();
    assert!(
        total > 500,
        "expected a substantial mutant population, got {total}"
    );
    let rate = detected as f64 / total as f64;
    println!(
        "mutation detection: {detected}/{total} = {:.2}%",
        rate * 100.0
    );
    for (class, (t, d)) in &by_class {
        println!("  {class}: {d}/{t}");
    }
    assert!(
        rate >= 0.95,
        "detection rate {:.2}% below 95% — survivors:\n{}",
        rate * 100.0,
        survivors.join("\n")
    );
}

/// Byte spans of one hoisted preheader guard in compiled code, anchored
/// on its unique `cmp r11, 0x7FFF_FFFF` range pre-check.
struct HoistGuardSpans {
    /// `(offset, len, inst)` of the bound load into r11 — `mov r11d, reg`
    /// when the bound local lives in a register home, `mov r11d,
    /// [rbp+disp]` when it is read from its spill slot.
    bound: Option<(usize, usize, Inst)>,
    /// `(offset, len)` of the optional `add r11, addend`, plus whether
    /// the immediate is encoded as imm32 (vs imm8).
    add: Option<(usize, usize, bool)>,
    /// `(offset, len)` of the final `cmp r11, [r15 + mem_size]`.
    size_cmp: (usize, usize),
    /// `(offset, len)` of the final `ja slow`.
    size_ja: (usize, usize),
}

/// Find every hoisted-guard sequence (`mov r11, bound; [sub 1]; cmp r11,
/// 0x7FFF_FFFF; ja; [shl]; [add]; cmp r11, [r15+8]; ja`) in `code`.
fn find_hoist_guards(spans: &[(usize, usize, Inst)]) -> Vec<HoistGuardSpans> {
    use lb_verify::isa::{AluRi as Alu, ShiftOp};
    const SCRATCH: u8 = 11;
    let mut out = Vec::new();
    let mut i = 0;
    while i < spans.len() {
        let anchored = matches!(
            spans[i].2,
            Inst::AluRi { w: W::W64, op: Alu::Cmp, d, v: 0x7FFF_FFFF } if d.0 == SCRATCH
        );
        if !anchored || !matches!(spans.get(i + 1), Some((_, _, Inst::Jcc { cc: Cc::A, .. }))) {
            i += 1;
            continue;
        }
        let mut j = i + 2;
        if matches!(
            spans.get(j),
            Some((_, _, Inst::ShiftImm { w: W::W64, op: ShiftOp::Shl, d, .. })) if d.0 == SCRATCH
        ) {
            j += 1;
        }
        let mut add = None;
        if let Some(&(
            aoff,
            alen,
            Inst::AluRi {
                w: W::W64,
                op: Alu::Add,
                d,
                ..
            },
        )) = spans.get(j)
        {
            if d.0 == SCRATCH {
                // `83 /0 ib` (imm8) is at most 4 bytes with REX; `81 /0 id`
                // (imm32) is 7.
                add = Some((aoff, alen, alen >= 7));
                j += 1;
            }
        }
        let (Some(&(coff, clen, cmp)), Some(&(joff, jlen, Inst::Jcc { cc: Cc::A, .. }))) =
            (spans.get(j), spans.get(j + 1))
        else {
            i += 1;
            continue;
        };
        if !is_guard_cmp(&cmp) {
            i += 1;
            continue;
        }
        // The bound load precedes the range pre-check, behind an optional
        // `sub r11, 1` (strict bounds).
        let mut b = i;
        if b > 0
            && matches!(spans[b - 1].2,
                Inst::AluRi { w: W::W64, op: Alu::Sub, d, v: 1 } if d.0 == SCRATCH)
        {
            b -= 1;
        }
        let bound = b.checked_sub(1).map(|p| spans[p]).filter(|&(.., inst)| {
            matches!(inst, Inst::MovRr { w: W::W32, d, .. } if d.0 == SCRATCH)
                || matches!(inst,
                    Inst::MovRm { w: W::W32, d, m } if d.0 == SCRATCH && m.base == Reg::RBP)
        });
        out.push(HoistGuardSpans {
            bound,
            add,
            size_cmp: (coff, clen),
            size_ja: (joff, jlen),
        });
        i = j + 2;
    }
    out
}

/// The hoisted-guard corruption classes, all safety-breaking:
///
/// * `hoist-guard-nop` — NOP the preheader's `cmp r11, [r15+8]; ja slow`:
///   the guard never routes to the checked slow copy, so any bound up to
///   the i32 range runs the check-free fast body.
/// * `hoist-bound-weaken` — shrink the guard's addend immediate: bounds
///   whose footprint ends within the shaved window pass the guard yet
///   access past `mem_size` in the fast body.
/// * `hoist-target-swap` — invert the final `ja` (`ja` → `jbe`): the
///   version selection is swapped, so a failing guard falls through into
///   the check-free fast copy instead of the per-access-checked slow one.
/// * `regalloc-bound-reg-swap` — read the guard's bound from a different
///   register home: the shape of a register allocator assigning (or
///   clobbering into) the wrong home, so the guard proves a bound the
///   loop never uses.
/// * `regalloc-slot-swap` — repoint a spill-slot bound load one frame
///   slot down: the allocator-bug analogue for slot-homed bounds.
fn enumerate_hoist_mutants(code: &[u8], spans: &[(usize, usize, Inst)]) -> Vec<Mutant> {
    let mut out = Vec::new();
    for g in find_hoist_guards(spans) {
        out.push(Mutant {
            class: "hoist-guard-nop",
            patches: vec![
                nop_patch(g.size_cmp.0, g.size_cmp.1),
                nop_patch(g.size_ja.0, g.size_ja.1),
            ],
        });
        if let Some((aoff, alen, imm32)) = g.add {
            out.push(Mutant {
                class: "hoist-bound-weaken",
                patches: vec![if imm32 {
                    (aoff + alen - 4, 4u32.to_le_bytes().to_vec())
                } else {
                    (aoff + alen - 1, vec![4])
                }],
            });
        }
        out.push(Mutant {
            class: "hoist-target-swap",
            // 0F 87 (ja) -> 0F 86 (jbe): second opcode byte.
            patches: vec![(g.size_ja.0 + 1, vec![code[g.size_ja.0 + 1] ^ 0x01])],
        });
        // Register-allocator corruption classes: repoint the guard's
        // bound load at a *different* local's home or spill slot, the
        // machine shape of an allocator bug. The guard then proves a
        // bound the loop never uses.
        match g.bound {
            Some((boff, blen, Inst::MovRr { w, d, s })) => {
                // Clobbered guard register: read the bound from the
                // neighboring register (rbx↔rdx, r12↔r13, r8↔r9 — all
                // stay valid encodings of the same length).
                let mut patched = Vec::new();
                lb_verify::isa::encode(
                    &Inst::MovRr {
                        w,
                        d,
                        s: Reg(s.0 ^ 1),
                    },
                    &mut patched,
                );
                if patched.len() == blen {
                    out.push(Mutant {
                        class: "regalloc-bound-reg-swap",
                        patches: vec![(boff, patched)],
                    });
                }
            }
            Some((boff, blen, Inst::MovRm { w, d, m })) => {
                // Spill-slot swap: shift the bound read one slot down —
                // another local's frame slot under every layout this
                // module can have.
                let mut patched = Vec::new();
                lb_verify::isa::encode(
                    &Inst::MovRm {
                        w,
                        d,
                        m: lb_verify::isa::Mem {
                            disp: m.disp - 8,
                            ..m
                        },
                    },
                    &mut patched,
                );
                if patched.len() == blen {
                    out.push(Mutant {
                        class: "regalloc-slot-swap",
                        patches: vec![(boff, patched)],
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// The fused-guard compare: `cmp r, [r15 + MEM_LIMITS + 8*slot]`, 64-bit.
fn is_limit_cmp(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::CmpRm { w: W::W64, m, .. }
            if m.base == Reg::R15
                && m.index.is_none()
                && (64..128).contains(&m.disp)
                && (m.disp - 64) % 8 == 0
    )
}

/// A bounds compare + its trap branch in compiled code: the classic
/// `cmp r11, [r15+8]; ja` or the fused `cmp reg, [r15+64+8*slot]; jae`.
struct BoundsPair {
    cmp_off: usize,
    cmp_len: usize,
    ja_off: usize,
    ja_len: usize,
    rel: i32,
    fused: bool,
}

fn find_bounds_pairs(spans: &[(usize, usize, Inst)]) -> Vec<BoundsPair> {
    let mut out = Vec::new();
    for (i, &(off, len, inst)) in spans.iter().enumerate() {
        let fused = is_limit_cmp(&inst);
        if !fused && !is_guard_cmp(&inst) {
            continue;
        }
        if let Some(&(ja_off, ja_len, Inst::Jcc { cc, rel })) = spans.get(i + 1) {
            if (fused && cc == Cc::Ae) || (!fused && cc == Cc::A) {
                out.push(BoundsPair {
                    cmp_off: off,
                    cmp_len: len,
                    ja_off,
                    ja_len,
                    rel,
                    fused,
                });
            }
        }
    }
    out
}

/// Corruption classes for the guard-optimizing mid tier, all requiring
/// the verifier to re-derive machine facts rather than trust the IR
/// pass's decisions:
///
/// * `fused-cc-weaken` — `jae` → `ja` on the *first* fused guard: the
///   off-by-one the fused encoding exists to avoid (`addr == limit`
///   passes, making `addr + extent == mem_size + 1`). First guard, so no
///   earlier fact can legitimately cover the access.
/// * `fused-cc-flip` — `jae` → `jb` on the first fused guard: in-bounds
///   indices trap, out-of-bounds indices fall through to the access.
/// * `fused-target-rel` — corrupt a fused guard's branch displacement to
///   a mid-instruction target (kept only when it is not an instruction
///   boundary, as for `guard-ja-rel`).
/// * `gvn-fact-forge` — NOP the function's first bounds check (classic or
///   fused) and *forge* a `GvnElide` decision for its site: the shape of
///   a dominance bug in the IR pass. The verifier must refuse the elision
///   because no dominating machine fact exists.
/// * `kill-site-ignore` — in a module whose address local is *redefined*
///   between two stores, NOP the second store's check and forge
///   `GvnElide` for it: the shape of the pass ignoring a `local.set`
///   kill. The redefined address is a different machine symbol, so no
///   fact covers it.
#[test]
fn validator_detects_fused_guard_corruption() {
    use lb_analysis::GuardOpt;

    let mut by_class: std::collections::BTreeMap<&'static str, (u64, u64)> =
        std::collections::BTreeMap::new();
    let mut survivors: Vec<String> = Vec::new();

    let mut modules: Vec<(String, lb_wasm::Module)> = lb_polybench::NAMES
        .iter()
        .map(|n| {
            let b = lb_polybench::by_name(n, lb_polybench::Dataset::Mini).expect("known kernel");
            ((*n).to_string(), b.module)
        })
        .collect();
    modules.push(("rmw".into(), common::rmw_module()));
    modules.push(("redefine".into(), common::redefine_module()));

    for (name, module) in &modules {
        let meta = lb_wasm::validate(module).expect("module validates");
        let extents = lb_jit::dataflow::module_extents(module);
        let mem_min_bytes = module
            .memory
            .as_ref()
            .map_or(0, |m| u64::from(m.limits.min) * PAGE_SIZE as u64);
        // Plan withheld: every site reaches the IR pass as `Emit`, the
        // densest fusion coverage (mirrors `guardopt_bench`).
        let params = CompileParams {
            module,
            metas: &meta.funcs,
            strategy: BoundsStrategy::Trap,
            opt: OptLevel::Mid,
            safepoints: false,
            funcptrs_base: 0,
            plans: None,
            guardopt: true,
            limit_extents: &extents,
        };
        for di in 0..module.functions.len() {
            let code = compile_function(params, di);
            let body = &module.functions[di].body;
            let homes: Option<Vec<(u32, u8)>> = Some(
                lb_jit::regalloc::allocate(module, &meta.funcs[di], body, None)
                    .homes()
                    .iter()
                    .map(|&(l, r)| (l, r.0))
                    .collect(),
            );
            let decisions = lb_jit::dataflow::decide(module, &meta.funcs[di], body, None, &extents);
            let verify = |code: &[u8], decisions: Vec<(u32, GuardOpt)>| {
                verify_function(&FuncInput {
                    func_index: di,
                    code,
                    body,
                    meta: &meta.funcs[di],
                    strategy: BoundsStrategy::Trap,
                    plan: None,
                    mem_min_bytes,
                    reserve_bytes: lb_core::DEFAULT_RESERVE_BYTES as u64,
                    homes: homes.clone(),
                    limit_extents: Some(extents.clone()),
                    guardopt: Some(decisions),
                })
            };
            let clean = verify(&code, decisions.clone());
            assert!(
                clean.findings.is_empty(),
                "{name} func {di}: unmutated guardopt code must verify: {}",
                clean
                    .findings
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            );

            let spans = decode_spans(&code);
            let boundaries: std::collections::HashSet<usize> =
                spans.iter().map(|&(off, ..)| off).collect();
            let pairs = find_bounds_pairs(&spans);
            let sites =
                lb_verify::expected_sites(body, &meta.funcs[di], BoundsStrategy::Trap, None);

            let mut mutants: Vec<(Mutant, Vec<(u32, GuardOpt)>)> = Vec::new();
            // The first bounds check guards the function's first access:
            // nothing earlier can cover it, so its corruption is always a
            // genuine (and detectable) sandbox hole.
            if let Some(first) = pairs.first() {
                if first.fused {
                    mutants.push((
                        Mutant {
                            class: "fused-cc-weaken",
                            // 0F 83 (jae) -> 0F 87 (ja).
                            patches: vec![(first.ja_off + 1, vec![code[first.ja_off + 1] ^ 0x04])],
                        },
                        decisions.clone(),
                    ));
                    mutants.push((
                        Mutant {
                            class: "fused-cc-flip",
                            // 0F 83 (jae) -> 0F 82 (jb).
                            patches: vec![(first.ja_off + 1, vec![code[first.ja_off + 1] ^ 0x01])],
                        },
                        decisions.clone(),
                    ));
                }
                if let Some(site) = sites.first() {
                    let pc = site.pc as u32;
                    let mut forged: Vec<(u32, GuardOpt)> = decisions
                        .iter()
                        .copied()
                        .filter(|&(p, _)| p != pc)
                        .collect();
                    forged.push((pc, GuardOpt::GvnElide));
                    mutants.push((
                        Mutant {
                            class: "gvn-fact-forge",
                            patches: vec![
                                nop_patch(first.cmp_off, first.cmp_len),
                                nop_patch(first.ja_off, first.ja_len),
                            ],
                        },
                        forged,
                    ));
                }
            }
            // Branch-displacement corruption is structural (the CFG no
            // longer decodes), so it applies to every fused guard.
            for p in pairs.iter().filter(|p| p.fused).take(MUTANTS_PER_CLASS) {
                let new_rel = p.rel ^ 0x15;
                let new_target = (p.ja_off + p.ja_len) as i64 + i64::from(new_rel);
                if new_target < 0
                    || new_target >= code.len() as i64
                    || !boundaries.contains(&(new_target as usize))
                {
                    mutants.push((
                        Mutant {
                            class: "fused-target-rel",
                            patches: vec![(p.ja_off + 2, vec![(new_rel & 0xFF) as u8])],
                        },
                        decisions.clone(),
                    ));
                }
            }
            // The kill-site class lives in the redefinition module: its
            // second store's address was redefined by a `local.set`, so
            // the pass must not have elided it — and a forged elision
            // there must fail to re-prove.
            if name == "redefine" {
                assert!(
                    decisions.iter().all(|&(_, d)| d != GuardOpt::GvnElide),
                    "redefine: the local.set kill must block every IR elision"
                );
                if let (Some(second), Some(site)) = (pairs.get(1), sites.get(1)) {
                    let pc = site.pc as u32;
                    let mut forged: Vec<(u32, GuardOpt)> = decisions
                        .iter()
                        .copied()
                        .filter(|&(p, _)| p != pc)
                        .collect();
                    forged.push((pc, GuardOpt::GvnElide));
                    mutants.push((
                        Mutant {
                            class: "kill-site-ignore",
                            patches: vec![
                                nop_patch(second.cmp_off, second.cmp_len),
                                nop_patch(second.ja_off, second.ja_len),
                            ],
                        },
                        forged,
                    ));
                }
            }
            if name == "rmw" {
                assert!(
                    decisions
                        .iter()
                        .filter(|&&(_, d)| d == GuardOpt::GvnElide)
                        .count()
                        >= 2,
                    "rmw: the pass must elide the dominated same-address accesses"
                );
            }

            for (mutant, forged) in mutants {
                let mut mutated = code.clone();
                for (at, bytes) in &mutant.patches {
                    mutated[*at..*at + bytes.len()].copy_from_slice(bytes);
                }
                let report = verify(&mutated, forged);
                let e = by_class.entry(mutant.class).or_insert((0, 0));
                e.0 += 1;
                if report.findings.is_empty() {
                    survivors.push(format!("{name} func {di}: {}", mutant.class));
                } else {
                    e.1 += 1;
                }
            }
        }
    }

    for class in [
        "fused-cc-weaken",
        "fused-cc-flip",
        "fused-target-rel",
        "gvn-fact-forge",
        "kill-site-ignore",
    ] {
        let (total, detected) = by_class.get(class).copied().unwrap_or((0, 0));
        println!("  {class}: {detected}/{total}");
        assert!(total > 0, "{class}: no mutants generated");
        assert_eq!(
            detected,
            total,
            "{class}: fused-guard corruption must be detected 100% — survivors:\n{}",
            survivors.join("\n")
        );
    }
}

/// Every corruption of the hoisted-guard machinery must be flagged: the
/// fast loop body carries no per-access checks, so a broken preheader
/// guard is a sandbox escape with nothing downstream to catch it.
#[test]
fn validator_detects_hoisted_guard_corruption() {
    let modules = [
        ("dynamic-bound", common::dynamic_bound_module()),
        ("multi-function", common::multi_function_module()),
    ];
    let mut by_class: std::collections::BTreeMap<&'static str, (u64, u64)> =
        std::collections::BTreeMap::new();
    let mut survivors: Vec<String> = Vec::new();

    for (name, module) in &modules {
        let meta = lb_wasm::validate(module).expect("module validates");
        let plan = lb_analysis::analyze_module(module, &meta);
        let mem_min_bytes = module
            .memory
            .as_ref()
            .map_or(0, |m| u64::from(m.limits.min) * PAGE_SIZE as u64);

        for strategy in [BoundsStrategy::Trap, BoundsStrategy::Clamp] {
            for opt in [OptLevel::Basic, OptLevel::Mid, OptLevel::Full] {
                let params = CompileParams {
                    module,
                    metas: &meta.funcs,
                    strategy,
                    opt,
                    safepoints: false,
                    funcptrs_base: 0,
                    plans: Some(&plan),
                    guardopt: false,
                    limit_extents: &[],
                };
                for di in 0..module.functions.len() {
                    let code = compile_function(params, di);
                    // The mid tier's register homes, recomputed exactly as
                    // the verifier-in-the-JIT does.
                    let homes: Option<Vec<(u32, u8)>> = (opt == OptLevel::Mid).then(|| {
                        lb_jit::regalloc::allocate(
                            module,
                            &meta.funcs[di],
                            &module.functions[di].body,
                            Some(&plan.funcs[di]),
                        )
                        .homes()
                        .iter()
                        .map(|&(l, r)| (l, r.0))
                        .collect()
                    });
                    let clean = verify_function(&FuncInput {
                        func_index: di,
                        code: &code,
                        body: &module.functions[di].body,
                        meta: &meta.funcs[di],
                        strategy,
                        plan: Some(&plan.funcs[di]),
                        mem_min_bytes,
                        reserve_bytes: lb_core::DEFAULT_RESERVE_BYTES as u64,
                        homes: homes.clone(),
                        limit_extents: None,
                        guardopt: None,
                    });
                    assert!(
                        clean.findings.is_empty(),
                        "{name}/{strategy:?}/{opt:?} func {di}: unmutated code must verify"
                    );
                    let spans = decode_spans(&code);
                    for mutant in enumerate_hoist_mutants(&code, &spans) {
                        let mut mutated = code.clone();
                        for (at, bytes) in &mutant.patches {
                            mutated[*at..*at + bytes.len()].copy_from_slice(bytes);
                        }
                        let report = verify_function(&FuncInput {
                            func_index: di,
                            code: &mutated,
                            body: &module.functions[di].body,
                            meta: &meta.funcs[di],
                            strategy,
                            plan: Some(&plan.funcs[di]),
                            mem_min_bytes,
                            reserve_bytes: lb_core::DEFAULT_RESERVE_BYTES as u64,
                            homes: homes.clone(),
                            limit_extents: None,
                            guardopt: None,
                        });
                        let e = by_class.entry(mutant.class).or_insert((0, 0));
                        e.0 += 1;
                        if report.findings.is_empty() {
                            survivors.push(format!(
                                "{name}/{strategy:?}/{opt:?} func {di}: {}",
                                mutant.class
                            ));
                        } else {
                            e.1 += 1;
                        }
                    }
                }
            }
        }
    }

    for class in [
        "hoist-guard-nop",
        "hoist-bound-weaken",
        "hoist-target-swap",
        "regalloc-bound-reg-swap",
        "regalloc-slot-swap",
    ] {
        let (total, detected) = by_class.get(class).copied().unwrap_or((0, 0));
        println!("  {class}: {detected}/{total}");
        assert!(total > 0, "{class}: no mutants generated");
        assert_eq!(
            detected,
            total,
            "{class}: hoisted-guard corruption must be detected 100% — \
             survivors:\n{}",
            survivors.join("\n")
        );
    }
}
