//! Differential testing for the IR guard-optimization pass: fused
//! compare-against-limit guards and dominance-based elisions must be
//! *invisible* to program behavior. The guardopt modules run on the
//! interpreter, the baseline tier, and the mid tier with fusion off and
//! on, at exact memory boundaries (t, t±1, 0, −1), and must agree
//! bit-for-bit on results, trap points, and pre-trap partial stores.
//! A `memory.grow` between accesses proves the pass treats grow as a
//! fact kill and that the fused limit table is refreshed.

mod common;

use common::{grow_between_module, redefine_module, rmw_module, A_BASE};
use lb_core::exec::{Engine, Linker};
use lb_core::{BoundsStrategy, MemoryConfig, Trap};
use lb_interp::InterpEngine;
use lb_jit::{JitEngine, JitProfile};
use lb_wasm::module::{Export, ExportKind, Function};
use lb_wasm::{FuncType, Instr, MemArg, Module, ValType, Value};

/// Last `t` for which `a[t]` (extent `A_BASE + 4`) fits in one page.
const LAST_IN: i32 = 65536 - (A_BASE as i32 + 4);

/// Interpreter reference, baseline tier, and the mid tier with the
/// guard-optimization pass off and on — plus a no-static-plan variant,
/// where every access reaches the IR pass unelided (densest fusion).
fn engines() -> Vec<(&'static str, Box<dyn Engine>)> {
    vec![
        ("interp", Box::new(InterpEngine::new())),
        ("baseline", Box::new(JitEngine::new(JitProfile::wasmtime()))),
        (
            "mid",
            Box::new(JitEngine::new(
                JitProfile::wasmtime()
                    .with_midtier(true)
                    .with_guardopt(false),
            )),
        ),
        (
            "mid-guardopt",
            Box::new(JitEngine::new(
                JitProfile::wasmtime()
                    .with_midtier(true)
                    .with_guardopt(true),
            )),
        ),
        (
            "mid-guardopt-noplan",
            Box::new(JitEngine::new(
                JitProfile::wasmtime()
                    .with_midtier(true)
                    .with_guardopt(true)
                    .with_analysis(false),
            )),
        ),
    ]
}

fn repr(r: &Result<Option<Value>, Trap>) -> String {
    match r {
        Ok(Some(v)) => format!("ok:{:016x}", v.to_bits()),
        Ok(None) => "ok:void".into(),
        Err(t) => format!("trap:{:?}", t.kind()),
    }
}

/// Invoke `go(t, x)` on every engine under `strategy` and assert
/// agreement on the result representation.
fn agreed(module: &Module, strategy: BoundsStrategy, t: i32, x: i32, ctx: &str) -> String {
    let mut first: Option<(&str, String)> = None;
    for (name, engine) in engines() {
        let loaded = engine.load(module).expect("module loads");
        let config = MemoryConfig::new(strategy, 1, 2).with_reserve(1 << 22);
        let mut inst = loaded
            .instantiate(&config, &Linker::new())
            .expect("instantiate");
        let got = repr(&inst.invoke("go", &[Value::I32(t), Value::I32(x)]));
        match &first {
            None => first = Some((name, got)),
            Some((f, want)) => {
                assert_eq!(want, &got, "{ctx}: t={t}: `{f}` and `{name}` disagree")
            }
        }
    }
    first.unwrap().1
}

/// Append a `peek(j) -> i32` export reading `a[j]`, for post-trap
/// memory inspection.
fn with_peek(mut m: Module) -> Module {
    m.types.push(FuncType {
        params: vec![ValType::I32],
        results: vec![ValType::I32],
    });
    m.functions.push(Function {
        type_idx: 1,
        locals: vec![],
        body: vec![
            Instr::LocalGet(0),
            Instr::I32Load(MemArg::offset(A_BASE)),
            Instr::End,
        ],
        name: Some("peek".into()),
    });
    m.exports.push(Export {
        name: "peek".into(),
        kind: ExportKind::Func(1),
    });
    lb_wasm::validate(&m).expect("module validates");
    m
}

/// Boundary sweep: the read-modify-write module (three same-address
/// accesses, two elided under guardopt) and the redefinition module
/// (whose `local.set` kills the first guard's fact) at the exact page
/// edge, under trap and clamp.
#[test]
fn guardopt_boundary_agrees() {
    let rmw = rmw_module();
    let redefine = redefine_module();
    for strategy in [BoundsStrategy::Trap, BoundsStrategy::Clamp] {
        for t in [0, 1, 1000, LAST_IN - 1, LAST_IN] {
            let got = agreed(&rmw, strategy, t, 7, "rmw in bounds");
            assert_eq!(
                got, "ok:0000000000000007",
                "{strategy:?} t={t}: rmw on zeroed memory returns x"
            );
        }
        // The redefinition adds 64 to the address: both stores are
        // in bounds only up to LAST_IN - 64.
        for t in [0, 1000, LAST_IN - 65, LAST_IN - 64] {
            let got = agreed(&redefine, strategy, t, 7, "redefine in bounds");
            assert_eq!(
                got,
                format!("ok:{:016x}", (t + 64) as u32 as u64),
                "{strategy:?} t={t}: redefine returns the shifted address"
            );
        }
    }
    // One past the edge: trap traps, clamp redirects — identically
    // across all five engines.
    for (m, t, ctx) in [
        (&rmw, LAST_IN + 1, "rmw first oob"),
        (&rmw, -1, "rmw wrapped address"),
        (&redefine, LAST_IN - 63, "redefine second-store oob"),
        (&redefine, LAST_IN + 1, "redefine first-store oob"),
        (&redefine, -1, "redefine wrapped address"),
    ] {
        assert!(
            agreed(m, BoundsStrategy::Trap, t, 7, ctx).starts_with("trap:"),
            "{ctx}: trap strategy must trap at t={t}"
        );
        assert!(
            agreed(m, BoundsStrategy::Clamp, t, 7, ctx).starts_with("ok:"),
            "{ctx}: clamp strategy redirects instead of trapping"
        );
    }
}

/// Trap timing: when the redefinition module's *second* store traps, the
/// first store — already executed — must be visible, identically with
/// fusion off and on (a fused guard must trap before its access, never
/// after).
#[test]
fn guardopt_pre_trap_stores_visible_identically() {
    let m = with_peek(redefine_module());
    let t = LAST_IN - 63; // first store lands, second (t+64) is oob
    let mut first: Option<(&str, Vec<String>)> = None;
    for (name, engine) in engines() {
        let loaded = engine.load(&m).expect("module loads");
        let config = MemoryConfig::new(BoundsStrategy::Trap, 1, 2).with_reserve(1 << 22);
        let mut inst = loaded
            .instantiate(&config, &Linker::new())
            .expect("instantiate");
        let mut log = vec![repr(&inst.invoke("go", &[Value::I32(t), Value::I32(7)]))];
        assert!(log[0].starts_with("trap:"), "{name}: go({t}) must trap");
        for j in [t, 0] {
            log.push(repr(&inst.invoke("peek", &[Value::I32(j)])));
        }
        assert_eq!(
            log[1], "ok:0000000000000007",
            "{name}: the first store must be visible after the trap"
        );
        match &first {
            None => first = Some((name, log)),
            Some((f, want)) => assert_eq!(
                want, &log,
                "`{f}` and `{name}` disagree on pre-trap visibility"
            ),
        }
    }
}

/// `memory.grow` between same-address accesses: the grow must kill the
/// first guard's dominating fact (the IR pass re-checks the second
/// store) and refresh the fused limit table (so post-grow invokes see
/// the larger bound). Checked structurally against `decide` and
/// behaviorally across all engines.
#[test]
fn guardopt_grow_kills_facts_and_refreshes_limits() {
    let m = grow_between_module();

    // Structural: the pass must not elide across the grow. Sites sit at
    // pc 2 (first store), pc 8 (second store), pc 10 (the load). Only
    // the load — dominated by the second store's post-grow guard — may
    // be `GvnElide`.
    let meta = lb_wasm::validate(&m).expect("module validates");
    let extents = lb_jit::dataflow::module_extents(&m);
    let decisions =
        lb_jit::dataflow::decide(&m, &meta.funcs[0], &m.functions[0].body, None, &extents);
    assert!(
        !decisions
            .iter()
            .any(|&(pc, d)| pc == 8 && d == lb_analysis::GuardOpt::GvnElide),
        "the grow must kill the first store's fact: {decisions:?}"
    );
    assert!(
        decisions
            .iter()
            .any(|&(pc, d)| pc == 10 && d == lb_analysis::GuardOpt::GvnElide),
        "the load is dominated by the second store's guard: {decisions:?}"
    );

    // Behavioral: in-bounds and the exact page edge agree everywhere.
    for t in [0, 1000, LAST_IN] {
        let got = agreed(&m, BoundsStrategy::Trap, t, 9, "grow in bounds");
        assert_eq!(got, "ok:0000000000000009", "t={t}: returns the stored x");
    }
    assert!(
        agreed(&m, BoundsStrategy::Trap, LAST_IN + 1, 9, "grow first oob").starts_with("trap:"),
        "the first store traps before the grow runs"
    );

    // Limit refresh across invokes: the first call grows memory to two
    // pages, so a second call may address page two — where the first
    // call's `t` would have trapped. The fused limit table must have
    // been refreshed after the grow for mid-guardopt to agree.
    let two_page_t = 70000;
    let mut first: Option<(&str, Vec<String>)> = None;
    for (name, engine) in engines() {
        let loaded = engine.load(&m).expect("module loads");
        let config = MemoryConfig::new(BoundsStrategy::Trap, 1, 2).with_reserve(1 << 22);
        let mut inst = loaded
            .instantiate(&config, &Linker::new())
            .expect("instantiate");
        let log = vec![
            repr(&inst.invoke("go", &[Value::I32(0), Value::I32(1)])),
            repr(&inst.invoke("go", &[Value::I32(two_page_t), Value::I32(2)])),
        ];
        assert_eq!(log[0], "ok:0000000000000001", "{name}: first call grows");
        assert_eq!(
            log[1], "ok:0000000000000002",
            "{name}: page two must be addressable after the grow"
        );
        match &first {
            None => first = Some((name, log)),
            Some((f, want)) => assert_eq!(want, &log, "`{f}` and `{name}` disagree after grow"),
        }
    }
}

/// The guardopt counters actually move when the mid tier compiles these
/// modules with fusion on — and stay still with it off.
#[test]
fn guardopt_counters_move() {
    let gvn = lb_telemetry::counter("jit.checks.gvn_elided");
    let fused = lb_telemetry::counter("jit.checks.fused");
    let run = |on: bool| {
        let engine = JitEngine::new(
            JitProfile::wasmtime()
                .with_midtier(true)
                .with_analysis(false)
                .with_guardopt(on),
        );
        let loaded = engine.load(&rmw_module()).expect("module loads");
        let config = MemoryConfig::new(BoundsStrategy::Trap, 1, 2).with_reserve(1 << 22);
        let mut inst = loaded
            .instantiate(&config, &Linker::new())
            .expect("instantiate");
        assert!(inst.invoke("go", &[Value::I32(5), Value::I32(3)]).is_ok());
    };
    let (g0, f0) = (gvn.get(), fused.get());
    run(false);
    assert_eq!((gvn.get(), fused.get()), (g0, f0), "off: counters still");
    run(true);
    assert!(gvn.get() > g0, "on: IR elisions counted");
    assert!(fused.get() > f0, "on: fused guards counted");
}
