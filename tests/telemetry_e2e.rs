//! End-to-end telemetry: run tiny PolyBench kernels under the
//! interpreter and a JIT profile and check that the harness's per-run
//! telemetry snapshot carries JIT compile spans, strategy-labelled
//! `memory.grow` counters, interpreter dispatch counts, and a trap
//! latency histogram when the signal path is exercised.

use lb_core::exec::{Engine, Linker};
use lb_core::{catch_traps, BoundsStrategy, LinearMemory, MemoryConfig};
use lb_dsl::{expr, DslFunc, KernelModule};
use lb_harness::{run_benchmark, EngineSel, RunSpec};
use lb_polybench::{by_name, common::Dataset};
use lb_wasm::types::ValType;
use std::sync::Mutex;

/// `run_benchmark` drains every span ring process-wide, so the tests in
/// this binary must not interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn quick_spec(engine: EngineSel) -> RunSpec {
    let mut spec = RunSpec::new(engine, BoundsStrategy::Mprotect);
    spec.warmup_iters = 1;
    spec.measured_iters = 2;
    spec.reserve_bytes = 64 << 20;
    spec.max_pages = 512;
    spec.sample_system = false;
    spec
}

#[test]
fn jit_run_records_compile_spans() {
    let _g = SERIAL.lock().unwrap();
    lb_telemetry::set_spans_enabled(true);
    let b = by_name("atax", Dataset::Mini).unwrap();
    let r = run_benchmark(&b, &quick_spec(EngineSel::Wavm));
    lb_telemetry::set_spans_enabled(false);
    assert!(r.checksum_ok);

    let spans = r.telemetry.spans_named("jit.compile");
    assert!(
        !spans.is_empty(),
        "expected jit.compile spans in the run snapshot"
    );
    assert!(spans
        .iter()
        .all(|s| s.kind == lb_telemetry::EventKind::Span));
    assert!(r.telemetry.counter("jit.compile.count") > 0);
    // WAVM profile compiles at the Full tier.
    assert!(r.telemetry.counter("jit.code_bytes.full") > 0);
    let h = r
        .telemetry
        .histogram("jit.compile_ns")
        .expect("compile-time histogram");
    assert_eq!(h.count, r.telemetry.counter("jit.compile.count"));
    // One reservation per isolate iteration.
    assert!(r.telemetry.counter("mem.mmap") >= 3);
}

#[test]
fn interp_dispatch_counters_count_by_class() {
    let _g = SERIAL.lock().unwrap();
    lb_telemetry::set_dispatch_counters_enabled(true);
    let b = by_name("atax", Dataset::Mini).unwrap();
    let r = run_benchmark(&b, &quick_spec(EngineSel::Interp));
    lb_telemetry::set_dispatch_counters_enabled(false);
    assert!(r.checksum_ok);

    for class in [
        "interp.dispatch.mem_load",
        "interp.dispatch.mem_store",
        "interp.dispatch.int_alu",
        "interp.dispatch.call",
    ] {
        assert!(r.telemetry.counter(class) > 0, "{class} should be nonzero");
    }
}

/// A module whose export grows memory twice.
fn grow_module() -> lb_wasm::Module {
    let mut f = DslFunc::new("grow_some", &[], Some(ValType::I32));
    f.memory_grow(expr::i32(1));
    f.memory_grow(expr::i32(1));
    f.ret(expr::i32(0));
    let mut km = KernelModule::new();
    km.memory(1, Some(8));
    km.add_exported(f);
    km.finish()
}

fn run_grow(engine: &dyn Engine, strategy: BoundsStrategy) {
    let module = grow_module();
    let loaded = engine.load(&module).expect("grow module loads");
    let config = MemoryConfig::new(strategy, 1, 8).with_reserve(1 << 22);
    let mut inst = loaded
        .instantiate(&config, &Linker::new())
        .expect("instantiate");
    inst.invoke("grow_some", &[]).expect("grow_some");
}

#[test]
fn grow_counters_are_strategy_labelled() {
    let _g = SERIAL.lock().unwrap();
    let before = lb_telemetry::snapshot();
    run_grow(
        &lb_jit::JitEngine::new(lb_jit::JitProfile::wavm()),
        BoundsStrategy::Mprotect,
    );
    run_grow(&lb_interp::InterpEngine::new(), BoundsStrategy::Trap);
    let d = lb_telemetry::snapshot().delta_since(&before);
    assert!(d.counter("mem.grow.mprotect") >= 2);
    assert!(d.counter("mem.grow.trap") >= 2);
    assert_eq!(
        d.counter("mem.grow"),
        d.counter("mem.grow.none")
            + d.counter("mem.grow.clamp")
            + d.counter("mem.grow.trap")
            + d.counter("mem.grow.mprotect")
            + d.counter("mem.grow.uffd"),
        "per-strategy labels must partition the total"
    );
}

#[test]
fn hardware_trap_records_latency_histogram() {
    let _g = SERIAL.lock().unwrap();
    let before = lb_telemetry::snapshot();
    let config = MemoryConfig::new(BoundsStrategy::Mprotect, 1, 1).with_reserve(4 << 20);
    let m = LinearMemory::new(&config).unwrap();
    for _ in 0..4 {
        catch_traps(|| m.load::<u8>(2 * 65536, 0)).unwrap_err();
    }
    let d = lb_telemetry::snapshot().delta_since(&before);
    assert!(d.counter("trap.signal") >= 4);
    let h = d
        .histogram("trap.latency_ns")
        .expect("trap latency histogram");
    assert!(h.count >= 4, "every hardware trap records a latency sample");
    assert!(h.sum > 0);
    assert!(h.quantile(0.5) > 0);
}
