//! End-to-end translation validation: every function of every PolyBench
//! kernel, compiled under every bounds-check strategy at every tier, with
//! the analysis plan both consumed and withheld, must verify with zero
//! findings — and the verifier's independently-derived elision count must
//! equal what codegen said it elided (`jit.checks.static_elided`).
//!
//! One `#[test]` on purpose: the jit and verify counters are
//! process-global, so the sweep owns the whole binary and compares
//! per-configuration deltas without interference.

use lb_jit::codegen::{compile_function, CompileParams, OptLevel};
use lb_verify::{verify_function, FuncInput};
use lb_wasm::PAGE_SIZE;

const STRATEGIES: [lb_core::BoundsStrategy; 5] = [
    lb_core::BoundsStrategy::None,
    lb_core::BoundsStrategy::Clamp,
    lb_core::BoundsStrategy::Trap,
    lb_core::BoundsStrategy::Mprotect,
    lb_core::BoundsStrategy::Uffd,
];

#[test]
fn all_kernels_verify_with_zero_findings() {
    let jit_elided = lb_telemetry::counter("jit.checks.static_elided");
    let mut configs = 0usize;
    let mut total_sites = 0u64;
    let mut total_elided = 0u64;

    for name in lb_polybench::NAMES {
        let bench = lb_polybench::by_name(name, lb_polybench::Dataset::Mini).expect("known kernel");
        let module = &bench.module;
        let meta = lb_wasm::validate(module).expect("kernel validates");
        let plan = lb_analysis::analyze_module(module, &meta);
        let mem_min_bytes = module
            .memory
            .as_ref()
            .map_or(0, |m| u64::from(m.limits.min) * PAGE_SIZE as u64);
        assert_eq!(plan.mem_min_bytes, mem_min_bytes, "{name}: plan mem_min");

        for strategy in STRATEGIES {
            // (tier, analysis plan consulted) — `OptLevel::None` never
            // consults the plan (mirrors `mem_operand`), `Full` without a
            // plan exercises the legacy peephole.
            for (opt, with_plan) in [
                (OptLevel::None, false),
                (OptLevel::Basic, true),
                (OptLevel::Full, true),
                (OptLevel::Full, false),
            ] {
                let params = CompileParams {
                    module,
                    metas: &meta.funcs,
                    strategy,
                    opt,
                    safepoints: false,
                    funcptrs_base: 0,
                    plans: with_plan.then_some(&plan),
                };
                let before = jit_elided.get();
                let codes: Vec<Vec<u8>> = (0..module.functions.len())
                    .map(|di| compile_function(params, di))
                    .collect();
                let jit_delta = jit_elided.get() - before;

                let mut verify_elided = 0u64;
                for (di, code) in codes.iter().enumerate() {
                    let func_plan = (with_plan && opt != OptLevel::None).then(|| &plan.funcs[di]);
                    let report = verify_function(&FuncInput {
                        func_index: di,
                        code,
                        body: &module.functions[di].body,
                        meta: &meta.funcs[di],
                        strategy,
                        plan: func_plan,
                        mem_min_bytes,
                        reserve_bytes: lb_core::DEFAULT_RESERVE_BYTES as u64,
                    });
                    assert!(
                        report.findings.is_empty(),
                        "{name} [{strategy:?}/{opt:?}/plan={with_plan}] func {di}: {}",
                        report
                            .findings
                            .iter()
                            .map(|f| f.to_string())
                            .collect::<Vec<_>>()
                            .join("; ")
                    );
                    assert_eq!(
                        report.sites_checked,
                        report.proven_guarded + report.proven_elided,
                        "{name} [{strategy:?}/{opt:?}/plan={with_plan}] func {di}: \
                         every site must be proven one way or the other"
                    );
                    verify_elided += report.proven_elided;
                    total_sites += report.sites_checked;
                }
                assert_eq!(
                    verify_elided, jit_delta,
                    "{name} [{strategy:?}/{opt:?}/plan={with_plan}]: the verifier's \
                     elision count must agree with jit.checks.static_elided"
                );
                total_elided += verify_elided;
                configs += 1;
            }
        }
    }
    // The sweep must actually have exercised elision: the analysis plans
    // and the peephole both fire on these kernels.
    assert_eq!(configs, 30 * 5 * 4);
    assert!(total_sites > 0, "kernels contain memory accesses");
    assert!(
        total_elided > 0,
        "expected some elided checks across the sweep"
    );
}
