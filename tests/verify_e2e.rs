//! End-to-end translation validation: every function of every PolyBench
//! kernel — plus the synthetic dynamic-bound modules whose loops the
//! analysis *versions* with hoisted preheader guards — compiled under
//! every bounds-check strategy at every tier, with the analysis plan both
//! consumed and withheld, must verify with zero findings. The verifier's
//! independently-derived counts must equal what codegen said it did:
//! `proven_elided == jit.checks.static_elided`,
//! `proven_hoisted == jit.checks.hoisted`,
//! `proven_gvn == jit.checks.gvn_elided`, and
//! `proven_fused == jit.checks.fused`, per configuration.
//!
//! One `#[test]` on purpose: the jit and verify counters are
//! process-global, so the sweep owns the whole binary and compares
//! per-configuration deltas without interference.

mod common;

use lb_jit::codegen::{compile_function, CompileParams, OptLevel};
use lb_verify::{verify_function, FuncInput};
use lb_wasm::{Module, PAGE_SIZE};

const STRATEGIES: [lb_core::BoundsStrategy; 5] = [
    lb_core::BoundsStrategy::None,
    lb_core::BoundsStrategy::Clamp,
    lb_core::BoundsStrategy::Trap,
    lb_core::BoundsStrategy::Mprotect,
    lb_core::BoundsStrategy::Uffd,
];

/// Totals one module contributes to the sweep.
#[derive(Default)]
struct SweepTotals {
    configs: usize,
    sites: u64,
    elided: u64,
    hoisted: u64,
    gvn: u64,
    fused: u64,
}

fn sweep_module(name: &str, module: &Module, totals: &mut SweepTotals) {
    let jit_elided = lb_telemetry::counter("jit.checks.static_elided");
    let jit_hoisted = lb_telemetry::counter("jit.checks.hoisted");
    let jit_gvn = lb_telemetry::counter("jit.checks.gvn_elided");
    let jit_fused = lb_telemetry::counter("jit.checks.fused");
    let meta = lb_wasm::validate(module).expect("module validates");
    let plan = lb_analysis::analyze_module(module, &meta);
    let extents = lb_jit::dataflow::module_extents(module);
    let mem_min_bytes = module
        .memory
        .as_ref()
        .map_or(0, |m| u64::from(m.limits.min) * PAGE_SIZE as u64);
    assert_eq!(plan.mem_min_bytes, mem_min_bytes, "{name}: plan mem_min");

    for strategy in STRATEGIES {
        // (tier, analysis plan consulted, IR guard optimization) —
        // `OptLevel::None` never consults the plan (mirrors
        // `mem_operand`), `Full` without a plan exercises the legacy
        // peephole, and the two guardopt configs exercise the IR dataflow
        // pass with and without the static plan (without, every access
        // reaches `decide` as an `Emit` site — the densest fusion/GVN
        // coverage).
        for (opt, with_plan, guardopt) in [
            (OptLevel::None, false, false),
            (OptLevel::Basic, true, false),
            (OptLevel::Mid, true, false),
            (OptLevel::Mid, true, true),
            (OptLevel::Mid, false, true),
            (OptLevel::Full, true, false),
            (OptLevel::Full, false, false),
        ] {
            let params = CompileParams {
                module,
                metas: &meta.funcs,
                strategy,
                opt,
                safepoints: false,
                funcptrs_base: 0,
                plans: with_plan.then_some(&plan),
                guardopt,
                limit_extents: &extents,
            };
            let before_elided = jit_elided.get();
            let before_hoisted = jit_hoisted.get();
            let before_gvn = jit_gvn.get();
            let before_fused = jit_fused.get();
            let codes: Vec<Vec<u8>> = (0..module.functions.len())
                .map(|di| compile_function(params, di))
                .collect();
            let jit_elided_delta = jit_elided.get() - before_elided;
            let jit_hoisted_delta = jit_hoisted.get() - before_hoisted;
            let jit_gvn_delta = jit_gvn.get() - before_gvn;
            let jit_fused_delta = jit_fused.get() - before_fused;

            let mut verify_elided = 0u64;
            let mut verify_hoisted = 0u64;
            let mut verify_gvn = 0u64;
            let mut verify_fused = 0u64;
            for (di, code) in codes.iter().enumerate() {
                let func_plan = (with_plan && opt != OptLevel::None).then(|| &plan.funcs[di]);
                // The verifier re-derives the mid tier's register homes
                // from the same pure inputs codegen used.
                let homes = (opt == OptLevel::Mid).then(|| {
                    lb_jit::regalloc::allocate(
                        module,
                        &meta.funcs[di],
                        &module.functions[di].body,
                        func_plan,
                    )
                    .homes()
                    .iter()
                    .map(|&(l, r)| (l, r.0))
                    .collect()
                });
                // Likewise the guard-optimization decisions: recomputed
                // from the wasm, never read back from codegen.
                let decisions =
                    (guardopt && opt == OptLevel::Mid && strategy == lb_core::BoundsStrategy::Trap)
                        .then(|| {
                            lb_jit::dataflow::decide(
                                module,
                                &meta.funcs[di],
                                &module.functions[di].body,
                                func_plan,
                                &extents,
                            )
                        });
                let report = verify_function(&FuncInput {
                    func_index: di,
                    code,
                    body: &module.functions[di].body,
                    meta: &meta.funcs[di],
                    strategy,
                    plan: func_plan,
                    mem_min_bytes,
                    reserve_bytes: lb_core::DEFAULT_RESERVE_BYTES as u64,
                    homes,
                    limit_extents: decisions.is_some().then(|| extents.clone()),
                    guardopt: decisions,
                });
                assert!(
                    report.findings.is_empty(),
                    "{name} [{strategy:?}/{opt:?}/plan={with_plan}/go={guardopt}] func {di}: {}",
                    report
                        .findings
                        .iter()
                        .map(|f| f.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                );
                assert_eq!(
                    report.sites_checked,
                    report.proven_guarded
                        + report.proven_elided
                        + report.proven_hoisted
                        + report.proven_gvn
                        + report.proven_fused,
                    "{name} [{strategy:?}/{opt:?}/plan={with_plan}/go={guardopt}] func {di}: \
                     every site must be proven one way or the other"
                );
                verify_elided += report.proven_elided;
                verify_hoisted += report.proven_hoisted;
                verify_gvn += report.proven_gvn;
                verify_fused += report.proven_fused;
                totals.sites += report.sites_checked;
            }
            assert_eq!(
                verify_elided, jit_elided_delta,
                "{name} [{strategy:?}/{opt:?}/plan={with_plan}/go={guardopt}]: the verifier's \
                 elision count must agree with jit.checks.static_elided"
            );
            assert_eq!(
                verify_hoisted, jit_hoisted_delta,
                "{name} [{strategy:?}/{opt:?}/plan={with_plan}/go={guardopt}]: the verifier's \
                 hoisted count must agree with jit.checks.hoisted"
            );
            assert_eq!(
                verify_gvn, jit_gvn_delta,
                "{name} [{strategy:?}/{opt:?}/plan={with_plan}/go={guardopt}]: the verifier's \
                 IR-elision count must agree with jit.checks.gvn_elided"
            );
            assert_eq!(
                verify_fused, jit_fused_delta,
                "{name} [{strategy:?}/{opt:?}/plan={with_plan}/go={guardopt}]: the verifier's \
                 fused-guard count must agree with jit.checks.fused"
            );
            totals.elided += verify_elided;
            totals.hoisted += verify_hoisted;
            totals.gvn += verify_gvn;
            totals.fused += verify_fused;
            totals.configs += 1;
        }
    }
}

#[test]
fn all_kernels_verify_with_zero_findings() {
    let mut totals = SweepTotals::default();

    for name in lb_polybench::NAMES {
        let bench = lb_polybench::by_name(name, lb_polybench::Dataset::Mini).expect("known kernel");
        sweep_module(name, &bench.module, &mut totals);
    }
    // The synthetic dynamic-bound modules: the only ones in the sweep
    // whose plans contain `ElideHoisted` sites, so the only ones that
    // exercise versioned-loop emission and its verification.
    let hoisted_before = totals.hoisted;
    sweep_module(
        "dynamic-bound",
        &common::dynamic_bound_module(),
        &mut totals,
    );
    sweep_module(
        "multi-function",
        &common::multi_function_module(),
        &mut totals,
    );
    assert!(
        totals.hoisted > hoisted_before,
        "the synthetic modules must exercise hoisted-guard verification"
    );
    // And the guardopt modules: straight-line same-address access runs
    // (PolyBench's addresses are all loop-carried, so back-edge widening
    // rightly blocks IR elision there — these are the only modules whose
    // facts survive to a dominated access).
    let gvn_before = totals.gvn;
    sweep_module("rmw", &common::rmw_module(), &mut totals);
    sweep_module("redefine", &common::redefine_module(), &mut totals);
    sweep_module("grow-between", &common::grow_between_module(), &mut totals);
    assert!(
        totals.gvn > gvn_before,
        "the guardopt modules must exercise IR-elision verification"
    );

    // The sweep must actually have exercised elision: the analysis plans
    // and the peephole both fire on these kernels.
    assert_eq!(totals.configs, 35 * 5 * 7);
    assert!(totals.sites > 0, "kernels contain memory accesses");
    assert!(
        totals.elided > 0,
        "expected some elided checks across the sweep"
    );
    // And the IR dataflow pass: the guardopt configs must have produced
    // (and re-proven) both transformation kinds somewhere in the sweep.
    assert!(
        totals.gvn > 0,
        "expected some IR-dataflow elisions across the sweep"
    );
    assert!(
        totals.fused > 0,
        "expected some fused guards across the sweep"
    );
}
