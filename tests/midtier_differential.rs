//! Differential testing for the mid tier: IR-driven linear-scan register
//! homes, caller-saved home save/reload around calls, and dead-store
//! elimination must all be *invisible* to program behavior. Modules run
//! on the interpreter, the baseline tier, and the mid tier under trap
//! and clamp at exact memory boundaries (n, n±1, 0) and must agree
//! bit-for-bit on results, trap points, and pre-trap partial stores.

mod common;

use common::{dynamic_bound_module, multi_function_module, A_BASE, K, MAX_N};
use lb_core::exec::{Engine, Linker};
use lb_core::{BoundsStrategy, MemoryConfig, Trap};
use lb_interp::InterpEngine;
use lb_jit::{JitEngine, JitProfile};
use lb_wasm::module::{Export, ExportKind, Function};
use lb_wasm::{BlockType, FuncType, Instr, Limits, MemArg, MemoryType, Module, ValType, Value};

/// Interpreter reference, the baseline register tier, and the mid tier
/// (with and without hoisting, so register homes are exercised both with
/// versioned loops and with plain per-access checks).
fn engines() -> Vec<(&'static str, Box<dyn Engine>)> {
    vec![
        ("interp", Box::new(InterpEngine::new())),
        ("baseline", Box::new(JitEngine::new(JitProfile::wasmtime()))),
        (
            "mid",
            Box::new(JitEngine::new(JitProfile::wasmtime().with_midtier(true))),
        ),
        (
            "mid-nohoist",
            Box::new(JitEngine::new(
                JitProfile::wasmtime()
                    .with_midtier(true)
                    .with_hoisting(false),
            )),
        ),
    ]
}

fn repr(r: &Result<Option<Value>, Trap>) -> String {
    match r {
        Ok(Some(v)) => format!("ok:{:016x}", v.to_bits()),
        Ok(None) => "ok:void".into(),
        Err(t) => format!("trap:{:?}", t.kind()),
    }
}

/// Invoke `go(n)` on every engine under `strategy` and assert agreement.
fn agreed(module: &Module, strategy: BoundsStrategy, n: i32, ctx: &str) -> String {
    let mut first: Option<(&str, String)> = None;
    for (name, engine) in engines() {
        let loaded = engine.load(module).expect("module loads");
        let config = MemoryConfig::new(strategy, 1, 1).with_reserve(1 << 22);
        let mut inst = loaded
            .instantiate(&config, &Linker::new())
            .expect("instantiate");
        let got = repr(&inst.invoke("go", &[Value::I32(n)]));
        match &first {
            None => first = Some((name, got)),
            Some((f, want)) => {
                assert_eq!(want, &got, "{ctx}: n={n}: `{f}` and `{name}` disagree")
            }
        }
    }
    first.unwrap().1
}

/// Boundary sweep on the dynamic-bound store loop: every `n` around the
/// exact memory edge, under both software strategies.
#[test]
fn midtier_boundary_agrees() {
    let m = dynamic_bound_module();
    for strategy in [BoundsStrategy::Trap, BoundsStrategy::Clamp] {
        for n in [0, 1, 7, MAX_N - 1, MAX_N] {
            let got = agreed(&m, strategy, n, "mid-tier in bounds");
            let want = if n == 0 {
                "ok:0000000000000000".to_string()
            } else {
                format!("ok:{:016x}", n - 1)
            };
            assert_eq!(got, want, "{strategy:?} n={n}");
        }
    }
    // One element past the end: trap traps, clamp redirects — but the
    // engines never diverge from each other.
    assert!(
        agreed(&m, BoundsStrategy::Trap, MAX_N + 1, "first oob").starts_with("trap:"),
        "trap strategy must trap one element past the end"
    );
    assert!(
        agreed(&m, BoundsStrategy::Clamp, MAX_N + 1, "first oob clamped").starts_with("ok:"),
        "clamp strategy redirects instead of trapping"
    );
    assert!(
        agreed(&m, BoundsStrategy::Trap, -1, "wrapping bound").starts_with("trap:"),
        "huge unsigned bound still traps at the boundary"
    );
}

/// Trap timing: after `go(MAX_N + 1)` traps, every store of an earlier
/// iteration — and nothing later — must be visible, identically across
/// the tiers (dead-store elimination must never drop a store another
/// engine performs before the trap).
#[test]
fn midtier_pre_trap_stores_visible_identically() {
    let mut m = dynamic_bound_module();
    m.functions.push(Function {
        type_idx: 0,
        locals: vec![],
        body: vec![
            Instr::LocalGet(0),
            Instr::I32Const(2),
            Instr::I32Shl,
            Instr::I32Load(MemArg::offset(A_BASE)),
            Instr::End,
        ],
        name: Some("peek".into()),
    });
    m.exports.push(Export {
        name: "peek".into(),
        kind: ExportKind::Func(1),
    });
    lb_wasm::validate(&m).expect("module validates");

    let n = MAX_N + 1; // traps on the last iteration
    let mut first: Option<(&str, Vec<String>)> = None;
    for (name, engine) in engines() {
        let loaded = engine.load(&m).expect("module loads");
        let config = MemoryConfig::new(BoundsStrategy::Trap, 1, 1).with_reserve(1 << 22);
        let mut inst = loaded
            .instantiate(&config, &Linker::new())
            .expect("instantiate");
        let mut log = vec![repr(&inst.invoke("go", &[Value::I32(n)]))];
        assert!(log[0].starts_with("trap:"), "{name}: go({n}) must trap");
        for j in [0, 1, 4096, MAX_N - 1] {
            log.push(repr(&inst.invoke("peek", &[Value::I32(j)])));
        }
        match &first {
            None => {
                for (k, j) in [0, 1, 4096, MAX_N - 1].iter().enumerate() {
                    assert_eq!(
                        log[k + 1],
                        format!("ok:{:016x}", j),
                        "{name}: store a[{j}] must be visible after the trap"
                    );
                }
                first = Some((name, log));
            }
            Some((f, want)) => assert_eq!(
                want, &log,
                "`{f}` and `{name}` disagree on pre-trap visibility"
            ),
        }
    }
}

/// Calls inside the hot loop: the mid tier must save caller-saved homes
/// before and reload them after every call, so the interprocedural
/// module (whose `go` calls `fill` and `len`) agrees across tiers at
/// the same boundaries.
#[test]
fn midtier_calls_preserve_homes() {
    let m = multi_function_module();
    for strategy in [BoundsStrategy::Trap, BoundsStrategy::Clamp] {
        for n in [0, 1, K, MAX_N] {
            let got = agreed(&m, strategy, n, "multi-function in bounds");
            let want = if n == 0 {
                format!("ok:{:016x}", K - 1)
            } else {
                format!("ok:{:016x}", (n - 1) + (K - 1))
            };
            assert_eq!(got, want, "{strategy:?} n={n}");
        }
    }
    assert!(
        agreed(&m, BoundsStrategy::Trap, MAX_N + 1, "multi-function oob").starts_with("trap:"),
        "callee loop traps one element past the end"
    );
}

/// A module with more hot integer locals than there are register homes
/// (3 callee-saved + 2 caller-saved): `go(n)` accumulates 8 loop-carried
/// counters (counter `l` gains `l` per iteration), so at least three
/// must stay slot-homed. Returns `sum_{l=1..8} l*n = 36*n`.
fn spill_pressure_module() -> Module {
    let mut m = Module::new();
    m.types.push(FuncType {
        params: vec![ValType::I32],
        results: vec![ValType::I32],
    });
    m.memory = Some(MemoryType {
        limits: Limits {
            min: 1,
            max: Some(1),
        },
    });
    // Locals: 0 = n (param), 1..=8 = counters, 9 = i.
    let mut body = vec![
        Instr::Block(BlockType::Empty),
        Instr::LocalGet(0),
        Instr::I32Eqz,
        Instr::BrIf(0),
        Instr::Loop(BlockType::Empty),
    ];
    for l in 1..=8u32 {
        body.extend([
            Instr::LocalGet(l),
            Instr::I32Const(l as i32),
            Instr::I32Add,
            Instr::LocalSet(l),
        ]);
    }
    body.extend([
        Instr::LocalGet(9),
        Instr::I32Const(1),
        Instr::I32Add,
        Instr::LocalTee(9),
        Instr::LocalGet(0),
        Instr::I32LtU,
        Instr::BrIf(0),
        Instr::End,
        Instr::End,
    ]);
    // Sum the counters.
    body.push(Instr::LocalGet(1));
    for l in 2..=8u32 {
        body.extend([Instr::LocalGet(l), Instr::I32Add]);
    }
    body.push(Instr::End);
    m.functions.push(Function {
        type_idx: 0,
        locals: vec![ValType::I32; 9],
        body,
        name: Some("go".into()),
    });
    m.exports.push(Export {
        name: "go".into(),
        kind: ExportKind::Func(0),
    });
    lb_wasm::validate(&m).expect("module validates");
    m
}

/// Spill pressure: with 9 hot integer locals and 5 register homes, the
/// mix of register- and slot-homed locals must compute the same sums as
/// the reference engines.
#[test]
fn midtier_spill_pressure_agrees() {
    let m = spill_pressure_module();
    for n in [0, 1, 2, 1000] {
        let got = agreed(&m, BoundsStrategy::Trap, n, "spill pressure");
        let want = format!("ok:{:016x}", 36u64 * n as u64);
        assert_eq!(got, want, "n={n}");
    }
}

/// A function whose first `local.set` is dead (overwritten before any
/// read): the mid tier elides it, and `jit.midtier.dead_stores_elided`
/// says so — while the observable result is unchanged.
#[test]
fn midtier_dead_store_elision_is_invisible_and_counted() {
    let mut m = Module::new();
    m.types.push(FuncType {
        params: vec![ValType::I32],
        results: vec![ValType::I32],
    });
    m.memory = Some(MemoryType {
        limits: Limits {
            min: 1,
            max: Some(1),
        },
    });
    m.functions.push(Function {
        type_idx: 0,
        locals: vec![ValType::I32],
        body: vec![
            Instr::I32Const(17),
            Instr::LocalSet(1), // dead: overwritten before any read
            Instr::LocalGet(0),
            Instr::I32Const(25),
            Instr::I32Add,
            Instr::LocalSet(1),
            Instr::LocalGet(1),
            Instr::End,
        ],
        name: Some("go".into()),
    });
    m.exports.push(Export {
        name: "go".into(),
        kind: ExportKind::Func(0),
    });
    lb_wasm::validate(&m).expect("module validates");

    let dead = lb_telemetry::counter("jit.midtier.dead_stores_elided");
    let before = dead.get();
    for n in [0, 1, -25, i32::MAX] {
        let got = agreed(&m, BoundsStrategy::Trap, n, "dead store");
        let want = format!("ok:{:016x}", (n.wrapping_add(25) as u32) as u64);
        assert_eq!(got, want, "n={n}");
    }
    assert!(
        dead.get() > before,
        "the mid tier must report the elided dead store"
    );
}

/// The mid tier's register homes actually fire on the hot loop: the
/// reload-elision counter moves when compiling and running under `Mid`.
#[test]
fn midtier_reload_elision_is_counted() {
    let m = dynamic_bound_module();
    let reloads = lb_telemetry::counter("jit.midtier.reloads_elided");
    let before = reloads.get();
    let engine = JitEngine::new(JitProfile::wasmtime().with_midtier(true));
    let loaded = engine.load(&m).expect("module loads");
    let config = MemoryConfig::new(BoundsStrategy::Trap, 1, 1).with_reserve(1 << 22);
    let mut inst = loaded
        .instantiate(&config, &Linker::new())
        .expect("instantiate");
    assert!(inst.invoke("go", &[Value::I32(7)]).is_ok());
    assert!(
        reloads.get() > before,
        "register-homed locals must elide their slot reloads"
    );
}
