//! Shared module builders for the integration tests: synthetic kernels
//! with *dynamic* (unprovable-at-compile-time) loop bounds, the shape
//! `lb-analysis` versions with a hoisted preheader guard. PolyBench's
//! kernels are all fully statically elided, so these are the only
//! modules that exercise `CheckKind::ElideHoisted` end to end.
#![allow(dead_code)]

use lb_wasm::module::{Export, ExportKind, Function};
use lb_wasm::{BlockType, FuncType, Instr, Limits, MemArg, MemoryType, Module, ValType};

/// `a` base: stores land at `(i << 2) + A_BASE`.
pub const A_BASE: u32 = 64;
/// `b` base for the multi-function module's second array.
pub const B_BASE: u32 = 32768;
/// `len()`'s constant in the multi-function module.
pub const K: i32 = 40;
/// Largest `n` whose whole loop stays in one page:
/// `(n-1)*4 + A_BASE + 4 <= 65536`.
pub const MAX_N: i32 = 16368;

/// The canonical dynamic-bound loop in the unsigned counted shape the
/// analysis hoists: `for i in 0..bound` (unsigned) store `i` at `a[i]`.
pub fn store_loop(bound_local: u32, i: u32, end: u32) -> Vec<Instr> {
    vec![
        Instr::I32Const(0),
        Instr::LocalSet(i),
        Instr::LocalGet(bound_local),
        Instr::LocalSet(end),
        Instr::Block(BlockType::Empty),
        Instr::LocalGet(i),
        Instr::LocalGet(end),
        Instr::I32GeU,
        Instr::BrIf(0),
        Instr::Loop(BlockType::Empty),
        Instr::LocalGet(i),
        Instr::I32Const(2),
        Instr::I32Shl,
        Instr::LocalGet(i),
        Instr::I32Store(MemArg::offset(A_BASE)),
        Instr::LocalGet(i),
        Instr::I32Const(1),
        Instr::I32Add,
        Instr::LocalTee(i),
        Instr::LocalGet(end),
        Instr::I32LtU,
        Instr::BrIf(0),
        Instr::End,
        Instr::End,
    ]
}

/// Single-function module: `go(n) -> i32` runs the store loop and
/// returns `a[n-1]` (0 when `n == 0`). The loop store becomes
/// `ElideHoisted`; the post-loop read keeps its check.
pub fn dynamic_bound_module() -> Module {
    let mut m = Module::new();
    m.types.push(FuncType {
        params: vec![ValType::I32],
        results: vec![ValType::I32],
    });
    m.memory = Some(MemoryType {
        limits: Limits {
            min: 1,
            max: Some(1),
        },
    });
    let mut body = store_loop(0, 1, 2);
    body.extend([
        Instr::LocalGet(0),
        Instr::I32Const(0),
        Instr::I32Ne,
        Instr::If(BlockType::Value(ValType::I32)),
        Instr::LocalGet(0),
        Instr::I32Const(1),
        Instr::I32Sub,
        Instr::I32Const(2),
        Instr::I32Shl,
        Instr::I32Load(MemArg::offset(A_BASE)),
        Instr::Else,
        Instr::I32Const(0),
        Instr::End,
        Instr::End,
    ]);
    m.functions.push(Function {
        type_idx: 0,
        locals: vec![ValType::I32, ValType::I32],
        body,
        name: Some("go".into()),
    });
    m.exports.push(Export {
        name: "go".into(),
        kind: ExportKind::Func(0),
    });
    lb_wasm::validate(&m).expect("module validates");
    m
}

fn one_func_module(
    params: Vec<ValType>,
    results: Vec<ValType>,
    locals: Vec<ValType>,
    body: Vec<Instr>,
) -> Module {
    let mut m = Module::new();
    m.types.push(FuncType { params, results });
    m.memory = Some(MemoryType {
        limits: Limits {
            min: 1,
            max: Some(2),
        },
    });
    m.functions.push(Function {
        type_idx: 0,
        locals,
        body,
        name: Some("go".into()),
    });
    m.exports.push(Export {
        name: "go".into(),
        kind: ExportKind::Func(0),
    });
    lb_wasm::validate(&m).expect("module validates");
    m
}

/// `go(t, x) -> i32`: a read-modify-write on `a[t]` followed by a
/// re-read — three same-address, same-extent accesses through local 0.
/// The IR dataflow pass checks the first and elides the other two
/// (`GvnElide`): the canonical redundant-guard shape.
pub fn rmw_module() -> Module {
    one_func_module(
        vec![ValType::I32, ValType::I32],
        vec![ValType::I32],
        vec![],
        vec![
            Instr::LocalGet(0),
            Instr::LocalGet(0),
            Instr::I32Load(MemArg::offset(A_BASE)),
            Instr::LocalGet(1),
            Instr::I32Add,
            Instr::I32Store(MemArg::offset(A_BASE)),
            Instr::LocalGet(0),
            Instr::I32Load(MemArg::offset(A_BASE)),
            Instr::End,
        ],
    )
}

/// `go(t, x) -> i32`: store at `a[t]`, *redefine* `t` (`local.set`),
/// store at the new `a[t]`. The redefinition kills the first guard's
/// fact, so the second store must keep its own check — the kill-site
/// shape the dataflow pass must honour.
pub fn redefine_module() -> Module {
    one_func_module(
        vec![ValType::I32, ValType::I32],
        vec![ValType::I32],
        vec![],
        vec![
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::I32Store(MemArg::offset(A_BASE)),
            Instr::LocalGet(0),
            Instr::I32Const(64),
            Instr::I32Add,
            Instr::LocalSet(0),
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::I32Store(MemArg::offset(A_BASE)),
            Instr::LocalGet(0),
            Instr::End,
        ],
    )
}

/// `go(t, x) -> i32`: store at `a[t]`, `memory.grow`, store at `a[t]`
/// again, read it back. The grow (an `IrOp::Call` in the IR) kills every
/// guard fact, so the second store re-checks; the final read is then
/// elided against the *second* store's guard.
pub fn grow_between_module() -> Module {
    one_func_module(
        vec![ValType::I32, ValType::I32],
        vec![ValType::I32],
        vec![],
        vec![
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::I32Store(MemArg::offset(A_BASE)),
            Instr::I32Const(1),
            Instr::MemoryGrow,
            Instr::Drop,
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::I32Store(MemArg::offset(A_BASE)),
            Instr::LocalGet(0),
            Instr::I32Load(MemArg::offset(A_BASE)),
            Instr::End,
        ],
    )
}

/// Three-function module exercising the interprocedural layers at once:
/// exported `go(n)` calls internal `fill(m)` (whose bound joins a ⊤
/// argument, so its loop is versioned) and sizes a second loop with
/// internal `len()` whose constant return interval propagates (so that
/// loop needs no guard at all). Returns `(n != 0 ? a[n-1] : 0) + b[K-1]`.
pub fn multi_function_module() -> Module {
    let mut m = Module::new();
    m.types.push(FuncType {
        params: vec![ValType::I32],
        results: vec![ValType::I32],
    });
    m.types.push(FuncType {
        params: vec![ValType::I32],
        results: vec![],
    });
    m.types.push(FuncType {
        params: vec![],
        results: vec![ValType::I32],
    });
    m.memory = Some(MemoryType {
        limits: Limits {
            min: 1,
            max: Some(1),
        },
    });
    // go(n): fill(n); k = len(); for i in 0..k store i at b[i]; return
    // (n != 0 ? a[n-1] : 0) + b[k-1].
    let mut body = vec![Instr::LocalGet(0), Instr::Call(1)];
    body.extend([Instr::Call(2), Instr::LocalSet(1)]);
    body.extend([
        Instr::I32Const(0),
        Instr::LocalSet(2),
        Instr::Block(BlockType::Empty),
        Instr::LocalGet(2),
        Instr::LocalGet(1),
        Instr::I32GeU,
        Instr::BrIf(0),
        Instr::Loop(BlockType::Empty),
        Instr::LocalGet(2),
        Instr::I32Const(2),
        Instr::I32Shl,
        Instr::LocalGet(2),
        Instr::I32Store(MemArg::offset(B_BASE)),
        Instr::LocalGet(2),
        Instr::I32Const(1),
        Instr::I32Add,
        Instr::LocalTee(2),
        Instr::LocalGet(1),
        Instr::I32LtU,
        Instr::BrIf(0),
        Instr::End,
        Instr::End,
    ]);
    body.extend([
        Instr::LocalGet(0),
        Instr::I32Const(0),
        Instr::I32Ne,
        Instr::If(BlockType::Value(ValType::I32)),
        Instr::LocalGet(0),
        Instr::I32Const(1),
        Instr::I32Sub,
        Instr::I32Const(2),
        Instr::I32Shl,
        Instr::I32Load(MemArg::offset(A_BASE)),
        Instr::Else,
        Instr::I32Const(0),
        Instr::End,
        Instr::I32Const((K - 1) << 2),
        Instr::I32Load(MemArg::offset(B_BASE)),
        Instr::I32Add,
        Instr::End,
    ]);
    m.functions.push(Function {
        type_idx: 0,
        locals: vec![ValType::I32, ValType::I32],
        body,
        name: Some("go".into()),
    });
    let mut fill = store_loop(0, 1, 2);
    fill.push(Instr::End);
    m.functions.push(Function {
        type_idx: 1,
        locals: vec![ValType::I32, ValType::I32],
        body: fill,
        name: Some("fill".into()),
    });
    m.functions.push(Function {
        type_idx: 2,
        locals: vec![],
        body: vec![Instr::I32Const(K), Instr::End],
        name: Some("len".into()),
    });
    m.exports.push(Export {
        name: "go".into(),
        kind: ExportKind::Func(0),
    });
    lb_wasm::validate(&m).expect("module validates");
    m
}
