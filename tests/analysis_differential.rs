//! Differential testing for `lb-analysis`: the static bounds-check plan
//! must be *invisible* to program behavior. Every module here runs on
//! four configurations — interpreter and JIT, each with the analysis on
//! and off — under the software `trap` strategy, and all four must agree
//! bit-for-bit on results and on trap/no-trap outcomes.
//!
//! The deterministic tests pin down the exact boundary: the last
//! in-bounds byte, the first out-of-bounds byte, and memarg offsets near
//! `u32::MAX` whose effective address overflows 32 bits (statically
//! provable OOB with the analysis on; a dynamic widened-arithmetic check
//! with it off).

use lb_core::exec::{Engine, Linker};
use lb_core::{BoundsStrategy, MemoryConfig, Trap};
use lb_interp::InterpEngine;
use lb_jit::{JitEngine, JitProfile};
use lb_wasm::module::{Export, ExportKind, Function};
use lb_wasm::{FuncType, Instr, Limits, MemArg, MemoryType, Module, ValType, Value};

const PAGE: u32 = 65536;

/// Build a one-memory module exporting `go(addr: i32) -> i32`.
fn module_with(pages: u32, locals: Vec<ValType>, body: Vec<Instr>) -> Module {
    let mut m = Module::new();
    m.types.push(FuncType {
        params: vec![ValType::I32],
        results: vec![ValType::I32],
    });
    m.memory = Some(MemoryType {
        limits: Limits {
            min: pages,
            max: Some(pages),
        },
    });
    m.functions.push(Function {
        type_idx: 0,
        locals,
        body,
        name: Some("go".into()),
    });
    m.exports.push(Export {
        name: "go".into(),
        kind: ExportKind::Func(0),
    });
    lb_wasm::validate(&m).expect("generated module validates");
    m
}

fn outcome_repr(r: &Result<Option<Value>, Trap>) -> String {
    match r {
        Ok(Some(v)) => format!("ok:{:016x}", v.to_bits()),
        Ok(None) => "ok:void".into(),
        Err(t) => format!("trap:{:?}", t.kind()),
    }
}

/// Run `go(arg)` on all four engine configurations and assert agreement;
/// returns the shared outcome string.
fn agreed_outcome(module: &Module, pages: u32, arg: i32, ctx: &str) -> String {
    let engines: [(&str, Box<dyn Engine>); 4] = [
        ("interp+analysis", Box::new(InterpEngine::new())),
        ("interp", Box::new(InterpEngine::new().with_analysis(false))),
        ("jit+analysis", Box::new(JitEngine::new(JitProfile::wavm()))),
        (
            "jit",
            Box::new(JitEngine::new(JitProfile::wavm().with_analysis(false))),
        ),
    ];
    let mut agreed: Option<(String, String)> = None;
    for (name, engine) in engines {
        let loaded = engine.load(module).expect("module loads");
        let config = MemoryConfig::new(BoundsStrategy::Trap, pages, pages).with_reserve(1 << 22);
        let mut inst = loaded
            .instantiate(&config, &Linker::new())
            .expect("instantiate");
        let got = outcome_repr(&inst.invoke("go", &[Value::I32(arg)]));
        match &agreed {
            None => agreed = Some((name.to_string(), got)),
            Some((first, want)) => assert_eq!(
                want, &got,
                "{ctx}: arg {arg}: `{first}` and `{name}` disagree"
            ),
        }
    }
    agreed.unwrap().1
}

/// `go` returns `load8_u(addr)`: byte granularity pins the exact edge.
#[test]
fn last_in_bounds_and_first_oob_byte_agree() {
    let m = module_with(
        1,
        vec![],
        vec![
            Instr::LocalGet(0),
            Instr::I32Load8U(MemArg::offset(0)),
            Instr::End,
        ],
    );
    let last = PAGE as i32 - 1;
    assert!(agreed_outcome(&m, 1, last, "load8 last byte").starts_with("ok:"));
    assert!(agreed_outcome(&m, 1, last + 1, "load8 first oob").starts_with("trap:"));
}

/// A 4-byte load must trap as soon as any byte of the access is outside.
#[test]
fn wide_access_boundary_agrees() {
    let m = module_with(
        1,
        vec![],
        vec![
            Instr::LocalGet(0),
            Instr::I32Load(MemArg::offset(0)),
            Instr::End,
        ],
    );
    assert!(agreed_outcome(&m, 1, PAGE as i32 - 4, "load32 last slot").starts_with("ok:"));
    for arg in [PAGE as i32 - 3, PAGE as i32 - 1, PAGE as i32] {
        assert!(agreed_outcome(&m, 1, arg, "load32 straddling edge").starts_with("trap:"));
    }
}

/// The constant memarg offset participates in the boundary too.
#[test]
fn memarg_offset_boundary_agrees() {
    let m = module_with(
        1,
        vec![],
        vec![
            Instr::LocalGet(0),
            Instr::I32Load(MemArg::offset(1000)),
            Instr::End,
        ],
    );
    assert!(agreed_outcome(&m, 1, PAGE as i32 - 1004, "offset last slot").starts_with("ok:"));
    assert!(agreed_outcome(&m, 1, PAGE as i32 - 1003, "offset first oob").starts_with("trap:"));
}

/// Offsets near `u32::MAX` make `addr + offset + size` overflow 32 bits.
/// With the analysis on this is `StaticOob`; with it off, the engines
/// must catch it with widened arithmetic — never by wrapping.
#[test]
fn memarg_offset_overflow_agrees() {
    for offset in [u32::MAX, u32::MAX - 2, u32::MAX - 3] {
        let m = module_with(
            1,
            vec![],
            vec![
                Instr::LocalGet(0),
                Instr::I32Load(MemArg::offset(offset)),
                Instr::End,
            ],
        );
        for arg in [0, 1, 4, PAGE as i32 - 4] {
            let got = agreed_outcome(&m, 1, arg, "offset overflow");
            assert!(
                got.starts_with("trap:"),
                "offset {offset:#x} arg {arg}: expected a trap, got {got}"
            );
        }
    }
    // A store on the same path: the plan applies to stores too.
    let m = module_with(
        1,
        vec![],
        vec![
            Instr::LocalGet(0),
            Instr::I32Const(7),
            Instr::I32Store(MemArg::offset(u32::MAX - 1)),
            Instr::I32Const(0),
            Instr::End,
        ],
    );
    assert!(agreed_outcome(&m, 1, 0, "store offset overflow").starts_with("trap:"));
}

/// Deterministic SplitMix64 stream (offline build: no rand/proptest;
/// fixed seeds keep failures reproducible).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn gen_range(&mut self, r: std::ops::Range<u64>) -> u64 {
        r.start + self.next_u64() % (r.end - r.start)
    }
}

/// Push an address expression rooted at the `addr` parameter or a
/// constant; some constants land out of bounds on purpose.
fn push_addr(rng: &mut Rng, body: &mut Vec<Instr>) {
    match rng.gen_range(0..5) {
        0 => body.push(Instr::I32Const(rng.gen_range(0..(PAGE as u64) + 64) as i32)),
        1 => body.push(Instr::LocalGet(0)),
        2 => {
            body.push(Instr::LocalGet(0));
            body.push(Instr::I32Const(rng.gen_range(0..256) as i32));
            body.push(Instr::I32Add);
        }
        3 => {
            // Masked: always in bounds, the analysis should elide it.
            body.push(Instr::LocalGet(0));
            body.push(Instr::I32Const(0x3FF8));
            body.push(Instr::I32And);
        }
        _ => {
            // Near the boundary: `addr & 7` wiggles around page end.
            body.push(Instr::LocalGet(0));
            body.push(Instr::I32Const(7));
            body.push(Instr::I32And);
            body.push(Instr::I32Const(PAGE as i32 - 4));
            body.push(Instr::I32Add);
        }
    }
}

/// Random straight-line module: a handful of loads/stores of mixed
/// widths and offsets, loads folded into an i32 accumulator.
fn random_module(seed: u64) -> Module {
    let mut rng = Rng(seed);
    let mut body = Vec::new();
    let acc = 1u32; // local 1 (after the addr param)
    let n = rng.gen_range(2..7);
    for _ in 0..n {
        let offset = match rng.gen_range(0..4) {
            0 => 0,
            1 => rng.gen_range(0..64) as u32,
            2 => PAGE - 4,
            _ => rng.gen_range(0..16) as u32 + (u32::MAX - 16),
        };
        let ma = MemArg::offset(offset);
        if rng.gen_range(0..4) == 0 {
            // Store a constant.
            push_addr(&mut rng, &mut body);
            body.push(Instr::I32Const(rng.next_u64() as i32));
            body.push(match rng.gen_range(0..3) {
                0 => Instr::I32Store8(ma),
                1 => Instr::I32Store16(ma),
                _ => Instr::I32Store(ma),
            });
        } else {
            push_addr(&mut rng, &mut body);
            let wide = rng.gen_range(0..5) == 0;
            if wide {
                body.push(Instr::I64Load(ma));
                body.push(Instr::I32WrapI64);
            } else {
                body.push(match rng.gen_range(0..4) {
                    0 => Instr::I32Load8U(ma),
                    1 => Instr::I32Load8S(ma),
                    2 => Instr::I32Load16U(ma),
                    _ => Instr::I32Load(ma),
                });
            }
            body.push(Instr::LocalGet(acc));
            body.push(Instr::I32Add);
            body.push(Instr::LocalSet(acc));
        }
    }
    body.push(Instr::LocalGet(acc));
    body.push(Instr::End);
    module_with(1, vec![ValType::I32], body)
}

/// Seeded random modules: every access pattern the generator produces —
/// provably in-bounds, boundary-straddling, statically OOB — behaves
/// identically with the analysis on and off, on both engines.
#[test]
fn random_modules_agree_with_analysis_on_and_off() {
    let mut meta = Rng(0xA11A_1515);
    for case in 0..48 {
        let seed = meta.next_u64();
        let m = random_module(seed);
        for arg in [
            0i32,
            1,
            8,
            0x3FF8,
            PAGE as i32 - 4,
            PAGE as i32 - 1,
            PAGE as i32,
        ] {
            agreed_outcome(&m, 1, arg, &format!("case {case} seed {seed:#x}"));
        }
    }
}
