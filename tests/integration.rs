//! Cross-crate integration tests: the full pipeline from DSL-authored
//! kernels through both engines, the harness, the cost model and the
//! simulator, exercised together as a downstream user would.

use leaps_and_bounds::core::exec::{Engine, Linker};
use leaps_and_bounds::core::{BoundsStrategy, MemoryConfig};
use leaps_and_bounds::harness::{run_benchmark, EngineSel, RunSpec};
use leaps_and_bounds::interp::InterpEngine;
use leaps_and_bounds::jit::{JitEngine, JitProfile};
use leaps_and_bounds::{isa_model, polybench, sim, spec_proxy};

#[test]
fn harness_agrees_across_engines_on_checksums() {
    let bench = polybench::by_name("bicg", polybench::Dataset::Mini).unwrap();
    for engine in [
        EngineSel::Native,
        EngineSel::Interp,
        EngineSel::Wavm,
        EngineSel::Wasmtime,
        EngineSel::V8,
    ] {
        let mut spec = RunSpec::new(engine, BoundsStrategy::Mprotect);
        spec.measured_iters = 2;
        spec.warmup_iters = 1;
        spec.reserve_bytes = 64 << 20;
        let r = run_benchmark(&bench, &spec);
        assert!(r.checksum_ok, "{}", engine.name());
        assert_eq!(r.iter_times[0].len(), 2);
    }
}

#[test]
fn spec_proxies_run_through_harness() {
    let bench = spec_proxy::by_name("xz", spec_proxy::Scale::Mini).unwrap();
    let mut spec = RunSpec::new(EngineSel::Wasmtime, BoundsStrategy::Trap);
    spec.measured_iters = 2;
    spec.warmup_iters = 0;
    spec.reserve_bytes = 64 << 20;
    let r = run_benchmark(&bench, &spec);
    assert!(r.checksum_ok);
}

#[test]
fn cost_model_consumes_suite_benchmarks() {
    let bench = spec_proxy::by_name("mcf", spec_proxy::Scale::Mini).unwrap();
    let mix = isa_model::profile_benchmark(&bench);
    assert!(mix.mem_accesses() > 0);
    for isa in isa_model::all_profiles() {
        let o = isa_model::strategy_overhead(&mix, &isa, BoundsStrategy::Trap);
        assert!(o > 0.0 && o < 2.0, "{}: {o}", isa.name);
    }
}

#[test]
fn simulator_and_harness_tell_the_same_story() {
    // Real single-core measurement shows mprotect costs more syscalls;
    // the simulator shows the multicore consequence. Both must point the
    // same direction: uffd lighter on the mm subsystem.
    let bench = polybench::by_name("trisolv", polybench::Dataset::Mini).unwrap();
    let mut spec = RunSpec::new(EngineSel::Wavm, BoundsStrategy::Mprotect);
    spec.measured_iters = 5;
    spec.reserve_bytes = 64 << 20;
    let mp = run_benchmark(&bench, &spec);
    assert!(mp.vm.mprotect >= 5, "one mprotect per isolate at minimum");

    let p_mp = sim::SimParams::new(sim::SimStrategy::Mprotect, 16, 50_000);
    let p_uf = sim::SimParams::new(sim::SimStrategy::Uffd, 16, 50_000);
    let r_mp = sim::simulate(&p_mp);
    let r_uf = sim::simulate(&p_uf);
    assert!(r_uf.iters_per_sec() > r_mp.iters_per_sec());
}

#[test]
fn wasm_binary_is_portable_between_engines() {
    // Encode with one engine's module, decode, run on the other.
    let bench = polybench::by_name("mvt", polybench::Dataset::Mini).unwrap();
    let bytes = leaps_and_bounds::wasm::binary::encode(&bench.module);
    let module = leaps_and_bounds::wasm::binary::decode(&bytes).unwrap();

    let config = MemoryConfig::new(BoundsStrategy::Trap, 1, 64).with_reserve(16 << 20);
    let mut results = Vec::new();
    let interp = InterpEngine::new();
    let jit = JitEngine::new(JitProfile::wavm());
    let engines: [&dyn Engine; 2] = [&interp, &jit];
    for engine in engines {
        let loaded = engine.load(&module).unwrap();
        let mut inst = loaded.instantiate(&config, &Linker::new()).unwrap();
        inst.invoke("init", &[]).unwrap();
        inst.invoke("kernel", &[]).unwrap();
        results.push(
            inst.invoke("checksum", &[])
                .unwrap()
                .unwrap()
                .as_f64()
                .unwrap(),
        );
    }
    assert_eq!(results[0].to_bits(), results[1].to_bits());
    assert_eq!(results[0].to_bits(), bench.native_checksum().to_bits());
}

#[test]
fn many_isolates_coexist_and_clean_up() {
    // Stress the arena registry: dozens of live memories across strategies,
    // interleaved creation/teardown, then verify full cleanup.
    let bench = polybench::by_name("jacobi-1d", polybench::Dataset::Mini).unwrap();
    let engine = JitEngine::new(JitProfile::wasmtime());
    let loaded = engine.load(&bench.module).unwrap();
    let mut isolates = Vec::new();
    for i in 0..24 {
        let s = match i % 3 {
            0 => BoundsStrategy::Trap,
            1 => BoundsStrategy::Mprotect,
            _ => BoundsStrategy::None,
        };
        let config = MemoryConfig::new(s, 1, 32).with_reserve(8 << 20);
        isolates.push(loaded.instantiate(&config, &Linker::new()).unwrap());
    }
    for inst in isolates.iter_mut() {
        inst.invoke("init", &[]).unwrap();
        inst.invoke("kernel", &[]).unwrap();
    }
    // Drop every other one, run the rest again.
    let mut kept = Vec::new();
    for (i, inst) in isolates.into_iter().enumerate() {
        if i % 2 == 0 {
            kept.push(inst);
        }
    }
    for inst in kept.iter_mut() {
        inst.invoke("kernel", &[]).unwrap();
    }
}
