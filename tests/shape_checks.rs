//! Shape checks: the paper's qualitative claims, asserted with generous
//! tolerances so they hold on any host. Comparisons are restricted to
//! JIT-generated code vs JIT-generated code (unaffected by debug-mode host
//! compilation) or to syscall counts, which are exact.

use leaps_and_bounds::core::exec::{Engine, Linker};
use leaps_and_bounds::core::{stats, BoundsStrategy, MemoryConfig};
use leaps_and_bounds::interp::InterpEngine;
use leaps_and_bounds::jit::{JitEngine, JitProfile};
use leaps_and_bounds::polybench::{by_name, Dataset};
use std::time::{Duration, Instant};

fn kernel_time(
    engine: &dyn Engine,
    module: &leaps_and_bounds::wasm::Module,
    s: BoundsStrategy,
) -> Duration {
    let loaded = engine.load(module).unwrap();
    let config = MemoryConfig::new(s, 0, 512).with_reserve(256 << 20);
    let mut inst = loaded.instantiate(&config, &Linker::new()).unwrap();
    inst.invoke("init", &[]).unwrap();
    inst.invoke("kernel", &[]).unwrap(); // warm (tiering, faults)
    inst.invoke("kernel", &[]).unwrap();
    let mut best = Duration::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        inst.invoke("kernel", &[]).unwrap();
        best = best.min(t.elapsed());
    }
    best
}

/// Paper §4.1: "Software checks are significantly slower in a number of
/// configurations, most notably in WAVM, with clamping addresses
/// unconditionally behaving worse than generating conditional traps."
///
/// Measured with the static bounds-check analysis *off*: the claim is
/// about the cost of the emitted checks themselves, and `lb-analysis` now
/// elides most of them on PolyBench (see
/// `analysis_closes_the_software_check_gap_on_gemm`).
#[test]
fn software_checks_cost_more_than_guard_pages_on_gemm() {
    let bench = by_name("gemm", Dataset::Small).unwrap();
    let engine = JitEngine::new(JitProfile::wavm().with_analysis(false));
    let none = kernel_time(&engine, &bench.module, BoundsStrategy::None);
    let clamp = kernel_time(&engine, &bench.module, BoundsStrategy::Clamp);
    let trap = kernel_time(&engine, &bench.module, BoundsStrategy::Trap);
    let mprotect = kernel_time(&engine, &bench.module, BoundsStrategy::Mprotect);

    // Guard pages ≈ none (paper: 1-2 percentage points; allow 15%).
    assert!(
        mprotect < none.mul_f64(1.15),
        "mprotect {mprotect:?} should be near none {none:?}"
    );
    // Software clamp visibly slower than none on a load-heavy kernel.
    assert!(
        clamp > none.mul_f64(1.10),
        "clamp {clamp:?} should exceed none {none:?}"
    );
    // Clamp worse than trap (the paper's WAVM observation).
    assert!(
        clamp > trap.mul_f64(0.95),
        "clamp {clamp:?} should not beat trap {trap:?}"
    );
}

/// The flip side: with `lb-analysis` consuming its plan, most of gemm's
/// checks are proven in-bounds and the software-check strategies land
/// close to unchecked code.
#[test]
fn analysis_closes_the_software_check_gap_on_gemm() {
    let bench = by_name("gemm", Dataset::Small).unwrap();
    let engine = JitEngine::new(JitProfile::wavm());
    let none = kernel_time(&engine, &bench.module, BoundsStrategy::None);
    let trap = kernel_time(&engine, &bench.module, BoundsStrategy::Trap);
    assert!(
        trap < none.mul_f64(1.10),
        "trap with analysis {trap:?} should be near none {none:?}"
    );
}

/// Paper §4.4 (Titzer): the interpreter is several times slower than the
/// tiered JIT.
#[test]
fn interpreter_is_many_times_slower_than_jit() {
    let bench = by_name("atax", Dataset::Small).unwrap();
    let jit = JitEngine::new(JitProfile::wavm());
    let interp = InterpEngine::new();
    let t_jit = kernel_time(&jit, &bench.module, BoundsStrategy::Mprotect);
    let t_int = kernel_time(&interp, &bench.module, BoundsStrategy::Mprotect);
    assert!(
        t_int > t_jit * 3,
        "interp {t_int:?} should be several times slower than jit {t_jit:?}"
    );
}

/// Paper §3.1/§4.2.1: strategy-specific syscall behavior, exactly counted.
#[test]
fn strategies_issue_the_expected_syscalls() {
    let bench = by_name("trisolv", Dataset::Mini).unwrap();
    let engine = JitEngine::new(JitProfile::wasmtime());
    let loaded = engine.load(&bench.module).unwrap();

    let churn = |s: BoundsStrategy| {
        let config = MemoryConfig::new(s, 0, 64).with_reserve(16 << 20);
        let before = stats::snapshot();
        for _ in 0..10 {
            let mut inst = loaded.instantiate(&config, &Linker::new()).unwrap();
            inst.invoke("init", &[]).unwrap();
            inst.invoke("kernel", &[]).unwrap();
        }
        stats::snapshot().delta(&before)
    };

    let mp = churn(BoundsStrategy::Mprotect);
    assert!(
        mp.mprotect >= 10,
        "one mprotect per isolate: {}",
        mp.mprotect
    );
    assert_eq!(mp.uffd_zeropage, 0);

    let tr = churn(BoundsStrategy::Trap);
    assert_eq!(tr.mprotect, 0, "software checks need no mprotect");

    if leaps_and_bounds::core::uffd::sigbus_mode_available() {
        let uf = churn(BoundsStrategy::Uffd);
        assert_eq!(uf.mprotect, 0, "uffd must not call mprotect");
        assert!(
            uf.uffd_zeropage >= 10,
            "uffd resolves faults in the handler"
        );
        assert!(uf.uffd_register >= 10);
    }

    // Every strategy churns one reservation per isolate.
    assert!(mp.mmap >= 10 && tr.mmap >= 10);
}

/// The V8 profile's background machinery exists: tier-up changes the code
/// executing behind a long-lived instance without breaking it.
#[test]
fn v8_profile_survives_concurrent_tier_up() {
    let bench = by_name("bicg", Dataset::Mini).unwrap();
    let expected = bench.native_checksum();
    let engine = JitEngine::new(JitProfile::v8());
    let loaded = engine.load(&bench.module).unwrap();
    let config = MemoryConfig::new(BoundsStrategy::Mprotect, 0, 64).with_reserve(16 << 20);
    let mut inst = loaded.instantiate(&config, &Linker::new()).unwrap();
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_millis(150) {
        inst.invoke("init", &[]).unwrap();
        inst.invoke("kernel", &[]).unwrap();
        let cs = inst
            .invoke("checksum", &[])
            .unwrap()
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(cs.to_bits(), expected.to_bits());
    }
}
