//! Differential testing for loop versioning (hoisted bounds checks):
//! the guard + fast/slow copy selection must be *invisible* to program
//! behavior. Modules with dynamic (unprovable-at-compile-time) loop
//! bounds run on interpreter and JIT configurations with hoisting on and
//! off, at exact memory boundaries, and must agree bit-for-bit on
//! results, trap points, and pre-trap partial side effects.

mod common;

use common::{dynamic_bound_module, multi_function_module, A_BASE, K, MAX_N};
use lb_core::exec::{Engine, Linker};
use lb_core::{BoundsStrategy, MemoryConfig, Trap};
use lb_interp::InterpEngine;
use lb_jit::{JitEngine, JitProfile};
use lb_wasm::module::{Export, ExportKind, Function};
use lb_wasm::{Instr, MemArg, Module, Value};

/// The engine matrix every differential test runs: interpreter (analysis
/// on/off) against JIT tiers with hoisting on and off.
fn engines() -> Vec<(&'static str, Box<dyn Engine>)> {
    vec![
        ("interp", Box::new(InterpEngine::new())),
        (
            "interp-noanalysis",
            Box::new(InterpEngine::new().with_analysis(false)),
        ),
        ("wavm", Box::new(JitEngine::new(JitProfile::wavm()))),
        (
            "wavm-nohoist",
            Box::new(JitEngine::new(JitProfile::wavm().with_hoisting(false))),
        ),
        ("wasmtime", Box::new(JitEngine::new(JitProfile::wasmtime()))),
    ]
}

fn repr(r: &Result<Option<Value>, Trap>) -> String {
    match r {
        Ok(Some(v)) => format!("ok:{:016x}", v.to_bits()),
        Ok(None) => "ok:void".into(),
        Err(t) => format!("trap:{:?}", t.kind()),
    }
}

/// Invoke `go(n)` on every engine under `strategy` and assert agreement.
fn agreed(module: &Module, strategy: BoundsStrategy, n: i32, ctx: &str) -> String {
    let mut first: Option<(&str, String)> = None;
    for (name, engine) in engines() {
        let loaded = engine.load(module).expect("module loads");
        let config = MemoryConfig::new(strategy, 1, 1).with_reserve(1 << 22);
        let mut inst = loaded
            .instantiate(&config, &Linker::new())
            .expect("instantiate");
        let got = repr(&inst.invoke("go", &[Value::I32(n)]));
        match &first {
            None => first = Some((name, got)),
            Some((f, want)) => {
                assert_eq!(want, &got, "{ctx}: n={n}: `{f}` and `{name}` disagree")
            }
        }
    }
    first.unwrap().1
}

/// The plan must actually version this loop — otherwise the differential
/// tests below exercise nothing.
#[test]
fn dynamic_bound_loop_is_hoisted() {
    let m = dynamic_bound_module();
    let meta = lb_wasm::validate(&m).unwrap();
    let plan = lb_analysis::analyze_module(&m, &meta);
    let f = &plan.funcs[0];
    assert_eq!(f.summary.elided_hoisted, 1, "store site is hoisted");
    assert_eq!(
        f.summary.emitted, 1,
        "the post-loop a[n-1] read keeps its check"
    );
    let h = (0..m.functions[0].body.len() as u32)
        .find_map(|pc| f.hoist_at(pc))
        .expect("one versioned loop");
    assert_eq!(h.guards.len(), 1);
    let g = h.guards[0];
    assert!(g.strict, "backedge is `i <u end`");
    assert_eq!(g.shift, 2);
    assert_eq!(g.addend, u64::from(A_BASE) + 4);
}

/// Fast/slow selection at the exact guard boundary, under trap and clamp.
#[test]
fn versioned_loop_boundary_agrees() {
    let m = dynamic_bound_module();
    for strategy in [BoundsStrategy::Trap, BoundsStrategy::Clamp] {
        // In-bounds `n` (the largest takes the fast copy; the guard is
        // exactly `(n-1)*4 + 68 <= 65536`).
        for n in [0, 1, 7, MAX_N - 1, MAX_N] {
            let got = agreed(&m, strategy, n, "versioned loop in bounds");
            let want = if n == 0 {
                "ok:0000000000000000".to_string()
            } else {
                format!("ok:{:016x}", n - 1)
            };
            assert_eq!(got, want, "{strategy:?} n={n}");
        }
    }
    // First `n` past the guard: the slow copy runs and the strategies
    // diverge from each other (trap vs redirect) but never across engines.
    assert!(
        agreed(&m, BoundsStrategy::Trap, MAX_N + 1, "first oob").starts_with("trap:"),
        "trap strategy must trap one element past the end"
    );
    assert!(
        agreed(&m, BoundsStrategy::Clamp, MAX_N + 1, "first oob clamped").starts_with("ok:"),
        "clamp strategy redirects instead of trapping"
    );
    // A bound that wraps as signed: the guard's range pre-check must
    // route it to the slow copy, which traps at the same point.
    assert!(
        agreed(&m, BoundsStrategy::Trap, -1, "wrapping bound").starts_with("trap:"),
        "huge unsigned bound still traps at the boundary"
    );
}

/// `go(n)` (traps past the edge) plus `peek(j) -> a[j]`: after the trap,
/// every store the wasm program executed before the faulting iteration —
/// and none after — must be visible, identically on every engine.
#[test]
fn pre_trap_stores_visible_identically() {
    let mut m = dynamic_bound_module();
    // peek(j) = a[j]
    m.functions.push(Function {
        type_idx: 0,
        locals: vec![],
        body: vec![
            Instr::LocalGet(0),
            Instr::I32Const(2),
            Instr::I32Shl,
            Instr::I32Load(MemArg::offset(A_BASE)),
            Instr::End,
        ],
        name: Some("peek".into()),
    });
    m.exports.push(Export {
        name: "peek".into(),
        kind: ExportKind::Func(1),
    });
    lb_wasm::validate(&m).expect("module validates");

    let n = MAX_N + 1; // traps on the last iteration
    let mut first: Option<(&str, Vec<String>)> = None;
    for (name, engine) in engines() {
        let loaded = engine.load(&m).expect("module loads");
        let config = MemoryConfig::new(BoundsStrategy::Trap, 1, 1).with_reserve(1 << 22);
        let mut inst = loaded
            .instantiate(&config, &Linker::new())
            .expect("instantiate");
        let mut log = vec![repr(&inst.invoke("go", &[Value::I32(n)]))];
        assert!(log[0].starts_with("trap:"), "{name}: go({n}) must trap");
        for j in [0, 1, 4096, MAX_N - 1] {
            log.push(repr(&inst.invoke("peek", &[Value::I32(j)])));
        }
        match &first {
            None => {
                // Every store before the faulting iteration landed.
                for (k, j) in [0, 1, 4096, MAX_N - 1].iter().enumerate() {
                    assert_eq!(
                        log[k + 1],
                        format!("ok:{:016x}", j),
                        "{name}: store a[{j}] must be visible after the trap"
                    );
                }
                first = Some((name, log));
            }
            Some((f, want)) => assert_eq!(
                want, &log,
                "`{f}` and `{name}` disagree on pre-trap visibility"
            ),
        }
    }
}

/// Multi-function module: `go(n)` calls an internal `fill(m)` (versioned —
/// its bound joins a ⊤ argument) and sizes a second loop with an internal
/// `len()` helper whose constant return interval the interprocedural
/// analysis propagates (that loop needs no guard at all).
#[test]
fn multi_function_versioned_boundary_agrees() {
    let m = multi_function_module();
    let meta = lb_wasm::validate(&m).unwrap();

    // Plan shape: `fill`'s loop is versioned; `go`'s second loop is fully
    // statically elided through `len`'s propagated return interval.
    let plan = lb_analysis::analyze_module(&m, &meta);
    assert_eq!(plan.funcs[1].summary.elided_hoisted, 1, "fill is versioned");
    assert_eq!(plan.funcs[0].summary.elided_hoisted, 0);
    assert_eq!(
        plan.funcs[0].summary.emitted, 1,
        "only the post-loop a[n-1] read keeps its check"
    );
    assert!(
        plan.funcs[0].summary.elided_in_bounds >= 2,
        "len()'s return interval proves go's b-loop store (and the b[k-1] \
         read) in bounds: {:?}",
        plan.funcs[0].summary
    );
    assert_eq!(plan.funcs[2].summary.ret_iv, Some((K as u64, K as u64)));

    for strategy in [BoundsStrategy::Trap, BoundsStrategy::Clamp] {
        for n in [0, 1, K, MAX_N] {
            let got = agreed(&m, strategy, n, "multi-function in bounds");
            let want = if n == 0 {
                format!("ok:{:016x}", K - 1)
            } else {
                format!("ok:{:016x}", (n - 1) + (K - 1))
            };
            assert_eq!(got, want, "{strategy:?} n={n}");
        }
    }
    assert!(
        agreed(&m, BoundsStrategy::Trap, MAX_N + 1, "multi-function oob").starts_with("trap:"),
        "callee loop traps one element past the end"
    );
}

/// The `jit.checks.hoisted` counter reports fast-copy sites — and stays
/// zero with hoisting disabled.
#[test]
fn hoisted_counter_reports_fast_sites() {
    let m = dynamic_bound_module();
    let hoisted = lb_telemetry::counter("jit.checks.hoisted");
    let run = |profile: JitProfile| {
        let before = hoisted.get();
        let engine = JitEngine::new(profile);
        let loaded = engine.load(&m).expect("module loads");
        let config = MemoryConfig::new(BoundsStrategy::Trap, 1, 1).with_reserve(1 << 22);
        let mut inst = loaded
            .instantiate(&config, &Linker::new())
            .expect("instantiate");
        assert!(inst.invoke("go", &[Value::I32(7)]).is_ok());
        hoisted.get() - before
    };
    assert!(
        run(JitProfile::wavm()) > 0,
        "hoisting on: fast-copy sites counted"
    );
    assert_eq!(
        run(JitProfile::wavm().with_hoisting(false)),
        0,
        "hoisting off: no hoisted sites"
    );
}
