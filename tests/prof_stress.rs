//! Signal-coexistence stress for the sampling profiler.
//!
//! The profiler's SIGPROF handler has to run concurrently with the
//! runtime's own signal traffic — SIGBUS/userfaultfd fault service on
//! the uffd strategy, SIGSEGV guard-page traps — and with chaos-injected
//! mprotect failures on the grow path. The test's primary assertion is
//! that it *finishes*: no deadlock between handlers, no crash from a
//! sample landing mid-fault-service. On top of that we check the sample
//! accounting is bounded (every handler hit is either drained, counted
//! dropped, or counted incomplete — nothing silently lost) and that the
//! timer is fully disarmed afterwards so later tests are unaffected.

use lb_core::{BoundsStrategy, LinearMemory, MemoryConfig};
use lb_harness::{run_benchmark_checked, EngineSel, RunOutcome, RunSpec};
use lb_polybench::{by_name, common::Dataset};
use std::time::Duration;

fn spec(strategy: BoundsStrategy) -> RunSpec {
    let mut s = RunSpec::new(EngineSel::Wavm, strategy);
    s.threads = 4;
    s.warmup_iters = 1;
    s.measured_iters = 40;
    s.reserve_bytes = 64 << 20;
    s.max_pages = 512;
    s.timeout = Some(Duration::from_secs(120));
    s.retries = 2;
    s
}

#[test]
fn profiler_coexists_with_fault_service_and_chaos() {
    lb_prof::set_sampling(4000);
    let bench = by_name("gemm", Dataset::Small).expect("gemm");

    // Phase 1: uffd strategy (SIGBUS/uffd fault service on every page
    // touch) with SIGPROF firing at 4 kHz. Must complete correctly.
    let before = lb_telemetry::snapshot();
    let outcome = run_benchmark_checked(&bench, &spec(BoundsStrategy::Uffd));
    let taken = lb_telemetry::snapshot()
        .delta_since(&before)
        .counter("prof.samples.taken");
    let r = match outcome {
        RunOutcome::Completed(r) => r,
        RunOutcome::Failed(f) => panic!("uffd run must survive profiling: {f}"),
    };
    assert!(r.checksum_ok, "profiling must not corrupt results");
    let report = r.prof.as_ref().expect("profiler session ran");
    // Bounded loss: the handler-hit counter can only exceed what this
    // session accounted for by hits from the retry path's earlier
    // sessions — it can never be *less* than what we drained.
    let accounted = report.total + report.dropped + report.incomplete;
    assert!(
        taken >= report.total,
        "drained {} samples but the handler only ran {taken} times",
        report.total
    );
    assert!(
        accounted <= taken,
        "accounted {accounted} samples exceeds {taken} handler hits"
    );

    // Phase 2: hammer the mprotect grow path directly — the PolyBench
    // kernels never execute `memory.grow`, so this is the only way to
    // put SIGPROF on top of grow-time mprotect failures. One in five
    // grow calls gets an injected ENOMEM; each must surface as a clean
    // `None` (wasm -1), never a wedge or crash, while the profiler keeps
    // sampling the grow workers.
    let before = lb_telemetry::snapshot();
    let session = lb_prof::start().expect("session for grow stress");
    let chaos = lb_chaos::install("core.mprotect.grow:rate=0.2:ENOMEM;seed=11").expect("plan");
    let cfg = MemoryConfig {
        strategy: BoundsStrategy::Mprotect,
        initial_pages: 1,
        max_pages: 64,
        reserve_bytes: 16 << 20,
    };
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                lb_prof::ensure_thread();
                for _ in 0..50 {
                    let m = LinearMemory::new(&cfg).expect("memory");
                    for _ in 0..20 {
                        // Some(..) or a chaos-injected None: both fine.
                        let _ = m.grow(1);
                    }
                }
            });
        }
    });
    drop(chaos);
    let grow_report = lb_prof::resolve_profile(session.stop());
    let delta = lb_telemetry::snapshot().delta_since(&before);
    assert!(
        delta.counter("chaos.fired.core.mprotect.grow") > 0,
        "the chaos plan never fired — grow path not exercised"
    );
    // The successful grows must have recorded their mprotect latency
    // spans even with the profiler interrupting the path.
    let drained = lb_telemetry::snapshot_and_drain();
    assert!(
        !drained.spans_named("mem.protect_grow").is_empty(),
        "no mem.protect_grow spans recorded under chaos + profiling"
    );
    let _ = grow_report;

    // The sampler must be fully disarmed between sessions: a fresh
    // session starts (nothing left holding the ACTIVE latch) and the
    // process-wide timer reads back zeroed after stop.
    let session = lb_prof::start().expect("fresh session after stress");
    let _ = lb_prof::resolve_profile(session.stop());
    lb_prof::set_sampling(0);
    unsafe {
        let mut cur: libc::itimerval = std::mem::zeroed();
        assert_eq!(libc::getitimer(libc::ITIMER_PROF, &mut cur), 0);
        assert_eq!(cur.it_value.tv_sec, 0);
        assert_eq!(cur.it_value.tv_usec, 0);
    }
}
