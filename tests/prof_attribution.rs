//! Attribution-correctness test for the sampling profiler (lb-prof).
//!
//! The profiler's whole point is telling bounds-check time apart from
//! compute time, so the one thing it must get right is *direction*: a
//! JIT configuration that emits every guard must show at least as much
//! guard self-time as one that elides them all. We run the same kernel
//! under the wasmtime profile with analysis-driven elision disabled and
//! enabled and compare `guard_pct_resolved`.
//!
//! Sampling is statistical, so the assertions are gated on a minimum
//! resolved-sample count and allow slack; the accounting invariants
//! (every sample lands in exactly one bucket, unresolved is counted, not
//! discarded) are asserted unconditionally.

mod common;

use lb_core::exec::{Engine, Linker};
use lb_core::{BoundsStrategy, MemoryConfig};
use lb_jit::{JitEngine, JitProfile};
use lb_polybench::{by_name, common::Dataset};
use std::time::{Duration, Instant};

/// Run gemm for ~half a second under one JIT configuration with the
/// profiler attached, and resolve the profile.
fn profile_run(analysis: bool) -> lb_prof::ProfReport {
    // Enable sampling *before* `load`: code regions register with the
    // profiler at publish time only while it is enabled.
    lb_prof::set_sampling(4000);
    let bench = by_name("gemm", Dataset::Small).expect("gemm");
    let engine = JitEngine::new(JitProfile::wasmtime().with_analysis(analysis));
    let loaded = engine.load(&bench.module).expect("load");
    let config = MemoryConfig {
        strategy: BoundsStrategy::Trap,
        initial_pages: 0,
        max_pages: 512,
        reserve_bytes: 64 << 20,
    };
    let linker = Linker::new();
    let session = lb_prof::start().expect("profiler session");
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_millis(500) {
        let mut inst = loaded.instantiate(&config, &linker).expect("instantiate");
        inst.invoke("init", &[]).expect("init");
        inst.invoke("kernel", &[]).expect("kernel");
    }
    let report = lb_prof::resolve_profile(session.stop());
    lb_prof::set_sampling(0);
    report
}

#[test]
fn guard_attribution_tracks_check_elision() {
    let with_checks = profile_run(false);
    let elided = profile_run(true);

    // Accounting invariants hold regardless of sample counts: the class
    // buckets partition the samples, and every sample either resolved to
    // a region or was counted unresolved — none vanish.
    for (name, r) in [("with_checks", &with_checks), ("elided", &elided)] {
        let sum: u64 = r.class_counts().iter().map(|&(_, n)| n).sum();
        assert_eq!(sum, r.total, "{name}: class buckets must partition samples");
        assert_eq!(r.samples.len() as u64, r.total, "{name}");
        assert!(r.resolved() + r.unresolved == r.total, "{name}");
    }

    // Direction assertions need signal. Container CPU limits or a
    // low-resolution ITIMER can starve the sampler; skip (loudly)
    // rather than flake.
    const MIN_RESOLVED: u64 = 50;
    if with_checks.resolved() < MIN_RESOLVED || elided.resolved() < MIN_RESOLVED {
        eprintln!(
            "skipping direction assertions: too few resolved samples \
             (with_checks {}, elided {})",
            with_checks.resolved(),
            elided.resolved()
        );
        return;
    }

    // Full elision leaves (almost) no guard instructions to sample: the
    // acceptance bound is ≤2% self-time, asserted with slack for the
    // odd mid-sequence misclassification.
    assert!(
        elided.guard_pct_resolved() <= 5.0,
        "elided kernel shows {:.2}% guard self-time ({} of {} resolved)",
        elided.guard_pct_resolved(),
        elided.guard,
        elided.resolved()
    );
    // And emitting every check can only move guard time up.
    assert!(
        with_checks.guard_pct_resolved() >= elided.guard_pct_resolved() - 0.5,
        "guard self-time went the wrong way: {:.2}% with checks vs {:.2}% elided",
        with_checks.guard_pct_resolved(),
        elided.guard_pct_resolved()
    );
}

/// Run the dynamic-bound store loop for ~half a second with the profiler
/// attached. Its loop bound is a parameter, so *static* elision can never
/// remove the per-store guard — only the hoisted preheader guard can.
fn profile_hoist_run(hoisting: bool) -> lb_prof::ProfReport {
    lb_prof::set_sampling(4000);
    let m = common::dynamic_bound_module();
    let engine = JitEngine::new(JitProfile::wavm().with_hoisting(hoisting));
    let loaded = engine.load(&m).expect("load");
    let config = MemoryConfig::new(BoundsStrategy::Trap, 1, 1).with_reserve(1 << 22);
    let linker = Linker::new();
    let mut inst = loaded.instantiate(&config, &linker).expect("instantiate");
    let session = lb_prof::start().expect("profiler session");
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_millis(500) {
        inst.invoke("go", &[lb_wasm::Value::I32(common::MAX_N)])
            .expect("go stays in bounds");
    }
    let report = lb_prof::resolve_profile(session.stop());
    lb_prof::set_sampling(0);
    report
}

/// Hoisting moves the bounds check out of the loop: guard self-time on a
/// kernel whose checks static analysis *cannot* remove must measurably
/// drop when the loop is versioned behind a preheader guard.
#[test]
fn guard_self_time_drops_with_hoisting() {
    let checked = profile_hoist_run(false);
    let hoisted = profile_hoist_run(true);

    for (name, r) in [("checked", &checked), ("hoisted", &hoisted)] {
        let sum: u64 = r.class_counts().iter().map(|&(_, n)| n).sum();
        assert_eq!(sum, r.total, "{name}: class buckets must partition samples");
        assert!(r.resolved() + r.unresolved == r.total, "{name}");
    }

    const MIN_RESOLVED: u64 = 50;
    if checked.resolved() < MIN_RESOLVED || hoisted.resolved() < MIN_RESOLVED {
        eprintln!(
            "skipping direction assertions: too few resolved samples \
             (checked {}, hoisted {})",
            checked.resolved(),
            hoisted.resolved()
        );
        return;
    }

    // The versioned fast body is check-free; the preheader guard runs
    // once per call, which is statistically invisible.
    assert!(
        hoisted.guard_pct_resolved() <= 5.0,
        "hoisted kernel shows {:.2}% guard self-time ({} of {} resolved)",
        hoisted.guard_pct_resolved(),
        hoisted.guard,
        hoisted.resolved()
    );
    // Per-store guards dominate a 4-instruction loop body: the drop must
    // be real signal, not slack.
    assert!(
        checked.guard_pct_resolved() >= hoisted.guard_pct_resolved() + 5.0,
        "guard self-time did not drop with hoisting: {:.2}% checked vs {:.2}% hoisted",
        checked.guard_pct_resolved(),
        hoisted.guard_pct_resolved()
    );
}
