//! Attribution-correctness test for the sampling profiler (lb-prof).
//!
//! The profiler's whole point is telling bounds-check time apart from
//! compute time, so the one thing it must get right is *direction*: a
//! JIT configuration that emits every guard must show at least as much
//! guard self-time as one that elides them all. We run the same kernel
//! under the wasmtime profile with analysis-driven elision disabled and
//! enabled and compare `guard_pct_resolved`.
//!
//! Sampling is statistical, so the assertions are gated on a minimum
//! resolved-sample count and allow slack; the accounting invariants
//! (every sample lands in exactly one bucket, unresolved is counted, not
//! discarded) are asserted unconditionally.

mod common;

use lb_core::exec::{Engine, Linker};
use lb_core::{BoundsStrategy, MemoryConfig};
use lb_jit::{JitEngine, JitProfile};
use lb_polybench::{by_name, common::Dataset};
use std::time::{Duration, Instant};

/// Run gemm for ~half a second under one JIT configuration with the
/// profiler attached, and resolve the profile.
fn profile_run(analysis: bool) -> lb_prof::ProfReport {
    // Enable sampling *before* `load`: code regions register with the
    // profiler at publish time only while it is enabled.
    lb_prof::set_sampling(4000);
    let bench = by_name("gemm", Dataset::Small).expect("gemm");
    let engine = JitEngine::new(JitProfile::wasmtime().with_analysis(analysis));
    let loaded = engine.load(&bench.module).expect("load");
    let config = MemoryConfig {
        strategy: BoundsStrategy::Trap,
        initial_pages: 0,
        max_pages: 512,
        reserve_bytes: 64 << 20,
    };
    let linker = Linker::new();
    let session = lb_prof::start().expect("profiler session");
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_millis(500) {
        let mut inst = loaded.instantiate(&config, &linker).expect("instantiate");
        inst.invoke("init", &[]).expect("init");
        inst.invoke("kernel", &[]).expect("kernel");
    }
    let report = lb_prof::resolve_profile(session.stop());
    lb_prof::set_sampling(0);
    report
}

#[test]
fn guard_attribution_tracks_check_elision() {
    let with_checks = profile_run(false);
    let elided = profile_run(true);

    // Accounting invariants hold regardless of sample counts: the class
    // buckets partition the samples, and every sample either resolved to
    // a region or was counted unresolved — none vanish.
    for (name, r) in [("with_checks", &with_checks), ("elided", &elided)] {
        let sum: u64 = r.class_counts().iter().map(|&(_, n)| n).sum();
        assert_eq!(sum, r.total, "{name}: class buckets must partition samples");
        assert_eq!(r.samples.len() as u64, r.total, "{name}");
        assert!(r.resolved() + r.unresolved == r.total, "{name}");
    }

    // Direction assertions need signal. Container CPU limits or a
    // low-resolution ITIMER can starve the sampler; skip (loudly)
    // rather than flake.
    const MIN_RESOLVED: u64 = 50;
    if with_checks.resolved() < MIN_RESOLVED || elided.resolved() < MIN_RESOLVED {
        eprintln!(
            "skipping direction assertions: too few resolved samples \
             (with_checks {}, elided {})",
            with_checks.resolved(),
            elided.resolved()
        );
        return;
    }

    // Full elision leaves (almost) no guard instructions to sample: the
    // acceptance bound is ≤2% self-time, asserted with slack for the
    // odd mid-sequence misclassification.
    assert!(
        elided.guard_pct_resolved() <= 5.0,
        "elided kernel shows {:.2}% guard self-time ({} of {} resolved)",
        elided.guard_pct_resolved(),
        elided.guard,
        elided.resolved()
    );
    // And emitting every check can only move guard time up.
    assert!(
        with_checks.guard_pct_resolved() >= elided.guard_pct_resolved() - 0.5,
        "guard self-time went the wrong way: {:.2}% with checks vs {:.2}% elided",
        with_checks.guard_pct_resolved(),
        elided.guard_pct_resolved()
    );
}

/// Run the dynamic-bound store loop for ~half a second with the profiler
/// attached. Its loop bound is a parameter, so *static* elision can never
/// remove the per-store guard — only the hoisted preheader guard can.
fn profile_hoist_run(hoisting: bool) -> lb_prof::ProfReport {
    lb_prof::set_sampling(4000);
    let m = common::dynamic_bound_module();
    let engine = JitEngine::new(JitProfile::wavm().with_hoisting(hoisting));
    let loaded = engine.load(&m).expect("load");
    let config = MemoryConfig::new(BoundsStrategy::Trap, 1, 1).with_reserve(1 << 22);
    let linker = Linker::new();
    let mut inst = loaded.instantiate(&config, &linker).expect("instantiate");
    let session = lb_prof::start().expect("profiler session");
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_millis(500) {
        inst.invoke("go", &[lb_wasm::Value::I32(common::MAX_N)])
            .expect("go stays in bounds");
    }
    let report = lb_prof::resolve_profile(session.stop());
    lb_prof::set_sampling(0);
    report
}

/// Hoisting moves the bounds check out of the loop: guard self-time on a
/// kernel whose checks static analysis *cannot* remove must measurably
/// drop when the loop is versioned behind a preheader guard.
#[test]
fn guard_self_time_drops_with_hoisting() {
    let checked = profile_hoist_run(false);
    let hoisted = profile_hoist_run(true);

    for (name, r) in [("checked", &checked), ("hoisted", &hoisted)] {
        let sum: u64 = r.class_counts().iter().map(|&(_, n)| n).sum();
        assert_eq!(sum, r.total, "{name}: class buckets must partition samples");
        assert!(r.resolved() + r.unresolved == r.total, "{name}");
    }

    const MIN_RESOLVED: u64 = 50;
    if checked.resolved() < MIN_RESOLVED || hoisted.resolved() < MIN_RESOLVED {
        eprintln!(
            "skipping direction assertions: too few resolved samples \
             (checked {}, hoisted {})",
            checked.resolved(),
            hoisted.resolved()
        );
        return;
    }

    // The versioned fast body is check-free; the preheader guard runs
    // once per call, which is statistically invisible.
    assert!(
        hoisted.guard_pct_resolved() <= 5.0,
        "hoisted kernel shows {:.2}% guard self-time ({} of {} resolved)",
        hoisted.guard_pct_resolved(),
        hoisted.guard,
        hoisted.resolved()
    );
    // Per-store guards dominate a 4-instruction loop body: the drop must
    // be real signal, not slack.
    assert!(
        checked.guard_pct_resolved() >= hoisted.guard_pct_resolved() + 5.0,
        "guard self-time did not drop with hoisting: {:.2}% checked vs {:.2}% hoisted",
        checked.guard_pct_resolved(),
        hoisted.guard_pct_resolved()
    );
}

/// Fused guards (mid tier + IR guard optimization) compare the index
/// directly against the per-extent limit table — no address-setup `lea`
/// precedes them — yet the profiler's classifier must still bucket the
/// compare *and* its `jae` as GuardCompare, so fused checks keep showing
/// up as bounds-check time rather than leaking into Compute.
/// Deterministic: classifies real emitted code, no sampling involved.
#[test]
fn fused_guards_classify_as_guard_compare() {
    use lb_jit::codegen::{compile_function, CompileParams, OptLevel};
    use lb_verify::decode::decode_all;
    use lb_verify::isa::{Cc, Inst, Reg, W};
    use lb_verify::InstClass;

    let module = common::rmw_module();
    let meta = lb_wasm::validate(&module).expect("module validates");
    let extents = lb_jit::dataflow::module_extents(&module);
    let code = compile_function(
        CompileParams {
            module: &module,
            metas: &meta.funcs,
            strategy: BoundsStrategy::Trap,
            opt: OptLevel::Mid,
            safepoints: false,
            funcptrs_base: 0,
            plans: None,
            guardopt: true,
            limit_extents: &extents,
        },
        0,
    );
    let classes = lb_verify::classify_function(&code, 8).expect("emitted code classifies");
    let insts = decode_all(&code).expect("emitted code decodes");
    assert_eq!(classes.len(), insts.len());

    let mut fused_cmps = 0;
    for (i, ((_, inst), cl)) in insts.iter().zip(&classes).enumerate() {
        let is_limit_cmp = matches!(
            inst,
            Inst::CmpRm { w: W::W64, m, .. }
                if m.base == Reg::R15
                    && m.index.is_none()
                    && (64..128).contains(&m.disp)
                    && (m.disp - 64) % 8 == 0
        );
        if !is_limit_cmp {
            continue;
        }
        fused_cmps += 1;
        assert_eq!(
            cl.class,
            InstClass::GuardCompare,
            "fused limit compare at offset {} must attribute as a guard",
            cl.offset
        );
        let next = &classes[i + 1];
        assert!(
            matches!(insts[i + 1].1, Inst::Jcc { cc: Cc::Ae, .. }),
            "a fused compare is followed by its jae"
        );
        assert_eq!(
            next.class,
            InstClass::GuardCompare,
            "the fused guard's jae at offset {} must attribute as a guard",
            next.offset
        );
    }
    assert!(
        fused_cmps > 0,
        "the rmw module under guardopt must contain fused guards"
    );
}
