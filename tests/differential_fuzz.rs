//! Randomized differential testing: generate random (but valid) wasm
//! programs and require the interpreter and every JIT profile to agree
//! bit-for-bit — on results *and* on traps.
//!
//! This is the deepest correctness gate for the JIT: random expression
//! trees exercise register-pressure spills, constant folding, division
//! edge cases, float NaN propagation, trapping conversions, loops, and
//! memory traffic in combinations the suites never produce.

use lb_core::exec::{Engine, Linker};
use lb_core::{BoundsStrategy, MemoryConfig, Trap};
use lb_dsl::expr::{self, Expr};
use lb_dsl::{DslFunc, KernelModule, Var};
use lb_interp::InterpEngine;
use lb_jit::{JitEngine, JitProfile};
use lb_wasm::types::ValType;
use lb_wasm::{Module, Value};

const MEM_MASK: i32 = 0x3FF8; // keep addresses inside one 64 KiB page

/// Deterministic SplitMix64 stream (this repo builds offline, so
/// rand/proptest are unavailable; fixed seeds keep failures
/// reproducible — rerun with the printed seed to reproduce).
struct Rng(u64);

impl Rng {
    fn seed_from_u64(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }

    fn gen_i32(&mut self) -> i32 {
        self.next_u64() as i32
    }

    fn gen_i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Uniform in `[lo, hi)`.
    fn gen_range(&mut self, r: std::ops::Range<usize>) -> usize {
        r.start + (self.next_u64() as usize) % (r.end - r.start)
    }
}

struct Gen {
    rng: Rng,
    i32s: Vec<Var>,
    i64s: Vec<Var>,
    f64s: Vec<Var>,
}

impl Gen {
    fn expr_i32(&mut self, depth: u32) -> Expr {
        if depth == 0 || self.rng.gen_bool(0.3) {
            return match self.rng.gen_range(0..3) {
                0 => expr::i32(self.rng.gen_i32()),
                1 => {
                    let v = self.i32s[self.rng.gen_range(0..self.i32s.len())];
                    v.get()
                }
                _ => {
                    // load from a masked address
                    let a = self.expr_i32(0).and(expr::i32(MEM_MASK));
                    lb_dsl::Expr::from_raw(
                        {
                            let mut c = a.into_code();
                            c.push(lb_wasm::Instr::I32Load(lb_wasm::MemArg::offset(0)));
                            c
                        },
                        ValType::I32,
                    )
                }
            };
        }
        let a = self.expr_i32(depth - 1);
        let b = self.expr_i32(depth - 1);
        match self.rng.gen_range(0..16) {
            0 => a.add(b),
            1 => a.sub(b),
            2 => a.mul(b),
            3 => a.and(b),
            4 => a.or(b),
            5 => a.xor(b),
            6 => a.shl(b.and(expr::i32(31))),
            7 => a.shr_s(b.and(expr::i32(31))),
            8 => a.shr_u(b.and(expr::i32(31))),
            9 => a.eq(b),
            10 => a.lt(b),
            11 => a.lt_u(b),
            12 => a.ge(b),
            13 => {
                let c = self.expr_i32(0);
                a.select(b, c.and(expr::i32(1)))
            }
            14 => a.div_s(b), // may trap; both sides must agree
            _ => a.rem_s(b),  // may trap
        }
    }

    fn expr_i64(&mut self, depth: u32) -> Expr {
        if depth == 0 || self.rng.gen_bool(0.35) {
            return match self.rng.gen_range(0..3) {
                0 => expr::i64(self.rng.gen_i64()),
                1 => {
                    let v = self.i64s[self.rng.gen_range(0..self.i64s.len())];
                    v.get()
                }
                _ => self.expr_i32(1).to_i64(),
            };
        }
        let a = self.expr_i64(depth - 1);
        let b = self.expr_i64(depth - 1);
        match self.rng.gen_range(0..8) {
            0 => a.add(b),
            1 => a.sub(b),
            2 => a.mul(b),
            3 => a.xor(b),
            4 => a.and(b),
            5 => a.shl(b.and(expr::i64(63))),
            6 => a.or(b),
            _ => a.div_s(b), // may trap
        }
    }

    fn expr_f64(&mut self, depth: u32) -> Expr {
        if depth == 0 || self.rng.gen_bool(0.3) {
            return match self.rng.gen_range(0..3) {
                0 => expr::f64(f64::from_bits(self.rng.gen_u64() & 0x7FEF_FFFF_FFFF_FFFF)),
                1 => {
                    let v = self.f64s[self.rng.gen_range(0..self.f64s.len())];
                    v.get()
                }
                _ => self.expr_i32(1).to_f64(),
            };
        }
        let a = self.expr_f64(depth - 1);
        match self.rng.gen_range(0..10) {
            0 => a.add(self.expr_f64(depth - 1)),
            1 => a.sub(self.expr_f64(depth - 1)),
            2 => a.mul(self.expr_f64(depth - 1)),
            3 => a.fdiv(self.expr_f64(depth - 1)),
            4 => a.sqrt(),
            5 => a.abs(),
            6 => a.neg(),
            7 => a.min(self.expr_f64(depth - 1)),
            8 => a.max(self.expr_f64(depth - 1)),
            _ => a.to_f32().to_f64(), // demote/promote round-trip
        }
    }

    fn stmt(&mut self, f: &mut DslFunc) {
        match self.rng.gen_range(0..7) {
            0 => {
                let v = self.i32s[self.rng.gen_range(0..self.i32s.len())];
                let e = self.expr_i32(3);
                f.assign(v, e);
            }
            1 => {
                let v = self.i64s[self.rng.gen_range(0..self.i64s.len())];
                let e = self.expr_i64(3);
                f.assign(v, e);
            }
            2 => {
                let v = self.f64s[self.rng.gen_range(0..self.f64s.len())];
                let e = self.expr_f64(3);
                f.assign(v, e);
            }
            3 => {
                // store i32 to a masked address
                let addr = self.expr_i32(2).and(expr::i32(MEM_MASK));
                let val = self.expr_i32(2);
                let mut code = addr.into_code();
                code.extend(val.into_code());
                code.push(lb_wasm::Instr::I32Store(lb_wasm::MemArg::offset(0)));
                f.stmt(code);
            }
            4 => {
                // store f64
                let addr = self.expr_i32(2).and(expr::i32(MEM_MASK));
                let val = self.expr_f64(2);
                let mut code = addr.into_code();
                code.extend(val.into_code());
                code.push(lb_wasm::Instr::F64Store(lb_wasm::MemArg::offset(0)));
                f.stmt(code);
            }
            5 => {
                let cond = self.expr_i32(2).and(expr::i32(1));
                let v = self.i32s[self.rng.gen_range(0..self.i32s.len())];
                let e1 = self.expr_i32(2);
                let e2 = self.expr_i32(2);
                f.if_else(cond, |f| f.assign(v, e1), |f| f.assign(v, e2));
            }
            _ => {
                // bounded loop
                let v = self.i32s[0];
                let n = self.rng.gen_range(1..6) as i32;
                let acc = self.i64s[self.rng.gen_range(0..self.i64s.len())];
                let e = self.expr_i64(2);
                f.for_i32(v, expr::i32(0), expr::i32(n), |f| {
                    f.assign(acc, acc.get().add(e).add(v.get().to_i64()));
                });
            }
        }
    }
}

/// Build a random single-function module returning an i64 digest.
fn random_module(seed: u64) -> Module {
    let mut f = DslFunc::new("fuzz", &[], Some(ValType::I64));
    let i32s: Vec<Var> = (0..4).map(|_| f.local_i32()).collect();
    let i64s: Vec<Var> = (0..3).map(|_| f.local_i64()).collect();
    let f64s: Vec<Var> = (0..3).map(|_| f.local_f64()).collect();
    let mut g = Gen {
        rng: Rng::seed_from_u64(seed),
        i32s,
        i64s,
        f64s,
    };
    // Seed the locals deterministically so expressions have varied inputs.
    for (k, v) in g.i32s.clone().into_iter().enumerate() {
        f.assign(v, expr::i32(g.rng.gen_i32() ^ k as i32));
    }
    for v in g.i64s.clone() {
        f.assign(v, expr::i64(g.rng.gen_i64()));
    }
    for v in g.f64s.clone() {
        f.assign(
            v,
            expr::f64(f64::from_bits(g.rng.gen_u64() & 0x7FEF_FFFF_FFFF_FFFF)),
        );
    }
    let n_stmts = g.rng.gen_range(8..32);
    for _ in 0..n_stmts {
        g.stmt(&mut f);
    }
    // Digest: mix everything into one i64.
    let mut digest = g.i64s[0].get();
    for v in &g.i64s[1..] {
        digest = digest.xor(v.get());
    }
    for v in &g.i32s {
        digest = digest.add(v.get().to_i64());
    }
    for v in &g.f64s {
        let bits = Expr::from_raw(
            {
                let mut c = v.get().into_code();
                c.push(lb_wasm::Instr::I64ReinterpretF64);
                c
            },
            ValType::I64,
        );
        digest = digest.xor(bits);
    }
    f.ret(digest);

    let mut km = KernelModule::new();
    km.memory(1, Some(2));
    km.add_exported(f);
    km.finish()
}

fn run_on(
    engine: &dyn Engine,
    module: &Module,
    strategy: BoundsStrategy,
) -> Result<Option<Value>, Trap> {
    let loaded = engine.load(module).expect("generated module loads");
    let config = MemoryConfig::new(strategy, 1, 2).with_reserve(1 << 22);
    let mut inst = loaded
        .instantiate(&config, &Linker::new())
        .expect("instantiate");
    inst.invoke("fuzz", &[])
}

fn outcome_repr(r: &Result<Option<Value>, Trap>) -> String {
    match r {
        Ok(Some(v)) => format!("ok:{:016x}", v.to_bits()),
        Ok(None) => "ok:void".into(),
        Err(t) => format!("trap:{:?}", t.kind()),
    }
}

/// How many random programs each test checks (proptest previously ran 48
/// cases; the seeds below are a fixed stream from the meta-seed).
const CASES: u32 = 48;

fn case_seeds(meta_seed: u64) -> impl Iterator<Item = u64> {
    let mut rng = Rng::seed_from_u64(meta_seed);
    (0..CASES).map(move |_| rng.next_u64())
}

/// The interpreter and every JIT profile agree on random programs.
#[test]
fn engines_agree_on_random_programs() {
    for seed in case_seeds(0xD1FF_F422) {
        let module = random_module(seed);
        lb_wasm::validate(&module).expect("generated module validates");

        let interp = InterpEngine::new();
        let reference = run_on(&interp, &module, BoundsStrategy::Trap);

        for profile in [JitProfile::wavm(), JitProfile::wasmtime(), JitProfile::v8()] {
            let jit = JitEngine::new(profile);
            for strategy in [BoundsStrategy::Trap, BoundsStrategy::Mprotect] {
                let got = run_on(&jit, &module, strategy);
                assert_eq!(
                    outcome_repr(&reference),
                    outcome_repr(&got),
                    "seed {} profile {} strategy {}",
                    seed,
                    profile.name,
                    strategy
                );
            }
        }
    }
}

/// Generated modules survive a binary round-trip and still agree.
#[test]
fn binary_roundtrip_preserves_behavior() {
    for seed in case_seeds(0xB14A_47) {
        let module = random_module(seed);
        let bytes = lb_wasm::binary::encode(&module);
        let decoded = lb_wasm::binary::decode(&bytes).expect("decode");
        assert_eq!(&decoded, &module, "seed {seed}");

        let interp = InterpEngine::new();
        let a = run_on(&interp, &module, BoundsStrategy::Trap);
        let b = run_on(&interp, &decoded, BoundsStrategy::Trap);
        assert_eq!(outcome_repr(&a), outcome_repr(&b), "seed {seed}");
    }
}
