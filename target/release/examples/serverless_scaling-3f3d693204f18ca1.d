/root/repo/target/release/examples/serverless_scaling-3f3d693204f18ca1.d: examples/serverless_scaling.rs

/root/repo/target/release/examples/serverless_scaling-3f3d693204f18ca1: examples/serverless_scaling.rs

examples/serverless_scaling.rs:
