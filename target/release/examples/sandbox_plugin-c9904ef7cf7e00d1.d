/root/repo/target/release/examples/sandbox_plugin-c9904ef7cf7e00d1.d: examples/sandbox_plugin.rs

/root/repo/target/release/examples/sandbox_plugin-c9904ef7cf7e00d1: examples/sandbox_plugin.rs

examples/sandbox_plugin.rs:
