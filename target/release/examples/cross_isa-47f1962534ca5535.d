/root/repo/target/release/examples/cross_isa-47f1962534ca5535.d: examples/cross_isa.rs

/root/repo/target/release/examples/cross_isa-47f1962534ca5535: examples/cross_isa.rs

examples/cross_isa.rs:
