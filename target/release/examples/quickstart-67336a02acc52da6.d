/root/repo/target/release/examples/quickstart-67336a02acc52da6.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-67336a02acc52da6: examples/quickstart.rs

examples/quickstart.rs:
