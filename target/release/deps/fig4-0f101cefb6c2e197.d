/root/repo/target/release/deps/fig4-0f101cefb6c2e197.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-0f101cefb6c2e197: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
