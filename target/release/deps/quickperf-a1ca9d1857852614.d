/root/repo/target/release/deps/quickperf-a1ca9d1857852614.d: crates/bench/src/bin/quickperf.rs

/root/repo/target/release/deps/quickperf-a1ca9d1857852614: crates/bench/src/bin/quickperf.rs

crates/bench/src/bin/quickperf.rs:
