/root/repo/target/release/deps/lb_sys-59b27a283bbee079.d: crates/sys/src/lib.rs

/root/repo/target/release/deps/lb_sys-59b27a283bbee079: crates/sys/src/lib.rs

crates/sys/src/lib.rs:
