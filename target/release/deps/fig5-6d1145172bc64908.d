/root/repo/target/release/deps/fig5-6d1145172bc64908.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/libfig5-6d1145172bc64908.rmeta: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
