/root/repo/target/release/deps/semantics-49c5e3c91e173b10.d: crates/interp/tests/semantics.rs

/root/repo/target/release/deps/semantics-49c5e3c91e173b10: crates/interp/tests/semantics.rs

crates/interp/tests/semantics.rs:
