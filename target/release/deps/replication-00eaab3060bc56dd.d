/root/repo/target/release/deps/replication-00eaab3060bc56dd.d: crates/bench/src/bin/replication.rs

/root/repo/target/release/deps/replication-00eaab3060bc56dd: crates/bench/src/bin/replication.rs

crates/bench/src/bin/replication.rs:
