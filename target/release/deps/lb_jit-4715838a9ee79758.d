/root/repo/target/release/deps/lb_jit-4715838a9ee79758.d: crates/jit/src/lib.rs crates/jit/src/asm.rs crates/jit/src/codebuf.rs crates/jit/src/codegen.rs crates/jit/src/engine.rs crates/jit/src/runtime.rs

/root/repo/target/release/deps/lb_jit-4715838a9ee79758: crates/jit/src/lib.rs crates/jit/src/asm.rs crates/jit/src/codebuf.rs crates/jit/src/codegen.rs crates/jit/src/engine.rs crates/jit/src/runtime.rs

crates/jit/src/lib.rs:
crates/jit/src/asm.rs:
crates/jit/src/codebuf.rs:
crates/jit/src/codegen.rs:
crates/jit/src/engine.rs:
crates/jit/src/runtime.rs:
