/root/repo/target/release/deps/lb_spec_proxy-e01a550ec7d8740b.d: crates/spec-proxy/src/lib.rs crates/spec-proxy/src/common.rs crates/spec-proxy/src/graph.rs crates/spec-proxy/src/md.rs crates/spec-proxy/src/media.rs crates/spec-proxy/src/xz.rs

/root/repo/target/release/deps/lb_spec_proxy-e01a550ec7d8740b: crates/spec-proxy/src/lib.rs crates/spec-proxy/src/common.rs crates/spec-proxy/src/graph.rs crates/spec-proxy/src/md.rs crates/spec-proxy/src/media.rs crates/spec-proxy/src/xz.rs

crates/spec-proxy/src/lib.rs:
crates/spec-proxy/src/common.rs:
crates/spec-proxy/src/graph.rs:
crates/spec-proxy/src/md.rs:
crates/spec-proxy/src/media.rs:
crates/spec-proxy/src/xz.rs:
