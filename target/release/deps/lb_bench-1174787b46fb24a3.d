/root/repo/target/release/deps/lb_bench-1174787b46fb24a3.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/liblb_bench-1174787b46fb24a3.rlib: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/liblb_bench-1174787b46fb24a3.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
