/root/repo/target/release/deps/exec-5e4c3c7ec8088f33.d: crates/jit/tests/exec.rs

/root/repo/target/release/deps/exec-5e4c3c7ec8088f33: crates/jit/tests/exec.rs

crates/jit/tests/exec.rs:
