/root/repo/target/release/deps/differential_interp-7dc0285eb24a9280.d: crates/polybench/tests/differential_interp.rs

/root/repo/target/release/deps/differential_interp-7dc0285eb24a9280: crates/polybench/tests/differential_interp.rs

crates/polybench/tests/differential_interp.rs:
