/root/repo/target/release/deps/lb_interp-5fc61290493cc387.d: crates/interp/src/lib.rs crates/interp/src/engine.rs crates/interp/src/run.rs

/root/repo/target/release/deps/liblb_interp-5fc61290493cc387.rmeta: crates/interp/src/lib.rs crates/interp/src/engine.rs crates/interp/src/run.rs

crates/interp/src/lib.rs:
crates/interp/src/engine.rs:
crates/interp/src/run.rs:
