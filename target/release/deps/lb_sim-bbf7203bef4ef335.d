/root/repo/target/release/deps/lb_sim-bbf7203bef4ef335.d: crates/sim/src/lib.rs

/root/repo/target/release/deps/liblb_sim-bbf7203bef4ef335.rlib: crates/sim/src/lib.rs

/root/repo/target/release/deps/liblb_sim-bbf7203bef4ef335.rmeta: crates/sim/src/lib.rs

crates/sim/src/lib.rs:
