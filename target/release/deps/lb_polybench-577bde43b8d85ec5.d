/root/repo/target/release/deps/lb_polybench-577bde43b8d85ec5.d: crates/polybench/src/lib.rs crates/polybench/src/common.rs crates/polybench/src/data.rs crates/polybench/src/linalg1.rs crates/polybench/src/linalg2.rs crates/polybench/src/medley.rs crates/polybench/src/solvers.rs crates/polybench/src/stencils.rs

/root/repo/target/release/deps/liblb_polybench-577bde43b8d85ec5.rlib: crates/polybench/src/lib.rs crates/polybench/src/common.rs crates/polybench/src/data.rs crates/polybench/src/linalg1.rs crates/polybench/src/linalg2.rs crates/polybench/src/medley.rs crates/polybench/src/solvers.rs crates/polybench/src/stencils.rs

/root/repo/target/release/deps/liblb_polybench-577bde43b8d85ec5.rmeta: crates/polybench/src/lib.rs crates/polybench/src/common.rs crates/polybench/src/data.rs crates/polybench/src/linalg1.rs crates/polybench/src/linalg2.rs crates/polybench/src/medley.rs crates/polybench/src/solvers.rs crates/polybench/src/stencils.rs

crates/polybench/src/lib.rs:
crates/polybench/src/common.rs:
crates/polybench/src/data.rs:
crates/polybench/src/linalg1.rs:
crates/polybench/src/linalg2.rs:
crates/polybench/src/medley.rs:
crates/polybench/src/solvers.rs:
crates/polybench/src/stencils.rs:
