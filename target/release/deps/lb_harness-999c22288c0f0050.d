/root/repo/target/release/deps/lb_harness-999c22288c0f0050.d: crates/harness/src/lib.rs crates/harness/src/procstat.rs crates/harness/src/report.rs crates/harness/src/runner.rs crates/harness/src/stats.rs

/root/repo/target/release/deps/liblb_harness-999c22288c0f0050.rlib: crates/harness/src/lib.rs crates/harness/src/procstat.rs crates/harness/src/report.rs crates/harness/src/runner.rs crates/harness/src/stats.rs

/root/repo/target/release/deps/liblb_harness-999c22288c0f0050.rmeta: crates/harness/src/lib.rs crates/harness/src/procstat.rs crates/harness/src/report.rs crates/harness/src/runner.rs crates/harness/src/stats.rs

crates/harness/src/lib.rs:
crates/harness/src/procstat.rs:
crates/harness/src/report.rs:
crates/harness/src/runner.rs:
crates/harness/src/stats.rs:
