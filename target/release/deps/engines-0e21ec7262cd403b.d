/root/repo/target/release/deps/engines-0e21ec7262cd403b.d: crates/bench/benches/engines.rs

/root/repo/target/release/deps/libengines-0e21ec7262cd403b.rmeta: crates/bench/benches/engines.rs

crates/bench/benches/engines.rs:
