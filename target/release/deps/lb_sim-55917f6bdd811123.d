/root/repo/target/release/deps/lb_sim-55917f6bdd811123.d: crates/sim/src/lib.rs

/root/repo/target/release/deps/liblb_sim-55917f6bdd811123.rmeta: crates/sim/src/lib.rs

crates/sim/src/lib.rs:
