/root/repo/target/release/deps/lb_isa_model-9c90aa4d9a73ab20.d: crates/isa-model/src/lib.rs

/root/repo/target/release/deps/liblb_isa_model-9c90aa4d9a73ab20.rlib: crates/isa-model/src/lib.rs

/root/repo/target/release/deps/liblb_isa_model-9c90aa4d9a73ab20.rmeta: crates/isa-model/src/lib.rs

crates/isa-model/src/lib.rs:
