/root/repo/target/release/deps/lb_sys-347fc1ce5ebbbab6.d: crates/sys/src/lib.rs

/root/repo/target/release/deps/liblb_sys-347fc1ce5ebbbab6.rmeta: crates/sys/src/lib.rs

crates/sys/src/lib.rs:
