/root/repo/target/release/deps/fig5-bbf1f9aa3e0f4183.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-bbf1f9aa3e0f4183: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
