/root/repo/target/release/deps/lb_bench-0c9dcabbbbd2e871.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/liblb_bench-0c9dcabbbbd2e871.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
