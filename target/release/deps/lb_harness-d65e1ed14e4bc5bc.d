/root/repo/target/release/deps/lb_harness-d65e1ed14e4bc5bc.d: crates/harness/src/lib.rs crates/harness/src/procstat.rs crates/harness/src/report.rs crates/harness/src/runner.rs crates/harness/src/stats.rs

/root/repo/target/release/deps/lb_harness-d65e1ed14e4bc5bc: crates/harness/src/lib.rs crates/harness/src/procstat.rs crates/harness/src/report.rs crates/harness/src/runner.rs crates/harness/src/stats.rs

crates/harness/src/lib.rs:
crates/harness/src/procstat.rs:
crates/harness/src/report.rs:
crates/harness/src/runner.rs:
crates/harness/src/stats.rs:
