/root/repo/target/release/deps/fig5-bae4df38696af31e.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-bae4df38696af31e: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
