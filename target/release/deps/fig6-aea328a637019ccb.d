/root/repo/target/release/deps/fig6-aea328a637019ccb.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/libfig6-aea328a637019ccb.rmeta: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
