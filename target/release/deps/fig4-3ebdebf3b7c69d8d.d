/root/repo/target/release/deps/fig4-3ebdebf3b7c69d8d.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-3ebdebf3b7c69d8d: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
