/root/repo/target/release/deps/lb_sim-c4fd6b211d78a1b2.d: crates/sim/src/lib.rs

/root/repo/target/release/deps/lb_sim-c4fd6b211d78a1b2: crates/sim/src/lib.rs

crates/sim/src/lib.rs:
