/root/repo/target/release/deps/fig2-db85551e2c5a8af4.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-db85551e2c5a8af4: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
