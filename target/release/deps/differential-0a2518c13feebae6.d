/root/repo/target/release/deps/differential-0a2518c13feebae6.d: crates/spec-proxy/tests/differential.rs

/root/repo/target/release/deps/differential-0a2518c13feebae6: crates/spec-proxy/tests/differential.rs

crates/spec-proxy/tests/differential.rs:
