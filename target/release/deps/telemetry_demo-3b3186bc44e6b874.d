/root/repo/target/release/deps/telemetry_demo-3b3186bc44e6b874.d: crates/bench/src/bin/telemetry_demo.rs

/root/repo/target/release/deps/telemetry_demo-3b3186bc44e6b874: crates/bench/src/bin/telemetry_demo.rs

crates/bench/src/bin/telemetry_demo.rs:
