/root/repo/target/release/deps/lb_bench-e2a1174481e0a808.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/liblb_bench-e2a1174481e0a808.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
