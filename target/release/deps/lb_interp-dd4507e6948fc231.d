/root/repo/target/release/deps/lb_interp-dd4507e6948fc231.d: crates/interp/src/lib.rs crates/interp/src/engine.rs crates/interp/src/run.rs

/root/repo/target/release/deps/liblb_interp-dd4507e6948fc231.rlib: crates/interp/src/lib.rs crates/interp/src/engine.rs crates/interp/src/run.rs

/root/repo/target/release/deps/liblb_interp-dd4507e6948fc231.rmeta: crates/interp/src/lib.rs crates/interp/src/engine.rs crates/interp/src/run.rs

crates/interp/src/lib.rs:
crates/interp/src/engine.rs:
crates/interp/src/run.rs:
