/root/repo/target/release/deps/quickperf-dd958160d27dcfd2.d: crates/bench/src/bin/quickperf.rs

/root/repo/target/release/deps/libquickperf-dd958160d27dcfd2.rmeta: crates/bench/src/bin/quickperf.rs

crates/bench/src/bin/quickperf.rs:
