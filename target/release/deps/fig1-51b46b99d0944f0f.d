/root/repo/target/release/deps/fig1-51b46b99d0944f0f.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-51b46b99d0944f0f: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
