/root/repo/target/release/deps/lb_interp-8c4837c259bd5ce4.d: crates/interp/src/lib.rs crates/interp/src/engine.rs crates/interp/src/run.rs

/root/repo/target/release/deps/liblb_interp-8c4837c259bd5ce4.rmeta: crates/interp/src/lib.rs crates/interp/src/engine.rs crates/interp/src/run.rs

crates/interp/src/lib.rs:
crates/interp/src/engine.rs:
crates/interp/src/run.rs:
