/root/repo/target/release/deps/quickperf-9b0ccb81051421c0.d: crates/bench/src/bin/quickperf.rs

/root/repo/target/release/deps/quickperf-9b0ccb81051421c0: crates/bench/src/bin/quickperf.rs

crates/bench/src/bin/quickperf.rs:
