/root/repo/target/release/deps/fig6-c1dd31ef1991b89c.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-c1dd31ef1991b89c: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
