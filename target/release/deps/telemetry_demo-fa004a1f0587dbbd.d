/root/repo/target/release/deps/telemetry_demo-fa004a1f0587dbbd.d: crates/bench/src/bin/telemetry_demo.rs

/root/repo/target/release/deps/telemetry_demo-fa004a1f0587dbbd: crates/bench/src/bin/telemetry_demo.rs

crates/bench/src/bin/telemetry_demo.rs:
