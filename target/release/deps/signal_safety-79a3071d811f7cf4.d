/root/repo/target/release/deps/signal_safety-79a3071d811f7cf4.d: crates/telemetry/tests/signal_safety.rs

/root/repo/target/release/deps/signal_safety-79a3071d811f7cf4: crates/telemetry/tests/signal_safety.rs

crates/telemetry/tests/signal_safety.rs:
