/root/repo/target/release/deps/lb_isa_model-ce04b90f87874785.d: crates/isa-model/src/lib.rs

/root/repo/target/release/deps/lb_isa_model-ce04b90f87874785: crates/isa-model/src/lib.rs

crates/isa-model/src/lib.rs:
