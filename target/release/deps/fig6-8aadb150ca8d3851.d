/root/repo/target/release/deps/fig6-8aadb150ca8d3851.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-8aadb150ca8d3851: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
