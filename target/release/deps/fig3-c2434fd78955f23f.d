/root/repo/target/release/deps/fig3-c2434fd78955f23f.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-c2434fd78955f23f: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
