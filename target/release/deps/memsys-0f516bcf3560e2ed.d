/root/repo/target/release/deps/memsys-0f516bcf3560e2ed.d: crates/bench/benches/memsys.rs

/root/repo/target/release/deps/libmemsys-0f516bcf3560e2ed.rmeta: crates/bench/benches/memsys.rs

crates/bench/benches/memsys.rs:
