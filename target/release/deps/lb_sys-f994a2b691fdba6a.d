/root/repo/target/release/deps/lb_sys-f994a2b691fdba6a.d: crates/sys/src/lib.rs

/root/repo/target/release/deps/liblb_sys-f994a2b691fdba6a.rmeta: crates/sys/src/lib.rs

crates/sys/src/lib.rs:
