/root/repo/target/release/deps/fig1-e028f3ed94620468.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/libfig1-e028f3ed94620468.rmeta: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
