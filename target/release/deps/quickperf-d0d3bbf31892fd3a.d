/root/repo/target/release/deps/quickperf-d0d3bbf31892fd3a.d: crates/bench/src/bin/quickperf.rs

/root/repo/target/release/deps/quickperf-d0d3bbf31892fd3a: crates/bench/src/bin/quickperf.rs

crates/bench/src/bin/quickperf.rs:
