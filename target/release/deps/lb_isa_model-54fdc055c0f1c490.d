/root/repo/target/release/deps/lb_isa_model-54fdc055c0f1c490.d: crates/isa-model/src/lib.rs

/root/repo/target/release/deps/liblb_isa_model-54fdc055c0f1c490.rmeta: crates/isa-model/src/lib.rs

crates/isa-model/src/lib.rs:
