/root/repo/target/release/deps/integration-ce13ae19551ccbcb.d: tests/integration.rs

/root/repo/target/release/deps/integration-ce13ae19551ccbcb: tests/integration.rs

tests/integration.rs:
