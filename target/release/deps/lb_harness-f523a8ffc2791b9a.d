/root/repo/target/release/deps/lb_harness-f523a8ffc2791b9a.d: crates/harness/src/lib.rs crates/harness/src/procstat.rs crates/harness/src/report.rs crates/harness/src/runner.rs crates/harness/src/stats.rs

/root/repo/target/release/deps/liblb_harness-f523a8ffc2791b9a.rmeta: crates/harness/src/lib.rs crates/harness/src/procstat.rs crates/harness/src/report.rs crates/harness/src/runner.rs crates/harness/src/stats.rs

crates/harness/src/lib.rs:
crates/harness/src/procstat.rs:
crates/harness/src/report.rs:
crates/harness/src/runner.rs:
crates/harness/src/stats.rs:
