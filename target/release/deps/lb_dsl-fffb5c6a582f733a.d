/root/repo/target/release/deps/lb_dsl-fffb5c6a582f733a.d: crates/dsl/src/lib.rs crates/dsl/src/expr.rs crates/dsl/src/func.rs crates/dsl/src/kernel.rs crates/dsl/src/layout.rs crates/dsl/src/module.rs

/root/repo/target/release/deps/liblb_dsl-fffb5c6a582f733a.rmeta: crates/dsl/src/lib.rs crates/dsl/src/expr.rs crates/dsl/src/func.rs crates/dsl/src/kernel.rs crates/dsl/src/layout.rs crates/dsl/src/module.rs

crates/dsl/src/lib.rs:
crates/dsl/src/expr.rs:
crates/dsl/src/func.rs:
crates/dsl/src/kernel.rs:
crates/dsl/src/layout.rs:
crates/dsl/src/module.rs:
