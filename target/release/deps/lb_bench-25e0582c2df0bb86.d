/root/repo/target/release/deps/lb_bench-25e0582c2df0bb86.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/lb_bench-25e0582c2df0bb86: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
