/root/repo/target/release/deps/leaps_and_bounds-ca3cca440d959c42.d: src/lib.rs

/root/repo/target/release/deps/leaps_and_bounds-ca3cca440d959c42: src/lib.rs

src/lib.rs:
