/root/repo/target/release/deps/telemetry_demo-d8d10c950ce2e190.d: crates/bench/src/bin/telemetry_demo.rs

/root/repo/target/release/deps/telemetry_demo-d8d10c950ce2e190: crates/bench/src/bin/telemetry_demo.rs

crates/bench/src/bin/telemetry_demo.rs:
