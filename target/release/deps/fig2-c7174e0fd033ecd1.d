/root/repo/target/release/deps/fig2-c7174e0fd033ecd1.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-c7174e0fd033ecd1: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
