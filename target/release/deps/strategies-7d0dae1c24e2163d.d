/root/repo/target/release/deps/strategies-7d0dae1c24e2163d.d: crates/bench/benches/strategies.rs

/root/repo/target/release/deps/libstrategies-7d0dae1c24e2163d.rmeta: crates/bench/benches/strategies.rs

crates/bench/benches/strategies.rs:
