/root/repo/target/release/deps/lb_polybench-0cb11a0eb94afe1a.d: crates/polybench/src/lib.rs crates/polybench/src/common.rs crates/polybench/src/data.rs crates/polybench/src/linalg1.rs crates/polybench/src/linalg2.rs crates/polybench/src/medley.rs crates/polybench/src/solvers.rs crates/polybench/src/stencils.rs

/root/repo/target/release/deps/liblb_polybench-0cb11a0eb94afe1a.rmeta: crates/polybench/src/lib.rs crates/polybench/src/common.rs crates/polybench/src/data.rs crates/polybench/src/linalg1.rs crates/polybench/src/linalg2.rs crates/polybench/src/medley.rs crates/polybench/src/solvers.rs crates/polybench/src/stencils.rs

crates/polybench/src/lib.rs:
crates/polybench/src/common.rs:
crates/polybench/src/data.rs:
crates/polybench/src/linalg1.rs:
crates/polybench/src/linalg2.rs:
crates/polybench/src/medley.rs:
crates/polybench/src/solvers.rs:
crates/polybench/src/stencils.rs:
