/root/repo/target/release/deps/lb_jit-f50997d5fa7e455e.d: crates/jit/src/lib.rs crates/jit/src/asm.rs crates/jit/src/codebuf.rs crates/jit/src/codegen.rs crates/jit/src/engine.rs crates/jit/src/runtime.rs

/root/repo/target/release/deps/liblb_jit-f50997d5fa7e455e.rlib: crates/jit/src/lib.rs crates/jit/src/asm.rs crates/jit/src/codebuf.rs crates/jit/src/codegen.rs crates/jit/src/engine.rs crates/jit/src/runtime.rs

/root/repo/target/release/deps/liblb_jit-f50997d5fa7e455e.rmeta: crates/jit/src/lib.rs crates/jit/src/asm.rs crates/jit/src/codebuf.rs crates/jit/src/codegen.rs crates/jit/src/engine.rs crates/jit/src/runtime.rs

crates/jit/src/lib.rs:
crates/jit/src/asm.rs:
crates/jit/src/codebuf.rs:
crates/jit/src/codegen.rs:
crates/jit/src/engine.rs:
crates/jit/src/runtime.rs:
