/root/repo/target/release/deps/shape_checks-bd4ced178b34dd4f.d: tests/shape_checks.rs

/root/repo/target/release/deps/shape_checks-bd4ced178b34dd4f: tests/shape_checks.rs

tests/shape_checks.rs:
