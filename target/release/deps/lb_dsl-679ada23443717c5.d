/root/repo/target/release/deps/lb_dsl-679ada23443717c5.d: crates/dsl/src/lib.rs crates/dsl/src/expr.rs crates/dsl/src/func.rs crates/dsl/src/kernel.rs crates/dsl/src/layout.rs crates/dsl/src/module.rs

/root/repo/target/release/deps/lb_dsl-679ada23443717c5: crates/dsl/src/lib.rs crates/dsl/src/expr.rs crates/dsl/src/func.rs crates/dsl/src/kernel.rs crates/dsl/src/layout.rs crates/dsl/src/module.rs

crates/dsl/src/lib.rs:
crates/dsl/src/expr.rs:
crates/dsl/src/func.rs:
crates/dsl/src/kernel.rs:
crates/dsl/src/layout.rs:
crates/dsl/src/module.rs:
