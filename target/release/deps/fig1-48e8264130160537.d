/root/repo/target/release/deps/fig1-48e8264130160537.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-48e8264130160537: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
