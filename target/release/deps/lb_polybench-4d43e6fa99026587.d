/root/repo/target/release/deps/lb_polybench-4d43e6fa99026587.d: crates/polybench/src/lib.rs crates/polybench/src/common.rs crates/polybench/src/data.rs crates/polybench/src/linalg1.rs crates/polybench/src/linalg2.rs crates/polybench/src/medley.rs crates/polybench/src/solvers.rs crates/polybench/src/stencils.rs

/root/repo/target/release/deps/lb_polybench-4d43e6fa99026587: crates/polybench/src/lib.rs crates/polybench/src/common.rs crates/polybench/src/data.rs crates/polybench/src/linalg1.rs crates/polybench/src/linalg2.rs crates/polybench/src/medley.rs crates/polybench/src/solvers.rs crates/polybench/src/stencils.rs

crates/polybench/src/lib.rs:
crates/polybench/src/common.rs:
crates/polybench/src/data.rs:
crates/polybench/src/linalg1.rs:
crates/polybench/src/linalg2.rs:
crates/polybench/src/medley.rs:
crates/polybench/src/solvers.rs:
crates/polybench/src/stencils.rs:
