/root/repo/target/release/deps/replication-d6e89ac4c87e0265.d: crates/bench/src/bin/replication.rs

/root/repo/target/release/deps/replication-d6e89ac4c87e0265: crates/bench/src/bin/replication.rs

crates/bench/src/bin/replication.rs:
