/root/repo/target/release/deps/fig2-6b06bc7ece2e9155.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/libfig2-6b06bc7ece2e9155.rmeta: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
