/root/repo/target/release/deps/lb_telemetry-54c5458086ac8d5f.d: crates/telemetry/src/lib.rs crates/telemetry/src/clock.rs crates/telemetry/src/counters.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/json.rs crates/telemetry/src/ring.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/liblb_telemetry-54c5458086ac8d5f.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/clock.rs crates/telemetry/src/counters.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/json.rs crates/telemetry/src/ring.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/clock.rs:
crates/telemetry/src/counters.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/ring.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/span.rs:
