/root/repo/target/release/deps/telemetry_e2e-7444c18fb106e7df.d: tests/telemetry_e2e.rs

/root/repo/target/release/deps/telemetry_e2e-7444c18fb106e7df: tests/telemetry_e2e.rs

tests/telemetry_e2e.rs:
