/root/repo/target/release/deps/lb_bench-32d4d8a69e6cbb31.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/liblb_bench-32d4d8a69e6cbb31.rlib: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/liblb_bench-32d4d8a69e6cbb31.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
