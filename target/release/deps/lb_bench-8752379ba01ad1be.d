/root/repo/target/release/deps/lb_bench-8752379ba01ad1be.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/lb_bench-8752379ba01ad1be: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
