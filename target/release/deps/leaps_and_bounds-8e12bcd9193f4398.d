/root/repo/target/release/deps/leaps_and_bounds-8e12bcd9193f4398.d: src/lib.rs

/root/repo/target/release/deps/libleaps_and_bounds-8e12bcd9193f4398.rlib: src/lib.rs

/root/repo/target/release/deps/libleaps_and_bounds-8e12bcd9193f4398.rmeta: src/lib.rs

src/lib.rs:
