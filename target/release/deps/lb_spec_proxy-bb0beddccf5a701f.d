/root/repo/target/release/deps/lb_spec_proxy-bb0beddccf5a701f.d: crates/spec-proxy/src/lib.rs crates/spec-proxy/src/common.rs crates/spec-proxy/src/graph.rs crates/spec-proxy/src/md.rs crates/spec-proxy/src/media.rs crates/spec-proxy/src/xz.rs

/root/repo/target/release/deps/liblb_spec_proxy-bb0beddccf5a701f.rlib: crates/spec-proxy/src/lib.rs crates/spec-proxy/src/common.rs crates/spec-proxy/src/graph.rs crates/spec-proxy/src/md.rs crates/spec-proxy/src/media.rs crates/spec-proxy/src/xz.rs

/root/repo/target/release/deps/liblb_spec_proxy-bb0beddccf5a701f.rmeta: crates/spec-proxy/src/lib.rs crates/spec-proxy/src/common.rs crates/spec-proxy/src/graph.rs crates/spec-proxy/src/md.rs crates/spec-proxy/src/media.rs crates/spec-proxy/src/xz.rs

crates/spec-proxy/src/lib.rs:
crates/spec-proxy/src/common.rs:
crates/spec-proxy/src/graph.rs:
crates/spec-proxy/src/md.rs:
crates/spec-proxy/src/media.rs:
crates/spec-proxy/src/xz.rs:
