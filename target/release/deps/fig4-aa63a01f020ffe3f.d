/root/repo/target/release/deps/fig4-aa63a01f020ffe3f.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/libfig4-aa63a01f020ffe3f.rmeta: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
