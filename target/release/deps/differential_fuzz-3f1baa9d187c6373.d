/root/repo/target/release/deps/differential_fuzz-3f1baa9d187c6373.d: tests/differential_fuzz.rs

/root/repo/target/release/deps/differential_fuzz-3f1baa9d187c6373: tests/differential_fuzz.rs

tests/differential_fuzz.rs:
