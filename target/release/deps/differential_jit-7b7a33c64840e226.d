/root/repo/target/release/deps/differential_jit-7b7a33c64840e226.d: crates/polybench/tests/differential_jit.rs

/root/repo/target/release/deps/differential_jit-7b7a33c64840e226: crates/polybench/tests/differential_jit.rs

crates/polybench/tests/differential_jit.rs:
