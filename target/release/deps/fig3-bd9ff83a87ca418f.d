/root/repo/target/release/deps/fig3-bd9ff83a87ca418f.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/libfig3-bd9ff83a87ca418f.rmeta: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
