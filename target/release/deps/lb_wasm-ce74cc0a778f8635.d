/root/repo/target/release/deps/lb_wasm-ce74cc0a778f8635.d: crates/wasm/src/lib.rs crates/wasm/src/binary/mod.rs crates/wasm/src/binary/decode.rs crates/wasm/src/binary/encode.rs crates/wasm/src/binary/leb.rs crates/wasm/src/builder.rs crates/wasm/src/error.rs crates/wasm/src/fmt.rs crates/wasm/src/instr.rs crates/wasm/src/module.rs crates/wasm/src/numeric.rs crates/wasm/src/types.rs crates/wasm/src/validate.rs crates/wasm/src/value.rs

/root/repo/target/release/deps/liblb_wasm-ce74cc0a778f8635.rlib: crates/wasm/src/lib.rs crates/wasm/src/binary/mod.rs crates/wasm/src/binary/decode.rs crates/wasm/src/binary/encode.rs crates/wasm/src/binary/leb.rs crates/wasm/src/builder.rs crates/wasm/src/error.rs crates/wasm/src/fmt.rs crates/wasm/src/instr.rs crates/wasm/src/module.rs crates/wasm/src/numeric.rs crates/wasm/src/types.rs crates/wasm/src/validate.rs crates/wasm/src/value.rs

/root/repo/target/release/deps/liblb_wasm-ce74cc0a778f8635.rmeta: crates/wasm/src/lib.rs crates/wasm/src/binary/mod.rs crates/wasm/src/binary/decode.rs crates/wasm/src/binary/encode.rs crates/wasm/src/binary/leb.rs crates/wasm/src/builder.rs crates/wasm/src/error.rs crates/wasm/src/fmt.rs crates/wasm/src/instr.rs crates/wasm/src/module.rs crates/wasm/src/numeric.rs crates/wasm/src/types.rs crates/wasm/src/validate.rs crates/wasm/src/value.rs

crates/wasm/src/lib.rs:
crates/wasm/src/binary/mod.rs:
crates/wasm/src/binary/decode.rs:
crates/wasm/src/binary/encode.rs:
crates/wasm/src/binary/leb.rs:
crates/wasm/src/builder.rs:
crates/wasm/src/error.rs:
crates/wasm/src/fmt.rs:
crates/wasm/src/instr.rs:
crates/wasm/src/module.rs:
crates/wasm/src/numeric.rs:
crates/wasm/src/types.rs:
crates/wasm/src/validate.rs:
crates/wasm/src/value.rs:
