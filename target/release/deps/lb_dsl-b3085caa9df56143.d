/root/repo/target/release/deps/lb_dsl-b3085caa9df56143.d: crates/dsl/src/lib.rs crates/dsl/src/expr.rs crates/dsl/src/func.rs crates/dsl/src/kernel.rs crates/dsl/src/layout.rs crates/dsl/src/module.rs

/root/repo/target/release/deps/liblb_dsl-b3085caa9df56143.rlib: crates/dsl/src/lib.rs crates/dsl/src/expr.rs crates/dsl/src/func.rs crates/dsl/src/kernel.rs crates/dsl/src/layout.rs crates/dsl/src/module.rs

/root/repo/target/release/deps/liblb_dsl-b3085caa9df56143.rmeta: crates/dsl/src/lib.rs crates/dsl/src/expr.rs crates/dsl/src/func.rs crates/dsl/src/kernel.rs crates/dsl/src/layout.rs crates/dsl/src/module.rs

crates/dsl/src/lib.rs:
crates/dsl/src/expr.rs:
crates/dsl/src/func.rs:
crates/dsl/src/kernel.rs:
crates/dsl/src/layout.rs:
crates/dsl/src/module.rs:
