/root/repo/target/release/deps/lb_harness-46ef5049fcf6979c.d: crates/harness/src/lib.rs crates/harness/src/procstat.rs crates/harness/src/report.rs crates/harness/src/runner.rs crates/harness/src/stats.rs

/root/repo/target/release/deps/liblb_harness-46ef5049fcf6979c.rmeta: crates/harness/src/lib.rs crates/harness/src/procstat.rs crates/harness/src/report.rs crates/harness/src/runner.rs crates/harness/src/stats.rs

crates/harness/src/lib.rs:
crates/harness/src/procstat.rs:
crates/harness/src/report.rs:
crates/harness/src/runner.rs:
crates/harness/src/stats.rs:
