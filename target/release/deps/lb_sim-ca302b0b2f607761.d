/root/repo/target/release/deps/lb_sim-ca302b0b2f607761.d: crates/sim/src/lib.rs

/root/repo/target/release/deps/liblb_sim-ca302b0b2f607761.rmeta: crates/sim/src/lib.rs

crates/sim/src/lib.rs:
