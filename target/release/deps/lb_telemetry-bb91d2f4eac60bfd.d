/root/repo/target/release/deps/lb_telemetry-bb91d2f4eac60bfd.d: crates/telemetry/src/lib.rs crates/telemetry/src/clock.rs crates/telemetry/src/counters.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/json.rs crates/telemetry/src/ring.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/liblb_telemetry-bb91d2f4eac60bfd.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/clock.rs crates/telemetry/src/counters.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/json.rs crates/telemetry/src/ring.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/clock.rs:
crates/telemetry/src/counters.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/ring.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/span.rs:
