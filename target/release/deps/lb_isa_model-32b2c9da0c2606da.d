/root/repo/target/release/deps/lb_isa_model-32b2c9da0c2606da.d: crates/isa-model/src/lib.rs

/root/repo/target/release/deps/liblb_isa_model-32b2c9da0c2606da.rmeta: crates/isa-model/src/lib.rs

crates/isa-model/src/lib.rs:
