/root/repo/target/release/deps/fig1-7699c53d34eb2736.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-7699c53d34eb2736: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
