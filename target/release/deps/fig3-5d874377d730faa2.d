/root/repo/target/release/deps/fig3-5d874377d730faa2.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-5d874377d730faa2: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
