/root/repo/target/release/deps/leaps_and_bounds-674c91b66219c3d8.d: src/lib.rs

/root/repo/target/release/deps/libleaps_and_bounds-674c91b66219c3d8.rmeta: src/lib.rs

src/lib.rs:
