/root/repo/target/release/deps/lb_spec_proxy-d852e4f940a69ba2.d: crates/spec-proxy/src/lib.rs crates/spec-proxy/src/common.rs crates/spec-proxy/src/graph.rs crates/spec-proxy/src/md.rs crates/spec-proxy/src/media.rs crates/spec-proxy/src/xz.rs

/root/repo/target/release/deps/liblb_spec_proxy-d852e4f940a69ba2.rmeta: crates/spec-proxy/src/lib.rs crates/spec-proxy/src/common.rs crates/spec-proxy/src/graph.rs crates/spec-proxy/src/md.rs crates/spec-proxy/src/media.rs crates/spec-proxy/src/xz.rs

crates/spec-proxy/src/lib.rs:
crates/spec-proxy/src/common.rs:
crates/spec-proxy/src/graph.rs:
crates/spec-proxy/src/md.rs:
crates/spec-proxy/src/media.rs:
crates/spec-proxy/src/xz.rs:
