/root/repo/target/release/deps/lb_sys-2f741afc1bc25c17.d: crates/sys/src/lib.rs

/root/repo/target/release/deps/liblb_sys-2f741afc1bc25c17.rlib: crates/sys/src/lib.rs

/root/repo/target/release/deps/liblb_sys-2f741afc1bc25c17.rmeta: crates/sys/src/lib.rs

crates/sys/src/lib.rs:
