/root/repo/target/release/deps/lb_core-801c059e59d41906.d: crates/core/src/lib.rs crates/core/src/exec.rs crates/core/src/memory.rs crates/core/src/region.rs crates/core/src/registry.rs crates/core/src/signals.rs crates/core/src/stats.rs crates/core/src/strategy.rs crates/core/src/trap.rs crates/core/src/uffd.rs

/root/repo/target/release/deps/liblb_core-801c059e59d41906.rlib: crates/core/src/lib.rs crates/core/src/exec.rs crates/core/src/memory.rs crates/core/src/region.rs crates/core/src/registry.rs crates/core/src/signals.rs crates/core/src/stats.rs crates/core/src/strategy.rs crates/core/src/trap.rs crates/core/src/uffd.rs

/root/repo/target/release/deps/liblb_core-801c059e59d41906.rmeta: crates/core/src/lib.rs crates/core/src/exec.rs crates/core/src/memory.rs crates/core/src/region.rs crates/core/src/registry.rs crates/core/src/signals.rs crates/core/src/stats.rs crates/core/src/strategy.rs crates/core/src/trap.rs crates/core/src/uffd.rs

crates/core/src/lib.rs:
crates/core/src/exec.rs:
crates/core/src/memory.rs:
crates/core/src/region.rs:
crates/core/src/registry.rs:
crates/core/src/signals.rs:
crates/core/src/stats.rs:
crates/core/src/strategy.rs:
crates/core/src/trap.rs:
crates/core/src/uffd.rs:
