/root/repo/target/release/deps/replication-2e40c7bb4763c534.d: crates/bench/src/bin/replication.rs

/root/repo/target/release/deps/libreplication-2e40c7bb4763c534.rmeta: crates/bench/src/bin/replication.rs

crates/bench/src/bin/replication.rs:
