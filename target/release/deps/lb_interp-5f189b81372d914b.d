/root/repo/target/release/deps/lb_interp-5f189b81372d914b.d: crates/interp/src/lib.rs crates/interp/src/engine.rs crates/interp/src/run.rs

/root/repo/target/release/deps/lb_interp-5f189b81372d914b: crates/interp/src/lib.rs crates/interp/src/engine.rs crates/interp/src/run.rs

crates/interp/src/lib.rs:
crates/interp/src/engine.rs:
crates/interp/src/run.rs:
