/root/repo/target/release/deps/replication-c1711d931e6a558d.d: crates/bench/src/bin/replication.rs

/root/repo/target/release/deps/replication-c1711d931e6a558d: crates/bench/src/bin/replication.rs

crates/bench/src/bin/replication.rs:
