/root/repo/target/debug/deps/lb_polybench-4137a56334fac31c.d: crates/polybench/src/lib.rs crates/polybench/src/common.rs crates/polybench/src/data.rs crates/polybench/src/linalg1.rs crates/polybench/src/linalg2.rs crates/polybench/src/medley.rs crates/polybench/src/solvers.rs crates/polybench/src/stencils.rs

/root/repo/target/debug/deps/liblb_polybench-4137a56334fac31c.rlib: crates/polybench/src/lib.rs crates/polybench/src/common.rs crates/polybench/src/data.rs crates/polybench/src/linalg1.rs crates/polybench/src/linalg2.rs crates/polybench/src/medley.rs crates/polybench/src/solvers.rs crates/polybench/src/stencils.rs

/root/repo/target/debug/deps/liblb_polybench-4137a56334fac31c.rmeta: crates/polybench/src/lib.rs crates/polybench/src/common.rs crates/polybench/src/data.rs crates/polybench/src/linalg1.rs crates/polybench/src/linalg2.rs crates/polybench/src/medley.rs crates/polybench/src/solvers.rs crates/polybench/src/stencils.rs

crates/polybench/src/lib.rs:
crates/polybench/src/common.rs:
crates/polybench/src/data.rs:
crates/polybench/src/linalg1.rs:
crates/polybench/src/linalg2.rs:
crates/polybench/src/medley.rs:
crates/polybench/src/solvers.rs:
crates/polybench/src/stencils.rs:
