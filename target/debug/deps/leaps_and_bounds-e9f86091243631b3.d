/root/repo/target/debug/deps/leaps_and_bounds-e9f86091243631b3.d: src/lib.rs

/root/repo/target/debug/deps/libleaps_and_bounds-e9f86091243631b3.rlib: src/lib.rs

/root/repo/target/debug/deps/libleaps_and_bounds-e9f86091243631b3.rmeta: src/lib.rs

src/lib.rs:
