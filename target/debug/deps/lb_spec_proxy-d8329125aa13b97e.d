/root/repo/target/debug/deps/lb_spec_proxy-d8329125aa13b97e.d: crates/spec-proxy/src/lib.rs crates/spec-proxy/src/common.rs crates/spec-proxy/src/graph.rs crates/spec-proxy/src/md.rs crates/spec-proxy/src/media.rs crates/spec-proxy/src/xz.rs

/root/repo/target/debug/deps/liblb_spec_proxy-d8329125aa13b97e.rlib: crates/spec-proxy/src/lib.rs crates/spec-proxy/src/common.rs crates/spec-proxy/src/graph.rs crates/spec-proxy/src/md.rs crates/spec-proxy/src/media.rs crates/spec-proxy/src/xz.rs

/root/repo/target/debug/deps/liblb_spec_proxy-d8329125aa13b97e.rmeta: crates/spec-proxy/src/lib.rs crates/spec-proxy/src/common.rs crates/spec-proxy/src/graph.rs crates/spec-proxy/src/md.rs crates/spec-proxy/src/media.rs crates/spec-proxy/src/xz.rs

crates/spec-proxy/src/lib.rs:
crates/spec-proxy/src/common.rs:
crates/spec-proxy/src/graph.rs:
crates/spec-proxy/src/md.rs:
crates/spec-proxy/src/media.rs:
crates/spec-proxy/src/xz.rs:
