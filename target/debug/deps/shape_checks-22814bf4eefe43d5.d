/root/repo/target/debug/deps/shape_checks-22814bf4eefe43d5.d: tests/shape_checks.rs

/root/repo/target/debug/deps/shape_checks-22814bf4eefe43d5: tests/shape_checks.rs

tests/shape_checks.rs:
