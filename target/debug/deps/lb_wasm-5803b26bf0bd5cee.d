/root/repo/target/debug/deps/lb_wasm-5803b26bf0bd5cee.d: crates/wasm/src/lib.rs crates/wasm/src/binary/mod.rs crates/wasm/src/binary/decode.rs crates/wasm/src/binary/encode.rs crates/wasm/src/binary/leb.rs crates/wasm/src/builder.rs crates/wasm/src/error.rs crates/wasm/src/fmt.rs crates/wasm/src/instr.rs crates/wasm/src/module.rs crates/wasm/src/numeric.rs crates/wasm/src/types.rs crates/wasm/src/validate.rs crates/wasm/src/value.rs

/root/repo/target/debug/deps/liblb_wasm-5803b26bf0bd5cee.rlib: crates/wasm/src/lib.rs crates/wasm/src/binary/mod.rs crates/wasm/src/binary/decode.rs crates/wasm/src/binary/encode.rs crates/wasm/src/binary/leb.rs crates/wasm/src/builder.rs crates/wasm/src/error.rs crates/wasm/src/fmt.rs crates/wasm/src/instr.rs crates/wasm/src/module.rs crates/wasm/src/numeric.rs crates/wasm/src/types.rs crates/wasm/src/validate.rs crates/wasm/src/value.rs

/root/repo/target/debug/deps/liblb_wasm-5803b26bf0bd5cee.rmeta: crates/wasm/src/lib.rs crates/wasm/src/binary/mod.rs crates/wasm/src/binary/decode.rs crates/wasm/src/binary/encode.rs crates/wasm/src/binary/leb.rs crates/wasm/src/builder.rs crates/wasm/src/error.rs crates/wasm/src/fmt.rs crates/wasm/src/instr.rs crates/wasm/src/module.rs crates/wasm/src/numeric.rs crates/wasm/src/types.rs crates/wasm/src/validate.rs crates/wasm/src/value.rs

crates/wasm/src/lib.rs:
crates/wasm/src/binary/mod.rs:
crates/wasm/src/binary/decode.rs:
crates/wasm/src/binary/encode.rs:
crates/wasm/src/binary/leb.rs:
crates/wasm/src/builder.rs:
crates/wasm/src/error.rs:
crates/wasm/src/fmt.rs:
crates/wasm/src/instr.rs:
crates/wasm/src/module.rs:
crates/wasm/src/numeric.rs:
crates/wasm/src/types.rs:
crates/wasm/src/validate.rs:
crates/wasm/src/value.rs:
