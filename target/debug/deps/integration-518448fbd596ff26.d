/root/repo/target/debug/deps/integration-518448fbd596ff26.d: tests/integration.rs

/root/repo/target/debug/deps/integration-518448fbd596ff26: tests/integration.rs

tests/integration.rs:
