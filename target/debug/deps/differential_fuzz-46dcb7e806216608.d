/root/repo/target/debug/deps/differential_fuzz-46dcb7e806216608.d: tests/differential_fuzz.rs

/root/repo/target/debug/deps/differential_fuzz-46dcb7e806216608: tests/differential_fuzz.rs

tests/differential_fuzz.rs:
