/root/repo/target/debug/deps/lb_dsl-46c671f9e3a806c5.d: crates/dsl/src/lib.rs crates/dsl/src/expr.rs crates/dsl/src/func.rs crates/dsl/src/kernel.rs crates/dsl/src/layout.rs crates/dsl/src/module.rs

/root/repo/target/debug/deps/liblb_dsl-46c671f9e3a806c5.rlib: crates/dsl/src/lib.rs crates/dsl/src/expr.rs crates/dsl/src/func.rs crates/dsl/src/kernel.rs crates/dsl/src/layout.rs crates/dsl/src/module.rs

/root/repo/target/debug/deps/liblb_dsl-46c671f9e3a806c5.rmeta: crates/dsl/src/lib.rs crates/dsl/src/expr.rs crates/dsl/src/func.rs crates/dsl/src/kernel.rs crates/dsl/src/layout.rs crates/dsl/src/module.rs

crates/dsl/src/lib.rs:
crates/dsl/src/expr.rs:
crates/dsl/src/func.rs:
crates/dsl/src/kernel.rs:
crates/dsl/src/layout.rs:
crates/dsl/src/module.rs:
