/root/repo/target/debug/deps/lb_telemetry-98e6909389d516fc.d: crates/telemetry/src/lib.rs crates/telemetry/src/clock.rs crates/telemetry/src/counters.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/json.rs crates/telemetry/src/ring.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/liblb_telemetry-98e6909389d516fc.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/clock.rs crates/telemetry/src/counters.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/json.rs crates/telemetry/src/ring.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/liblb_telemetry-98e6909389d516fc.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/clock.rs crates/telemetry/src/counters.rs crates/telemetry/src/export.rs crates/telemetry/src/histogram.rs crates/telemetry/src/json.rs crates/telemetry/src/ring.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/clock.rs:
crates/telemetry/src/counters.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/ring.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/span.rs:
