/root/repo/target/debug/deps/leaps_and_bounds-ee0efdbe59ca4739.d: src/lib.rs

/root/repo/target/debug/deps/leaps_and_bounds-ee0efdbe59ca4739: src/lib.rs

src/lib.rs:
