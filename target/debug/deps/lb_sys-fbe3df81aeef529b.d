/root/repo/target/debug/deps/lb_sys-fbe3df81aeef529b.d: crates/sys/src/lib.rs

/root/repo/target/debug/deps/liblb_sys-fbe3df81aeef529b.rlib: crates/sys/src/lib.rs

/root/repo/target/debug/deps/liblb_sys-fbe3df81aeef529b.rmeta: crates/sys/src/lib.rs

crates/sys/src/lib.rs:
