/root/repo/target/debug/deps/lb_isa_model-2714ab1c08bfdcf2.d: crates/isa-model/src/lib.rs

/root/repo/target/debug/deps/liblb_isa_model-2714ab1c08bfdcf2.rlib: crates/isa-model/src/lib.rs

/root/repo/target/debug/deps/liblb_isa_model-2714ab1c08bfdcf2.rmeta: crates/isa-model/src/lib.rs

crates/isa-model/src/lib.rs:
