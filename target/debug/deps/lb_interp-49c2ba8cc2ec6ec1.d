/root/repo/target/debug/deps/lb_interp-49c2ba8cc2ec6ec1.d: crates/interp/src/lib.rs crates/interp/src/engine.rs crates/interp/src/run.rs

/root/repo/target/debug/deps/liblb_interp-49c2ba8cc2ec6ec1.rlib: crates/interp/src/lib.rs crates/interp/src/engine.rs crates/interp/src/run.rs

/root/repo/target/debug/deps/liblb_interp-49c2ba8cc2ec6ec1.rmeta: crates/interp/src/lib.rs crates/interp/src/engine.rs crates/interp/src/run.rs

crates/interp/src/lib.rs:
crates/interp/src/engine.rs:
crates/interp/src/run.rs:
