/root/repo/target/debug/deps/lb_sim-4912255940f92cab.d: crates/sim/src/lib.rs

/root/repo/target/debug/deps/liblb_sim-4912255940f92cab.rlib: crates/sim/src/lib.rs

/root/repo/target/debug/deps/liblb_sim-4912255940f92cab.rmeta: crates/sim/src/lib.rs

crates/sim/src/lib.rs:
