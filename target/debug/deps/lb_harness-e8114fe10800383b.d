/root/repo/target/debug/deps/lb_harness-e8114fe10800383b.d: crates/harness/src/lib.rs crates/harness/src/procstat.rs crates/harness/src/report.rs crates/harness/src/runner.rs crates/harness/src/stats.rs

/root/repo/target/debug/deps/liblb_harness-e8114fe10800383b.rlib: crates/harness/src/lib.rs crates/harness/src/procstat.rs crates/harness/src/report.rs crates/harness/src/runner.rs crates/harness/src/stats.rs

/root/repo/target/debug/deps/liblb_harness-e8114fe10800383b.rmeta: crates/harness/src/lib.rs crates/harness/src/procstat.rs crates/harness/src/report.rs crates/harness/src/runner.rs crates/harness/src/stats.rs

crates/harness/src/lib.rs:
crates/harness/src/procstat.rs:
crates/harness/src/report.rs:
crates/harness/src/runner.rs:
crates/harness/src/stats.rs:
