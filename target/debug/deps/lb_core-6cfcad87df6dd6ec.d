/root/repo/target/debug/deps/lb_core-6cfcad87df6dd6ec.d: crates/core/src/lib.rs crates/core/src/exec.rs crates/core/src/memory.rs crates/core/src/region.rs crates/core/src/registry.rs crates/core/src/signals.rs crates/core/src/stats.rs crates/core/src/strategy.rs crates/core/src/trap.rs crates/core/src/uffd.rs

/root/repo/target/debug/deps/liblb_core-6cfcad87df6dd6ec.rlib: crates/core/src/lib.rs crates/core/src/exec.rs crates/core/src/memory.rs crates/core/src/region.rs crates/core/src/registry.rs crates/core/src/signals.rs crates/core/src/stats.rs crates/core/src/strategy.rs crates/core/src/trap.rs crates/core/src/uffd.rs

/root/repo/target/debug/deps/liblb_core-6cfcad87df6dd6ec.rmeta: crates/core/src/lib.rs crates/core/src/exec.rs crates/core/src/memory.rs crates/core/src/region.rs crates/core/src/registry.rs crates/core/src/signals.rs crates/core/src/stats.rs crates/core/src/strategy.rs crates/core/src/trap.rs crates/core/src/uffd.rs

crates/core/src/lib.rs:
crates/core/src/exec.rs:
crates/core/src/memory.rs:
crates/core/src/region.rs:
crates/core/src/registry.rs:
crates/core/src/signals.rs:
crates/core/src/stats.rs:
crates/core/src/strategy.rs:
crates/core/src/trap.rs:
crates/core/src/uffd.rs:
