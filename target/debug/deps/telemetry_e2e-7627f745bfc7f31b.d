/root/repo/target/debug/deps/telemetry_e2e-7627f745bfc7f31b.d: tests/telemetry_e2e.rs

/root/repo/target/debug/deps/telemetry_e2e-7627f745bfc7f31b: tests/telemetry_e2e.rs

tests/telemetry_e2e.rs:
