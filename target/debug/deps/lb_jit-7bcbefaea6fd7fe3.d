/root/repo/target/debug/deps/lb_jit-7bcbefaea6fd7fe3.d: crates/jit/src/lib.rs crates/jit/src/asm.rs crates/jit/src/codebuf.rs crates/jit/src/codegen.rs crates/jit/src/engine.rs crates/jit/src/runtime.rs

/root/repo/target/debug/deps/liblb_jit-7bcbefaea6fd7fe3.rlib: crates/jit/src/lib.rs crates/jit/src/asm.rs crates/jit/src/codebuf.rs crates/jit/src/codegen.rs crates/jit/src/engine.rs crates/jit/src/runtime.rs

/root/repo/target/debug/deps/liblb_jit-7bcbefaea6fd7fe3.rmeta: crates/jit/src/lib.rs crates/jit/src/asm.rs crates/jit/src/codebuf.rs crates/jit/src/codegen.rs crates/jit/src/engine.rs crates/jit/src/runtime.rs

crates/jit/src/lib.rs:
crates/jit/src/asm.rs:
crates/jit/src/codebuf.rs:
crates/jit/src/codegen.rs:
crates/jit/src/engine.rs:
crates/jit/src/runtime.rs:
