/root/repo/target/debug/examples/quickstart-2ddba94f777614d7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2ddba94f777614d7: examples/quickstart.rs

examples/quickstart.rs:
