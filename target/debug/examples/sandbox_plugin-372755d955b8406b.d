/root/repo/target/debug/examples/sandbox_plugin-372755d955b8406b.d: examples/sandbox_plugin.rs

/root/repo/target/debug/examples/sandbox_plugin-372755d955b8406b: examples/sandbox_plugin.rs

examples/sandbox_plugin.rs:
