/root/repo/target/debug/examples/serverless_scaling-bdd8fffb9becb236.d: examples/serverless_scaling.rs

/root/repo/target/debug/examples/serverless_scaling-bdd8fffb9becb236: examples/serverless_scaling.rs

examples/serverless_scaling.rs:
