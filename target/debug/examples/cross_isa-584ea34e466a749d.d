/root/repo/target/debug/examples/cross_isa-584ea34e466a749d.d: examples/cross_isa.rs

/root/repo/target/debug/examples/cross_isa-584ea34e466a749d: examples/cross_isa.rs

examples/cross_isa.rs:
