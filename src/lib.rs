//! # leaps-and-bounds — reproduction of "Leaps and bounds: Analyzing
//! WebAssembly's performance with a focus on bounds checking" (IISWC 2022)
//!
//! This facade crate re-exports the whole system:
//!
//! * [`wasm`] — the WebAssembly substrate (module model, validator, binary codec)
//! * [`core`] — bounds-checked linear memory, five strategies, trap machinery,
//!   userfaultfd backend, hazard-pointer arena registry (the paper's contribution)
//! * [`interp`] — the Wasm3-style interpreter
//! * [`jit`] — the x86-64 baseline JIT with WAVM/Wasmtime/V8 engine profiles
//! * [`dsl`] — the kernel-authoring DSL
//! * [`polybench`] / [`spec_proxy`] — the paper's benchmark suites
//! * [`isa_model`] — cross-ISA bounds-checking cost estimation
//! * [`sim`] — the Linux-mm contention simulator
//! * [`harness`] — the measurement harness
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure.
//!
//! ```rust
//! use leaps_and_bounds::core::{BoundsStrategy, MemoryConfig};
//! use leaps_and_bounds::core::exec::{Engine, Linker};
//! use leaps_and_bounds::jit::{JitEngine, JitProfile};
//! use leaps_and_bounds::polybench;
//!
//! let bench = polybench::by_name("gemm", polybench::Dataset::Mini).unwrap();
//! let engine = JitEngine::new(JitProfile::wavm());
//! let module = engine.load(&bench.module).unwrap();
//! let config = MemoryConfig::new(BoundsStrategy::Mprotect, 1, 256)
//!     .with_reserve(64 << 20);
//! let mut isolate = module.instantiate(&config, &Linker::new()).unwrap();
//! isolate.invoke("init", &[]).unwrap();
//! isolate.invoke("kernel", &[]).unwrap();
//! let checksum = isolate.invoke("checksum", &[]).unwrap().unwrap();
//! assert_eq!(checksum.as_f64(), Some(bench.native_checksum()));
//! ```

#![warn(missing_docs)]

pub use lb_core as core;
pub use lb_dsl as dsl;
pub use lb_harness as harness;
pub use lb_interp as interp;
pub use lb_isa_model as isa_model;
pub use lb_jit as jit;
pub use lb_polybench as polybench;
pub use lb_sim as sim;
pub use lb_spec_proxy as spec_proxy;
pub use lb_wasm as wasm;
