//! Cross-ISA bounds-checking costs (the paper's key result 1): estimate
//! the relative cost of the software strategies on the paper's three
//! machines from a real dynamic instruction trace, and check the
//! invariance claim — relative strategy costs should differ only by a few
//! percentage points across ISAs.
//!
//! ```text
//! cargo run --release --example cross_isa
//! ```

use leaps_and_bounds::core::BoundsStrategy;
use leaps_and_bounds::isa_model::{all_profiles, profile_benchmark, strategy_overhead};
use leaps_and_bounds::polybench::{by_name, Dataset};

fn main() {
    let kernels = ["gemm", "jacobi-2d", "cholesky", "atax"];
    println!("per-strategy overhead vs no bounds checks, by ISA (cost model)\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "kernel", "isa", "clamp", "trap"
    );

    let mut spreads: Vec<f64> = Vec::new();
    for k in kernels {
        let bench = by_name(k, Dataset::Mini).unwrap();
        let mix = profile_benchmark(&bench);
        let mut trap_overheads = Vec::new();
        for isa in all_profiles() {
            let clamp = strategy_overhead(&mix, &isa, BoundsStrategy::Clamp);
            let trap = strategy_overhead(&mix, &isa, BoundsStrategy::Trap);
            trap_overheads.push(trap);
            println!(
                "{:<12} {:>10} {:>9.1}% {:>9.1}%",
                k,
                isa.name,
                clamp * 100.0,
                trap * 100.0
            );
        }
        let min = trap_overheads.iter().cloned().fold(f64::MAX, f64::min);
        let max = trap_overheads.iter().cloned().fold(f64::MIN, f64::max);
        spreads.push((max - min) * 100.0);
        println!();
    }

    let worst = spreads.iter().cloned().fold(0.0f64, f64::max);
    println!("largest cross-ISA spread of the trap strategy: {worst:.1} percentage points");
    println!(
        "paper (key result 1): \"the relative differences between architectures are\n\
         within 2 percentage points of each other for the commonly used mechanisms\""
    );
}
