//! WebAssembly as a plugin sandbox (the paper cites Firefox's use of wasm
//! to sandbox libraries): the host exposes a narrow API surface, the
//! plugin computes over its own linear memory, and misbehavior — wild
//! memory accesses, runaway recursion, division by zero — is contained as
//! a trap instead of corrupting the host.
//!
//! ```text
//! cargo run --release --example sandbox_plugin
//! ```

use leaps_and_bounds::core::exec::{Engine, Linker};
use leaps_and_bounds::core::{BoundsStrategy, MemoryConfig, TrapKind};
use leaps_and_bounds::dsl::{call, expr, DslFunc, KernelModule};
use leaps_and_bounds::jit::{JitEngine, JitProfile};
use leaps_and_bounds::wasm::types::ValType;
use leaps_and_bounds::wasm::{Instr, MemArg, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    // The plugin module: a well-behaved entry point plus three hostile ones.
    let mut km = KernelModule::new();
    km.memory(1, Some(2));

    // Imported host API: plugins may log a number.
    // (Host imports are declared on the wasm Module; the DSL's KernelModule
    // is for pure kernels, so we build this module with the raw builder.)
    let mut mb = leaps_and_bounds::wasm::builder::ModuleBuilder::new();
    mb.memory(1, Some(2));
    let log = mb.import_func(
        "host",
        "log",
        leaps_and_bounds::wasm::FuncType::new(vec![ValType::I64], vec![]),
    );
    let good = mb.begin_func(
        "transform",
        leaps_and_bounds::wasm::FuncType::new(vec![ValType::I32], vec![ValType::I32]),
    );
    {
        let mut b = mb.func_mut(good);
        let p = b.param(0);
        // log(input); return input * 2 + 1
        b.get(p).emit(Instr::I64ExtendI32S).call(log);
        b.get(p)
            .i32_const(2)
            .emit(Instr::I32Mul)
            .i32_const(1)
            .emit(Instr::I32Add);
    }
    mb.export_func("transform", good);

    let wild = mb.begin_func(
        "wild_write",
        leaps_and_bounds::wasm::FuncType::new(vec![], vec![]),
    );
    {
        let mut b = mb.func_mut(wild);
        // Write far outside the single committed page.
        b.i32_const(40 * 65536)
            .i32_const(0xDEAD)
            .emit(Instr::I32Store(MemArg::offset(0)));
    }
    mb.export_func("wild_write", wild);

    let bomb = mb.begin_func(
        "stack_bomb",
        leaps_and_bounds::wasm::FuncType::new(vec![], vec![]),
    );
    {
        let mut b = mb.func_mut(bomb);
        b.call(bomb); // infinite recursion
    }
    mb.export_func("stack_bomb", bomb);

    let div = mb.begin_func(
        "div_by_zero",
        leaps_and_bounds::wasm::FuncType::new(vec![], vec![ValType::I32]),
    );
    {
        let mut b = mb.func_mut(div);
        b.i32_const(1).i32_const(0).emit(Instr::I32DivS);
    }
    mb.export_func("div_by_zero", div);
    let module = mb.finish();
    drop(km);
    let _ = (call, expr::i32, DslFunc::new("unused", &[], None));

    // Host side: a log sink the plugin can call.
    let log_count = Arc::new(AtomicU64::new(0));
    let sink = Arc::clone(&log_count);
    let mut linker = Linker::new();
    linker.func("host", "log", move |_, args| {
        println!("  [plugin log] {}", args[0].as_i64().unwrap());
        sink.fetch_add(1, Ordering::Relaxed);
        Ok(None)
    });

    let engine = JitEngine::new(JitProfile::wasmtime());
    let loaded = engine.load(&module).unwrap();
    let config = MemoryConfig::new(BoundsStrategy::Mprotect, 1, 2).with_reserve(64 << 20);
    let mut plugin = loaded.instantiate(&config, &linker).unwrap();

    println!("calling the well-behaved entry point:");
    let r = plugin.invoke("transform", &[Value::I32(20)]).unwrap();
    println!("  transform(20) = {:?}\n", r.unwrap());

    println!("now the hostile entry points — each is contained as a trap:");
    for entry in ["wild_write", "stack_bomb", "div_by_zero"] {
        match plugin.invoke(entry, &[]) {
            Ok(_) => println!("  {entry}: returned normally (?)"),
            Err(t) => println!("  {entry}: {t}"),
        }
        // The instance survives and remains usable after each trap.
        let r = plugin.invoke("transform", &[Value::I32(1)]).unwrap();
        assert_eq!(r, Some(Value::I32(3)));
    }
    println!(
        "\nplugin made {} host log calls; host state intact.",
        log_count.load(Ordering::Relaxed)
    );

    // Verify the specific trap kinds, as a sandboxing guarantee.
    assert!(matches!(
        plugin.invoke("wild_write", &[]).unwrap_err().kind(),
        TrapKind::OutOfBounds
    ));
    assert!(matches!(
        plugin.invoke("stack_bomb", &[]).unwrap_err().kind(),
        TrapKind::StackOverflow
    ));
    assert!(matches!(
        plugin.invoke("div_by_zero", &[]).unwrap_err().kind(),
        TrapKind::IntegerDivByZero
    ));
    println!("all hostile behaviors verified as contained traps.");
}
