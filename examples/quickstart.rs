//! Quickstart: build a wasm module with the DSL, run it on every engine
//! under every bounds-checking strategy, and watch an out-of-bounds access
//! become a clean wasm trap.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use leaps_and_bounds::core::exec::{Engine, Linker};
use leaps_and_bounds::core::{BoundsStrategy, MemoryConfig};
use leaps_and_bounds::dsl::{expr, DslFunc, KernelModule};
use leaps_and_bounds::interp::InterpEngine;
use leaps_and_bounds::jit::{JitEngine, JitProfile};
use leaps_and_bounds::wasm::types::ValType;
use leaps_and_bounds::wasm::Value;

fn main() {
    // 1. Author a module: sum the squares 1..=n into linear memory, then
    //    read an arbitrary address (so we can demo bounds checking).
    let mut f = DslFunc::new("sum_squares", &[ValType::I32], Some(ValType::I64));
    let n = f.param(0);
    let i = f.local_i32();
    let acc = f.local_i64();
    f.for_i32(i, expr::i32(1), n.get().add(expr::i32(1)), |f| {
        f.assign(acc, acc.get().add(i.get().to_i64().mul(i.get().to_i64())));
    });
    f.ret(acc.get());

    // `peek` loads a caller-chosen address — the bounds-check demo.
    let mut peek = DslFunc::new("peek", &[ValType::I32], Some(ValType::I32));
    peek.raw([
        leaps_and_bounds::wasm::Instr::LocalGet(0),
        leaps_and_bounds::wasm::Instr::I32Load(leaps_and_bounds::wasm::MemArg::offset(0)),
    ]);

    let mut km = KernelModule::new();
    km.memory(1, Some(4));
    km.add_exported(f);
    km.add_exported(peek);
    let module = km.finish();

    // 2. Run it on all four runtimes.
    let engines: Vec<(&str, Box<dyn Engine>)> = vec![
        ("wavm", Box::new(JitEngine::new(JitProfile::wavm()))),
        ("wasmtime", Box::new(JitEngine::new(JitProfile::wasmtime()))),
        ("v8", Box::new(JitEngine::new(JitProfile::v8()))),
        ("interp", Box::new(InterpEngine::new())),
    ];
    for (name, engine) in &engines {
        let loaded = engine.load(&module).expect("load");
        let config = MemoryConfig::new(BoundsStrategy::Mprotect, 1, 4).with_reserve(16 << 20);
        let mut inst = loaded.instantiate(&config, &Linker::new()).expect("inst");
        let r = inst
            .invoke("sum_squares", &[Value::I32(1000)])
            .expect("invoke")
            .unwrap();
        println!("{name:9} sum of squares 1..=1000 = {r}");
        assert_eq!(r, Value::I64(333_833_500));
    }

    // 3. Bounds checking in action: the same out-of-bounds read under each
    //    strategy.
    println!();
    let engine = JitEngine::new(JitProfile::wavm());
    let loaded = engine.load(&module).expect("load");
    for strategy in BoundsStrategy::ALL {
        if strategy == BoundsStrategy::Uffd
            && !leaps_and_bounds::core::uffd::sigbus_mode_available()
        {
            println!("{strategy:9} (unavailable: needs userfaultfd with SIGBUS)");
            continue;
        }
        let config = MemoryConfig::new(strategy, 1, 1).with_reserve(16 << 20);
        let mut inst = loaded.instantiate(&config, &Linker::new()).expect("inst");
        // One page = 65536 bytes; read far beyond it.
        match inst.invoke("peek", &[Value::I32(3 * 65536)]) {
            Ok(v) => println!("{strategy:9} out-of-bounds read returned {v:?}"),
            Err(t) => println!("{strategy:9} out-of-bounds read trapped: {t}"),
        }
    }
}
