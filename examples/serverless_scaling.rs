//! The paper's headline server-side scenario: "quickly scale up serverless
//! instances for a single function without the overhead of spawning new
//! processes". Each request gets a fresh isolate (its own 8 GiB-reserved
//! linear memory), runs a short function, and is torn down.
//!
//! This example measures the isolate churn under the default `mprotect`
//! strategy and the paper's `uffd` mitigation — real syscall counts from
//! the memory subsystem — and then replays the same workload through the
//! 16-core mm-contention simulator to show the scaling collapse the paper
//! observed on its 16-hardware-thread machines.
//!
//! ```text
//! cargo run --release --example serverless_scaling
//! ```

use leaps_and_bounds::core::exec::{Engine, Linker};
use leaps_and_bounds::core::{stats, BoundsStrategy, MemoryConfig};
use leaps_and_bounds::jit::{JitEngine, JitProfile};
use leaps_and_bounds::polybench;
use leaps_and_bounds::sim::{simulate, SimParams, SimStrategy};
use std::time::Instant;

fn main() {
    // The "function": a short-running kernel, where the paper says the
    // locking effect is most visible.
    let bench = polybench::by_name("jacobi-1d", polybench::Dataset::Small).unwrap();
    let engine = JitEngine::new(JitProfile::wavm());
    let loaded = engine.load(&bench.module).unwrap();
    let requests: u32 = 100;

    println!(
        "serving {requests} isolate-per-request invocations of {}\n",
        bench.name
    );
    let mut calibrated_ns = 0u64;
    for strategy in [BoundsStrategy::Mprotect, BoundsStrategy::Uffd] {
        if strategy == BoundsStrategy::Uffd
            && !leaps_and_bounds::core::uffd::sigbus_mode_available()
        {
            println!("uffd     unavailable (needs userfaultfd with SIGBUS)");
            continue;
        }
        let config = MemoryConfig::new(strategy, 0, 512);
        let before = stats::snapshot();
        let t0 = Instant::now();
        for _ in 0..requests {
            let mut isolate = loaded.instantiate(&config, &Linker::new()).unwrap();
            isolate.invoke("init", &[]).unwrap();
            isolate.invoke("kernel", &[]).unwrap();
            // isolate dropped: reservation unmapped
        }
        let elapsed = t0.elapsed();
        let d = stats::snapshot().delta(&before);
        calibrated_ns = (elapsed.as_nanos() as u64) / u64::from(requests);
        println!(
            "{:8} {:>10.2?}/request  syscalls: {} mmap, {} mprotect, {} uffd-zeropage",
            strategy.name(),
            elapsed / requests,
            d.mmap,
            d.mprotect,
            d.uffd_zeropage,
        );
    }

    println!("\nnow the same workload on a simulated 16-hardware-thread server:");
    println!("(the mechanism: mprotect serializes isolates on the kernel's mmap_lock)\n");
    println!("threads  strategy  throughput(req/s)  per-core-utilization  lock-wait");
    for threads in [1, 4, 16] {
        for (name, s) in [
            ("mprotect", SimStrategy::Mprotect),
            ("uffd", SimStrategy::Uffd),
        ] {
            let mut p = SimParams::new(s, threads, calibrated_ns.max(1000));
            p.iters = 50;
            let r = simulate(&p);
            println!(
                "{threads:7}  {name:8}  {:17.0}  {:19.0}%  {:>9.2?}",
                r.iters_per_sec(),
                r.utilization_pct() / threads as f64,
                std::time::Duration::from_nanos(r.lock_wait_ns),
            );
        }
    }
    println!("\nconclusion (paper §4.2.1): for short-lived serverless-style tasks,");
    println!("userfaultfd-managed memory avoids the mmap_lock serialization that");
    println!("caps mprotect-based isolates well below full CPU utilization.");
}
