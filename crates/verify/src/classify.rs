//! Instruction classification for profile attribution.
//!
//! `lb-prof` samples program counters inside JIT code and needs to know,
//! per sampled instruction, whether time went to the bounds check itself
//! (the paper's subject) or to the access it protects. This module reuses
//! the translation validator's decoder ([`crate::decode`]) — the one
//! component already trusted to understand every byte the JIT emits — to
//! lift a function body back into [`crate::isa::Inst`] form and bucket
//! each instruction:
//!
//! * **GuardCompare** — the trap-strategy check: `lea scratch, [addr+ext]`
//!   / `cmp scratch, [r15 + mem_size]` / `ja trap` (plus the `movabs`+`add`
//!   form for extents that overflow an i32 displacement).
//! * **Clamp** — the clamp-strategy redirect: `lea` / `mov t, [r15 +
//!   mem_size]` / `sub t, size` / `cmp scratch, t` / `cmova scratch, t`.
//! * **TrapPath** — `ud2` trap stubs (out-of-line; sampled only when a
//!   check actually fails).
//! * **MemoryAccess** — any instruction whose memory operand is based on
//!   r14, the linear-memory base register.
//! * **Compute** — everything else (including context-struct traffic such
//!   as the stack-limit compare, whose displacement differs from
//!   `mem_size`).
//!
//! Classification is purely syntactic and anchored on the context-pointer
//! register (r15) plus the `mem_size` field displacement, which the caller
//! passes in so this crate needs no dependency on the JIT's layout
//! constants. Sequence *widening* (folding the `lea`/`ja` around a compare
//! into the check's cost) runs after per-instruction bucketing, mirroring
//! exactly the shapes `mem_operand` in `crates/jit/src/codegen.rs` emits.

use crate::decode::{decode_all, DecodeErr};
use crate::isa::{AluRi, AluRr, Cc, Inst, Mem, Reg, ShiftOp, W};

/// What a sampled instruction was doing, from the bounds-checking
/// point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Trap-strategy guard sequence (lea/cmp-vs-mem-size/ja).
    GuardCompare,
    /// Clamp-strategy clamp sequence (lea/mov/sub/cmp/cmova).
    Clamp,
    /// Out-of-line `ud2` trap stub.
    TrapPath,
    /// Linear-memory access (r14-based operand).
    MemoryAccess,
    /// Anything else.
    Compute,
}

impl InstClass {
    /// Stable lowercase label, used in trace JSON and report tables.
    pub fn label(self) -> &'static str {
        match self {
            InstClass::GuardCompare => "guard",
            InstClass::Clamp => "clamp",
            InstClass::TrapPath => "trap_path",
            InstClass::MemoryAccess => "mem_access",
            InstClass::Compute => "compute",
        }
    }
}

/// One classified instruction: `[offset, offset + len)` within the
/// function body.
#[derive(Debug, Clone, Copy)]
pub struct ClassifiedInst {
    /// Byte offset of the instruction's first byte.
    pub offset: u32,
    /// Encoded length in bytes.
    pub len: u32,
    /// Attribution bucket.
    pub class: InstClass,
}

/// The linear-memory base register (`MEM_BASE` lives in a register, not
/// the context struct): every guest load/store operand is based on it.
const MEM_BASE_REG: Reg = Reg::R14;
/// The VM context pointer; bounds checks compare against
/// `[r15 + mem_size_disp]`.
const CTX_REG: Reg = Reg::R15;

fn mem_of(inst: &Inst) -> Option<Mem> {
    match *inst {
        Inst::MovRm { m, .. }
        | Inst::MovMr { m, .. }
        | Inst::MovMr8 { m, .. }
        | Inst::MovMr16 { m, .. }
        | Inst::Movzx8 { m, .. }
        | Inst::Movzx16 { m, .. }
        | Inst::Movsx8 { m, .. }
        | Inst::Movsx16 { m, .. }
        | Inst::MovsxdM { m, .. }
        | Inst::MovMi { m, .. }
        | Inst::CmpRm { m, .. }
        | Inst::CallM { m }
        | Inst::Fload { m, .. }
        | Inst::Fstore { m, .. } => Some(m),
        // `lea` computes an address but performs no access.
        _ => None,
    }
}

fn is_ctx_field(m: &Mem, disp: i32) -> bool {
    m.base == CTX_REG && m.index.is_none() && m.disp == disp
}

/// A bounds compare against the context struct: the classic `mem_size`
/// field, or (fused guards) a slot of the per-extent limit table.
fn is_bounds_cmp(m: &Mem, mem_size_disp: i32) -> bool {
    is_ctx_field(m, mem_size_disp)
        || (m.base == CTX_REG && m.index.is_none() && crate::absint::limit_slot(m.disp).is_some())
}

/// True for the address-materialization instructions that may precede a
/// check's compare: `lea scratch, [addr+ext]`, or the wide-extent form
/// `movabs scratch, ext` / `add scratch, addr`.
fn is_addr_setup(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Lea { .. }
            | Inst::MovAbs { .. }
            | Inst::MovRi64Sx { .. }
            | Inst::AluRr { op: AluRr::Add, .. }
    )
}

/// Decode and classify a single function body.
///
/// `code` must be exactly the emitted bytes of one function (prologue
/// through trap stubs, without inter-function `int3` padding);
/// `mem_size_disp` is the byte offset of the memory-size field in the VM
/// context struct (`ctx_off::MEM_SIZE` in `lb-jit`). Fails only if the
/// bytes contain an encoding the JIT cannot produce.
pub fn classify_function(
    code: &[u8],
    mem_size_disp: i32,
) -> Result<Vec<ClassifiedInst>, DecodeErr> {
    let insts = decode_all(code)?;
    let n = insts.len();
    let mut classes: Vec<InstClass> = Vec::with_capacity(n);

    // Pass 1: per-instruction bucketing.
    for (_, inst) in &insts {
        let class = match inst {
            Inst::Ud2Trap { .. } => InstClass::TrapPath,
            Inst::CmpRm { m, .. } if is_bounds_cmp(m, mem_size_disp) => InstClass::GuardCompare,
            _ => match mem_of(inst) {
                Some(m) if m.base == MEM_BASE_REG => InstClass::MemoryAccess,
                _ => InstClass::Compute,
            },
        };
        classes.push(class);
    }

    // Pass 2a: widen trap-strategy guards. The compare was found by its
    // `[r15 + mem_size]` (or limit-table) operand; fold in the address
    // setup before it and the `ja`/`jae trap` after it. Fused guards
    // compare the index register directly — no setup precedes them.
    for i in 0..n {
        if classes[i] != InstClass::GuardCompare {
            continue;
        }
        let classic = matches!(&insts[i].1,
            Inst::CmpRm { m, .. } if is_ctx_field(m, mem_size_disp));
        if classic {
            let mut j = i;
            while j > 0 && classes[j - 1] == InstClass::Compute && is_addr_setup(&insts[j - 1].1) {
                classes[j - 1] = InstClass::GuardCompare;
                j -= 1;
                // At most two setup instructions (movabs + add) precede.
                if i - j == 2 {
                    break;
                }
            }
        }
        if i + 1 < n {
            if let Inst::Jcc {
                cc: Cc::A | Cc::Ae, ..
            } = insts[i + 1].1
            {
                classes[i + 1] = InstClass::GuardCompare;
            }
        }
    }

    // Pass 2c: hoisted preheader guards (`emit_hoist_guard`), anchored on
    // their unique `cmp r11, 0x7FFF_FFFF` range pre-check followed by
    // `ja`. Walk backward over the bound load — a 32-bit `mov r11, reg`
    // when the bound local lives in a register home (pinned at `Full`,
    // linear-scan-allocated at `Mid`, including the caller-saved homes
    // r8/r9) or a 32-bit `mov r11, [rbp+disp]` from its spill slot — plus
    // the optional `sub r11, 1`, and forward over the optional
    // `shl`/`add r11` up to the final size compare pass 2a already
    // marked. The whole sequence is bounds-check time.
    const SCRATCH: Reg = Reg::R11;
    for i in 0..n {
        let anchored = matches!(
            insts[i].1,
            Inst::AluRi { w: W::W64, op: AluRi::Cmp, d, v: 0x7FFF_FFFF } if d == SCRATCH
        );
        if !anchored || !matches!(insts.get(i + 1), Some((_, Inst::Jcc { cc: Cc::A, .. }))) {
            continue;
        }
        let mut j = i;
        if j > 0
            && matches!(insts[j - 1].1,
            Inst::AluRi { w: W::W64, op: AluRi::Sub, d, v: 1 } if d == SCRATCH)
        {
            j -= 1;
        }
        let bound_load = j > 0
            && matches!(insts[j - 1].1,
                Inst::MovRr { w: W::W32, d, .. } if d == SCRATCH)
            || j > 0
                && matches!(&insts[j - 1].1,
                    Inst::MovRm { w: W::W32, d, m } if *d == SCRATCH && m.base == Reg::RBP);
        if !bound_load {
            continue;
        }
        j -= 1;
        let mut k = i + 2;
        if matches!(insts.get(k),
            Some((_, Inst::ShiftImm { w: W::W64, op: ShiftOp::Shl, d, .. })) if *d == SCRATCH)
        {
            k += 1;
        }
        if matches!(insts.get(k),
            Some((_, Inst::AluRi { w: W::W64, op: AluRi::Add, d, .. })) if *d == SCRATCH)
        {
            k += 1;
        }
        // Only accept the full shape: the size compare must follow.
        if !matches!(insts.get(k),
            Some((_, Inst::CmpRm { m, .. })) if is_ctx_field(m, mem_size_disp))
        {
            continue;
        }
        for c in classes.iter_mut().take(k).skip(j) {
            *c = InstClass::GuardCompare;
        }
    }

    // Pass 2b: clamp sequences, anchored on the `mov t, [r15 + mem_size]`
    // load and matched forward over the exact emitted shape
    // `sub t, size` / `cmp scratch, t` / `cmova scratch, t`.
    for i in 0..n {
        let anchor = matches!(&insts[i].1,
            Inst::MovRm { m, .. } if is_ctx_field(m, mem_size_disp));
        if !anchor || i + 3 >= n {
            continue;
        }
        let shape = matches!(insts[i + 1].1, Inst::AluRi { op: AluRi::Sub, .. })
            && matches!(insts[i + 2].1, Inst::AluRr { op: AluRr::Cmp, .. })
            && matches!(insts[i + 3].1, Inst::Cmov { cc: Cc::A, .. });
        if !shape {
            continue;
        }
        for c in classes.iter_mut().take(i + 4).skip(i) {
            *c = InstClass::Clamp;
        }
        // Fold in the preceding address setup, as for guards.
        let mut j = i;
        while j > 0 && classes[j - 1] == InstClass::Compute && is_addr_setup(&insts[j - 1].1) {
            classes[j - 1] = InstClass::Clamp;
            j -= 1;
            if i - j == 2 {
                break;
            }
        }
    }

    let mut out = Vec::with_capacity(n);
    for (i, (off, _)) in insts.iter().enumerate() {
        let end = insts.get(i + 1).map_or(code.len(), |(o, _)| *o);
        out.push(ClassifiedInst {
            offset: *off as u32,
            len: (end - off) as u32,
            class: classes[i],
        });
    }
    Ok(out)
}

/// Find the class of the instruction containing byte `offset`, if any.
/// `classes` must be sorted by offset, as [`classify_function`] returns.
pub fn class_at(classes: &[ClassifiedInst], offset: u32) -> Option<InstClass> {
    let idx = classes.partition_point(|c| c.offset <= offset);
    let c = classes.get(idx.checked_sub(1)?)?;
    (offset < c.offset + c.len).then_some(c.class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{encode, Inst, Mem, Reg, W};

    const MEM_SIZE: i32 = 8;

    fn bytes(insts: &[Inst]) -> Vec<u8> {
        let mut out = Vec::new();
        for i in insts {
            encode(i, &mut out);
        }
        out
    }

    #[test]
    fn trap_guard_sequence_is_guard() {
        // lea r11, [rcx+4]; cmp r11, [r15+8]; ja +0; mov eax, [r14+rcx]
        let code = bytes(&[
            Inst::Lea {
                w: W::W64,
                d: Reg::R11,
                m: Mem::base(Reg::RCX, 4),
            },
            Inst::CmpRm {
                w: W::W64,
                d: Reg::R11,
                m: Mem::base(Reg::R15, MEM_SIZE),
            },
            Inst::Jcc { cc: Cc::A, rel: 0 },
            Inst::MovRm {
                w: W::W32,
                d: Reg::RAX,
                m: Mem {
                    base: Reg::R14,
                    index: Some((Reg::RCX, 1)),
                    disp: 0,
                },
            },
            Inst::Ret,
        ]);
        let cl = classify_function(&code, MEM_SIZE).unwrap();
        let got: Vec<InstClass> = cl.iter().map(|c| c.class).collect();
        assert_eq!(
            got,
            vec![
                InstClass::GuardCompare,
                InstClass::GuardCompare,
                InstClass::GuardCompare,
                InstClass::MemoryAccess,
                InstClass::Compute,
            ]
        );
    }

    #[test]
    fn clamp_sequence_is_clamp() {
        let code = bytes(&[
            Inst::Lea {
                w: W::W64,
                d: Reg::R11,
                m: Mem::base(Reg::RCX, 0),
            },
            Inst::MovRm {
                w: W::W64,
                d: Reg::RDX,
                m: Mem::base(Reg::R15, MEM_SIZE),
            },
            Inst::AluRi {
                w: W::W64,
                op: AluRi::Sub,
                d: Reg::RDX,
                v: 4,
            },
            Inst::AluRr {
                w: W::W64,
                op: AluRr::Cmp,
                d: Reg::R11,
                s: Reg::RDX,
            },
            Inst::Cmov {
                w: W::W64,
                cc: Cc::A,
                d: Reg::R11,
                s: Reg::RDX,
            },
            Inst::MovRm {
                w: W::W32,
                d: Reg::RAX,
                m: Mem {
                    base: Reg::R14,
                    index: Some((Reg::R11, 1)),
                    disp: 0,
                },
            },
        ]);
        let cl = classify_function(&code, MEM_SIZE).unwrap();
        let got: Vec<InstClass> = cl.iter().map(|c| c.class).collect();
        assert_eq!(
            got,
            vec![
                InstClass::Clamp,
                InstClass::Clamp,
                InstClass::Clamp,
                InstClass::Clamp,
                InstClass::Clamp,
                InstClass::MemoryAccess,
            ]
        );
    }

    #[test]
    fn fused_limit_compare_is_guard() {
        // The fused guard: cmp rcx, [r15+64]; jae trap; mov eax, [r14+rcx].
        // No lea precedes it, and the branch is `jae`, not `ja`.
        let code = bytes(&[
            Inst::CmpRm {
                w: W::W64,
                d: Reg::RCX,
                m: Mem::base(Reg::R15, 64),
            },
            Inst::Jcc { cc: Cc::Ae, rel: 0 },
            Inst::MovRm {
                w: W::W32,
                d: Reg::RAX,
                m: Mem {
                    base: Reg::R14,
                    index: Some((Reg::RCX, 1)),
                    disp: 0,
                },
            },
            Inst::Ret,
        ]);
        let cl = classify_function(&code, MEM_SIZE).unwrap();
        let got: Vec<InstClass> = cl.iter().map(|c| c.class).collect();
        assert_eq!(
            got,
            vec![
                InstClass::GuardCompare,
                InstClass::GuardCompare,
                InstClass::MemoryAccess,
                InstClass::Compute,
            ]
        );
    }

    #[test]
    fn ctx_compare_past_limit_table_stays_compute() {
        // A compare against a context displacement beyond the limit table
        // (64 + 8*8 = 128) is not a bounds check.
        let code = bytes(&[
            Inst::CmpRm {
                w: W::W64,
                d: Reg::RCX,
                m: Mem::base(Reg::R15, 128),
            },
            Inst::Ret,
        ]);
        let cl = classify_function(&code, MEM_SIZE).unwrap();
        assert_eq!(cl[0].class, InstClass::Compute);
    }

    #[test]
    fn stack_limit_compare_stays_compute() {
        // The prologue stack-overflow check compares against a different
        // context field; it must not count as a bounds check.
        let code = bytes(&[
            Inst::CmpRm {
                w: W::W64,
                d: Reg::RSP,
                m: Mem::base(Reg::R15, 40),
            },
            Inst::Ud2Trap { code: 3 },
        ]);
        let cl = classify_function(&code, MEM_SIZE).unwrap();
        assert_eq!(cl[0].class, InstClass::Compute);
        assert_eq!(cl[1].class, InstClass::TrapPath);
    }

    #[test]
    fn select_cmov_is_not_clamp() {
        // `select` lowers to cmove without the mem-size load before it.
        let code = bytes(&[
            Inst::AluRr {
                w: W::W64,
                op: AluRr::Test,
                d: Reg::RCX,
                s: Reg::RCX,
            },
            Inst::Cmov {
                w: W::W64,
                cc: Cc::E,
                d: Reg::RAX,
                s: Reg::RDX,
            },
        ]);
        let cl = classify_function(&code, MEM_SIZE).unwrap();
        assert!(cl.iter().all(|c| c.class == InstClass::Compute));
    }

    #[test]
    fn hoisted_guard_with_register_homed_bound_is_guard() {
        // The mid tier's preheader guard reads the bound from its home
        // register (here r8, a caller-saved linear-scan home):
        // mov r11d, r8d; sub r11, 1; cmp r11, 7FFFFFFF; ja; shl r11, 2;
        // add r11, 8; cmp r11, [r15+8]; ja; then the fast body's access.
        let code = bytes(&[
            Inst::MovRr {
                w: W::W32,
                d: Reg::R11,
                s: Reg::R8,
            },
            Inst::AluRi {
                w: W::W64,
                op: AluRi::Sub,
                d: Reg::R11,
                v: 1,
            },
            Inst::AluRi {
                w: W::W64,
                op: AluRi::Cmp,
                d: Reg::R11,
                v: 0x7FFF_FFFF,
            },
            Inst::Jcc { cc: Cc::A, rel: 0 },
            Inst::ShiftImm {
                w: W::W64,
                op: ShiftOp::Shl,
                d: Reg::R11,
                v: 2,
            },
            Inst::AluRi {
                w: W::W64,
                op: AluRi::Add,
                d: Reg::R11,
                v: 8,
            },
            Inst::CmpRm {
                w: W::W64,
                d: Reg::R11,
                m: Mem::base(Reg::R15, MEM_SIZE),
            },
            Inst::Jcc { cc: Cc::A, rel: 0 },
            Inst::MovRm {
                w: W::W32,
                d: Reg::RAX,
                m: Mem {
                    base: Reg::R14,
                    index: Some((Reg::R8, 1)),
                    disp: 0,
                },
            },
        ]);
        let cl = classify_function(&code, MEM_SIZE).unwrap();
        let got: Vec<InstClass> = cl.iter().map(|c| c.class).collect();
        assert_eq!(got[..8], vec![InstClass::GuardCompare; 8][..]);
        assert_eq!(got[8], InstClass::MemoryAccess);
    }

    #[test]
    fn hoisted_guard_with_spilled_bound_is_guard() {
        // Minimal shape, bound loaded from its rbp frame slot, no
        // sub/shl/add: mov r11d, [rbp-16]; cmp r11, 7FFFFFFF; ja;
        // cmp r11, [r15+8]; ja.
        let code = bytes(&[
            Inst::MovRm {
                w: W::W32,
                d: Reg::R11,
                m: Mem::base(Reg::RBP, -16),
            },
            Inst::AluRi {
                w: W::W64,
                op: AluRi::Cmp,
                d: Reg::R11,
                v: 0x7FFF_FFFF,
            },
            Inst::Jcc { cc: Cc::A, rel: 0 },
            Inst::CmpRm {
                w: W::W64,
                d: Reg::R11,
                m: Mem::base(Reg::R15, MEM_SIZE),
            },
            Inst::Jcc { cc: Cc::A, rel: 0 },
            Inst::Ret,
        ]);
        let cl = classify_function(&code, MEM_SIZE).unwrap();
        let got: Vec<InstClass> = cl.iter().map(|c| c.class).collect();
        assert_eq!(got[..5], vec![InstClass::GuardCompare; 5][..]);
        assert_eq!(got[5], InstClass::Compute);
    }

    #[test]
    fn range_precheck_without_size_compare_stays_compute() {
        // A `cmp r11, 7FFFFFFF; ja` that is not followed by the hoisted
        // guard's size compare must not be attributed as a bounds check.
        let code = bytes(&[
            Inst::MovRr {
                w: W::W32,
                d: Reg::R11,
                s: Reg::RBX,
            },
            Inst::AluRi {
                w: W::W64,
                op: AluRi::Cmp,
                d: Reg::R11,
                v: 0x7FFF_FFFF,
            },
            Inst::Jcc { cc: Cc::A, rel: 0 },
            Inst::Ret,
        ]);
        let cl = classify_function(&code, MEM_SIZE).unwrap();
        assert!(cl.iter().all(|c| c.class == InstClass::Compute));
    }

    #[test]
    fn class_at_maps_offsets_through_lengths() {
        let code = bytes(&[
            Inst::Lea {
                w: W::W64,
                d: Reg::R11,
                m: Mem::base(Reg::RCX, 4),
            },
            Inst::CmpRm {
                w: W::W64,
                d: Reg::R11,
                m: Mem::base(Reg::R15, MEM_SIZE),
            },
            Inst::Ret,
        ]);
        let cl = classify_function(&code, MEM_SIZE).unwrap();
        // Every byte of every instruction resolves to that instruction's
        // class; one past the end resolves to nothing.
        for c in &cl {
            for b in c.offset..c.offset + c.len {
                assert_eq!(class_at(&cl, b), Some(c.class), "byte {b}");
            }
        }
        assert_eq!(class_at(&cl, code.len() as u32), None);
    }
}
