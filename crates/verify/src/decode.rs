//! Decoder for the JIT's x86-64 instruction vocabulary.
//!
//! Decodes exactly the encodings `crates/jit/src/asm.rs` can produce (see
//! [`crate::isa::Inst`]); anything else is a [`DecodeErr`]. Used by the
//! translation validator to lift emitted machine code back into analyzable
//! form, and by the decoder round-trip test in `lb-jit`.

use crate::isa::{AluRi, AluRr, BitCnt, Cc, Inst, Mem, Reg, ShiftOp, Xmm, W};

/// A decode failure at a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeErr {
    /// Offset of the undecodable instruction's first byte.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for DecodeErr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error at +{:#x}: {}", self.offset, self.reason)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    start: usize,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err<T>(&self, reason: impl Into<String>) -> Result<T, DecodeErr> {
        Err(DecodeErr {
            offset: self.start,
            reason: reason.into(),
        })
    }

    fn u8(&mut self) -> Result<u8, DecodeErr> {
        match self.bytes.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => self.err("truncated instruction"),
        }
    }

    fn i32_(&mut self) -> Result<i32, DecodeErr> {
        let mut v = [0u8; 4];
        for b in &mut v {
            *b = self.u8()?;
        }
        Ok(i32::from_le_bytes(v))
    }

    fn i64_(&mut self) -> Result<i64, DecodeErr> {
        let mut v = [0u8; 8];
        for b in &mut v {
            *b = self.u8()?;
        }
        Ok(i64::from_le_bytes(v))
    }
}

#[derive(Clone, Copy, Default)]
struct Rex {
    present: bool,
    w: bool,
    r: bool,
    x: bool,
    b: bool,
}

/// A decoded ModRM operand: either a register or a memory operand.
enum Rm {
    Reg(u8),
    Mem(Mem),
}

fn ext(hi: bool, low: u8) -> Reg {
    Reg(low | (u8::from(hi) << 3))
}

/// Decode ModRM (+SIB +disp) with the given REX. Returns `(reg_field,
/// rm_operand)`; the reg field is already REX.R-extended.
fn modrm(c: &mut Cursor<'_>, rex: Rex) -> Result<(u8, Rm), DecodeErr> {
    let mb = c.u8()?;
    let mode = mb >> 6;
    let reg = ((mb >> 3) & 7) | (u8::from(rex.r) << 3);
    let rm = mb & 7;
    if mode == 3 {
        return Ok((reg, Rm::Reg(rm | (u8::from(rex.b) << 3))));
    }
    let (base, index) = if rm == 4 {
        let sib = c.u8()?;
        let scale = 1u8 << (sib >> 6);
        let idx_low = (sib >> 3) & 7;
        let base_low = sib & 7;
        if mode == 0 && base_low == 5 {
            return c.err("SIB with no base (mod=0, base=101) is not emitted");
        }
        let index_num = idx_low | (u8::from(rex.x) << 3);
        let index = if index_num == 4 {
            None
        } else {
            Some((Reg(index_num), scale))
        };
        (ext(rex.b, base_low), index)
    } else {
        if mode == 0 && rm == 5 {
            return c.err("RIP-relative addressing is not emitted");
        }
        (ext(rex.b, rm), None)
    };
    let disp = match mode {
        0 => 0,
        1 => i32::from(c.u8()? as i8),
        _ => c.i32_()?,
    };
    Ok((reg, Rm::Mem(Mem { base, index, disp })))
}

fn want_mem(c: &Cursor<'_>, rm: Rm) -> Result<Mem, DecodeErr> {
    match rm {
        Rm::Mem(m) => Ok(m),
        Rm::Reg(_) => c.err("expected a memory operand"),
    }
}

fn want_reg(c: &Cursor<'_>, rm: Rm) -> Result<u8, DecodeErr> {
    match rm {
        Rm::Reg(r) => Ok(r),
        Rm::Mem(_) => c.err("expected a register operand"),
    }
}

fn ww(rex: Rex) -> W {
    if rex.w {
        W::W64
    } else {
        W::W32
    }
}

/// Decode one instruction starting at `bytes[offset]`. Returns the
/// instruction and the offset just past it.
pub fn decode_one(bytes: &[u8], offset: usize) -> Result<(Inst, usize), DecodeErr> {
    let mut c = Cursor {
        bytes,
        start: offset,
        pos: offset,
    };
    // Mandatory prefixes (at most one in this vocabulary), then REX.
    let mut p66 = false;
    let mut pf2 = false;
    let mut pf3 = false;
    let mut op = c.u8()?;
    loop {
        match op {
            0x66 if !p66 => p66 = true,
            0xF2 if !pf2 => pf2 = true,
            0xF3 if !pf3 => pf3 = true,
            _ => break,
        }
        op = c.u8()?;
    }
    let mut rex = Rex::default();
    if (0x40..=0x4F).contains(&op) {
        rex = Rex {
            present: true,
            w: op & 8 != 0,
            r: op & 4 != 0,
            x: op & 2 != 0,
            b: op & 1 != 0,
        };
        op = c.u8()?;
    }
    let sse_prefix = u8::from(p66) + u8::from(pf2) + u8::from(pf3);
    if sse_prefix > 1 {
        return c.err("multiple mandatory prefixes");
    }

    let inst = match op {
        0x0F => decode_0f(&mut c, p66, pf2, pf3, rex)?,
        0x50..=0x57 if sse_prefix == 0 => Inst::Push {
            r: ext(rex.b, op - 0x50),
        },
        0x58..=0x5F if sse_prefix == 0 => Inst::Pop {
            r: ext(rex.b, op - 0x58),
        },
        0x63 if rex.w => {
            let (reg, rm) = modrm(&mut c, rex)?;
            match rm {
                Rm::Reg(r) => Inst::MovsxdR {
                    d: Reg(reg),
                    s: Reg(r),
                },
                Rm::Mem(m) => Inst::MovsxdM { d: Reg(reg), m },
            }
        }
        0x01 | 0x09 | 0x21 | 0x29 | 0x31 | 0x39 | 0x85 if sse_prefix == 0 => {
            let aop = match op {
                0x01 => AluRr::Add,
                0x09 => AluRr::Or,
                0x21 => AluRr::And,
                0x29 => AluRr::Sub,
                0x31 => AluRr::Xor,
                0x39 => AluRr::Cmp,
                _ => AluRr::Test,
            };
            let (reg, rm) = modrm(&mut c, rex)?;
            let d = want_reg(&c, rm)?;
            Inst::AluRr {
                w: ww(rex),
                op: aop,
                d: Reg(d),
                s: Reg(reg),
            }
        }
        0x3B if sse_prefix == 0 => {
            let (reg, rm) = modrm(&mut c, rex)?;
            let m = want_mem(&c, rm)?;
            Inst::CmpRm {
                w: ww(rex),
                d: Reg(reg),
                m,
            }
        }
        0x81 | 0x83 if sse_prefix == 0 => {
            let (reg, rm) = modrm(&mut c, rex)?;
            let d = want_reg(&c, rm)?;
            let aop = match reg & 7 {
                0 => AluRi::Add,
                4 => AluRi::And,
                5 => AluRi::Sub,
                7 => AluRi::Cmp,
                other => return c.err(format!("ALU /{} immediate form is not emitted", other)),
            };
            let v = if op == 0x83 {
                i32::from(c.u8()? as i8)
            } else {
                c.i32_()?
            };
            Inst::AluRi {
                w: ww(rex),
                op: aop,
                d: Reg(d),
                v,
            }
        }
        0x88 if sse_prefix == 0 => {
            let (reg, rm) = modrm(&mut c, rex)?;
            let m = want_mem(&c, rm)?;
            Inst::MovMr8 { m, s: Reg(reg) }
        }
        0x89 => {
            let (reg, rm) = modrm(&mut c, rex)?;
            match rm {
                Rm::Reg(d) if !p66 => Inst::MovRr {
                    w: ww(rex),
                    d: Reg(d),
                    s: Reg(reg),
                },
                Rm::Mem(m) if p66 => Inst::MovMr16 { m, s: Reg(reg) },
                Rm::Mem(m) => Inst::MovMr {
                    w: ww(rex),
                    m,
                    s: Reg(reg),
                },
                Rm::Reg(_) => return c.err("16-bit register mov is not emitted"),
            }
        }
        0x8B if sse_prefix == 0 => {
            let (reg, rm) = modrm(&mut c, rex)?;
            let m = want_mem(&c, rm)?;
            Inst::MovRm {
                w: ww(rex),
                d: Reg(reg),
                m,
            }
        }
        0x8D if sse_prefix == 0 => {
            let (reg, rm) = modrm(&mut c, rex)?;
            let m = want_mem(&c, rm)?;
            Inst::Lea {
                w: ww(rex),
                d: Reg(reg),
                m,
            }
        }
        0x90 if sse_prefix == 0 && !rex.present => Inst::Nop,
        0x99 if sse_prefix == 0 => Inst::CdqCqo { w: ww(rex) },
        0xB8..=0xBF if sse_prefix == 0 => {
            let d = ext(rex.b, op - 0xB8);
            if rex.w {
                Inst::MovAbs { d, v: c.i64_()? }
            } else {
                Inst::MovRi32 { d, v: c.i32_()? }
            }
        }
        0xC1 | 0xD3 if sse_prefix == 0 => {
            let (reg, rm) = modrm(&mut c, rex)?;
            let d = want_reg(&c, rm)?;
            let sop = match reg & 7 {
                0 => ShiftOp::Rol,
                1 => ShiftOp::Ror,
                4 => ShiftOp::Shl,
                5 => ShiftOp::Shr,
                7 => ShiftOp::Sar,
                other => return c.err(format!("shift /{} is not emitted", other)),
            };
            if op == 0xC1 {
                let v = c.u8()?;
                Inst::ShiftImm {
                    w: ww(rex),
                    op: sop,
                    d: Reg(d),
                    v,
                }
            } else {
                Inst::ShiftCl {
                    w: ww(rex),
                    op: sop,
                    d: Reg(d),
                }
            }
        }
        0xC3 if sse_prefix == 0 => Inst::Ret,
        0xC7 if sse_prefix == 0 && rex.w => {
            let (reg, rm) = modrm(&mut c, rex)?;
            if reg & 7 != 0 {
                return c.err("C7 with a nonzero reg field is not emitted");
            }
            match rm {
                Rm::Reg(d) => Inst::MovRi64Sx {
                    d: Reg(d),
                    v: c.i32_()?,
                },
                Rm::Mem(m) => Inst::MovMi { m, v: c.i32_()? },
            }
        }
        0xE9 if sse_prefix == 0 => Inst::Jmp { rel: c.i32_()? },
        0xF7 if sse_prefix == 0 => {
            let (reg, rm) = modrm(&mut c, rex)?;
            let d = want_reg(&c, rm)?;
            match reg & 7 {
                3 => Inst::Neg {
                    w: ww(rex),
                    d: Reg(d),
                },
                6 => Inst::Div {
                    w: ww(rex),
                    s: Reg(d),
                },
                7 => Inst::Idiv {
                    w: ww(rex),
                    s: Reg(d),
                },
                other => return c.err(format!("F7 /{} is not emitted", other)),
            }
        }
        0xFF if sse_prefix == 0 => {
            let (reg, rm) = modrm(&mut c, rex)?;
            if reg & 7 != 2 {
                return c.err(format!("FF /{} is not emitted", reg & 7));
            }
            match rm {
                Rm::Reg(r) => Inst::CallR { r: Reg(r) },
                Rm::Mem(m) => Inst::CallM { m },
            }
        }
        other => return c.err(format!("unknown opcode {other:#04x}")),
    };
    Ok((inst, c.pos))
}

/// Decode the two-byte (`0F ..`) opcode space.
fn decode_0f(
    c: &mut Cursor<'_>,
    p66: bool,
    pf2: bool,
    pf3: bool,
    rex: Rex,
) -> Result<Inst, DecodeErr> {
    let op = c.u8()?;
    let fp = pf2 || pf3; // one of the scalar-float prefixes
    let inst = match op {
        0x0B => Inst::Ud2Trap { code: c.u8()? },
        0x10 | 0x11 if fp => {
            let (reg, rm) = modrm(c, rex)?;
            let m = want_mem(c, rm)?;
            let x = Xmm(reg);
            if op == 0x10 {
                Inst::Fload {
                    double: pf2,
                    d: x,
                    m,
                }
            } else {
                Inst::Fstore {
                    double: pf2,
                    m,
                    s: x,
                }
            }
        }
        0x28 if !p66 && !fp => {
            let (reg, rm) = modrm(c, rex)?;
            let s = want_reg(c, rm)?;
            Inst::Fmov {
                d: Xmm(reg),
                s: Xmm(s),
            }
        }
        0x2A if fp => {
            let (reg, rm) = modrm(c, rex)?;
            let s = want_reg(c, rm)?;
            Inst::CvtI2f {
                double: pf2,
                w: ww(rex),
                d: Xmm(reg),
                s: Reg(s),
            }
        }
        0x2C if fp => {
            let (reg, rm) = modrm(c, rex)?;
            let s = want_reg(c, rm)?;
            Inst::CvttF2i {
                double: pf2,
                w: ww(rex),
                d: Reg(reg),
                s: Xmm(s),
            }
        }
        0x2E if !fp => {
            let (reg, rm) = modrm(c, rex)?;
            let b = want_reg(c, rm)?;
            Inst::Ucomis {
                double: p66,
                a: Xmm(reg),
                b: Xmm(b),
            }
        }
        0x3A => {
            let sub = c.u8()?;
            if !p66 || (sub != 0x0A && sub != 0x0B) {
                return c.err("only roundss/roundsd are emitted from 0F 3A");
            }
            let (reg, rm) = modrm(c, rex)?;
            let s = want_reg(c, rm)?;
            let mode = c.u8()?;
            Inst::Rounds {
                double: sub == 0x0B,
                d: Xmm(reg),
                s: Xmm(s),
                mode,
            }
        }
        0x40..=0x4F if !p66 && !fp => {
            let (reg, rm) = modrm(c, rex)?;
            let s = want_reg(c, rm)?;
            Inst::Cmov {
                w: ww(rex),
                cc: Cc::from_nibble(op - 0x40),
                d: Reg(reg),
                s: Reg(s),
            }
        }
        0x51 | 0x58 | 0x59 | 0x5C | 0x5E if fp => {
            let (reg, rm) = modrm(c, rex)?;
            let s = want_reg(c, rm)?;
            Inst::Farith {
                double: pf2,
                op,
                d: Xmm(reg),
                s: Xmm(s),
            }
        }
        0x5A if fp => {
            let (reg, rm) = modrm(c, rex)?;
            let s = want_reg(c, rm)?;
            if pf2 {
                Inst::CvtD2s {
                    d: Xmm(reg),
                    s: Xmm(s),
                }
            } else {
                Inst::CvtS2d {
                    d: Xmm(reg),
                    s: Xmm(s),
                }
            }
        }
        0x54..=0x57 if p66 => {
            let (reg, rm) = modrm(c, rex)?;
            let s = want_reg(c, rm)?;
            Inst::Fbit {
                op,
                d: Xmm(reg),
                s: Xmm(s),
            }
        }
        0x6E if p66 => {
            let (reg, rm) = modrm(c, rex)?;
            let s = want_reg(c, rm)?;
            Inst::MovqXr {
                w: ww(rex),
                d: Xmm(reg),
                s: Reg(s),
            }
        }
        0x7E if p66 => {
            let (reg, rm) = modrm(c, rex)?;
            let d = want_reg(c, rm)?;
            Inst::MovqRx {
                w: ww(rex),
                d: Reg(d),
                s: Xmm(reg),
            }
        }
        0x80..=0x8F if !p66 && !fp => Inst::Jcc {
            cc: Cc::from_nibble(op - 0x80),
            rel: c.i32_()?,
        },
        0x90..=0x9F if !p66 && !fp => {
            let (reg, rm) = modrm(c, rex)?;
            let d = want_reg(c, rm)?;
            if reg & 7 != 0 {
                return c.err("SETcc with a nonzero reg field is not emitted");
            }
            Inst::Setcc {
                cc: Cc::from_nibble(op - 0x90),
                d: Reg(d),
            }
        }
        0xAF if !p66 && !fp => {
            let (reg, rm) = modrm(c, rex)?;
            let s = want_reg(c, rm)?;
            Inst::ImulRr {
                w: ww(rex),
                d: Reg(reg),
                s: Reg(s),
            }
        }
        0xB6 | 0xB7 if !pf3 => {
            let (reg, rm) = modrm(c, rex)?;
            let m = want_mem(c, rm)?;
            if op == 0xB6 {
                Inst::Movzx8 { d: Reg(reg), m }
            } else {
                Inst::Movzx16 { d: Reg(reg), m }
            }
        }
        0xB8 | 0xBC | 0xBD if pf3 => {
            let (reg, rm) = modrm(c, rex)?;
            let s = want_reg(c, rm)?;
            let bop = match op {
                0xB8 => BitCnt::Popcnt,
                0xBC => BitCnt::Tzcnt,
                _ => BitCnt::Lzcnt,
            };
            Inst::BitCnt {
                w: ww(rex),
                op: bop,
                d: Reg(reg),
                s: Reg(s),
            }
        }
        0xBE | 0xBF if !pf3 => {
            let (reg, rm) = modrm(c, rex)?;
            let m = want_mem(c, rm)?;
            if op == 0xBE {
                Inst::Movsx8 {
                    w: ww(rex),
                    d: Reg(reg),
                    m,
                }
            } else {
                Inst::Movsx16 {
                    w: ww(rex),
                    d: Reg(reg),
                    m,
                }
            }
        }
        0xEF if p66 => {
            let (reg, rm) = modrm(c, rex)?;
            let s = want_reg(c, rm)?;
            Inst::Pxor {
                d: Xmm(reg),
                s: Xmm(s),
            }
        }
        other => return c.err(format!("unknown 0F opcode {other:#04x}")),
    };
    Ok(inst)
}

/// Decode an entire code region into `(offset, instruction)` pairs.
pub fn decode_all(bytes: &[u8]) -> Result<Vec<(usize, Inst)>, DecodeErr> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let (inst, next) = decode_one(bytes, pos)?;
        out.push((pos, inst));
        pos = next;
    }
    Ok(out)
}
