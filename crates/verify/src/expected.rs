//! Expected linear-memory access sites, derived from the wasm body.
//!
//! The JIT lowers instructions in program order, skipping code it knows is
//! dead (after `unreachable`, `br`, `br_table`, `return`, or `else`) until
//! a branch-target label revives it. This walker reproduces that
//! reachability rule exactly — the same label set `collect_labels` builds
//! in `crates/jit/src/codegen.rs` — so the sites it yields align 1:1, in
//! byte order, with the `r14`-based operands in the emitted code.

use lb_analysis::{CheckKind, FuncPlan};
use lb_core::BoundsStrategy;
use lb_wasm::instr::MemAccess;
use lb_wasm::{FuncMeta, Instr};
use std::collections::HashSet;

/// One linear-memory access the JIT is expected to have emitted.
#[derive(Debug, Clone)]
pub struct ExpectedSite {
    /// Instruction index in the wasm body.
    pub pc: usize,
    /// The access (type, width, direction, memarg).
    pub acc: MemAccess,
    /// What the compiler was told to do about the bounds check here, after
    /// applying the strategy's elision rules. `Emit` when no plan was
    /// consulted.
    pub kind: CheckKind,
}

/// The per-site check decision the code generator acted on: the plan kind
/// filtered through the strategy, mirroring `mem_operand`.
fn site_kind(strategy: BoundsStrategy, plan: Option<&FuncPlan>, pc: usize) -> CheckKind {
    let k = plan.map_or(CheckKind::Emit, |p| p.kind_at(pc));
    match strategy {
        // Trap honours the full plan.
        BoundsStrategy::Trap => k,
        // Clamp only elides proven-in-bounds sites: a dominating clamp
        // redirects instead of trapping, so it proves nothing downstream.
        BoundsStrategy::Clamp => {
            if k == CheckKind::ElideInBounds {
                k
            } else {
                CheckKind::Emit
            }
        }
        // Guard-region strategies never consult the plan in codegen.
        BoundsStrategy::None | BoundsStrategy::Mprotect | BoundsStrategy::Uffd => CheckKind::Emit,
    }
}

/// Walk the body with the JIT's reachability rules and list every access
/// site it lowers, in emission order. `plan` must be the plan codegen
/// consulted (`None` when the baseline tier emits every check).
pub fn expected_sites(
    body: &[Instr],
    meta: &FuncMeta,
    strategy: BoundsStrategy,
    plan: Option<&FuncPlan>,
) -> Vec<ExpectedSite> {
    // Branch-target pcs, exactly as codegen's `collect_labels` computes
    // them (the function-end pseudo-label does not revive dead code).
    let mut labels: HashSet<u32> = HashSet::new();
    for (pc, instr) in body.iter().enumerate() {
        match instr {
            Instr::If(_) | Instr::Else => {
                labels.insert(meta.ctrl[pc]);
            }
            Instr::Br(_) | Instr::BrIf(_) => {
                labels.insert(meta.branch_table[meta.ctrl[pc] as usize].dest_pc);
            }
            Instr::BrTable(t) => {
                let base = meta.ctrl[pc] as usize;
                for k in 0..=t.targets.len() {
                    labels.insert(meta.branch_table[base + k].dest_pc);
                }
            }
            _ => {}
        }
    }
    labels.remove(&meta.body_len);

    let mut out = Vec::new();
    let mut dead = false;
    let mut depth: i32 = 0;
    for (pc, instr) in body.iter().enumerate() {
        if labels.contains(&(pc as u32)) {
            dead = false;
        }
        if dead {
            match instr {
                Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => depth += 1,
                Instr::End => {
                    depth -= 1;
                    if depth < 0 {
                        return out;
                    }
                }
                _ => {}
            }
            continue;
        }
        match instr {
            Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => depth += 1,
            Instr::End => {
                depth -= 1;
                if depth < 0 {
                    return out;
                }
            }
            Instr::Unreachable | Instr::Else | Instr::Br(_) | Instr::BrTable(_) | Instr::Return => {
                dead = true;
            }
            _ => {
                if let Some(acc) = instr.mem_access() {
                    out.push(ExpectedSite {
                        pc,
                        acc,
                        kind: site_kind(strategy, plan, pc),
                    });
                }
            }
        }
    }
    out
}
