//! Expected linear-memory access sites, derived from the wasm body.
//!
//! The JIT lowers instructions in program order, skipping code it knows is
//! dead (after `unreachable`, `br`, `br_table`, `return`, or `else`) until
//! a branch-target label revives it. This walker reproduces that
//! reachability rule exactly — the same label set `collect_labels` builds
//! in `crates/jit/src/codegen.rs` — so the sites it yields align 1:1, in
//! byte order, with the `r14`-based operands in the emitted code.
//!
//! Versioned loops: when the plan carries a [`HoistPlan`] for a loop and
//! the strategy consults the plan (Trap/Clamp), codegen emits the loop
//! body twice — the check-free fast copy first, then the per-access-checked
//! slow copy. The walker mirrors that order: the hoisted range is listed
//! twice, with `ElideHoisted` kinds in the fast copy (carrying the guards
//! that must dominate them) downgraded to `Emit` in the slow copy.

use lb_analysis::{CheckKind, FuncPlan, GuardExpr, GuardOpt, HoistPlan};
use lb_core::BoundsStrategy;
use lb_wasm::instr::MemAccess;
use lb_wasm::{FuncMeta, Instr};
use std::collections::{HashMap, HashSet};

/// One linear-memory access the JIT is expected to have emitted.
#[derive(Debug, Clone)]
pub struct ExpectedSite {
    /// Instruction index in the wasm body.
    pub pc: usize,
    /// The access (type, width, direction, memarg).
    pub acc: MemAccess,
    /// What the compiler was told to do about the bounds check here, after
    /// applying the strategy's elision rules. `Emit` when no plan was
    /// consulted.
    pub kind: CheckKind,
    /// For `ElideHoisted` (fast loop-body) sites: the preheader guards
    /// whose machine facts must dominate the access.
    pub hoist: Option<Vec<GuardExpr>>,
    /// `Some(slot)` when the guard-optimizing mid tier fused this site's
    /// check into a single limit-table compare. The site still carries an
    /// at-site check obligation; the proof arrives through the fused
    /// compare's fact instead of the classic guard's.
    pub fused: Option<u8>,
}

/// The per-site check decision the code generator acted on: the plan kind
/// filtered through the strategy, mirroring `mem_operand`.
fn site_kind(strategy: BoundsStrategy, plan: Option<&FuncPlan>, pc: usize) -> CheckKind {
    let k = plan.map_or(CheckKind::Emit, |p| p.kind_at(pc));
    match strategy {
        // Trap honours the full plan.
        BoundsStrategy::Trap => k,
        // Clamp elides proven-in-bounds sites, fast-copy hoisted sites
        // (the preheader guard proves every iteration in bounds, so the
        // clamp is the identity), and dominated sites whose dominator was
        // a *static* proof (`clamp_ok`: the clamp there was the identity
        // too, so downstream facts still hold).
        BoundsStrategy::Clamp => match k {
            CheckKind::ElideInBounds | CheckKind::ElideHoisted => k,
            CheckKind::ElideDominated if plan.is_some_and(|p| p.clamp_elidable(pc)) => k,
            _ => CheckKind::Emit,
        },
        // Guard-region strategies never consult the plan in codegen.
        BoundsStrategy::None | BoundsStrategy::Mprotect | BoundsStrategy::Uffd => CheckKind::Emit,
    }
}

/// List the sites of one copy of a hoisted loop body `[start, end]`
/// (inclusive of the `Loop` and its `End`). The body is straight-line
/// (hoisting requires it), so only the dead-code rule applies — no block
/// nesting. Returns the liveness state at the end of the copy.
#[allow(clippy::too_many_arguments)]
fn walk_hoisted_copy(
    body: &[Instr],
    start: usize,
    end: usize,
    labels: &HashSet<u32>,
    strategy: BoundsStrategy,
    plan: Option<&FuncPlan>,
    h: &HoistPlan,
    fast: bool,
    out: &mut Vec<ExpectedSite>,
) -> bool {
    let mut dead = false;
    for pc in start..=end {
        if labels.contains(&(pc as u32)) {
            dead = false;
        }
        if dead {
            continue;
        }
        match &body[pc] {
            Instr::Unreachable | Instr::Br(_) | Instr::BrTable(_) | Instr::Return => dead = true,
            instr => {
                if let Some(acc) = instr.mem_access() {
                    let mut kind = site_kind(strategy, plan, pc);
                    let mut hoist = None;
                    if kind == CheckKind::ElideHoisted {
                        if fast {
                            hoist = Some(h.guards.clone());
                        } else {
                            // The slow copy re-emits the full check.
                            kind = CheckKind::Emit;
                        }
                    }
                    out.push(ExpectedSite {
                        pc,
                        acc,
                        kind,
                        hoist,
                        fused: None,
                    });
                }
            }
        }
    }
    dead
}

/// Walk the body with the JIT's reachability rules and list every access
/// site it lowers, in emission order. `plan` must be the plan codegen
/// consulted (`None` when the baseline tier emits every check).
pub fn expected_sites(
    body: &[Instr],
    meta: &FuncMeta,
    strategy: BoundsStrategy,
    plan: Option<&FuncPlan>,
) -> Vec<ExpectedSite> {
    expected_sites_guardopt(body, meta, strategy, plan, None)
}

/// [`expected_sites`] plus the guard-optimizing mid tier's per-site
/// decisions (`dataflow::decide`, recomputed by the caller from the wasm —
/// never read back from codegen). Decisions rewrite `Emit` sites only:
/// `GvnElide` becomes [`CheckKind::ElideDominatedIr`] (whose machine fact
/// the verifier must re-derive), `Fuse` marks the site fused. Sites inside
/// hoisted ranges never carry decisions — the pass skips them.
pub fn expected_sites_guardopt(
    body: &[Instr],
    meta: &FuncMeta,
    strategy: BoundsStrategy,
    plan: Option<&FuncPlan>,
    guardopt: Option<&[(u32, GuardOpt)]>,
) -> Vec<ExpectedSite> {
    let mut out = expected_sites_inner(body, meta, strategy, plan);
    if strategy != BoundsStrategy::Trap {
        return out;
    }
    let Some(decisions) = guardopt else {
        return out;
    };
    let by_pc: HashMap<u32, GuardOpt> = decisions.iter().copied().collect();
    for site in &mut out {
        if site.kind != CheckKind::Emit || site.hoist.is_some() {
            continue;
        }
        match by_pc.get(&(site.pc as u32)) {
            Some(GuardOpt::GvnElide) => site.kind = CheckKind::ElideDominatedIr,
            Some(GuardOpt::Fuse(slot)) => site.fused = Some(*slot),
            None => {}
        }
    }
    out
}

fn expected_sites_inner(
    body: &[Instr],
    meta: &FuncMeta,
    strategy: BoundsStrategy,
    plan: Option<&FuncPlan>,
) -> Vec<ExpectedSite> {
    // Branch-target pcs, exactly as codegen's `collect_labels` computes
    // them (the function-end pseudo-label does not revive dead code).
    let mut labels: HashSet<u32> = HashSet::new();
    for (pc, instr) in body.iter().enumerate() {
        match instr {
            Instr::If(_) | Instr::Else => {
                labels.insert(meta.ctrl[pc]);
            }
            Instr::Br(_) | Instr::BrIf(_) => {
                labels.insert(meta.branch_table[meta.ctrl[pc] as usize].dest_pc);
            }
            Instr::BrTable(t) => {
                let base = meta.ctrl[pc] as usize;
                for k in 0..=t.targets.len() {
                    labels.insert(meta.branch_table[base + k].dest_pc);
                }
            }
            _ => {}
        }
    }
    labels.remove(&meta.body_len);

    // Codegen versions loops only under the plan-consulting strategies.
    let versioned = matches!(strategy, BoundsStrategy::Trap | BoundsStrategy::Clamp);

    let mut out = Vec::new();
    let mut dead = false;
    let mut depth: i32 = 0;
    let mut pc = 0usize;
    while pc < body.len() {
        let instr = &body[pc];
        if labels.contains(&(pc as u32)) {
            dead = false;
        }
        if !dead && versioned {
            if let Some(h) = plan.and_then(|p| p.hoist_at(pc as u32)) {
                // Fast copy, then slow copy — both copies end with the
                // same liveness (identical instruction ranges).
                let end = h.end_pc as usize;
                walk_hoisted_copy(body, pc, end, &labels, strategy, plan, h, true, &mut out);
                dead =
                    walk_hoisted_copy(body, pc, end, &labels, strategy, plan, h, false, &mut out);
                // The range balances its own Loop/End pair; depth is
                // unchanged across it.
                pc = end + 1;
                continue;
            }
        }
        if dead {
            match instr {
                Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => depth += 1,
                Instr::End => {
                    depth -= 1;
                    if depth < 0 {
                        return out;
                    }
                }
                _ => {}
            }
            pc += 1;
            continue;
        }
        match instr {
            Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => depth += 1,
            Instr::End => {
                depth -= 1;
                if depth < 0 {
                    return out;
                }
            }
            Instr::Unreachable | Instr::Else | Instr::Br(_) | Instr::BrTable(_) | Instr::Return => {
                dead = true;
            }
            _ => {
                if let Some(acc) = instr.mem_access() {
                    let mut kind = site_kind(strategy, plan, pc);
                    if kind == CheckKind::ElideHoisted {
                        // Reachable only when the loop header itself was
                        // dead but a label revived its interior: codegen
                        // then emits the body once, with the full check.
                        kind = CheckKind::Emit;
                    }
                    out.push(ExpectedSite {
                        pc,
                        acc,
                        kind,
                        hoist: None,
                        fused: None,
                    });
                }
            }
        }
        pc += 1;
    }
    out
}
