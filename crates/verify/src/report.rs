//! Verification findings and per-function reports.

use std::fmt;

/// What a finding is about. Every variant describes a way the emitted code
/// could violate (or could no longer be proven to uphold) the linear-memory
/// sandbox.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FindingKind {
    /// The code failed to decode as the JIT's instruction vocabulary.
    Decode {
        /// Decoder error text.
        reason: String,
    },
    /// A branch rel32 does not land on an instruction boundary inside the
    /// function.
    BadBranchTarget {
        /// Byte offset the branch resolves to.
        target: i64,
    },
    /// An instruction writes a register the JIT reserves (`r14` = memory
    /// base, `r15` = vmctx, or `rbp` outside the frame idiom).
    WritesReservedReg {
        /// Register name.
        reg: &'static str,
    },
    /// A store targets the vmctx block (`[r15 + ..]`), which function
    /// bodies never write (it holds `mem_size` — the bound every trap
    /// check compares against).
    WritesVmCtx,
    /// The abstract interpretation failed to reach a fixpoint within the
    /// iteration budget.
    NoConvergence,
    /// The machine code performs a different number of linear-memory
    /// accesses than the wasm body implies.
    AccessCountMismatch {
        /// Sites implied by the wasm body (in codegen order).
        expected: usize,
        /// `r14`-based operands found in the machine code.
        found: usize,
    },
    /// An access operand has the wrong shape for its wasm site (width,
    /// scale, displacement, or load/store direction).
    AccessShape {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A reachable access with no dominating guard, clamp, or static proof
    /// covering it.
    UnguardedAccess {
        /// Why no proof applies.
        detail: String,
    },
    /// A guard-region access whose worst-case effective address exceeds
    /// the reservation headroom.
    OffsetExceedsHeadroom {
        /// Worst-case `index + disp + size`.
        max_ea: u64,
        /// Reservation size in bytes.
        reserve: u64,
    },
    /// The plan marks the site statically out of bounds, so the JIT must
    /// have routed control to the trap stub — yet the access is reachable.
    StaticOobReachable,
    /// A plan-elided check whose proof no longer re-checks.
    BadElisionProof {
        /// Which obligation failed.
        detail: String,
    },
}

/// One verifier finding, attributed to a defined function and a byte
/// offset into its emitted code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Defined-function index (import-relative) the finding is in.
    pub func: usize,
    /// Byte offset into the function's code where the problem is anchored.
    pub offset: usize,
    /// What is wrong.
    pub kind: FindingKind,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "func {} at +{:#x}: ", self.func, self.offset)?;
        match &self.kind {
            FindingKind::Decode { reason } => write!(f, "undecodable code: {reason}"),
            FindingKind::BadBranchTarget { target } => {
                write!(f, "branch target {target:#x} is not an instruction start")
            }
            FindingKind::WritesReservedReg { reg } => {
                write!(f, "writes reserved register {reg}")
            }
            FindingKind::WritesVmCtx => write!(f, "stores into the vmctx block"),
            FindingKind::NoConvergence => write!(f, "abstract interpretation did not converge"),
            FindingKind::AccessCountMismatch { expected, found } => {
                write!(
                    f,
                    "expected {expected} linear-memory accesses, found {found}"
                )
            }
            FindingKind::AccessShape { detail } => write!(f, "access shape mismatch: {detail}"),
            FindingKind::UnguardedAccess { detail } => {
                write!(f, "unproven linear-memory access: {detail}")
            }
            FindingKind::OffsetExceedsHeadroom { max_ea, reserve } => write!(
                f,
                "worst-case effective address {max_ea:#x} exceeds the {reserve:#x}-byte reservation"
            ),
            FindingKind::StaticOobReachable => {
                write!(f, "statically-OOB site is reachable in the machine code")
            }
            FindingKind::BadElisionProof { detail } => {
                write!(f, "elision proof does not re-check: {detail}")
            }
        }
    }
}

/// Verification result for one compiled function.
#[derive(Debug, Clone, Default)]
pub struct FuncReport {
    /// Linear-memory access sites examined.
    pub sites_checked: u64,
    /// Sites proven safe by a guard executed at the site (or by the guard
    /// region / a static bound).
    pub proven_guarded: u64,
    /// Sites proven safe by an *earlier* check (plan elision or the
    /// peephole), with the proof re-checked.
    pub proven_elided: u64,
    /// Fast-loop-body sites proven safe by a loop-preheader guard whose
    /// machine fact dominates the access (mirrors `jit.checks.hoisted`).
    pub proven_hoisted: u64,
    /// Sites the IR dataflow pass elided, each re-proven from a dominating
    /// machine-level guard fact — never from the pass's own claim (mirrors
    /// `jit.checks.gvn_elided`).
    pub proven_gvn: u64,
    /// Fused compare-and-trap sites proven exact against the limit-table
    /// extent the verifier recomputed (mirrors `jit.checks.fused`).
    pub proven_fused: u64,
    /// Everything that could not be proven.
    pub findings: Vec<Finding>,
}

impl FuncReport {
    /// Fold another report into this one.
    pub fn merge(&mut self, other: FuncReport) {
        self.sites_checked += other.sites_checked;
        self.proven_guarded += other.proven_guarded;
        self.proven_elided += other.proven_elided;
        self.proven_hoisted += other.proven_hoisted;
        self.proven_gvn += other.proven_gvn;
        self.proven_fused += other.proven_fused;
        self.findings.extend(other.findings);
    }
}
