//! The x86-64 instruction vocabulary of the JIT, as data.
//!
//! `lb-jit`'s assembler (`crates/jit/src/asm.rs`) is a set of *emitter
//! methods*; this module is the same vocabulary as an *instruction type*
//! plus an independent re-encoder. The decoder ([`crate::decode`]) maps
//! bytes to [`Inst`]; [`encode`] maps [`Inst`] back to bytes. The pair is
//! round-trippable on everything the JIT emits: `encode(decode(bytes)) ==
//! bytes`, which the decoder round-trip test in `lb-jit` asserts for every
//! public emitter.
//!
//! The types deliberately do not depend on `lb-jit` (the dependency runs
//! the other way: the JIT calls into the verifier as a post-codegen pass),
//! so register/memory/condition types are redeclared here with identical
//! encodings.

/// A general-purpose register (hardware number 0–15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

#[allow(missing_docs)]
impl Reg {
    pub const RAX: Reg = Reg(0);
    pub const RCX: Reg = Reg(1);
    pub const RDX: Reg = Reg(2);
    pub const RBX: Reg = Reg(3);
    pub const RSP: Reg = Reg(4);
    pub const RBP: Reg = Reg(5);
    pub const RSI: Reg = Reg(6);
    pub const RDI: Reg = Reg(7);
    pub const R8: Reg = Reg(8);
    pub const R9: Reg = Reg(9);
    pub const R10: Reg = Reg(10);
    pub const R11: Reg = Reg(11);
    pub const R12: Reg = Reg(12);
    pub const R13: Reg = Reg(13);
    pub const R14: Reg = Reg(14);
    pub const R15: Reg = Reg(15);

    pub(crate) fn low(self) -> u8 {
        self.0 & 7
    }

    pub(crate) fn hi(self) -> bool {
        self.0 >= 8
    }
}

/// An SSE register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xmm(pub u8);

impl Xmm {
    pub(crate) fn low(self) -> u8 {
        self.0 & 7
    }

    pub(crate) fn hi(self) -> bool {
        self.0 >= 8
    }
}

/// A memory operand `[base + index*scale + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mem {
    /// Base register.
    pub base: Reg,
    /// Optional `(index, scale)`; scale ∈ {1, 2, 4, 8}.
    pub index: Option<(Reg, u8)>,
    /// Signed 32-bit displacement.
    pub disp: i32,
}

impl Mem {
    /// `[base + disp]`.
    pub fn base(base: Reg, disp: i32) -> Mem {
        Mem {
            base,
            index: None,
            disp,
        }
    }
}

/// Condition codes (the `cc` nibble of Jcc/SETcc/CMOVcc).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Cc {
    O = 0x0,
    No = 0x1,
    B = 0x2,
    Ae = 0x3,
    E = 0x4,
    Ne = 0x5,
    Be = 0x6,
    A = 0x7,
    S = 0x8,
    Ns = 0x9,
    P = 0xA,
    Np = 0xB,
    L = 0xC,
    Ge = 0xD,
    Le = 0xE,
    G = 0xF,
}

impl Cc {
    /// The condition for a `cc` nibble value.
    pub fn from_nibble(n: u8) -> Cc {
        use Cc::*;
        match n & 0xF {
            0x0 => O,
            0x1 => No,
            0x2 => B,
            0x3 => Ae,
            0x4 => E,
            0x5 => Ne,
            0x6 => Be,
            0x7 => A,
            0x8 => S,
            0x9 => Ns,
            0xA => P,
            0xB => Np,
            0xC => L,
            0xD => Ge,
            0xE => Le,
            _ => G,
        }
    }
}

/// Operand width for integer operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum W {
    /// 32-bit (upper half zeroed by the CPU).
    W32,
    /// 64-bit.
    W64,
}

/// Two-register ALU opcodes (the `op` byte of the JIT's `alu_rr` family).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AluRr {
    Add = 0x01,
    Sub = 0x29,
    And = 0x21,
    Or = 0x09,
    Xor = 0x31,
    Cmp = 0x39,
    Test = 0x85,
}

/// Register-immediate ALU opcodes (the ModRM extension of `alu_ri`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AluRi {
    Add = 0,
    And = 4,
    Sub = 5,
    Cmp = 7,
}

/// Shift/rotate opcodes (the ModRM extension of `shift_cl`/`shift_imm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ShiftOp {
    Rol = 0,
    Ror = 1,
    Shl = 4,
    Shr = 5,
    Sar = 7,
}

/// `F3 0F ..` bit-count opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BitCnt {
    Popcnt = 0xB8,
    Tzcnt = 0xBC,
    Lzcnt = 0xBD,
}

/// One decoded instruction: exactly the shapes `lb-jit`'s `Asm` can emit,
/// one variant per emitter (families that share an emitter share a
/// variant). Branch displacements are kept as raw `rel32` values relative
/// to the *end* of the instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Inst {
    /// `mov r32, imm32` (zero-extends; also `mov_ri64` with a small value).
    MovRi32 {
        d: Reg,
        v: i32,
    },
    /// `mov r/m64, imm32` sign-extended (`REX.W C7 /0`).
    MovRi64Sx {
        d: Reg,
        v: i32,
    },
    /// `mov qword [m], imm32` sign-extended (`REX.W C7 /0` mem form).
    MovMi {
        m: Mem,
        v: i32,
    },
    /// `movabs r64, imm64`.
    MovAbs {
        d: Reg,
        v: i64,
    },
    MovRr {
        w: W,
        d: Reg,
        s: Reg,
    },
    MovRm {
        w: W,
        d: Reg,
        m: Mem,
    },
    MovMr {
        w: W,
        m: Mem,
        s: Reg,
    },
    MovMr8 {
        m: Mem,
        s: Reg,
    },
    MovMr16 {
        m: Mem,
        s: Reg,
    },
    Movzx8 {
        d: Reg,
        m: Mem,
    },
    Movzx16 {
        d: Reg,
        m: Mem,
    },
    Movsx8 {
        w: W,
        d: Reg,
        m: Mem,
    },
    Movsx16 {
        w: W,
        d: Reg,
        m: Mem,
    },
    MovsxdM {
        d: Reg,
        m: Mem,
    },
    MovsxdR {
        d: Reg,
        s: Reg,
    },
    AluRr {
        w: W,
        op: AluRr,
        d: Reg,
        s: Reg,
    },
    /// `op d, imm8` (sign-extended) or `op d, imm32`; `imm8` records which
    /// encoding was used so re-encoding is bit-identical.
    AluRi {
        w: W,
        op: AluRi,
        d: Reg,
        v: i32,
    },
    CmpRm {
        w: W,
        d: Reg,
        m: Mem,
    },
    ImulRr {
        w: W,
        d: Reg,
        s: Reg,
    },
    Neg {
        w: W,
        d: Reg,
    },
    CdqCqo {
        w: W,
    },
    Idiv {
        w: W,
        s: Reg,
    },
    Div {
        w: W,
        s: Reg,
    },
    ShiftCl {
        w: W,
        op: ShiftOp,
        d: Reg,
    },
    ShiftImm {
        w: W,
        op: ShiftOp,
        d: Reg,
        v: u8,
    },
    Lea {
        w: W,
        d: Reg,
        m: Mem,
    },
    BitCnt {
        w: W,
        op: BitCnt,
        d: Reg,
        s: Reg,
    },
    Setcc {
        cc: Cc,
        d: Reg,
    },
    Cmov {
        w: W,
        cc: Cc,
        d: Reg,
        s: Reg,
    },
    Jcc {
        cc: Cc,
        rel: i32,
    },
    Jmp {
        rel: i32,
    },
    CallR {
        r: Reg,
    },
    CallM {
        m: Mem,
    },
    Ret,
    Push {
        r: Reg,
    },
    Pop {
        r: Reg,
    },
    /// `ud2` + trap-code payload byte (read by the signal handler).
    Ud2Trap {
        code: u8,
    },
    Nop,
    Fload {
        double: bool,
        d: Xmm,
        m: Mem,
    },
    Fstore {
        double: bool,
        m: Mem,
        s: Xmm,
    },
    Fmov {
        d: Xmm,
        s: Xmm,
    },
    /// addsd/subsd/mulsd/divsd/sqrtsd (and the ss forms): op ∈
    /// {0x58, 0x5C, 0x59, 0x5E, 0x51}.
    Farith {
        double: bool,
        op: u8,
        d: Xmm,
        s: Xmm,
    },
    Ucomis {
        double: bool,
        a: Xmm,
        b: Xmm,
    },
    CvttF2i {
        double: bool,
        w: W,
        d: Reg,
        s: Xmm,
    },
    CvtI2f {
        double: bool,
        w: W,
        d: Xmm,
        s: Reg,
    },
    CvtD2s {
        d: Xmm,
        s: Xmm,
    },
    CvtS2d {
        d: Xmm,
        s: Xmm,
    },
    MovqXr {
        w: W,
        d: Xmm,
        s: Reg,
    },
    MovqRx {
        w: W,
        d: Reg,
        s: Xmm,
    },
    Rounds {
        double: bool,
        d: Xmm,
        s: Xmm,
        mode: u8,
    },
    Pxor {
        d: Xmm,
        s: Xmm,
    },
    /// andpd/andnpd/orpd/xorpd: op ∈ {0x54, 0x55, 0x56, 0x57}.
    Fbit {
        op: u8,
        d: Xmm,
        s: Xmm,
    },
}

// ── independent re-encoder ───────────────────────────────────────────────
//
// Mirrors the encoding rules of `crates/jit/src/asm.rs` byte for byte, but
// is written against the `Inst` type so the decoder can be validated
// without a dependency on the JIT.

struct Enc {
    out: Vec<u8>,
}

impl Enc {
    fn b(&mut self, byte: u8) {
        self.out.push(byte);
    }

    fn bytes(&mut self, bs: &[u8]) {
        self.out.extend_from_slice(bs);
    }

    fn i32_(&mut self, v: i32) {
        self.bytes(&v.to_le_bytes());
    }

    fn rex(&mut self, w: bool, r: bool, x: bool, b: bool, force: bool) {
        let v = 0x40 | (u8::from(w) << 3) | (u8::from(r) << 2) | (u8::from(x) << 1) | u8::from(b);
        if v != 0x40 || force {
            self.b(v);
        }
    }

    fn modrm(&mut self, mode: u8, reg: u8, rm: u8) {
        self.b((mode << 6) | (reg << 3) | rm);
    }

    fn mem_operand(&mut self, reg_field: u8, m: Mem) {
        let need_sib = m.index.is_some() || m.base.low() == 4;
        let mode = if m.disp == 0 && m.base.low() != 5 {
            0u8
        } else if i8::try_from(m.disp).is_ok() {
            1u8
        } else {
            2u8
        };
        if need_sib {
            self.modrm(mode, reg_field, 4);
            let (idx, scale) = match m.index {
                Some((r, s)) => {
                    let ss = match s {
                        1 => 0u8,
                        2 => 1,
                        4 => 2,
                        8 => 3,
                        _ => 0,
                    };
                    (r.low(), ss)
                }
                None => (4u8, 0u8),
            };
            self.b((scale << 6) | (idx << 3) | m.base.low());
        } else {
            self.modrm(mode, reg_field, m.base.low());
        }
        if mode == 1 {
            self.b(m.disp as i8 as u8);
        } else if mode == 2 {
            self.i32_(m.disp);
        }
    }

    fn rex_mem(&mut self, w: bool, reg_hi: bool, m: Mem, force: bool) {
        let x = m.index.map(|(r, _)| r.hi()).unwrap_or(false);
        self.rex(w, reg_hi, x, m.base.hi(), force);
    }

    fn sse_rr(&mut self, prefix: Option<u8>, op: &[u8], r: Xmm, rm: Xmm, w: bool) {
        if let Some(p) = prefix {
            self.b(p);
        }
        self.rex(w, r.hi(), false, rm.hi(), false);
        self.bytes(op);
        self.modrm(3, r.low(), rm.low());
    }

    fn sse_rm(&mut self, prefix: Option<u8>, op: &[u8], r: Xmm, m: Mem, w: bool) {
        if let Some(p) = prefix {
            self.b(p);
        }
        let x = m.index.map(|(i, _)| i.hi()).unwrap_or(false);
        self.rex(w, r.hi(), x, m.base.hi(), false);
        self.bytes(op);
        self.mem_operand(r.low(), m);
    }
}

fn w64(w: W) -> bool {
    w == W::W64
}

/// Encode one instruction, appending its bytes to `out`. Branch relatives
/// are emitted as stored in the variant.
pub fn encode(inst: &Inst, out: &mut Vec<u8>) {
    let mut e = Enc {
        out: std::mem::take(out),
    };
    match *inst {
        Inst::MovRi32 { d, v } => {
            e.rex(false, false, false, d.hi(), false);
            e.b(0xB8 + d.low());
            e.i32_(v);
        }
        Inst::MovRi64Sx { d, v } => {
            e.rex(true, false, false, d.hi(), false);
            e.b(0xC7);
            e.modrm(3, 0, d.low());
            e.i32_(v);
        }
        Inst::MovMi { m, v } => {
            e.rex_mem(true, false, m, false);
            e.b(0xC7);
            e.mem_operand(0, m);
            e.i32_(v);
        }
        Inst::MovAbs { d, v } => {
            e.rex(true, false, false, d.hi(), false);
            e.b(0xB8 + d.low());
            e.bytes(&v.to_le_bytes());
        }
        Inst::MovRr { w, d, s } => {
            e.rex(w64(w), s.hi(), false, d.hi(), false);
            e.b(0x89);
            e.modrm(3, s.low(), d.low());
        }
        Inst::MovRm { w, d, m } => {
            e.rex_mem(w64(w), d.hi(), m, false);
            e.b(0x8B);
            e.mem_operand(d.low(), m);
        }
        Inst::MovMr { w, m, s } => {
            e.rex_mem(w64(w), s.hi(), m, false);
            e.b(0x89);
            e.mem_operand(s.low(), m);
        }
        Inst::MovMr8 { m, s } => {
            let force = s.low() >= 4;
            e.rex_mem(false, s.hi(), m, force);
            e.b(0x88);
            e.mem_operand(s.low(), m);
        }
        Inst::MovMr16 { m, s } => {
            e.b(0x66);
            e.rex_mem(false, s.hi(), m, false);
            e.b(0x89);
            e.mem_operand(s.low(), m);
        }
        Inst::Movzx8 { d, m } => {
            e.rex_mem(false, d.hi(), m, false);
            e.bytes(&[0x0F, 0xB6]);
            e.mem_operand(d.low(), m);
        }
        Inst::Movzx16 { d, m } => {
            e.rex_mem(false, d.hi(), m, false);
            e.bytes(&[0x0F, 0xB7]);
            e.mem_operand(d.low(), m);
        }
        Inst::Movsx8 { w, d, m } => {
            e.rex_mem(w64(w), d.hi(), m, false);
            e.bytes(&[0x0F, 0xBE]);
            e.mem_operand(d.low(), m);
        }
        Inst::Movsx16 { w, d, m } => {
            e.rex_mem(w64(w), d.hi(), m, false);
            e.bytes(&[0x0F, 0xBF]);
            e.mem_operand(d.low(), m);
        }
        Inst::MovsxdM { d, m } => {
            e.rex_mem(true, d.hi(), m, false);
            e.b(0x63);
            e.mem_operand(d.low(), m);
        }
        Inst::MovsxdR { d, s } => {
            e.rex(true, d.hi(), false, s.hi(), false);
            e.b(0x63);
            e.modrm(3, d.low(), s.low());
        }
        Inst::AluRr { w, op, d, s } => {
            e.rex(w64(w), s.hi(), false, d.hi(), false);
            e.b(op as u8);
            e.modrm(3, s.low(), d.low());
        }
        Inst::AluRi { w, op, d, v } => {
            e.rex(w64(w), false, false, d.hi(), false);
            if i8::try_from(v).is_ok() {
                e.b(0x83);
                e.modrm(3, op as u8, d.low());
                e.b(v as i8 as u8);
            } else {
                e.b(0x81);
                e.modrm(3, op as u8, d.low());
                e.i32_(v);
            }
        }
        Inst::CmpRm { w, d, m } => {
            e.rex_mem(w64(w), d.hi(), m, false);
            e.b(0x3B);
            e.mem_operand(d.low(), m);
        }
        Inst::ImulRr { w, d, s } => {
            e.rex(w64(w), d.hi(), false, s.hi(), false);
            e.bytes(&[0x0F, 0xAF]);
            e.modrm(3, d.low(), s.low());
        }
        Inst::Neg { w, d } => {
            e.rex(w64(w), false, false, d.hi(), false);
            e.b(0xF7);
            e.modrm(3, 3, d.low());
        }
        Inst::CdqCqo { w } => {
            if w == W::W64 {
                e.b(0x48);
            }
            e.b(0x99);
        }
        Inst::Idiv { w, s } => {
            e.rex(w64(w), false, false, s.hi(), false);
            e.b(0xF7);
            e.modrm(3, 7, s.low());
        }
        Inst::Div { w, s } => {
            e.rex(w64(w), false, false, s.hi(), false);
            e.b(0xF7);
            e.modrm(3, 6, s.low());
        }
        Inst::ShiftCl { w, op, d } => {
            e.rex(w64(w), false, false, d.hi(), false);
            e.b(0xD3);
            e.modrm(3, op as u8, d.low());
        }
        Inst::ShiftImm { w, op, d, v } => {
            e.rex(w64(w), false, false, d.hi(), false);
            e.b(0xC1);
            e.modrm(3, op as u8, d.low());
            e.b(v);
        }
        Inst::Lea { w, d, m } => {
            e.rex_mem(w64(w), d.hi(), m, false);
            e.b(0x8D);
            e.mem_operand(d.low(), m);
        }
        Inst::BitCnt { w, op, d, s } => {
            e.b(0xF3);
            e.rex(w64(w), d.hi(), false, s.hi(), false);
            e.bytes(&[0x0F, op as u8]);
            e.modrm(3, d.low(), s.low());
        }
        Inst::Setcc { cc, d } => {
            let force = d.low() >= 4;
            e.rex(false, false, false, d.hi(), force);
            e.bytes(&[0x0F, 0x90 + cc as u8]);
            e.modrm(3, 0, d.low());
        }
        Inst::Cmov { w, cc, d, s } => {
            e.rex(w64(w), d.hi(), false, s.hi(), false);
            e.bytes(&[0x0F, 0x40 + cc as u8]);
            e.modrm(3, d.low(), s.low());
        }
        Inst::Jcc { cc, rel } => {
            e.bytes(&[0x0F, 0x80 + cc as u8]);
            e.i32_(rel);
        }
        Inst::Jmp { rel } => {
            e.b(0xE9);
            e.i32_(rel);
        }
        Inst::CallR { r } => {
            e.rex(false, false, false, r.hi(), false);
            e.b(0xFF);
            e.modrm(3, 2, r.low());
        }
        Inst::CallM { m } => {
            e.rex_mem(false, false, m, false);
            e.b(0xFF);
            e.mem_operand(2, m);
        }
        Inst::Ret => e.b(0xC3),
        Inst::Push { r } => {
            e.rex(false, false, false, r.hi(), false);
            e.b(0x50 + r.low());
        }
        Inst::Pop { r } => {
            e.rex(false, false, false, r.hi(), false);
            e.b(0x58 + r.low());
        }
        Inst::Ud2Trap { code } => e.bytes(&[0x0F, 0x0B, code]),
        Inst::Nop => e.b(0x90),
        Inst::Fload { double, d, m } => {
            let p = if double { 0xF2 } else { 0xF3 };
            e.sse_rm(Some(p), &[0x0F, 0x10], d, m, false);
        }
        Inst::Fstore { double, m, s } => {
            let p = if double { 0xF2 } else { 0xF3 };
            e.sse_rm(Some(p), &[0x0F, 0x11], s, m, false);
        }
        Inst::Fmov { d, s } => e.sse_rr(None, &[0x0F, 0x28], d, s, false),
        Inst::Farith { double, op, d, s } => {
            let p = if double { 0xF2 } else { 0xF3 };
            e.sse_rr(Some(p), &[0x0F, op], d, s, false);
        }
        Inst::Ucomis { double, a, b } => {
            if double {
                e.sse_rr(Some(0x66), &[0x0F, 0x2E], a, b, false);
            } else {
                e.sse_rr(None, &[0x0F, 0x2E], a, b, false);
            }
        }
        Inst::CvttF2i { double, w, d, s } => {
            e.b(if double { 0xF2 } else { 0xF3 });
            e.rex(w64(w), d.hi(), false, s.hi(), false);
            e.bytes(&[0x0F, 0x2C]);
            e.modrm(3, d.low(), s.low());
        }
        Inst::CvtI2f { double, w, d, s } => {
            e.b(if double { 0xF2 } else { 0xF3 });
            e.rex(w64(w), d.hi(), false, s.hi(), false);
            e.bytes(&[0x0F, 0x2A]);
            e.modrm(3, d.low(), s.low());
        }
        Inst::CvtD2s { d, s } => e.sse_rr(Some(0xF2), &[0x0F, 0x5A], d, s, false),
        Inst::CvtS2d { d, s } => e.sse_rr(Some(0xF3), &[0x0F, 0x5A], d, s, false),
        Inst::MovqXr { w, d, s } => {
            e.b(0x66);
            e.rex(w64(w), d.hi(), false, s.hi(), false);
            e.bytes(&[0x0F, 0x6E]);
            e.modrm(3, d.low(), s.low());
        }
        Inst::MovqRx { w, d, s } => {
            e.b(0x66);
            e.rex(w64(w), s.hi(), false, d.hi(), false);
            e.bytes(&[0x0F, 0x7E]);
            e.modrm(3, s.low(), d.low());
        }
        Inst::Rounds { double, d, s, mode } => {
            e.b(0x66);
            e.rex(false, d.hi(), false, s.hi(), false);
            e.bytes(&[0x0F, 0x3A, if double { 0x0B } else { 0x0A }]);
            e.modrm(3, d.low(), s.low());
            e.b(mode);
        }
        Inst::Pxor { d, s } => e.sse_rr(Some(0x66), &[0x0F, 0xEF], d, s, false),
        Inst::Fbit { op, d, s } => e.sse_rr(Some(0x66), &[0x0F, op], d, s, false),
    }
    *out = e.out;
}

/// Encode a single instruction into a fresh byte vector.
pub fn encode_one(inst: &Inst) -> Vec<u8> {
    let mut out = Vec::new();
    encode(inst, &mut out);
    out
}
