//! Forward abstract interpretation over the decoded instruction stream.
//!
//! Reconstructs the control-flow graph from rel32 branches, runs a
//! worklist fixpoint over an abstract domain tuned to the JIT's bounds
//! idioms, and reports every `r14`-based memory operand together with what
//! the analysis can prove about its index at that point:
//!
//! * **facts** — `value + covered <= mem_size`, established by the trap
//!   guard shape `lea scratch, [addr+extent]; cmp scratch, [r15+8]; ja oob`
//!   (taking the fall-through edge of the `ja`). Facts survive calls and
//!   `memory.grow` because `mem_size` only ever increases.
//! * **clamps** — `value <= mem_size - margin`, established by the clamp
//!   shape `cmp scratch, t; cmova scratch, t` with `t = mem_size - size`.
//! * **cleanliness** — whether a value provably fits in 32 bits, which is
//!   what the 8-GiB guard-region strategies rely on. 32-bit operations
//!   zero the upper half; function arguments and call results are assumed
//!   type-correct at the ABI boundary (documented in DESIGN.md §6).
//!
//! The interpretation is deterministic: symbol identities derive from
//! instruction byte offsets, and join symbols are memoized per
//! (block, location).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::decode::decode_all;
use crate::isa::{AluRi, AluRr, Cc, Inst, Mem, Reg, ShiftOp, W};
use crate::report::{Finding, FindingKind};

/// Upper bound on fixpoint visits per block before declaring divergence.
const ITER_CAP: usize = 64;

const RSP: u8 = 4;
const RBP: u8 = 5;
const R14: u8 = 14;
const R15: u8 = 15;

/// `ctx_off::MEM_SIZE` — the committed linear-memory size in bytes.
const CTX_MEM_SIZE: i32 = 8;

/// `ctx_off::MEM_LIMITS` — base of the per-extent fused-guard limit table
/// (`mem_limits[i] = mem_size - (extent_i - 1)`, saturating).
pub(crate) const CTX_MEM_LIMITS: i32 = 64;

/// Number of fused-guard limit slots in `VmCtx` (`lb-jit`'s
/// `N_LIMIT_SLOTS`).
pub(crate) const N_LIMIT_SLOTS: usize = 8;

/// The limit-table slot a `[r15 + disp]` operand addresses, if any.
pub(crate) fn limit_slot(disp: i32) -> Option<u8> {
    let rel = disp - CTX_MEM_LIMITS;
    (rel >= 0 && rel < 8 * N_LIMIT_SLOTS as i32 && rel % 8 == 0).then_some((rel / 8) as u8)
}

// Symbol-id layout. Entry and special symbols live below `ID_INST_BASE`;
// instruction-produced symbols are `ID_INST_BASE + offset*64 + slot` where
// `slot` is the destination register (or a small tag); join symbols are
// allocated from a counter starting at `ID_JOIN_BASE` and memoized per
// (block, location) so the fixpoint converges.
const ID_ARG_BASE: u64 = 8;
const ID_REG_BASE: u64 = 32;
const ID_INST_BASE: u64 = 1024;
const ID_JOIN_BASE: u64 = 1 << 60;

/// Tag for the frame slot a host call writes its result into.
const SLOT_RESULT_TAG: u64 = 16;

fn inst_id(off: usize, slot: u64) -> u64 {
    ID_INST_BASE + (off as u64) * 64 + slot
}

/// Abstract value of a 64-bit register or frame slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AbsVal {
    /// `sym + add`, where `sym` is an unknown-but-fixed quantity. `clean`
    /// means `sym < 2^32`.
    Sym { id: u64, clean: bool, add: u64 },
    /// A compile-time constant.
    Const(u64),
    /// `<= mem_size - margin`, produced by the clamp idiom. `fresh` until
    /// the next linear-memory access consumes it.
    Clamped { margin: u64, fresh: bool },
    /// A `mem_size` snapshot minus `k` (the clamp limit register).
    MemSizeMinus { k: u64 },
}

impl AbsVal {
    /// Whether the full 64-bit value is provably `< 2^32`.
    fn clean(self) -> bool {
        match self {
            AbsVal::Sym { clean, add, .. } => clean && add == 0,
            AbsVal::Const(c) => c <= u64::from(u32::MAX),
            // Clamped and the mem_size snapshot are bounded by the 4-GiB
            // wasm memory limit.
            AbsVal::Clamped { .. } | AbsVal::MemSizeMinus { .. } => true,
        }
    }
}

/// Key for an in-bounds fact: a symbol, or the constant pool (one shared
/// entry — constants compare against `covered` directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FactKey {
    Sym(u64),
    Consts,
}

/// `key + covered <= mem_size` (for `Consts`: `covered <= mem_size`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fact {
    covered: u64,
    fresh: bool,
}

/// Flags state, tracking only the comparisons the guard idioms use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flags {
    Unknown,
    /// `cmp reg, [r15 + MEM_SIZE]` (64-bit): the left-hand value.
    CmpMemSize(AbsVal),
    /// `cmp reg, [r15 + MEM_LIMITS + 8*slot]` (64-bit): the left-hand
    /// value and the limit-table slot — the fused-guard compare.
    CmpLimit {
        lhs: AbsVal,
        slot: u8,
    },
    /// `cmp_rr` 64-bit between two registers (the clamp compare).
    CmpRR {
        l: u8,
        r: u8,
    },
}

#[derive(Debug, Clone, PartialEq)]
struct State {
    regs: [AbsVal; 16],
    /// rbp-relative frame slots. Valid only while `rbp_valid`.
    slots: BTreeMap<i32, AbsVal>,
    facts: BTreeMap<FactKey, Fact>,
    /// Hoisted-guard facts: indices into the pre-scanned guard list,
    /// established on the fall-through (pass) edge of a guard's final
    /// `ja` and never killed — the guarded bound is a comparison against
    /// `mem_size`, which only grows. Intersected at joins, so a fact here
    /// means every path ran the guard; the slow-body entry (the taken
    /// edge) never receives it.
    hfacts: BTreeSet<usize>,
    flags: Flags,
    rbp_valid: bool,
    /// `(reg, slot_disp)` when `reg` holds `lea reg, [rbp+disp]` — the
    /// host-call result protocol.
    slot_ptr: Option<(u8, i32)>,
}

/// Where a synthesized preheader guard read its loop bound from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BoundSrc {
    /// A callee-saved register (pinned local, `Full` opt).
    Reg(u8),
    /// An rbp-relative frame slot displacement (spilled local).
    Slot(i32),
}

/// A hoisted-guard sequence found by structural pre-scan: the exact
/// contiguous shape `emit_hoist_guards` produces, ending in
/// `cmp scratch, [r15+MEM_SIZE]; ja slow`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct HGuard {
    /// Where the bound was loaded from.
    pub src: BoundSrc,
    /// Whether the guard subtracted 1 (exclusive bound).
    pub strict: bool,
    /// Left shift applied to the bound.
    pub shift: u8,
    /// Constant added after the shift.
    pub addend: u64,
}

/// What the interpreter observed about one `r14`-based memory operand.
#[derive(Debug, Clone)]
pub(crate) struct SiteObs {
    /// Byte offset of the accessing instruction.
    pub off: usize,
    /// Machine shape of the access.
    pub op: MachineOp,
    /// Static displacement of the operand.
    pub disp: i32,
    /// True when the operand is `[r14 + idx*1 + disp]` (or has no index).
    pub scale_ok: bool,
    /// Whether the fixpoint reached this instruction.
    pub reachable: bool,
    /// Index-register observation (reachable sites only).
    pub idx: Option<IdxObs>,
    /// Hoisted-guard facts that dominate this access.
    pub hfacts: Vec<HGuard>,
}

/// The abstract index value at an access, with any covering proof state.
#[derive(Debug, Clone)]
pub(crate) enum IdxObs {
    /// Symbolic `sym + add`.
    Sym {
        clean: bool,
        add: u64,
        /// `(covered, fresh)` when a fact `sym + covered <= mem_size` holds.
        fact: Option<(u64, bool)>,
    },
    /// Constant index.
    Const { v: u64, fact: Option<(u64, bool)> },
    /// Clamped to `mem_size - margin`.
    Clamped { margin: u64 },
    /// A `mem_size - k` snapshot (bounded by the 4-GiB memory limit).
    MemSizeMinus,
}

/// Width/direction class of a machine memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub(crate) enum MachineOp {
    Load8Z,
    Load8S32,
    Load8S64,
    Load16Z,
    Load16S32,
    Load16S64,
    Load32,
    Load32S64,
    Load64,
    Store8,
    Store16,
    Store32,
    Store64,
    FLoad32,
    FLoad64,
    FStore32,
    FStore64,
    /// `cmp reg, [r14+..]` — reads linear memory but matches no wasm site.
    CmpM,
    /// `call [r14+..]` — never a legitimate shape.
    CallM,
}

pub(crate) struct MachineAnalysis {
    /// All `r14`-based operands, in byte order (reachable or not).
    pub sites: Vec<SiteObs>,
    /// Structural findings (decode, CFG, reserved registers, divergence).
    pub findings: Vec<Finding>,
}

/// Run the machine-side analysis of one compiled function body.
///
/// `int_params` lists the function's integer parameters in ABI order,
/// `true` for i32 (arrives zero-extended per the ABI assumption).
/// `limit_extents` is the verifier's own recomputation of the module's
/// fused-guard extent table (`dataflow::module_extents` is a pure function
/// of the module); empty when the guard-optimizing configuration is off,
/// which makes every limit-table compare an unknown flag state.
pub(crate) fn analyze(
    func: usize,
    code: &[u8],
    int_params: &[bool],
    limit_extents: &[u64],
) -> MachineAnalysis {
    let mut findings = Vec::new();
    let insts = match decode_all(code) {
        Ok(v) => v,
        Err(e) => {
            findings.push(Finding {
                func,
                offset: e.offset,
                kind: FindingKind::Decode {
                    reason: e.reason.to_string(),
                },
            });
            return MachineAnalysis {
                sites: Vec::new(),
                findings,
            };
        }
    };
    let mut ai = Absint::new(func, code.len(), insts, int_params, limit_extents);
    ai.scan_hguards();
    if let Err(f) = ai.build_cfg() {
        ai.findings.push(f);
        // Even with a broken CFG we can still enumerate raw r14 operands
        // so the caller sees the count; mark everything unreachable.
        return MachineAnalysis {
            sites: ai.raw_sites(),
            findings: ai.findings,
        };
    }
    ai.fixpoint();
    ai.finalize()
}

struct Absint {
    func: usize,
    code_len: usize,
    insts: Vec<(usize, Inst)>,
    /// Byte offset -> index into `insts`.
    by_off: HashMap<usize, usize>,
    /// Block leader offsets, ascending.
    leaders: Vec<usize>,
    /// Leader offset -> converged entry state.
    entry: HashMap<usize, State>,
    /// (block, location) -> memoized join symbol.
    join_memo: HashMap<(usize, JoinLoc), u64>,
    next_join: u64,
    findings: Vec<Finding>,
    /// Offset -> observation, filled during the final pass.
    sites: BTreeMap<usize, SiteObs>,
    entry_state: State,
    recording: bool,
    /// Pre-scanned hoisted-guard sequences, in byte order.
    hguards: Vec<HGuard>,
    /// Byte offset of a guard's final `ja` -> its `hguards` index.
    hguard_by_ja: HashMap<usize, usize>,
    /// Fused-guard extent per limit-table slot (may be shorter than
    /// `N_LIMIT_SLOTS`; out-of-range slots yield no fact).
    limit_extents: Vec<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum JoinLoc {
    Reg(u8),
    Slot(i32),
}

impl Absint {
    fn new(
        func: usize,
        code_len: usize,
        insts: Vec<(usize, Inst)>,
        int_params: &[bool],
        limit_extents: &[u64],
    ) -> Absint {
        let by_off = insts
            .iter()
            .enumerate()
            .map(|(i, &(o, _))| (o, i))
            .collect();
        // System V integer argument registers, in order.
        const INT_ARGS: [u8; 6] = [7, 6, 2, 1, 8, 9];
        let mut regs = [AbsVal::Const(0); 16];
        for (r, v) in regs.iter_mut().enumerate() {
            *v = AbsVal::Sym {
                id: ID_REG_BASE + r as u64,
                clean: false,
                add: 0,
            };
        }
        for (i, &is_i32) in int_params.iter().enumerate().take(INT_ARGS.len()) {
            regs[INT_ARGS[i] as usize] = AbsVal::Sym {
                id: ID_ARG_BASE + i as u64,
                clean: is_i32,
                add: 0,
            };
        }
        let entry_state = State {
            regs,
            slots: BTreeMap::new(),
            facts: BTreeMap::new(),
            hfacts: BTreeSet::new(),
            flags: Flags::Unknown,
            rbp_valid: false,
            slot_ptr: None,
        };
        Absint {
            func,
            code_len,
            insts,
            by_off,
            leaders: Vec::new(),
            entry: HashMap::new(),
            join_memo: HashMap::new(),
            next_join: ID_JOIN_BASE,
            findings: Vec::new(),
            sites: BTreeMap::new(),
            entry_state,
            recording: false,
            hguards: Vec::new(),
            hguard_by_ja: HashMap::new(),
            limit_extents: limit_extents.to_vec(),
        }
    }

    // ── hoisted-guard pre-scan ─────────────────────────────────────────

    /// Structurally match every synthesized preheader-guard sequence in
    /// the instruction stream. The shape is exactly what the JIT's
    /// `emit_hoist_guards` produces, contiguous and in order:
    ///
    /// ```text
    /// mov  scratch32, <bound>        ; pinned reg or rbp local slot
    /// [sub scratch, 1]               ; strict (exclusive) bound
    /// cmp  scratch, 0x7fff_ffff
    /// ja   slow
    /// [shl scratch, k]
    /// [add scratch, addend]
    /// cmp  scratch, [r15 + MEM_SIZE]
    /// ja   slow                      ; same target as the first ja
    /// ```
    ///
    /// The fall-through of the final `ja` establishes the guard fact.
    fn scan_hguards(&mut self) {
        let mut i = 0;
        while i < self.insts.len() {
            if let Some((g, ja_off, next)) = self.match_hguard(i) {
                let gi = self.hguards.len();
                self.hguards.push(g);
                self.hguard_by_ja.insert(ja_off, gi);
                i = next;
            } else {
                i += 1;
            }
        }
    }

    fn match_hguard(&self, start: usize) -> Option<(HGuard, usize, usize)> {
        const SCRATCH: u8 = 11;
        use Inst::*;
        let get = |i: usize| -> Option<(usize, Inst)> { self.insts.get(i).copied() };
        let mut i = start;
        let src = match get(i)?.1 {
            MovRr { w: W::W32, d, s } if d.0 == SCRATCH => BoundSrc::Reg(s.0),
            MovRm { w: W::W32, d, m } if d.0 == SCRATCH && m.base.0 == RBP && m.index.is_none() => {
                BoundSrc::Slot(m.disp)
            }
            _ => return None,
        };
        i += 1;
        let mut strict = false;
        if let Some((
            _,
            AluRi {
                w: W::W64,
                op: self::AluRi::Sub,
                d,
                v: 1,
            },
        )) = get(i)
        {
            if d.0 == SCRATCH {
                strict = true;
                i += 1;
            }
        }
        match get(i)? {
            (
                _,
                AluRi {
                    w: W::W64,
                    op: self::AluRi::Cmp,
                    d,
                    v: 0x7FFF_FFFF,
                },
            ) if d.0 == SCRATCH => i += 1,
            _ => return None,
        }
        let t1 = match get(i)? {
            (_, Jcc { cc: Cc::A, rel }) => self.branch_target(i, rel).ok()?,
            _ => return None,
        };
        i += 1;
        let mut shift = 0u8;
        if let Some((
            _,
            ShiftImm {
                w: W::W64,
                op: ShiftOp::Shl,
                d,
                v,
            },
        )) = get(i)
        {
            if d.0 == SCRATCH {
                shift = v;
                i += 1;
            }
        }
        let mut addend = 0u64;
        if let Some((
            _,
            AluRi {
                w: W::W64,
                op: self::AluRi::Add,
                d,
                v,
            },
        )) = get(i)
        {
            if d.0 == SCRATCH && v >= 0 {
                addend = v as u64;
                i += 1;
            }
        }
        match get(i)? {
            (_, CmpRm { w: W::W64, d, m })
                if d.0 == SCRATCH && m == Mem::base(Reg(R15), CTX_MEM_SIZE) => {}
            _ => return None,
        }
        let (ja_off, rel2) = match get(i + 1)? {
            (off, Jcc { cc: Cc::A, rel }) => (off, rel),
            _ => return None,
        };
        if self.branch_target(i + 1, rel2).ok()? != t1 {
            return None;
        }
        Some((
            HGuard {
                src,
                strict,
                shift,
                addend,
            },
            ja_off,
            i + 2,
        ))
    }

    fn inst_end(&self, i: usize) -> usize {
        self.insts.get(i + 1).map_or(self.code_len, |&(o, _)| o)
    }

    fn branch_target(&self, i: usize, rel: i32) -> Result<usize, Finding> {
        let t = self.inst_end(i) as i64 + i64::from(rel);
        if t < 0 || t >= self.code_len as i64 || !self.by_off.contains_key(&(t as usize)) {
            return Err(Finding {
                func: self.func,
                offset: self.insts[i].0,
                kind: FindingKind::BadBranchTarget { target: t },
            });
        }
        Ok(t as usize)
    }

    fn build_cfg(&mut self) -> Result<(), Finding> {
        let mut leaders: BTreeSet<usize> = BTreeSet::new();
        leaders.insert(0);
        for i in 0..self.insts.len() {
            match self.insts[i].1 {
                Inst::Jcc { rel, .. } => {
                    leaders.insert(self.branch_target(i, rel)?);
                    if self.inst_end(i) < self.code_len {
                        leaders.insert(self.inst_end(i));
                    }
                }
                Inst::Jmp { rel } => {
                    leaders.insert(self.branch_target(i, rel)?);
                    if self.inst_end(i) < self.code_len {
                        leaders.insert(self.inst_end(i));
                    }
                }
                Inst::Ret | Inst::Ud2Trap { .. } => {
                    if self.inst_end(i) < self.code_len {
                        leaders.insert(self.inst_end(i));
                    }
                }
                _ => {}
            }
        }
        self.leaders = leaders.into_iter().collect();
        Ok(())
    }

    /// Instruction indices of a block starting at leader offset `b`.
    fn block_insts(&self, b: usize) -> std::ops::Range<usize> {
        let start = self.by_off[&b];
        let next = self
            .leaders
            .iter()
            .find(|&&l| l > b)
            .copied()
            .unwrap_or(self.code_len);
        let end = (start..self.insts.len())
            .find(|&i| self.insts[i].0 >= next)
            .unwrap_or(self.insts.len());
        start..end
    }

    fn fixpoint(&mut self) {
        let mut work = vec![0usize];
        self.entry.insert(0, self.entry_state.clone());
        let mut visits: HashMap<usize, usize> = HashMap::new();
        while let Some(b) = work.pop() {
            let v = visits.entry(b).or_insert(0);
            *v += 1;
            if *v > ITER_CAP {
                self.findings.push(Finding {
                    func: self.func,
                    offset: b,
                    kind: FindingKind::NoConvergence,
                });
                return;
            }
            let mut st = self.entry[&b].clone();
            let range = self.block_insts(b);
            let mut out: Vec<(usize, State)> = Vec::new();
            let mut fell_through = true;
            for i in range.clone() {
                let (off, inst) = self.insts[i];
                match inst {
                    Inst::Jcc { cc, rel } => {
                        let t = self.branch_target(i, rel).expect("validated in build_cfg");
                        let mut fall = st.clone();
                        // The trap-guard fall-through: `ja oob` not taken
                        // means `lhs <= mem_size`.
                        if cc == Cc::A {
                            if let Flags::CmpMemSize(lhs) = st.flags {
                                add_fact(&mut fall, lhs);
                            }
                            // Hoisted preheader guard: the pass edge of
                            // its final `ja` proves the whole loop bound.
                            if let Some(&gi) = self.hguard_by_ja.get(&off) {
                                fall.hfacts.insert(gi);
                            }
                        }
                        // The fused-guard fall-through: `jae oob` not taken
                        // means `lhs < mem_size - (extent - 1)`, i.e.
                        // `lhs + extent <= mem_size`. Only `Ae` is sound
                        // here — an `A` fall-through of the same compare is
                        // off by one.
                        if cc == Cc::Ae {
                            if let Flags::CmpLimit { lhs, slot } = st.flags {
                                if let Some(&extent) = self.limit_extents.get(usize::from(slot)) {
                                    add_limit_fact(&mut fall, lhs, extent);
                                }
                            }
                        }
                        out.push((t, st.clone()));
                        out.push((self.inst_end(i), fall));
                        fell_through = false;
                        break;
                    }
                    Inst::Jmp { rel } => {
                        let t = self.branch_target(i, rel).expect("validated in build_cfg");
                        out.push((t, st.clone()));
                        fell_through = false;
                        break;
                    }
                    Inst::Ret | Inst::Ud2Trap { .. } => {
                        fell_through = false;
                        break;
                    }
                    _ => self.transfer(&mut st, off, &inst),
                }
            }
            if fell_through {
                let next = range.end;
                if next < self.insts.len() {
                    out.push((self.insts[next].0, st.clone()));
                }
            }
            for (succ, incoming) in out {
                if succ >= self.code_len {
                    continue;
                }
                match self.entry.get(&succ).cloned() {
                    None => {
                        self.entry.insert(succ, incoming);
                        work.push(succ);
                    }
                    Some(old) => {
                        let joined = self.join_states(succ, &old, &incoming);
                        if joined != old {
                            self.entry.insert(succ, joined);
                            work.push(succ);
                        }
                    }
                }
            }
        }
    }

    /// Replay every reachable block once against its converged entry state,
    /// recording access observations and structural findings, then sweep
    /// for unreachable `r14` operands.
    fn finalize(mut self) -> MachineAnalysis {
        self.recording = true;
        let leaders = self.leaders.clone();
        for &b in &leaders {
            let Some(entry) = self.entry.get(&b).cloned() else {
                continue;
            };
            let mut st = entry;
            for i in self.block_insts(b) {
                let (off, inst) = self.insts[i];
                match inst {
                    Inst::Jcc { .. } | Inst::Jmp { .. } | Inst::Ret | Inst::Ud2Trap { .. } => break,
                    _ => self.transfer(&mut st, off, &inst),
                }
            }
        }
        // Unreachable r14 operands still count as sites (the StaticOob
        // idiom relies on this).
        for &(off, ref inst) in &self.insts.clone() {
            if self.sites.contains_key(&off) {
                continue;
            }
            if let Some((op, m)) = linear_operand(inst) {
                self.sites.insert(
                    off,
                    SiteObs {
                        off,
                        op,
                        disp: m.disp,
                        scale_ok: m.index.map_or(true, |(_, s)| s == 1),
                        reachable: false,
                        idx: None,
                        hfacts: Vec::new(),
                    },
                );
            }
        }
        MachineAnalysis {
            sites: self.sites.into_values().collect(),
            findings: self.findings,
        }
    }

    /// Raw operand sweep used when the CFG itself is broken.
    fn raw_sites(&self) -> Vec<SiteObs> {
        let mut v = Vec::new();
        for &(off, ref inst) in &self.insts {
            if let Some((op, m)) = linear_operand(inst) {
                v.push(SiteObs {
                    off,
                    op,
                    disp: m.disp,
                    scale_ok: m.index.map_or(true, |(_, s)| s == 1),
                    reachable: false,
                    idx: None,
                    hfacts: Vec::new(),
                });
            }
        }
        v
    }

    // ── joins ──────────────────────────────────────────────────────────

    fn join_val(&mut self, block: usize, loc: JoinLoc, a: AbsVal, b: AbsVal) -> AbsVal {
        if a == b {
            return a;
        }
        match (a, b) {
            (
                AbsVal::Clamped {
                    margin: m1,
                    fresh: f1,
                },
                AbsVal::Clamped {
                    margin: m2,
                    fresh: f2,
                },
            ) => AbsVal::Clamped {
                margin: m1.min(m2),
                fresh: f1 && f2,
            },
            _ => {
                let clean = a.clean() && b.clean();
                // If one side already is this location's join symbol, keep
                // it (monotone: clean only decays).
                let id = match self.join_memo.get(&(block, loc)) {
                    Some(&id) => id,
                    None => {
                        let id = self.next_join;
                        self.next_join += 1;
                        self.join_memo.insert((block, loc), id);
                        id
                    }
                };
                let prior_clean = match (a, b) {
                    (
                        AbsVal::Sym {
                            id: ia, clean: ca, ..
                        },
                        _,
                    ) if ia == id => ca,
                    (
                        _,
                        AbsVal::Sym {
                            id: ib, clean: cb, ..
                        },
                    ) if ib == id => cb,
                    _ => true,
                };
                AbsVal::Sym {
                    id,
                    clean: clean && prior_clean,
                    add: 0,
                }
            }
        }
    }

    fn join_states(&mut self, block: usize, a: &State, b: &State) -> State {
        let mut regs = [AbsVal::Const(0); 16];
        for r in 0..16 {
            regs[r] = self.join_val(block, JoinLoc::Reg(r as u8), a.regs[r], b.regs[r]);
        }
        let mut slots = BTreeMap::new();
        for (&d, &av) in &a.slots {
            if let Some(&bv) = b.slots.get(&d) {
                slots.insert(d, self.join_val(block, JoinLoc::Slot(d), av, bv));
            }
        }
        let mut facts = BTreeMap::new();
        for (&k, &af) in &a.facts {
            if let Some(&bf) = b.facts.get(&k) {
                facts.insert(
                    k,
                    Fact {
                        covered: af.covered.min(bf.covered),
                        fresh: af.fresh && bf.fresh,
                    },
                );
            }
        }
        State {
            regs,
            slots,
            facts,
            hfacts: a.hfacts.intersection(&b.hfacts).copied().collect(),
            flags: if a.flags == b.flags {
                a.flags
            } else {
                Flags::Unknown
            },
            rbp_valid: a.rbp_valid && b.rbp_valid,
            slot_ptr: if a.slot_ptr == b.slot_ptr {
                a.slot_ptr
            } else {
                None
            },
        }
    }

    // ── transfer function ──────────────────────────────────────────────

    fn fresh(&self, off: usize, slot: u64, clean: bool) -> AbsVal {
        AbsVal::Sym {
            id: inst_id(off, slot),
            clean,
            add: 0,
        }
    }

    fn set_reg(&mut self, st: &mut State, off: usize, d: Reg, v: AbsVal) {
        match d.0 {
            R14 | R15 => {
                if self.recording {
                    self.findings.push(Finding {
                        func: self.func,
                        offset: off,
                        kind: FindingKind::WritesReservedReg {
                            reg: if d.0 == R14 { "r14" } else { "r15" },
                        },
                    });
                }
            }
            RBP => {
                // Callers handle the allowed `mov rbp, rsp` / `pop rbp`
                // idioms before reaching here.
                if self.recording {
                    self.findings.push(Finding {
                        func: self.func,
                        offset: off,
                        kind: FindingKind::WritesReservedReg { reg: "rbp" },
                    });
                }
            }
            _ => {
                st.regs[d.0 as usize] = v;
                if st.slot_ptr.is_some_and(|(r, _)| r == d.0) {
                    st.slot_ptr = None;
                }
            }
        }
    }

    /// Truncate a value to its low 32 bits (what a 32-bit destination
    /// write does).
    fn low32(&self, st: &State, off: usize, d: Reg, v: AbsVal) -> AbsVal {
        let _ = st;
        match v {
            AbsVal::Const(c) => AbsVal::Const(c & 0xFFFF_FFFF),
            // A clean symbol is already < 2^32; truncation is identity.
            AbsVal::Sym {
                clean: true,
                add: 0,
                ..
            } => v,
            AbsVal::Clamped { .. } | AbsVal::MemSizeMinus { .. } => v,
            _ => self.fresh(off, u64::from(d.0), true),
        }
    }

    fn mem_class(st: &State, m: Mem) -> MemClass {
        if m.base.0 == R14 {
            MemClass::Linear
        } else if m.base.0 == R15 && m.index.is_none() {
            MemClass::Ctx(m.disp)
        } else if m.base.0 == RBP && st.rbp_valid && m.index.is_none() {
            MemClass::Slot(m.disp)
        } else {
            MemClass::Other
        }
    }

    fn record_access(&mut self, st: &mut State, off: usize, op: MachineOp, m: Mem) {
        if self.recording {
            let idx = match m.index {
                None => IdxObs::Const {
                    v: 0,
                    fact: st.facts.get(&FactKey::Consts).map(|f| (f.covered, f.fresh)),
                },
                Some((r, _)) => match st.regs[r.0 as usize] {
                    AbsVal::Sym { id, clean, add } => IdxObs::Sym {
                        clean,
                        add,
                        fact: st
                            .facts
                            .get(&FactKey::Sym(id))
                            .map(|f| (f.covered, f.fresh)),
                    },
                    AbsVal::Const(v) => IdxObs::Const {
                        v,
                        fact: st.facts.get(&FactKey::Consts).map(|f| (f.covered, f.fresh)),
                    },
                    AbsVal::Clamped { margin, .. } => IdxObs::Clamped { margin },
                    AbsVal::MemSizeMinus { .. } => IdxObs::MemSizeMinus,
                },
            };
            self.sites.insert(
                off,
                SiteObs {
                    off,
                    op,
                    disp: m.disp,
                    scale_ok: m.index.map_or(true, |(_, s)| s == 1),
                    reachable: true,
                    idx: Some(idx),
                    hfacts: st.hfacts.iter().map(|&gi| self.hguards[gi]).collect(),
                },
            );
        }
        // Every linear-memory access consumes freshness: guards prove
        // things about *this* access; later reuse is an elision.
        for f in st.facts.values_mut() {
            f.fresh = false;
        }
        for v in st.regs.iter_mut() {
            if let AbsVal::Clamped { fresh, .. } = v {
                *fresh = false;
            }
        }
        for v in st.slots.values_mut() {
            if let AbsVal::Clamped { fresh, .. } = v {
                *fresh = false;
            }
        }
    }

    /// A load whose operand is not linear memory.
    fn load_val(&mut self, st: &State, off: usize, d: Reg, m: Mem, w: W) -> AbsVal {
        match Self::mem_class(st, m) {
            MemClass::Slot(disp) => {
                let v = st
                    .slots
                    .get(&disp)
                    .copied()
                    .unwrap_or_else(|| self.fresh(off, u64::from(d.0), false));
                match w {
                    W::W64 => v,
                    W::W32 => self.low32(st, off, d, v),
                }
            }
            MemClass::Ctx(CTX_MEM_SIZE) if w == W::W64 => AbsVal::MemSizeMinus { k: 0 },
            _ => self.fresh(off, u64::from(d.0), w == W::W32),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn transfer(&mut self, st: &mut State, off: usize, inst: &Inst) {
        use Inst::*;
        match *inst {
            MovRi32 { d, v } => self.set_reg(st, off, d, AbsVal::Const(v as u32 as u64)),
            MovRi64Sx { d, v } => self.set_reg(st, off, d, AbsVal::Const(v as i64 as u64)),
            MovAbs { d, v } => self.set_reg(st, off, d, AbsVal::Const(v as u64)),
            MovRr { w, d, s } => {
                if w == W::W64 && d.0 == RBP && s.0 == RSP {
                    // The frame-pointer idiom: rbp now addresses the frame.
                    st.rbp_valid = true;
                    return;
                }
                let sv = st.regs[s.0 as usize];
                let v = match w {
                    W::W64 => sv,
                    W::W32 => self.low32(st, off, d, sv),
                };
                self.set_reg(st, off, d, v);
            }
            MovRm { w, d, m } => {
                if Self::mem_class(st, m) == MemClass::Linear {
                    let op = if w == W::W64 {
                        MachineOp::Load64
                    } else {
                        MachineOp::Load32
                    };
                    self.record_access(st, off, op, m);
                    let v = self.fresh(off, u64::from(d.0), w == W::W32);
                    self.set_reg(st, off, d, v);
                } else {
                    let v = self.load_val(st, off, d, m, w);
                    self.set_reg(st, off, d, v);
                }
            }
            Movzx8 { d, m } | Movzx16 { d, m } => {
                if Self::mem_class(st, m) == MemClass::Linear {
                    let op = if matches!(inst, Movzx8 { .. }) {
                        MachineOp::Load8Z
                    } else {
                        MachineOp::Load16Z
                    };
                    self.record_access(st, off, op, m);
                }
                let v = self.fresh(off, u64::from(d.0), true);
                self.set_reg(st, off, d, v);
            }
            Movsx8 { w, d, m } | Movsx16 { w, d, m } => {
                if Self::mem_class(st, m) == MemClass::Linear {
                    let op = match (matches!(inst, Movsx8 { .. }), w) {
                        (true, W::W32) => MachineOp::Load8S32,
                        (true, W::W64) => MachineOp::Load8S64,
                        (false, W::W32) => MachineOp::Load16S32,
                        (false, W::W64) => MachineOp::Load16S64,
                    };
                    self.record_access(st, off, op, m);
                }
                let v = self.fresh(off, u64::from(d.0), w == W::W32);
                self.set_reg(st, off, d, v);
            }
            MovsxdM { d, m } => {
                if Self::mem_class(st, m) == MemClass::Linear {
                    self.record_access(st, off, MachineOp::Load32S64, m);
                }
                let v = self.fresh(off, u64::from(d.0), false);
                self.set_reg(st, off, d, v);
            }
            MovsxdR { d, .. } => {
                let v = self.fresh(off, u64::from(d.0), false);
                self.set_reg(st, off, d, v);
            }
            MovMr { w, m, s } => match Self::mem_class(st, m) {
                MemClass::Linear => {
                    let op = if w == W::W64 {
                        MachineOp::Store64
                    } else {
                        MachineOp::Store32
                    };
                    self.record_access(st, off, op, m);
                }
                MemClass::Slot(disp) => {
                    let sv = st.regs[s.0 as usize];
                    let v = match w {
                        W::W64 => sv,
                        W::W32 => self.low32(st, off, s, sv),
                    };
                    st.slots.insert(disp, v);
                }
                MemClass::Ctx(_) => {
                    if self.recording {
                        self.findings.push(Finding {
                            func: self.func,
                            offset: off,
                            kind: FindingKind::WritesVmCtx,
                        });
                    }
                }
                MemClass::Other => {}
            },
            MovMi { m, v } => match Self::mem_class(st, m) {
                MemClass::Linear => {
                    self.record_access(st, off, MachineOp::Store64, m);
                }
                MemClass::Slot(disp) => {
                    st.slots.insert(disp, AbsVal::Const(v as i64 as u64));
                }
                MemClass::Ctx(_) => {
                    if self.recording {
                        self.findings.push(Finding {
                            func: self.func,
                            offset: off,
                            kind: FindingKind::WritesVmCtx,
                        });
                    }
                }
                MemClass::Other => {}
            },
            MovMr8 { m, .. } | MovMr16 { m, .. } => match Self::mem_class(st, m) {
                MemClass::Linear => {
                    let op = if matches!(inst, MovMr8 { .. }) {
                        MachineOp::Store8
                    } else {
                        MachineOp::Store16
                    };
                    self.record_access(st, off, op, m);
                }
                MemClass::Slot(disp) => {
                    st.slots.remove(&disp);
                }
                MemClass::Ctx(_) => {
                    if self.recording {
                        self.findings.push(Finding {
                            func: self.func,
                            offset: off,
                            kind: FindingKind::WritesVmCtx,
                        });
                    }
                }
                MemClass::Other => {}
            },
            AluRr { w, op, d, s } => match op {
                self::AluRr::Cmp => {
                    st.flags = if w == W::W64 {
                        Flags::CmpRR { l: d.0, r: s.0 }
                    } else {
                        Flags::Unknown
                    };
                }
                self::AluRr::Test => st.flags = Flags::Unknown,
                self::AluRr::Xor if d == s => {
                    self.set_reg(st, off, d, AbsVal::Const(0));
                    st.flags = Flags::Unknown;
                }
                self::AluRr::Add if w == W::W64 => {
                    let v = add_vals(st.regs[d.0 as usize], st.regs[s.0 as usize], || {
                        self.fresh(off, u64::from(d.0), false)
                    });
                    self.set_reg(st, off, d, v);
                    st.flags = Flags::Unknown;
                }
                self::AluRr::Sub if w == W::W64 => {
                    let v = sub_vals(st.regs[d.0 as usize], st.regs[s.0 as usize], || {
                        self.fresh(off, u64::from(d.0), false)
                    });
                    self.set_reg(st, off, d, v);
                    st.flags = Flags::Unknown;
                }
                _ => {
                    let v = self.fresh(off, u64::from(d.0), w == W::W32);
                    self.set_reg(st, off, d, v);
                    st.flags = Flags::Unknown;
                }
            },
            AluRi { w, op, d, v } => {
                match op {
                    self::AluRi::Cmp => {
                        st.flags = Flags::Unknown;
                        return;
                    }
                    self::AluRi::Add if w == W::W64 => {
                        let nv = add_vals(
                            st.regs[d.0 as usize],
                            AbsVal::Const(v as i64 as u64),
                            || self.fresh(off, u64::from(d.0), false),
                        );
                        self.set_reg(st, off, d, nv);
                    }
                    self::AluRi::Sub if w == W::W64 => {
                        let nv = sub_vals(
                            st.regs[d.0 as usize],
                            AbsVal::Const(v as i64 as u64),
                            || self.fresh(off, u64::from(d.0), false),
                        );
                        self.set_reg(st, off, d, nv);
                    }
                    self::AluRi::And if w == W::W64 && v >= 0 => {
                        // Masking with a non-negative imm32 bounds the value.
                        let nv = self.fresh(off, u64::from(d.0), true);
                        self.set_reg(st, off, d, nv);
                    }
                    _ => {
                        let nv = self.fresh(off, u64::from(d.0), w == W::W32);
                        self.set_reg(st, off, d, nv);
                    }
                }
                st.flags = Flags::Unknown;
            }
            CmpRm { w, d, m } => {
                if Self::mem_class(st, m) == MemClass::Linear {
                    // Never a legitimate shape — surfaces as a count or
                    // shape mismatch downstream.
                    self.record_access(st, off, MachineOp::CmpM, m);
                    st.flags = Flags::Unknown;
                } else if w == W::W64 && m == Mem::base(Reg(R15), CTX_MEM_SIZE) {
                    st.flags = Flags::CmpMemSize(st.regs[d.0 as usize]);
                } else if w == W::W64
                    && m.base.0 == R15
                    && m.index.is_none()
                    && limit_slot(m.disp).is_some()
                {
                    st.flags = Flags::CmpLimit {
                        lhs: st.regs[d.0 as usize],
                        slot: limit_slot(m.disp).expect("checked above"),
                    };
                } else {
                    st.flags = Flags::Unknown;
                }
            }
            ImulRr { w, d, .. } | Neg { w, d } => {
                let v = self.fresh(off, u64::from(d.0), w == W::W32);
                self.set_reg(st, off, d, v);
                st.flags = Flags::Unknown;
            }
            CdqCqo { w } => {
                // Writes rdx from rax's sign; does not touch flags.
                let v = self.fresh(off, 2, w == W::W32);
                self.set_reg(st, off, Reg(2), v);
            }
            Idiv { w, .. } | Div { w, .. } => {
                let a = self.fresh(off, 0, w == W::W32);
                let d = self.fresh(off, 2, w == W::W32);
                self.set_reg(st, off, Reg(0), a);
                self.set_reg(st, off, Reg(2), d);
                st.flags = Flags::Unknown;
            }
            ShiftCl { w, d, .. } => {
                let v = self.fresh(off, u64::from(d.0), w == W::W32);
                self.set_reg(st, off, d, v);
                st.flags = Flags::Unknown;
            }
            ShiftImm { w, op, d, v } => {
                let clean = match w {
                    W::W32 => true,
                    W::W64 => {
                        op == ShiftOp::Shr
                            && (v >= 32
                                || matches!(st.regs[d.0 as usize], AbsVal::MemSizeMinus { .. }))
                    }
                };
                let nv = self.fresh(off, u64::from(d.0), clean);
                self.set_reg(st, off, d, nv);
                st.flags = Flags::Unknown;
            }
            Lea { w, d, m } => {
                // lea computes an address without touching flags.
                let base = st.regs[m.base.0 as usize];
                let frame_slot =
                    (m.index.is_none() && m.base.0 == RBP && st.rbp_valid).then_some(m.disp);
                let v = match m.index {
                    None => add_vals(base, AbsVal::Const(m.disp as i64 as u64), || {
                        self.fresh(off, u64::from(d.0), false)
                    }),
                    Some((i, 1)) => {
                        let s1 = add_vals(base, st.regs[i.0 as usize], || {
                            self.fresh(off, u64::from(d.0), false)
                        });
                        add_vals(s1, AbsVal::Const(m.disp as i64 as u64), || {
                            self.fresh(off, u64::from(d.0), false)
                        })
                    }
                    Some(_) => self.fresh(off, u64::from(d.0), false),
                };
                let v = match w {
                    W::W64 => v,
                    W::W32 => self.low32(st, off, d, v),
                };
                self.set_reg(st, off, d, v);
                // The host-call result protocol: a frame-slot address in a
                // register (set after `set_reg`, which clears the marker).
                if let Some(disp) = frame_slot {
                    if !matches!(d.0, RSP | RBP | R14 | R15) {
                        st.slot_ptr = Some((d.0, disp));
                    }
                }
            }
            BitCnt { d, .. } => {
                let v = self.fresh(off, u64::from(d.0), true);
                self.set_reg(st, off, d, v);
                st.flags = Flags::Unknown;
            }
            Setcc { d, .. } => {
                // Writes only the low byte; preserves flags.
                let clean = st.regs[d.0 as usize].clean();
                let v = self.fresh(off, u64::from(d.0), clean);
                self.set_reg(st, off, d, v);
            }
            Cmov { w, cc, d, s } => {
                let sv = st.regs[s.0 as usize];
                let clamp =
                    w == W::W64 && cc == Cc::A && st.flags == Flags::CmpRR { l: d.0, r: s.0 };
                if clamp {
                    if let AbsVal::MemSizeMinus { k } = sv {
                        // d = min(d, mem_size - k): the clamp idiom.
                        self.set_reg(
                            st,
                            off,
                            d,
                            AbsVal::Clamped {
                                margin: k,
                                fresh: true,
                            },
                        );
                        return;
                    }
                }
                let dv = st.regs[d.0 as usize];
                let v = if dv == sv {
                    dv
                } else {
                    let clean = match w {
                        W::W32 => true,
                        W::W64 => dv.clean() && sv.clean(),
                    };
                    self.fresh(off, u64::from(d.0), clean)
                };
                self.set_reg(st, off, d, v);
            }
            CallR { .. } | CallM { .. } => {
                if let CallM { m } = *inst {
                    if Self::mem_class(st, m) == MemClass::Linear {
                        self.record_access(st, off, MachineOp::CallM, m);
                    }
                }
                // A host import writes its result through the slot pointer
                // handed to it; assumed type-correct at the ABI boundary.
                if let Some((_, disp)) = st.slot_ptr.take() {
                    let v = self.fresh(off, SLOT_RESULT_TAG, true);
                    st.slots.insert(disp, v);
                }
                // Caller-saved registers die; rax carries a typed result
                // (clean by the ABI assumption). Facts and frame slots
                // survive: mem_size only grows, and callees cannot reach
                // this frame.
                let rax = self.fresh(off, 0, true);
                self.set_reg(st, off, Reg(0), rax);
                for r in [1u8, 2, 6, 7, 8, 9, 10, 11] {
                    let v = self.fresh(off, u64::from(r), false);
                    self.set_reg(st, off, Reg(r), v);
                }
                st.flags = Flags::Unknown;
            }
            Push { .. } | Nop => {}
            Pop { r } => {
                if r.0 == RBP {
                    // Epilogue: the frame is gone.
                    st.rbp_valid = false;
                    st.slots.clear();
                } else {
                    let v = self.fresh(off, u64::from(r.0), false);
                    self.set_reg(st, off, r, v);
                }
            }
            Fload { double, m, .. } => {
                if Self::mem_class(st, m) == MemClass::Linear {
                    let op = if double {
                        MachineOp::FLoad64
                    } else {
                        MachineOp::FLoad32
                    };
                    self.record_access(st, off, op, m);
                }
            }
            Fstore { double, m, .. } => match Self::mem_class(st, m) {
                MemClass::Linear => {
                    let op = if double {
                        MachineOp::FStore64
                    } else {
                        MachineOp::FStore32
                    };
                    self.record_access(st, off, op, m);
                }
                MemClass::Slot(disp) => {
                    st.slots.remove(&disp);
                }
                _ => {}
            },
            Ucomis { .. } => st.flags = Flags::Unknown,
            CvttF2i { w, d, .. } | MovqRx { w, d, .. } => {
                let v = self.fresh(off, u64::from(d.0), w == W::W32);
                self.set_reg(st, off, d, v);
            }
            // Pure SSE traffic: no integer state, no flags.
            Fmov { .. }
            | Farith { .. }
            | CvtI2f { .. }
            | CvtD2s { .. }
            | CvtS2d { .. }
            | MovqXr { .. }
            | Rounds { .. }
            | Pxor { .. }
            | Fbit { .. } => {}
            Jcc { .. } | Jmp { .. } | Ret | Ud2Trap { .. } => {
                unreachable!("control flow handled at block level")
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemClass {
    Linear,
    Ctx(i32),
    Slot(i32),
    Other,
}

/// Record the guard fact on the fall-through edge of `ja oob`.
fn add_fact(st: &mut State, lhs: AbsVal) {
    let (key, covered) = match lhs {
        AbsVal::Sym { id, add, .. } => (FactKey::Sym(id), add),
        AbsVal::Const(c) => (FactKey::Consts, c),
        _ => return,
    };
    let e = st.facts.entry(key).or_insert(Fact {
        covered: 0,
        fresh: true,
    });
    e.covered = e.covered.max(covered);
    e.fresh = true;
}

/// Record the fused-guard fact on the fall-through edge of `jae oob`:
/// the compared value plus the slot's extent fits in `mem_size`. `extent`
/// of 0 marks an unused slot and proves nothing (codegen never compares
/// against one).
fn add_limit_fact(st: &mut State, lhs: AbsVal, extent: u64) {
    if extent == 0 {
        return;
    }
    let (key, covered) = match lhs {
        AbsVal::Sym { id, add, .. } => (FactKey::Sym(id), add.saturating_add(extent)),
        AbsVal::Const(c) => (FactKey::Consts, c.saturating_add(extent)),
        _ => return,
    };
    let e = st.facts.entry(key).or_insert(Fact {
        covered: 0,
        fresh: true,
    });
    e.covered = e.covered.max(covered);
    e.fresh = true;
}

fn add_vals(a: AbsVal, b: AbsVal, fresh: impl FnOnce() -> AbsVal) -> AbsVal {
    match (a, b) {
        (AbsVal::Const(x), AbsVal::Const(y)) => AbsVal::Const(x.wrapping_add(y)),
        (AbsVal::Sym { id, clean, add }, AbsVal::Const(c))
        | (AbsVal::Const(c), AbsVal::Sym { id, clean, add }) => AbsVal::Sym {
            id,
            clean,
            add: add.wrapping_add(c),
        },
        // mem_size - k + c == mem_size - (k - c)
        (AbsVal::MemSizeMinus { k }, AbsVal::Const(c))
        | (AbsVal::Const(c), AbsVal::MemSizeMinus { k }) => AbsVal::MemSizeMinus {
            k: k.wrapping_sub(c),
        },
        _ => fresh(),
    }
}

fn sub_vals(a: AbsVal, b: AbsVal, fresh: impl FnOnce() -> AbsVal) -> AbsVal {
    match (a, b) {
        (AbsVal::Const(x), AbsVal::Const(y)) => AbsVal::Const(x.wrapping_sub(y)),
        (AbsVal::Sym { id, clean, add }, AbsVal::Const(c)) => AbsVal::Sym {
            id,
            clean,
            add: add.wrapping_sub(c),
        },
        // The clamp limit: t = mem_size - size.
        (AbsVal::MemSizeMinus { k }, AbsVal::Const(c)) => AbsVal::MemSizeMinus {
            k: k.wrapping_add(c),
        },
        _ => fresh(),
    }
}

/// If `inst` has a memory operand based on `r14`, classify it.
fn linear_operand(inst: &Inst) -> Option<(MachineOp, Mem)> {
    use Inst::*;
    let (op, m) = match *inst {
        MovRm { w: W::W32, m, .. } => (MachineOp::Load32, m),
        MovRm { w: W::W64, m, .. } => (MachineOp::Load64, m),
        Movzx8 { m, .. } => (MachineOp::Load8Z, m),
        Movzx16 { m, .. } => (MachineOp::Load16Z, m),
        Movsx8 { w: W::W32, m, .. } => (MachineOp::Load8S32, m),
        Movsx8 { w: W::W64, m, .. } => (MachineOp::Load8S64, m),
        Movsx16 { w: W::W32, m, .. } => (MachineOp::Load16S32, m),
        Movsx16 { w: W::W64, m, .. } => (MachineOp::Load16S64, m),
        MovsxdM { m, .. } => (MachineOp::Load32S64, m),
        MovMr { w: W::W32, m, .. } => (MachineOp::Store32, m),
        MovMr { w: W::W64, m, .. } => (MachineOp::Store64, m),
        MovMi { m, .. } => (MachineOp::Store64, m),
        MovMr8 { m, .. } => (MachineOp::Store8, m),
        MovMr16 { m, .. } => (MachineOp::Store16, m),
        Fload { double, m, .. } => (
            if double {
                MachineOp::FLoad64
            } else {
                MachineOp::FLoad32
            },
            m,
        ),
        Fstore { double, m, .. } => (
            if double {
                MachineOp::FStore64
            } else {
                MachineOp::FStore32
            },
            m,
        ),
        CmpRm { m, .. } => (MachineOp::CmpM, m),
        CallM { m } => (MachineOp::CallM, m),
        _ => return None,
    };
    (m.base.0 == R14).then_some((op, m))
}
