//! lb-verify: translation validation of emitted JIT code.
//!
//! An in-tree x86-64 decoder covering the exact instruction vocabulary of
//! `lb-jit`'s assembler (round-trippable: encode → decode → re-encode
//! bit-identical), plus a forward abstract interpreter that reconstructs the
//! CFG of a compiled function and classifies every linear-memory access as
//! guarded, reservation-covered, or soundly elided — anything else becomes a
//! structured [`Finding`](report::Finding).
//!
//! The threat model and the exact proof obligations per bounds-check
//! strategy are documented in `DESIGN.md` §6. In brief, for every
//! `r14`-based operand the verifier requires one of:
//!
//! * a **dominating guard** (`lea`/`cmp [r15+MEM_SIZE]`/`ja`) whose proven
//!   extent covers the access — the Trap strategy;
//! * a **clamp** (`cmp`/`cmova` against `mem_size - size`) feeding the
//!   index — the Clamp strategy;
//! * **reservation cover**: the worst-case effective address of a 32-bit
//!   index plus static offset fits inside the guard-region reservation —
//!   the None / Mprotect / Uffd strategies;
//! * a **re-checked elision**: the site is covered by an `lb-analysis`
//!   plan entry whose static proof the verifier re-derives, or by an
//!   earlier (stale) guard fact from the JIT's peephole.

mod absint;
pub mod classify;
pub mod decode;
pub mod expected;
pub mod isa;
pub mod report;

pub use classify::{class_at, classify_function, ClassifiedInst, InstClass};
pub use expected::{expected_sites, expected_sites_guardopt, ExpectedSite};
pub use report::{Finding, FindingKind, FuncReport};

use absint::{BoundSrc, IdxObs, MachineOp, SiteObs};
use expected::ExpectedSite as Site;
use lb_analysis::{CheckKind, FuncPlan};
use lb_core::BoundsStrategy;
use lb_wasm::instr::MemAccess;
use lb_wasm::{FuncMeta, Instr, ValType};

/// Everything needed to verify one compiled function.
pub struct FuncInput<'a> {
    /// Defined-function index (import-relative), for finding attribution.
    pub func_index: usize,
    /// The emitted machine code, exactly as `compile_function` returned it
    /// (no placement padding).
    pub code: &'a [u8],
    /// The wasm body the code was compiled from.
    pub body: &'a [Instr],
    /// Validation metadata for the body.
    pub meta: &'a FuncMeta,
    /// The bounds-check strategy the code was compiled under.
    pub strategy: BoundsStrategy,
    /// The per-function analysis plan codegen consulted, or `None` when it
    /// compiled at `OptLevel::None` (baseline emits every check).
    pub plan: Option<&'a FuncPlan>,
    /// The module's declared minimum memory in bytes (elision proofs are
    /// checked against this — memory never shrinks below it).
    pub mem_min_bytes: u64,
    /// Bytes of virtual-address reservation per linear memory (headroom
    /// for the guard-region strategies).
    pub reserve_bytes: u64,
    /// Mid-tier register homes as `(local index, machine register number)`
    /// pairs, recomputed by the caller from the same inputs codegen used
    /// (`lb-jit`'s `regalloc::allocate` is a pure function of them).
    /// `None` for every other tier.
    pub homes: Option<Vec<(u32, u8)>>,
    /// The module's fused-guard extent table, recomputed by the caller
    /// (`lb-jit`'s `dataflow::module_extents` is a pure function of the
    /// module). `None` outside the guard-optimizing mid tier, which makes
    /// every limit-table compare an unknown flag state.
    pub limit_extents: Option<Vec<u64>>,
    /// The guard-optimizing mid tier's per-site decisions as
    /// `(wasm pc, decision)` pairs, recomputed by the caller from the wasm
    /// (`lb-jit`'s `dataflow::decide` is a pure function of its inputs).
    /// Decisions shape *expectations* only — every elision and fusion is
    /// still re-proven from the emitted instructions. `None` for every
    /// other configuration.
    pub guardopt: Option<Vec<(u32, lb_analysis::GuardOpt)>>,
}

/// Verify one compiled function against its wasm body.
///
/// Decodes the machine code, abstractly interprets it, aligns the
/// `r14`-based operands with the access sites the body implies (same
/// order — codegen lowers in program order), and proves each one safe or
/// reports a [`Finding`].
pub fn verify_function(input: &FuncInput<'_>) -> FuncReport {
    let mut report = FuncReport::default();

    // Integer parameters in ABI order; `true` marks i32 (the ABI delivers
    // them zero-extended, so they start clean).
    let int_params: Vec<bool> = input.meta.local_types[..input.meta.n_params as usize]
        .iter()
        .filter(|t| matches!(t, ValType::I32 | ValType::I64))
        .map(|t| *t == ValType::I32)
        .collect();

    let ma = absint::analyze(
        input.func_index,
        input.code,
        &int_params,
        input.limit_extents.as_deref().unwrap_or(&[]),
    );
    let undecodable = ma
        .findings
        .iter()
        .any(|f| matches!(f.kind, FindingKind::Decode { .. }));
    report.findings.extend(ma.findings);
    if undecodable {
        // No instruction stream to align against.
        return report;
    }

    let expected = expected::expected_sites_guardopt(
        input.body,
        input.meta,
        input.strategy,
        input.plan,
        input.guardopt.as_deref(),
    );
    report.sites_checked = expected.len() as u64;
    if expected.len() != ma.sites.len() {
        report.findings.push(Finding {
            func: input.func_index,
            offset: ma.sites.first().map_or(0, |s| s.off),
            kind: FindingKind::AccessCountMismatch {
                expected: expected.len(),
                found: ma.sites.len(),
            },
        });
        return report;
    }

    for (site, obs) in expected.iter().zip(&ma.sites) {
        classify(input, site, obs, &mut report);
    }
    report
}

/// The machine shape `lower_load`/`lower_store` emits for a wasm access.
fn machine_op_for(acc: &MemAccess) -> MachineOp {
    use MachineOp::*;
    if acc.is_store {
        match (acc.ty, acc.bytes) {
            (ValType::F32, _) => FStore32,
            (ValType::F64, _) => FStore64,
            (_, 1) => Store8,
            (_, 2) => Store16,
            (_, 4) => Store32,
            _ => Store64,
        }
    } else {
        match (acc.ty, acc.bytes, acc.sign_extend) {
            (ValType::F32, ..) => FLoad32,
            (ValType::F64, ..) => FLoad64,
            (_, 1, false) => Load8Z,
            (ValType::I32, 1, true) => Load8S32,
            (ValType::I64, 1, true) => Load8S64,
            (_, 2, false) => Load16Z,
            (ValType::I32, 2, true) => Load16S32,
            (ValType::I64, 2, true) => Load16S64,
            // i64.load32_u is a plain 32-bit load (upper half zeroed).
            (_, 4, false) => Load32,
            (ValType::I64, 4, true) => Load32S64,
            _ => Load64,
        }
    }
}

fn finding(report: &mut FuncReport, input: &FuncInput<'_>, off: usize, kind: FindingKind) {
    report.findings.push(Finding {
        func: input.func_index,
        offset: off,
        kind,
    });
}

/// Prove one (wasm site, machine operand) pair safe, or record why not.
fn classify(input: &FuncInput<'_>, site: &Site, obs: &SiteObs, report: &mut FuncReport) {
    let offset = u64::from(site.acc.memarg.offset);
    let bytes = u64::from(site.acc.bytes);

    // 1. Shape: width/direction class, index scale, displacement.
    let want_op = machine_op_for(&site.acc);
    if obs.op != want_op {
        finding(
            report,
            input,
            obs.off,
            FindingKind::AccessShape {
                detail: format!(
                    "wasm site pc {} implies {want_op:?}, code has {:?}",
                    site.pc, obs.op
                ),
            },
        );
        return;
    }
    if !obs.scale_ok {
        finding(
            report,
            input,
            obs.off,
            FindingKind::AccessShape {
                detail: format!("index scale is not 1 at wasm pc {}", site.pc),
            },
        );
        return;
    }
    // The displacement is the wasm offset, except where codegen folds the
    // offset into the index register first: clamp-emitted sites and
    // offsets too large for an i32 displacement.
    let clamp_emitted = input.strategy == BoundsStrategy::Clamp && site.kind == CheckKind::Emit;
    let folded = clamp_emitted || i32::try_from(offset).is_err();
    let want_disp = if folded { 0 } else { offset as i64 };
    if i64::from(obs.disp) != want_disp {
        finding(
            report,
            input,
            obs.off,
            FindingKind::AccessShape {
                detail: format!(
                    "displacement {} does not match wasm offset {offset} at pc {}",
                    obs.disp, site.pc
                ),
            },
        );
        return;
    }
    // From here the effective address is `index + disp + bytes` with
    // `disp` exactly as intended, so the proofs below are about the index.
    let disp = if folded { 0u64 } else { offset };

    // 2. Site-kind obligations.
    match site.kind {
        CheckKind::StaticOob => {
            // The plan proved `offset + bytes > mem_max`: codegen must have
            // routed control to the trap stub before the access.
            if obs.reachable {
                finding(report, input, obs.off, FindingKind::StaticOobReachable);
            } else {
                report.proven_guarded += 1;
            }
        }
        CheckKind::ElideInBounds => {
            // Re-derive the static proof: the constant part alone must fit
            // in the declared minimum memory, and if the index is itself a
            // known constant the whole address must.
            if offset + bytes > input.mem_min_bytes {
                finding(
                    report,
                    input,
                    obs.off,
                    FindingKind::BadElisionProof {
                        detail: format!(
                            "offset {offset} + {bytes} bytes exceeds min memory {}",
                            input.mem_min_bytes
                        ),
                    },
                );
                return;
            }
            if let Some(IdxObs::Const { v, .. }) = &obs.idx {
                if v + disp + bytes > input.mem_min_bytes {
                    finding(
                        report,
                        input,
                        obs.off,
                        FindingKind::BadElisionProof {
                            detail: format!(
                                "constant address {v} + {disp} + {bytes} exceeds min memory {}",
                                input.mem_min_bytes
                            ),
                        },
                    );
                    return;
                }
            }
            report.proven_elided += 1;
        }
        CheckKind::ElideDominated => {
            // Trap reaches here for every dominated site; Clamp only for
            // `clamp_ok` sites, whose dominator was a *static* in-bounds
            // proof (see `expected::site_kind`). The dominating check is
            // the recomputed plan's obligation: we trust `lb-analysis`
            // dominance here (DESIGN.md §6 — machine facts cover most of
            // these, but a dominator that was itself statically elided
            // leaves no machine-visible guard).
            report.proven_elided += 1;
        }
        CheckKind::Emit => classify_emit(input, site, obs, disp, bytes, report),
        CheckKind::ElideHoisted => classify_hoisted(input, site, obs, report),
        CheckKind::ElideDominatedIr => classify_gvn(input, site, obs, disp, bytes, report),
    }
}

/// Prove an IR-dataflow elision. Unlike [`CheckKind::ElideDominated`]
/// (whose dominator can be a machine-invisible static proof), the IR
/// pass's dominating guard always executed a compare, so its machine fact
/// must still be observable here — fresh or stale. The decision itself is
/// never trusted: a forged `GvnElide` with no real dominating guard lands
/// in this arm and fails to prove.
fn classify_gvn(
    input: &FuncInput<'_>,
    site: &Site,
    obs: &SiteObs,
    disp: u64,
    bytes: u64,
    report: &mut FuncReport,
) {
    if !obs.reachable {
        // Unreachable code cannot fault.
        report.proven_gvn += 1;
        return;
    }
    let Some(idx) = &obs.idx else {
        report.proven_gvn += 1;
        return;
    };
    let (need, fact) = match idx {
        IdxObs::Sym { add, fact, .. } => (add + disp + bytes, fact),
        IdxObs::Const { v, fact } => (v + disp + bytes, fact),
        IdxObs::Clamped { .. } | IdxObs::MemSizeMinus => {
            finding(
                report,
                input,
                obs.off,
                FindingKind::BadElisionProof {
                    detail: format!(
                        "IR-elided site has a clamp-shaped index at wasm pc {}",
                        site.pc
                    ),
                },
            );
            return;
        }
    };
    match fact {
        Some((covered, _)) if *covered >= need => report.proven_gvn += 1,
        Some((covered, _)) => finding(
            report,
            input,
            obs.off,
            FindingKind::UnguardedAccess {
                detail: format!(
                    "IR-elided site: dominating fact covers {covered} bytes, \
                     access needs {need} at wasm pc {}",
                    site.pc
                ),
            },
        ),
        None => finding(
            report,
            input,
            obs.off,
            FindingKind::UnguardedAccess {
                detail: format!(
                    "IR-elided site has no dominating machine fact at wasm pc {}",
                    site.pc
                ),
            },
        ),
    }
}

/// The machine locations where a guard could have read local `l`,
/// mirroring codegen's frame layout: a spilled rbp slot at
/// `-8 * (n_pinned + 1 + l)`, or (at `OptLevel::Full`) the callee-saved
/// register the local is pinned in. The verifier is not told the opt
/// level, so both the Basic (`n_pinned = 0`) and Full layouts are
/// accepted — ambiguity only ever maps the bound to a *different local's*
/// slot, which the matched guard shape still proves was compared against
/// `mem_size` whole.
fn bound_srcs_for_local(meta: &FuncMeta, l: u32, homes: Option<&[(u32, u8)]>) -> Vec<BoundSrc> {
    // PIN_REGS in codegen: rbx, r12, r13 — assigned to the first three
    // integer locals in index order at OptLevel::Full.
    const PIN_REGS: [u8; 3] = [3, 12, 13];
    if let Some(homes) = homes {
        // Mid tier: homes are hotness-ordered, not index-ordered, so the
        // Full heuristic below does not apply. The frame reserves one
        // callee-saved save slot per PIN_REGS home (caller-saved homes
        // r8/r9 need no save area), shifting local slots down exactly as
        // the Full layout does.
        let n_pinned = homes
            .iter()
            .filter(|&&(_, r)| PIN_REGS.contains(&r))
            .count() as i32;
        let mut srcs = vec![BoundSrc::Slot(-8 * (n_pinned + 1 + l as i32))];
        if let Some(&(_, r)) = homes.iter().find(|&&(hl, _)| hl == l) {
            srcs.push(BoundSrc::Reg(r));
        }
        return srcs;
    }
    let mut srcs = vec![BoundSrc::Slot(-8 * (1 + l as i32))];
    let mut k = 0usize;
    for (i, ty) in meta.local_types.iter().enumerate() {
        if k == PIN_REGS.len() {
            break;
        }
        if matches!(ty, ValType::I32 | ValType::I64) {
            if i as u32 == l {
                srcs.push(BoundSrc::Reg(PIN_REGS[k]));
                break;
            }
            k += 1;
        }
    }
    // Full layout with `n_pinned` saved registers shifts spill slots down.
    let n_pinned = meta
        .local_types
        .iter()
        .filter(|t| matches!(t, ValType::I32 | ValType::I64))
        .take(3)
        .count();
    if n_pinned > 0 {
        srcs.push(BoundSrc::Slot(-8 * (n_pinned as i32 + 1 + l as i32)));
    }
    srcs
}

/// Prove a fast-body site of a versioned loop: the access carries no
/// machine check, so the preheader guard's fact must dominate it. The
/// abstract interpreter records an `HGuard` fact for each synthesized
/// guard on the fall-through (pass) edge of its final `ja`; the slow-body
/// entry never receives the fact, and facts are intersected at joins, so
/// a fact observed here means every path from function entry ran the
/// guard with a bound at least as strong as the plan's.
fn classify_hoisted(input: &FuncInput<'_>, site: &Site, obs: &SiteObs, report: &mut FuncReport) {
    let Some(hoist) = site.hoist.as_ref() else {
        finding(
            report,
            input,
            obs.off,
            FindingKind::BadElisionProof {
                detail: format!("hoisted site without guard plan at wasm pc {}", site.pc),
            },
        );
        return;
    };
    let covered = hoist.iter().all(|g| {
        let srcs = bound_srcs_for_local(input.meta, g.bound_local, input.homes.as_deref());
        obs.hfacts.iter().any(|f| {
            srcs.contains(&f.src)
                && f.strict == g.strict
                && f.shift == g.shift
                && f.addend >= g.addend
        })
    });
    if covered {
        report.proven_hoisted += 1;
    } else {
        finding(
            report,
            input,
            obs.off,
            FindingKind::BadElisionProof {
                detail: format!(
                    "fast-body access at wasm pc {} is not dominated by its preheader guard",
                    site.pc
                ),
            },
        );
    }
}

/// Prove an `Emit`-kind site: the strategy's own protection must be visible
/// in the machine code (or the site must be unreachable).
fn classify_emit(
    input: &FuncInput<'_>,
    site: &Site,
    obs: &SiteObs,
    disp: u64,
    bytes: u64,
    report: &mut FuncReport,
) {
    if !obs.reachable {
        // Unreachable code cannot fault; reachability here over-approximates
        // execution (this also covers the dead access after a static-OOB
        // `jmp` in bodies the baseline tier compiles without a plan).
        report.proven_guarded += 1;
        return;
    }
    let Some(idx) = &obs.idx else {
        // Reachable sites always carry an index observation.
        report.proven_guarded += 1;
        return;
    };
    match input.strategy {
        BoundsStrategy::Trap | BoundsStrategy::Clamp => {
            match idx {
                IdxObs::Clamped { margin, .. } => {
                    // Clamped index: `idx <= mem_size - margin`; safe when
                    // the clamp margin covers the access (disp is 0 at
                    // clamp sites).
                    if *margin >= disp + bytes {
                        report.proven_guarded += 1;
                    } else {
                        finding(
                            report,
                            input,
                            obs.off,
                            FindingKind::UnguardedAccess {
                                detail: format!(
                                    "clamp margin {margin} < {} needed at wasm pc {}",
                                    disp + bytes,
                                    site.pc
                                ),
                            },
                        );
                    }
                }
                IdxObs::MemSizeMinus => {
                    // `idx <= mem_size`: only safe for zero-extent access,
                    // which cannot occur — report it.
                    finding(
                        report,
                        input,
                        obs.off,
                        FindingKind::UnguardedAccess {
                            detail: format!(
                                "unclamped mem_size-derived index at wasm pc {}",
                                site.pc
                            ),
                        },
                    );
                }
                IdxObs::Sym { add, fact, .. } => match fact {
                    Some((covered, fresh)) if *covered >= add + disp + bytes => {
                        if *fresh {
                            // Guarded at this site (the check codegen just
                            // emitted). A fused site's fresh fact comes
                            // from the limit-table compare and counts
                            // separately.
                            if site.fused.is_some() {
                                report.proven_fused += 1;
                            } else {
                                report.proven_guarded += 1;
                            }
                        } else {
                            // Covered by an earlier check — the peephole.
                            report.proven_elided += 1;
                        }
                    }
                    Some((covered, _)) => finding(
                        report,
                        input,
                        obs.off,
                        FindingKind::UnguardedAccess {
                            detail: format!(
                                "guard covers {covered} bytes, access needs {} at wasm pc {}",
                                add + disp + bytes,
                                site.pc
                            ),
                        },
                    ),
                    None => finding(
                        report,
                        input,
                        obs.off,
                        FindingKind::UnguardedAccess {
                            detail: format!("no dominating bounds check at wasm pc {}", site.pc),
                        },
                    ),
                },
                IdxObs::Const { v, fact } => {
                    // A constant address: a guard fact covering it, or a
                    // static bound against the declared minimum.
                    let need = v + disp + bytes;
                    match fact {
                        Some((covered, fresh)) if *covered >= need => {
                            if *fresh {
                                if site.fused.is_some() {
                                    report.proven_fused += 1;
                                } else {
                                    report.proven_guarded += 1;
                                }
                            } else {
                                report.proven_elided += 1;
                            }
                        }
                        _ if need <= input.mem_min_bytes => report.proven_guarded += 1,
                        _ => finding(
                            report,
                            input,
                            obs.off,
                            FindingKind::UnguardedAccess {
                                detail: format!(
                                    "constant address needs {need} bytes in bounds at wasm pc {}",
                                    site.pc
                                ),
                            },
                        ),
                    }
                }
            }
        }
        BoundsStrategy::None | BoundsStrategy::Mprotect | BoundsStrategy::Uffd => {
            // Reservation cover: worst-case index + disp + bytes must stay
            // inside the per-memory reservation.
            let max_idx = match idx {
                IdxObs::Const { v, .. } => *v,
                IdxObs::Sym {
                    clean: true, add, ..
                } => u64::from(u32::MAX) + add,
                // Bounded by mem_size <= 4 GiB.
                IdxObs::Clamped { .. } | IdxObs::MemSizeMinus => 1u64 << 32,
                IdxObs::Sym { clean: false, .. } => {
                    finding(
                        report,
                        input,
                        obs.off,
                        FindingKind::UnguardedAccess {
                            detail: format!(
                                "index not provably 32-bit under a guard-region strategy at wasm pc {}",
                                site.pc
                            ),
                        },
                    );
                    return;
                }
            };
            let max_ea = max_idx + disp + bytes;
            if max_ea <= input.reserve_bytes {
                report.proven_guarded += 1;
            } else {
                finding(
                    report,
                    input,
                    obs.off,
                    FindingKind::OffsetExceedsHeadroom {
                        max_ea,
                        reserve: input.reserve_bytes,
                    },
                );
            }
        }
    }
}
