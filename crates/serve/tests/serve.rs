//! End-to-end tests for the serving layer: admission, deadlines, quota,
//! noisy-neighbor isolation, breaker lifecycle, and the exactly-once
//! outcome invariant under injected faults.
//!
//! Lives in its own integration binary because chaos plans and telemetry
//! counters are process-global; tests serialize on `TEST_LOCK`.

use lb_core::{BoundsStrategy, Engine, MemoryConfig, WASM_PAGE};
use lb_interp::InterpEngine;
use lb_serve::{
    BreakerConfig, KernelSpec, Outcome, Overload, ServeConfig, Server, ShedReason, TenantQuota,
};
use lb_wasm::module::{Export, ExportKind, Function, Import};
use lb_wasm::{FuncType, Instr, Limits, MemoryType, Module, ValType};
use std::sync::Mutex;
use std::time::Duration;

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// `run()`: store a marker, then return 7. Optionally calls the host
/// import `env.pause` first so tests can control service time.
fn kernel_module(with_pause: bool) -> Module {
    let mut m = Module::new();
    m.types.push(FuncType {
        params: vec![],
        results: vec![ValType::I32],
    });
    m.memory = Some(MemoryType {
        limits: Limits {
            min: 1,
            max: Some(2),
        },
    });
    let mut body = Vec::new();
    let func_idx = if with_pause {
        m.types.push(FuncType {
            params: vec![],
            results: vec![],
        });
        m.imports.push(Import {
            module: "env".into(),
            name: "pause".into(),
            type_idx: 1,
        });
        body.push(Instr::Call(0));
        1
    } else {
        0
    };
    body.extend([
        Instr::I32Const(16),
        Instr::I32Const(42),
        Instr::I32Store(lb_wasm::MemArg::offset(0)),
        Instr::I32Const(7),
        Instr::End,
    ]);
    m.functions.push(Function {
        type_idx: 0,
        locals: vec![],
        body,
        name: Some("run".into()),
    });
    m.exports.push(Export {
        name: "run".into(),
        kind: ExportKind::Func(func_idx),
    });
    lb_wasm::validate(&m).expect("module validates");
    m
}

fn mem_config() -> MemoryConfig {
    MemoryConfig::new(BoundsStrategy::Trap, 1, 2).with_reserve(4 * WASM_PAGE)
}

fn kernels(with_pause: bool) -> Vec<KernelSpec> {
    let engine = InterpEngine::new();
    let module = engine.load(&kernel_module(with_pause)).expect("load");
    vec![KernelSpec {
        name: "store7".into(),
        module,
        entry: "run".into(),
        args: vec![],
    }]
}

fn pause_linker(ms: u64) -> lb_core::Linker {
    let mut linker = lb_core::Linker::new();
    linker.func("env", "pause", move |_, _| {
        std::thread::sleep(Duration::from_millis(ms));
        Ok(None)
    });
    linker
}

#[test]
fn requests_complete_end_to_end() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = Server::start(
        ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        },
        kernels(false),
        mem_config(),
        lb_core::Linker::new(),
    );
    let mut tickets = Vec::new();
    for i in 0..100u32 {
        // Closed-loop: bounded queues push back under a fast submitter,
        // so retry QueueFull instead of treating it as an error.
        loop {
            match server.submit(i % 3, 0, None) {
                Ok(t) => {
                    tickets.push(t);
                    break;
                }
                Err(Overload::QueueFull) => std::thread::sleep(Duration::from_micros(200)),
                Err(e) => panic!("unexpected rejection {e:?}"),
            }
        }
    }
    for t in tickets {
        match t.wait() {
            Outcome::Completed { .. } => {}
            other => panic!("expected completion, got {other:?}"),
        }
    }
    assert_eq!(server.inflight(), 0);
    server.shutdown();
}

#[test]
fn unknown_tenant_and_kernel_reject_typed() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = Server::start(
        ServeConfig::default(),
        kernels(false),
        mem_config(),
        lb_core::Linker::new(),
    );
    assert_eq!(
        server.submit(999, 0, None).unwrap_err(),
        Overload::UnknownTenant
    );
    assert_eq!(
        server.submit(0, 999, None).unwrap_err(),
        Overload::UnknownKernel
    );
    server.shutdown();
}

#[test]
fn zero_deadline_is_admitted_then_shed_never_run() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = Server::start(
        ServeConfig::default(),
        kernels(false),
        mem_config(),
        lb_core::Linker::new(),
    );
    for _ in 0..50 {
        let t = server
            .submit(0, 0, Some(Duration::ZERO))
            .expect("zero-deadline requests are admitted");
        match t.wait() {
            Outcome::Shed { reason } => assert!(
                matches!(
                    reason,
                    ShedReason::DeadlineQueued | ShedReason::DeadlineDispatch
                ),
                "unexpected shed reason {reason:?}"
            ),
            other => panic!("zero-deadline request must shed, got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn quota_zero_rejects_everything() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = Server::start(
        ServeConfig {
            tenants: vec![
                TenantQuota::Limited {
                    rate_per_sec: 0.0,
                    burst: 0.0,
                },
                TenantQuota::Unlimited,
            ],
            ..ServeConfig::default()
        },
        kernels(false),
        mem_config(),
        lb_core::Linker::new(),
    );
    for _ in 0..10 {
        assert_eq!(
            server.submit(0, 0, None).unwrap_err(),
            Overload::QuotaExceeded
        );
    }
    // The other tenant is unaffected.
    assert!(server.submit(1, 0, None).unwrap().wait().is_completed());
    server.shutdown();
}

#[test]
fn quota_refills_over_time() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = Server::start(
        ServeConfig {
            tenants: vec![TenantQuota::Limited {
                rate_per_sec: 1000.0,
                burst: 2.0,
            }],
            ..ServeConfig::default()
        },
        kernels(false),
        mem_config(),
        lb_core::Linker::new(),
    );
    assert!(server.submit(0, 0, None).is_ok());
    assert!(server.submit(0, 0, None).is_ok());
    assert_eq!(
        server.submit(0, 0, None).unwrap_err(),
        Overload::QuotaExceeded
    );
    // 1000/s refill: 10ms buys ~10 tokens (capped at burst 2).
    std::thread::sleep(Duration::from_millis(10));
    assert!(server.submit(0, 0, None).is_ok());
    server.shutdown();
}

/// A tenant flooding its home shard gets bounded-queue rejections while
/// a tenant homed on the other shard keeps completing. Requests pause
/// 5ms in a host call, so the flooder's queue genuinely backs up.
#[test]
fn noisy_tenant_saturates_one_shard_not_all() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = Server::start(
        ServeConfig {
            shards: 2,
            queue_depth: 4,
            max_inflight: 1024,
            default_deadline: Duration::from_secs(10),
            ..ServeConfig::default()
        },
        kernels(true),
        mem_config(),
        pause_linker(5),
    );
    // Find two tenants homed on different shards by probing one request
    // each (tenant-affinity routing is a pure function of tenant id).
    let ta = server.submit(0, 0, None).expect("probe a");
    let mut noisy = 0u32;
    let mut quiet = 0u32;
    for cand in 1..8u32 {
        let t = server.submit(cand, 0, None).expect("probe");
        if t.shard() != ta.shard() {
            noisy = 0;
            quiet = cand;
            break;
        }
    }
    assert_ne!(noisy, quiet, "two shards must yield two distinct homes");

    // Flood the noisy tenant's home shard far past its queue depth.
    let mut flood = Vec::new();
    let mut rejected = 0u32;
    for _ in 0..64 {
        match server.submit(noisy, 0, None) {
            Ok(t) => flood.push(t),
            Err(Overload::QueueFull) => rejected += 1,
            Err(e) => panic!("unexpected rejection {e:?}"),
        }
    }
    assert!(
        rejected > 0,
        "bounded queue must reject once the noisy shard is saturated"
    );

    // The quiet tenant's shard still serves within a tight deadline.
    let quiet_ticket = server.submit(quiet, 0, None).expect("quiet admitted");
    match quiet_ticket.wait_timeout(Duration::from_secs(5)) {
        Some(Outcome::Completed { .. }) => {}
        other => panic!("quiet tenant must complete promptly, got {other:?}"),
    }
    for t in flood {
        assert!(
            !matches!(t.wait(), Outcome::Failed { .. }),
            "flooded requests complete or shed, never fail"
        );
    }
    server.shutdown();
}

/// Deterministic breaker lifecycle through the real serve path: three
/// one-shot `serve.dispatch` faults trip the breaker (threshold 3), the
/// open window rejects, the half-open probe succeeds, and the breaker
/// closes.
#[test]
fn breaker_trips_probes_and_closes() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Three identical one-shot directives: `Plan::check` short-circuits
    // on the first directive that fires, so each consultation burns
    // exactly one of them — three consecutive dispatch faults.
    let _guard =
        lb_chaos::install("serve.dispatch:1:EIO;serve.dispatch:1:EIO;serve.dispatch:1:EIO")
            .expect("chaos plan");
    let server = Server::start(
        ServeConfig {
            shards: 1,
            breaker: BreakerConfig {
                failure_threshold: 3,
                open_base: Duration::from_millis(20),
                open_max: Duration::from_millis(100),
            },
            ..ServeConfig::default()
        },
        kernels(false),
        mem_config(),
        lb_core::Linker::new(),
    );
    // Three consecutive injected dispatch faults.
    for i in 0..3 {
        let t = server.submit(0, 0, None).expect("admitted");
        match t.wait() {
            Outcome::Failed { .. } => {}
            other => panic!("request {i} should fail via injected fault, got {other:?}"),
        }
    }
    assert_eq!(server.breaker_state(0), "open");
    // With the single shard open, admission rejects typed.
    assert_eq!(
        server.submit(0, 0, None).unwrap_err(),
        Overload::BreakerOpen
    );
    // After the open window, exactly one probe goes through; the chaos
    // plan is exhausted so it succeeds and closes the breaker.
    std::thread::sleep(Duration::from_millis(25));
    let probe = server.submit(0, 0, None).expect("probe admitted");
    assert!(probe.wait().is_completed());
    assert_eq!(server.breaker_state(0), "closed");
    assert!(server.submit(0, 0, None).unwrap().wait().is_completed());
    server.shutdown();
}

/// The forced-overload chaos knob drills the queue-full rejection path
/// without real pressure.
#[test]
fn queue_full_chaos_knob_forces_typed_rejection() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = lb_chaos::install("serve.queue_full:1:EAGAIN").expect("chaos plan");
    let server = Server::start(
        ServeConfig::default(),
        kernels(false),
        mem_config(),
        lb_core::Linker::new(),
    );
    assert_eq!(server.submit(0, 0, None).unwrap_err(), Overload::QueueFull);
    // One-shot: the next request sails through.
    assert!(server.submit(0, 0, None).unwrap().wait().is_completed());
    server.shutdown();
}

/// Shedding shutdown resolves queued requests as `Shed { Shutdown }`;
/// nothing is lost and nothing executes after the flag.
#[test]
fn shutdown_now_sheds_queued_work() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let server = Server::start(
        ServeConfig {
            shards: 1,
            queue_depth: 64,
            default_deadline: Duration::from_secs(10),
            ..ServeConfig::default()
        },
        kernels(true),
        mem_config(),
        pause_linker(3),
    );
    let mut tickets = Vec::new();
    for _ in 0..32 {
        match server.submit(0, 0, None) {
            Ok(t) => tickets.push(t),
            Err(Overload::QueueFull) => break,
            Err(e) => panic!("unexpected rejection {e:?}"),
        }
    }
    server.shutdown_now();
    let mut sheds = 0;
    for t in tickets {
        match t.wait() {
            Outcome::Completed { .. } => {}
            Outcome::Shed {
                reason: ShedReason::Shutdown,
            } => sheds += 1,
            other => panic!("lost or mis-resolved request: {other:?}"),
        }
    }
    assert!(sheds > 0, "queued work behind the in-flight run must shed");
}

/// Chaos at the instantiation boundary (pool reset, mmap, uffd sites)
/// under concurrent load: every admitted request still resolves exactly
/// once, and the process never aborts.
#[test]
fn chaos_on_memory_sites_never_loses_requests() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = lb_chaos::install(
        "core.mmap.reserve:rate=0.05:ENOMEM;core.pool.reset:rate=0.05:EIO;seed=42",
    )
    .expect("chaos plan");
    let server = Server::start(
        ServeConfig {
            shards: 2,
            default_deadline: Duration::from_secs(10),
            ..ServeConfig::default()
        },
        kernels(false),
        mem_config(),
        lb_core::Linker::new(),
    );
    let mut completed = 0u32;
    let mut shed = 0u32;
    let mut failed = 0u32;
    for _ in 0..500 {
        let Ok(t) = server.submit(0, 0, None) else {
            continue;
        };
        match t.wait() {
            Outcome::Completed { .. } => completed += 1,
            Outcome::Shed { .. } => shed += 1,
            Outcome::Failed { .. } => failed += 1,
        }
    }
    assert!(completed > 0, "some requests must survive 5% fault rates");
    // ENOMEM on reserve is a capacity shed, not a failure — and either
    // way every ticket resolved (wait() returned), nothing leaked.
    assert_eq!(server.inflight(), 0);
    let _ = (shed, failed);
    server.shutdown();
}
