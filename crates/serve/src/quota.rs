//! Per-tenant token-bucket quotas.
//!
//! Each tenant owns one [`TokenBucket`] refilled continuously at
//! `rate_per_sec` up to `burst`. Admission takes one token per request;
//! an empty bucket is a typed [`crate::Overload::QuotaExceeded`]
//! rejection, never a queue. A bucket configured with `rate 0 + burst 0`
//! admits nothing (the "quota of 0" edge case); `TokenBucket::unlimited`
//! admits everything.
//!
//! Time is passed in explicitly (monotonic ns) so tests drive refill
//! deterministically.

use std::sync::Mutex;

/// A continuously-refilled token bucket.
pub struct TokenBucket {
    state: Mutex<BucketState>,
    rate_per_sec: f64,
    burst: f64,
    unlimited: bool,
}

struct BucketState {
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// A bucket refilled at `rate_per_sec` with capacity `burst`.
    /// Starts full.
    pub fn new(rate_per_sec: f64, burst: f64, now_ns: u64) -> TokenBucket {
        TokenBucket {
            state: Mutex::new(BucketState {
                tokens: burst,
                last_ns: now_ns,
            }),
            rate_per_sec: rate_per_sec.max(0.0),
            burst: burst.max(0.0),
            unlimited: false,
        }
    }

    /// A bucket that admits every request (no quota configured).
    pub fn unlimited() -> TokenBucket {
        TokenBucket {
            state: Mutex::new(BucketState {
                tokens: 0.0,
                last_ns: 0,
            }),
            rate_per_sec: 0.0,
            burst: 0.0,
            unlimited: true,
        }
    }

    /// Try to take one token at monotonic time `now_ns`. Returns whether
    /// the request is within quota.
    pub fn try_take(&self, now_ns: u64) -> bool {
        if self.unlimited {
            return true;
        }
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let elapsed_ns = now_ns.saturating_sub(s.last_ns);
        s.last_ns = now_ns;
        s.tokens = (s.tokens + self.rate_per_sec * elapsed_ns as f64 / 1e9).min(self.burst);
        if s.tokens >= 1.0 {
            s.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (diagnostics / tests).
    pub fn available(&self, now_ns: u64) -> f64 {
        if self.unlimited {
            return f64::INFINITY;
        }
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let elapsed_ns = now_ns.saturating_sub(s.last_ns);
        (s.tokens + self.rate_per_sec * elapsed_ns as f64 / 1e9).min(self.burst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn burst_then_refill() {
        let b = TokenBucket::new(10.0, 3.0, 0);
        // Burst of 3 drains immediately.
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0));
        // 10/s refill: after 100ms exactly one token is back.
        assert!(b.try_take(SEC / 10));
        assert!(!b.try_take(SEC / 10));
    }

    #[test]
    fn zero_quota_admits_nothing() {
        let b = TokenBucket::new(0.0, 0.0, 0);
        assert!(!b.try_take(0));
        assert!(!b.try_take(100 * SEC), "no refill at rate 0");
    }

    #[test]
    fn unlimited_admits_everything() {
        let b = TokenBucket::unlimited();
        for _ in 0..10_000 {
            assert!(b.try_take(0));
        }
    }

    #[test]
    fn refill_caps_at_burst() {
        let b = TokenBucket::new(1000.0, 2.0, 0);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        // A long idle period refills to burst (2), not more.
        assert!((b.available(60 * SEC) - 2.0).abs() < 1e-9);
        assert!(b.try_take(60 * SEC));
        assert!(b.try_take(60 * SEC));
        assert!(!b.try_take(60 * SEC));
    }

    #[test]
    fn time_going_backwards_is_harmless() {
        let b = TokenBucket::new(10.0, 1.0, SEC);
        assert!(b.try_take(SEC));
        // A stale timestamp must not panic or mint tokens.
        assert!(!b.try_take(0));
    }
}
