//! Per-shard circuit breakers.
//!
//! A shard that fails `failure_threshold` consecutive requests trips
//! `Closed → Open`: admission stops routing to it (traffic fails over to
//! healthy shards) for a backoff window. When the window elapses the
//! breaker moves to `HalfOpen` and admits exactly one tagged *probe*
//! request; a successful probe closes the breaker, a failed probe
//! re-opens it with the backoff doubled (capped at `open_max`). Only
//! probe outcomes drive `HalfOpen` transitions — stragglers admitted
//! before the trip that finish later cannot close the breaker by
//! accident.
//!
//! Transitions increment `serve.breaker.{open,half_open,close}` so the
//! chaos campaign can assert trips and recoveries actually happened.

use crate::metrics;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

const CLOSED: u8 = 0;
const OPEN: u8 = 1;
const HALF_OPEN: u8 = 2;

/// Breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker.
    pub failure_threshold: u32,
    /// First open window after a trip.
    pub open_base: Duration,
    /// Cap on the exponentially-growing open window.
    pub open_max: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 5,
            open_base: Duration::from_millis(10),
            open_max: Duration::from_millis(640),
        }
    }
}

/// Admission verdict for one request against one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Shard healthy; route normally.
    Yes,
    /// Shard is half-open and this request is the single probe; tag it.
    Probe,
    /// Shard is open (or the probe slot is taken); try another shard.
    No,
}

/// One shard's breaker state machine (all-atomic; no locks on the
/// admission path).
pub struct Breaker {
    state: AtomicU8,
    consecutive_failures: AtomicU32,
    opened_at_ns: AtomicU64,
    backoff_ns: AtomicU64,
    probe_claimed: AtomicBool,
    cfg: BreakerConfig,
}

impl Breaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Breaker {
        Breaker {
            state: AtomicU8::new(CLOSED),
            consecutive_failures: AtomicU32::new(0),
            opened_at_ns: AtomicU64::new(0),
            backoff_ns: AtomicU64::new(cfg.open_base.as_nanos() as u64),
            probe_claimed: AtomicBool::new(false),
            cfg,
        }
    }

    /// Whether the breaker currently blocks normal traffic.
    pub fn is_open(&self) -> bool {
        self.state.load(Ordering::Acquire) != CLOSED
    }

    /// Decide admission at monotonic time `now_ns`.
    pub fn admit(&self, now_ns: u64) -> Admit {
        match self.state.load(Ordering::Acquire) {
            CLOSED => Admit::Yes,
            OPEN => {
                let opened = self.opened_at_ns.load(Ordering::Acquire);
                let backoff = self.backoff_ns.load(Ordering::Acquire);
                if now_ns.saturating_sub(opened) < backoff {
                    return Admit::No;
                }
                // Backoff elapsed: move to half-open and claim the probe
                // in one race-free step — only the thread that wins the
                // state CAS may send the probe.
                if self
                    .state
                    .compare_exchange(OPEN, HALF_OPEN, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    self.probe_claimed.store(true, Ordering::Release);
                    metrics().breaker_half_open.inc();
                    Admit::Probe
                } else {
                    Admit::No
                }
            }
            _ => {
                // Half-open: the single probe slot may have been freed if
                // a previous probe could not be enqueued.
                if self
                    .probe_claimed
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    Admit::Probe
                } else {
                    Admit::No
                }
            }
        }
    }

    /// The probe could not actually be dispatched (queue full); free the
    /// slot so a later request can re-probe.
    pub fn probe_aborted(&self) {
        self.probe_claimed.store(false, Ordering::Release);
    }

    /// A request on this shard completed. `probe` is the tag handed out
    /// by [`Breaker::admit`].
    pub fn on_success(&self, probe: bool) {
        if probe {
            if self
                .state
                .compare_exchange(HALF_OPEN, CLOSED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.consecutive_failures.store(0, Ordering::Release);
                self.backoff_ns
                    .store(self.cfg.open_base.as_nanos() as u64, Ordering::Release);
                self.probe_claimed.store(false, Ordering::Release);
                metrics().breaker_close.inc();
            }
        } else if self.state.load(Ordering::Acquire) == CLOSED {
            self.consecutive_failures.store(0, Ordering::Release);
        }
    }

    /// A request on this shard failed at monotonic time `now_ns`.
    pub fn on_failure(&self, probe: bool, now_ns: u64) {
        if probe {
            // Failed probe: re-open with doubled backoff.
            if self
                .state
                .compare_exchange(HALF_OPEN, OPEN, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let cur = self.backoff_ns.load(Ordering::Acquire);
                let max = self.cfg.open_max.as_nanos() as u64;
                self.backoff_ns
                    .store(cur.saturating_mul(2).min(max), Ordering::Release);
                self.opened_at_ns.store(now_ns, Ordering::Release);
                self.probe_claimed.store(false, Ordering::Release);
                metrics().breaker_open.inc();
            }
            return;
        }
        if self.state.load(Ordering::Acquire) != CLOSED {
            // Straggler failure from before the trip; the breaker is
            // already reacting.
            return;
        }
        let fails = self.consecutive_failures.fetch_add(1, Ordering::AcqRel) + 1;
        if fails >= self.cfg.failure_threshold
            && self
                .state
                .compare_exchange(CLOSED, OPEN, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            self.opened_at_ns.store(now_ns, Ordering::Release);
            self.backoff_ns
                .store(self.cfg.open_base.as_nanos() as u64, Ordering::Release);
            self.probe_claimed.store(false, Ordering::Release);
            metrics().breaker_open.inc();
        }
    }

    /// Current state name (diagnostics).
    pub fn state_name(&self) -> &'static str {
        match self.state.load(Ordering::Acquire) {
            CLOSED => "closed",
            OPEN => "open",
            _ => "half_open",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_base: Duration::from_millis(10),
            open_max: Duration::from_millis(40),
        }
    }

    const MS: u64 = 1_000_000;

    #[test]
    fn trips_after_consecutive_failures_only() {
        let b = Breaker::new(cfg());
        b.on_failure(false, 0);
        b.on_failure(false, 0);
        b.on_success(false); // resets the streak
        b.on_failure(false, 0);
        b.on_failure(false, 0);
        assert!(!b.is_open());
        b.on_failure(false, 0);
        assert!(b.is_open());
        assert_eq!(b.state_name(), "open");
    }

    #[test]
    fn trip_half_open_close_cycle() {
        let b = Breaker::new(cfg());
        for _ in 0..3 {
            b.on_failure(false, 0);
        }
        assert_eq!(b.admit(5 * MS), Admit::No, "inside open window");
        assert_eq!(b.admit(11 * MS), Admit::Probe, "backoff elapsed");
        assert_eq!(b.admit(11 * MS), Admit::No, "single probe only");
        b.on_success(true);
        assert_eq!(b.state_name(), "closed");
        assert_eq!(b.admit(12 * MS), Admit::Yes);
    }

    #[test]
    fn failed_probe_doubles_backoff() {
        let b = Breaker::new(cfg());
        for _ in 0..3 {
            b.on_failure(false, 0);
        }
        assert_eq!(b.admit(11 * MS), Admit::Probe);
        b.on_failure(true, 11 * MS);
        // Backoff doubled to 20ms from the re-open point.
        assert_eq!(b.admit(11 * MS + 19 * MS), Admit::No);
        assert_eq!(b.admit(11 * MS + 21 * MS), Admit::Probe);
        b.on_failure(true, 32 * MS);
        // Doubled again to 40ms (the cap).
        assert_eq!(b.admit(32 * MS + 39 * MS), Admit::No);
        assert_eq!(b.admit(32 * MS + 41 * MS), Admit::Probe);
        b.on_failure(true, 73 * MS);
        // Capped at 40ms, not 80.
        assert_eq!(b.admit(73 * MS + 41 * MS), Admit::Probe);
    }

    #[test]
    fn straggler_success_cannot_close_breaker() {
        let b = Breaker::new(cfg());
        for _ in 0..3 {
            b.on_failure(false, 0);
        }
        // A non-probe request admitted before the trip completes late.
        b.on_success(false);
        assert!(b.is_open(), "only probe outcomes drive recovery");
    }

    #[test]
    fn aborted_probe_frees_the_slot() {
        let b = Breaker::new(cfg());
        for _ in 0..3 {
            b.on_failure(false, 0);
        }
        assert_eq!(b.admit(11 * MS), Admit::Probe);
        b.probe_aborted();
        assert_eq!(b.admit(11 * MS), Admit::Probe, "slot reusable after abort");
    }
}
