//! Shard workers: pinned threads that own a slice of the instance pool
//! and execute admitted requests.
//!
//! Each shard is one worker thread draining one bounded queue. The
//! worker re-checks the deadline at dispatch (a request that expired in
//! the queue is shed, never run — this is also how zero-deadline
//! requests die), claims the ticket's slot (losing the claim race to the
//! deadline wheel is fine), consults the `serve.dispatch` chaos site,
//! and then instantiates + invokes the kernel under `catch_unwind` so a
//! panicking request becomes a `Failed` outcome instead of killing the
//! shard.
//!
//! Graceful degradation under pool exhaustion: instantiation already
//! falls back from pool-hit to fresh-mmap inside `LinearMemory`; if even
//! the slow path fails with a resource errno (ENOMEM/EAGAIN/ENOSPC) the
//! request is load-shed with [`ShedReason::Capacity`] and the pool is
//! drained to return memory to the OS (`serve.pool.relief`) — the server
//! never aborts.
//!
//! Every outcome is fed to the shard's circuit breaker.

use crate::breaker::Breaker;
use crate::metrics;
use crate::ticket::{FailStage, Outcome, ShedReason, Slot, PENDING, RUNNING};
use crate::ServerInner;
use lb_core::{LoadError, MemoryError};
use lb_telemetry::clock::now_ns;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

/// Pin the calling thread to `cpu` (modulo the CPU count). Best-effort;
/// an error just leaves the thread unpinned.
fn pin_to_cpu(cpu: usize) {
    let n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let target = cpu % n;
    // SAFETY: standard affinity call with a properly zeroed set.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_SET(target, &mut set);
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set);
    }
}

/// Breaker/pool side effect an outcome implies (applied before the
/// outcome is published).
enum SideEffect {
    Success,
    Failure,
    Capacity,
}

/// What one execution attempt produced (before outcome accounting).
enum ExecResult {
    Done { run_ns: u64 },
    Fail { stage: FailStage, error: String },
    Capacity,
}

/// Whether a `LoadError` means "the machine is out of a resource" (shed
/// + relief) as opposed to "this request is broken" (fail + breaker).
fn is_capacity(err: &LoadError) -> bool {
    let io_err = match err {
        LoadError::Memory(MemoryError::Reserve(e)) => e,
        LoadError::Memory(MemoryError::Protect(e)) => e,
        LoadError::Memory(MemoryError::Uffd(e)) => e,
        _ => return false,
    };
    matches!(
        io_err.raw_os_error(),
        Some(libc::ENOMEM) | Some(libc::EAGAIN) | Some(libc::ENOSPC)
    )
}

fn execute(inner: &ServerInner, slot: &Slot) -> ExecResult {
    let kernel = &inner.kernels[slot.kernel];
    let started = now_ns();
    let mut instance = match kernel.module.instantiate(&inner.memory, &inner.linker) {
        Ok(i) => i,
        Err(e) if is_capacity(&e) => return ExecResult::Capacity,
        Err(e) => {
            return ExecResult::Fail {
                stage: FailStage::Instantiate,
                error: e.to_string(),
            }
        }
    };
    match instance.invoke(&kernel.entry, &kernel.args) {
        Ok(_) => ExecResult::Done {
            run_ns: now_ns().saturating_sub(started),
        },
        Err(trap) => ExecResult::Fail {
            stage: FailStage::Invoke,
            error: trap.to_string(),
        },
    }
}

fn run_one(inner: &ServerInner, breaker: &Breaker, slot: Arc<Slot>) {
    let now = now_ns();

    if inner.shed_queued.load(Ordering::Acquire) {
        slot.resolve_from(
            PENDING,
            Outcome::Shed {
                reason: ShedReason::Shutdown,
            },
            now,
        );
        return;
    }

    // Deadline re-check at dispatch: expired queued work (including
    // zero-deadline requests, whose deadline equals their admission
    // time) is shed before any instantiation happens.
    if now >= slot.deadline_ns {
        slot.resolve_from(
            PENDING,
            Outcome::Shed {
                reason: ShedReason::DeadlineDispatch,
            },
            now,
        );
        return;
    }

    if !slot.try_claim(now) {
        // The deadline wheel (or shutdown shedding) resolved it first.
        return;
    }

    // From here on this worker exclusively owns the RUNNING state (the
    // wheel only resolves PENDING slots), so the resolve below always
    // wins. Breaker feedback and side effects therefore happen *before*
    // publishing the outcome: a submitter whose wait() returns then
    // observes the breaker transition its failure caused.
    let (outcome, side_effect) = if let Some(e) = lb_chaos::inject("serve.dispatch") {
        (
            Outcome::Failed {
                stage: FailStage::Dispatch,
                error: format!("injected dispatch fault: {e}"),
            },
            SideEffect::Failure,
        )
    } else {
        match catch_unwind(AssertUnwindSafe(|| execute(inner, &slot))) {
            Ok(ExecResult::Done { run_ns }) => (
                Outcome::Completed {
                    queue_ns: slot.queue_ns(),
                    run_ns,
                },
                SideEffect::Success,
            ),
            Ok(ExecResult::Fail { stage, error }) => {
                (Outcome::Failed { stage, error }, SideEffect::Failure)
            }
            Ok(ExecResult::Capacity) => (
                Outcome::Shed {
                    reason: ShedReason::Capacity,
                },
                SideEffect::Capacity,
            ),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked".to_string());
                (
                    Outcome::Failed {
                        stage: FailStage::Worker,
                        error: msg,
                    },
                    SideEffect::Failure,
                )
            }
        }
    };

    let done = now_ns();
    let m = metrics();
    match side_effect {
        SideEffect::Success => {
            if let Outcome::Completed { queue_ns, run_ns } = outcome {
                m.queue_ns.record(queue_ns);
                m.run_ns.record(run_ns);
            }
            breaker.on_success(slot.probe);
        }
        SideEffect::Failure => breaker.on_failure(slot.probe, done),
        SideEffect::Capacity => {
            // Resource exhaustion: load-shed and give memory back.
            lb_core::pool::drain();
            m.pool_relief.inc();
            // Exhaustion is environmental, not a shard fault, but a
            // half-open probe that could not run must not close the
            // breaker; re-arm the probe slot instead.
            if slot.probe {
                breaker.probe_aborted();
            }
        }
    }
    slot.resolve_from(RUNNING, outcome, done);
}

/// The shard worker loop: drain the queue until the channel closes.
pub(crate) fn worker_loop(
    inner: Arc<ServerInner>,
    breaker: Arc<Breaker>,
    rx: Receiver<Arc<Slot>>,
    shard_idx: usize,
) {
    if inner.pin_workers {
        pin_to_cpu(shard_idx);
    }
    loop {
        match rx.recv_timeout(Duration::from_millis(5)) {
            Ok(slot) => run_one(&inner, &breaker, slot),
            Err(RecvTimeoutError::Timeout) => {
                if inner.stop_workers.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}
