//! lb-serve: a chaos-hardened multi-tenant instance server.
//!
//! The paper's scaling experiment (Fig. 6) shows bounds-check strategy
//! costs invert under concurrency; this crate drives the pooled ~5 µs
//! instantiation path like production traffic so those costs — and the
//! serving layer's own overload behaviour — can be measured instead of
//! assumed. Robustness is the headline:
//!
//! - **Admission control**: per-tenant token-bucket quotas
//!   ([`quota::TokenBucket`]) plus a global in-flight cap with bounded
//!   per-shard queues. Overload rejects with a typed [`Overload`] error;
//!   nothing queues unboundedly.
//! - **Deadlines**: every admitted request carries an absolute deadline
//!   enforced by a hashed timing wheel ([`deadline::DeadlineWheel`]).
//!   Requests that expire while queued are shed before dispatch;
//!   in-flight runs get a watchdog flag rather than unsafe preemption.
//! - **Circuit breakers**: each shard has a [`breaker::Breaker`] that
//!   trips on consecutive failures, fails traffic over to healthy
//!   shards, and recovers through exponential-backoff half-open probing.
//! - **Graceful degradation**: pool miss → fresh-mmap slow path →
//!   load-shed with [`ShedReason::Capacity`] plus a pool drain for
//!   relief. The server never aborts under resource exhaustion or
//!   injected faults.
//!
//! The core invariant, asserted by the chaos-under-load campaign: every
//! *admitted* request resolves to **exactly one** of
//! Completed / Failed / Shed. [`ticket::Slot`]'s CAS state machine makes
//! double completion structurally impossible and counts any attempt in
//! `serve.double_complete`.
//!
//! Environment knobs (see README): `LB_SERVE` (shard count),
//! `LB_TENANTS` (tenant count), `LB_DEADLINE_MS` (default per-request
//! deadline; `0` disables). Chaos sites `serve.dispatch` and
//! `serve.queue_full` make the serving layer a first-class fault-
//! injection target alongside the mmap/mprotect/uffd sites.

pub mod breaker;
pub mod deadline;
pub mod quota;
mod shard;
pub mod ticket;

pub use breaker::{Admit, Breaker, BreakerConfig};
pub use deadline::DeadlineWheel;
pub use quota::TokenBucket;
pub use ticket::{FailStage, Outcome, ShedReason, Ticket};

use lb_core::{Linker, LoadedModule, MemoryConfig};
use lb_telemetry::clock::now_ns;
use lb_telemetry::{counter, histogram, Counter, Histogram};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use ticket::Slot;

/// Sentinel for "no deadline".
const NO_DEADLINE: u64 = u64::MAX;

/// Typed admission rejection: the request was **not** admitted and owns
/// no ticket. Counted under `serve.rejected` (+ per-reason counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overload {
    /// Global in-flight cap reached or every candidate shard queue was
    /// full; retry later.
    QueueFull,
    /// The tenant's token bucket is empty.
    QuotaExceeded,
    /// Every shard's circuit breaker refused the request.
    BreakerOpen,
    /// The server is shutting down.
    ShuttingDown,
    /// Unknown tenant id.
    UnknownTenant,
    /// Unknown kernel index.
    UnknownKernel,
}

impl Overload {
    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            Overload::QueueFull => "queue_full",
            Overload::QuotaExceeded => "quota",
            Overload::BreakerOpen => "breaker_open",
            Overload::ShuttingDown => "shutdown",
            Overload::UnknownTenant => "unknown_tenant",
            Overload::UnknownKernel => "unknown_kernel",
        }
    }
}

impl std::fmt::Display for Overload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Overload::QueueFull => write!(f, "overloaded: queues full"),
            Overload::QuotaExceeded => write!(f, "tenant quota exceeded"),
            Overload::BreakerOpen => write!(f, "all shards circuit-broken"),
            Overload::ShuttingDown => write!(f, "server shutting down"),
            Overload::UnknownTenant => write!(f, "unknown tenant"),
            Overload::UnknownKernel => write!(f, "unknown kernel"),
        }
    }
}

impl std::error::Error for Overload {}

/// Per-tenant quota configuration.
#[derive(Debug, Clone, Copy)]
pub enum TenantQuota {
    /// No quota: every request passes admission's quota gate.
    Unlimited,
    /// Token bucket: sustained `rate_per_sec` with capacity `burst`.
    Limited {
        /// Sustained requests per second.
        rate_per_sec: f64,
        /// Burst capacity in tokens.
        burst: f64,
    },
}

/// A kernel the server can invoke: a loaded module plus the export to
/// call on each request.
pub struct KernelSpec {
    /// Report name.
    pub name: String,
    /// The loaded (validated/compiled) module, shared across shards.
    pub module: Arc<dyn LoadedModule>,
    /// Exported function invoked per request.
    pub entry: String,
    /// Arguments passed to the entry point.
    pub args: Vec<lb_wasm::Value>,
}

/// Server tuning. [`ServeConfig::from_env`] reads the `LB_SERVE`,
/// `LB_TENANTS`, and `LB_DEADLINE_MS` knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards (each a pinned thread + bounded queue).
    pub shards: usize,
    /// Bounded queue depth per shard.
    pub queue_depth: usize,
    /// Global cap on admitted-but-unresolved requests.
    pub max_inflight: usize,
    /// Per-tenant quotas; the vector length is the tenant count.
    pub tenants: Vec<TenantQuota>,
    /// Default deadline applied when `submit` passes `None`.
    /// `Duration::ZERO` disables deadlines by default.
    pub default_deadline: Duration,
    /// Watchdog grace for in-flight runs past their deadline.
    pub grace: Duration,
    /// Deadline-wheel tick granularity.
    pub tick: Duration,
    /// Circuit-breaker tuning (shared by all shards).
    pub breaker: BreakerConfig,
    /// Pin each shard worker to a CPU (`shard index % cpu count`).
    pub pin_workers: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            shards: 2,
            queue_depth: 64,
            max_inflight: 256,
            tenants: vec![TenantQuota::Unlimited; 4],
            default_deadline: Duration::from_millis(1000),
            grace: Duration::from_millis(50),
            tick: Duration::from_millis(1),
            breaker: BreakerConfig::default(),
            pin_workers: false,
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by `LB_SERVE` (shards), `LB_TENANTS`
    /// (unlimited-quota tenant count), and `LB_DEADLINE_MS` (default
    /// deadline; `0` disables).
    pub fn from_env() -> ServeConfig {
        let mut cfg = ServeConfig::default();
        if let Some(n) = env_usize("LB_SERVE") {
            cfg.shards = n.max(1);
        }
        if let Some(n) = env_usize("LB_TENANTS") {
            cfg.tenants = vec![TenantQuota::Unlimited; n.max(1)];
        }
        if let Some(ms) = env_usize("LB_DEADLINE_MS") {
            cfg.default_deadline = Duration::from_millis(ms as u64);
        }
        cfg
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Telemetry handles, registered once (counter registration takes a
/// lock; the hot path must not).
pub(crate) struct Metrics {
    pub(crate) admitted: Counter,
    pub(crate) completed: Counter,
    pub(crate) failed: Counter,
    pub(crate) shed: Counter,
    pub(crate) rejected: Counter,
    pub(crate) rejected_queue_full: Counter,
    pub(crate) rejected_quota: Counter,
    pub(crate) rejected_breaker: Counter,
    pub(crate) rejected_shutdown: Counter,
    pub(crate) rejected_unknown: Counter,
    pub(crate) breaker_open: Counter,
    pub(crate) breaker_half_open: Counter,
    pub(crate) breaker_close: Counter,
    pub(crate) watchdog_overrun: Counter,
    pub(crate) double_complete: Counter,
    pub(crate) pool_relief: Counter,
    pub(crate) latency_ns: Histogram,
    pub(crate) queue_ns: Histogram,
    pub(crate) run_ns: Histogram,
}

pub(crate) fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| Metrics {
        admitted: counter("serve.admitted"),
        completed: counter("serve.completed"),
        failed: counter("serve.failed"),
        shed: counter("serve.shed"),
        rejected: counter("serve.rejected"),
        rejected_queue_full: counter("serve.rejected.queue_full"),
        rejected_quota: counter("serve.rejected.quota"),
        rejected_breaker: counter("serve.rejected.breaker_open"),
        rejected_shutdown: counter("serve.rejected.shutdown"),
        rejected_unknown: counter("serve.rejected.unknown"),
        breaker_open: counter("serve.breaker.open"),
        breaker_half_open: counter("serve.breaker.half_open"),
        breaker_close: counter("serve.breaker.close"),
        watchdog_overrun: counter("serve.watchdog.overrun"),
        double_complete: counter("serve.double_complete"),
        pool_relief: counter("serve.pool.relief"),
        latency_ns: histogram("serve.latency_ns"),
        queue_ns: histogram("serve.queue_ns"),
        run_ns: histogram("serve.run_ns"),
    })
}

struct ShardHandle {
    tx: SyncSender<Arc<Slot>>,
    breaker: Arc<Breaker>,
}

/// State shared between the submit path, shard workers, and the wheel.
pub(crate) struct ServerInner {
    pub(crate) kernels: Vec<KernelSpec>,
    pub(crate) memory: MemoryConfig,
    pub(crate) linker: Linker,
    pub(crate) pin_workers: bool,
    /// Set during shed-mode shutdown: workers resolve queued slots as
    /// `Shed { Shutdown }` instead of executing them.
    pub(crate) shed_queued: AtomicBool,
    /// Set once all in-flight work has resolved; workers exit on their
    /// next queue-poll timeout.
    pub(crate) stop_workers: AtomicBool,
    accepting: AtomicBool,
    inflight: Arc<AtomicUsize>,
    max_inflight: usize,
    tenants: Vec<TokenBucket>,
    shards: Vec<ShardHandle>,
    wheel: Arc<DeadlineWheel>,
    default_deadline_ns: u64,
}

/// The multi-tenant instance server. See the crate docs for the model.
pub struct Server {
    inner: Arc<ServerInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
    ticker: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Start the server: spawn one worker per shard and the deadline
    /// ticker.
    pub fn start(
        config: ServeConfig,
        kernels: Vec<KernelSpec>,
        memory: MemoryConfig,
        linker: Linker,
    ) -> Server {
        metrics(); // register counters before any worker races the lock
        let now = now_ns();
        let tenants = config
            .tenants
            .iter()
            .map(|q| match *q {
                TenantQuota::Unlimited => TokenBucket::unlimited(),
                TenantQuota::Limited {
                    rate_per_sec,
                    burst,
                } => TokenBucket::new(rate_per_sec, burst, now),
            })
            .collect();
        let wheel = DeadlineWheel::new(
            config.tick.as_nanos() as u64,
            config.grace.as_nanos() as u64,
            now,
        );
        let default_deadline_ns = if config.default_deadline.is_zero() {
            NO_DEADLINE
        } else {
            config.default_deadline.as_nanos() as u64
        };

        let nshards = config.shards.max(1);
        let mut shards = Vec::with_capacity(nshards);
        let mut receivers = Vec::with_capacity(nshards);
        for _ in 0..nshards {
            let (tx, rx) = sync_channel(config.queue_depth.max(1));
            shards.push(ShardHandle {
                tx,
                breaker: Arc::new(Breaker::new(config.breaker)),
            });
            receivers.push(rx);
        }

        let inner = Arc::new(ServerInner {
            kernels,
            memory,
            linker,
            pin_workers: config.pin_workers,
            shed_queued: AtomicBool::new(false),
            stop_workers: AtomicBool::new(false),
            accepting: AtomicBool::new(true),
            inflight: Arc::new(AtomicUsize::new(0)),
            max_inflight: config.max_inflight.max(1),
            tenants,
            shards,
            wheel: Arc::clone(&wheel),
            default_deadline_ns,
        });

        let mut workers = Vec::with_capacity(nshards);
        for (idx, rx) in receivers.into_iter().enumerate() {
            let inner_cl = Arc::clone(&inner);
            let breaker = Arc::clone(&inner.shards[idx].breaker);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("lb-serve-shard-{idx}"))
                    .spawn(move || shard::worker_loop(inner_cl, breaker, rx, idx))
                    .unwrap_or_else(|e| panic!("spawn shard worker: {e}")),
            );
        }
        let ticker = {
            let wheel = Arc::clone(&wheel);
            Some(
                std::thread::Builder::new()
                    .name("lb-serve-ticker".to_string())
                    .spawn(move || wheel.run_ticker())
                    .unwrap_or_else(|e| panic!("spawn deadline ticker: {e}")),
            )
        };

        Server {
            inner,
            workers,
            ticker,
        }
    }

    /// Submit "invoke kernel `kernel` as tenant `tenant`". On admission
    /// the returned [`Ticket`] resolves to exactly one [`Outcome`]; a
    /// rejected request owns nothing and is safe to retry.
    ///
    /// `deadline` overrides the configured default; `Some(ZERO)` is the
    /// always-expired edge case (admitted, then shed, never run).
    ///
    /// # Errors
    /// A typed [`Overload`] rejection.
    pub fn submit(
        &self,
        tenant: u32,
        kernel: usize,
        deadline: Option<Duration>,
    ) -> Result<Ticket, Overload> {
        let inner = &self.inner;
        let m = metrics();
        if !inner.accepting.load(Ordering::SeqCst) {
            return Err(reject(m, Overload::ShuttingDown));
        }
        if kernel >= inner.kernels.len() {
            return Err(reject(m, Overload::UnknownKernel));
        }
        let Some(bucket) = inner.tenants.get(tenant as usize) else {
            return Err(reject(m, Overload::UnknownTenant));
        };
        let now = now_ns();
        if !bucket.try_take(now) {
            return Err(reject(m, Overload::QuotaExceeded));
        }

        // Claim an in-flight slot *before* re-checking the shutdown flag:
        // shutdown sets the flag and then waits for inflight to reach
        // zero, so this order guarantees an admitted request is always
        // waited for (no lost tickets).
        if inner.inflight.fetch_add(1, Ordering::SeqCst) >= inner.max_inflight {
            inner.inflight.fetch_sub(1, Ordering::SeqCst);
            return Err(reject(m, Overload::QueueFull));
        }
        if !inner.accepting.load(Ordering::SeqCst) {
            inner.inflight.fetch_sub(1, Ordering::SeqCst);
            return Err(reject(m, Overload::ShuttingDown));
        }

        // Forced-overload chaos knob: drills the rejection path without
        // needing real queue pressure.
        if lb_chaos::inject("serve.queue_full").is_some() {
            inner.inflight.fetch_sub(1, Ordering::SeqCst);
            return Err(reject(m, Overload::QueueFull));
        }

        let deadline_ns = match deadline {
            Some(d) => now.saturating_add(d.as_nanos() as u64),
            None if inner.default_deadline_ns == NO_DEADLINE => NO_DEADLINE,
            None => now.saturating_add(inner.default_deadline_ns),
        };

        // Tenant-affinity routing: a tenant's traffic lands on its home
        // shard so a noisy tenant saturates one queue, not all of them.
        // Failover walks the other shards only when a breaker refuses;
        // a *full* queue rejects immediately — spilling a noisy tenant's
        // backlog onto healthy shards would defeat the isolation.
        let nshards = inner.shards.len();
        let home = (tenant as usize)
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(kernel)
            % nshards;
        for i in 0..nshards {
            let idx = (home + i) % nshards;
            let shard = &inner.shards[idx];
            let probe = match shard.breaker.admit(now) {
                Admit::Yes => false,
                Admit::Probe => true,
                Admit::No => continue,
            };
            let slot = Slot::new(
                tenant,
                kernel,
                idx,
                probe,
                now,
                deadline_ns,
                Arc::clone(&inner.inflight),
            );
            match shard.tx.try_send(Arc::clone(&slot)) {
                Ok(()) => {
                    if deadline_ns != NO_DEADLINE {
                        inner.wheel.register(Arc::clone(&slot));
                    }
                    m.admitted.inc();
                    return Ok(Ticket { slot });
                }
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    if probe {
                        shard.breaker.probe_aborted();
                    }
                    inner.inflight.fetch_sub(1, Ordering::SeqCst);
                    return Err(reject(m, Overload::QueueFull));
                }
            }
        }
        inner.inflight.fetch_sub(1, Ordering::SeqCst);
        Err(reject(m, Overload::BreakerOpen))
    }

    /// Admitted-but-unresolved requests right now.
    pub fn inflight(&self) -> usize {
        self.inner.inflight.load(Ordering::SeqCst)
    }

    /// The deadline wheel (tests drive it deterministically).
    pub fn wheel(&self) -> &Arc<DeadlineWheel> {
        &self.inner.wheel
    }

    /// Breaker state name for `shard` (diagnostics).
    pub fn breaker_state(&self, shard: usize) -> &'static str {
        self.inner.shards[shard].breaker.state_name()
    }

    /// Graceful shutdown: stop admitting, let queued and in-flight work
    /// resolve, then stop the workers and ticker.
    pub fn shutdown(self) {
        self.shutdown_inner(false)
    }

    /// Shedding shutdown: stop admitting and resolve queued requests as
    /// `Shed { Shutdown }` instead of executing them (in-flight runs
    /// still finish).
    pub fn shutdown_now(self) {
        self.shutdown_inner(true)
    }

    fn shutdown_inner(mut self, shed: bool) {
        self.inner.accepting.store(false, Ordering::SeqCst);
        if shed {
            self.inner.shed_queued.store(true, Ordering::SeqCst);
        }
        // Every admitted request holds an inflight token until its slot
        // resolves; wait for all of them (workers drain queues, the
        // wheel sheds expirations).
        while self.inner.inflight.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        self.inner.wheel.stop_ticker();
        // Queues are empty (inflight hit zero); workers exit on their
        // next poll timeout.
        self.inner.stop_workers.store(true, Ordering::SeqCst);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(t) = self.ticker.take() {
            let _ = t.join();
        }
    }
}

fn reject(m: &Metrics, why: Overload) -> Overload {
    m.rejected.inc();
    match why {
        Overload::QueueFull => m.rejected_queue_full.inc(),
        Overload::QuotaExceeded => m.rejected_quota.inc(),
        Overload::BreakerOpen => m.rejected_breaker.inc(),
        Overload::ShuttingDown => m.rejected_shutdown.inc(),
        Overload::UnknownTenant | Overload::UnknownKernel => m.rejected_unknown.inc(),
    }
    why
}
