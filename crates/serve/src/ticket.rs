//! Request tickets: the exactly-once completion contract.
//!
//! Every *admitted* request owns one [`Slot`], a tiny state machine
//! (`Pending → Running → Resolved`, with a `Pending → Resolved` shortcut
//! for shedding) whose only terminal transition is a compare-and-swap.
//! Exactly one resolver can win that CAS, so an admitted request resolves
//! to exactly one [`Outcome`] — the invariant the chaos-under-load
//! campaign asserts (`admitted == completed + failed + shed`, no losses,
//! no double completions). A losing resolve attempt is counted in
//! `serve.double_complete`, which healthy runs hold at zero.
//!
//! All accounting (`serve.completed` / `serve.failed` / `serve.shed`, the
//! `serve.latency_ns` histogram, the in-flight gauge decrement) lives in
//! the single winning resolve path, so the counters cannot drift from the
//! state machine.

use crate::metrics;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Why an admitted request was shed instead of executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The deadline expired while the request sat in a shard queue; the
    /// deadline wheel resolved it before any worker touched it.
    DeadlineQueued,
    /// The deadline had already expired when a worker dequeued the
    /// request (covers zero-deadline requests, which always shed here or
    /// on the wheel — never run).
    DeadlineDispatch,
    /// Resource exhaustion on the instantiation slow path (fresh mmap
    /// failed with ENOMEM-class errno): the request is load-shed and the
    /// pool drained to relieve pressure, never an abort.
    Capacity,
    /// The server was shutting down; queued work is shed, not executed.
    Shutdown,
}

impl ShedReason {
    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::DeadlineQueued => "deadline_queued",
            ShedReason::DeadlineDispatch => "deadline_dispatch",
            ShedReason::Capacity => "capacity",
            ShedReason::Shutdown => "shutdown",
        }
    }
}

/// The pipeline stage at which an admitted request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailStage {
    /// The dispatch step itself (includes injected `serve.dispatch`
    /// faults).
    Dispatch,
    /// Instantiating the kernel's linear memory / instance.
    Instantiate,
    /// Invoking one of the kernel's entry points (a wasm trap).
    Invoke,
    /// The worker panicked while executing the request; the panic is
    /// caught and converted so the shard survives.
    Worker,
}

impl FailStage {
    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            FailStage::Dispatch => "dispatch",
            FailStage::Instantiate => "instantiate",
            FailStage::Invoke => "invoke",
            FailStage::Worker => "worker",
        }
    }
}

/// The terminal outcome of an admitted request. Every admitted request
/// resolves to exactly one of these.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The kernel ran to completion.
    Completed {
        /// Time spent queued (admission → worker claim), ns.
        queue_ns: u64,
        /// Time spent executing (instantiate + entry points), ns.
        run_ns: u64,
    },
    /// The request was dispatched but did not complete.
    Failed {
        /// Where it failed.
        stage: FailStage,
        /// Human-readable error.
        error: String,
    },
    /// The request was shed without (full) execution.
    Shed {
        /// Why it was shed.
        reason: ShedReason,
    },
}

impl Outcome {
    /// Whether this outcome is [`Outcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed { .. })
    }

    /// Report name of the outcome kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Outcome::Completed { .. } => "completed",
            Outcome::Failed { .. } => "failed",
            Outcome::Shed { .. } => "shed",
        }
    }
}

/// Slot states. `PENDING` = admitted, queued; `RUNNING` = claimed by a
/// worker; `RESOLVED` = outcome stored.
pub(crate) const PENDING: u8 = 0;
pub(crate) const RUNNING: u8 = 1;
pub(crate) const RESOLVED: u8 = 2;

/// The shared state behind a [`Ticket`]: one admitted request.
pub(crate) struct Slot {
    state: AtomicU8,
    outcome: Mutex<Option<Outcome>>,
    resolved_cv: Condvar,
    /// Submitting tenant.
    pub(crate) tenant: u32,
    /// Kernel index into the server's module table.
    pub(crate) kernel: usize,
    /// Shard the request was routed to.
    pub(crate) shard: usize,
    /// Whether this request is a circuit-breaker half-open probe.
    pub(crate) probe: bool,
    /// Admission timestamp (monotonic ns).
    pub(crate) admitted_ns: u64,
    /// Absolute deadline (monotonic ns).
    pub(crate) deadline_ns: u64,
    /// Set once by the deadline wheel when an in-flight run overruns its
    /// deadline + grace (the watchdog); read by diagnostics.
    pub(crate) watchdog_fired: AtomicU8,
    dispatched_ns: AtomicU64,
    /// Global in-flight gauge, decremented exactly once on resolution.
    inflight: Arc<AtomicUsize>,
}

impl Slot {
    pub(crate) fn new(
        tenant: u32,
        kernel: usize,
        shard: usize,
        probe: bool,
        admitted_ns: u64,
        deadline_ns: u64,
        inflight: Arc<AtomicUsize>,
    ) -> Arc<Slot> {
        Arc::new(Slot {
            state: AtomicU8::new(PENDING),
            outcome: Mutex::new(None),
            resolved_cv: Condvar::new(),
            tenant,
            kernel,
            shard,
            probe,
            admitted_ns,
            deadline_ns,
            watchdog_fired: AtomicU8::new(0),
            dispatched_ns: AtomicU64::new(0),
            inflight,
        })
    }

    /// Current state (for the wheel's triage).
    pub(crate) fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    /// Worker claim: `Pending → Running`. Returns false if the wheel (or
    /// shutdown shedding) already resolved the request.
    pub(crate) fn try_claim(&self, now_ns: u64) -> bool {
        let claimed = self
            .state
            .compare_exchange(PENDING, RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if claimed {
            self.dispatched_ns.store(now_ns, Ordering::Relaxed);
        }
        claimed
    }

    /// Queue latency for a claimed slot, ns.
    pub(crate) fn queue_ns(&self) -> u64 {
        self.dispatched_ns
            .load(Ordering::Relaxed)
            .saturating_sub(self.admitted_ns)
    }

    /// Resolve from an expected state (`PENDING` for shed-before-claim,
    /// `RUNNING` for a worker finishing). The single winning transition
    /// records all accounting; a lost race increments
    /// `serve.double_complete` and changes nothing else.
    pub(crate) fn resolve_from(&self, expected: u8, outcome: Outcome, now_ns: u64) -> bool {
        if self
            .state
            .compare_exchange(expected, RESOLVED, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            metrics().double_complete.inc();
            return false;
        }
        let m = metrics();
        match &outcome {
            Outcome::Completed { .. } => m.completed.inc(),
            Outcome::Failed { .. } => m.failed.inc(),
            Outcome::Shed { .. } => m.shed.inc(),
        }
        m.latency_ns.record(now_ns.saturating_sub(self.admitted_ns));
        // Decrement the gauge *before* publishing the outcome: anyone
        // whose wait() returns is then guaranteed to observe the
        // decrement (shutdown and test assertions rely on this).
        self.inflight.fetch_sub(1, Ordering::SeqCst);
        {
            let mut slot = self.outcome.lock().unwrap_or_else(|e| e.into_inner());
            *slot = Some(outcome);
        }
        self.resolved_cv.notify_all();
        true
    }
}

/// A handle to one admitted request; resolves to exactly one [`Outcome`].
pub struct Ticket {
    pub(crate) slot: Arc<Slot>,
}

impl Ticket {
    /// The tenant that submitted the request.
    pub fn tenant(&self) -> u32 {
        self.slot.tenant
    }

    /// The kernel index the request targets.
    pub fn kernel(&self) -> usize {
        self.slot.kernel
    }

    /// The shard the request was routed to.
    pub fn shard(&self) -> usize {
        self.slot.shard
    }

    /// The outcome, if already resolved (non-blocking).
    pub fn try_outcome(&self) -> Option<Outcome> {
        if self.slot.state() != RESOLVED {
            return None;
        }
        self.slot
            .outcome
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Block until the request resolves.
    pub fn wait(&self) -> Outcome {
        let mut guard = self.slot.outcome.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(out) = guard.as_ref() {
                return out.clone();
            }
            guard = self
                .slot
                .resolved_cv
                .wait(guard)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Block until the request resolves or `timeout` elapses.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Outcome> {
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.slot.outcome.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(out) = guard.as_ref() {
                return Some(out.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _timed_out) = self
                .slot
                .resolved_cv
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
    }

    /// Whether the in-flight run overran its deadline and was flagged by
    /// the watchdog.
    pub fn watchdog_fired(&self) -> bool {
        self.slot.watchdog_fired.load(Ordering::Relaxed) != 0
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("tenant", &self.slot.tenant)
            .field("kernel", &self.slot.kernel)
            .field("shard", &self.slot.shard)
            .field("resolved", &(self.slot.state() == RESOLVED))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot() -> Arc<Slot> {
        let inflight = Arc::new(AtomicUsize::new(1));
        Slot::new(0, 0, 0, false, 100, 1_000, inflight)
    }

    #[test]
    fn resolve_is_exactly_once() {
        let s = slot();
        assert!(s.resolve_from(
            PENDING,
            Outcome::Shed {
                reason: ShedReason::DeadlineQueued
            },
            200,
        ));
        // The losing path: a worker that raced the wheel.
        assert!(!s.resolve_from(
            RUNNING,
            Outcome::Completed {
                queue_ns: 0,
                run_ns: 0
            },
            300,
        ));
        let t = Ticket { slot: s };
        match t.wait() {
            Outcome::Shed { reason } => assert_eq!(reason, ShedReason::DeadlineQueued),
            other => panic!("first resolution must win, got {other:?}"),
        }
    }

    #[test]
    fn claim_blocks_pending_resolution() {
        let s = slot();
        assert!(s.try_claim(150));
        assert!(!s.try_claim(151), "claim is exclusive");
        // The wheel can no longer shed a running request.
        assert!(!s.resolve_from(
            PENDING,
            Outcome::Shed {
                reason: ShedReason::DeadlineQueued
            },
            200,
        ));
        assert!(s.resolve_from(
            RUNNING,
            Outcome::Completed {
                queue_ns: s.queue_ns(),
                run_ns: 7
            },
            300,
        ));
        assert_eq!(s.queue_ns(), 50);
    }

    #[test]
    fn inflight_gauge_decrements_once() {
        let inflight = Arc::new(AtomicUsize::new(3));
        let s = Slot::new(0, 0, 0, false, 0, 1, Arc::clone(&inflight));
        s.resolve_from(
            PENDING,
            Outcome::Shed {
                reason: ShedReason::Shutdown,
            },
            1,
        );
        s.resolve_from(
            PENDING,
            Outcome::Shed {
                reason: ShedReason::Shutdown,
            },
            2,
        );
        assert_eq!(inflight.load(Ordering::SeqCst), 2, "one decrement only");
    }

    #[test]
    fn wait_timeout_times_out_then_resolves() {
        let s = slot();
        let t = Ticket {
            slot: Arc::clone(&s),
        };
        assert!(t.wait_timeout(Duration::from_millis(10)).is_none());
        s.resolve_from(
            PENDING,
            Outcome::Failed {
                stage: FailStage::Dispatch,
                error: "x".into(),
            },
            500,
        );
        match t.wait_timeout(Duration::from_secs(1)) {
            Some(Outcome::Failed { stage, .. }) => assert_eq!(stage, FailStage::Dispatch),
            other => panic!("expected failure, got {other:?}"),
        }
    }
}
