//! Deadline wheel: hashed timing wheel that sheds expired queued
//! requests and watchdogs in-flight overruns.
//!
//! Admitted requests are registered with an absolute deadline. The wheel
//! is advanced either by a ticker thread (production) or by explicit
//! [`DeadlineWheel::advance`] calls with a synthetic clock (tests). When
//! a request's deadline tick fires:
//!
//! - still **Pending** (queued) → it is shed with
//!   [`ShedReason::DeadlineQueued`] before any worker touches it;
//! - **Running** → the run is *not* interrupted (a wasm invoke cannot be
//!   safely preempted mid-store); instead the entry is re-armed as a
//!   watchdog at `deadline + grace`. If the run is still going when the
//!   watchdog fires, `serve.watchdog.overrun` is incremented and the
//!   ticket flagged, so overruns are visible even though the shard thread
//!   finishes the work;
//! - **Resolved** → the entry is dropped.
//!
//! The wheel is 512 hashed buckets at ~1ms granularity; entries further
//! out than one revolution simply stay in their bucket until their tick
//! comes up (each entry stores its absolute tick).

use crate::metrics;
use crate::ticket::{Outcome, ShedReason, Slot, PENDING, RESOLVED, RUNNING};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const WHEEL_SLOTS: usize = 512;

struct Entry {
    slot: Arc<Slot>,
    /// Absolute tick at which this entry fires.
    tick: u64,
    /// Whether this is the re-armed watchdog pass.
    watchdog: bool,
}

/// The deadline wheel shared between admission, the ticker thread, and
/// tests.
pub struct DeadlineWheel {
    buckets: Vec<Mutex<Vec<Entry>>>,
    /// Last fully-processed tick.
    last_tick: Mutex<u64>,
    tick_ns: u64,
    grace_ns: u64,
    stop: AtomicBool,
}

impl DeadlineWheel {
    /// A wheel with `tick_ns` granularity and a `grace_ns` watchdog
    /// allowance for in-flight runs.
    pub fn new(tick_ns: u64, grace_ns: u64, now_ns: u64) -> Arc<DeadlineWheel> {
        let mut buckets = Vec::with_capacity(WHEEL_SLOTS);
        for _ in 0..WHEEL_SLOTS {
            buckets.push(Mutex::new(Vec::new()));
        }
        Arc::new(DeadlineWheel {
            buckets,
            last_tick: Mutex::new(now_ns / tick_ns.max(1)),
            tick_ns: tick_ns.max(1),
            grace_ns,
            stop: AtomicBool::new(false),
        })
    }

    /// Register an admitted request. The entry fires on the first tick
    /// strictly after its deadline.
    pub(crate) fn register(&self, slot: Arc<Slot>) {
        let deadline_tick = slot.deadline_ns / self.tick_ns + 1;
        let last = *self.last_tick.lock().unwrap_or_else(|e| e.into_inner());
        let tick = deadline_tick.max(last + 1);
        self.insert(Entry {
            slot,
            tick,
            watchdog: false,
        });
    }

    fn insert(&self, entry: Entry) {
        let bucket = &self.buckets[(entry.tick as usize) % WHEEL_SLOTS];
        bucket.lock().unwrap_or_else(|e| e.into_inner()).push(entry);
    }

    /// Advance the wheel to `now_ns`, firing every tick in between.
    /// Deterministic: tests call this with a synthetic clock.
    pub fn advance(&self, now_ns: u64) {
        let target = now_ns / self.tick_ns;
        loop {
            let tick = {
                let mut last = self.last_tick.lock().unwrap_or_else(|e| e.into_inner());
                if *last >= target {
                    return;
                }
                *last += 1;
                *last
            };
            let fired = {
                let mut bucket = self.buckets[(tick as usize) % WHEEL_SLOTS]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                let mut fired = Vec::new();
                bucket.retain_mut(|e| {
                    if e.tick <= tick {
                        fired.push(Entry {
                            slot: Arc::clone(&e.slot),
                            tick: e.tick,
                            watchdog: e.watchdog,
                        });
                        false
                    } else {
                        true
                    }
                });
                fired
            };
            for entry in fired {
                self.fire(entry, now_ns);
            }
        }
    }

    fn fire(&self, entry: Entry, now_ns: u64) {
        match entry.slot.state() {
            RESOLVED => {}
            RUNNING => {
                if entry.watchdog {
                    // Still running past deadline + grace: flag it.
                    entry.slot.watchdog_fired.store(1, Ordering::Relaxed);
                    metrics().watchdog_overrun.inc();
                } else {
                    // Re-arm for the watchdog pass.
                    let wd_tick =
                        (entry.slot.deadline_ns.saturating_add(self.grace_ns) / self.tick_ns + 1)
                            .max(entry.tick + 1);
                    self.insert(Entry {
                        slot: entry.slot,
                        tick: wd_tick,
                        watchdog: true,
                    });
                }
            }
            _ => {
                // Pending past its deadline: shed before dispatch. The
                // CAS inside resolve_from loses harmlessly if a worker
                // claims concurrently.
                entry.slot.resolve_from(
                    PENDING,
                    Outcome::Shed {
                        reason: ShedReason::DeadlineQueued,
                    },
                    now_ns,
                );
            }
        }
    }

    /// Run the production ticker until [`DeadlineWheel::stop_ticker`].
    pub fn run_ticker(self: &Arc<DeadlineWheel>) {
        while !self.stop.load(Ordering::Acquire) {
            self.advance(lb_telemetry::clock::now_ns());
            std::thread::sleep(std::time::Duration::from_nanos(self.tick_ns));
        }
    }

    /// Ask the ticker thread to exit.
    pub fn stop_ticker(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Entries currently parked in the wheel (tests / diagnostics).
    pub fn len(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| b.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether the wheel is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    const MS: u64 = 1_000_000;

    fn slot(deadline_ns: u64) -> Arc<Slot> {
        Slot::new(
            0,
            0,
            0,
            false,
            0,
            deadline_ns,
            Arc::new(AtomicUsize::new(1)),
        )
    }

    #[test]
    fn queued_request_sheds_after_deadline() {
        let wheel = DeadlineWheel::new(MS, 10 * MS, 0);
        let s = slot(5 * MS);
        wheel.register(Arc::clone(&s));
        wheel.advance(4 * MS);
        assert_eq!(s.state(), PENDING, "not expired yet");
        wheel.advance(7 * MS);
        assert_eq!(s.state(), RESOLVED);
        let t = crate::Ticket { slot: s };
        match t.wait() {
            Outcome::Shed { reason } => assert_eq!(reason, ShedReason::DeadlineQueued),
            other => panic!("expected shed, got {other:?}"),
        }
    }

    #[test]
    fn running_request_gets_watchdog_not_shed() {
        let wheel = DeadlineWheel::new(MS, 10 * MS, 0);
        let s = slot(5 * MS);
        wheel.register(Arc::clone(&s));
        assert!(s.try_claim(1 * MS));
        wheel.advance(7 * MS);
        assert_eq!(s.state(), RUNNING, "running work is never interrupted");
        assert_eq!(s.watchdog_fired.load(Ordering::Relaxed), 0);
        // Past deadline + grace: watchdog fires.
        wheel.advance(20 * MS);
        assert_eq!(s.watchdog_fired.load(Ordering::Relaxed), 1);
        assert!(wheel.is_empty());
    }

    #[test]
    fn resolved_entries_fall_out() {
        let wheel = DeadlineWheel::new(MS, 10 * MS, 0);
        let s = slot(5 * MS);
        wheel.register(Arc::clone(&s));
        assert!(s.try_claim(1 * MS));
        assert!(s.resolve_from(
            RUNNING,
            Outcome::Completed {
                queue_ns: 0,
                run_ns: 1
            },
            2 * MS,
        ));
        wheel.advance(7 * MS);
        assert!(wheel.is_empty());
        assert_eq!(s.watchdog_fired.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn zero_deadline_sheds_on_first_tick() {
        let wheel = DeadlineWheel::new(MS, 10 * MS, 0);
        let s = slot(0);
        wheel.register(Arc::clone(&s));
        wheel.advance(MS);
        assert_eq!(s.state(), RESOLVED);
    }

    #[test]
    fn far_future_deadline_survives_a_full_revolution() {
        // 600 ticks out — more than the 512 bucket count, so the entry's
        // bucket is visited once before its tick comes up.
        let wheel = DeadlineWheel::new(MS, 10 * MS, 0);
        let s = slot(600 * MS);
        wheel.register(Arc::clone(&s));
        wheel.advance(550 * MS);
        assert_eq!(s.state(), PENDING, "not expired at tick 550");
        wheel.advance(601 * MS);
        assert_eq!(s.state(), RESOLVED);
    }
}
