//! A minimal, in-tree replacement for the `libc` crate.
//!
//! The build environment for this workspace is fully offline — no crates.io
//! registry is reachable — so external dependencies cannot be fetched. The
//! runtime only needs a narrow slice of the POSIX/Linux surface (memory
//! mapping, signal handling, userfaultfd, poll, CPU affinity), and only on
//! Linux x86_64 with glibc, so we declare exactly that slice here. Dependent
//! crates rename this package back to `libc` in their manifests
//! (`libc = { path = "../sys", package = "lb-sys" }`), keeping every call
//! site unchanged.
//!
//! Struct layouts below follow the glibc x86_64 ABI; they are checked by the
//! layout tests at the bottom of this file.

#![warn(missing_docs)]
#![allow(non_camel_case_types)]
#![cfg(all(target_os = "linux", target_arch = "x86_64"))]

pub use std::ffi::c_void;

/// C `int`.
pub type c_int = i32;
/// C `unsigned int`.
pub type c_uint = u32;
/// C `long` (64-bit on x86_64).
pub type c_long = i64;
/// C `unsigned long`.
pub type c_ulong = u64;
/// C `short`.
pub type c_short = i16;
/// C `unsigned short`.
pub type c_ushort = u16;
/// C `char` (signed on x86_64 Linux).
pub type c_char = i8;
/// C `size_t`.
pub type size_t = usize;
/// C `ssize_t`.
pub type ssize_t = isize;
/// C `off_t`.
pub type off_t = i64;
/// C `pid_t`.
pub type pid_t = i32;
/// General-purpose register value in `mcontext_t` (`greg_t`).
pub type greg_t = i64;
/// Count of `pollfd` entries (`nfds_t`).
pub type nfds_t = c_ulong;

/// glibc `sigset_t`: 1024 bits.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigset_t {
    __val: [u64; 16],
}

/// glibc `sigaction` (x86_64): handler, mask, flags, restorer.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigaction {
    /// Handler address (`SIG_DFL`, `SIG_IGN`, or a function pointer cast
    /// to `usize`; interpretation depends on `SA_SIGINFO` in `sa_flags`).
    pub sa_sigaction: usize,
    /// Signals blocked during handler execution.
    pub sa_mask: sigset_t,
    /// `SA_*` flags.
    pub sa_flags: c_int,
    /// Obsolete restorer field (set by glibc, never by callers).
    pub sa_restorer: Option<unsafe extern "C" fn()>,
}

/// Alternate signal stack descriptor (`stack_t`).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct stack_t {
    /// Stack base.
    pub ss_sp: *mut c_void,
    /// `SS_DISABLE` / `SS_ONSTACK` flags.
    pub ss_flags: c_int,
    /// Stack size in bytes.
    pub ss_size: size_t,
}

/// glibc `siginfo_t`: 128 bytes; only the leading fields and the fault
/// address arm of the union are exposed.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct siginfo_t {
    /// Signal number.
    pub si_signo: c_int,
    /// Errno value associated with the signal.
    pub si_errno: c_int,
    /// Signal-specific code (e.g. `SEGV_MAPERR`).
    pub si_code: c_int,
    _pad0: c_int,
    // Union area. For SIGSEGV/SIGBUS the first pointer-sized field is the
    // fault address.
    _sifields: [u64; 14],
}

impl siginfo_t {
    /// The faulting address, valid for SIGSEGV/SIGBUS/SIGILL/SIGFPE.
    ///
    /// # Safety
    /// Only meaningful when the signal actually carries an address.
    pub unsafe fn si_addr(&self) -> *mut c_void {
        self._sifields[0] as *mut c_void
    }
}

/// glibc x86_64 `mcontext_t`: the general-purpose register array plus
/// opaque FP state.
#[repr(C)]
pub struct mcontext_t {
    /// General-purpose registers, indexed by the `REG_*` constants.
    pub gregs: [greg_t; 23],
    /// FP state pointer (into `__fpregs_mem` of the enclosing ucontext).
    pub fpregs: *mut c_void,
    __reserved1: [u64; 8],
}

/// glibc x86_64 `ucontext_t`.
#[repr(C)]
pub struct ucontext_t {
    /// Context flags.
    pub uc_flags: c_ulong,
    /// Link to the context to resume when this one returns.
    pub uc_link: *mut ucontext_t,
    /// Stack in use when the signal was delivered.
    pub uc_stack: stack_t,
    /// Machine context (registers) at the point of delivery.
    pub uc_mcontext: mcontext_t,
    /// Blocked-signal mask to restore.
    pub uc_sigmask: sigset_t,
    __fpregs_mem: [u64; 64],
    __ssp: [u64; 4],
}

/// CPU affinity mask (1024 bits).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct cpu_set_t {
    __bits: [u64; 16],
}

/// Set CPU `cpu` in the affinity mask (the `CPU_SET` macro).
#[allow(non_snake_case)]
pub fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < 1024 {
        set.__bits[cpu / 64] |= 1u64 << (cpu % 64);
    }
}

/// Elapsed time as seconds + microseconds (`struct timeval`).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct timeval {
    /// Whole seconds.
    pub tv_sec: c_long,
    /// Microseconds (0..1_000_000).
    pub tv_usec: c_long,
}

/// Interval timer specification (`struct itimerval`).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct itimerval {
    /// Reload value applied after each expiry (zero = one-shot).
    pub it_interval: timeval,
    /// Time until the next expiry (zero disarms the timer).
    pub it_value: timeval,
}

/// Poll descriptor.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct pollfd {
    /// File descriptor to poll.
    pub fd: c_int,
    /// Requested events.
    pub events: c_short,
    /// Returned events.
    pub revents: c_short,
}

/// Page may not be accessed.
pub const PROT_NONE: c_int = 0;
/// Page may be read.
pub const PROT_READ: c_int = 1;
/// Page may be written.
pub const PROT_WRITE: c_int = 2;
/// Page may be executed.
pub const PROT_EXEC: c_int = 4;

/// Private copy-on-write mapping.
pub const MAP_PRIVATE: c_int = 0x02;
/// Mapping not backed by a file.
pub const MAP_ANONYMOUS: c_int = 0x20;
/// Do not reserve swap space for the mapping.
pub const MAP_NORESERVE: c_int = 0x4000;
/// `mmap` failure sentinel.
pub const MAP_FAILED: *mut c_void = !0 as *mut c_void;

/// Free the given pages' backing store (`madvise`).
pub const MADV_DONTNEED: c_int = 4;

/// `sysconf` name for the page size.
pub const _SC_PAGESIZE: c_int = 30;

/// Illegal instruction.
pub const SIGILL: c_int = 4;
/// Bus error (bad memory access).
pub const SIGBUS: c_int = 7;
/// Floating-point exception (includes integer divide-by-zero).
pub const SIGFPE: c_int = 8;
/// User-defined signal 1.
pub const SIGUSR1: c_int = 10;
/// Invalid memory reference.
pub const SIGSEGV: c_int = 11;
/// Profiling timer expired (`ITIMER_PROF`).
pub const SIGPROF: c_int = 27;

/// Interval timer counting process CPU time (user + system); expiry
/// delivers `SIGPROF`. See `setitimer(2)`.
pub const ITIMER_PROF: c_int = 2;

/// Handler takes three arguments (`sa_sigaction` form).
pub const SA_SIGINFO: c_int = 4;
/// Deliver on the alternate signal stack.
pub const SA_ONSTACK: c_int = 0x0800_0000;
/// Restart interruptible syscalls after the handler returns.
pub const SA_RESTART: c_int = 0x1000_0000;
/// Default signal disposition.
pub const SIG_DFL: usize = 0;
/// Ignore the signal.
pub const SIG_IGN: usize = 1;
/// Disable the alternate signal stack.
pub const SS_DISABLE: c_int = 2;

/// File or page already exists / is populated.
pub const EEXIST: c_int = 17;
/// Resource temporarily unavailable.
pub const EAGAIN: c_int = 11;
/// Interrupted system call.
pub const EINTR: c_int = 4;
/// Out of memory (mmap/populate failure under pressure).
pub const ENOMEM: c_int = 12;
/// No space left on device (tmpfs-backed mappings).
pub const ENOSPC: c_int = 28;

/// Close the descriptor on `execve`.
pub const O_CLOEXEC: c_int = 0o2000000;
/// Non-blocking reads: return `EAGAIN` instead of sleeping.
pub const O_NONBLOCK: c_int = 0o4000;

/// There is data to read.
pub const POLLIN: c_short = 0x1;

/// `userfaultfd(2)` syscall number (x86_64).
#[allow(non_upper_case_globals)] // matches the libc crate's spelling
pub const SYS_userfaultfd: c_long = 323;

/// Index of RAX in `mcontext_t::gregs`.
pub const REG_RAX: c_int = 13;
/// Index of RSP in `mcontext_t::gregs`.
pub const REG_RSP: c_int = 15;
/// Index of RIP in `mcontext_t::gregs`.
pub const REG_RIP: c_int = 16;

extern "C" {
    /// Map pages of memory. See `mmap(2)`.
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    /// Unmap pages of memory. See `munmap(2)`.
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    /// Change page protections. See `mprotect(2)`.
    pub fn mprotect(addr: *mut c_void, len: size_t, prot: c_int) -> c_int;
    /// Give advice about memory use. See `madvise(2)`.
    pub fn madvise(addr: *mut c_void, len: size_t, advice: c_int) -> c_int;
    /// Query a system configuration value. See `sysconf(3)`.
    pub fn sysconf(name: c_int) -> c_long;
    /// Indirect system call. See `syscall(2)`.
    pub fn syscall(num: c_long, ...) -> c_long;
    /// Device control. See `ioctl(2)`.
    pub fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
    /// Close a file descriptor. See `close(2)`.
    pub fn close(fd: c_int) -> c_int;
    /// Read from a file descriptor. See `read(2)`.
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    /// Wait for events on file descriptors. See `poll(2)`.
    pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    /// Examine or change a signal action. See `sigaction(2)`.
    pub fn sigaction(sig: c_int, act: *const sigaction, old: *mut sigaction) -> c_int;
    /// Initialize an empty signal set. See `sigemptyset(3)`.
    pub fn sigemptyset(set: *mut sigset_t) -> c_int;
    /// Set or query the alternate signal stack. See `sigaltstack(2)`.
    pub fn sigaltstack(ss: *const stack_t, old: *mut stack_t) -> c_int;
    /// Address of the thread-local `errno`.
    pub fn __errno_location() -> *mut c_int;
    /// Set a thread's CPU affinity mask. See `sched_setaffinity(2)`.
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, mask: *const cpu_set_t) -> c_int;
    /// Send a signal to the calling process. See `raise(3)`.
    pub fn raise(sig: c_int) -> c_int;
    /// Arm or disarm an interval timer. See `setitimer(2)`.
    pub fn setitimer(which: c_int, new: *const itimerval, old: *mut itimerval) -> c_int;
    /// Query an interval timer. See `getitimer(2)`.
    pub fn getitimer(which: c_int, cur: *mut itimerval) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::mem::size_of;

    // Layout checks against the glibc x86_64 ABI. Sizes come from
    // <bits/sigaction.h>, <sys/ucontext.h>, <bits/types/siginfo_t.h>.
    #[test]
    fn abi_sizes_match_glibc() {
        assert_eq!(size_of::<sigset_t>(), 128);
        assert_eq!(size_of::<sigaction>(), 152);
        assert_eq!(size_of::<siginfo_t>(), 128);
        assert_eq!(size_of::<stack_t>(), 24);
        assert_eq!(size_of::<mcontext_t>(), 256);
        assert_eq!(size_of::<ucontext_t>(), 968);
        assert_eq!(size_of::<cpu_set_t>(), 128);
        assert_eq!(size_of::<pollfd>(), 8);
        assert_eq!(size_of::<timeval>(), 16);
        assert_eq!(size_of::<itimerval>(), 32);
    }

    #[test]
    fn getitimer_reads_disarmed_prof_timer() {
        let mut cur = itimerval {
            it_interval: timeval {
                tv_sec: 1,
                tv_usec: 1,
            },
            it_value: timeval {
                tv_sec: 1,
                tv_usec: 1,
            },
        };
        // SAFETY: cur is a valid out-pointer; ITIMER_PROF always exists.
        let rc = unsafe { getitimer(ITIMER_PROF, &mut cur) };
        assert_eq!(rc, 0);
        // The test harness never arms ITIMER_PROF, so it reads back zero.
        assert_eq!(cur.it_value.tv_sec, 0);
    }

    #[test]
    fn ucontext_mcontext_offset() {
        // uc_flags(8) + uc_link(8) + uc_stack(24) puts uc_mcontext at 40,
        // so gregs[REG_RIP] sits at byte 40 + 16*8 = 168 as glibc expects.
        assert_eq!(std::mem::offset_of!(ucontext_t, uc_mcontext), 40);
        assert_eq!(std::mem::offset_of!(ucontext_t, uc_sigmask), 40 + 256);
    }

    #[test]
    fn sysconf_page_size_works() {
        let ps = unsafe { sysconf(_SC_PAGESIZE) };
        assert!(ps == 4096 || ps > 0);
    }

    #[test]
    fn mmap_roundtrip_works() {
        unsafe {
            let p = mmap(
                std::ptr::null_mut(),
                4096,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            );
            assert_ne!(p, MAP_FAILED);
            *(p as *mut u8) = 7;
            assert_eq!(*(p as *mut u8), 7);
            assert_eq!(mprotect(p, 4096, PROT_READ), 0);
            assert_eq!(munmap(p, 4096), 0);
        }
    }

    #[test]
    fn cpu_set_sets_bits() {
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        CPU_SET(0, &mut set);
        CPU_SET(65, &mut set);
        assert_eq!(set.__bits[0], 1);
        assert_eq!(set.__bits[1], 2);
    }
}
