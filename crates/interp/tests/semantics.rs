//! Interpreter semantics tests: control flow, arithmetic edge cases,
//! memory instructions under every bounds-checking strategy, indirect
//! calls, and host imports.

use lb_core::exec::{Engine, Linker};
use lb_core::{BoundsStrategy, MemoryConfig, TrapKind};
use lb_interp::InterpEngine;
use lb_wasm::builder::{FuncId, ModuleBuilder};
use lb_wasm::instr::{Instr, MemArg};
use lb_wasm::types::{BlockType, FuncType, Mutability, ValType};
use lb_wasm::{Module, Value};

fn run1(module: &Module, func: &str, args: &[Value]) -> Option<Value> {
    try_run(module, func, args).unwrap()
}

fn try_run(module: &Module, func: &str, args: &[Value]) -> Result<Option<Value>, lb_core::Trap> {
    let engine = InterpEngine::new();
    let loaded = engine.load(module).expect("load");
    let config = MemoryConfig::new(BoundsStrategy::Trap, 0, 64).with_reserve(1 << 24);
    let mut inst = loaded.instantiate(&config, &Linker::new()).expect("inst");
    inst.invoke(func, args)
}

fn i32_module(name: &str, params: usize, body: Vec<Instr>) -> Module {
    let mut mb = ModuleBuilder::new();
    let f = mb.begin_func(
        name,
        FuncType::new(vec![ValType::I32; params], vec![ValType::I32]),
    );
    mb.func_mut(f).emit_all(body);
    mb.export_func(name, f);
    mb.finish()
}

#[test]
fn fib_recursive() {
    // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
    let mut mb = ModuleBuilder::new();
    let fib = mb.begin_func("fib", FuncType::new(vec![ValType::I32], vec![ValType::I32]));
    {
        let mut b = mb.func_mut(fib);
        let n = b.param(0);
        b.get(n).i32_const(2).emit(Instr::I32LtS);
        b.if_else(
            BlockType::Value(ValType::I32),
            |b| {
                b.get(n);
            },
            |b| {
                b.get(n).i32_const(1).emit(Instr::I32Sub).call(fib);
                b.get(n).i32_const(2).emit(Instr::I32Sub).call(fib);
                b.emit(Instr::I32Add);
            },
        );
    }
    mb.export_func("fib", fib);
    let m = mb.finish();
    assert_eq!(run1(&m, "fib", &[Value::I32(10)]), Some(Value::I32(55)));
    assert_eq!(run1(&m, "fib", &[Value::I32(20)]), Some(Value::I32(6765)));
}

#[test]
fn loop_sum_1_to_n() {
    // sum = 0; i = n; loop { sum += i; i -= 1; br_if i != 0 } return sum
    let mut mb = ModuleBuilder::new();
    let f = mb.begin_func("sum", FuncType::new(vec![ValType::I32], vec![ValType::I32]));
    {
        let mut b = mb.func_mut(f);
        let n = b.param(0);
        let sum = b.local(ValType::I32);
        b.loop_(BlockType::Empty, |b| {
            b.get(sum).get(n).emit(Instr::I32Add).set(sum);
            b.get(n).i32_const(1).emit(Instr::I32Sub).tee(n);
            b.br_if(0);
        });
        b.get(sum);
    }
    mb.export_func("sum", f);
    let m = mb.finish();
    assert_eq!(run1(&m, "sum", &[Value::I32(100)]), Some(Value::I32(5050)));
}

#[test]
fn division_edge_cases() {
    let div = i32_module(
        "div",
        2,
        vec![Instr::LocalGet(0), Instr::LocalGet(1), Instr::I32DivS],
    );
    assert_eq!(
        run1(&div, "div", &[Value::I32(-7), Value::I32(2)]),
        Some(Value::I32(-3))
    );
    let e = try_run(&div, "div", &[Value::I32(1), Value::I32(0)]).unwrap_err();
    assert_eq!(*e.kind(), TrapKind::IntegerDivByZero);
    let e = try_run(&div, "div", &[Value::I32(i32::MIN), Value::I32(-1)]).unwrap_err();
    assert_eq!(*e.kind(), TrapKind::IntegerOverflow);

    let rem = i32_module(
        "rem",
        2,
        vec![Instr::LocalGet(0), Instr::LocalGet(1), Instr::I32RemS],
    );
    assert_eq!(
        run1(&rem, "rem", &[Value::I32(i32::MIN), Value::I32(-1)]),
        Some(Value::I32(0))
    );
}

#[test]
fn unreachable_traps() {
    let m = i32_module("f", 0, vec![Instr::Unreachable]);
    let e = try_run(&m, "f", &[]).unwrap_err();
    assert_eq!(*e.kind(), TrapKind::Unreachable);
}

#[test]
fn br_table_selects() {
    // br_table mapping 0→10, 1→20, default→99
    let mut mb = ModuleBuilder::new();
    let f = mb.begin_func("sel", FuncType::new(vec![ValType::I32], vec![ValType::I32]));
    {
        let mut b = mb.func_mut(f);
        let n = b.param(0);
        b.block(BlockType::Empty, |b| {
            b.block(BlockType::Empty, |b| {
                b.block(BlockType::Empty, |b| {
                    b.get(n);
                    b.br_table(vec![0, 1], 2);
                });
                b.i32_const(10);
                b.emit(Instr::Return);
            });
            b.i32_const(20);
            b.emit(Instr::Return);
        });
        b.i32_const(99);
    }
    mb.export_func("sel", f);
    let m = mb.finish();
    assert_eq!(run1(&m, "sel", &[Value::I32(0)]), Some(Value::I32(10)));
    assert_eq!(run1(&m, "sel", &[Value::I32(1)]), Some(Value::I32(20)));
    assert_eq!(run1(&m, "sel", &[Value::I32(7)]), Some(Value::I32(99)));
}

#[test]
fn select_and_globals() {
    let mut mb = ModuleBuilder::new();
    let g = mb.global(Mutability::Var, Value::I32(5));
    let f = mb.begin_func("f", FuncType::new(vec![ValType::I32], vec![ValType::I32]));
    {
        let mut b = mb.func_mut(f);
        let p = b.param(0);
        // g = select(p, g*2, g+1); return g
        b.emit(Instr::GlobalGet(g.0))
            .i32_const(2)
            .emit(Instr::I32Mul);
        b.emit(Instr::GlobalGet(g.0))
            .i32_const(1)
            .emit(Instr::I32Add);
        b.get(p);
        b.emit(Instr::Select);
        b.emit(Instr::GlobalSet(g.0));
        b.emit(Instr::GlobalGet(g.0));
    }
    mb.export_func("f", f);
    let m = mb.finish();
    assert_eq!(run1(&m, "f", &[Value::I32(1)]), Some(Value::I32(10)));
    assert_eq!(run1(&m, "f", &[Value::I32(0)]), Some(Value::I32(6)));
}

#[test]
fn call_indirect_dispatch_and_traps() {
    let mut mb = ModuleBuilder::new();
    mb.table(3);
    let ty = FuncType::new(vec![ValType::I32], vec![ValType::I32]);
    let double = mb.begin_func("double", ty.clone());
    {
        let mut b = mb.func_mut(double);
        let p = b.param(0);
        b.get(p).get(p).emit(Instr::I32Add);
    }
    let square = mb.begin_func("square", ty.clone());
    {
        let mut b = mb.func_mut(square);
        let p = b.param(0);
        b.get(p).get(p).emit(Instr::I32Mul);
    }
    // A function with a different signature, to trigger the sig check.
    let wrong = mb.begin_func("wrong", FuncType::new(vec![], vec![]));
    {
        mb.func_mut(wrong).emit(Instr::Nop);
    }
    let disp = mb.begin_func(
        "disp",
        FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]),
    );
    {
        let mut b = mb.func_mut(disp);
        let x = b.param(1);
        let which = b.param(0);
        b.get(x).get(which);
        // type index of `ty` is what the two i32→i32 funcs use
        b.emit(Instr::CallIndirect(0));
    }
    mb.elems(0, vec![double, square, wrong]);
    mb.export_func("disp", disp);
    let m = mb.finish();

    assert_eq!(
        run1(&m, "disp", &[Value::I32(0), Value::I32(21)]),
        Some(Value::I32(42))
    );
    assert_eq!(
        run1(&m, "disp", &[Value::I32(1), Value::I32(7)]),
        Some(Value::I32(49))
    );
    let e = try_run(&m, "disp", &[Value::I32(2), Value::I32(7)]).unwrap_err();
    assert_eq!(*e.kind(), TrapKind::IndirectCallTypeMismatch);
    let e = try_run(&m, "disp", &[Value::I32(9), Value::I32(7)]).unwrap_err();
    assert_eq!(*e.kind(), TrapKind::TableOutOfBounds);
}

#[test]
fn memory_ops_under_every_strategy() {
    // store f64s, load them back summed; also sub-width int ops.
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(4));
    let f = mb.begin_func("go", FuncType::new(vec![], vec![ValType::F64]));
    {
        let mut b = mb.func_mut(f);
        b.i32_const(8).f64_const(1.25).f64_store(0);
        b.i32_const(16).f64_const(2.5).f64_store(0);
        // i32.store8 / load8_u roundtrip
        b.i32_const(100)
            .i32_const(0x1FF)
            .emit(Instr::I32Store8(MemArg::offset(0)));
        b.i32_const(8).f64_load(0);
        b.i32_const(16).f64_load(0);
        b.emit(Instr::F64Add);
        b.i32_const(100).emit(Instr::I32Load8U(MemArg::offset(0)));
        b.emit(Instr::F64ConvertI32U);
        b.emit(Instr::F64Add); // 1.25 + 2.5 + 255
    }
    mb.export_func("go", f);
    let m = mb.finish();

    for s in BoundsStrategy::ALL {
        if s == BoundsStrategy::Uffd && !lb_core::uffd::sigbus_mode_available() {
            continue;
        }
        let engine = InterpEngine::new();
        let loaded = engine.load(&m).unwrap();
        let config = MemoryConfig::new(s, 1, 4).with_reserve(1 << 24);
        let mut inst = loaded.instantiate(&config, &Linker::new()).unwrap();
        let out = inst.invoke("go", &[]).unwrap();
        assert_eq!(out, Some(Value::F64(258.75)), "strategy {s}");
    }
}

#[test]
fn oob_traps_under_checking_strategies() {
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(2));
    let f = mb.begin_func(
        "poke",
        FuncType::new(vec![ValType::I32], vec![ValType::I32]),
    );
    {
        let mut b = mb.func_mut(f);
        b.get(b.param(0)).i32_load(0);
    }
    mb.export_func("poke", f);
    let m = mb.finish();

    let mut strategies = vec![BoundsStrategy::Trap, BoundsStrategy::Mprotect];
    if lb_core::uffd::sigbus_mode_available() {
        strategies.push(BoundsStrategy::Uffd);
    }
    for s in strategies {
        let engine = InterpEngine::new();
        let loaded = engine.load(&m).unwrap();
        let config = MemoryConfig::new(s, 1, 2).with_reserve(1 << 24);
        let mut inst = loaded.instantiate(&config, &Linker::new()).unwrap();
        // in bounds
        assert_eq!(
            inst.invoke("poke", &[Value::I32(100)]).unwrap(),
            Some(Value::I32(0)),
            "strategy {s}"
        );
        // out of bounds (beyond the 1 committed page)
        let e = inst.invoke("poke", &[Value::I32(65536 + 10)]).unwrap_err();
        assert_eq!(*e.kind(), TrapKind::OutOfBounds, "strategy {s}");
        // instance still alive after the trap
        assert!(inst.invoke("poke", &[Value::I32(0)]).is_ok());
    }
}

#[test]
fn memory_grow_and_size() {
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(3));
    let f = mb.begin_func(
        "grow",
        FuncType::new(vec![ValType::I32], vec![ValType::I32]),
    );
    {
        let mut b = mb.func_mut(f);
        b.get(b.param(0)).emit(Instr::MemoryGrow);
        // return old_pages * 100 + new_size
        b.i32_const(100).emit(Instr::I32Mul);
        b.emit(Instr::MemorySize).emit(Instr::I32Add);
    }
    mb.export_func("grow", f);
    let m = mb.finish();

    let engine = InterpEngine::new();
    let loaded = engine.load(&m).unwrap();
    let config = MemoryConfig::new(BoundsStrategy::Mprotect, 1, 3).with_reserve(1 << 24);
    let mut inst = loaded.instantiate(&config, &Linker::new()).unwrap();
    // grow 1: old=1, size=2 → 102
    assert_eq!(
        inst.invoke("grow", &[Value::I32(1)]).unwrap(),
        Some(Value::I32(102))
    );
    // grow 5: fails → -1*100 + 2 = -98
    assert_eq!(
        inst.invoke("grow", &[Value::I32(5)]).unwrap(),
        Some(Value::I32(-98))
    );
}

#[test]
fn host_imports_are_callable() {
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Arc;

    let mut mb = ModuleBuilder::new();
    let tick = mb.import_func(
        "env",
        "tick",
        FuncType::new(vec![ValType::I64], vec![ValType::I64]),
    );
    let f = mb.begin_func("f", FuncType::new(vec![ValType::I64], vec![ValType::I64]));
    {
        let mut b = mb.func_mut(f);
        b.get(b.param(0)).call(tick).call(tick);
    }
    mb.export_func("f", f);
    let m = mb.finish();

    let total = Arc::new(AtomicI64::new(0));
    let t2 = Arc::clone(&total);
    let mut linker = Linker::new();
    linker.func("env", "tick", move |_, args| {
        let v = args[0].as_i64().unwrap();
        t2.fetch_add(v, Ordering::Relaxed);
        Ok(Some(Value::I64(v + 1)))
    });

    let engine = InterpEngine::new();
    let loaded = engine.load(&m).unwrap();
    let config = MemoryConfig::new(BoundsStrategy::Trap, 0, 0);
    let mut inst = loaded.instantiate(&config, &linker).unwrap();
    let out = inst.invoke("f", &[Value::I64(10)]).unwrap();
    assert_eq!(out, Some(Value::I64(12)));
    assert_eq!(total.load(Ordering::Relaxed), 21); // 10 + 11
}

#[test]
fn missing_import_is_load_error() {
    let mut mb = ModuleBuilder::new();
    mb.import_func("env", "nope", FuncType::new(vec![], vec![]));
    let f = mb.begin_func("f", FuncType::new(vec![], vec![]));
    mb.func_mut(f).emit(Instr::Nop);
    mb.export_func("f", f);
    let m = mb.finish();

    let engine = InterpEngine::new();
    let loaded = engine.load(&m).unwrap();
    let r = loaded.instantiate(
        &MemoryConfig::new(BoundsStrategy::Trap, 0, 0),
        &Linker::new(),
    );
    assert!(matches!(r, Err(lb_core::LoadError::MissingImport(..))));
}

#[test]
fn deep_recursion_overflows_cleanly() {
    // f(n) = n == 0 ? 0 : f(n - 1)
    let mut mb = ModuleBuilder::new();
    let f = mb.begin_func("f", FuncType::new(vec![ValType::I32], vec![ValType::I32]));
    {
        let mut b = mb.func_mut(f);
        let n = b.param(0);
        b.get(n);
        b.if_else(
            BlockType::Value(ValType::I32),
            |b| {
                b.get(n).i32_const(1).emit(Instr::I32Sub).call(f);
            },
            |b| {
                b.i32_const(0);
            },
        );
    }
    mb.export_func("f", f);
    let m = mb.finish();
    // Shallow is fine.
    assert_eq!(run1(&m, "f", &[Value::I32(100)]), Some(Value::I32(0)));
    // Deep overflows with a trap, not a crash.
    let e = try_run(&m, "f", &[Value::I32(1_000_000)]).unwrap_err();
    assert_eq!(*e.kind(), TrapKind::StackOverflow);
}

#[test]
fn float_semantics() {
    let mut mb = ModuleBuilder::new();
    let f = mb.begin_func(
        "minmax",
        FuncType::new(vec![ValType::F64, ValType::F64], vec![ValType::F64]),
    );
    {
        let mut b = mb.func_mut(f);
        let (p0, p1) = (b.param(0), b.param(1));
        b.get(p0).get(p1).emit(Instr::F64Min);
        b.get(p0).get(p1).emit(Instr::F64Max);
        b.emit(Instr::F64Add);
    }
    mb.export_func("minmax", f);
    let m = mb.finish();
    assert_eq!(
        run1(&m, "minmax", &[Value::F64(3.0), Value::F64(-1.0)]),
        Some(Value::F64(2.0))
    );
    // NaN propagates.
    let out = run1(&m, "minmax", &[Value::F64(f64::NAN), Value::F64(1.0)]).unwrap();
    assert!(out.as_f64().unwrap().is_nan());
}

#[test]
fn trunc_conversion_traps() {
    let mut mb = ModuleBuilder::new();
    let f = mb.begin_func("t", FuncType::new(vec![ValType::F64], vec![ValType::I32]));
    {
        let mut b = mb.func_mut(f);
        b.get(b.param(0)).emit(Instr::I32TruncF64S);
    }
    mb.export_func("t", f);
    let m = mb.finish();
    assert_eq!(run1(&m, "t", &[Value::F64(-3.99)]), Some(Value::I32(-3)));
    let e = try_run(&m, "t", &[Value::F64(1e10)]).unwrap_err();
    assert_eq!(*e.kind(), TrapKind::InvalidConversion);
    let e = try_run(&m, "t", &[Value::F64(f64::NAN)]).unwrap_err();
    assert_eq!(*e.kind(), TrapKind::InvalidConversion);
}

#[test]
fn data_segments_initialize_memory() {
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(1));
    mb.data(32, vec![0x11, 0x22, 0x33, 0x44]);
    let f = mb.begin_func("read", FuncType::new(vec![], vec![ValType::I32]));
    {
        let mut b = mb.func_mut(f);
        b.i32_const(32).i32_load(0);
    }
    mb.export_func("read", f);
    let m = mb.finish();
    assert_eq!(run1(&m, "read", &[]), Some(Value::I32(0x44332211)));
}

#[test]
fn start_function_runs() {
    let mut mb = ModuleBuilder::new();
    let g = mb.global(Mutability::Var, Value::I32(0));
    let init = mb.begin_func("init", FuncType::new(vec![], vec![]));
    {
        let mut b = mb.func_mut(init);
        b.i32_const(77).emit(Instr::GlobalSet(g.0));
    }
    let read = mb.begin_func("read", FuncType::new(vec![], vec![ValType::I32]));
    {
        mb.func_mut(read).emit(Instr::GlobalGet(g.0));
    }
    mb.start(init);
    mb.export_func("read", read);
    let m = mb.finish();
    assert_eq!(run1(&m, "read", &[]), Some(Value::I32(77)));
}

#[test]
fn module_survives_binary_roundtrip_and_still_runs() {
    let mut mb = ModuleBuilder::new();
    let f = mb.begin_func("f", FuncType::new(vec![ValType::I64], vec![ValType::I64]));
    {
        let mut b = mb.func_mut(f);
        b.get(b.param(0)).emit(Instr::I64Popcnt);
    }
    mb.export_func("f", f);
    let m = mb.finish();
    let bytes = lb_wasm::binary::encode(&m);
    let m2 = lb_wasm::binary::decode(&bytes).unwrap();
    assert_eq!(
        run1(&m2, "f", &[Value::I64(0xFF00FF)]),
        Some(Value::I64(16))
    );
}

/// Wrong argument types are a host error, not UB.
#[test]
fn invoke_validates_arguments() {
    let m = i32_module("f", 1, vec![Instr::LocalGet(0)]);
    let e = try_run(&m, "f", &[Value::F64(1.0)]).unwrap_err();
    assert!(matches!(e.kind(), TrapKind::Host(_)));
    let e = try_run(&m, "f", &[]).unwrap_err();
    assert!(matches!(e.kind(), TrapKind::Host(_)));
    let e = try_run(&m, "missing", &[]).unwrap_err();
    assert!(matches!(e.kind(), TrapKind::Host(_)));
}

/// FuncId ordering sanity for the builder-based tests above.
#[test]
fn builder_func_ids_are_stable() {
    let mut mb = ModuleBuilder::new();
    let a = mb.begin_func("a", FuncType::new(vec![], vec![]));
    let b = mb.begin_func("b", FuncType::new(vec![], vec![]));
    mb.func_mut(a).emit(Instr::Nop);
    mb.func_mut(b).emit(Instr::Nop);
    assert_eq!((a, b), (FuncId(0), FuncId(1)));
}
