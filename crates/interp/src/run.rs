//! The interpreter's execution loop.
//!
//! A classic in-place interpreter in the spirit of Wasm3 (the paper's
//! interpreter runtime): a single untyped `u64` value stack shared by all
//! frames (locals live at each frame's base), an explicit call-frame stack
//! (wasm recursion never consumes host stack), flat dispatch over the
//! validated instruction sequence, and branch resolution through the
//! validator's precomputed side tables — no runtime label stack.

use lb_core::exec::{HostCtx, HostFn};
use lb_core::{LinearMemory, Trap, TrapKind};
use lb_wasm::instr::Instr;
use lb_wasm::numeric::{self, NumError};
use lb_wasm::validate::FuncMeta;
use lb_wasm::{Module, ValType, Value};

/// Maximum wasm call depth (the paper counts stack-overflow checks among
/// wasm's safety mechanisms). Frames are heap-allocated, so this bounds
/// wasm resources, not the host stack.
pub const MAX_CALL_DEPTH: usize = 16_384;

pub(crate) struct Exec<'a> {
    pub module: &'a Module,
    pub metas: &'a [FuncMeta],
    pub mem: Option<&'a LinearMemory>,
    pub globals: &'a mut Vec<u64>,
    pub table: &'a [Option<u32>],
    pub host: &'a [HostFn],
    pub stack: &'a mut Vec<u64>,
    /// When set, dynamic instruction counts are recorded per cost class
    /// (used by the ISA cost model).
    pub counts: Option<&'a mut lb_wasm::instr::OpCounts>,
    /// `lb-analysis` plan; accesses proven statically out of bounds trap
    /// before touching memory. Only set under the `trap` strategy (clamp
    /// must fall through to the dynamic redirect).
    pub plan: Option<&'a lb_analysis::ModulePlan>,
}

/// Accesses the analysis proved out of bounds, trapped without a dynamic
/// check (cached: counter registration takes a lock).
fn static_oob_counter() -> lb_telemetry::Counter {
    static C: std::sync::OnceLock<lb_telemetry::Counter> = std::sync::OnceLock::new();
    *C.get_or_init(|| lb_telemetry::counter("interp.checks.static_oob_pretrap"))
}

fn num_trap(e: NumError) -> Trap {
    match e {
        NumError::DivByZero => Trap::new(TrapKind::IntegerDivByZero),
        NumError::Overflow => Trap::new(TrapKind::IntegerOverflow),
        NumError::InvalidConversion => Trap::new(TrapKind::InvalidConversion),
    }
}

/// A suspended caller: which function, where to resume, and its frame base.
#[derive(Debug, Clone, Copy)]
struct CallFrame {
    di: usize,
    pc: usize,
    locals_base: usize,
}

impl Exec<'_> {
    #[inline]
    fn push(&mut self, v: u64) {
        self.stack.push(v);
    }

    #[inline]
    fn pop(&mut self) -> u64 {
        // Validation guarantees the stack never underflows.
        self.stack.pop().expect("validated stack")
    }

    #[inline]
    fn push_i32(&mut self, v: i32) {
        self.push(v as u32 as u64);
    }

    #[inline]
    fn push_u32(&mut self, v: u32) {
        self.push(u64::from(v));
    }

    #[inline]
    fn push_i64(&mut self, v: i64) {
        self.push(v as u64);
    }

    #[inline]
    fn push_f32(&mut self, v: f32) {
        self.push(u64::from(v.to_bits()));
    }

    #[inline]
    fn push_f64(&mut self, v: f64) {
        self.push(v.to_bits());
    }

    #[inline]
    fn push_bool(&mut self, v: bool) {
        self.push(u64::from(v));
    }

    #[inline]
    fn pop_i32(&mut self) -> i32 {
        self.pop() as u32 as i32
    }

    #[inline]
    fn pop_u32(&mut self) -> u32 {
        self.pop() as u32
    }

    #[inline]
    fn pop_i64(&mut self) -> i64 {
        self.pop() as i64
    }

    #[inline]
    fn pop_u64(&mut self) -> u64 {
        self.pop()
    }

    #[inline]
    fn pop_f32(&mut self) -> f32 {
        f32::from_bits(self.pop() as u32)
    }

    #[inline]
    fn pop_f64(&mut self) -> f64 {
        f64::from_bits(self.pop())
    }

    #[inline]
    fn mem(&self) -> &LinearMemory {
        self.mem
            .expect("memory instruction validated against module")
    }

    /// Invoke the function at `func_idx` (imports included); its arguments
    /// must already be on the stack, and its result (if any) is left there.
    pub fn call_function(&mut self, func_idx: u32) -> Result<(), Trap> {
        let ni = self.module.num_imported_funcs();
        if func_idx < ni {
            self.call_host(func_idx)
        } else {
            self.run((func_idx - ni) as usize)
        }
    }

    fn call_host(&mut self, import_idx: u32) -> Result<(), Trap> {
        let ty = self
            .module
            .func_type(import_idx)
            .expect("validated import")
            .clone();
        let n = ty.params.len();
        let base = self.stack.len() - n;
        let mut args = [Value::I32(0); 16];
        assert!(n <= 16, "host functions limited to 16 parameters");
        for (i, &p) in ty.params.iter().enumerate() {
            args[i] = Value::from_bits(p, self.stack[base + i]);
        }
        self.stack.truncate(base);
        let f = self.host[import_idx as usize].clone();
        let mut ctx = HostCtx { memory: self.mem };
        let r = f(&mut ctx, &args[..n])?;
        match (r, ty.result()) {
            (Some(v), Some(t)) if v.ty() == t => self.push(v.to_bits()),
            (None, None) => {}
            _ => {
                return Err(Trap::new(TrapKind::Host(
                    "host function returned wrong type".into(),
                )))
            }
        }
        Ok(())
    }

    /// Set up the frame for defined function `di`: arguments are already on
    /// the stack; extra locals are zeroed. Returns the locals base.
    fn enter(&mut self, di: usize) -> usize {
        let meta = &self.metas[di];
        let locals_base = self.stack.len() - meta.n_params as usize;
        self.stack.resize(locals_base + meta.local_types.len(), 0);
        self.stack.reserve(meta.max_stack as usize + 8);
        locals_base
    }

    /// Run defined function `di` iteratively (wasm calls push heap frames).
    #[allow(clippy::too_many_lines)]
    fn run(&mut self, entry: usize) -> Result<(), Trap> {
        let module = self.module;
        let metas = self.metas;
        let mut frames: Vec<CallFrame> = Vec::with_capacity(64);
        let mut di = entry;
        let mut pc: usize = 0;
        let mut locals_base = self.enter(di);

        'frame: loop {
            let body: &[Instr] = &module.functions[di].body;
            let meta = &metas[di];
            let ctrl: &[u32] = &meta.ctrl;
            let branches = &meta.branch_table;
            let operand_base = locals_base + meta.local_types.len();

            macro_rules! binop {
                ($pop:ident, $push:ident, $op:expr) => {{
                    let b = self.$pop();
                    let a = self.$pop();
                    self.$push($op(a, b));
                }};
            }
            macro_rules! binop_trap {
                ($pop:ident, $push:ident, $op:expr) => {{
                    let b = self.$pop();
                    let a = self.$pop();
                    match $op(a, b) {
                        Ok(v) => self.$push(v),
                        Err(e) => return Err(num_trap(e)),
                    }
                }};
            }
            macro_rules! unop {
                ($pop:ident, $push:ident, $op:expr) => {{
                    let a = self.$pop();
                    self.$push($op(a));
                }};
            }
            macro_rules! cmp {
                ($pop:ident, $op:expr) => {{
                    let b = self.$pop();
                    let a = self.$pop();
                    self.push_bool($op(a, b));
                }};
            }
            macro_rules! pre_trap {
                () => {
                    // Statically proven out of bounds: the dynamic check
                    // would trap with the same kind, so pre-trapping is
                    // observationally identical (and never reads memory).
                    if let Some(p) = self.plan {
                        if p.is_static_oob(di, pc - 1) {
                            static_oob_counter().inc();
                            return Err(Trap::new(TrapKind::OutOfBounds));
                        }
                    }
                };
            }
            macro_rules! load {
                ($m:expr, $t:ty, $push:ident, $conv:expr) => {{
                    pre_trap!();
                    let addr = self.pop_u32();
                    match self.mem().load::<$t>(addr, $m.offset) {
                        Ok(v) => self.$push($conv(v)),
                        Err(t) => return Err(t),
                    }
                }};
            }
            macro_rules! store {
                ($m:expr, $t:ty, $pop:ident, $conv:expr) => {{
                    pre_trap!();
                    let v = self.$pop();
                    let addr = self.pop_u32();
                    if let Err(t) = self.mem().store::<$t>(addr, $m.offset, $conv(v)) {
                        return Err(t);
                    }
                }};
            }
            macro_rules! branch_to {
                ($dest:expr) => {{
                    let d = $dest;
                    let target = operand_base + d.target_height as usize;
                    if d.keep == 1 {
                        let v = self.pop();
                        self.stack.truncate(target);
                        self.push(v);
                    } else {
                        self.stack.truncate(target);
                    }
                    pc = d.dest_pc as usize;
                }};
            }
            /// Move the result over the locals and pop back to the caller
            /// (or finish if this was the entry frame).
            macro_rules! leave {
                () => {{
                    if meta.result.is_some() {
                        let v = self.pop();
                        self.stack.truncate(locals_base);
                        self.push(v);
                    } else {
                        self.stack.truncate(locals_base);
                    }
                    match frames.pop() {
                        Some(fr) => {
                            di = fr.di;
                            pc = fr.pc;
                            locals_base = fr.locals_base;
                            continue 'frame;
                        }
                        None => return Ok(()),
                    }
                }};
            }
            macro_rules! invoke {
                ($fi:expr) => {{
                    let fi = $fi;
                    let ni = module.num_imported_funcs();
                    if fi < ni {
                        if let Err(t) = self.call_host(fi) {
                            return Err(t);
                        }
                    } else {
                        if frames.len() >= MAX_CALL_DEPTH {
                            return Err(Trap::new(TrapKind::StackOverflow));
                        }
                        frames.push(CallFrame {
                            di,
                            pc,
                            locals_base,
                        });
                        di = (fi - ni) as usize;
                        locals_base = self.enter(di);
                        pc = 0;
                        continue 'frame;
                    }
                }};
            }

            while pc < body.len() {
                let instr = &body[pc];
                pc += 1;
                if let Some(c) = self.counts.as_deref_mut() {
                    c.bump(instr.cost_class());
                }
                match instr {
                    Instr::Unreachable => {
                        return Err(Trap::new(TrapKind::Unreachable));
                    }
                    Instr::Nop | Instr::Block(_) | Instr::Loop(_) | Instr::End => {}
                    Instr::If(_) => {
                        let c = self.pop_u32();
                        if c == 0 {
                            pc = ctrl[pc - 1] as usize;
                        }
                    }
                    Instr::Else => {
                        pc = ctrl[pc - 1] as usize;
                    }
                    Instr::Br(_) => branch_to!(branches[ctrl[pc - 1] as usize]),
                    Instr::BrIf(_) => {
                        let c = self.pop_u32();
                        if c != 0 {
                            branch_to!(branches[ctrl[pc - 1] as usize]);
                        }
                    }
                    Instr::BrTable(t) => {
                        let sel = self.pop_u32() as usize;
                        let base = ctrl[pc - 1] as usize;
                        let idx = sel.min(t.targets.len());
                        branch_to!(branches[base + idx]);
                    }
                    Instr::Return => leave!(),
                    Instr::Call(fi) => invoke!(*fi),
                    Instr::CallIndirect(type_idx) => {
                        let sel = self.pop_u32() as usize;
                        let Some(entry) = self.table.get(sel) else {
                            return Err(Trap::new(TrapKind::TableOutOfBounds));
                        };
                        let Some(fi) = *entry else {
                            return Err(Trap::new(TrapKind::UninitializedElement));
                        };
                        let want = &module.types[*type_idx as usize];
                        let got = module.func_type(fi).expect("validated elem");
                        if want != got {
                            return Err(Trap::new(TrapKind::IndirectCallTypeMismatch));
                        }
                        invoke!(fi);
                    }
                    Instr::Drop => {
                        self.pop();
                    }
                    Instr::Select => {
                        let c = self.pop_u32();
                        let b = self.pop();
                        let a = self.pop();
                        self.push(if c != 0 { a } else { b });
                    }
                    Instr::LocalGet(i) => {
                        let v = self.stack[locals_base + *i as usize];
                        self.push(v);
                    }
                    Instr::LocalSet(i) => {
                        let v = self.pop();
                        self.stack[locals_base + *i as usize] = v;
                    }
                    Instr::LocalTee(i) => {
                        let v = *self.stack.last().expect("validated");
                        self.stack[locals_base + *i as usize] = v;
                    }
                    Instr::GlobalGet(i) => {
                        let v = self.globals[*i as usize];
                        self.push(v);
                    }
                    Instr::GlobalSet(i) => {
                        let v = self.pop();
                        self.globals[*i as usize] = v;
                    }

                    Instr::I32Load(m) => load!(m, u32, push_u32, |v| v),
                    Instr::I64Load(m) => load!(m, u64, push, |v| v),
                    Instr::F32Load(m) => load!(m, f32, push_f32, |v| v),
                    Instr::F64Load(m) => load!(m, f64, push_f64, |v| v),
                    Instr::I32Load8S(m) => load!(m, i8, push_i32, |v| v as i32),
                    Instr::I32Load8U(m) => load!(m, u8, push_u32, u32::from),
                    Instr::I32Load16S(m) => load!(m, i16, push_i32, |v| v as i32),
                    Instr::I32Load16U(m) => load!(m, u16, push_u32, u32::from),
                    Instr::I64Load8S(m) => load!(m, i8, push_i64, |v| v as i64),
                    Instr::I64Load8U(m) => load!(m, u8, push, u64::from),
                    Instr::I64Load16S(m) => load!(m, i16, push_i64, |v| v as i64),
                    Instr::I64Load16U(m) => load!(m, u16, push, u64::from),
                    Instr::I64Load32S(m) => load!(m, i32, push_i64, |v| v as i64),
                    Instr::I64Load32U(m) => load!(m, u32, push, u64::from),
                    Instr::I32Store(m) => store!(m, u32, pop_u32, |v| v),
                    Instr::I64Store(m) => store!(m, u64, pop_u64, |v| v),
                    Instr::F32Store(m) => store!(m, f32, pop_f32, |v| v),
                    Instr::F64Store(m) => store!(m, f64, pop_f64, |v| v),
                    Instr::I32Store8(m) => store!(m, u8, pop_u32, |v| v as u8),
                    Instr::I32Store16(m) => store!(m, u16, pop_u32, |v| v as u16),
                    Instr::I64Store8(m) => store!(m, u8, pop_u64, |v| v as u8),
                    Instr::I64Store16(m) => store!(m, u16, pop_u64, |v| v as u16),
                    Instr::I64Store32(m) => store!(m, u32, pop_u64, |v| v as u32),
                    Instr::MemorySize => {
                        let p = self.mem().size_pages();
                        self.push_u32(p);
                    }
                    Instr::MemoryGrow => {
                        let delta = self.pop_u32();
                        let r = self.mem().grow(delta);
                        self.push_i32(r.map(|p| p as i32).unwrap_or(-1));
                    }

                    Instr::I32Const(v) => self.push_i32(*v),
                    Instr::I64Const(v) => self.push_i64(*v),
                    Instr::F32Const(v) => self.push_f32(*v),
                    Instr::F64Const(v) => self.push_f64(*v),

                    Instr::I32Eqz => unop!(pop_u32, push_bool, |a| a == 0),
                    Instr::I32Eq => cmp!(pop_u32, |a, b| a == b),
                    Instr::I32Ne => cmp!(pop_u32, |a, b| a != b),
                    Instr::I32LtS => cmp!(pop_i32, |a, b| a < b),
                    Instr::I32LtU => cmp!(pop_u32, |a, b| a < b),
                    Instr::I32GtS => cmp!(pop_i32, |a, b| a > b),
                    Instr::I32GtU => cmp!(pop_u32, |a, b| a > b),
                    Instr::I32LeS => cmp!(pop_i32, |a, b| a <= b),
                    Instr::I32LeU => cmp!(pop_u32, |a, b| a <= b),
                    Instr::I32GeS => cmp!(pop_i32, |a, b| a >= b),
                    Instr::I32GeU => cmp!(pop_u32, |a, b| a >= b),
                    Instr::I64Eqz => unop!(pop_u64, push_bool, |a| a == 0),
                    Instr::I64Eq => cmp!(pop_u64, |a, b| a == b),
                    Instr::I64Ne => cmp!(pop_u64, |a, b| a != b),
                    Instr::I64LtS => cmp!(pop_i64, |a, b| a < b),
                    Instr::I64LtU => cmp!(pop_u64, |a, b| a < b),
                    Instr::I64GtS => cmp!(pop_i64, |a, b| a > b),
                    Instr::I64GtU => cmp!(pop_u64, |a, b| a > b),
                    Instr::I64LeS => cmp!(pop_i64, |a, b| a <= b),
                    Instr::I64LeU => cmp!(pop_u64, |a, b| a <= b),
                    Instr::I64GeS => cmp!(pop_i64, |a, b| a >= b),
                    Instr::I64GeU => cmp!(pop_u64, |a, b| a >= b),
                    Instr::F32Eq => cmp!(pop_f32, |a, b| a == b),
                    Instr::F32Ne => cmp!(pop_f32, |a, b| a != b),
                    Instr::F32Lt => cmp!(pop_f32, |a, b| a < b),
                    Instr::F32Gt => cmp!(pop_f32, |a, b| a > b),
                    Instr::F32Le => cmp!(pop_f32, |a, b| a <= b),
                    Instr::F32Ge => cmp!(pop_f32, |a, b| a >= b),
                    Instr::F64Eq => cmp!(pop_f64, |a, b| a == b),
                    Instr::F64Ne => cmp!(pop_f64, |a, b| a != b),
                    Instr::F64Lt => cmp!(pop_f64, |a, b| a < b),
                    Instr::F64Gt => cmp!(pop_f64, |a, b| a > b),
                    Instr::F64Le => cmp!(pop_f64, |a, b| a <= b),
                    Instr::F64Ge => cmp!(pop_f64, |a, b| a >= b),

                    Instr::I32Clz => unop!(pop_u32, push_u32, |a: u32| a.leading_zeros()),
                    Instr::I32Ctz => unop!(pop_u32, push_u32, |a: u32| a.trailing_zeros()),
                    Instr::I32Popcnt => unop!(pop_u32, push_u32, |a: u32| a.count_ones()),
                    Instr::I32Add => binop!(pop_u32, push_u32, u32::wrapping_add),
                    Instr::I32Sub => binop!(pop_u32, push_u32, u32::wrapping_sub),
                    Instr::I32Mul => binop!(pop_u32, push_u32, u32::wrapping_mul),
                    Instr::I32DivS => binop_trap!(pop_i32, push_i32, numeric::i32_div_s),
                    Instr::I32DivU => binop_trap!(pop_u32, push_u32, numeric::udiv),
                    Instr::I32RemS => binop_trap!(pop_i32, push_i32, numeric::i32_rem_s),
                    Instr::I32RemU => binop_trap!(pop_u32, push_u32, numeric::urem),
                    Instr::I32And => binop!(pop_u32, push_u32, |a, b| a & b),
                    Instr::I32Or => binop!(pop_u32, push_u32, |a, b| a | b),
                    Instr::I32Xor => binop!(pop_u32, push_u32, |a, b| a ^ b),
                    Instr::I32Shl => binop!(pop_u32, push_u32, |a: u32, b: u32| a << (b & 31)),
                    Instr::I32ShrS => {
                        binop!(pop_u32, push_i32, |a: u32, b: u32| (a as i32) >> (b & 31))
                    }
                    Instr::I32ShrU => binop!(pop_u32, push_u32, |a: u32, b: u32| a >> (b & 31)),
                    Instr::I32Rotl => {
                        binop!(pop_u32, push_u32, |a: u32, b: u32| a.rotate_left(b & 31))
                    }
                    Instr::I32Rotr => {
                        binop!(pop_u32, push_u32, |a: u32, b: u32| a.rotate_right(b & 31))
                    }
                    Instr::I64Clz => unop!(pop_u64, push, |a: u64| u64::from(a.leading_zeros())),
                    Instr::I64Ctz => unop!(pop_u64, push, |a: u64| u64::from(a.trailing_zeros())),
                    Instr::I64Popcnt => unop!(pop_u64, push, |a: u64| u64::from(a.count_ones())),
                    Instr::I64Add => binop!(pop_u64, push, u64::wrapping_add),
                    Instr::I64Sub => binop!(pop_u64, push, u64::wrapping_sub),
                    Instr::I64Mul => binop!(pop_u64, push, u64::wrapping_mul),
                    Instr::I64DivS => binop_trap!(pop_i64, push_i64, numeric::i64_div_s),
                    Instr::I64DivU => binop_trap!(pop_u64, push, numeric::udiv),
                    Instr::I64RemS => binop_trap!(pop_i64, push_i64, numeric::i64_rem_s),
                    Instr::I64RemU => binop_trap!(pop_u64, push, numeric::urem),
                    Instr::I64And => binop!(pop_u64, push, |a, b| a & b),
                    Instr::I64Or => binop!(pop_u64, push, |a, b| a | b),
                    Instr::I64Xor => binop!(pop_u64, push, |a, b| a ^ b),
                    Instr::I64Shl => binop!(pop_u64, push, |a: u64, b: u64| a << (b & 63)),
                    Instr::I64ShrS => {
                        binop!(pop_u64, push_i64, |a: u64, b: u64| (a as i64) >> (b & 63))
                    }
                    Instr::I64ShrU => binop!(pop_u64, push, |a: u64, b: u64| a >> (b & 63)),
                    Instr::I64Rotl => {
                        binop!(pop_u64, push, |a: u64, b: u64| a
                            .rotate_left((b & 63) as u32))
                    }
                    Instr::I64Rotr => {
                        binop!(pop_u64, push, |a: u64, b: u64| a
                            .rotate_right((b & 63) as u32))
                    }

                    Instr::F32Abs => unop!(pop_f32, push_f32, f32::abs),
                    Instr::F32Neg => unop!(pop_f32, push_f32, |a: f32| -a),
                    Instr::F32Ceil => unop!(pop_f32, push_f32, f32::ceil),
                    Instr::F32Floor => unop!(pop_f32, push_f32, f32::floor),
                    Instr::F32Trunc => unop!(pop_f32, push_f32, f32::trunc),
                    Instr::F32Nearest => unop!(pop_f32, push_f32, f32::round_ties_even),
                    Instr::F32Sqrt => unop!(pop_f32, push_f32, f32::sqrt),
                    Instr::F32Add => binop!(pop_f32, push_f32, |a, b| a + b),
                    Instr::F32Sub => binop!(pop_f32, push_f32, |a, b| a - b),
                    Instr::F32Mul => binop!(pop_f32, push_f32, |a, b| a * b),
                    Instr::F32Div => binop!(pop_f32, push_f32, |a, b| a / b),
                    Instr::F32Min => binop!(pop_f32, push_f32, numeric::wasm_fmin),
                    Instr::F32Max => binop!(pop_f32, push_f32, numeric::wasm_fmax),
                    Instr::F32Copysign => binop!(pop_f32, push_f32, f32::copysign),
                    Instr::F64Abs => unop!(pop_f64, push_f64, f64::abs),
                    Instr::F64Neg => unop!(pop_f64, push_f64, |a: f64| -a),
                    Instr::F64Ceil => unop!(pop_f64, push_f64, f64::ceil),
                    Instr::F64Floor => unop!(pop_f64, push_f64, f64::floor),
                    Instr::F64Trunc => unop!(pop_f64, push_f64, f64::trunc),
                    Instr::F64Nearest => unop!(pop_f64, push_f64, f64::round_ties_even),
                    Instr::F64Sqrt => unop!(pop_f64, push_f64, f64::sqrt),
                    Instr::F64Add => binop!(pop_f64, push_f64, |a, b| a + b),
                    Instr::F64Sub => binop!(pop_f64, push_f64, |a, b| a - b),
                    Instr::F64Mul => binop!(pop_f64, push_f64, |a, b| a * b),
                    Instr::F64Div => binop!(pop_f64, push_f64, |a, b| a / b),
                    Instr::F64Min => binop!(pop_f64, push_f64, numeric::wasm_fmin),
                    Instr::F64Max => binop!(pop_f64, push_f64, numeric::wasm_fmax),
                    Instr::F64Copysign => binop!(pop_f64, push_f64, f64::copysign),

                    Instr::I32WrapI64 => unop!(pop_u64, push_u32, |a| a as u32),
                    Instr::I32TruncF32S => {
                        let v = self.pop_f32();
                        match numeric::trunc_f_to_i32_s(f64::from(v)) {
                            Ok(x) => self.push_i32(x),
                            Err(e) => return Err(num_trap(e)),
                        }
                    }
                    Instr::I32TruncF32U => {
                        let v = self.pop_f32();
                        match numeric::trunc_f_to_i32_u(f64::from(v)) {
                            Ok(x) => self.push_u32(x),
                            Err(e) => return Err(num_trap(e)),
                        }
                    }
                    Instr::I32TruncF64S => {
                        let v = self.pop_f64();
                        match numeric::trunc_f_to_i32_s(v) {
                            Ok(x) => self.push_i32(x),
                            Err(e) => return Err(num_trap(e)),
                        }
                    }
                    Instr::I32TruncF64U => {
                        let v = self.pop_f64();
                        match numeric::trunc_f_to_i32_u(v) {
                            Ok(x) => self.push_u32(x),
                            Err(e) => return Err(num_trap(e)),
                        }
                    }
                    Instr::I64ExtendI32S => unop!(pop_i32, push_i64, i64::from),
                    Instr::I64ExtendI32U => unop!(pop_u32, push, u64::from),
                    Instr::I64TruncF32S => {
                        let v = self.pop_f32();
                        match numeric::trunc_f_to_i64_s(f64::from(v)) {
                            Ok(x) => self.push_i64(x),
                            Err(e) => return Err(num_trap(e)),
                        }
                    }
                    Instr::I64TruncF32U => {
                        let v = self.pop_f32();
                        match numeric::trunc_f_to_i64_u(f64::from(v)) {
                            Ok(x) => self.push(x),
                            Err(e) => return Err(num_trap(e)),
                        }
                    }
                    Instr::I64TruncF64S => {
                        let v = self.pop_f64();
                        match numeric::trunc_f_to_i64_s(v) {
                            Ok(x) => self.push_i64(x),
                            Err(e) => return Err(num_trap(e)),
                        }
                    }
                    Instr::I64TruncF64U => {
                        let v = self.pop_f64();
                        match numeric::trunc_f_to_i64_u(v) {
                            Ok(x) => self.push(x),
                            Err(e) => return Err(num_trap(e)),
                        }
                    }
                    Instr::F32ConvertI32S => unop!(pop_i32, push_f32, |a| a as f32),
                    Instr::F32ConvertI32U => unop!(pop_u32, push_f32, |a| a as f32),
                    Instr::F32ConvertI64S => unop!(pop_i64, push_f32, |a| a as f32),
                    Instr::F32ConvertI64U => unop!(pop_u64, push_f32, |a| a as f32),
                    Instr::F32DemoteF64 => unop!(pop_f64, push_f32, |a| a as f32),
                    Instr::F64ConvertI32S => unop!(pop_i32, push_f64, f64::from),
                    Instr::F64ConvertI32U => unop!(pop_u32, push_f64, f64::from),
                    Instr::F64ConvertI64S => unop!(pop_i64, push_f64, |a| a as f64),
                    Instr::F64ConvertI64U => unop!(pop_u64, push_f64, |a| a as f64),
                    Instr::F64PromoteF32 => unop!(pop_f32, push_f64, f64::from),
                    Instr::I32ReinterpretF32
                    | Instr::I64ReinterpretF64
                    | Instr::F32ReinterpretI32
                    | Instr::F64ReinterpretI64 => {}
                }
            }

            // Natural function exit.
            leave!();
        }
    }
}

/// Check argument values against a signature.
pub(crate) fn check_args(params: &[ValType], args: &[Value]) -> Result<(), Trap> {
    if params.len() != args.len() {
        return Err(Trap::new(TrapKind::Host(format!(
            "expected {} arguments, got {}",
            params.len(),
            args.len()
        ))));
    }
    for (p, a) in params.iter().zip(args) {
        if a.ty() != *p {
            return Err(Trap::new(TrapKind::Host(format!(
                "argument type mismatch: expected {p}, got {}",
                a.ty()
            ))));
        }
    }
    Ok(())
}
