//! The interpreter engine: `Engine`/`LoadedModule`/`Instance` impls.

use crate::run::{check_args, Exec};
use lb_core::exec::{
    build_instance_parts, Engine, HostFn, Instance, Linker, LoadError, LoadedModule,
};
use lb_core::{catch_traps, LinearMemory, MemoryConfig, Trap, TrapKind};
use lb_wasm::validate::{validate, ModuleMeta};
use lb_wasm::{Module, Value};
use std::sync::Arc;

/// The in-place interpreter runtime (the reproduction's Wasm3 analog —
/// the paper's interpreter uses an equivalent of the `trap` strategy; ours
/// honors whatever strategy the memory config requests, since the checks
/// live in [`lb_core::LinearMemory`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct InterpEngine;

impl InterpEngine {
    /// Create the engine.
    pub fn new() -> InterpEngine {
        InterpEngine
    }
}

/// A validated module ready for interpretation.
#[derive(Debug)]
pub struct InterpModule {
    module: Module,
    meta: ModuleMeta,
}

impl Engine for InterpEngine {
    fn name(&self) -> &str {
        "interp"
    }

    fn load(&self, module: &Module) -> Result<Arc<dyn LoadedModule>, LoadError> {
        let meta = validate(module)?;
        Ok(Arc::new(InterpModule {
            module: module.clone(),
            meta,
        }))
    }
}

impl InterpModule {
    /// Validate `module` and wrap it for interpretation (concrete-type
    /// variant of `Engine::load`).
    ///
    /// # Errors
    /// Validation failures.
    pub fn load(module: &Module) -> Result<InterpModule, LoadError> {
        let meta = validate(module)?;
        Ok(InterpModule {
            module: module.clone(),
            meta,
        })
    }

    /// Instantiate, returning the concrete instance type (which exposes
    /// [`InterpInstance::invoke_counted`]).
    ///
    /// # Errors
    /// As for `LoadedModule::instantiate`.
    pub fn instantiate_interp(
        &self,
        config: &MemoryConfig,
        linker: &Linker,
    ) -> Result<InterpInstance, LoadError> {
        let parts = build_instance_parts(&self.module, config, linker)?;
        let mut inst = InterpInstance {
            module: self.module.clone(),
            meta: self.meta.clone(),
            mem: parts.memory,
            globals: parts.globals,
            table: parts.table,
            host: parts.host,
            stack: Vec::with_capacity(4096),
        };
        if let Some(start) = inst.module.start {
            inst.call_raw(start, &[]).map_err(LoadError::Start)?;
        }
        Ok(inst)
    }
}

impl LoadedModule for InterpModule {
    fn instantiate(
        &self,
        config: &MemoryConfig,
        linker: &Linker,
    ) -> Result<Box<dyn Instance>, LoadError> {
        let parts = build_instance_parts(&self.module, config, linker)?;
        let mut inst = InterpInstance {
            module: self.module.clone(),
            meta: self.meta.clone(),
            mem: parts.memory,
            globals: parts.globals,
            table: parts.table,
            host: parts.host,
            stack: Vec::with_capacity(4096),
        };
        if let Some(start) = inst.module.start {
            inst.call_raw(start, &[]).map_err(LoadError::Start)?;
        }
        Ok(Box::new(inst))
    }
}

/// A live interpreted instance.
pub struct InterpInstance {
    module: Module,
    meta: ModuleMeta,
    mem: Option<LinearMemory>,
    globals: Vec<u64>,
    table: Vec<Option<u32>>,
    host: Vec<HostFn>,
    /// The shared value stack, owned by the instance so a hardware trap
    /// (which skips interpreter frames) leaks nothing.
    stack: Vec<u64>,
}

impl std::fmt::Debug for InterpInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InterpInstance")
            .field("funcs", &self.module.num_funcs())
            .field("memory", &self.mem.is_some())
            .finish()
    }
}

impl InterpInstance {
    /// Invoke an export while recording dynamic instruction counts by cost
    /// class — the measurement input for the cross-ISA cost model.
    ///
    /// # Errors
    /// Any wasm trap, as for `invoke`.
    pub fn invoke_counted(
        &mut self,
        name: &str,
        args: &[Value],
    ) -> Result<(Option<Value>, lb_wasm::instr::OpCounts), Trap> {
        let fi = self
            .module
            .exported_func(name)
            .ok_or_else(|| Trap::new(TrapKind::Host(format!("no exported function {name:?}"))))?;
        let mut counts = lb_wasm::instr::OpCounts::default();
        let r = self.call_impl(fi, args, Some(&mut counts))?;
        Ok((r, counts))
    }

    fn call_raw(&mut self, func_idx: u32, args: &[Value]) -> Result<Option<Value>, Trap> {
        self.call_impl(func_idx, args, None)
    }

    fn call_impl(
        &mut self,
        func_idx: u32,
        args: &[Value],
        counts: Option<&mut lb_wasm::instr::OpCounts>,
    ) -> Result<Option<Value>, Trap> {
        let ty = self
            .module
            .func_type(func_idx)
            .map_err(|e| Trap::new(TrapKind::Host(e.to_string())))?
            .clone();
        check_args(&ty.params, args)?;

        self.stack.clear();
        for a in args {
            self.stack.push(a.to_bits());
        }

        let module = &self.module;
        let metas = &self.meta.funcs;
        let mem = self.mem.as_ref();
        let globals = &mut self.globals;
        let table = &self.table;
        let host = &self.host;
        let stack = &mut self.stack;

        catch_traps(move || {
            let mut ex = Exec {
                module,
                metas,
                mem,
                globals,
                table,
                host,
                stack,
                counts,
            };
            ex.call_function(func_idx)
        })?;

        Ok(ty
            .result()
            .map(|t| Value::from_bits(t, *self.stack.last().expect("result on stack"))))
    }
}

impl Instance for InterpInstance {
    fn invoke(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, Trap> {
        let fi = self
            .module
            .exported_func(name)
            .ok_or_else(|| Trap::new(TrapKind::Host(format!("no exported function {name:?}"))))?;
        self.call_raw(fi, args)
    }

    fn memory(&self) -> Option<&LinearMemory> {
        self.mem.as_ref()
    }
}
