//! The interpreter engine: `Engine`/`LoadedModule`/`Instance` impls.

use crate::run::{check_args, Exec};
use lb_core::exec::{
    build_instance_parts, Engine, HostFn, Instance, Linker, LoadError, LoadedModule,
};
use lb_core::{catch_traps, LinearMemory, MemoryConfig, Trap, TrapKind};
use lb_wasm::validate::{validate, ModuleMeta};
use lb_wasm::{Module, Value};
use std::sync::{Arc, OnceLock};

/// One telemetry counter per [`CostClass`](lb_wasm::instr::CostClass)
/// (`interp.dispatch.<class>`), registered once on first use. The hot
/// loop only ever bumps a plain local `OpCounts`; these counters absorb
/// the totals in one flush per invoke, so enabling dispatch telemetry
/// adds no per-instruction atomics.
fn dispatch_counters() -> &'static [lb_telemetry::Counter; lb_wasm::instr::COST_CLASS_COUNT] {
    use lb_wasm::instr::CostClass;
    static COUNTERS: OnceLock<[lb_telemetry::Counter; lb_wasm::instr::COST_CLASS_COUNT]> =
        OnceLock::new();
    COUNTERS.get_or_init(|| {
        CostClass::ALL.map(|c| {
            lb_telemetry::counter(match c {
                CostClass::Control => "interp.dispatch.control",
                CostClass::Branch => "interp.dispatch.branch",
                CostClass::Call => "interp.dispatch.call",
                CostClass::LocalVar => "interp.dispatch.local_var",
                CostClass::Global => "interp.dispatch.global",
                CostClass::Const => "interp.dispatch.const",
                CostClass::MemLoad => "interp.dispatch.mem_load",
                CostClass::MemStore => "interp.dispatch.mem_store",
                CostClass::MemMgmt => "interp.dispatch.mem_mgmt",
                CostClass::IntAlu => "interp.dispatch.int_alu",
                CostClass::IntMul => "interp.dispatch.int_mul",
                CostClass::IntDiv => "interp.dispatch.int_div",
                CostClass::IntCmp => "interp.dispatch.int_cmp",
                CostClass::FpAdd => "interp.dispatch.fp_add",
                CostClass::FpMul => "interp.dispatch.fp_mul",
                CostClass::FpDiv => "interp.dispatch.fp_div",
                CostClass::FpSqrt => "interp.dispatch.fp_sqrt",
                CostClass::FpCmp => "interp.dispatch.fp_cmp",
                CostClass::Convert => "interp.dispatch.convert",
                CostClass::Parametric => "interp.dispatch.parametric",
            })
        })
    })
}

/// Flush one invocation's per-class counts into the global counters.
fn flush_dispatch_counts(counts: &lb_wasm::instr::OpCounts) {
    let counters = dispatch_counters();
    for (i, c) in counters.iter().enumerate() {
        let n = counts.0[i];
        if n != 0 {
            c.add(n);
        }
    }
}

/// The in-place interpreter runtime (the reproduction's Wasm3 analog —
/// the paper's interpreter uses an equivalent of the `trap` strategy; ours
/// honors whatever strategy the memory config requests, since the checks
/// live in [`lb_core::LinearMemory`]).
#[derive(Debug, Clone, Copy)]
pub struct InterpEngine {
    /// Run the `lb-analysis` pass at load time so statically
    /// out-of-bounds accesses pre-trap without touching memory.
    analysis: bool,
}

impl Default for InterpEngine {
    fn default() -> InterpEngine {
        InterpEngine::new()
    }
}

impl InterpEngine {
    /// Create the engine (static analysis on).
    pub fn new() -> InterpEngine {
        InterpEngine { analysis: true }
    }

    /// Toggle the static analysis (off = every access goes through the
    /// dynamic checks only; used for differential testing).
    pub fn with_analysis(mut self, on: bool) -> InterpEngine {
        self.analysis = on;
        self
    }
}

/// A validated module ready for interpretation.
#[derive(Debug)]
pub struct InterpModule {
    module: Module,
    meta: ModuleMeta,
    plan: Option<Arc<lb_analysis::ModulePlan>>,
}

impl Engine for InterpEngine {
    fn name(&self) -> &str {
        "interp"
    }

    fn load(&self, module: &Module) -> Result<Arc<dyn LoadedModule>, LoadError> {
        let meta = validate(module)?;
        let plan = self
            .analysis
            .then(|| Arc::new(lb_analysis::analyze_module(module, &meta)));
        Ok(Arc::new(InterpModule {
            module: module.clone(),
            meta,
            plan,
        }))
    }
}

impl InterpModule {
    /// Validate `module` and wrap it for interpretation (concrete-type
    /// variant of `Engine::load`).
    ///
    /// # Errors
    /// Validation failures.
    pub fn load(module: &Module) -> Result<InterpModule, LoadError> {
        let meta = validate(module)?;
        let plan = Some(Arc::new(lb_analysis::analyze_module(module, &meta)));
        Ok(InterpModule {
            module: module.clone(),
            meta,
            plan,
        })
    }

    /// Instantiate, returning the concrete instance type (which exposes
    /// [`InterpInstance::invoke_counted`]).
    ///
    /// # Errors
    /// As for `LoadedModule::instantiate`.
    pub fn instantiate_interp(
        &self,
        config: &MemoryConfig,
        linker: &Linker,
    ) -> Result<InterpInstance, LoadError> {
        let parts = build_instance_parts(&self.module, config, linker)?;
        let mut inst = InterpInstance {
            module: self.module.clone(),
            meta: self.meta.clone(),
            plan: self.plan.clone(),
            mem: parts.memory,
            globals: parts.globals,
            table: parts.table,
            host: parts.host,
            stack: Vec::with_capacity(4096),
        };
        if let Some(start) = inst.module.start {
            inst.call_raw(start, &[]).map_err(LoadError::Start)?;
        }
        Ok(inst)
    }
}

impl LoadedModule for InterpModule {
    fn instantiate(
        &self,
        config: &MemoryConfig,
        linker: &Linker,
    ) -> Result<Box<dyn Instance>, LoadError> {
        // Mirrors `jit.instantiate_ns`: the pool's effect on per-isolate
        // setup cost, measured at the same boundary in both engines.
        let t0 = std::time::Instant::now();
        let parts = build_instance_parts(&self.module, config, linker)?;
        let mut inst = InterpInstance {
            module: self.module.clone(),
            meta: self.meta.clone(),
            plan: self.plan.clone(),
            mem: parts.memory,
            globals: parts.globals,
            table: parts.table,
            host: parts.host,
            stack: Vec::with_capacity(4096),
        };
        if let Some(start) = inst.module.start {
            inst.call_raw(start, &[]).map_err(LoadError::Start)?;
        }
        lb_telemetry::histogram("interp.instantiate_ns").record(t0.elapsed().as_nanos() as u64);
        Ok(Box::new(inst))
    }
}

/// A live interpreted instance.
pub struct InterpInstance {
    module: Module,
    meta: ModuleMeta,
    plan: Option<Arc<lb_analysis::ModulePlan>>,
    mem: Option<LinearMemory>,
    globals: Vec<u64>,
    table: Vec<Option<u32>>,
    host: Vec<HostFn>,
    /// The shared value stack, owned by the instance so a hardware trap
    /// (which skips interpreter frames) leaks nothing.
    stack: Vec<u64>,
}

impl std::fmt::Debug for InterpInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InterpInstance")
            .field("funcs", &self.module.num_funcs())
            .field("memory", &self.mem.is_some())
            .finish()
    }
}

impl InterpInstance {
    /// Invoke an export while recording dynamic instruction counts by cost
    /// class — the measurement input for the cross-ISA cost model.
    ///
    /// # Errors
    /// Any wasm trap, as for `invoke`.
    pub fn invoke_counted(
        &mut self,
        name: &str,
        args: &[Value],
    ) -> Result<(Option<Value>, lb_wasm::instr::OpCounts), Trap> {
        let fi = self
            .module
            .exported_func(name)
            .ok_or_else(|| Trap::new(TrapKind::Host(format!("no exported function {name:?}"))))?;
        let mut counts = lb_wasm::instr::OpCounts::default();
        let r = self.call_impl(fi, args, Some(&mut counts))?;
        Ok((r, counts))
    }

    fn call_raw(&mut self, func_idx: u32, args: &[Value]) -> Result<Option<Value>, Trap> {
        self.call_impl(func_idx, args, None)
    }

    fn call_impl(
        &mut self,
        func_idx: u32,
        args: &[Value],
        counts: Option<&mut lb_wasm::instr::OpCounts>,
    ) -> Result<Option<Value>, Trap> {
        let ty = self
            .module
            .func_type(func_idx)
            .map_err(|e| Trap::new(TrapKind::Host(e.to_string())))?
            .clone();
        check_args(&ty.params, args)?;

        self.stack.clear();
        for a in args {
            self.stack.push(a.to_bits());
        }

        // When the caller didn't ask for counts but dispatch telemetry is
        // on, count into a local `OpCounts` and flush once afterwards.
        let mut tele_counts = None;
        let counts = match counts {
            Some(c) => Some(c),
            None if lb_telemetry::dispatch_counters_enabled() => {
                tele_counts = Some(lb_wasm::instr::OpCounts::default());
                tele_counts.as_mut()
            }
            None => None,
        };

        let module = &self.module;
        let metas = &self.meta.funcs;
        let mem = self.mem.as_ref();
        let globals = &mut self.globals;
        let table = &self.table;
        let host = &self.host;
        let stack = &mut self.stack;
        // Pre-trapping is only valid when an OOB access would trap anyway
        // (the clamp strategy redirects instead of trapping).
        let plan = match mem {
            Some(m) if m.strategy() == lb_core::BoundsStrategy::Trap => self.plan.as_deref(),
            _ => None,
        };

        let r = catch_traps(move || {
            let mut ex = Exec {
                module,
                metas,
                mem,
                globals,
                table,
                host,
                stack,
                counts,
                plan,
            };
            ex.call_function(func_idx)
        });
        if let Some(c) = tele_counts.as_ref() {
            // Trapped invocations still flush what they executed.
            flush_dispatch_counts(c);
        }
        r?;

        Ok(ty
            .result()
            .map(|t| Value::from_bits(t, *self.stack.last().expect("result on stack"))))
    }
}

impl Instance for InterpInstance {
    fn invoke(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, Trap> {
        let fi = self
            .module
            .exported_func(name)
            .ok_or_else(|| Trap::new(TrapKind::Host(format!("no exported function {name:?}"))))?;
        self.call_raw(fi, args)
    }

    fn memory(&self) -> Option<&LinearMemory> {
        self.mem.as_ref()
    }
}
