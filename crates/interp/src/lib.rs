//! # lb-interp — an in-place WebAssembly interpreter
//!
//! The reproduction's analog of **Wasm3**, the interpreter runtime the
//! paper benchmarks: a straightforward fetch/execute loop over validated
//! bytecode with precomputed branch side-tables, a shared untyped value
//! stack, and software bounds checks performed by
//! [`lb_core::LinearMemory`]'s accessors.
//!
//! ## Example
//!
//! ```rust
//! use lb_interp::InterpEngine;
//! use lb_core::exec::{Engine, Linker};
//! use lb_core::{BoundsStrategy, MemoryConfig};
//! use lb_wasm::builder::ModuleBuilder;
//! use lb_wasm::types::{FuncType, ValType};
//! use lb_wasm::{Instr, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new();
//! let f = mb.begin_func("add1", FuncType::new(vec![ValType::I32], vec![ValType::I32]));
//! {
//!     let mut b = mb.func_mut(f);
//!     b.emit(Instr::LocalGet(0)).emit(Instr::I32Const(1)).emit(Instr::I32Add);
//! }
//! mb.export_func("add1", f);
//! let module = mb.finish();
//!
//! let engine = InterpEngine::new();
//! let loaded = engine.load(&module)?;
//! let config = MemoryConfig::new(BoundsStrategy::Trap, 0, 0);
//! let mut inst = loaded.instantiate(&config, &Linker::new())?;
//! let out = inst.invoke("add1", &[Value::I32(41)])?;
//! assert_eq!(out, Some(Value::I32(42)));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod engine;
mod run;

pub use engine::{InterpEngine, InterpInstance, InterpModule};
pub use run::MAX_CALL_DEPTH;
