//! Shared machinery for the SPEC CPU 2017 proxy workloads.
//!
//! SPEC itself is copyrighted (the paper could only distribute patches, not
//! the benchmarks), so each proxy reimplements the algorithmic core of one
//! SPEC Rate benchmark over synthetic data — the same data structures and
//! inner loops, sized so the wasm-vs-native comparison exercises the same
//! instruction mix.

use lb_dsl::expr::{i32 as ci, Expr};
use lb_dsl::{DslFunc, KernelModule, Layout, Var};
use lb_wasm::Module;

pub use lb_dsl::kernel::{
    checksum_fn, checksum_fn_i32, checksum_slices, checksum_slices_i32, ClosureKernel,
};

/// Workload scale (the paper runs SPEC in the *Train* configuration; the
/// `Train` preset here is sized so a full sweep stays tractable on one
/// core while keeping each proxy's working set realistic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny, for unit/differential tests.
    Mini,
    /// Quick benchmarking.
    Small,
    /// The measurement configuration (Train stand-in).
    Train,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        Some(match s {
            "mini" => Scale::Mini,
            "small" => Scale::Small,
            "train" => Scale::Train,
            _ => return None,
        })
    }

    /// Pick by scale.
    pub fn pick(self, mini: u32, small: u32, train: u32) -> u32 {
        match self {
            Scale::Mini => mini,
            Scale::Small => small,
            Scale::Train => train,
        }
    }
}

/// Assemble the standard three-function proxy module.
pub fn assemble(layout: &Layout, init: DslFunc, kernel: DslFunc, checksum: DslFunc) -> Module {
    let mut km = KernelModule::new();
    km.memory(layout.pages(), Some(layout.pages() + 4));
    km.add_exported(init);
    km.add_exported(kernel);
    km.add_exported(checksum);
    km.finish()
}

/// Assemble with extra (non-exported) helper functions declared via `km`.
pub fn assemble_with(
    layout: &Layout,
    mut km: KernelModule,
    init: DslFunc,
    kernel: DslFunc,
    checksum: DslFunc,
) -> Module {
    km.memory(layout.pages(), Some(layout.pages() + 4));
    km.add_exported(init);
    km.add_exported(kernel);
    km.add_exported(checksum);
    km.finish()
}

/// Step the shared LCG: `x = x * 1664525 + 1013904223` (32-bit wrap).
/// Both sides use identical wrapping arithmetic.
pub fn lcg_next(x: u32) -> u32 {
    x.wrapping_mul(1664525).wrapping_add(1013904223)
}

/// DSL statement: `v = v * 1664525 + 1013904223` for an i32 local.
pub fn lcg_step(f: &mut DslFunc, v: Var) {
    f.assign(v, v.get().mul(ci(1664525i32)).add(ci(1013904223i32)));
}

/// DSL expression: positive pseudo-random in `[0, m)` from LCG state `v`
/// — `(v >>> 8) % m` (logical shift keeps it non-negative for m > 0).
pub fn lcg_pick(v: Var, m: i32) -> Expr {
    v.get().shr_u(ci(8)).rem_u(ci(m))
}

/// Native twin of [`lcg_pick`].
pub fn lcg_pick_native(x: u32, m: u32) -> u32 {
    (x >> 8) % m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_matches_reference() {
        let mut x = 1u32;
        x = lcg_next(x);
        assert_eq!(x, 1015568748);
        assert_eq!(lcg_pick_native(x, 100), (1015568748u32 >> 8) % 100);
    }

    #[test]
    fn scale_picks() {
        assert_eq!(Scale::Mini.pick(1, 2, 3), 1);
        assert_eq!(Scale::Train.pick(1, 2, 3), 3);
        assert_eq!(Scale::parse("train"), Some(Scale::Train));
    }
}
