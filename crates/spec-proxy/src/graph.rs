//! `505.mcf_r` proxy — network-flow-style pointer-chasing integer workload:
//! repeated Bellman-Ford shortest-path relaxation over a synthetic sparse
//! graph (mcf's network simplex is dominated by exactly this kind of
//! integer arc scanning with data-dependent branches).

use crate::common::{
    assemble, checksum_fn_i32, checksum_slices_i32, lcg_next, lcg_pick, lcg_pick_native, lcg_step,
    ClosureKernel, Scale,
};
use lb_dsl::expr::i32 as ci;
use lb_dsl::{Benchmark, DslFunc, Layout};
use lb_wasm::types::ValType;

const INF: i32 = 1 << 29;

/// Build the `mcf` proxy benchmark.
pub fn mcf(s: Scale) -> Benchmark {
    let n = s.pick(64, 600, 2400) as i32; // nodes
    let deg = 4i32; // out-degree
    let m = n * deg; // edges
    let rounds = s.pick(4, 12, 30) as i32;

    let mut l = Layout::new();
    let edge_src = l.array_i32(m as u32);
    let edge_dst = l.array_i32(m as u32);
    let edge_cost = l.array_i32(m as u32);
    let dist = l.array_i32(n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let rng = fi.local_i32();
        fi.assign(rng, ci(12345));
        fi.for_i32(i, ci(0), ci(m), |f| {
            // src = i / deg (every node gets `deg` out-edges)
            edge_src.set(f, i.get(), i.get().div_s(ci(deg)));
            lcg_step(f, rng);
            edge_dst.set(f, i.get(), lcg_pick(rng, n));
            lcg_step(f, rng);
            edge_cost.set(f, i.get(), lcg_pick(rng, 1000) + ci(1));
        });
        fi.for_i32(i, ci(0), ci(n), |f| {
            dist.set(f, i.get(), ci(INF));
        });
        dist.set(&mut fi, ci(0), ci(0));
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let r = fk.local_i32();
        let e = fk.local_i32();
        let nd = fk.local_i32();
        fk.for_i32(r, ci(0), ci(rounds), |f| {
            f.for_i32(e, ci(0), ci(m), |f| {
                // nd = dist[src] + cost
                f.assign(nd, dist.at(edge_src.at(e.get())) + edge_cost.at(e.get()));
                // if nd < dist[dst]: dist[dst] = nd
                f.if_then(nd.get().lt(dist.at(edge_dst.at(e.get()))), |f| {
                    dist.set(f, edge_dst.at(e.get()), nd.get());
                });
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn_i32(&[dist]));

    struct St {
        n: usize,
        m: usize,
        rounds: usize,
        src: Vec<i32>,
        dst: Vec<i32>,
        cost: Vec<i32>,
        dist: Vec<i32>,
    }
    let (n_, m_, rounds_, deg_) = (n as usize, m as usize, rounds as usize, deg as u32);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                m: m_,
                rounds: rounds_,
                src: vec![0; m_],
                dst: vec![0; m_],
                cost: vec![0; m_],
                dist: vec![0; n_],
            },
            init: |s: &mut St| {
                let deg = s.m / s.n;
                let mut rng = 12345u32;
                for i in 0..s.m {
                    s.src[i] = (i / deg) as i32;
                    rng = lcg_next(rng);
                    s.dst[i] = lcg_pick_native(rng, s.n as u32) as i32;
                    rng = lcg_next(rng);
                    s.cost[i] = lcg_pick_native(rng, 1000) as i32 + 1;
                }
                for d in s.dist.iter_mut() {
                    *d = INF;
                }
                s.dist[0] = 0;
            },
            kernel: |s: &mut St| {
                for _ in 0..s.rounds {
                    for e in 0..s.m {
                        let nd = s.dist[s.src[e] as usize].wrapping_add(s.cost[e]);
                        if nd < s.dist[s.dst[e] as usize] {
                            s.dist[s.dst[e] as usize] = nd;
                        }
                    }
                }
            },
            checksum: |s: &St| checksum_slices_i32(&[&s.dist]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });
    let _ = deg_;

    Benchmark::new("mcf", "spec", module, native)
}

/// `531.deepsjeng_r` proxy — alpha-beta game-tree search over a synthetic
/// deterministic game defined by integer hashing (deepsjeng is dominated by
/// recursive search with data-dependent pruning branches).
pub fn deepsjeng(s: Scale) -> Benchmark {
    let depth = s.pick(5, 7, 9) as i32;
    let branch = 5i32;
    let roots = s.pick(4, 12, 24) as i32;

    // negamax(node, depth, alpha, beta) -> score
    let mut km = lb_dsl::KernelModule::new();
    let negamax = km.declare(
        "negamax",
        &[ValType::I32, ValType::I32, ValType::I32, ValType::I32],
        Some(ValType::I32),
    );
    {
        let mut f = DslFunc::new(
            "negamax",
            &[ValType::I32, ValType::I32, ValType::I32, ValType::I32],
            Some(ValType::I32),
        );
        let node = f.param(0);
        let depth = f.param(1);
        let alpha = f.local_i32(); // mutable copy of param 2
        let beta = f.param(3);
        let h = f.local_i32();
        let i = f.local_i32();
        let child = f.local_i32();
        let score = f.local_i32();
        let p_alpha = f.param(2);
        f.assign(alpha, p_alpha.get());
        // h = node * 2654435761
        f.assign(h, node.get().mul(ci(-1640531535i32))); // 2654435761 as i32
                                                         // Leaf: eval = (h >>> 16) % 2001 - 1000
        f.if_then(depth.get().eqz(), |f| {
            f.ret(h.get().shr_u(ci(16)).rem_u(ci(2001)) - ci(1000));
        });
        f.for_i32(i, ci(0), ci(branch), |f| {
            // child = h ^ (i * 2246822519)
            f.assign(child, h.get().xor(i.get().mul(ci(-2048144777i32))));
            // score = -negamax(child, depth-1, -beta, -alpha)
            f.assign(
                score,
                -lb_dsl::call(
                    negamax,
                    vec![child.get(), depth.get() - ci(1), -beta.get(), -alpha.get()],
                ),
            );
            f.if_then(score.get().gt(alpha.get()), |f| {
                f.assign(alpha, score.get());
            });
            // Beta cutoff.
            f.if_then(alpha.get().ge(beta.get()), |f| {
                f.ret(alpha.get());
            });
        });
        f.ret(alpha.get());
        km.define(negamax, f);
    }

    let mut l = Layout::new();
    let results = l.array_i32(roots as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        fi.for_i32(i, ci(0), ci(roots), |f| {
            results.set(f, i.get(), ci(0));
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        fk.for_i32(i, ci(0), ci(roots), |f| {
            results.set(
                f,
                i.get(),
                lb_dsl::call(
                    negamax,
                    vec![i.get() + ci(1), ci(depth), ci(-(1 << 20)), ci(1 << 20)],
                ),
            );
        });
    }

    let module = crate::common::assemble_with(&l, km, fi, fk, checksum_fn_i32(&[results]));

    fn negamax_native(node: i32, depth: i32, mut alpha: i32, beta: i32, branch: i32) -> i32 {
        let h = node.wrapping_mul(-1640531535);
        if depth == 0 {
            return ((h as u32 >> 16) % 2001) as i32 - 1000;
        }
        for i in 0..branch {
            let child = h ^ i.wrapping_mul(-2048144777);
            let score = -negamax_native(child, depth - 1, -beta, -alpha, branch);
            if score > alpha {
                alpha = score;
            }
            if alpha >= beta {
                return alpha;
            }
        }
        alpha
    }

    struct St {
        roots: usize,
        depth: i32,
        branch: i32,
        results: Vec<i32>,
    }
    let (roots_, depth_, branch_) = (roots as usize, depth, branch);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                roots: roots_,
                depth: depth_,
                branch: branch_,
                results: vec![0; roots_],
            },
            init: |s: &mut St| {
                for r in s.results.iter_mut() {
                    *r = 0;
                }
            },
            kernel: |s: &mut St| {
                for i in 0..s.roots {
                    s.results[i] =
                        negamax_native(i as i32 + 1, s.depth, -(1 << 20), 1 << 20, s.branch);
                }
            },
            checksum: |s: &St| checksum_slices_i32(&[&s.results]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("deepsjeng", "spec", module, native)
}
