//! Molecular-dynamics proxies:
//!
//! * `508.namd_r` — Lennard-Jones pair forces with a cutoff (namd's inner
//!   loops compute exactly such pairwise nonbonded forces);
//! * `544.nab_r` — Coulomb electrostatics with `1/sqrt` distances (nab's
//!   generalized-Born terms are dominated by such reciprocal square roots).

use crate::common::{
    assemble, checksum_fn, checksum_slices, lcg_next, lcg_step, ClosureKernel, Scale,
};
use lb_dsl::expr::{f64 as cf, i32 as ci};
use lb_dsl::{Benchmark, DslFunc, Layout};

/// Deterministic coordinate in [0, box) from an LCG draw.
fn coord(x: u32, boxsize: f64) -> f64 {
    (x >> 8) as f64 / ((1u32 << 24) as f64) * boxsize
}

/// `namd` proxy: LJ 6-12 forces over all pairs within a cutoff.
pub fn namd(s: Scale) -> Benchmark {
    let n = s.pick(32, 220, 700) as i32;
    let steps = s.pick(2, 4, 8) as i32;
    let boxsize = 10.0f64;
    let cutoff2 = 6.25f64; // 2.5^2
    let eps = 0.25f64;
    let sigma2 = 1.1f64;
    let dt = 1e-4f64;

    let mut l = Layout::new();
    let px = l.array_f64(n as u32);
    let py = l.array_f64(n as u32);
    let pz = l.array_f64(n as u32);
    let fx = l.array_f64(n as u32);
    let fy = l.array_f64(n as u32);
    let fz = l.array_f64(n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let rng = fi.local_i32();
        fi.assign(rng, ci(777));
        fi.for_i32(i, ci(0), ci(n), |f| {
            for arr in [px, py, pz] {
                lcg_step(f, rng);
                // coord = (rng >>> 8) / 2^24 * box
                arr.set(
                    f,
                    i.get(),
                    rng.get()
                        .shr_u(ci(8))
                        .to_f64()
                        .fdiv(cf((1u32 << 24) as f64))
                        * cf(boxsize),
                );
            }
            for arr in [fx, fy, fz] {
                arr.set(f, i.get(), cf(0.0));
            }
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let t = fk.local_i32();
        let i = fk.local_i32();
        let j = fk.local_i32();
        let dx = fk.local_f64();
        let dy = fk.local_f64();
        let dz = fk.local_f64();
        let r2 = fk.local_f64();
        let s2 = fk.local_f64();
        let s6 = fk.local_f64();
        let ff = fk.local_f64();
        fk.for_i32(t, ci(0), ci(steps), |f| {
            f.for_i32(i, ci(0), ci(n), |f| {
                f.for_i32_step(j, i.get() + ci(1), ci(n), 1, |f| {
                    f.assign(dx, px.at(i.get()) - px.at(j.get()));
                    f.assign(dy, py.at(i.get()) - py.at(j.get()));
                    f.assign(dz, pz.at(i.get()) - pz.at(j.get()));
                    f.assign(
                        r2,
                        dx.get() * dx.get() + dy.get() * dy.get() + dz.get() * dz.get(),
                    );
                    f.if_then(r2.get().lt(cf(cutoff2)).and(r2.get().gt(cf(1e-6))), |f| {
                        f.assign(s2, cf(sigma2).fdiv(r2.get()));
                        f.assign(s6, s2.get() * s2.get() * s2.get());
                        // f = 24*eps*(2*s6^2 - s6)/r2
                        f.assign(
                            ff,
                            (cf(24.0 * eps) * (cf(2.0) * s6.get() * s6.get() - s6.get()))
                                .fdiv(r2.get()),
                        );
                        for (fa, d) in [(fx, dx), (fy, dy), (fz, dz)] {
                            fa.set(f, i.get(), fa.at(i.get()) + ff.get() * d.get());
                            fa.set(f, j.get(), fa.at(j.get()) - ff.get() * d.get());
                        }
                    });
                });
            });
            // Nudge positions along the force (gradient step).
            f.for_i32(i, ci(0), ci(n), |f| {
                for (p, fa) in [(px, fx), (py, fy), (pz, fz)] {
                    p.set(f, i.get(), p.at(i.get()) + cf(dt) * fa.at(i.get()));
                }
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[fx, fy, fz]));

    struct St {
        n: usize,
        steps: usize,
        c: [f64; 5],
        p: [Vec<f64>; 3],
        f: [Vec<f64>; 3],
    }
    let n_ = n as usize;
    let steps_ = steps as usize;
    let consts = [boxsize, cutoff2, eps, sigma2, dt];
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                steps: steps_,
                c: consts,
                p: [vec![0.0; n_], vec![0.0; n_], vec![0.0; n_]],
                f: [vec![0.0; n_], vec![0.0; n_], vec![0.0; n_]],
            },
            init: |s: &mut St| {
                let boxsize = s.c[0];
                let mut rng = 777u32;
                for i in 0..s.n {
                    for d in 0..3 {
                        rng = lcg_next(rng);
                        s.p[d][i] = coord(rng, boxsize);
                        s.f[d][i] = 0.0;
                    }
                }
            },
            kernel: |s: &mut St| {
                let [_, cutoff2, eps, sigma2, dt] = s.c;
                for _ in 0..s.steps {
                    for i in 0..s.n {
                        for j in i + 1..s.n {
                            let dx = s.p[0][i] - s.p[0][j];
                            let dy = s.p[1][i] - s.p[1][j];
                            let dz = s.p[2][i] - s.p[2][j];
                            let r2 = dx * dx + dy * dy + dz * dz;
                            if r2 < cutoff2 && r2 > 1e-6 {
                                let s2 = sigma2 / r2;
                                let s6 = s2 * s2 * s2;
                                let ff = 24.0 * eps * (2.0 * s6 * s6 - s6) / r2;
                                for (d, dd) in [dx, dy, dz].into_iter().enumerate() {
                                    s.f[d][i] += ff * dd;
                                    s.f[d][j] -= ff * dd;
                                }
                            }
                        }
                    }
                    for i in 0..s.n {
                        for d in 0..3 {
                            s.p[d][i] += dt * s.f[d][i];
                        }
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.f[0], &s.f[1], &s.f[2]]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("namd", "spec", module, native)
}

/// `nab` proxy: Coulomb potential/force accumulation with `1/sqrt`.
pub fn nab(s: Scale) -> Benchmark {
    let n = s.pick(32, 200, 640) as i32;
    let steps = s.pick(2, 4, 8) as i32;
    let boxsize = 12.0f64;

    let mut l = Layout::new();
    let px = l.array_f64(n as u32);
    let py = l.array_f64(n as u32);
    let pz = l.array_f64(n as u32);
    let q = l.array_f64(n as u32);
    let pot = l.array_f64(n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let rng = fi.local_i32();
        fi.assign(rng, ci(4242));
        fi.for_i32(i, ci(0), ci(n), |f| {
            for arr in [px, py, pz] {
                lcg_step(f, rng);
                arr.set(
                    f,
                    i.get(),
                    rng.get()
                        .shr_u(ci(8))
                        .to_f64()
                        .fdiv(cf((1u32 << 24) as f64))
                        * cf(boxsize),
                );
            }
            // Alternating partial charges.
            q.set(
                f,
                i.get(),
                (i.get().rem_s(ci(2)).to_f64() * cf(2.0) - cf(1.0)) * cf(0.4),
            );
            pot.set(f, i.get(), cf(0.0));
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let t = fk.local_i32();
        let i = fk.local_i32();
        let j = fk.local_i32();
        let dx = fk.local_f64();
        let dy = fk.local_f64();
        let dz = fk.local_f64();
        let r2 = fk.local_f64();
        let inv = fk.local_f64();
        fk.for_i32(t, ci(0), ci(steps), |f| {
            f.for_i32(i, ci(0), ci(n), |f| {
                f.for_i32_step(j, i.get() + ci(1), ci(n), 1, |f| {
                    f.assign(dx, px.at(i.get()) - px.at(j.get()));
                    f.assign(dy, py.at(i.get()) - py.at(j.get()));
                    f.assign(dz, pz.at(i.get()) - pz.at(j.get()));
                    f.assign(
                        r2,
                        dx.get() * dx.get() + dy.get() * dy.get() + dz.get() * dz.get() + cf(1e-3),
                    );
                    f.assign(inv, cf(1.0).fdiv(r2.get().sqrt()));
                    let e = q.at(i.get()) * q.at(j.get()) * inv.get();
                    pot.set(f, i.get(), pot.at(i.get()) + e.clone());
                    pot.set(f, j.get(), pot.at(j.get()) + e);
                });
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[pot]));

    struct St {
        n: usize,
        steps: usize,
        boxsize: f64,
        p: [Vec<f64>; 3],
        q: Vec<f64>,
        pot: Vec<f64>,
    }
    let (n_, steps_) = (n as usize, steps as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                steps: steps_,
                boxsize,
                p: [vec![0.0; n_], vec![0.0; n_], vec![0.0; n_]],
                q: vec![0.0; n_],
                pot: vec![0.0; n_],
            },
            init: |s: &mut St| {
                let mut rng = 4242u32;
                for i in 0..s.n {
                    for d in 0..3 {
                        rng = lcg_next(rng);
                        s.p[d][i] = coord(rng, s.boxsize);
                    }
                    s.q[i] = ((i % 2) as f64 * 2.0 - 1.0) * 0.4;
                    s.pot[i] = 0.0;
                }
            },
            kernel: |s: &mut St| {
                for _ in 0..s.steps {
                    for i in 0..s.n {
                        for j in i + 1..s.n {
                            let dx = s.p[0][i] - s.p[0][j];
                            let dy = s.p[1][i] - s.p[1][j];
                            let dz = s.p[2][i] - s.p[2][j];
                            let r2 = dx * dx + dy * dy + dz * dz + 1e-3;
                            let inv = 1.0 / r2.sqrt();
                            let e = s.q[i] * s.q[j] * inv;
                            s.pot[i] += e;
                            s.pot[j] += e;
                        }
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.pot]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("nab", "spec", module, native)
}
