//! # lb-spec-proxy — proxies for the paper's SPEC CPU 2017 subset
//!
//! The paper evaluates seven SPEC CPU 2017 Rate benchmarks (505.mcf_r,
//! 508.namd_r, 519.lbm_r, 525.x264_r, 531.deepsjeng_r, 544.nab_r,
//! 557.xz_r) in the Train configuration. SPEC is copyrighted — the paper
//! itself could only redistribute patches — so this crate implements a
//! *proxy* for each: the same algorithmic core (network relaxation, MD
//! force loops, lattice-Boltzmann, SAD motion search, alpha-beta search,
//! electrostatics, LZ77 match finding) over synthetic data, authored in
//! the kernel DSL with bit-identical native twins, exactly like the
//! PolyBench suite.
//!
//! ```rust
//! use lb_spec_proxy::{by_name, Scale};
//! let b = by_name("mcf", Scale::Mini).unwrap();
//! assert_eq!(b.suite, "spec");
//! assert!(b.native_checksum().is_finite());
//! ```

#![warn(missing_docs)]

pub mod common;
mod graph;
mod md;
mod media;
mod xz;

pub use common::Scale;
pub use lb_dsl::Benchmark;

/// The proxy names, mirroring the paper's SPEC subset.
pub const NAMES: [&str; 7] = ["mcf", "namd", "lbm", "x264", "deepsjeng", "nab", "xz"];

/// Construct every SPEC-proxy benchmark at the given scale.
pub fn all(s: Scale) -> Vec<Benchmark> {
    NAMES
        .iter()
        .map(|n| by_name(n, s).expect("known name"))
        .collect()
}

/// Construct one proxy by name.
pub fn by_name(name: &str, s: Scale) -> Option<Benchmark> {
    Some(match name {
        "mcf" => graph::mcf(s),
        "deepsjeng" => graph::deepsjeng(s),
        "namd" => md::namd(s),
        "nab" => md::nab(s),
        "lbm" => media::lbm(s),
        "x264" => media::x264(s),
        "xz" => xz::xz(s),
        _ => return None,
    })
}
