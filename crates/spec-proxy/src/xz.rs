//! `557.xz_r` proxy — LZ77 match finding with hash chains over synthetic
//! semi-compressible data (xz/LZMA spends most of its time in exactly this
//! byte-wise match search), plus a checksum over emitted match tokens.

use crate::common::{
    assemble, checksum_fn_i32, checksum_slices_i32, lcg_next, lcg_step, ClosureKernel, Scale,
};
use lb_dsl::expr::i32 as ci;
use lb_dsl::{Benchmark, DslFunc, Expr, Layout};
use lb_wasm::instr::{Instr, MemArg};
use lb_wasm::types::ValType;

const HASH_BITS: i32 = 12;
const HASH_SIZE: i32 = 1 << HASH_BITS;
const MAX_CHAIN: i32 = 16;
const MIN_MATCH: i32 = 3;
const MAX_MATCH: i32 = 64;

/// Build the `xz` proxy benchmark.
pub fn xz(s: Scale) -> Benchmark {
    let n = s.pick(2_000, 40_000, 200_000) as i32; // input bytes

    let mut l = Layout::new();
    let data_words = ((n + 3) / 4) as u32;
    let data = l.array(ValType::I32, data_words); // byte storage
    let head = l.array_i32(HASH_SIZE as u32);
    let prev = l.array_i32(n as u32);
    let out_len = l.array_i32((n / MIN_MATCH + 1) as u32);

    let load8 = |idx: Expr| -> Expr {
        let mut code = idx.into_code();
        code.push(Instr::I32Load8U(MemArg::offset(data.base())));
        Expr::from_raw(code, ValType::I32)
    };
    let store8 = |f: &mut DslFunc, idx: Expr, val: Expr| {
        let mut code = idx.into_code();
        code.extend(val.into_code());
        code.push(Instr::I32Store8(MemArg::offset(data.base())));
        f.stmt(code);
    };

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let rng = fi.local_i32();
        fi.assign(rng, ci(31337));
        // Semi-compressible: low-entropy bytes with repeated phrases.
        fi.for_i32(i, ci(0), ci(n), |f| {
            lcg_step(f, rng);
            // byte = (rng >>> 10) % 19 + 'a'
            store8(f, i.get(), rng.get().shr_u(ci(10)).rem_u(ci(19)) + ci(97));
        });
        // Copy a phrase every 256 bytes to create long matches.
        fi.for_i32(i, ci(512), ci(n - 64), |f| {
            f.if_then(i.get().rem_s(ci(256)).eqz(), |f| {
                let j = f.local_i32();
                f.for_i32(j, ci(0), ci(48), |f| {
                    store8(f, i.get() + j.get(), load8(i.get() + j.get() - ci(509)));
                });
            });
        });
        fi.for_i32(i, ci(0), ci(HASH_SIZE), |f| {
            head.set(f, i.get(), ci(-1));
        });
        fi.for_i32(i, ci(0), ci(n), |f| {
            prev.set(f, i.get(), ci(-1));
        });
        fi.for_i32(i, ci(0), ci(n / MIN_MATCH + 1), |f| {
            out_len.set(f, i.get(), ci(0));
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let pos = fk.local_i32();
        let hash = fk.local_i32();
        let cand = fk.local_i32();
        let chain = fk.local_i32();
        let best = fk.local_i32();
        let len = fk.local_i32();
        let tokens = fk.local_i32();
        fk.assign(tokens, ci(0));
        fk.assign(pos, ci(0));
        fk.while_loop(
            || pos.get().lt(ci(n - MAX_MATCH)),
            |f| {
                // hash of 3 bytes
                f.assign(
                    hash,
                    (load8(pos.get())
                        .xor(load8(pos.get() + ci(1)).shl(ci(4)))
                        .xor(load8(pos.get() + ci(2)).shl(ci(8))))
                    .and(ci(HASH_SIZE - 1)),
                );
                f.assign(best, ci(0));
                f.assign(cand, head.at(hash.get()));
                f.assign(chain, ci(0));
                f.while_loop(
                    || cand.get().ge(ci(0)).and(chain.get().lt(ci(MAX_CHAIN))),
                    |f| {
                        // match length at cand vs pos
                        f.assign(len, ci(0));
                        f.while_loop(
                            || {
                                len.get().lt(ci(MAX_MATCH)).and(
                                    load8(cand.get() + len.get()).eq(load8(pos.get() + len.get())),
                                )
                            },
                            |f| {
                                f.assign(len, len.get() + ci(1));
                            },
                        );
                        f.if_then(len.get().gt(best.get()), |f| {
                            f.assign(best, len.get());
                        });
                        f.assign(cand, prev.at(cand.get()));
                        f.assign(chain, chain.get() + ci(1));
                    },
                );
                // Insert pos into the chain.
                prev.set(f, pos.get(), head.at(hash.get()));
                head.set(f, hash.get(), pos.get());
                // Emit token and advance.
                f.if_else(
                    best.get().ge(ci(MIN_MATCH)),
                    |f| {
                        out_len.set(f, tokens.get(), best.get());
                        f.assign(tokens, tokens.get() + ci(1));
                        f.assign(pos, pos.get() + best.get());
                    },
                    |f| {
                        f.assign(pos, pos.get() + ci(1));
                    },
                );
            },
        );
    }

    let module = assemble(&l, fi, fk, checksum_fn_i32(&[out_len]));

    struct St {
        n: usize,
        data: Vec<u8>,
        head: Vec<i32>,
        prev: Vec<i32>,
        out_len: Vec<i32>,
    }
    let n_ = n as usize;
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                data: vec![0; n_],
                head: vec![-1; HASH_SIZE as usize],
                prev: vec![-1; n_],
                out_len: vec![0; n_ / MIN_MATCH as usize + 1],
            },
            init: |s: &mut St| {
                let mut rng = 31337u32;
                for i in 0..s.n {
                    rng = lcg_next(rng);
                    s.data[i] = (((rng >> 10) % 19) + 97) as u8;
                }
                let mut i = 512;
                while i < s.n - 64 {
                    if i % 256 == 0 {
                        for j in 0..48 {
                            s.data[i + j] = s.data[i + j - 509];
                        }
                    }
                    i += 1;
                }
                for h in s.head.iter_mut() {
                    *h = -1;
                }
                for p in s.prev.iter_mut() {
                    *p = -1;
                }
                for o in s.out_len.iter_mut() {
                    *o = 0;
                }
            },
            kernel: |s: &mut St| {
                let n = s.n as i32;
                let mut tokens = 0usize;
                let mut pos = 0i32;
                while pos < n - MAX_MATCH {
                    let b = |i: i32| s.data[i as usize] as i32;
                    let hash = ((b(pos) ^ (b(pos + 1) << 4) ^ (b(pos + 2) << 8)) & (HASH_SIZE - 1))
                        as usize;
                    let mut best = 0i32;
                    let mut cand = s.head[hash];
                    let mut chain = 0;
                    while cand >= 0 && chain < MAX_CHAIN {
                        let mut len = 0i32;
                        while len < MAX_MATCH && b(cand + len) == b(pos + len) {
                            len += 1;
                        }
                        if len > best {
                            best = len;
                        }
                        cand = s.prev[cand as usize];
                        chain += 1;
                    }
                    s.prev[pos as usize] = s.head[hash];
                    s.head[hash] = pos;
                    if best >= MIN_MATCH {
                        s.out_len[tokens] = best;
                        tokens += 1;
                        pos += best;
                    } else {
                        pos += 1;
                    }
                }
            },
            checksum: |s: &St| checksum_slices_i32(&[&s.out_len]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("xz", "spec", module, native)
}
