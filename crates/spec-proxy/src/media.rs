//! Media/fluid proxies:
//!
//! * `519.lbm_r` — a D2Q9 lattice-Boltzmann stream/collide step (lbm's
//!   entire runtime is such a stencil over distribution functions);
//! * `525.x264_r` — block-matching motion estimation: sum-of-absolute-
//!   differences search over 8-bit frames (x264's hottest loop).

use crate::common::{
    assemble, checksum_fn, checksum_fn_i32, checksum_slices, checksum_slices_i32, lcg_next,
    lcg_step, ClosureKernel, Scale,
};
use lb_dsl::expr::{f64 as cf, i32 as ci};
use lb_dsl::{Benchmark, DslFunc, Layout};
use lb_wasm::instr::{Instr, MemArg};
use lb_wasm::types::ValType;

/// D2Q9 velocity set and weights.
const CX: [i32; 9] = [0, 1, 0, -1, 0, 1, -1, -1, 1];
const CY: [i32; 9] = [0, 0, 1, 0, -1, 1, 1, -1, -1];
const WGT: [f64; 9] = [
    4.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];
const OMEGA: f64 = 1.2;

/// `lbm` proxy: D2Q9 collide+stream on a periodic grid.
pub fn lbm(s: Scale) -> Benchmark {
    let nx = s.pick(12, 40, 100) as i32;
    let ny = s.pick(10, 30, 80) as i32;
    let steps = s.pick(2, 8, 20) as i32;

    let mut l = Layout::new();
    // f[dir][y][x], double-buffered.
    let f0 = l.array3_f64(9, ny as u32, nx as u32);
    let f1 = l.array3_f64(9, ny as u32, nx as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let x = fi.local_i32();
        let y = fi.local_i32();
        fi.for_i32(y, ci(0), ci(ny), |f| {
            f.for_i32(x, ci(0), ci(nx), |f| {
                for d in 0..9usize {
                    // weight * (1 + small spatial perturbation)
                    let pert = (x.get() * ci(7) + y.get() * ci(13) + ci(d as i32))
                        .rem_s(ci(37))
                        .to_f64()
                        * cf(0.001);
                    f0.set(
                        f,
                        ci(d as i32),
                        y.get(),
                        x.get(),
                        cf(WGT[d]) * (cf(1.0) + pert),
                    );
                    f1.set(f, ci(d as i32), y.get(), x.get(), cf(0.0));
                }
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let t = fk.local_i32();
        let x = fk.local_i32();
        let y = fk.local_i32();
        let rho = fk.local_f64();
        let ux = fk.local_f64();
        let uy = fk.local_f64();
        let usq = fk.local_f64();
        let cu = fk.local_f64();
        let feq = fk.local_f64();
        let xs = fk.local_i32();
        let ys = fk.local_i32();
        fk.for_i32(t, ci(0), ci(steps), |f| {
            for swap in 0..2 {
                let (src, dst) = if swap == 0 { (f0, f1) } else { (f1, f0) };
                f.for_i32(y, ci(0), ci(ny), |f| {
                    f.for_i32(x, ci(0), ci(nx), |f| {
                        // Moments.
                        f.assign(rho, cf(0.0));
                        f.assign(ux, cf(0.0));
                        f.assign(uy, cf(0.0));
                        for d in 0..9usize {
                            let v = src.at(ci(d as i32), y.get(), x.get());
                            f.assign(rho, rho.get() + v.clone());
                            if CX[d] != 0 {
                                f.assign(ux, ux.get() + v.clone() * cf(CX[d] as f64));
                            }
                            if CY[d] != 0 {
                                f.assign(uy, uy.get() + v * cf(CY[d] as f64));
                            }
                        }
                        f.assign(ux, ux.get().fdiv(rho.get()));
                        f.assign(uy, uy.get().fdiv(rho.get()));
                        f.assign(usq, cf(1.5) * (ux.get() * ux.get() + uy.get() * uy.get()));
                        // Collide + stream each direction to (x+cx, y+cy).
                        for d in 0..9usize {
                            f.assign(
                                cu,
                                cf(3.0)
                                    * (ux.get() * cf(CX[d] as f64) + uy.get() * cf(CY[d] as f64)),
                            );
                            f.assign(
                                feq,
                                cf(WGT[d])
                                    * rho.get()
                                    * (cf(1.0) + cu.get() + cf(0.5) * cu.get() * cu.get()
                                        - usq.get()),
                            );
                            // periodic neighbor
                            f.assign(xs, (x.get() + ci(CX[d]) + ci(nx)).rem_s(ci(nx)));
                            f.assign(ys, (y.get() + ci(CY[d]) + ci(ny)).rem_s(ci(ny)));
                            let old = src.at(ci(d as i32), y.get(), x.get());
                            dst.set(
                                f,
                                ci(d as i32),
                                ys.get(),
                                xs.get(),
                                old.clone() + cf(OMEGA) * (feq.get() - old),
                            );
                        }
                    });
                });
            }
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[f0.flat()]));

    struct St {
        nx: usize,
        ny: usize,
        steps: usize,
        f0: Vec<f64>,
        f1: Vec<f64>,
    }
    let (nx_, ny_, steps_) = (nx as usize, ny as usize, steps as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                nx: nx_,
                ny: ny_,
                steps: steps_,
                f0: vec![0.0; 9 * ny_ * nx_],
                f1: vec![0.0; 9 * ny_ * nx_],
            },
            init: |s: &mut St| {
                let (nx, ny) = (s.nx, s.ny);
                for y in 0..ny {
                    for x in 0..nx {
                        for d in 0..9 {
                            let pert =
                                ((x as i32 * 7 + y as i32 * 13 + d as i32) % 37) as f64 * 0.001;
                            s.f0[(d * ny + y) * nx + x] = WGT[d] * (1.0 + pert);
                            s.f1[(d * ny + y) * nx + x] = 0.0;
                        }
                    }
                }
            },
            kernel: |s: &mut St| {
                let (nx, ny) = (s.nx, s.ny);
                fn step(src: &[f64], dst: &mut [f64], nx: usize, ny: usize) {
                    let idx = |d: usize, y: usize, x: usize| (d * ny + y) * nx + x;
                    for y in 0..ny {
                        for x in 0..nx {
                            let mut rho = 0.0;
                            let mut ux = 0.0;
                            let mut uy = 0.0;
                            for d in 0..9 {
                                let v = src[idx(d, y, x)];
                                rho += v;
                                if CX[d] != 0 {
                                    ux += v * CX[d] as f64;
                                }
                                if CY[d] != 0 {
                                    uy += v * CY[d] as f64;
                                }
                            }
                            ux /= rho;
                            uy /= rho;
                            let usq = 1.5 * (ux * ux + uy * uy);
                            for d in 0..9 {
                                let cu = 3.0 * (ux * CX[d] as f64 + uy * CY[d] as f64);
                                let feq = WGT[d] * rho * (1.0 + cu + 0.5 * cu * cu - usq);
                                let xs = ((x as i32 + CX[d] + nx as i32) % nx as i32) as usize;
                                let ys = ((y as i32 + CY[d] + ny as i32) % ny as i32) as usize;
                                let old = src[idx(d, y, x)];
                                dst[idx(d, ys, xs)] = old + OMEGA * (feq - old);
                            }
                        }
                    }
                }
                for _ in 0..s.steps {
                    step(&s.f0, &mut s.f1, nx, ny);
                    step(&s.f1, &mut s.f0, nx, ny);
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.f0]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("lbm", "spec", module, native)
}

/// `x264` proxy: exhaustive SAD motion search of 16×16 blocks within a
/// ±search window, over two synthetic 8-bit frames.
pub fn x264(s: Scale) -> Benchmark {
    let w = s.pick(48, 160, 320) as i32;
    let h = s.pick(32, 96, 192) as i32;
    let search = s.pick(2, 4, 8) as i32;
    const B: i32 = 16;

    let mut l = Layout::new();
    // Frames as byte arrays: use i32 arrays of bytes? Real frames are u8:
    // allocate raw byte ranges via the layout's array of i32 words and use
    // 8-bit loads/stores through raw instructions.
    let frame0 = l.array(ValType::I32, ((w * h + 3) / 4) as u32); // byte storage
    let frame1 = l.array(ValType::I32, ((w * h + 3) / 4) as u32);
    let nbx = w / B;
    let nby = h / B;
    let best_sad = l.array_i32((nbx * nby) as u32);
    let best_mv = l.array_i32((nbx * nby) as u32);

    // Byte load helper (base address + dynamic index → load8_u).
    let load8 = |base: u32, idx: lb_dsl::Expr| -> lb_dsl::Expr {
        let mut code = idx.into_code();
        code.push(Instr::I32Load8U(MemArg::offset(base)));
        lb_dsl::Expr::from_raw(code, ValType::I32)
    };
    let store8 = |f: &mut DslFunc, base: u32, idx: lb_dsl::Expr, val: lb_dsl::Expr| {
        let mut code = idx.into_code();
        code.extend(val.into_code());
        code.push(Instr::I32Store8(MemArg::offset(base)));
        f.stmt(code);
    };

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let rng = fi.local_i32();
        fi.assign(rng, ci(99));
        fi.for_i32(i, ci(0), ci(w * h), |f| {
            lcg_step(f, rng);
            store8(
                f,
                frame0.base(),
                i.get(),
                rng.get().shr_u(ci(9)).and(ci(0xFF)),
            );
            // Frame 1 is frame 0 shifted by (3, 2) with noise.
            lcg_step(f, rng);
            store8(
                f,
                frame1.base(),
                i.get(),
                rng.get().shr_u(ci(11)).and(ci(0xFF)),
            );
        });
        // Overwrite the interior of frame1 with a shifted copy of frame0 so
        // the motion search has real structure to find.
        let x = fi.local_i32();
        let y = fi.local_i32();
        fi.for_i32(y, ci(3), ci(h), |f| {
            f.for_i32(x, ci(2), ci(w), |f| {
                let src = (y.get() - ci(3)).mul(ci(w)) + (x.get() - ci(2));
                let dst = y.get().mul(ci(w)) + x.get();
                store8(f, frame1.base(), dst, load8(frame0.base(), src));
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let bx = fk.local_i32();
        let by = fk.local_i32();
        let dx = fk.local_i32();
        let dy = fk.local_i32();
        let xx = fk.local_i32();
        let yy = fk.local_i32();
        let sad = fk.local_i32();
        let diff = fk.local_i32();
        let bidx = fk.local_i32();
        fk.for_i32(by, ci(0), ci(nby), |f| {
            f.for_i32(bx, ci(0), ci(nbx), |f| {
                f.assign(bidx, by.get().mul(ci(nbx)) + bx.get());
                best_sad.set(f, bidx.get(), ci(1 << 30));
                best_mv.set(f, bidx.get(), ci(0));
                f.for_i32(dy, ci(0), ci(2 * search + 1), |f| {
                    f.for_i32(dx, ci(0), ci(2 * search + 1), |f| {
                        // Candidate top-left in frame0 (clamped to bounds).
                        f.assign(sad, ci(0));
                        f.for_i32(yy, ci(0), ci(B), |f| {
                            f.for_i32(xx, ci(0), ci(B), |f| {
                                let cy = by.get().mul(ci(B)) + yy.get();
                                let cx = bx.get().mul(ci(B)) + xx.get();
                                // Reference pixel in frame1.
                                let rp = load8(frame1.base(), cy.clone().mul(ci(w)) + cx.clone());
                                // Candidate pixel in frame0, offset by
                                // (dx-search, dy-search), clamped via max 0
                                // and min w-1/h-1 expressed with selects.
                                let ox = cx + dx.get() - ci(search);
                                let oy = cy + dy.get() - ci(search);
                                let oxc = ci(0).select(ox.clone(), ox.clone().lt(ci(0)));
                                let oxc = ci(w - 1).select(oxc.clone(), oxc.ge(ci(w)));
                                let oyc = ci(0).select(oy.clone(), oy.clone().lt(ci(0)));
                                let oyc = ci(h - 1).select(oyc.clone(), oyc.ge(ci(h)));
                                let cp = load8(frame0.base(), oyc.mul(ci(w)) + oxc);
                                f.assign(diff, rp - cp);
                                // |diff| via select
                                let neg = -diff.get();
                                f.assign(diff, neg.select(diff.get(), diff.get().lt(ci(0))));
                                f.assign(sad, sad.get() + diff.get());
                            });
                        });
                        f.if_then(sad.get().lt(best_sad.at(bidx.get())), |f| {
                            best_sad.set(f, bidx.get(), sad.get());
                            best_mv.set(f, bidx.get(), dy.get().mul(ci(64)) + dx.get());
                        });
                    });
                });
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn_i32(&[best_sad, best_mv]));

    struct St {
        w: usize,
        h: usize,
        search: i32,
        f0: Vec<u8>,
        f1: Vec<u8>,
        best_sad: Vec<i32>,
        best_mv: Vec<i32>,
    }
    let (w_, h_, search_) = (w as usize, h as usize, search);
    let nblocks = (nbx * nby) as usize;
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                w: w_,
                h: h_,
                search: search_,
                f0: vec![0; w_ * h_],
                f1: vec![0; w_ * h_],
                best_sad: vec![0; nblocks],
                best_mv: vec![0; nblocks],
            },
            init: |s: &mut St| {
                let mut rng = 99u32;
                for i in 0..s.w * s.h {
                    rng = lcg_next(rng);
                    s.f0[i] = ((rng >> 9) & 0xFF) as u8;
                    rng = lcg_next(rng);
                    s.f1[i] = ((rng >> 11) & 0xFF) as u8;
                }
                for y in 3..s.h {
                    for x in 2..s.w {
                        s.f1[y * s.w + x] = s.f0[(y - 3) * s.w + (x - 2)];
                    }
                }
            },
            kernel: |s: &mut St| {
                const B: usize = 16;
                let (w, h) = (s.w, s.h);
                let (nbx, nby) = (w / B, h / B);
                let search = s.search;
                for by in 0..nby {
                    for bx in 0..nbx {
                        let bidx = by * nbx + bx;
                        s.best_sad[bidx] = 1 << 30;
                        s.best_mv[bidx] = 0;
                        for dy in 0..(2 * search + 1) {
                            for dx in 0..(2 * search + 1) {
                                let mut sad = 0i32;
                                for yy in 0..B {
                                    for xx in 0..B {
                                        let cy = (by * B + yy) as i32;
                                        let cx = (bx * B + xx) as i32;
                                        let rp = s.f1[cy as usize * w + cx as usize] as i32;
                                        let ox = (cx + dx - search).clamp(0, w as i32 - 1);
                                        let oy = (cy + dy - search).clamp(0, h as i32 - 1);
                                        let cp = s.f0[oy as usize * w + ox as usize] as i32;
                                        sad += (rp - cp).abs();
                                    }
                                }
                                if sad < s.best_sad[bidx] {
                                    s.best_sad[bidx] = sad;
                                    s.best_mv[bidx] = dy * 64 + dx;
                                }
                            }
                        }
                    }
                }
            },
            checksum: |s: &St| checksum_slices_i32(&[&s.best_sad, &s.best_mv]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("x264", "spec", module, native)
}
