//! Differential tests: every SPEC proxy, on both engines, must reproduce
//! its native twin's checksum exactly.

use lb_core::exec::{Engine, Linker};
use lb_core::{BoundsStrategy, MemoryConfig};
use lb_interp::InterpEngine;
use lb_jit::{JitEngine, JitProfile};
use lb_spec_proxy::{all, by_name, Scale};

fn wasm_checksum(engine: &dyn Engine, bench: &lb_spec_proxy::Benchmark, s: BoundsStrategy) -> f64 {
    let loaded = engine.load(&bench.module).expect("load");
    let config = MemoryConfig::new(s, 1, 512).with_reserve(1024 * 65536);
    let mut inst = loaded.instantiate(&config, &Linker::new()).expect("inst");
    inst.invoke("init", &[]).expect("init");
    inst.invoke("kernel", &[]).expect("kernel");
    inst.invoke("checksum", &[])
        .expect("checksum")
        .unwrap()
        .as_f64()
        .unwrap()
}

#[test]
fn all_proxies_match_native_on_interp() {
    let engine = InterpEngine::new();
    for bench in all(Scale::Mini) {
        let native = bench.native_checksum();
        let wasm = wasm_checksum(&engine, &bench, BoundsStrategy::Trap);
        assert_eq!(
            native.to_bits(),
            wasm.to_bits(),
            "{}: native {native} != wasm {wasm}",
            bench.name
        );
    }
}

#[test]
fn all_proxies_match_native_on_jit() {
    for profile in [JitProfile::wavm(), JitProfile::v8()] {
        let engine = JitEngine::new(profile);
        for bench in all(Scale::Mini) {
            let native = bench.native_checksum();
            let wasm = wasm_checksum(&engine, &bench, BoundsStrategy::Mprotect);
            assert_eq!(
                native.to_bits(),
                wasm.to_bits(),
                "{} on {}: native {native} != wasm {wasm}",
                bench.name,
                profile.name
            );
        }
    }
}

#[test]
fn registry_complete() {
    assert_eq!(lb_spec_proxy::NAMES.len(), 7);
    for n in lb_spec_proxy::NAMES {
        assert!(by_name(n, Scale::Mini).is_some(), "missing {n}");
    }
    assert!(by_name("bogus", Scale::Mini).is_none());
}
