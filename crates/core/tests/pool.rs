//! Instance-pool contract tests: zero `mmap`/`munmap` at steady state,
//! the zero-fill guarantee after dirtying runs, kept-alive uffd
//! registration, and clean degradation when pooling is off or shapes
//! change.
//!
//! Lives in its own integration binary because the pool configuration is
//! process-global; every test serializes on `TEST_LOCK` and restores the
//! disabled-pool default before returning.

use lb_core::pool::{self, MemoryPoolConfig};
use lb_core::{BoundsStrategy, LinearMemory, MemoryConfig, WASM_PAGE};
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn cfg(strategy: BoundsStrategy) -> MemoryConfig {
    MemoryConfig::new(strategy, 2, 8).with_reserve(16 * WASM_PAGE)
}

fn maps_lines() -> usize {
    std::fs::read_to_string("/proc/self/maps")
        .expect("read /proc/self/maps")
        .lines()
        .count()
}

/// Enable pooling for the duration of a test; disables and drains on drop
/// so sibling tests (and the binary's exit) see the default state.
struct PoolGuard;

impl PoolGuard {
    fn enable(capacity: usize, verify_zero: bool) -> PoolGuard {
        pool::drain();
        pool::configure(MemoryPoolConfig {
            capacity,
            verify_zero,
        });
        PoolGuard
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        pool::configure(MemoryPoolConfig::default());
        pool::drain();
    }
}

fn strategies() -> Vec<BoundsStrategy> {
    BoundsStrategy::ALL
        .into_iter()
        .filter(|&s| s != BoundsStrategy::Uffd || lb_core::uffd::sigbus_mode_available())
        .collect()
}

#[test]
fn steady_state_reuse_performs_zero_mmap_and_maps_stay_stable() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _p = PoolGuard::enable(4, true);
    for s in strategies() {
        // Warm-up: the first instantiations miss and map fresh memory;
        // their drops park the parts. A few rounds also settle the
        // allocator so the maps snapshot below is steady.
        for _ in 0..3 {
            let m = LinearMemory::new(&cfg(s)).unwrap();
            m.write_bytes(0, &[0xAB; 256]).unwrap();
        }
        let before = lb_core::stats::snapshot();
        let maps_before = maps_lines();
        for i in 0..10u32 {
            let m = LinearMemory::new(&cfg(s)).unwrap();
            assert!(m.from_pool(), "iteration {i} of {s} must hit the pool");
            m.write_bytes((i % 2 * 4096) as u32, &[0xCD; 512]).unwrap();
        }
        let d = lb_core::stats::snapshot().delta(&before);
        assert_eq!(d.mmap, 0, "{s}: steady-state reuse must not mmap");
        assert_eq!(d.munmap, 0, "{s}: steady-state reuse must not munmap");
        assert!(d.pool_hits >= 10, "{s}: hits {}", d.pool_hits);
        assert_eq!(d.pool_misses, 0, "{s}: no misses at steady state");
        assert_eq!(
            maps_lines(),
            maps_before,
            "{s}: the address space must be byte-for-byte stable"
        );
        if s == BoundsStrategy::Uffd {
            assert_eq!(
                d.uffd_register, 0,
                "reuse must keep the uffd registration alive"
            );
        }
        if s == BoundsStrategy::Mprotect {
            assert_eq!(
                d.mprotect, 0,
                "same-shape mprotect reuse must skip every protect call"
            );
        }
    }
}

#[test]
fn reused_memory_reads_all_zero_after_dirtying_run() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _p = PoolGuard::enable(2, true);
    for s in strategies() {
        let init_bytes = 2 * WASM_PAGE;
        {
            let m = LinearMemory::new(&cfg(s)).unwrap();
            // Dirty every page of the initial window.
            let junk = vec![0x5Au8; init_bytes];
            m.write_bytes(0, &junk).unwrap();
            let mut check = vec![0u8; 64];
            m.read_bytes((init_bytes - 64) as u32, &mut check).unwrap();
            assert!(check.iter().all(|&b| b == 0x5A));
        }
        // Reuse observes fresh zeros everywhere (verify_zero additionally
        // asserts this inside acquire before the memory is handed out).
        let m = LinearMemory::new(&cfg(s)).unwrap();
        assert!(m.from_pool(), "{s}: second instantiation must be pooled");
        let mut buf = vec![0xFFu8; init_bytes];
        m.read_bytes(0, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&b| b == 0),
            "{s}: recycled memory leaked previous contents"
        );
    }
}

#[test]
fn uffd_reuse_faults_and_traps_like_fresh_memory() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    if !lb_core::uffd::sigbus_mode_available() {
        eprintln!("skipping: uffd unavailable");
        return;
    }
    let _p = PoolGuard::enable(2, false);
    {
        let m = LinearMemory::new(&cfg(BoundsStrategy::Uffd)).unwrap();
        let v = lb_core::catch_traps(|| m.load::<u64>(64, 0)).unwrap();
        assert_eq!(v, 0);
    }
    let m = LinearMemory::new(&cfg(BoundsStrategy::Uffd)).unwrap();
    assert!(m.from_pool());
    // Lazy fault service still works on the recycled registration...
    let v = lb_core::catch_traps(|| m.load::<u64>(WASM_PAGE as u32, 0)).unwrap();
    assert_eq!(v, 0);
    // ...and out-of-bounds detection is intact.
    let e = lb_core::catch_traps(|| m.load::<u8>((2 * WASM_PAGE) as u32, 0)).unwrap_err();
    assert_eq!(*e.kind(), lb_core::TrapKind::OutOfBounds);
}

#[test]
fn mprotect_reuse_restores_guard_pages_for_smaller_instances() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _p = PoolGuard::enable(2, false);
    {
        let m = LinearMemory::new(&cfg(BoundsStrategy::Mprotect)).unwrap();
        // Grow to 5 pages: the RW high-water mark now exceeds the next
        // instance's 2-page initial window.
        m.grow(3).unwrap();
        lb_core::catch_traps(|| m.store::<u8>((4 * WASM_PAGE) as u32, 0, 1)).unwrap();
    }
    let m = LinearMemory::new(&cfg(BoundsStrategy::Mprotect)).unwrap();
    assert!(m.from_pool());
    // Pages beyond the new initial size must be PROT_NONE again — OOB
    // detection takes priority over keeping the old window writable.
    let e = lb_core::catch_traps(|| m.load::<u8>((3 * WASM_PAGE) as u32, 0)).unwrap_err();
    assert_eq!(*e.kind(), lb_core::TrapKind::OutOfBounds);
    // Growing back over the restored guard range needs exactly one
    // protect call (the high-water mark was deliberately lowered).
    let before = lb_core::stats::snapshot();
    m.grow(3).unwrap();
    m.grow(0).unwrap();
    let d = lb_core::stats::snapshot().delta(&before);
    assert_eq!(d.mprotect, 1, "one protect for the regrow, none for no-ops");
    lb_core::catch_traps(|| m.store::<u8>((4 * WASM_PAGE) as u32, 0, 2)).unwrap();
}

#[test]
fn disabled_pool_never_reuses() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _p = PoolGuard::enable(0, false);
    {
        let m = LinearMemory::new(&cfg(BoundsStrategy::Trap)).unwrap();
        assert!(!m.from_pool());
    }
    assert_eq!(pool::pooled_count(), 0);
    let before = lb_core::stats::snapshot();
    let m = LinearMemory::new(&cfg(BoundsStrategy::Trap)).unwrap();
    assert!(!m.from_pool());
    let d = lb_core::stats::snapshot().delta(&before);
    assert_eq!(d.mmap, 1, "disabled pool maps fresh memory every time");
    assert_eq!(d.pool_hits, 0);
    assert_eq!(d.pool_misses, 0, "a disabled pool does not count misses");
}

#[test]
fn shape_change_evicts_instead_of_adapting() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _p = PoolGuard::enable(2, false);
    {
        let m = LinearMemory::new(&cfg(BoundsStrategy::Trap)).unwrap();
        drop(m);
    }
    assert_eq!(pool::pooled_count(), 1);
    // Same strategy, different reservation size: must miss and tear the
    // mismatched entry down rather than hand out the wrong shape.
    let big = MemoryConfig::new(BoundsStrategy::Trap, 2, 8).with_reserve(64 * WASM_PAGE);
    let before = lb_core::stats::snapshot();
    let m = LinearMemory::new(&big).unwrap();
    assert!(!m.from_pool());
    let d = lb_core::stats::snapshot().delta(&before);
    assert_eq!(d.pool_misses, 1);
    assert_eq!(d.mmap, 1);
    assert_eq!(d.munmap, 1, "the mismatched entry is unmapped");
}

#[test]
fn capacity_bounds_parked_entries() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _p = PoolGuard::enable(2, false);
    let memories: Vec<_> = (0..5)
        .map(|_| LinearMemory::new(&cfg(BoundsStrategy::Trap)).unwrap())
        .collect();
    drop(memories);
    assert_eq!(
        pool::pooled_count(),
        2,
        "excess releases beyond capacity tear down"
    );
    assert_eq!(pool::drain(), 2);
    assert_eq!(pool::pooled_count(), 0);
}
