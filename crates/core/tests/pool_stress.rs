//! Cross-thread pool safety: seeded-interleaving (loom-style, in-tree)
//! stress over the lock-free slot free-list, plus the poisoned-slot
//! contract — a release whose reset fails must always tear down, never
//! recycle.
//!
//! The free-list transfers whole boxed [`ArenaParts`] pointers in single
//! atomic swaps, so the classic ABA shapes are structurally absent; what
//! *can* go wrong across threads is (a) a recycled entry leaking another
//! instance's bytes (caught here by `verify_zero` on every reuse), (b) a
//! double-release manifesting as a double-free (caught by the allocator
//! under stress), and (c) `drain` racing a concurrent `release` so an
//! entry survives the sweep — the single-pass bug fixed alongside this
//! test.
//!
//! Lives in its own integration binary: pool config and chaos plans are
//! process-global. Tests serialize on `TEST_LOCK`.

use lb_chaos::SplitMix64;
use lb_core::pool::{self, MemoryPoolConfig};
use lb_core::{BoundsStrategy, LinearMemory, MemoryConfig, WASM_PAGE};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn cfg(strategy: BoundsStrategy) -> MemoryConfig {
    MemoryConfig::new(strategy, 2, 8).with_reserve(16 * WASM_PAGE)
}

/// Enable pooling for the duration of a test; restore the disabled
/// default and drain on drop.
struct PoolGuard;

impl PoolGuard {
    fn enable(capacity: usize, verify_zero: bool) -> PoolGuard {
        pool::drain();
        pool::configure(MemoryPoolConfig {
            capacity,
            verify_zero,
        });
        PoolGuard
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        pool::configure(MemoryPoolConfig::default());
        pool::drain();
    }
}

fn stress_strategies() -> Vec<BoundsStrategy> {
    let mut v = vec![BoundsStrategy::Trap, BoundsStrategy::Mprotect];
    if lb_core::uffd::sigbus_mode_available() {
        v.push(BoundsStrategy::Uffd);
    }
    v
}

/// One thread's schedule: a seeded stream of acquire/dirty/release
/// cycles interleaved with drains. `verify_zero` is on, so any reuse
/// that leaks another instance's dirty bytes panics the test; any
/// double-release would double-free and abort under the allocator.
fn stress_worker(seed: u64, strategies: &[BoundsStrategy], ops: usize) {
    let mut rng = SplitMix64::new(seed);
    let mut held: Vec<LinearMemory> = Vec::new();
    for _ in 0..ops {
        match rng.below(10) {
            // Mostly: instantiate (pool hit or fresh), dirty it, keep it
            // briefly so releases from other threads interleave.
            0..=5 => {
                let s = strategies[rng.below(strategies.len() as u64) as usize];
                let m = LinearMemory::new(&cfg(s)).expect("instantiate under stress");
                let fill = [rng.next_u64() as u8; 64];
                m.write_bytes((rng.below(1024) as u32) * 8, &fill)
                    .expect("dirty write");
                held.push(m);
                if held.len() > 4 {
                    held.remove(0); // drop ⇒ release on another iteration's slot
                }
            }
            // Sometimes: release everything at once (burst of pushes).
            6..=7 => held.clear(),
            // Sometimes: drain races the other threads' releases.
            8 => {
                pool::drain();
            }
            // Occasionally: sanity-check the parked population bound.
            _ => {
                let parked = pool::pooled_count();
                assert!(
                    parked <= pool::MAX_POOL_SLOTS * 5,
                    "free-list overflow: {parked} parked"
                );
            }
        }
    }
}

#[test]
fn seeded_interleaving_stress_keeps_pool_coherent() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let strategies = stress_strategies();
    for seed in [1u64, 7, 42] {
        let _p = PoolGuard::enable(4, true);
        let barrier = Arc::new(Barrier::new(4));
        let mut threads = Vec::new();
        for tid in 0..4u64 {
            let strategies = strategies.clone();
            let barrier = Arc::clone(&barrier);
            threads.push(std::thread::spawn(move || {
                barrier.wait();
                stress_worker(seed ^ (tid.wrapping_mul(0x9E37_79B9)), &strategies, 150);
            }));
        }
        for t in threads {
            t.join().expect("no stress thread may panic");
        }
        // Quiescent now: one drain must leave nothing parked.
        pool::drain();
        assert_eq!(pool::pooled_count(), 0, "seed {seed}: entries leaked");
    }
}

/// `drain` concurrent with a stream of releases: once the releasing
/// thread has joined, a single drain call must evict every parked entry
/// — the multi-pass sweep guarantees no entry slips behind the cursor.
#[test]
fn drain_racing_release_leaves_nothing_behind() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _p = PoolGuard::enable(8, false);
    let stop = Arc::new(AtomicBool::new(false));
    let releaser = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut n = 0u32;
            while !stop.load(Ordering::Acquire) {
                // Each drop releases into the free-list mid-drain. A
                // transient OS-level mmap failure under this churn is not
                // what the test is about — skip the iteration.
                let Ok(m) = LinearMemory::new(&cfg(BoundsStrategy::Trap)) else {
                    continue;
                };
                m.write_bytes(0, &[1; 16]).expect("write");
                drop(m);
                n += 1;
            }
            n
        })
    };
    for _ in 0..200 {
        pool::drain();
    }
    stop.store(true, Ordering::Release);
    let released = releaser.join().expect("releaser lives");
    assert!(released > 0, "the race must actually have run");
    pool::drain();
    assert_eq!(pool::pooled_count(), 0, "entry survived a quiescent drain");
}

/// The poisoned-slot contract: a release whose reset fails (injected
/// `core.pool.reset` fault) must tear the entry down — the free-list
/// never recycles a slot whose zero-fill reset did not complete.
#[test]
fn poisoned_reset_always_tears_down_never_recycles() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = lb_chaos::install("core.pool.reset:EIO").expect("chaos plan");
    let _p = PoolGuard::enable(4, true);
    for _ in 0..20 {
        let m = LinearMemory::new(&cfg(BoundsStrategy::Trap)).expect("fresh instantiate");
        m.write_bytes(0, &[0xFF; 128]).expect("dirty");
        drop(m); // release: reset fault ⇒ teardown, not park
        assert_eq!(
            pool::pooled_count(),
            0,
            "poisoned slot was parked for recycling"
        );
    }
    // The instantiate path keeps working through pool misses.
    let m = LinearMemory::new(&cfg(BoundsStrategy::Trap)).expect("slow path survives");
    m.write_bytes(0, &[2; 8]).expect("usable");
}

/// A `verify_zero` window that cannot be populated (injected uffd
/// zeropage fault on acquire) poisons the entry: torn down, counted as a
/// miss, and instantiation falls back to fresh memory — never a panic.
#[test]
fn unverifiable_reuse_degrades_to_pool_miss() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    if !lb_core::uffd::sigbus_mode_available() {
        return;
    }
    let _p = PoolGuard::enable(4, true);
    // Park one uffd entry.
    drop(LinearMemory::new(&cfg(BoundsStrategy::Uffd)).expect("seed the pool"));
    assert_eq!(pool::pooled_count(), 1);
    // First zeropage ioctl of the verification pass fails once.
    let _guard = lb_chaos::install("core.uffd.copy:1:EIO").expect("chaos plan");
    let m = LinearMemory::new(&cfg(BoundsStrategy::Uffd)).expect("degrades to fresh mmap");
    assert!(!m.from_pool(), "unverifiable entry must not be handed out");
    assert_eq!(pool::pooled_count(), 0, "poisoned entry must be torn down");
    m.write_bytes(0, &[3; 8]).expect("fresh memory usable");
}
