//! The chaos matrix: every registered fault point crossed with every
//! bounds-checking strategy. The contract under test is the failure
//! model's headline: an injected OS-boundary failure produces a clean
//! `Err` or a documented strategy fallback — never a panic, abort, or
//! resource leak.
//!
//! Lives in its own integration binary so the process-global chaos plan
//! cannot perturb lb-core's unit tests; chaos-installing tests serialize
//! on the `ChaosGuard` install lock.

use lb_core::{BoundsStrategy, LinearMemory, MemoryConfig, WASM_PAGE};
use std::sync::Mutex;

/// Serializes the whole binary: the leak test samples process-wide state
/// (`/proc/self/fd`, `/proc/self/maps`) that concurrent siblings would
/// perturb, and everything here is fast enough that ordering costs nothing.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn cfg(strategy: BoundsStrategy) -> MemoryConfig {
    MemoryConfig::new(strategy, 2, 8).with_reserve(16 * WASM_PAGE)
}

/// Exercise a full memory lifecycle; every fallible step must fail
/// cleanly (Result/Option), so reaching the end proves no panic/abort.
fn lifecycle(strategy: BoundsStrategy) -> Result<(), String> {
    let m = LinearMemory::new(&cfg(strategy)).map_err(|e| e.to_string())?;
    // Injected grow failures must read as wasm-level `memory.grow == -1`.
    let _ = m.grow(1);
    // Data-segment style host access; populate failures surface as traps.
    let _ = m.write_bytes(0, b"chaos");
    let mut buf = [0u8; 5];
    let _ = m.read_bytes(0, &mut buf);
    Ok(())
}

#[test]
fn every_fault_point_on_every_strategy_fails_clean_or_falls_back() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for site in lb_chaos::SITES {
        // One-shot injections: an always-firing EAGAIN on core.uffd.copy
        // would livelock by design (the kernel contract is "retry"), so
        // the matrix uses `:1:` which every consumer must absorb once.
        for errno in ["EPERM", "ENOMEM", "EIO"] {
            let guard = lb_chaos::install(&format!("{site}:1:{errno}")).unwrap();
            for strategy in BoundsStrategy::ALL {
                if let Err(e) = lifecycle(strategy) {
                    // Errors are fine; they just must be *clean*. The only
                    // strategies allowed to fail construction outright are
                    // those whose failed boundary has no fallback edge.
                    assert!(
                        site.starts_with("core.mmap") || strategy == BoundsStrategy::Uffd,
                        "{site}:{errno} under {strategy}: unexpected hard failure: {e}"
                    );
                }
            }
            drop(guard);
        }
    }
}

#[test]
fn uffd_create_failure_degrades_to_mprotect() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = lb_chaos::install("core.uffd.create:1:EPERM").unwrap();
    let m = LinearMemory::new(&cfg(BoundsStrategy::Uffd)).unwrap();
    assert_eq!(m.requested_strategy(), BoundsStrategy::Uffd);
    assert_ne!(m.strategy(), BoundsStrategy::Uffd);
    assert!(m.fell_back());
}

#[test]
fn mprotect_init_failure_degrades_to_trap() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = lb_chaos::install("core.mprotect.init:1:EACCES").unwrap();
    let m = LinearMemory::new(&cfg(BoundsStrategy::Mprotect)).unwrap();
    assert_eq!(m.strategy(), BoundsStrategy::Trap);
    assert!(m.fell_back());
    // The software-checked memory is fully usable.
    m.write_bytes(16, b"ok").unwrap();
}

#[test]
fn injected_grow_failure_is_wasm_minus_one_not_a_crash() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = lb_chaos::install("core.mprotect.grow:1:ENOMEM").unwrap();
    let m = LinearMemory::new(&cfg(BoundsStrategy::Mprotect)).unwrap();
    assert_eq!(m.strategy(), BoundsStrategy::Mprotect, "init must not trip");
    assert_eq!(m.grow(1), None, "injected ENOMEM → grow yields -1");
    assert_eq!(m.grow(1), Some(2), "one-shot consumed; next grow succeeds");
}

fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd").unwrap().count()
}

fn maps_lines() -> usize {
    std::fs::read_to_string("/proc/self/maps")
        .unwrap()
        .lines()
        .count()
}

#[test]
fn partial_construction_failure_leaks_no_fds_or_mappings() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Warm up allocator arenas and lazy statics so the baseline is stable.
    for _ in 0..8 {
        let _ = LinearMemory::new(&cfg(BoundsStrategy::Mprotect));
        let _ = LinearMemory::new(&cfg(BoundsStrategy::Uffd));
    }
    let fds_before = fd_count();
    let maps_before = maps_lines();

    // Hard failures: the reservation itself is refused.
    {
        let _g = lb_chaos::install("core.mmap.reserve:EIO").unwrap();
        for _ in 0..64 {
            assert!(LinearMemory::new(&cfg(BoundsStrategy::Trap)).is_err());
        }
    }
    // Partial failures: reservation succeeds, a later step fails, and the
    // chain retries with the next strategy — dropping the partial state.
    {
        let _g = lb_chaos::install("core.mprotect.init:EIO").unwrap();
        for _ in 0..64 {
            let m = LinearMemory::new(&cfg(BoundsStrategy::Mprotect)).unwrap();
            assert!(m.fell_back());
        }
    }
    // Uffd partial failure: if the host grants userfaultfd, the injected
    // register failure strikes *after* the fd exists — the fallback path
    // must close it. (Without uffd access, creation fails and the same
    // invariant covers the reservation.)
    {
        let _g = lb_chaos::install("core.uffd.register:EIO").unwrap();
        for _ in 0..64 {
            let _ = LinearMemory::new(&cfg(BoundsStrategy::Uffd)).unwrap();
        }
    }

    assert_eq!(fd_count(), fds_before, "file descriptors leaked");
    let maps_after = maps_lines();
    assert!(
        maps_after <= maps_before + 6,
        "mappings leaked: {maps_before} -> {maps_after}"
    );
}

/// Pool chaos: an injected failure anywhere in the release-side reset
/// (the `core.pool.reset` gate or the `madvise` it drives) must degrade
/// to a torn-down entry — the next instantiation is a pool miss served
/// by a fresh `mmap`, never an abort and never a dirty reuse.
#[test]
fn injected_reset_failure_degrades_to_fresh_mmap_pool_miss() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    use lb_core::pool::{self, MemoryPoolConfig};
    for site in ["core.pool.reset:1:EIO", "core.madvise.discard:1:EIO"] {
        pool::drain();
        pool::configure(MemoryPoolConfig {
            capacity: 2,
            verify_zero: true,
        });
        let guard = lb_chaos::install(site).unwrap();
        {
            let m = LinearMemory::new(&cfg(BoundsStrategy::Trap)).unwrap();
            m.write_bytes(0, b"dirty").unwrap();
            // Drop hits the injected reset failure: the entry must be
            // torn down, not parked dirty.
        }
        assert_eq!(pool::pooled_count(), 0, "{site}: failed reset must evict");
        let before = lb_core::stats::snapshot();
        let m = LinearMemory::new(&cfg(BoundsStrategy::Trap)).unwrap();
        assert!(!m.from_pool(), "{site}");
        let d = lb_core::stats::snapshot().delta(&before);
        assert_eq!(d.pool_misses, 1, "{site}");
        assert_eq!(d.mmap, 1, "{site}: the miss maps fresh memory");
        let mut buf = [0xFFu8; 8];
        m.read_bytes(0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8], "{site}: fresh memory is zero");
        drop(guard);
        drop(m);
        pool::configure(MemoryPoolConfig::default());
        pool::drain();
    }
}

#[test]
fn seeded_rate_injection_is_deterministic_across_installs() {
    let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let spec = "core.mmap.reserve:rate=0.5:EIO;seed=1234";
    let pattern = |spec: &str| -> Vec<bool> {
        let _g = lb_chaos::install(spec).unwrap();
        (0..64)
            .map(|_| LinearMemory::new(&cfg(BoundsStrategy::Trap)).is_ok())
            .collect()
    };
    let a = pattern(spec);
    let b = pattern(spec);
    assert_eq!(a, b, "same seed must reproduce the same fault pattern");
    assert!(a.iter().any(|ok| *ok) && a.iter().any(|ok| !*ok));
    let c = pattern("core.mmap.reserve:rate=0.5:EIO;seed=99");
    assert_ne!(a, c, "different seed should (overwhelmingly) differ");
}
