//! Raw virtual-memory reservations: thin, audited wrappers over
//! `mmap`/`mprotect`/`munmap` used by every bounds-checking strategy.

use crate::stats;
use std::io;
use std::ptr::NonNull;

/// Host page size (4096 on the Linux/x86-64 targets this crate supports).
pub fn host_page_size() -> usize {
    // SAFETY: sysconf is always safe to call.
    let v = unsafe { libc::sysconf(libc::_SC_PAGESIZE) };
    if v <= 0 {
        4096
    } else {
        v as usize
    }
}

/// Memory protection for [`Reservation::protect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// No access: reads and writes fault.
    None,
    /// Read-only.
    Read,
    /// Read-write.
    ReadWrite,
}

impl Protection {
    fn flags(self) -> libc::c_int {
        match self {
            Protection::None => libc::PROT_NONE,
            Protection::Read => libc::PROT_READ,
            Protection::ReadWrite => libc::PROT_READ | libc::PROT_WRITE,
        }
    }
}

/// An owned anonymous virtual-memory reservation.
///
/// Dropping the reservation unmaps it. The mapping is `MAP_NORESERVE`, so
/// multi-gigabyte reservations cost only VMA bookkeeping until touched —
/// exactly the 8 GiB-per-instance trick the paper describes (§2.3).
#[derive(Debug)]
pub struct Reservation {
    base: NonNull<u8>,
    len: usize,
}

// SAFETY: the reservation is plain memory; synchronization of access is the
// responsibility of LinearMemory, which hands out raw pointers explicitly.
unsafe impl Send for Reservation {}
unsafe impl Sync for Reservation {}

impl Reservation {
    /// Reserve `len` bytes of anonymous memory with the given initial
    /// protection.
    ///
    /// # Errors
    /// Returns the underlying OS error if `mmap` fails (e.g. out of
    /// address space).
    pub fn new(len: usize, prot: Protection) -> io::Result<Reservation> {
        assert!(len > 0, "cannot reserve 0 bytes");
        if let Some(e) = lb_chaos::inject("core.mmap.reserve") {
            return Err(e);
        }
        // SAFETY: anonymous private mapping with no address hint.
        let p = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                prot.flags(),
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE,
                -1,
                0,
            )
        };
        if p == libc::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        stats::count_mmap();
        Ok(Reservation {
            base: NonNull::new(p as *mut u8).expect("mmap returned non-null"),
            len,
        })
    }

    /// Base address of the reservation.
    pub fn base(&self) -> NonNull<u8> {
        self.base
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the reservation is empty (never true; reservations are
    /// non-empty by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside this reservation.
    pub fn contains(&self, addr: usize) -> bool {
        let b = self.base.as_ptr() as usize;
        addr >= b && addr < b + self.len
    }

    /// Change protection of `[offset, offset + len)`; both must be
    /// host-page aligned.
    ///
    /// This is the syscall whose process-wide VMA locking the paper blames
    /// for poor multithreaded scaling of the *mprotect* strategy.
    ///
    /// # Errors
    /// Returns the OS error if `mprotect` fails.
    ///
    /// # Panics
    /// Panics if the range is out of the reservation or misaligned.
    pub fn protect(&self, offset: usize, len: usize, prot: Protection) -> io::Result<()> {
        let ps = host_page_size();
        assert_eq!(offset % ps, 0, "offset must be page aligned");
        assert_eq!(len % ps, 0, "length must be page aligned");
        assert!(
            offset.checked_add(len).is_some_and(|e| e <= self.len),
            "protect range out of reservation"
        );
        if len == 0 {
            return Ok(());
        }
        // SAFETY: range checked above; base+offset is within our mapping.
        let rc = unsafe {
            libc::mprotect(
                self.base.as_ptr().add(offset) as *mut libc::c_void,
                len,
                prot.flags(),
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        stats::count_mprotect();
        Ok(())
    }

    /// Release physical pages in `[offset, offset + len)` back to the OS
    /// (MADV_DONTNEED) while keeping the mapping. Used when an instance's
    /// memory is recycled.
    ///
    /// # Errors
    /// Returns the OS error if `madvise` fails.
    pub fn discard(&self, offset: usize, len: usize) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        if let Some(e) = lb_chaos::inject("core.madvise.discard") {
            return Err(e);
        }
        assert!(
            offset.checked_add(len).is_some_and(|e| e <= self.len),
            "discard range out of reservation"
        );
        // SAFETY: range checked above.
        let rc = unsafe {
            libc::madvise(
                self.base.as_ptr().add(offset) as *mut libc::c_void,
                len,
                libc::MADV_DONTNEED,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        // SAFETY: we own this mapping.
        unsafe {
            libc::munmap(self.base.as_ptr() as *mut libc::c_void, self.len);
        }
        stats::count_munmap();
    }
}

/// Round `n` up to a multiple of the host page size.
pub fn round_up_to_page(n: usize) -> usize {
    let ps = host_page_size();
    (n + ps - 1) & !(ps - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_write_read() {
        let r = Reservation::new(1 << 20, Protection::ReadWrite).unwrap();
        // SAFETY: mapped read-write.
        unsafe {
            *r.base().as_ptr() = 42;
            *r.base().as_ptr().add((1 << 20) - 1) = 7;
            assert_eq!(*r.base().as_ptr(), 42);
        }
        assert!(r.contains(r.base().as_ptr() as usize));
        assert!(!r.contains(r.base().as_ptr() as usize + (1 << 20)));
    }

    #[test]
    fn protect_enables_pages() {
        let ps = host_page_size();
        let r = Reservation::new(16 * ps, Protection::None).unwrap();
        r.protect(0, 4 * ps, Protection::ReadWrite).unwrap();
        // SAFETY: first 4 pages now RW.
        unsafe {
            *r.base().as_ptr().add(4 * ps - 1) = 9;
        }
    }

    #[test]
    fn big_reservation_is_cheap() {
        // An 8 GiB NORESERVE mapping must succeed without touching memory.
        let r = Reservation::new(8 << 30, Protection::None).unwrap();
        assert_eq!(r.len(), 8 << 30);
        assert!(!r.is_empty());
    }

    #[test]
    fn discard_zeroes_pages() {
        let ps = host_page_size();
        let r = Reservation::new(4 * ps, Protection::ReadWrite).unwrap();
        // SAFETY: mapped RW.
        unsafe {
            *r.base().as_ptr() = 1;
            r.discard(0, ps).unwrap();
            assert_eq!(*r.base().as_ptr(), 0, "MADV_DONTNEED must zero anon pages");
        }
    }

    #[test]
    fn round_up() {
        let ps = host_page_size();
        assert_eq!(round_up_to_page(0), 0);
        assert_eq!(round_up_to_page(1), ps);
        assert_eq!(round_up_to_page(ps), ps);
        assert_eq!(round_up_to_page(ps + 1), 2 * ps);
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn protect_rejects_misaligned() {
        let r = Reservation::new(1 << 16, Protection::None).unwrap();
        let _ = r.protect(1, 4096, Protection::ReadWrite);
    }
}
