//! Hardware trap handling: SIGSEGV/SIGBUS/SIGILL/SIGFPE recovery for
//! guard-page bounds checking, and the userfaultfd SIGBUS fast path.
//!
//! The design mirrors production wasm runtimes (and the paper's patches):
//!
//! 1. [`catch_traps`] saves a tiny recovery context (stack pointer + resume
//!    address; callee-saved registers are parked on the stack below it) and
//!    invokes the wasm computation through an assembly trampoline.
//! 2. A process-wide signal handler classifies faults: a SIGBUS inside a
//!    `uffd` arena below the committed size is resolved *in the handler*
//!    with `UFFDIO_ZEROPAGE` (the paper's SIGBUS mode, §2.3.1, avoiding the
//!    context switches of the poll mode); any fault inside a registered
//!    arena or JIT code region becomes a wasm [`Trap`]; anything else is
//!    chained to the previously-installed handler.
//! 3. A wasm trap is delivered by rewriting the signal ucontext so that
//!    `sigreturn` resumes at the recovery address with the trap code in
//!    `rax` — a longjmp implemented via the kernel, never unwinding Rust
//!    frames from inside a signal handler.
//!
//! Only Linux/x86-64 is supported, like the paper's evaluation this
//! reproduction targets (the paper: "we will focus on POSIX OSes,
//! specifically on Linux").

use crate::registry::{HazardId, ARENAS, CODE_REGIONS};
use crate::stats;
use crate::strategy::BoundsStrategy;
use crate::trap::{Trap, TrapKind};
use crate::uffd;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

/// Recovery context: stack pointer and resume address inside the trampoline.
#[repr(C)]
#[derive(Debug)]
struct JmpBuf {
    rsp: u64,
    rip: u64,
}

/// Per-invocation trap frame; frames nest for reentrant wasm calls.
#[repr(C)]
#[derive(Debug)]
struct TrapFrame {
    jmp: JmpBuf,
    prev: *mut TrapFrame,
    fault_addr: usize,
    /// Timestamp the signal handler took on trap delivery, so
    /// [`catch_traps`] can attribute trap-entry→resume latency.
    trap_t0_ns: u64,
}

std::arch::global_asm!(
    ".text",
    ".globl lb_trap_catch",
    ".hidden lb_trap_catch",
    ".type lb_trap_catch,@function",
    // u64 lb_trap_catch(JmpBuf* rdi, void (*rsi)(void*), void* rdx)
    // Returns 0 on normal completion, or the trap code if the signal
    // handler redirected execution to the resume label.
    "lb_trap_catch:",
    "push rbp",
    "push rbx",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "sub rsp, 8", // realign: callee entry must have rsp % 16 == 8
    "mov qword ptr [rdi], rsp",
    "lea rax, [rip + 2f]",
    "mov qword ptr [rdi + 8], rax",
    "mov rdi, rdx",
    "call rsi",
    "xor eax, eax",
    "2:", // trap resume: rax holds the trap code (or 0 on fallthrough)
    "add rsp, 8",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbx",
    "pop rbp",
    "ret",
    ".size lb_trap_catch, . - lb_trap_catch",
);

std::arch::global_asm!(
    ".text",
    ".globl lb_trap_resume",
    ".hidden lb_trap_resume",
    ".type lb_trap_resume,@function",
    // !: lb_trap_resume(JmpBuf* rdi, u64 code rsi) — longjmp to the
    // recovery context with the trap code in rax. Used by runtime helpers
    // (called from JIT code) that need to raise a wasm trap without
    // unwinding.
    "lb_trap_resume:",
    "mov rsp, qword ptr [rdi]",
    "mov rax, rsi",
    "jmp qword ptr [rdi + 8]",
    ".size lb_trap_resume, . - lb_trap_resume",
);

extern "C" {
    fn lb_trap_catch(jmp: *mut JmpBuf, f: unsafe extern "C" fn(*mut u8), arg: *mut u8) -> u64;
    fn lb_trap_resume(jmp: *const JmpBuf, code: u64) -> !;
}

/// Raise a wasm trap from a runtime helper invoked by JIT-compiled code,
/// transferring control to the innermost [`catch_traps`] on this thread.
///
/// Frames between the helper and the recovery point are abandoned without
/// running destructors; callers must not hold locks or own heap state when
/// raising (the JIT's helpers satisfy this by construction).
///
/// # Panics
/// Panics if no `catch_traps` frame is active on this thread.
pub fn raise_trap(kind: TrapKind, fault_addr: usize) -> ! {
    let frame = CURRENT_FRAME.with(|c| c.get());
    assert!(!frame.is_null(), "raise_trap outside catch_traps: {kind}");
    // SAFETY: frame points at this thread's live recovery context.
    unsafe {
        (*frame).fault_addr = fault_addr;
        lb_trap_resume(&(*frame).jmp, u64::from(kind.code()));
    }
}

thread_local! {
    static CURRENT_FRAME: Cell<*mut TrapFrame> = const { Cell::new(std::ptr::null_mut()) };
    static ARENA_HAZARD: Cell<Option<HazardId>> = const { Cell::new(None) };
    static CODE_HAZARD: Cell<Option<HazardId>> = const { Cell::new(None) };
    /// Registry slot that resolved this thread's previous uffd fault.
    /// A streaming kernel faults into the same arena thousands of times
    /// in a row; probing the remembered slot first turns the handler's
    /// registry scan into a single load. Purely a hint: stale values are
    /// re-validated by the hazard protocol inside `find_with_hint`.
    static LAST_ARENA_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    static THREAD_STATE: std::cell::RefCell<Option<ThreadState>> =
        const { std::cell::RefCell::new(None) };
}

/// Per-thread signal resources: the alternate signal stack and hazard slots.
/// Dropped (and released) at thread exit.
struct ThreadState {
    altstack: *mut libc::c_void,
    altstack_len: usize,
    arena_hazard: HazardId,
    code_hazard: HazardId,
}

// SAFETY: the raw pointer is only used by this thread.
unsafe impl Send for ThreadState {}

impl Drop for ThreadState {
    fn drop(&mut self) {
        // Disable the alternate stack before freeing it.
        // SAFETY: disabling with SS_DISABLE is always valid.
        unsafe {
            let ss = libc::stack_t {
                ss_sp: std::ptr::null_mut(),
                ss_flags: libc::SS_DISABLE,
                ss_size: 0,
            };
            libc::sigaltstack(&ss, std::ptr::null_mut());
            libc::munmap(self.altstack, self.altstack_len);
        }
        ARENAS.release_hazard(self.arena_hazard);
        CODE_REGIONS.release_hazard(self.code_hazard);
        ARENA_HAZARD.with(|c| c.set(None));
        CODE_HAZARD.with(|c| c.set(None));
    }
}

const ALTSTACK_SIZE: usize = 256 * 1024;

/// Saved previous dispositions, for chaining non-wasm faults.
static OLD_ACTIONS: OldActions = OldActions::new();

struct OldActions {
    // Indexed by signal number; written once under `INSTALL`.
    cells: [std::cell::UnsafeCell<Option<libc::sigaction>>; 32],
}

// SAFETY: written only once during handler installation (guarded by Once),
// read-only afterwards, including from signal handlers.
unsafe impl Sync for OldActions {}

impl OldActions {
    const fn new() -> OldActions {
        OldActions {
            cells: [const { std::cell::UnsafeCell::new(None) }; 32],
        }
    }

    /// # Safety
    /// Only callable during the `Once`-guarded installation.
    unsafe fn set(&self, sig: i32, act: libc::sigaction) {
        *self.cells[sig as usize].get() = Some(act);
    }

    /// # Safety
    /// Only callable after installation completed.
    unsafe fn get(&self, sig: i32) -> Option<libc::sigaction> {
        *self.cells[sig as usize].get()
    }
}

static INSTALL: Once = Once::new();
static HANDLED_SIGNALS: [i32; 4] = [libc::SIGSEGV, libc::SIGBUS, libc::SIGILL, libc::SIGFPE];

/// Pre-interned span name for uffd fault service, so the SIGBUS handler
/// can push ring records without touching the (mutex-guarded) interner.
static UFFD_FAULT_SPAN: std::sync::OnceLock<lb_telemetry::SpanId> = std::sync::OnceLock::new();

/// Pre-interned span covering every trap-handler entry → exit, so
/// profiles show time spent in signal delivery itself (arg = signal
/// number). Recorded the same signal-safe way as `uffd.fault`.
static SIGNAL_HANDLER_SPAN: std::sync::OnceLock<lb_telemetry::SpanId> = std::sync::OnceLock::new();

/// Install the process-wide wasm trap handlers (idempotent).
pub fn install_handlers() {
    INSTALL.call_once(|| {
        // Register every instrument the handler records into *before* it
        // can run: registration takes locks, increments don't.
        stats::force_init();
        // Resolve the fault-service window from LB_UFFD_WINDOW in normal
        // context; the handler only does relaxed loads of the cached value.
        uffd::init_window_from_env();
        let _ = UFFD_FAULT_SPAN.set(lb_telemetry::register_span_name("uffd.fault"));
        let _ = SIGNAL_HANDLER_SPAN.set(lb_telemetry::register_span_name("signal.handler"));
        for &sig in &HANDLED_SIGNALS {
            // SAFETY: standard sigaction installation; handler is
            // async-signal-safe by construction.
            unsafe {
                let mut act: libc::sigaction = std::mem::zeroed();
                act.sa_sigaction = trap_handler
                    as unsafe extern "C" fn(libc::c_int, *mut libc::siginfo_t, *mut libc::c_void)
                    as usize;
                act.sa_flags = libc::SA_SIGINFO | libc::SA_ONSTACK;
                libc::sigemptyset(&mut act.sa_mask);
                let mut old: libc::sigaction = std::mem::zeroed();
                if libc::sigaction(sig, &act, &mut old) == 0 {
                    OLD_ACTIONS.set(sig, old);
                }
            }
        }
    });
}

/// Prepare the calling thread for wasm execution: alternate signal stack
/// and hazard slots. Idempotent and cheap after the first call.
pub fn ensure_thread_ready() {
    THREAD_STATE.with(|st| {
        let mut st = st.borrow_mut();
        if st.is_some() {
            return;
        }
        install_handlers();
        // Create this thread's telemetry ring now (TLS first-touch and
        // registration are not async-signal-safe), so the SIGBUS fast
        // path below may push span records into it.
        lb_telemetry::ensure_thread_ring();
        // SAFETY: fresh anonymous mapping for the alternate stack.
        let stack = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                ALTSTACK_SIZE,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        assert!(stack != libc::MAP_FAILED, "failed to map sigaltstack");
        // SAFETY: valid stack_t pointing at our fresh mapping.
        unsafe {
            let ss = libc::stack_t {
                ss_sp: stack,
                ss_flags: 0,
                ss_size: ALTSTACK_SIZE,
            };
            libc::sigaltstack(&ss, std::ptr::null_mut());
        }
        let arena_hazard = ARENAS.claim_hazard();
        let code_hazard = CODE_REGIONS.claim_hazard();
        ARENA_HAZARD.with(|c| c.set(Some(arena_hazard)));
        CODE_HAZARD.with(|c| c.set(Some(code_hazard)));
        *st = Some(ThreadState {
            altstack: stack,
            altstack_len: ALTSTACK_SIZE,
            arena_hazard,
            code_hazard,
        });
    });
}

/// Run `f`, converting any wasm hardware fault (guard-page hit, JIT `ud2`
/// trap, division fault) into an `Err(Trap)`.
///
/// Nested use is supported (wasm calling host calling wasm). If `f` panics,
/// the panic propagates normally.
///
/// Frames skipped by a hardware trap do **not** run destructors; callers
/// keep engine state in pooled storage that is reset on the next call (the
/// same contract production runtimes use for JIT frames).
///
/// # Errors
/// Returns the trap raised by `f`, whether delivered in software (the
/// closure's own `Err`) or through the signal path.
pub fn catch_traps<R, F: FnOnce() -> Result<R, Trap>>(f: F) -> Result<R, Trap> {
    ensure_thread_ready();

    struct CallState<F, R> {
        f: Option<F>,
        out: Option<std::thread::Result<Result<R, Trap>>>,
    }

    unsafe extern "C" fn shim<F: FnOnce() -> Result<R, Trap>, R>(arg: *mut u8) {
        // SAFETY: arg points at the CallState on the caller's stack.
        let st = unsafe { &mut *(arg as *mut CallState<F, R>) };
        let f = st.f.take().expect("closure present");
        st.out = Some(catch_unwind(AssertUnwindSafe(f)));
    }

    let mut state: CallState<F, R> = CallState {
        f: Some(f),
        out: None,
    };
    let mut frame = TrapFrame {
        jmp: JmpBuf { rsp: 0, rip: 0 },
        prev: CURRENT_FRAME.with(|c| c.get()),
        fault_addr: 0,
        trap_t0_ns: 0,
    };
    let prev = frame.prev;
    CURRENT_FRAME.with(|c| c.set(&mut frame));
    // SAFETY: the trampoline calls `shim::<F, R>` exactly once with our
    // state pointer; on a trap the handler resumes the trampoline's resume
    // label with a nonzero code in rax, which unwinds no Rust frames.
    let code = unsafe {
        lb_trap_catch(
            &mut frame.jmp,
            shim::<F, R>,
            &mut state as *mut _ as *mut u8,
        )
    };
    CURRENT_FRAME.with(|c| c.set(prev));
    let result = if code == 0 {
        match state.out.expect("closure ran") {
            Ok(r) => r,
            Err(p) => resume_unwind(p),
        }
    } else {
        stats::count_signal_trap();
        if frame.trap_t0_ns != 0 {
            // Trap-entry→resume latency: from the timestamp the signal
            // handler wrote into the frame to our return from the
            // trampoline (paper §4: the cost of one signal round-trip).
            let dur = lb_telemetry::clock::now_ns().saturating_sub(frame.trap_t0_ns);
            stats::record_trap_latency(dur);
        }
        Err(Trap::from_signal(code as u32, frame.fault_addr))
    };
    // Count bounds checks that actually fired at runtime, whichever path
    // delivered them (software `Err` from an engine's check, or a hardware
    // fault) — the dynamic complement of the static elision counters.
    // This runs in normal context after the trampoline returned, so the
    // counter's one-time registration lock is safe here.
    if let Err(t) = &result {
        if *t.kind() == TrapKind::OutOfBounds {
            dynamic_oob_counter().inc();
        }
    }
    result
}

/// Counter of bounds violations observed at runtime (cached — counter
/// registration takes a lock; this path runs per trap, not per access).
fn dynamic_oob_counter() -> lb_telemetry::Counter {
    static C: std::sync::OnceLock<lb_telemetry::Counter> = std::sync::OnceLock::new();
    *C.get_or_init(|| lb_telemetry::counter("checks.dynamic_oob"))
}

/// Global count of faults chained to previous handlers (diagnostics).
static CHAINED: AtomicUsize = AtomicUsize::new(0);

/// Number of faults this process forwarded to pre-existing handlers.
pub fn chained_fault_count() -> usize {
    CHAINED.load(Ordering::Relaxed)
}

const REG_RAX: usize = libc::REG_RAX as usize;
const REG_RSP: usize = libc::REG_RSP as usize;
const REG_RIP: usize = libc::REG_RIP as usize;

unsafe extern "C" fn trap_handler(
    sig: libc::c_int,
    info: *mut libc::siginfo_t,
    ctx: *mut libc::c_void,
) {
    // Preserve errno: the interrupted code may be inspecting it.
    let saved_errno = unsafe { *libc::__errno_location() };
    let t0 = lb_telemetry::clock::now_ns();
    unsafe { trap_handler_inner(sig, info, ctx) };
    // Entry → exit latency span (signal-safe: pre-interned id, atomic
    // ring push). Handlers that redirect rather than return normally
    // (deliver_or_chain) still pass through here.
    if let Some(&id) = SIGNAL_HANDLER_SPAN.get() {
        let dur = lb_telemetry::clock::now_ns().wrapping_sub(t0);
        lb_telemetry::record_span_raw(id, sig as u64, t0, dur);
    }
    unsafe { *libc::__errno_location() = saved_errno };
}

unsafe fn trap_handler_inner(sig: libc::c_int, info: *mut libc::siginfo_t, ctx: *mut libc::c_void) {
    let uc = unsafe { &mut *(ctx as *mut libc::ucontext_t) };
    let fault_addr = unsafe { (*info).si_addr() } as usize;
    let si_code = unsafe { (*info).si_code };
    let rip = uc.uc_mcontext.gregs[REG_RIP] as usize;

    let arena_hazard = ARENA_HAZARD.with(|c| c.get());
    let code_hazard = CODE_HAZARD.with(|c| c.get());

    // 1. userfaultfd SIGBUS fast path: populate missing-but-committed pages
    //    from inside the handler, then retry the faulting instruction.
    if sig == libc::SIGBUS {
        if let Some(h) = arena_hazard {
            let hint = LAST_ARENA_SLOT.with(|c| c.get());
            let found = ARENAS.find_with_hint(
                h,
                hint,
                |a| a.strategy == BoundsStrategy::Uffd && a.contains(fault_addr),
                |a| {
                    let off = fault_addr - a.base;
                    let committed = a.committed.load(Ordering::Acquire);
                    if off < committed {
                        let fd = a.uffd_fd.load(Ordering::Acquire);
                        // Time the in-handler service of a legal fault
                        // (SIGBUS entry → zeropage done); everything
                        // recorded is a pre-registered atomic slot.
                        let t0 = lb_telemetry::clock::now_ns();
                        let action = uffd::zeropage_around(fd, a, committed, off);
                        let dur = lb_telemetry::clock::now_ns().saturating_sub(t0);
                        stats::record_uffd_service(dur);
                        if let Some(&id) = UFFD_FAULT_SPAN.get() {
                            lb_telemetry::record_span_raw(id, off as u64, t0, dur);
                        }
                        action
                    } else {
                        uffd::FaultAction::OutOfBounds
                    }
                },
            );
            match found {
                Some((slot, uffd::FaultAction::Populated)) => {
                    LAST_ARENA_SLOT.with(|c| c.set(slot));
                    return; // retry access
                }
                Some((_, uffd::FaultAction::OutOfBounds)) => {
                    deliver_or_chain(sig, info, uc, TrapKind::OutOfBounds.code(), fault_addr);
                    return;
                }
                None => {} // not a uffd arena; keep classifying
            }
        }
    }

    // 2. Guard-page OOB: fault address inside any registered arena.
    if sig == libc::SIGSEGV || sig == libc::SIGBUS {
        let in_arena = arena_hazard
            .map(|h| {
                ARENAS
                    .find_with(h, |a| a.contains(fault_addr), |_| ())
                    .is_some()
            })
            .unwrap_or(false);
        if in_arena {
            deliver_or_chain(sig, info, uc, TrapKind::OutOfBounds.code(), fault_addr);
            return;
        }
    }

    // 3. JIT trap stubs: SIGILL at a `ud2; .byte code` site, or SIGFPE from
    //    a division instruction, inside registered code.
    if sig == libc::SIGILL || sig == libc::SIGFPE {
        let in_code = code_hazard
            .map(|h| {
                CODE_REGIONS
                    .find_with(h, |c| c.contains(rip), |_| ())
                    .is_some()
            })
            .unwrap_or(false);
        if in_code {
            let code = if sig == libc::SIGILL {
                // ud2 is 0F 0B; the JIT appends the trap code byte.
                let p = rip as *const u8;
                // SAFETY: rip is inside a registered, mapped code region.
                if unsafe { p.read() } == 0x0F && unsafe { p.add(1).read() } == 0x0B {
                    u32::from(unsafe { p.add(2).read() })
                } else {
                    TrapKind::Unreachable.code()
                }
            } else if si_code == 2 {
                // FPE_INTOVF
                TrapKind::IntegerOverflow.code()
            } else {
                TrapKind::IntegerDivByZero.code()
            };
            deliver_or_chain(sig, info, uc, code, 0);
            return;
        }
    }

    chain(sig, info, uc);
}

/// Redirect the interrupted context to the recovery frame, or chain if no
/// frame is active on this thread (a wasm fault outside `catch_traps` is a
/// bug, surfaced as a crash under the previous disposition).
unsafe fn deliver_or_chain(
    sig: libc::c_int,
    info: *mut libc::siginfo_t,
    uc: &mut libc::ucontext_t,
    code: u32,
    fault_addr: usize,
) {
    let frame = CURRENT_FRAME.with(|c| c.get());
    if frame.is_null() {
        chain(sig, info, uc);
        return;
    }
    // SAFETY: frame points to the live TrapFrame of this thread's
    // innermost catch_traps invocation.
    let frame = unsafe { &mut *frame };
    frame.fault_addr = fault_addr;
    // Async-signal-safe timestamp (vDSO clock_gettime); read back by
    // catch_traps once the trampoline resumes.
    frame.trap_t0_ns = lb_telemetry::clock::now_ns();
    uc.uc_mcontext.gregs[REG_RSP] = frame.jmp.rsp as i64;
    uc.uc_mcontext.gregs[REG_RIP] = frame.jmp.rip as i64;
    uc.uc_mcontext.gregs[REG_RAX] = i64::from(code);
}

/// Forward a non-wasm fault to the previously-installed handler (or the
/// default action) by reinstalling it and returning; the faulting
/// instruction re-executes and the signal is re-delivered.
unsafe fn chain(sig: libc::c_int, info: *mut libc::siginfo_t, uc: &mut libc::ucontext_t) {
    CHAINED.fetch_add(1, Ordering::Relaxed);
    // SAFETY: OLD_ACTIONS was fully written before handlers were installed.
    let old = unsafe { OLD_ACTIONS.get(sig) };
    match old {
        Some(act) if act.sa_sigaction != libc::SIG_DFL && act.sa_sigaction != libc::SIG_IGN => {
            if act.sa_flags & libc::SA_SIGINFO != 0 {
                // SAFETY: calling the previous SA_SIGINFO handler with our args.
                let f: unsafe extern "C" fn(libc::c_int, *mut libc::siginfo_t, *mut libc::c_void) =
                    unsafe { std::mem::transmute(act.sa_sigaction) };
                unsafe { f(sig, info, uc as *mut _ as *mut libc::c_void) };
            } else {
                // SAFETY: calling the previous plain handler.
                let f: unsafe extern "C" fn(libc::c_int) =
                    unsafe { std::mem::transmute(act.sa_sigaction) };
                unsafe { f(sig) };
            }
        }
        _ => {
            // Restore default disposition and let the re-executed fault
            // terminate the process with the right signal.
            // SAFETY: standard signal reset.
            unsafe {
                let mut dfl: libc::sigaction = std::mem::zeroed();
                dfl.sa_sigaction = libc::SIG_DFL;
                libc::sigemptyset(&mut dfl.sa_mask);
                libc::sigaction(sig, &dfl, std::ptr::null_mut());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{Protection, Reservation};
    use crate::registry::ArenaDesc;

    #[test]
    fn normal_completion_passes_through() {
        let r = catch_traps(|| Ok::<_, Trap>(41 + 1)).unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn software_trap_passes_through() {
        let e = catch_traps(|| Err::<(), _>(Trap::new(TrapKind::Unreachable))).unwrap_err();
        assert_eq!(*e.kind(), TrapKind::Unreachable);
    }

    #[test]
    fn panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            let _ = catch_traps(|| -> Result<(), Trap> { panic!("boom") });
        });
        assert!(r.is_err());
    }

    #[test]
    fn segv_in_registered_arena_becomes_oob_trap() {
        // A PROT_NONE reservation registered as an arena: touching it must
        // surface as a wasm OOB trap, not a crash.
        let res = Reservation::new(1 << 20, Protection::None).unwrap();
        let base = res.base().as_ptr() as usize;
        let desc = Box::new(ArenaDesc::new(
            base,
            res.len(),
            0,
            BoundsStrategy::Mprotect,
            -1,
        ));
        let (slot, ptr) = ARENAS.register(desc);

        let err = catch_traps(|| -> Result<(), Trap> {
            // SAFETY: intentional fault into the PROT_NONE arena.
            unsafe {
                std::ptr::read_volatile((base + 0x1234) as *const u8);
            }
            Ok(())
        })
        .unwrap_err();
        assert_eq!(*err.kind(), TrapKind::OutOfBounds);
        assert_eq!(err.fault_addr(), Some(base + 0x1234));

        ARENAS.unregister(slot, ptr);
    }

    #[test]
    fn nested_catch_traps() {
        let res = Reservation::new(1 << 16, Protection::None).unwrap();
        let base = res.base().as_ptr() as usize;
        let desc = Box::new(ArenaDesc::new(
            base,
            res.len(),
            0,
            BoundsStrategy::Mprotect,
            -1,
        ));
        let (slot, ptr) = ARENAS.register(desc);

        let outer = catch_traps(|| -> Result<i32, Trap> {
            let inner = catch_traps(|| -> Result<(), Trap> {
                // SAFETY: intentional fault.
                unsafe {
                    std::ptr::read_volatile(base as *const u8);
                }
                Ok(())
            });
            assert!(inner.is_err());
            Ok(5)
        });
        assert_eq!(outer.unwrap(), 5);
        ARENAS.unregister(slot, ptr);
    }

    #[test]
    fn traps_work_from_many_threads() {
        let res = Reservation::new(1 << 20, Protection::None).unwrap();
        let base = res.base().as_ptr() as usize;
        let desc = Box::new(ArenaDesc::new(
            base,
            res.len(),
            0,
            BoundsStrategy::Mprotect,
            -1,
        ));
        let (slot, ptr) = ARENAS.register(desc);

        std::thread::scope(|s| {
            for t in 0..8usize {
                s.spawn(move || {
                    for i in 0..50 {
                        let e = catch_traps(|| -> Result<(), Trap> {
                            // SAFETY: intentional fault.
                            unsafe {
                                std::ptr::read_volatile((base + t * 4096 + i) as *const u8);
                            }
                            Ok(())
                        })
                        .unwrap_err();
                        assert_eq!(*e.kind(), TrapKind::OutOfBounds);
                    }
                });
            }
        });
        ARENAS.unregister(slot, ptr);
    }
}

#[cfg(test)]
mod raise_tests {
    use super::*;

    #[test]
    fn raise_trap_lands_in_catch() {
        let e = catch_traps(|| -> Result<(), Trap> {
            raise_trap(TrapKind::IntegerDivByZero, 0);
        })
        .unwrap_err();
        assert_eq!(*e.kind(), TrapKind::IntegerDivByZero);
    }

    #[test]
    fn raise_trap_from_nested_helper() {
        fn helper(depth: usize) -> u64 {
            if depth == 0 {
                raise_trap(TrapKind::InvalidConversion, 0x42);
            }
            helper(depth - 1) + 1
        }
        let e = catch_traps(|| -> Result<u64, Trap> { Ok(helper(20)) }).unwrap_err();
        assert_eq!(*e.kind(), TrapKind::InvalidConversion);
        assert_eq!(e.fault_addr(), Some(0x42));
    }
}
