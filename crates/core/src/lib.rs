//! # lb-core — bounds-checked linear memory and trap machinery
//!
//! The primary contribution of the *Leaps and bounds* paper (IISWC 2022) is
//! an analysis of WebAssembly bounds-checking strategies and a
//! `userfaultfd`-based alternative to the `mprotect` scheme production
//! runtimes use. This crate implements all of it, for real, on Linux/x86-64:
//!
//! * the five strategies — [`BoundsStrategy`]: `none`, `clamp`, `trap`,
//!   `mprotect`, `uffd` — over 8 GiB virtual reservations
//!   ([`LinearMemory`]);
//! * hardware trap recovery (SIGSEGV/SIGBUS/SIGILL/SIGFPE →
//!   [`Trap`]) via [`signals::catch_traps`];
//! * the `userfaultfd(2)` SIGBUS fast path with in-handler
//!   `UFFDIO_ZEROPAGE` ([`uffd`]);
//! * the paper's lock-free, hazard-pointer-based arena registry
//!   ([`registry`]);
//! * the engine-neutral execution API ([`exec`]) that the interpreter and
//!   JIT engines implement and the benchmark harness drives.
//!
//! ## Example: a uffd-backed memory trapping on out-of-bounds access
//!
//! ```rust
//! use lb_core::{BoundsStrategy, LinearMemory, MemoryConfig};
//! use lb_core::signals::catch_traps;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let strategy = if lb_core::uffd::sigbus_mode_available() {
//!     BoundsStrategy::Uffd
//! } else {
//!     BoundsStrategy::Mprotect // CI fallback
//! };
//! let config = MemoryConfig::new(strategy, 1, 16).with_reserve(32 * 65536);
//! let memory = LinearMemory::new(&config)?;
//!
//! // In-bounds access: lazily populated, reads zero.
//! let v = catch_traps(|| memory.load::<u64>(128, 0))?;
//! assert_eq!(v, 0);
//!
//! // Out-of-bounds access: a hardware fault, surfaced as a wasm trap.
//! let err = catch_traps(|| memory.load::<u8>(10 * 65536, 0)).unwrap_err();
//! assert_eq!(*err.kind(), lb_core::TrapKind::OutOfBounds);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod exec;
pub mod memory;
pub mod pool;
pub mod region;
pub mod registry;
pub mod signals;
pub mod stats;
pub mod strategy;
pub mod trap;
pub mod uffd;

pub use exec::{Engine, HostCtx, HostFn, Instance, Linker, LoadError, LoadedModule};
pub use memory::{LinearMemory, MemoryError, Pod, WASM_PAGE};
pub use pool::MemoryPoolConfig;
pub use signals::catch_traps;
pub use strategy::{BoundsStrategy, MemoryConfig, DEFAULT_RESERVE_BYTES};
pub use trap::{Trap, TrapKind};
