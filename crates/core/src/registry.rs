//! Lock-free, hazard-pointer-protected registries of memory arenas and JIT
//! code regions.
//!
//! The paper (§4.2.1) describes managing memory arenas with "an atomic
//! integer variable controlling the size of each memory arena, and a hazard
//! pointer-style implementation for adding and removing memory arenas,
//! avoiding the need for locks most of the time". This module implements
//! that design: a fixed array of descriptor slots written with CAS, and a
//! per-thread hazard pointer that readers (including the SIGSEGV/SIGBUS
//! handler, which cannot take locks) publish before dereferencing a slot.
//! Removal spins until no hazard references the descriptor, then frees it.

use crate::strategy::BoundsStrategy;
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicPtr, AtomicUsize, Ordering};

/// Descriptor of one linear-memory arena, shared with the signal handler.
#[derive(Debug)]
#[repr(C)]
pub struct ArenaDesc {
    /// Base address of the reservation.
    pub base: usize,
    /// Reservation length in bytes.
    pub len: usize,
    /// Currently accessible bytes (the paper's atomic size variable).
    pub committed: AtomicUsize,
    /// The arena's bounds-checking strategy.
    pub strategy: BoundsStrategy,
    /// userfaultfd file descriptor for `uffd` arenas, −1 otherwise.
    pub uffd_fd: AtomicI32,
    /// End offset (exclusive, arena-relative) of the last window the uffd
    /// fault servicer populated; the stride predictor compares the next
    /// fault against it to detect sequential scans.
    pub last_fault_end: AtomicUsize,
    /// Consecutive sequential-fault count; drives window extension.
    pub fault_streak: AtomicUsize,
}

impl ArenaDesc {
    /// A descriptor with fault-prediction state zeroed.
    pub fn new(
        base: usize,
        len: usize,
        committed: usize,
        strategy: BoundsStrategy,
        uffd_fd: i32,
    ) -> ArenaDesc {
        ArenaDesc {
            base,
            len,
            committed: AtomicUsize::new(committed),
            strategy,
            uffd_fd: AtomicI32::new(uffd_fd),
            last_fault_end: AtomicUsize::new(0),
            fault_streak: AtomicUsize::new(0),
        }
    }

    /// Whether `addr` falls inside this arena's reservation.
    pub fn contains(&self, addr: usize) -> bool {
        addr >= self.base && addr < self.base + self.len
    }

    /// Reset the stride predictor (on pool reuse, so a recycled arena does
    /// not inherit the previous instance's access pattern).
    pub fn reset_fault_prediction(&self) {
        self.last_fault_end.store(0, Ordering::Relaxed);
        self.fault_streak.store(0, Ordering::Relaxed);
    }
}

/// Descriptor of one executable JIT code region, shared with the signal
/// handler so SIGILL/SIGFPE at a wasm pc can be mapped to a trap.
#[derive(Debug)]
#[repr(C)]
pub struct CodeDesc {
    /// Base address of the executable mapping.
    pub base: usize,
    /// Length in bytes.
    pub len: usize,
}

impl CodeDesc {
    /// Whether `pc` falls inside this code region.
    pub fn contains(&self, pc: usize) -> bool {
        pc >= self.base && pc < self.base + self.len
    }
}

/// Maximum simultaneously-registered descriptors per registry.
pub const MAX_SLOTS: usize = 2048;
/// Maximum threads concurrently reading a registry.
pub const MAX_HAZARDS: usize = 512;

/// A fixed-capacity lock-free registry with hazard-pointer reclamation.
#[derive(Debug)]
pub struct HazardRegistry<T> {
    slots: [AtomicPtr<T>; MAX_SLOTS],
    hazards: [AtomicPtr<T>; MAX_HAZARDS],
    hazard_claimed: [AtomicBool; MAX_HAZARDS],
    /// Upper bound (exclusive) of slots ever used, to shorten scans.
    high_water: AtomicUsize,
}

/// Handle returned by [`HazardRegistry::register`]; needed to unregister.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotId(usize);

/// A claimed per-thread hazard slot index for a registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HazardId(usize);

impl<T> HazardRegistry<T> {
    /// An empty registry (usable in `static`s).
    pub const fn new() -> HazardRegistry<T> {
        #[allow(clippy::declare_interior_mutable_const)]
        const NULL_PTR: AtomicPtr<u8> = AtomicPtr::new(std::ptr::null_mut());
        let _ = NULL_PTR; // silence unused in some cfgs
        HazardRegistry {
            slots: [const { AtomicPtr::new(std::ptr::null_mut()) }; MAX_SLOTS],
            hazards: [const { AtomicPtr::new(std::ptr::null_mut()) }; MAX_HAZARDS],
            hazard_claimed: [const { AtomicBool::new(false) }; MAX_HAZARDS],
            high_water: AtomicUsize::new(0),
        }
    }

    /// Register a descriptor; the registry takes ownership of the box.
    /// Returns the slot plus a raw pointer the caller may keep for direct
    /// (atomic-field) updates — the pointer stays valid until `unregister`.
    ///
    /// # Panics
    /// Panics if the registry is full ([`MAX_SLOTS`] live descriptors).
    pub fn register(&self, desc: Box<T>) -> (SlotId, *const T) {
        let ptr = Box::into_raw(desc);
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .compare_exchange(
                    std::ptr::null_mut(),
                    ptr,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                // AcqRel, not Relaxed: `find_with` bounds its scan by an
                // Acquire load of `high_water`, and that pairing is what
                // lets a reader that learned the new bound *only* through
                // `high_water` also observe the slot CAS above. (Callers
                // that receive the descriptor's address through a normal
                // sync edge — thread spawn, channel — were already safe:
                // this store is sequenced before any such release. The
                // signal handler, though, may race a registration on
                // another thread with no edge but this one.)
                self.high_water.fetch_max(i + 1, Ordering::AcqRel);
                return (SlotId(i), ptr as *const T);
            }
        }
        // Registry full — reclaim the box before panicking.
        // SAFETY: ptr came from Box::into_raw above and was never shared.
        drop(unsafe { Box::from_raw(ptr) });
        panic!("hazard registry full ({MAX_SLOTS} live descriptors)");
    }

    /// Remove a descriptor, waiting until no reader's hazard pointer
    /// references it, then free it.
    ///
    /// # Panics
    /// Panics if `slot` does not contain `ptr` (double unregister).
    pub fn unregister(&self, slot: SlotId, ptr: *const T) {
        let prev = self.slots[slot.0].swap(std::ptr::null_mut(), Ordering::AcqRel);
        assert_eq!(prev as *const T, ptr, "unregister of wrong descriptor");
        // Wait for readers: a reader publishes its hazard *before*
        // re-checking the slot, so once the slot is null, any reader that
        // still holds `ptr` in a hazard slot is observable here.
        loop {
            let mut busy = false;
            for h in &self.hazards {
                if h.load(Ordering::Acquire) as *const T == ptr {
                    busy = true;
                    break;
                }
            }
            if !busy {
                break;
            }
            std::hint::spin_loop();
        }
        // SAFETY: slot cleared and no hazards reference ptr; we own it again.
        drop(unsafe { Box::from_raw(ptr as *mut T) });
    }

    /// Claim a hazard slot for the calling thread. Must be called outside
    /// signal context (it may spin over the claim array).
    ///
    /// # Panics
    /// Panics if all [`MAX_HAZARDS`] slots are claimed.
    pub fn claim_hazard(&self) -> HazardId {
        for (i, c) in self.hazard_claimed.iter().enumerate() {
            if c.compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return HazardId(i);
            }
        }
        panic!("out of hazard slots ({MAX_HAZARDS} concurrent reader threads)");
    }

    /// Release a hazard slot claimed with [`HazardRegistry::claim_hazard`].
    pub fn release_hazard(&self, id: HazardId) {
        self.hazards[id.0].store(std::ptr::null_mut(), Ordering::Release);
        self.hazard_claimed[id.0].store(false, Ordering::Release);
    }

    /// Find a registered descriptor matching `pred`, protecting it with the
    /// caller's hazard slot, and pass it to `f`. The hazard is cleared
    /// before returning.
    ///
    /// Async-signal-safe: only atomic loads/stores and the caller's
    /// closures run. `pred` and `f` must themselves be signal-safe when
    /// called from a handler.
    pub fn find_with<R>(
        &self,
        hazard: HazardId,
        pred: impl FnMut(&T) -> bool,
        f: impl FnOnce(&T) -> R,
    ) -> Option<R> {
        self.find_with_hint(hazard, usize::MAX, pred, f)
            .map(|(_, r)| r)
    }

    /// [`HazardRegistry::find_with`], trying slot `hint` before the linear
    /// scan and reporting which slot matched so callers can cache it.
    ///
    /// The hot consumer is the signal handler: consecutive faults almost
    /// always land in the same arena, so a per-thread cached slot index
    /// turns the O(high_water) registry scan into a single probe. A stale
    /// hint is harmless — the slot is re-verified under the hazard
    /// protocol like any other, and a miss falls back to the full scan.
    /// Pass `usize::MAX` (or any out-of-range index) for "no hint".
    ///
    /// Async-signal-safe under the same conditions as `find_with`.
    pub fn find_with_hint<R>(
        &self,
        hazard: HazardId,
        hint: usize,
        mut pred: impl FnMut(&T) -> bool,
        f: impl FnOnce(&T) -> R,
    ) -> Option<(usize, R)> {
        let hw = self.high_water.load(Ordering::Acquire).min(MAX_SLOTS);
        let hslot = &self.hazards[hazard.0];
        let mut f = Some(f);
        // Probe order: the hinted slot first, then the linear scan (which
        // skips the hint — it was already checked).
        let probes = std::iter::once(hint)
            .filter(|&i| i < hw)
            .chain((0..hw).filter(|&i| i != hint));
        for i in probes {
            let slot = &self.slots[i];
            let p = slot.load(Ordering::Acquire);
            if p.is_null() {
                continue;
            }
            // Publish the hazard, then confirm the slot still holds p.
            hslot.store(p, Ordering::SeqCst);
            if slot.load(Ordering::SeqCst) != p {
                hslot.store(std::ptr::null_mut(), Ordering::Release);
                continue;
            }
            // SAFETY: hazard published and slot re-verified, so the
            // descriptor cannot be freed while we hold the hazard.
            let r = unsafe { &*p };
            if pred(r) {
                let out = f.take().map(|f| f(r));
                hslot.store(std::ptr::null_mut(), Ordering::Release);
                return out.map(|o| (i, o));
            }
            hslot.store(std::ptr::null_mut(), Ordering::Release);
        }
        None
    }

    /// Number of live descriptors (linearly scanned; for tests/diagnostics).
    ///
    /// The `Relaxed` loads are deliberate: this is a monitoring count with
    /// no coherence requirement — callers must not infer that a nonzero
    /// result makes any particular descriptor dereferenceable (that is
    /// what [`HazardRegistry::find_with`]'s hazard protocol is for).
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !s.load(Ordering::Relaxed).is_null())
            .count()
    }

    /// Whether the registry holds no descriptors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for HazardRegistry<T> {
    fn default() -> HazardRegistry<T> {
        HazardRegistry::new()
    }
}

/// The global arena registry consulted by the signal handler.
pub static ARENAS: HazardRegistry<ArenaDesc> = HazardRegistry::new();

/// The global JIT code-region registry consulted by the signal handler.
pub static CODE_REGIONS: HazardRegistry<CodeDesc> = HazardRegistry::new();

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn desc(base: usize, len: usize) -> Box<ArenaDesc> {
        Box::new(ArenaDesc::new(base, len, len, BoundsStrategy::None, -1))
    }

    #[test]
    fn register_lookup_unregister() {
        let reg: HazardRegistry<ArenaDesc> = HazardRegistry::new();
        let (slot, ptr) = reg.register(desc(0x1000, 0x1000));
        let h = reg.claim_hazard();
        let found = reg.find_with(h, |d| d.contains(0x1800), |d| d.base);
        assert_eq!(found, Some(0x1000));
        let missing = reg.find_with(h, |d| d.contains(0x4000), |d| d.base);
        assert_eq!(missing, None);
        reg.unregister(slot, ptr);
        assert!(reg.is_empty());
        reg.release_hazard(h);
    }

    #[test]
    #[should_panic(expected = "unregister of wrong descriptor")]
    fn double_unregister_panics() {
        let reg: HazardRegistry<ArenaDesc> = HazardRegistry::new();
        let (slot, ptr) = reg.register(desc(0, 16));
        reg.unregister(slot, ptr);
        reg.unregister(slot, ptr);
    }

    #[test]
    fn concurrent_register_unregister_with_readers() {
        let reg: Arc<HazardRegistry<ArenaDesc>> = Arc::new(HazardRegistry::new());
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();

        // Writer threads churn descriptors.
        for t in 0..4u64 {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let base = ((t + 1) << 32) + i * 0x10000;
                    let (slot, ptr) = reg.register(desc(base as usize, 0x10000));
                    std::hint::spin_loop();
                    reg.unregister(slot, ptr);
                    i += 1;
                }
            }));
        }
        // Reader threads scan concurrently.
        for _ in 0..4 {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let h = reg.claim_hazard();
                let mut found = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if reg.find_with(h, |d| d.len == 0x10000, |d| d.base).is_some() {
                        found += 1;
                    }
                }
                reg.release_hazard(h);
                let _ = found;
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert!(reg.is_empty());
    }

    #[test]
    fn find_with_hint_probes_cached_slot_and_recovers_from_stale_hints() {
        let reg: HazardRegistry<ArenaDesc> = HazardRegistry::new();
        let a = reg.register(desc(0x1000, 0x1000));
        let b = reg.register(desc(0x4000, 0x1000));
        let h = reg.claim_hazard();
        // No hint: the scan finds the second descriptor and reports its slot.
        let (slot_b, base) = reg
            .find_with_hint(h, usize::MAX, |d| d.contains(0x4800), |d| d.base)
            .unwrap();
        assert_eq!(base, 0x4000);
        // A correct hint hits the same slot.
        let (again, _) = reg
            .find_with_hint(h, slot_b, |d| d.contains(0x4800), |d| d.base)
            .unwrap();
        assert_eq!(again, slot_b);
        // A stale hint (points at the wrong arena) still finds the right one.
        let (slot_a, base) = reg
            .find_with_hint(h, slot_b, |d| d.contains(0x1800), |d| d.base)
            .unwrap();
        assert_eq!(base, 0x1000);
        assert_ne!(slot_a, slot_b);
        // A hint into a now-empty slot falls back cleanly.
        reg.unregister(b.0, b.1);
        assert!(reg
            .find_with_hint(h, slot_b, |d| d.contains(0x4800), |d| d.base)
            .is_none());
        reg.release_hazard(h);
        reg.unregister(a.0, a.1);
    }

    #[test]
    fn hazard_slots_are_reusable() {
        let reg: HazardRegistry<CodeDesc> = HazardRegistry::new();
        let a = reg.claim_hazard();
        reg.release_hazard(a);
        let b = reg.claim_hazard();
        assert_eq!(a, b, "released slot should be reclaimed first");
        reg.release_hazard(b);
    }

    #[test]
    fn high_water_shortens_scans_but_stays_correct() {
        let reg: HazardRegistry<ArenaDesc> = HazardRegistry::new();
        let mut live = Vec::new();
        for i in 0..10 {
            live.push(reg.register(desc(i * 0x1000 + 0x1000, 0x1000)));
        }
        // Remove the first few so later slots must still be found.
        for (slot, ptr) in live.drain(..5) {
            reg.unregister(slot, ptr);
        }
        let h = reg.claim_hazard();
        let found = reg.find_with(h, |d| d.contains(0x9800), |d| d.base);
        assert_eq!(found, Some(0x9000));
        reg.release_hazard(h);
        for (slot, ptr) in live {
            reg.unregister(slot, ptr);
        }
    }
}
