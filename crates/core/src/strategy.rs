//! Bounds-checking strategies and linear-memory configuration.
//!
//! These are the five mechanisms evaluated by the paper (§3.1).

use std::fmt;

/// How out-of-bounds linear-memory accesses are prevented or detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundsStrategy {
    /// **none** — the entire reservation is read-write mapped and no checks
    /// are performed. Unsafe; used as the baseline "no bounds checks" point.
    None,
    /// **clamp** — every access passes through a conditional select that
    /// clamps the effective address to the end of memory. Out-of-bounds
    /// accesses silently hit the last valid bytes instead of trapping.
    Clamp,
    /// **trap** — every access is preceded by an explicit compare-and-branch
    /// to a trap (the JIT branches to a `ud2` stub, reproducing the paper's
    /// SIGILL-based implementation; the interpreter returns a [`crate::Trap`]).
    Trap,
    /// **mprotect** — the reservation starts `PROT_NONE`; growing memory
    /// calls `mprotect(2)` to enable pages, and illegal accesses raise
    /// SIGSEGV. This is the default strategy of WAVM/Wasmtime/V8 and the
    /// one whose VMA-lock contention the paper analyses.
    Mprotect,
    /// **uffd** — the reservation is lazily read-write mapped and registered
    /// with `userfaultfd(2)` in SIGBUS mode; the committed size is a plain
    /// atomic, legal faults are resolved with `UFFDIO_ZEROPAGE` from the
    /// SIGBUS handler, and illegal ones become wasm traps. This is the
    /// paper's proposed mitigation for mprotect's poor multithreaded scaling.
    Uffd,
}

impl BoundsStrategy {
    /// All strategies, in the paper's presentation order.
    pub const ALL: [BoundsStrategy; 5] = [
        BoundsStrategy::None,
        BoundsStrategy::Clamp,
        BoundsStrategy::Trap,
        BoundsStrategy::Mprotect,
        BoundsStrategy::Uffd,
    ];

    /// Whether this strategy relies on virtual-memory hardware (guard pages
    /// / fault handling) rather than inline software checks.
    pub fn is_guard_based(self) -> bool {
        matches!(
            self,
            BoundsStrategy::None | BoundsStrategy::Mprotect | BoundsStrategy::Uffd
        )
    }

    /// Whether the generated code contains inline software checks.
    pub fn is_software(self) -> bool {
        matches!(self, BoundsStrategy::Clamp | BoundsStrategy::Trap)
    }

    /// The short lowercase name used in reports (matches the paper).
    pub fn name(self) -> &'static str {
        match self {
            BoundsStrategy::None => "none",
            BoundsStrategy::Clamp => "clamp",
            BoundsStrategy::Trap => "trap",
            BoundsStrategy::Mprotect => "mprotect",
            BoundsStrategy::Uffd => "uffd",
        }
    }

    /// Parse a strategy name as used on bench binary command lines.
    pub fn parse(s: &str) -> Option<BoundsStrategy> {
        Some(match s {
            "none" => BoundsStrategy::None,
            "clamp" => BoundsStrategy::Clamp,
            "trap" => BoundsStrategy::Trap,
            "mprotect" => BoundsStrategy::Mprotect,
            "uffd" => BoundsStrategy::Uffd,
            _ => return None,
        })
    }
}

impl fmt::Display for BoundsStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Default reservation: 8 GiB, covering every address reachable by
/// `u32 base + u32 offset` (paper §2.3).
pub const DEFAULT_RESERVE_BYTES: usize = 8 << 30;

/// Configuration for creating a [`crate::LinearMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// The bounds-checking strategy.
    pub strategy: BoundsStrategy,
    /// Initial size in 64 KiB wasm pages.
    pub initial_pages: u32,
    /// Maximum size in wasm pages `memory.grow` may reach.
    pub max_pages: u32,
    /// Virtual reservation size in bytes (default 8 GiB). Tests may shrink
    /// it; it is always rounded up to at least `max_pages` of backing plus
    /// one guard page.
    pub reserve_bytes: usize,
}

impl MemoryConfig {
    /// A config with the given strategy and sizes and the default 8 GiB
    /// reservation.
    pub fn new(strategy: BoundsStrategy, initial_pages: u32, max_pages: u32) -> MemoryConfig {
        MemoryConfig {
            strategy,
            initial_pages,
            max_pages,
            reserve_bytes: DEFAULT_RESERVE_BYTES,
        }
    }

    /// Same, but with a smaller virtual reservation (useful in tests and
    /// for the guard-region-size ablation).
    pub fn with_reserve(mut self, bytes: usize) -> MemoryConfig {
        self.reserve_bytes = bytes;
        self
    }
}

impl Default for MemoryConfig {
    fn default() -> MemoryConfig {
        MemoryConfig::new(BoundsStrategy::Mprotect, 1, 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for s in BoundsStrategy::ALL {
            assert_eq!(BoundsStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(BoundsStrategy::parse("bogus"), None);
    }

    #[test]
    fn classification() {
        assert!(BoundsStrategy::Mprotect.is_guard_based());
        assert!(BoundsStrategy::Uffd.is_guard_based());
        assert!(BoundsStrategy::None.is_guard_based());
        assert!(BoundsStrategy::Clamp.is_software());
        assert!(BoundsStrategy::Trap.is_software());
        for s in BoundsStrategy::ALL {
            assert_ne!(s.is_software(), s.is_guard_based());
        }
    }

    #[test]
    fn default_reserve_is_8gib() {
        assert_eq!(DEFAULT_RESERVE_BYTES, 8 * 1024 * 1024 * 1024);
        let c = MemoryConfig::new(BoundsStrategy::None, 1, 16);
        assert_eq!(c.reserve_bytes, DEFAULT_RESERVE_BYTES);
        assert_eq!(c.with_reserve(1 << 20).reserve_bytes, 1 << 20);
    }
}
