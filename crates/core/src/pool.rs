//! Instance pooling for linear memories: reuse the reservation, the arena
//! registration, and the uffd registration across instantiations.
//!
//! The paper's uffd strategy pays its way not in checks but in lifecycle:
//! an 8 GiB reservation `mmap`ed, `UFFDIO_REGISTER`ed, then torn down per
//! instantiation (§2.3). Under benchmark traffic — thousands of
//! instantiations of the same module — that setup dominates and distorts
//! the per-strategy numbers. The pool removes it: a dropped
//! [`crate::LinearMemory`] parks its [`ArenaParts`] on a lock-free
//! free-list keyed by strategy, and the next instantiation of the same
//! shape reuses them wholesale.
//!
//! The **zero-fill guarantee** on reuse comes from `madvise(MADV_DONTNEED)`
//! over the anonymous private reservation: the kernel drops every resident
//! page, and the next touch observes a fresh zero page (lazily faulted for
//! `uffd`, demand-zeroed for the others). Nothing is re-`mmap`ed, nothing
//! re-registered; for the `mprotect` strategy only the *delta* between the
//! released RW high-water mark and the new initial size is re-protected —
//! reusing an instance of the same shape costs zero `mprotect` calls.
//! [`MemoryPoolConfig::verify_zero`] adds a paranoid read-back of the
//! initial window for tests.
//!
//! While parked, an entry keeps `committed = 0` in its still-registered
//! [`ArenaDesc`], so a stray fault into a pooled arena classifies as a
//! wasm OOB trap rather than corrupting recycled memory.
//!
//! Opt-in: `LB_POOL=N` (entries retained per strategy) or
//! [`configure`] with a [`MemoryPoolConfig`]. Disabled (capacity 0) by
//! default, preserving the measured-per-run lifecycle the paper's
//! baseline figures need.

use crate::region::Reservation;
use crate::registry::{ArenaDesc, SlotId, ARENAS};
use crate::stats;
use crate::strategy::BoundsStrategy;
use crate::uffd::Uffd;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Once;

/// Maximum entries the free-list can hold per strategy, regardless of the
/// configured capacity (each parked entry pins a reservation and, for
/// `uffd`, a file descriptor).
pub const MAX_POOL_SLOTS: usize = 64;

/// Pool tuning, applied process-wide via [`configure`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryPoolConfig {
    /// Entries retained per strategy (0 disables pooling; clamped to
    /// [`MAX_POOL_SLOTS`]).
    pub capacity: usize,
    /// Read back the initial window on every reuse and panic if any byte
    /// is nonzero — the test-mode check of the zero-fill guarantee.
    pub verify_zero: bool,
}

impl MemoryPoolConfig {
    /// The configuration the environment requests: `LB_POOL=N` sets the
    /// capacity, `LB_POOL_VERIFY=1` the verification mode.
    pub fn from_env() -> MemoryPoolConfig {
        let capacity = std::env::var("LB_POOL")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        let verify_zero = std::env::var("LB_POOL_VERIFY")
            .map(|v| v.trim() == "1")
            .unwrap_or(false);
        MemoryPoolConfig {
            capacity,
            verify_zero,
        }
    }
}

static CAPACITY: AtomicUsize = AtomicUsize::new(0);
static VERIFY: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

/// Apply the environment's configuration exactly once; explicit
/// [`configure`] calls consume the same `Once` so a later lazy env read
/// can never clobber them.
fn ensure_env_config() {
    ENV_INIT.call_once(|| {
        let cfg = MemoryPoolConfig::from_env();
        CAPACITY.store(cfg.capacity.min(MAX_POOL_SLOTS), Ordering::Relaxed);
        VERIFY.store(cfg.verify_zero, Ordering::Relaxed);
    });
}

/// Install a pool configuration, overriding `LB_POOL`/`LB_POOL_VERIFY`.
/// Shrinking the capacity does not evict already-parked entries; call
/// [`drain`] for that.
pub fn configure(config: MemoryPoolConfig) {
    ENV_INIT.call_once(|| {});
    CAPACITY.store(config.capacity.min(MAX_POOL_SLOTS), Ordering::Relaxed);
    VERIFY.store(config.verify_zero, Ordering::Relaxed);
}

/// The effective per-strategy capacity (0 = pooling disabled).
pub fn pool_capacity() -> usize {
    ensure_env_config();
    CAPACITY.load(Ordering::Relaxed)
}

fn verify_zero_enabled() -> bool {
    ensure_env_config();
    VERIFY.load(Ordering::Relaxed)
}

/// The OS-facing parts of a linear memory that survive pooling: the
/// reservation, its live arena registration, and (for `uffd`) the
/// registered fault fd. Moves between `LinearMemory` and the free-list.
#[derive(Debug)]
pub(crate) struct ArenaParts {
    pub(crate) reservation: Reservation,
    pub(crate) desc_slot: SlotId,
    pub(crate) desc: *const ArenaDesc,
    pub(crate) uffd: Option<Uffd>,
    pub(crate) strategy: BoundsStrategy,
    /// Bytes from base currently PROT_READ|WRITE. Only meaningful for the
    /// `mprotect` strategy (the others keep the whole reservation RW);
    /// lets both reuse and `grow` skip `mprotect` for windows that are
    /// already writable.
    pub(crate) rw_high: AtomicUsize,
}

// SAFETY: the desc pointer stays valid until teardown (the registration it
// refers to is owned by these parts), and all state behind it is atomic.
unsafe impl Send for ArenaParts {}
unsafe impl Sync for ArenaParts {}

impl ArenaParts {
    pub(crate) fn desc(&self) -> &ArenaDesc {
        // SAFETY: registered at construction; unregistered only in teardown.
        unsafe { &*self.desc }
    }

    /// Full teardown: the non-pooled end of life. Unregisters the uffd
    /// range and the arena, then unmaps the reservation.
    pub(crate) fn teardown(self) {
        if let Some(u) = &self.uffd {
            let _ = u.unregister(
                self.reservation.base().as_ptr() as usize,
                self.reservation.len(),
            );
        }
        ARENAS.unregister(self.desc_slot, self.desc);
        // Reservation unmaps in its own Drop.
    }
}

fn strategy_index(s: BoundsStrategy) -> usize {
    match s {
        BoundsStrategy::None => 0,
        BoundsStrategy::Clamp => 1,
        BoundsStrategy::Trap => 2,
        BoundsStrategy::Mprotect => 3,
        BoundsStrategy::Uffd => 4,
    }
}

/// Free-lists: one fixed slot array per strategy. Push CASes an entry
/// into the first empty slot, pop swaps the first occupied one out —
/// lock-free and ABA-free (a slot transfers a unique boxed pointer in
/// one atomic op; there is no multi-step head/next protocol to race).
static FREE: [[AtomicPtr<ArenaParts>; MAX_POOL_SLOTS]; 5] =
    [const { [const { AtomicPtr::new(std::ptr::null_mut()) }; MAX_POOL_SLOTS] }; 5];

fn push(parts: ArenaParts) -> Result<(), ArenaParts> {
    let limit = pool_capacity().min(MAX_POOL_SLOTS);
    let list = &FREE[strategy_index(parts.strategy)];
    let ptr = Box::into_raw(Box::new(parts));
    for slot in &list[..limit] {
        if slot
            .compare_exchange(
                std::ptr::null_mut(),
                ptr,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            return Ok(());
        }
    }
    // Pool full at the configured capacity.
    // SAFETY: ptr came from Box::into_raw above and was never shared.
    Err(*unsafe { Box::from_raw(ptr) })
}

fn pop(strategy: BoundsStrategy) -> Option<ArenaParts> {
    let list = &FREE[strategy_index(strategy)];
    for slot in list.iter() {
        let p = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if !p.is_null() {
            // SAFETY: the swap transferred exclusive ownership of the box.
            return Some(*unsafe { Box::from_raw(p) });
        }
    }
    None
}

/// Number of entries currently parked across all strategies (diagnostics).
pub fn pooled_count() -> usize {
    FREE.iter()
        .flat_map(|l| l.iter())
        .filter(|s| !s.load(Ordering::Relaxed).is_null())
        .count()
}

/// Tear down every parked entry, returning how many were evicted. Tests
/// use this between configurations; long-lived processes (lb-serve's
/// capacity-shed relief path) use it to release reservations and fds
/// under memory pressure.
///
/// Sweeps repeatedly until a full pass evicts nothing: a concurrent
/// `release` can park an entry in a slot an in-progress sweep already
/// passed, and a single pass would silently leave it resident — the
/// cross-thread leak the pool stress test pins down.
pub fn drain() -> usize {
    let mut n = 0;
    loop {
        let mut evicted_this_pass = 0;
        for list in &FREE {
            for slot in list.iter() {
                let p = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
                if !p.is_null() {
                    // SAFETY: the swap transferred exclusive ownership.
                    unsafe { Box::from_raw(p) }.teardown();
                    evicted_this_pass += 1;
                }
            }
        }
        n += evicted_this_pass;
        if evicted_this_pass == 0 {
            return n;
        }
    }
}

/// Try to serve an instantiation from the pool. Returns ready-to-use
/// parts with `committed = initial_bytes`, or `None` (counted as a pool
/// miss when pooling is enabled) if nothing suitable is parked.
pub(crate) fn acquire(
    strategy: BoundsStrategy,
    reserve: usize,
    initial_bytes: usize,
) -> Option<ArenaParts> {
    if pool_capacity() == 0 {
        return None;
    }
    let _span = lb_telemetry::span!("pool.acquire", initial_bytes);
    let Some(parts) = pop(strategy) else {
        stats::count_pool_miss();
        return None;
    };
    // The pool is keyed by strategy only; a shape change (different
    // reservation size) evicts rather than adapts.
    if parts.reservation.len() != reserve {
        parts.teardown();
        stats::count_pool_miss();
        return None;
    }
    if strategy == BoundsStrategy::Mprotect {
        // Re-protect only the delta against the released RW high-water
        // mark. Same shape ⇒ zero syscalls; the excess of a larger
        // previous instance must return to PROT_NONE or OOB detection
        // beyond the new initial size would be lost.
        let rw = parts.rw_high.load(Ordering::Relaxed);
        let init = crate::region::round_up_to_page(initial_bytes);
        let adjust = if rw > init {
            parts
                .reservation
                .protect(init, rw - init, crate::region::Protection::None)
        } else if rw < init {
            parts
                .reservation
                .protect(rw, init - rw, crate::region::Protection::ReadWrite)
        } else {
            Ok(())
        };
        if adjust.is_err() {
            parts.teardown();
            stats::count_pool_miss();
            return None;
        }
        parts.rw_high.store(init, Ordering::Relaxed);
    }
    parts
        .desc()
        .committed
        .store(initial_bytes, Ordering::Release);
    if verify_zero_enabled() && initial_bytes > 0 && !verify_zero_window(&parts, initial_bytes) {
        // Populating the window failed (injected or real uffd error): the
        // entry is unverifiable, so poison it — tear down and miss, never
        // hand out memory the check could not cover, and never abort.
        parts.teardown();
        stats::count_pool_miss();
        return None;
    }
    stats::count_pool_hit();
    Some(parts)
}

/// Park released parts on the free-list, resetting them for the next
/// instantiation, or tear them down if pooling is off, the reset fails
/// (the fall-back-to-fresh-`mmap` path chaos tests exercise), or the pool
/// is full.
pub(crate) fn release(parts: ArenaParts) {
    if pool_capacity() == 0 {
        parts.teardown();
        return;
    }
    let _span = lb_telemetry::span!("pool.release", parts.reservation.len());
    let t0 = std::time::Instant::now();
    // Nothing may fault a parked arena as committed, and a recycled arena
    // must not inherit the previous instance's stride history.
    parts.desc().committed.store(0, Ordering::Release);
    parts.desc().reset_fault_prediction();
    // The reset itself: drop every resident page. An injected or real
    // failure degrades to a full teardown — the next acquire simply
    // misses and maps fresh memory; never an abort.
    if lb_chaos::inject("core.pool.reset").is_some()
        || parts
            .reservation
            .discard(0, parts.reservation.len())
            .is_err()
    {
        parts.teardown();
        return;
    }
    stats::record_pool_reset_us(t0.elapsed().as_micros() as u64);
    if let Err(excess) = push(parts) {
        excess.teardown();
    }
}

/// Read back `[0, initial_bytes)` and panic on any nonzero byte — the
/// pool's contract is that reuse is indistinguishable from a fresh
/// memory. For `uffd` the pages are populated via ioctl first: this is
/// host context with no trap frame armed, so letting the read SIGBUS
/// would kill the process rather than fault-service.
///
/// Returns `false` if population failed, meaning the window could not be
/// checked — the caller must treat the entry as poisoned and tear it
/// down. The panic is reserved for an *observed* nonzero byte, which is
/// a genuine zero-fill invariant violation.
#[must_use]
fn verify_zero_window(parts: &ArenaParts, initial_bytes: usize) -> bool {
    let base = parts.reservation.base().as_ptr();
    let end = crate::region::round_up_to_page(initial_bytes);
    if let Some(u) = &parts.uffd {
        let mut off = 0;
        while off < end {
            match u.zeropage(base as usize + off, 4096) {
                Ok(()) => {}
                Err(e) if e.raw_os_error() == Some(libc::EEXIST) => {}
                Err(_) => return false,
            }
            off += 4096;
        }
    }
    let words = initial_bytes / 8;
    for i in 0..words {
        // SAFETY: [0, initial_bytes) is committed, populated, and readable
        // for every strategy at this point.
        let v = unsafe { std::ptr::read_volatile((base as *const u64).add(i)) };
        assert_eq!(
            v,
            0,
            "pool verify_zero: reused memory not zeroed at byte {}",
            i * 8
        );
    }
    true
}
