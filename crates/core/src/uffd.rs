//! Raw `userfaultfd(2)` support: the paper's proposed alternative to
//! mprotect-based memory management (§2.3.1, §3.1 strategy 5).
//!
//! Two delivery modes are implemented, matching the paper:
//!
//! * **SIGBUS mode** (used for measurements): the `UFFD_FEATURE_SIGBUS`
//!   feature makes missing-page faults deliver a SIGBUS to the faulting
//!   thread; the signal handler resolves legal faults with
//!   `UFFDIO_ZEROPAGE` in place, avoiding "back-and-forth context
//!   switches" with a handler thread.
//! * **Poll mode** (kept as an ablation): a dedicated thread reads fault
//!   events from the file descriptor and populates pages; the paper
//!   footnotes that "this has a higher latency than the signal-based
//!   method".

use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

// ── Linux ABI (stable since 4.3; SIGBUS feature since 4.14) ─────────────

const UFFD_API: u64 = 0xAA;
const UFFDIO_API: libc::c_ulong = 0xC018_AA3F;
const UFFDIO_REGISTER: libc::c_ulong = 0xC020_AA00;
const UFFDIO_UNREGISTER: libc::c_ulong = 0x8010_AA01;
const UFFDIO_WAKE: libc::c_ulong = 0x8010_AA02;
const UFFDIO_ZEROPAGE: libc::c_ulong = 0xC020_AA04;

const UFFDIO_REGISTER_MODE_MISSING: u64 = 1 << 0;
const UFFD_FEATURE_SIGBUS: u64 = 1 << 7;
const UFFD_EVENT_PAGEFAULT: u8 = 0x12;

#[repr(C)]
struct UffdioApi {
    api: u64,
    features: u64,
    ioctls: u64,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct UffdioRange {
    start: u64,
    len: u64,
}

#[repr(C)]
struct UffdioRegister {
    range: UffdioRange,
    mode: u64,
    ioctls: u64,
}

#[repr(C)]
struct UffdioZeropage {
    range: UffdioRange,
    mode: u64,
    zeropage: i64,
}

#[repr(C)]
struct UffdMsg {
    event: u8,
    reserved1: u8,
    reserved2: u16,
    reserved3: u32,
    // pagefault arm of the union (largest arm is 24 bytes)
    flags: u64,
    address: u64,
    extra: u64,
}

/// Outcome of a fault-resolution attempt from the signal handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The page was populated (or already present); retry the access.
    Populated,
    /// The access was beyond the committed size: a wasm OOB trap.
    OutOfBounds,
}

/// An owned userfaultfd file descriptor.
#[derive(Debug)]
pub struct Uffd {
    fd: RawFd,
    sigbus: bool,
}

impl Uffd {
    /// Create a userfaultfd in SIGBUS mode (missing faults raise SIGBUS on
    /// the faulting thread; no handler thread required).
    ///
    /// # Errors
    /// Fails if the kernel lacks userfaultfd or the SIGBUS feature, or the
    /// process lacks the privilege (`vm.unprivileged_userfaultfd`).
    pub fn new_sigbus() -> io::Result<Uffd> {
        Uffd::new(UFFD_FEATURE_SIGBUS, true)
    }

    /// Create a userfaultfd in poll mode (events read from the fd by a
    /// handler thread; see [`PollHandler`]).
    ///
    /// # Errors
    /// Fails if the kernel lacks userfaultfd or the process lacks privilege.
    pub fn new_poll() -> io::Result<Uffd> {
        Uffd::new(0, false)
    }

    fn new(features: u64, sigbus: bool) -> io::Result<Uffd> {
        // The fault point most worth injecting: userfaultfd(2) is EPERM'd
        // in most containers (vm.unprivileged_userfaultfd since 5.11).
        if let Some(e) = lb_chaos::inject("core.uffd.create") {
            return Err(e);
        }
        // O_CLOEXEC always. Poll mode adds O_NONBLOCK: a queued fault
        // event can be resolved — and its wait-queue entry removed — by a
        // third party (the watchdog's eager conversion) between the
        // handler's poll() and read(), and a blocking read would then
        // hang the handler thread forever.
        let mut flags = libc::O_CLOEXEC;
        if !sigbus {
            flags |= libc::O_NONBLOCK;
        }
        // SAFETY: plain syscall.
        let fd = unsafe { libc::syscall(libc::SYS_userfaultfd, flags) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fd = fd as RawFd;
        let mut api = UffdioApi {
            api: UFFD_API,
            features,
            ioctls: 0,
        };
        // SAFETY: valid fd and struct.
        let rc = unsafe { libc::ioctl(fd, UFFDIO_API, &mut api) };
        if rc != 0 {
            let e = io::Error::last_os_error();
            // SAFETY: closing the fd we just opened.
            unsafe { libc::close(fd) };
            return Err(e);
        }
        if features & UFFD_FEATURE_SIGBUS != 0 && api.features & UFFD_FEATURE_SIGBUS == 0 {
            // SAFETY: closing the fd we just opened.
            unsafe { libc::close(fd) };
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "kernel lacks UFFD_FEATURE_SIGBUS",
            ));
        }
        Ok(Uffd { fd, sigbus })
    }

    /// The raw file descriptor (stored in the arena descriptor so the
    /// signal handler can issue `UFFDIO_ZEROPAGE`).
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Whether this fd was created in SIGBUS mode.
    pub fn is_sigbus(&self) -> bool {
        self.sigbus
    }

    /// Register `[base, base+len)` for missing-page tracking.
    ///
    /// # Errors
    /// Propagates the `UFFDIO_REGISTER` failure.
    pub fn register_missing(&self, base: usize, len: usize) -> io::Result<()> {
        if let Some(e) = lb_chaos::inject("core.uffd.register") {
            return Err(e);
        }
        let mut reg = UffdioRegister {
            range: UffdioRange {
                start: base as u64,
                len: len as u64,
            },
            mode: UFFDIO_REGISTER_MODE_MISSING,
            ioctls: 0,
        };
        // SAFETY: valid fd and struct; range is a live mapping we own.
        let rc = unsafe { libc::ioctl(self.fd, UFFDIO_REGISTER, &mut reg) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        crate::stats::count_uffd_register();
        Ok(())
    }

    /// Unregister a previously registered range.
    ///
    /// # Errors
    /// Propagates the `UFFDIO_UNREGISTER` failure.
    pub fn unregister(&self, base: usize, len: usize) -> io::Result<()> {
        let range = UffdioRange {
            start: base as u64,
            len: len as u64,
        };
        // SAFETY: valid fd and struct.
        let rc = unsafe { libc::ioctl(self.fd, UFFDIO_UNREGISTER, &range) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Zero-fill `[base+off, base+off+len)`.
    ///
    /// # Errors
    /// Propagates the ioctl failure (e.g. `EEXIST` when already populated).
    pub fn zeropage(&self, start: usize, len: usize) -> io::Result<()> {
        match zeropage_raw(self.fd, start, len) {
            0 => Ok(()),
            e => Err(io::Error::from_raw_os_error(e)),
        }
    }

    /// Wake threads blocked on faults in `[base, base+len)` (`UFFDIO_WAKE`).
    /// Used by the watchdog's stall recovery: a lost or stuck wakeup is
    /// re-issued so faulting threads retry their access.
    ///
    /// # Errors
    /// Propagates the ioctl failure.
    pub fn wake(&self, base: usize, len: usize) -> io::Result<()> {
        if let Some(e) = lb_chaos::inject("core.uffd.wake") {
            return Err(e);
        }
        let range = UffdioRange {
            start: base as u64,
            len: len as u64,
        };
        // SAFETY: valid fd and struct.
        let rc = unsafe { libc::ioctl(self.fd, UFFDIO_WAKE, &range) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

impl Drop for Uffd {
    fn drop(&mut self) {
        // SAFETY: we own the fd.
        unsafe { libc::close(self.fd) };
    }
}

/// Issue `UFFDIO_ZEROPAGE`; returns 0 or the positive errno.
/// Async-signal-safe — including the fault-point consultation, which is
/// atomic loads and increments on pre-registered counters. This one site
/// covers both the host-side populate path and the in-handler SIGBUS
/// fast path. Every real ioctl issued counts into `uffd.zeropage`, so
/// the counter is an exact ioctl tally across host, handler, poll-thread
/// and watchdog callers.
fn zeropage_raw(fd: RawFd, start: usize, len: usize) -> i32 {
    if let Some(errno) = lb_chaos::inject_raw("core.uffd.copy") {
        return errno;
    }
    crate::stats::count_uffd_zeropage();
    let mut z = UffdioZeropage {
        range: UffdioRange {
            start: start as u64,
            len: len as u64,
        },
        mode: 0,
        zeropage: 0,
    };
    // SAFETY: valid fd and struct; ioctl is async-signal-safe.
    let rc = unsafe { libc::ioctl(fd, UFFDIO_ZEROPAGE, &mut z) };
    if rc == 0 {
        0
    } else {
        // SAFETY: errno read is a TLS load.
        unsafe { *libc::__errno_location() }
    }
}

// ── fault-service window sizing ──────────────────────────────────────────

/// Host page size the servicer batches in (Linux/x86-64).
const HOST_PAGE: usize = 4096;
/// Default service window: 16 host pages = 64 KiB, one wasm page.
pub const DEFAULT_UFFD_WINDOW_PAGES: usize = 16;
/// Hard cap on the (possibly streak-extended) window: 1024 pages = 4 MiB.
pub const MAX_UFFD_WINDOW_PAGES: usize = 1024;
/// Consecutive sequential faults before the window starts extending.
const STREAK_THRESHOLD: usize = 2;
/// Maximum doublings a streak can apply on top of the base window (16×).
const MAX_STREAK_BOOST: usize = 4;

/// Current window in host pages; 0 means "not yet initialized from the
/// environment" and reads as the default.
static WINDOW_PAGES: AtomicU64 = AtomicU64::new(0);

/// Initialize the fault-service window from `LB_UFFD_WINDOW` (host pages,
/// rounded up to a power of two, clamped to `[1, 1024]`). Called once from
/// normal context by `install_handlers`; later env changes are ignored.
pub(crate) fn init_window_from_env() {
    if WINDOW_PAGES.load(Ordering::Relaxed) != 0 {
        return;
    }
    let pages = std::env::var("LB_UFFD_WINDOW")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_UFFD_WINDOW_PAGES);
    set_uffd_window_pages(pages);
}

/// Set the fault-service window in host (4 KiB) pages. The value is
/// rounded up to a power of two and clamped to `[1, 1024]`. A window of 1
/// is the per-page baseline: no batching, no streak prefetch (used as the
/// ablation point the batching speedup is measured against).
pub fn set_uffd_window_pages(pages: usize) {
    let p = pages
        .clamp(1, MAX_UFFD_WINDOW_PAGES)
        .next_power_of_two()
        .min(MAX_UFFD_WINDOW_PAGES);
    WINDOW_PAGES.store(p as u64, Ordering::Relaxed);
}

/// The current fault-service window in host pages.
pub fn uffd_window_pages() -> usize {
    match WINDOW_PAGES.load(Ordering::Relaxed) {
        0 => DEFAULT_UFFD_WINDOW_PAGES,
        p => p as usize,
    }
}

/// Resolve a fault at `desc.base + off` for an arena with `committed`
/// accessible bytes, from signal context.
///
/// This is the stride-predicting batched servicer: instead of one
/// `UFFDIO_ZEROPAGE` per faulting page, it zero-fills a power-of-two
/// window of [`uffd_window_pages`] host pages aligned to the window size
/// (the paper: the handler may "populate the faulted page, or a larger
/// range of pages"). Per-arena last-window bookkeeping in [`ArenaDesc`]
/// detects sequential scans — a fault landing exactly where the previous
/// window ended — and eagerly doubles the window per streak step (up to
/// 16×, hard-capped at 4 MiB), collapsing N ioctls into ~N/16 or better
/// on streaming kernels.
///
/// The window always clamps to the committed range: it must never round
/// past the committed/guard boundary, or pages beyond `memory.size` would
/// be silently populated and out-of-bounds detection lost.
///
/// Async-signal-safe: only ioctls, arithmetic, and relaxed atomics on
/// pre-registered slots.
pub(crate) fn zeropage_around(
    fd: i32,
    desc: &crate::registry::ArenaDesc,
    committed: usize,
    off: usize,
) -> FaultAction {
    if fd < 0 || off >= committed {
        return FaultAction::OutOfBounds;
    }
    let wpages = uffd_window_pages();
    let window = wpages * HOST_PAGE;
    let start = off & !(window - 1);
    let mut len = window;
    if wpages > 1 {
        // Stride prediction. `last_fault_end == 0` means "no history"
        // (fresh or pool-reset arena), so a scan starting at offset 0
        // seeds the predictor without counting as a streak.
        let predicted = desc.last_fault_end.load(Ordering::Relaxed);
        if predicted != 0 && start == predicted {
            let streak = desc.fault_streak.fetch_add(1, Ordering::Relaxed) + 1;
            if streak >= STREAK_THRESHOLD {
                let boost = (streak - STREAK_THRESHOLD + 1).min(MAX_STREAK_BOOST);
                len = (window << boost).min(MAX_UFFD_WINDOW_PAGES * HOST_PAGE);
                crate::stats::count_uffd_prefetch_streak();
            }
        } else {
            desc.fault_streak.store(0, Ordering::Relaxed);
        }
    }
    // Clamp to the registered/committed range — never past the boundary.
    len = len.min(committed - start);
    crate::stats::count_uffd_batch_pages((len / HOST_PAGE) as u64);
    match zeropage_raw(fd, desc.base + start, len) {
        0 => {
            desc.last_fault_end.store(start + len, Ordering::Relaxed);
            FaultAction::Populated
        }
        libc::EEXIST => {
            // Window partially populated; fill just the faulting host page
            // and let the predictor resume from there.
            let page = off & !(HOST_PAGE - 1);
            desc.last_fault_end
                .store(page + HOST_PAGE, Ordering::Relaxed);
            match zeropage_raw(fd, desc.base + page, HOST_PAGE) {
                0 | libc::EEXIST => FaultAction::Populated,
                _ => FaultAction::OutOfBounds,
            }
        }
        libc::EAGAIN => {
            // mm is changing under us; retrying the access will re-fault.
            FaultAction::Populated
        }
        _ => FaultAction::OutOfBounds,
    }
}

/// Whether userfaultfd with SIGBUS mode is usable in this environment.
/// Probed once and cached.
pub fn sigbus_mode_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| Uffd::new_sigbus().is_ok())
}

/// A monotonically increasing liveness signal. The poll-mode fault
/// handler bumps it every loop iteration (event or timeout alike); the
/// [`Watchdog`] reads it to distinguish a healthy-but-idle handler from a
/// stalled one.
#[derive(Debug, Clone, Default)]
pub struct Heartbeat(Arc<AtomicU64>);

impl Heartbeat {
    /// A fresh heartbeat at tick 0.
    pub fn new() -> Heartbeat {
        Heartbeat::default()
    }

    /// Record one liveness tick.
    pub fn beat(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// The current tick count.
    pub fn ticks(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A poll-mode fault-handler thread (the paper's footnoted alternative;
/// kept for the latency ablation bench).
#[derive(Debug)]
pub struct PollHandler {
    stop: Arc<AtomicBool>,
    heartbeat: Heartbeat,
    thread: Option<std::thread::JoinHandle<u64>>,
}

impl PollHandler {
    /// Spawn a thread servicing missing-page faults on `uffd` by zero-
    /// filling one host page per event.
    ///
    /// # Panics
    /// Panics if the OS refuses to spawn a thread.
    pub fn spawn(uffd: Arc<Uffd>) -> PollHandler {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let heartbeat = Heartbeat::new();
        let hb = heartbeat.clone();
        let thread = std::thread::Builder::new()
            .name("uffd-poll".into())
            .spawn(move || {
                let mut handled = 0u64;
                let fd = uffd.raw_fd();
                while !stop2.load(Ordering::Relaxed) {
                    hb.beat();
                    let mut pfd = libc::pollfd {
                        fd,
                        events: libc::POLLIN,
                        revents: 0,
                    };
                    // SAFETY: valid pollfd.
                    let n = unsafe { libc::poll(&mut pfd, 1, 50) };
                    if n <= 0 {
                        continue;
                    }
                    let mut msg = UffdMsg {
                        event: 0,
                        reserved1: 0,
                        reserved2: 0,
                        reserved3: 0,
                        flags: 0,
                        address: 0,
                        extra: 0,
                    };
                    // SAFETY: reading one event struct from the fd.
                    let r = unsafe {
                        libc::read(
                            fd,
                            &mut msg as *mut _ as *mut libc::c_void,
                            std::mem::size_of::<UffdMsg>(),
                        )
                    };
                    if r <= 0 {
                        continue;
                    }
                    if msg.event == UFFD_EVENT_PAGEFAULT {
                        let page = (msg.address as usize) & !(4096 - 1);
                        let _ = zeropage_raw(fd, page, 4096);
                        handled += 1;
                    }
                }
                handled
            })
            .expect("spawn uffd poll thread");
        PollHandler {
            stop,
            heartbeat,
            thread: Some(thread),
        }
    }

    /// The handler thread's liveness signal, for wiring up a [`Watchdog`].
    pub fn heartbeat(&self) -> Heartbeat {
        self.heartbeat.clone()
    }

    /// Stop the handler thread and return the number of faults it serviced.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.thread
            .take()
            .map(|t| t.join().unwrap_or(0))
            .unwrap_or(0)
    }
}

impl Drop for PollHandler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

// ── watchdog ─────────────────────────────────────────────────────────────

/// Tuning for the [`Watchdog`]'s stall state machine.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// How often the watchdog samples the heartbeat.
    pub poll_interval: Duration,
    /// A heartbeat frozen for this long is declared a stall.
    pub stall_after: Duration,
    /// `UFFDIO_WAKE` recovery attempts before the last resort.
    pub max_wakes: u32,
    /// Sleep after the first wake; doubles per attempt (bounded backoff).
    pub wake_backoff: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            poll_interval: Duration::from_millis(100),
            stall_after: Duration::from_secs(2),
            max_wakes: 3,
            wake_backoff: Duration::from_millis(50),
        }
    }
}

/// What a [`Watchdog`] did over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchdogReport {
    /// Stalls detected (heartbeat frozen past `stall_after`).
    pub stalls: u64,
    /// `UFFDIO_WAKE` recovery attempts issued.
    pub wakes: u64,
    /// Last-resort conversions of the region to eagerly-populated pages.
    pub eager_conversions: u64,
}

/// Supervises a uffd fault-handler thread through its [`Heartbeat`].
///
/// State machine (documented in DESIGN.md §"Failure model"):
///
/// ```text
/// Healthy --heartbeat frozen ≥ stall_after--> Stalled
/// Stalled --UFFDIO_WAKE, backoff ×2, ≤ max_wakes--> Healthy (beat seen)
/// Stalled --wakes exhausted--> Converted (eager-populate whole region,
///                                         wake once more, stop escalating)
/// ```
///
/// The conversion is the last resort the issue of a dead handler thread
/// demands: `UFFDIO_ZEROPAGE` over the entire committed range resolves
/// every pending and future missing-page fault directly (the default
/// zeropage mode wakes waiters), so blocked wasm threads resume even
/// though lazy population is lost for that region.
#[derive(Debug)]
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<WatchdogReport>>,
}

impl Watchdog {
    /// Spawn a watchdog over `heartbeat`, guarding the registered range
    /// `[base, base+len)` on `uffd`.
    ///
    /// # Panics
    /// Panics if the OS refuses to spawn a thread.
    pub fn spawn(
        heartbeat: Heartbeat,
        uffd: Arc<Uffd>,
        base: usize,
        len: usize,
        config: WatchdogConfig,
    ) -> Watchdog {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        // Register counters from normal context, before the thread runs.
        let stall_ctr = lb_telemetry::counter("core.uffd.watchdog.stall");
        let wake_ctr = lb_telemetry::counter("core.uffd.watchdog.wake");
        let convert_ctr = lb_telemetry::counter("core.uffd.watchdog.eager_convert");
        let thread = std::thread::Builder::new()
            .name("uffd-watchdog".into())
            .spawn(move || {
                let mut report = WatchdogReport::default();
                let mut last_ticks = heartbeat.ticks();
                let mut frozen_for = Duration::ZERO;
                let mut converted = false;
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(config.poll_interval);
                    let now_ticks = heartbeat.ticks();
                    if now_ticks != last_ticks {
                        last_ticks = now_ticks;
                        frozen_for = Duration::ZERO;
                        continue;
                    }
                    frozen_for += config.poll_interval;
                    if converted || frozen_for < config.stall_after {
                        continue;
                    }
                    // Stalled: the handler made no progress for a full
                    // stall window while the region may have waiters.
                    report.stalls += 1;
                    stall_ctr.inc();
                    let mut backoff = config.wake_backoff;
                    let mut recovered = false;
                    for _ in 0..config.max_wakes {
                        if stop2.load(Ordering::Relaxed) {
                            return report;
                        }
                        report.wakes += 1;
                        wake_ctr.inc();
                        let _ = uffd.wake(base, len);
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(Duration::from_secs(1));
                        if heartbeat.ticks() != last_ticks {
                            recovered = true;
                            break;
                        }
                    }
                    if recovered {
                        last_ticks = heartbeat.ticks();
                        frozen_for = Duration::ZERO;
                        continue;
                    }
                    // Last resort: convert the stalled region to eagerly-
                    // populated pages. Chunked so one bad page cannot veto
                    // the rest; EEXIST means already present and is fine.
                    report.eager_conversions += 1;
                    convert_ctr.inc();
                    const CHUNK: usize = 4 << 20;
                    let mut off = 0;
                    while off < len {
                        let n = CHUNK.min(len - off);
                        let _ = uffd.zeropage(base + off, n);
                        off += n;
                    }
                    let _ = uffd.wake(base, len);
                    converted = true;
                }
                report
            })
            .expect("spawn uffd watchdog thread");
        Watchdog {
            stop,
            thread: Some(thread),
        }
    }

    /// Stop the watchdog and return what it observed and did.
    pub fn stop(mut self) -> WatchdogReport {
        self.stop.store(true, Ordering::Relaxed);
        self.thread
            .take()
            .map(|t| t.join().unwrap_or_default())
            .unwrap_or_default()
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{Protection, Reservation};

    fn require_uffd() -> bool {
        if !sigbus_mode_available() {
            eprintln!("skipping: userfaultfd SIGBUS mode unavailable");
            return false;
        }
        true
    }

    #[test]
    fn api_handshake() {
        if !require_uffd() {
            return;
        }
        let u = Uffd::new_sigbus().unwrap();
        assert!(u.raw_fd() >= 0);
        assert!(u.is_sigbus());
    }

    #[test]
    fn register_and_explicit_zeropage() {
        if !require_uffd() {
            return;
        }
        let res = Reservation::new(1 << 20, Protection::ReadWrite).unwrap();
        let base = res.base().as_ptr() as usize;
        let u = Uffd::new_sigbus().unwrap();
        u.register_missing(base, res.len()).unwrap();
        // Populate explicitly, then read without faulting.
        u.zeropage(base, 4096).unwrap();
        // SAFETY: page populated above.
        let v = unsafe { std::ptr::read_volatile(base as *const u8) };
        assert_eq!(v, 0);
        // Double-populate reports EEXIST.
        let e = u.zeropage(base, 4096).unwrap_err();
        assert_eq!(e.raw_os_error(), Some(libc::EEXIST));
        u.unregister(base, res.len()).unwrap();
    }

    /// Serializes tests that reconfigure the process-global fault-service
    /// window, and restores the default when dropped.
    struct WindowGuard {
        _lock: std::sync::MutexGuard<'static, ()>,
    }

    fn window_lock(pages: usize) -> WindowGuard {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_uffd_window_pages(pages);
        WindowGuard { _lock: g }
    }

    impl Drop for WindowGuard {
        fn drop(&mut self) {
            set_uffd_window_pages(DEFAULT_UFFD_WINDOW_PAGES);
        }
    }

    /// A registered uffd arena over a fresh reservation, for driving
    /// `zeropage_around` directly (no signal delivery involved).
    fn arena(
        len: usize,
        committed: usize,
    ) -> Option<(Reservation, Uffd, crate::registry::ArenaDesc)> {
        if !require_uffd() {
            return None;
        }
        let res = Reservation::new(len, Protection::ReadWrite).unwrap();
        let base = res.base().as_ptr() as usize;
        let u = Uffd::new_sigbus().unwrap();
        u.register_missing(base, len).unwrap();
        let desc =
            crate::registry::ArenaDesc::new(base, len, committed, BoundsStrategy::Uffd, u.raw_fd());
        Some((res, u, desc))
    }

    use crate::strategy::BoundsStrategy;

    #[test]
    fn window_clamps_to_committed_boundary() {
        let _g = window_lock(16);
        // 5 committed host pages: the 16-page window around a fault in the
        // last committed page must stop exactly at the boundary.
        let Some((_res, u, desc)) = arena(1 << 20, 5 * 4096) else {
            return;
        };
        let base = desc.base;
        let action = zeropage_around(u.raw_fd(), &desc, 5 * 4096, 4 * 4096 + 123);
        assert_eq!(action, FaultAction::Populated);
        // Pages 0..5 are now present (double-populate says EEXIST)...
        for p in 0..5usize {
            let e = u.zeropage(base + p * 4096, 4096).unwrap_err();
            assert_eq!(e.raw_os_error(), Some(libc::EEXIST), "page {p}");
        }
        // ...and the first page past the boundary must NOT have been
        // populated: a fresh zeropage there succeeds.
        u.zeropage(base + 5 * 4096, 4096).unwrap();
    }

    #[test]
    fn fault_in_last_page_before_boundary_is_exact() {
        let _g = window_lock(16);
        // committed = 17 pages: one full window plus one page. A fault in
        // page 16 window-aligns to start=16 pages and must populate only
        // the single remaining committed page.
        let Some((_res, u, desc)) = arena(1 << 20, 17 * 4096) else {
            return;
        };
        let base = desc.base;
        let before = crate::stats::snapshot();
        let action = zeropage_around(u.raw_fd(), &desc, 17 * 4096, 16 * 4096);
        assert_eq!(action, FaultAction::Populated);
        let after = crate::stats::snapshot();
        assert_eq!(after.uffd_zeropage - before.uffd_zeropage, 1);
        let e = u.zeropage(base + 16 * 4096, 4096).unwrap_err();
        assert_eq!(e.raw_os_error(), Some(libc::EEXIST));
        u.zeropage(base + 17 * 4096, 4096).unwrap();
    }

    #[test]
    fn fault_at_exact_committed_boundary_is_oob() {
        let _g = window_lock(16);
        let Some((_res, u, desc)) = arena(1 << 20, 8 * 4096) else {
            return;
        };
        assert_eq!(
            zeropage_around(u.raw_fd(), &desc, 8 * 4096, 8 * 4096),
            FaultAction::OutOfBounds,
            "off == committed is the first illegal byte"
        );
        assert_eq!(
            zeropage_around(u.raw_fd(), &desc, 0, 0),
            FaultAction::OutOfBounds,
            "an empty committed range has no legal faults"
        );
    }

    #[test]
    fn sequential_faults_batch_and_extend_on_streak() {
        let _g = window_lock(16);
        let committed = 1 << 20; // 256 host pages
        let Some((_res, u, desc)) = arena(1 << 20, committed) else {
            return;
        };
        let before = crate::stats::snapshot();
        let tele_before = lb_telemetry::snapshot();
        // Drive the servicer exactly as a sequential scan would: each
        // simulated fault lands where the previous window ended.
        let mut off = 0usize;
        let mut services = 0u64;
        while off < committed {
            assert_eq!(
                zeropage_around(u.raw_fd(), &desc, committed, off),
                FaultAction::Populated
            );
            services += 1;
            off = desc.last_fault_end.load(Ordering::Relaxed);
        }
        let ioctls = crate::stats::snapshot().uffd_zeropage - before.uffd_zeropage;
        let d = lb_telemetry::snapshot().delta_since(&tele_before);
        // 256 pages in far fewer ioctls than the 16-page base window alone
        // would need (16), because the streak extends the window.
        assert!(services < 16, "streak must extend the window: {services}");
        assert_eq!(ioctls, services);
        assert!(d.counter("uffd.prefetch_streak") >= 1);
        assert_eq!(d.counter("uffd.batch_pages"), 256);
        // Everything inside committed is populated, nothing beyond.
        let e = u.zeropage(desc.base, 4096).unwrap_err();
        assert_eq!(e.raw_os_error(), Some(libc::EEXIST));
    }

    #[test]
    fn window_of_one_is_per_page_baseline() {
        let _g = window_lock(1);
        let Some((_res, u, desc)) = arena(1 << 20, 32 * 4096) else {
            return;
        };
        let before = crate::stats::snapshot();
        for p in 0..32usize {
            assert_eq!(
                zeropage_around(u.raw_fd(), &desc, 32 * 4096, p * 4096),
                FaultAction::Populated
            );
        }
        let ioctls = crate::stats::snapshot().uffd_zeropage - before.uffd_zeropage;
        assert_eq!(ioctls, 32, "window=1 must issue exactly one ioctl per page");
        let _ = u;
    }

    #[test]
    fn window_setter_rounds_and_clamps() {
        let _g = window_lock(16);
        set_uffd_window_pages(3);
        assert_eq!(uffd_window_pages(), 4, "rounded up to a power of two");
        set_uffd_window_pages(0);
        assert_eq!(uffd_window_pages(), 1, "clamped to at least one page");
        set_uffd_window_pages(1 << 20);
        assert_eq!(uffd_window_pages(), MAX_UFFD_WINDOW_PAGES);
    }

    #[test]
    fn eexist_mid_window_falls_back_to_single_page() {
        let _g = window_lock(16);
        let Some((_res, u, desc)) = arena(1 << 20, 16 * 4096) else {
            return;
        };
        // Pre-populate a page in the middle of the window so the batched
        // zeropage reports EEXIST.
        u.zeropage(desc.base + 7 * 4096, 4096).unwrap();
        let action = zeropage_around(u.raw_fd(), &desc, 16 * 4096, 3 * 4096);
        assert_eq!(action, FaultAction::Populated);
        // The faulting page itself must be present now.
        let e = u.zeropage(desc.base + 3 * 4096, 4096).unwrap_err();
        assert_eq!(e.raw_os_error(), Some(libc::EEXIST));
    }

    #[test]
    fn poll_mode_populates_on_touch() {
        let Ok(u) = Uffd::new_poll() else {
            eprintln!("skipping: userfaultfd unavailable");
            return;
        };
        let res = Reservation::new(1 << 20, Protection::ReadWrite).unwrap();
        let base = res.base().as_ptr() as usize;
        let u = Arc::new(u);
        u.register_missing(base, res.len()).unwrap();
        let handler = PollHandler::spawn(Arc::clone(&u));
        // Touch a few pages: each blocks until the poll thread populates it.
        for i in 0..4usize {
            // SAFETY: registered range; poll handler resolves the fault.
            let v = unsafe { std::ptr::read_volatile((base + i * 4096) as *const u8) };
            assert_eq!(v, 0);
        }
        let handled = handler.stop();
        assert!(handled >= 1, "poll handler should have serviced faults");
        u.unregister(base, res.len()).unwrap();
    }

    #[test]
    fn watchdog_rescues_thread_blocked_on_dead_handler() {
        let Ok(u) = Uffd::new_poll() else {
            eprintln!("skipping: userfaultfd unavailable");
            return;
        };
        let res = Reservation::new(1 << 20, Protection::ReadWrite).unwrap();
        let base = res.base().as_ptr() as usize;
        let len = res.len();
        let u = Arc::new(u);
        u.register_missing(base, len).unwrap();
        // No handler thread at all: a dead heartbeat is the worst-case
        // stall. The toucher below blocks in the kernel until someone
        // resolves its fault — which must end up being the watchdog's
        // eager conversion (UFFDIO_WAKE alone just re-faults).
        let heartbeat = Heartbeat::new();
        let dog = Watchdog::spawn(
            heartbeat,
            Arc::clone(&u),
            base,
            len,
            WatchdogConfig {
                poll_interval: Duration::from_millis(10),
                stall_after: Duration::from_millis(40),
                max_wakes: 2,
                wake_backoff: Duration::from_millis(5),
            },
        );
        let toucher = std::thread::spawn(move || {
            // SAFETY: registered range; blocks until populated.
            unsafe { std::ptr::read_volatile(base as *const u8) }
        });
        let t0 = std::time::Instant::now();
        while !toucher.is_finished() {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "watchdog failed to unblock the stalled toucher"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(toucher.join().unwrap(), 0);
        let report = dog.stop();
        assert!(report.stalls >= 1, "stall must be detected: {report:?}");
        assert!(report.wakes >= 1, "bounded wake recovery must run first");
        assert!(
            report.eager_conversions >= 1,
            "last resort must fire: {report:?}"
        );
        u.unregister(base, len).unwrap();
    }

    #[test]
    fn watchdog_stays_quiet_while_heartbeat_advances() {
        let Ok(u) = Uffd::new_poll() else {
            eprintln!("skipping: userfaultfd unavailable");
            return;
        };
        let res = Reservation::new(1 << 20, Protection::ReadWrite).unwrap();
        let base = res.base().as_ptr() as usize;
        let u = Arc::new(u);
        u.register_missing(base, res.len()).unwrap();
        let handler = PollHandler::spawn(Arc::clone(&u));
        let dog = Watchdog::spawn(
            handler.heartbeat(),
            Arc::clone(&u),
            base,
            res.len(),
            WatchdogConfig {
                poll_interval: Duration::from_millis(20),
                // Must comfortably exceed the handler's idle beat period
                // (one beat per 50 ms poll timeout) or an *idle* handler
                // reads as stalled — with margin for scheduler delay when
                // the whole workspace's test binaries run in parallel.
                stall_after: Duration::from_millis(1000),
                ..WatchdogConfig::default()
            },
        );
        // Healthy operation: faults are serviced, heartbeat advances.
        for i in 0..4usize {
            // SAFETY: registered range; poll handler resolves the fault.
            let v = unsafe { std::ptr::read_volatile((base + i * 4096) as *const u8) };
            assert_eq!(v, 0);
        }
        std::thread::sleep(Duration::from_millis(500));
        let report = dog.stop();
        assert_eq!(report, WatchdogReport::default(), "no false positives");
        let _ = handler.stop();
        u.unregister(base, res.len()).unwrap();
    }
}
