//! The engine-neutral execution API: every runtime in this reproduction
//! (interpreter, JIT profiles) implements these traits, so the benchmark
//! harness can drive them uniformly — like the paper's C++ harness drives
//! WAVM/Wasmtime/Wasm3/V8 through their C APIs.

use crate::memory::LinearMemory;
use crate::strategy::MemoryConfig;
use crate::trap::Trap;
use lb_wasm::{Module, ValidateError, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Errors loading or instantiating a module.
#[derive(Debug)]
pub enum LoadError {
    /// The module failed validation.
    Validate(ValidateError),
    /// The module uses a construct this engine does not support.
    Unsupported(String),
    /// An imported function was not provided by the linker.
    MissingImport(String, String),
    /// Code generation failed.
    Compile(String),
    /// Linear memory could not be created.
    Memory(crate::memory::MemoryError),
    /// Instantiation trapped (start function or segment initialization).
    Start(Trap),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Validate(e) => write!(f, "validation failed: {e}"),
            LoadError::Unsupported(m) => write!(f, "unsupported: {m}"),
            LoadError::MissingImport(m, n) => write!(f, "missing import {m}.{n}"),
            LoadError::Compile(m) => write!(f, "compilation failed: {m}"),
            LoadError::Memory(e) => write!(f, "memory: {e}"),
            LoadError::Start(t) => write!(f, "instantiation trapped: {t}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<ValidateError> for LoadError {
    fn from(e: ValidateError) -> LoadError {
        LoadError::Validate(e)
    }
}

impl From<crate::memory::MemoryError> for LoadError {
    fn from(e: crate::memory::MemoryError) -> LoadError {
        LoadError::Memory(e)
    }
}

/// Context passed to host functions.
pub struct HostCtx<'a> {
    /// The instance's linear memory, if it has one.
    pub memory: Option<&'a LinearMemory>,
}

/// A host function callable from wasm.
pub type HostFn =
    Arc<dyn Fn(&mut HostCtx<'_>, &[Value]) -> Result<Option<Value>, Trap> + Send + Sync>;

/// Resolves module imports to host functions.
#[derive(Clone, Default)]
pub struct Linker {
    funcs: HashMap<(String, String), HostFn>,
}

impl Linker {
    /// An empty linker.
    pub fn new() -> Linker {
        Linker::default()
    }

    /// Provide a host function for `module.name`.
    pub fn func(
        &mut self,
        module: &str,
        name: &str,
        f: impl Fn(&mut HostCtx<'_>, &[Value]) -> Result<Option<Value>, Trap> + Send + Sync + 'static,
    ) -> &mut Self {
        self.funcs
            .insert((module.to_string(), name.to_string()), Arc::new(f));
        self
    }

    /// Look up a host function.
    pub fn resolve(&self, module: &str, name: &str) -> Option<HostFn> {
        self.funcs
            .get(&(module.to_string(), name.to_string()))
            .cloned()
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// Whether no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }
}

impl fmt::Debug for Linker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Linker")
            .field("funcs", &self.funcs.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// A wasm execution engine (one of the paper's "runtimes").
pub trait Engine: Send + Sync {
    /// Engine name, as shown in reports (e.g. `"interp"`, `"wavm"`).
    fn name(&self) -> &str;

    /// Validate and prepare a module for instantiation (compiling it, for
    /// JIT engines — the paper's AOT engines compile here, its tiered
    /// engine compiles a baseline here and re-optimizes in the background).
    ///
    /// # Errors
    /// Validation or compilation failures.
    fn load(&self, module: &Module) -> Result<Arc<dyn LoadedModule>, LoadError>;
}

/// A loaded (validated/compiled) module, shareable across threads; the
/// harness loads once and instantiates per worker thread, like the paper's
/// isolate-per-thread setup.
pub trait LoadedModule: Send + Sync {
    /// Create a fresh instance with its own linear memory.
    ///
    /// # Errors
    /// Memory setup, missing imports, or a trapping start function.
    fn instantiate(
        &self,
        config: &MemoryConfig,
        linker: &Linker,
    ) -> Result<Box<dyn Instance>, LoadError>;
}

/// A live wasm instance.
pub trait Instance: Send {
    /// Invoke an exported function.
    ///
    /// # Errors
    /// Any wasm trap, including hardware-delivered bounds traps.
    fn invoke(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, Trap>;

    /// The instance's linear memory, if the module declares one.
    fn memory(&self) -> Option<&LinearMemory>;
}

/// Shared, engine-neutral instance state: memory, globals (as raw bits),
/// the function table, and resolved host imports. Both the interpreter and
/// the JIT build on this, so instantiation semantics (limits resolution,
/// segment initialization) are identical across engines.
pub struct InstanceParts {
    /// The instance's linear memory, if the module declares one.
    pub memory: Option<LinearMemory>,
    /// Global values by index, stored as raw 64-bit patterns.
    pub globals: Vec<u64>,
    /// Function table: `Some(function index)` for initialized slots.
    pub table: Vec<Option<u32>>,
    /// Resolved host functions, indexed like the module's imports.
    pub host: Vec<HostFn>,
}

/// Build the shared instance state for `module`.
///
/// Memory limits resolve as: initial = the module's declared minimum;
/// maximum = the smaller of the module's declared maximum (if any) and
/// `config.max_pages`. `config.initial_pages` acts as a floor so harnesses
/// can pre-grow memories.
///
/// # Errors
/// Missing imports, memory creation failures, or out-of-range segments.
pub fn build_instance_parts(
    module: &Module,
    config: &MemoryConfig,
    linker: &Linker,
) -> Result<InstanceParts, LoadError> {
    let memory = match module.memory {
        Some(mt) => {
            let initial = mt.limits.min.max(config.initial_pages);
            let max = mt
                .limits
                .max
                .unwrap_or(config.max_pages)
                .min(config.max_pages)
                .max(initial);
            let mc = MemoryConfig {
                strategy: config.strategy,
                initial_pages: initial,
                max_pages: max,
                reserve_bytes: config.reserve_bytes,
            };
            Some(LinearMemory::new(&mc)?)
        }
        None => None,
    };

    let globals: Vec<u64> = module.globals.iter().map(|g| g.init.to_bits()).collect();

    let mut table: Vec<Option<u32>> =
        vec![None; module.table.map(|t| t.limits.min as usize).unwrap_or(0)];
    for seg in &module.elems {
        for (i, &f) in seg.funcs.iter().enumerate() {
            table[seg.offset as usize + i] = Some(f);
        }
    }

    let mut host = Vec::with_capacity(module.imports.len());
    for imp in &module.imports {
        let f = linker
            .resolve(&imp.module, &imp.name)
            .ok_or_else(|| LoadError::MissingImport(imp.module.clone(), imp.name.clone()))?;
        host.push(f);
    }

    if let Some(mem) = &memory {
        for seg in &module.data {
            mem.write_bytes(seg.offset, &seg.bytes)
                .map_err(LoadError::Start)?;
        }
    }

    Ok(InstanceParts {
        memory,
        globals,
        table,
        host,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linker_resolves() {
        let mut l = Linker::new();
        assert!(l.is_empty());
        l.func("env", "f", |_, _| Ok(None));
        assert_eq!(l.len(), 1);
        assert!(l.resolve("env", "f").is_some());
        assert!(l.resolve("env", "g").is_none());
        let mut ctx = HostCtx { memory: None };
        let f = l.resolve("env", "f").unwrap();
        assert_eq!(f(&mut ctx, &[]).unwrap(), None);
    }

    #[test]
    fn load_error_display() {
        let e = LoadError::MissingImport("env".into(), "x".into());
        assert!(e.to_string().contains("env.x"));
    }
}
