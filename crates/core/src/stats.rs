//! Global counters for the virtual-memory syscalls issued by the memory
//! subsystem. The benchmark harness snapshots these to attribute kernel
//! work to bounds-checking strategies (paper §4.1.1/§4.2.1).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of memory-management activity.
#[derive(Debug, Default)]
pub struct VmCounters {
    mmap: AtomicU64,
    munmap: AtomicU64,
    mprotect: AtomicU64,
    uffd_register: AtomicU64,
    uffd_zeropage: AtomicU64,
    grows: AtomicU64,
    signal_traps: AtomicU64,
}

static COUNTERS: VmCounters = VmCounters {
    mmap: AtomicU64::new(0),
    munmap: AtomicU64::new(0),
    mprotect: AtomicU64::new(0),
    uffd_register: AtomicU64::new(0),
    uffd_zeropage: AtomicU64::new(0),
    grows: AtomicU64::new(0),
    signal_traps: AtomicU64::new(0),
};

/// A point-in-time snapshot of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VmSnapshot {
    /// `mmap(2)` calls (reservation creation).
    pub mmap: u64,
    /// `munmap(2)` calls (reservation teardown).
    pub munmap: u64,
    /// `mprotect(2)` calls (mprotect-strategy grows).
    pub mprotect: u64,
    /// `UFFDIO_REGISTER` ioctls.
    pub uffd_register: u64,
    /// `UFFDIO_ZEROPAGE` ioctls resolved in the SIGBUS handler.
    pub uffd_zeropage: u64,
    /// `memory.grow` operations across all strategies.
    pub grows: u64,
    /// Wasm traps delivered through the signal path.
    pub signal_traps: u64,
}

impl VmSnapshot {
    /// Difference `self - earlier`, saturating at zero.
    pub fn delta(&self, earlier: &VmSnapshot) -> VmSnapshot {
        VmSnapshot {
            mmap: self.mmap.saturating_sub(earlier.mmap),
            munmap: self.munmap.saturating_sub(earlier.munmap),
            mprotect: self.mprotect.saturating_sub(earlier.mprotect),
            uffd_register: self.uffd_register.saturating_sub(earlier.uffd_register),
            uffd_zeropage: self.uffd_zeropage.saturating_sub(earlier.uffd_zeropage),
            grows: self.grows.saturating_sub(earlier.grows),
            signal_traps: self.signal_traps.saturating_sub(earlier.signal_traps),
        }
    }
}

/// Snapshot the global counters.
pub fn snapshot() -> VmSnapshot {
    VmSnapshot {
        mmap: COUNTERS.mmap.load(Ordering::Relaxed),
        munmap: COUNTERS.munmap.load(Ordering::Relaxed),
        mprotect: COUNTERS.mprotect.load(Ordering::Relaxed),
        uffd_register: COUNTERS.uffd_register.load(Ordering::Relaxed),
        uffd_zeropage: COUNTERS.uffd_zeropage.load(Ordering::Relaxed),
        grows: COUNTERS.grows.load(Ordering::Relaxed),
        signal_traps: COUNTERS.signal_traps.load(Ordering::Relaxed),
    }
}

pub(crate) fn count_mmap() {
    COUNTERS.mmap.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn count_munmap() {
    COUNTERS.munmap.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn count_mprotect() {
    COUNTERS.mprotect.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn count_uffd_register() {
    COUNTERS.uffd_register.fetch_add(1, Ordering::Relaxed);
}

/// Called from the SIGBUS handler: must stay async-signal-safe (it is —
/// a relaxed atomic increment).
pub(crate) fn count_uffd_zeropage() {
    COUNTERS.uffd_zeropage.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn count_grow() {
    COUNTERS.grows.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn count_signal_trap() {
    COUNTERS.signal_traps.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_subtract() {
        let before = snapshot();
        count_mprotect();
        count_mprotect();
        count_grow();
        let after = snapshot();
        let d = after.delta(&before);
        assert!(d.mprotect >= 2);
        assert!(d.grows >= 1);
    }
}
