//! VM syscall counters, now a shim over the [`lb_telemetry`] registry.
//!
//! The original `VmCounters` static lives on conceptually: the same seven
//! event streams are counted, but the storage is `lb-telemetry`'s named
//! counter table, so the harness's JSONL export and the legacy
//! [`VmSnapshot`] API observe the very same atomics. `memory.grow` is
//! additionally counted per bounds strategy (`mem.grow.<strategy>`), and
//! two latency histograms (trap delivery, uffd fault service) are owned
//! here so the signal path can record into pre-registered slots.
//!
//! # Ordering audit (`Relaxed`)
//!
//! Every increment and load here is `Ordering::Relaxed`, inherited from
//! the telemetry counter table. That is correct for these counters: each
//! is an independent monotonic event count, and no reader infers
//! cross-counter invariants from a single snapshot. [`snapshot`] is
//! documented as *not* an atomic cut — e.g. a concurrent uffd fault may
//! appear in `uffd_zeropage` but not yet in `signal_traps`. The harness
//! only computes before/after deltas around runs whose worker threads it
//! has joined, and a `join` provides the happens-before edge that makes
//! those deltas exact. Anything stronger (SeqCst) would buy nothing and
//! put fences on the SIGBUS fast path.

use crate::strategy::BoundsStrategy;
use lb_telemetry::{counter, histogram, Counter, Histogram};
use std::sync::OnceLock;

struct VmInstruments {
    mmap: Counter,
    munmap: Counter,
    mprotect: Counter,
    uffd_register: Counter,
    uffd_zeropage: Counter,
    grows: Counter,
    signal_traps: Counter,
    pool_hit: Counter,
    pool_miss: Counter,
    uffd_batch_pages: Counter,
    uffd_prefetch_streak: Counter,
    grow_by_strategy: [Counter; 5],
    trap_latency: Histogram,
    uffd_service: Histogram,
    pool_reset: Histogram,
}

static INSTRUMENTS: OnceLock<VmInstruments> = OnceLock::new();

/// Registration takes a mutex, so the first call must happen in normal
/// context. `install_handlers` and every `LinearMemory`/`Reservation`
/// constructor call this before any signal handler can fire; after that,
/// `vm()` is a single atomic load and is async-signal-safe.
fn vm() -> &'static VmInstruments {
    INSTRUMENTS.get_or_init(|| VmInstruments {
        mmap: counter("mem.mmap"),
        munmap: counter("mem.munmap"),
        mprotect: counter("mem.mprotect"),
        uffd_register: counter("uffd.register"),
        uffd_zeropage: counter("uffd.zeropage"),
        grows: counter("mem.grow"),
        signal_traps: counter("trap.signal"),
        pool_hit: counter("pool.hit"),
        pool_miss: counter("pool.miss"),
        uffd_batch_pages: counter("uffd.batch_pages"),
        uffd_prefetch_streak: counter("uffd.prefetch_streak"),
        grow_by_strategy: [
            counter("mem.grow.none"),
            counter("mem.grow.clamp"),
            counter("mem.grow.trap"),
            counter("mem.grow.mprotect"),
            counter("mem.grow.uffd"),
        ],
        trap_latency: histogram("trap.latency_ns"),
        uffd_service: histogram("uffd.fault_service_ns"),
        pool_reset: histogram("pool.reset_us"),
    })
}

/// Force instrument registration from normal context (called by
/// `install_handlers` so signal handlers only ever see the initialized
/// table).
pub(crate) fn force_init() {
    let _ = vm();
}

/// A point-in-time snapshot of the VM counters.
///
/// Not an atomic cut across fields (see the module docs); exact for
/// before/after deltas separated by thread joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VmSnapshot {
    /// `mmap(2)` calls (reservation creation).
    pub mmap: u64,
    /// `munmap(2)` calls (reservation teardown).
    pub munmap: u64,
    /// `mprotect(2)` calls (mprotect-strategy grows).
    pub mprotect: u64,
    /// `UFFDIO_REGISTER` ioctls.
    pub uffd_register: u64,
    /// `UFFDIO_ZEROPAGE` ioctls resolved in the SIGBUS handler.
    pub uffd_zeropage: u64,
    /// Successful `memory.grow` operations across all strategies.
    pub grows: u64,
    /// Wasm traps delivered through the signal path.
    pub signal_traps: u64,
    /// Pooled-memory acquisitions served from the free-list.
    pub pool_hits: u64,
    /// Pooled-memory acquisitions that fell through to a fresh `mmap`.
    pub pool_misses: u64,
}

impl VmSnapshot {
    /// Difference `self - earlier`, saturating at zero.
    pub fn delta(&self, earlier: &VmSnapshot) -> VmSnapshot {
        VmSnapshot {
            mmap: self.mmap.saturating_sub(earlier.mmap),
            munmap: self.munmap.saturating_sub(earlier.munmap),
            mprotect: self.mprotect.saturating_sub(earlier.mprotect),
            uffd_register: self.uffd_register.saturating_sub(earlier.uffd_register),
            uffd_zeropage: self.uffd_zeropage.saturating_sub(earlier.uffd_zeropage),
            grows: self.grows.saturating_sub(earlier.grows),
            signal_traps: self.signal_traps.saturating_sub(earlier.signal_traps),
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            pool_misses: self.pool_misses.saturating_sub(earlier.pool_misses),
        }
    }

    /// Serialize as one JSON object (serde-free; round-trippable by
    /// `lb_telemetry::json::parse`).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"mmap\":{},\"munmap\":{},\"mprotect\":{},",
                "\"uffd_register\":{},\"uffd_zeropage\":{},",
                "\"grows\":{},\"signal_traps\":{},",
                "\"pool_hits\":{},\"pool_misses\":{}}}"
            ),
            self.mmap,
            self.munmap,
            self.mprotect,
            self.uffd_register,
            self.uffd_zeropage,
            self.grows,
            self.signal_traps,
            self.pool_hits,
            self.pool_misses
        )
    }
}

/// Snapshot the global VM counters.
pub fn snapshot() -> VmSnapshot {
    let v = vm();
    VmSnapshot {
        mmap: v.mmap.get(),
        munmap: v.munmap.get(),
        mprotect: v.mprotect.get(),
        uffd_register: v.uffd_register.get(),
        uffd_zeropage: v.uffd_zeropage.get(),
        grows: v.grows.get(),
        signal_traps: v.signal_traps.get(),
        pool_hits: v.pool_hit.get(),
        pool_misses: v.pool_miss.get(),
    }
}

pub(crate) fn count_mmap() {
    vm().mmap.inc();
}

pub(crate) fn count_munmap() {
    vm().munmap.inc();
}

pub(crate) fn count_mprotect() {
    vm().mprotect.inc();
}

pub(crate) fn count_uffd_register() {
    vm().uffd_register.inc();
}

/// Called from the SIGBUS handler: must stay async-signal-safe (it is —
/// a relaxed atomic increment on a pre-registered slot; `install_handlers`
/// forces registration before the handler can run).
pub(crate) fn count_uffd_zeropage() {
    vm().uffd_zeropage.inc();
}

/// Count one *successful* `memory.grow`, attributed to its strategy.
/// Callers must invoke this exactly once per logical grow, after the
/// grow can no longer fail — never on the failure path, and never twice
/// if a strategy's implementation falls back internally.
pub(crate) fn count_grow(strategy: BoundsStrategy) {
    let v = vm();
    v.grows.inc();
    let idx = match strategy {
        BoundsStrategy::None => 0,
        BoundsStrategy::Clamp => 1,
        BoundsStrategy::Trap => 2,
        BoundsStrategy::Mprotect => 3,
        BoundsStrategy::Uffd => 4,
    };
    v.grow_by_strategy[idx].inc();
}

pub(crate) fn count_signal_trap() {
    vm().signal_traps.inc();
}

/// Record trap-entry→resume latency (signal delivery through
/// `lb_trap_resume` back to `catch_traps`).
pub(crate) fn record_trap_latency(ns: u64) {
    vm().trap_latency.record(ns);
}

/// Record uffd fault service time (SIGBUS entry to zeropage completion).
/// Async-signal-safe after `force_init`.
pub(crate) fn record_uffd_service(ns: u64) {
    vm().uffd_service.record(ns);
}

/// Count one pooled-memory acquisition served from the free-list.
pub(crate) fn count_pool_hit() {
    vm().pool_hit.inc();
}

/// Count one pooled-memory acquisition that fell through to a fresh mmap
/// (empty free-list, size/strategy mismatch, or a failed reset).
pub(crate) fn count_pool_miss() {
    vm().pool_miss.inc();
}

/// Record one pool reset (drop → reusable) in microseconds.
pub(crate) fn record_pool_reset_us(us: u64) {
    vm().pool_reset.record(us);
}

/// Count pages zero-filled by one batched fault service. Called from the
/// SIGBUS handler: a relaxed atomic add on a pre-registered slot.
pub(crate) fn count_uffd_batch_pages(pages: u64) {
    vm().uffd_batch_pages.add(pages);
}

/// Count one streak-extended (prefetching) fault service. Called from the
/// SIGBUS handler: a relaxed atomic increment on a pre-registered slot.
pub(crate) fn count_uffd_prefetch_streak() {
    vm().uffd_prefetch_streak.inc();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_subtract() {
        let before = snapshot();
        count_mprotect();
        count_mprotect();
        count_grow(BoundsStrategy::Mprotect);
        let after = snapshot();
        let d = after.delta(&before);
        assert!(d.mprotect >= 2);
        assert!(d.grows >= 1);
    }

    #[test]
    fn grow_is_strategy_labelled() {
        let before = lb_telemetry::snapshot();
        count_grow(BoundsStrategy::Uffd);
        count_grow(BoundsStrategy::Uffd);
        count_grow(BoundsStrategy::Clamp);
        let d = lb_telemetry::snapshot().delta_since(&before);
        assert_eq!(d.counter("mem.grow.uffd"), 2);
        assert_eq!(d.counter("mem.grow.clamp"), 1);
        assert_eq!(d.counter("mem.grow"), 3);
    }

    #[test]
    fn snapshot_json_shape_is_exact() {
        let s = VmSnapshot {
            mmap: 1,
            munmap: 2,
            mprotect: 3,
            uffd_register: 4,
            uffd_zeropage: 5,
            grows: 6,
            signal_traps: 7,
            pool_hits: 8,
            pool_misses: 9,
        };
        assert_eq!(
            s.to_json(),
            "{\"mmap\":1,\"munmap\":2,\"mprotect\":3,\"uffd_register\":4,\
             \"uffd_zeropage\":5,\"grows\":6,\"signal_traps\":7,\
             \"pool_hits\":8,\"pool_misses\":9}"
        );
        // Round-trippable by our own parser.
        let v = lb_telemetry::json::parse(&s.to_json()).unwrap();
        assert_eq!(v.get("mprotect").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("signal_traps").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn delta_json_roundtrip() {
        let a = VmSnapshot {
            mmap: 10,
            grows: 4,
            ..VmSnapshot::default()
        };
        let b = VmSnapshot {
            mmap: 3,
            grows: 1,
            ..VmSnapshot::default()
        };
        let d = a.delta(&b);
        let v = lb_telemetry::json::parse(&d.to_json()).unwrap();
        assert_eq!(v.get("mmap").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("grows").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("munmap").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn vm_counters_share_telemetry_storage() {
        let before = lb_telemetry::snapshot();
        count_mmap();
        let after = lb_telemetry::snapshot();
        assert_eq!(after.delta_since(&before).counter("mem.mmap"), 1);
    }
}
