//! Wasm trap representation, shared by all engines and the signal machinery.

use std::fmt;

/// Why a wasm computation trapped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrapKind {
    /// A linear-memory access was outside the current bounds.
    OutOfBounds,
    /// The `unreachable` instruction executed.
    Unreachable,
    /// Integer division or remainder by zero.
    IntegerDivByZero,
    /// `INT_MIN / -1` style signed overflow.
    IntegerOverflow,
    /// A float-to-int truncation had no representable result.
    InvalidConversion,
    /// `call_indirect` signature mismatch.
    IndirectCallTypeMismatch,
    /// `call_indirect` through a null/uninitialized table slot.
    UninitializedElement,
    /// `call_indirect` index beyond the table.
    TableOutOfBounds,
    /// The wasm call stack exceeded its limit.
    StackOverflow,
    /// Execution was interrupted (e.g. by the engine's pauser) and aborted.
    Interrupted,
    /// A host function reported an error.
    Host(String),
}

impl TrapKind {
    /// Numeric code used to carry the trap through the signal path
    /// (written into the ud2 payload by the JIT, and into `RAX` by the
    /// signal handler when resuming the recovery frame).
    pub fn code(&self) -> u32 {
        match self {
            TrapKind::OutOfBounds => 1,
            TrapKind::Unreachable => 2,
            TrapKind::IntegerDivByZero => 3,
            TrapKind::IntegerOverflow => 4,
            TrapKind::InvalidConversion => 5,
            TrapKind::IndirectCallTypeMismatch => 6,
            TrapKind::UninitializedElement => 7,
            TrapKind::TableOutOfBounds => 8,
            TrapKind::StackOverflow => 9,
            TrapKind::Interrupted => 10,
            TrapKind::Host(_) => 11,
        }
    }

    /// Inverse of [`TrapKind::code`].
    pub fn from_code(code: u32) -> TrapKind {
        match code {
            1 => TrapKind::OutOfBounds,
            2 => TrapKind::Unreachable,
            3 => TrapKind::IntegerDivByZero,
            4 => TrapKind::IntegerOverflow,
            5 => TrapKind::InvalidConversion,
            6 => TrapKind::IndirectCallTypeMismatch,
            7 => TrapKind::UninitializedElement,
            8 => TrapKind::TableOutOfBounds,
            9 => TrapKind::StackOverflow,
            10 => TrapKind::Interrupted,
            _ => TrapKind::Host(format!("unknown trap code {code}")),
        }
    }
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapKind::OutOfBounds => write!(f, "out of bounds memory access"),
            TrapKind::Unreachable => write!(f, "unreachable executed"),
            TrapKind::IntegerDivByZero => write!(f, "integer divide by zero"),
            TrapKind::IntegerOverflow => write!(f, "integer overflow"),
            TrapKind::InvalidConversion => write!(f, "invalid conversion to integer"),
            TrapKind::IndirectCallTypeMismatch => write!(f, "indirect call type mismatch"),
            TrapKind::UninitializedElement => write!(f, "uninitialized table element"),
            TrapKind::TableOutOfBounds => write!(f, "undefined table element"),
            TrapKind::StackOverflow => write!(f, "call stack exhausted"),
            TrapKind::Interrupted => write!(f, "execution interrupted"),
            TrapKind::Host(msg) => write!(f, "host error: {msg}"),
        }
    }
}

/// A wasm trap, optionally annotated with the faulting address (for
/// guard-page out-of-bounds traps caught via SIGSEGV/SIGBUS).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trap {
    kind: TrapKind,
    fault_addr: Option<usize>,
}

impl Trap {
    /// A trap of the given kind.
    pub fn new(kind: TrapKind) -> Trap {
        Trap {
            kind,
            fault_addr: None,
        }
    }

    /// An out-of-bounds trap recording the faulting virtual address.
    pub fn oob_at(addr: usize) -> Trap {
        Trap {
            kind: TrapKind::OutOfBounds,
            fault_addr: Some(addr),
        }
    }

    /// Shorthand for a plain out-of-bounds trap.
    pub fn oob() -> Trap {
        Trap::new(TrapKind::OutOfBounds)
    }

    /// The trap kind.
    pub fn kind(&self) -> &TrapKind {
        &self.kind
    }

    /// The faulting address, for hardware-caught OOB traps.
    pub fn fault_addr(&self) -> Option<usize> {
        self.fault_addr
    }

    /// Reconstruct a trap from the signal path's numeric code.
    pub fn from_signal(code: u32, fault_addr: usize) -> Trap {
        Trap {
            kind: TrapKind::from_code(code),
            fault_addr: if fault_addr != 0 {
                Some(fault_addr)
            } else {
                None
            },
        }
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wasm trap: {}", self.kind)?;
        if let Some(a) = self.fault_addr {
            write!(f, " (fault address 0x{a:x})")?;
        }
        Ok(())
    }
}

impl std::error::Error for Trap {}

impl From<TrapKind> for Trap {
    fn from(kind: TrapKind) -> Trap {
        Trap::new(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        let kinds = [
            TrapKind::OutOfBounds,
            TrapKind::Unreachable,
            TrapKind::IntegerDivByZero,
            TrapKind::IntegerOverflow,
            TrapKind::InvalidConversion,
            TrapKind::IndirectCallTypeMismatch,
            TrapKind::UninitializedElement,
            TrapKind::TableOutOfBounds,
            TrapKind::StackOverflow,
            TrapKind::Interrupted,
        ];
        for k in kinds {
            assert_eq!(TrapKind::from_code(k.code()), k);
        }
    }

    #[test]
    fn display_is_informative() {
        let t = Trap::oob_at(0xdeadbeef);
        let s = t.to_string();
        assert!(s.contains("out of bounds"));
        assert!(s.contains("0xdeadbeef"));
    }

    #[test]
    fn signal_reconstruction() {
        let t = Trap::from_signal(1, 0x1000);
        assert_eq!(*t.kind(), TrapKind::OutOfBounds);
        assert_eq!(t.fault_addr(), Some(0x1000));
        let t2 = Trap::from_signal(2, 0);
        assert_eq!(t2.fault_addr(), None);
    }
}
