//! Bounds-checked wasm linear memory with pluggable strategies.
//!
//! One [`LinearMemory`] backs one wasm instance. All five strategies share
//! the same structure — a large virtual reservation plus an atomic
//! committed-size — and differ in how growth and out-of-bounds detection
//! work, exactly as configured in the paper's runtimes (§3.1):
//!
//! | strategy  | reservation     | `memory.grow`           | OOB detection            |
//! |-----------|-----------------|--------------------------|--------------------------|
//! | none      | RW (lazy)       | atomic bump              | none (unsafe baseline)   |
//! | clamp     | RW (lazy)       | atomic bump              | address clamped inline   |
//! | trap      | RW (lazy)       | atomic bump              | inline check, wasm trap  |
//! | mprotect  | PROT_NONE       | `mprotect(2)` per grow   | SIGSEGV on guard pages   |
//! | uffd      | RW + registered | atomic bump              | SIGBUS beyond committed  |

use crate::pool::{self, ArenaParts};
use crate::region::{round_up_to_page, Protection, Reservation};
use crate::registry::{ArenaDesc, ARENAS};
use crate::stats;
use crate::strategy::{BoundsStrategy, MemoryConfig};
use crate::trap::Trap;
use crate::uffd::Uffd;
use std::fmt;
use std::io;
use std::mem::ManuallyDrop;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Size of one wasm page (64 KiB).
pub const WASM_PAGE: usize = 65536;

/// Errors creating or growing a [`LinearMemory`].
#[derive(Debug)]
pub enum MemoryError {
    /// The virtual reservation could not be created.
    Reserve(io::Error),
    /// An `mprotect` call failed.
    Protect(io::Error),
    /// userfaultfd setup failed (fd creation, handshake, or registration).
    Uffd(io::Error),
    /// The configuration is inconsistent (e.g. initial > max pages).
    BadConfig(String),
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::Reserve(e) => write!(f, "memory reservation failed: {e}"),
            MemoryError::Protect(e) => write!(f, "mprotect failed: {e}"),
            MemoryError::Uffd(e) => write!(f, "userfaultfd setup failed: {e}"),
            MemoryError::BadConfig(m) => write!(f, "bad memory config: {m}"),
        }
    }
}

impl std::error::Error for MemoryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MemoryError::Reserve(e) | MemoryError::Protect(e) | MemoryError::Uffd(e) => Some(e),
            MemoryError::BadConfig(_) => None,
        }
    }
}

mod private {
    pub trait Sealed {}
}

/// Plain-old-data types loadable/storable in linear memory.
///
/// This trait is sealed; it is implemented exactly for the integer and
/// float widths wasm memory instructions use.
pub trait Pod: Copy + private::Sealed {}

macro_rules! impl_pod {
    ($($t:ty),*) => {$(
        impl private::Sealed for $t {}
        impl Pod for $t {}
    )*};
}
impl_pod!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// One wasm instance's linear memory.
///
/// The memory registers itself in the global arena registry on creation so
/// the signal handler can classify faults. On drop, its OS-facing parts
/// (reservation, registration, uffd fd) go back to the instance pool when
/// pooling is enabled — see [`crate::pool`] — and are fully torn down
/// otherwise (waiting out concurrent signal-context readers via hazard
/// pointers).
#[derive(Debug)]
pub struct LinearMemory {
    parts: ManuallyDrop<ArenaParts>,
    strategy: BoundsStrategy,
    requested: BoundsStrategy,
    max_pages: u32,
    from_pool: bool,
}

/// Next strategy to try when `strategy` failed to initialize with `err`.
///
/// This is the degradation chain the failure model documents: `uffd` setup
/// failures (no kernel support, container seccomp/EPERM, fd exhaustion)
/// degrade to `mprotect`, whose own initial-protect failure degrades to
/// `trap` (software checks need no syscalls beyond the reservation).
/// Reservation failures and bad configs never fall back: every strategy
/// needs the same mmap, so retrying cannot help.
fn fallback_next(strategy: BoundsStrategy, err: &MemoryError) -> Option<BoundsStrategy> {
    match (strategy, err) {
        (BoundsStrategy::Uffd, MemoryError::Uffd(_)) => Some(BoundsStrategy::Mprotect),
        (BoundsStrategy::Mprotect, MemoryError::Protect(_)) => Some(BoundsStrategy::Trap),
        _ => None,
    }
}

fn fallback_edge_counter(from: BoundsStrategy, to: BoundsStrategy) -> &'static str {
    match (from, to) {
        (BoundsStrategy::Uffd, BoundsStrategy::Mprotect) => {
            "core.strategy.fallback.uffd_to_mprotect"
        }
        (BoundsStrategy::Mprotect, BoundsStrategy::Trap) => {
            "core.strategy.fallback.mprotect_to_trap"
        }
        _ => "core.strategy.fallback.other",
    }
}

// SAFETY: the raw desc pointer stays valid until Drop unregisters it; all
// mutable state behind it is atomic.
unsafe impl Send for LinearMemory {}
unsafe impl Sync for LinearMemory {}

impl LinearMemory {
    /// Create a memory per `config`, degrading along the strategy fallback
    /// chain (`uffd → mprotect → trap`) when a guard-based backend cannot
    /// initialize on this host.
    ///
    /// The effective strategy is reported by [`LinearMemory::strategy`];
    /// the originally requested one by [`LinearMemory::requested_strategy`].
    /// Each degradation increments the `core.strategy.fallback` telemetry
    /// counter (plus a per-edge counter naming the transition).
    ///
    /// # Errors
    /// See [`MemoryError`]. Errors are returned only when the end of the
    /// fallback chain is reached (or the failure is strategy-independent,
    /// like a failed reservation or a bad config). In particular, the
    /// `uffd` strategy requires a kernel with `UFFD_FEATURE_SIGBUS` and
    /// suitable privileges; probe with
    /// [`crate::uffd::sigbus_mode_available`].
    pub fn new(config: &MemoryConfig) -> Result<LinearMemory, MemoryError> {
        if config.initial_pages > config.max_pages {
            return Err(MemoryError::BadConfig(format!(
                "initial pages {} > max pages {}",
                config.initial_pages, config.max_pages
            )));
        }
        let mut strategy = config.strategy;
        loop {
            match Self::try_new(config, strategy) {
                Ok(m) => return Ok(m),
                Err(e) => match fallback_next(strategy, &e) {
                    Some(next) => {
                        lb_telemetry::counter("core.strategy.fallback").inc();
                        lb_telemetry::counter(fallback_edge_counter(strategy, next)).inc();
                        strategy = next;
                    }
                    None => return Err(e),
                },
            }
        }
    }

    /// One attempt at constructing the memory with a fixed `strategy`.
    ///
    /// All partially-acquired resources are RAII-owned (`Reservation`
    /// unmaps, `Uffd` closes its fd), so an error return here leaks
    /// nothing — `chaos_matrix.rs` verifies this by injecting failures in
    /// a loop and watching `/proc/self/{fd,maps}`.
    fn try_new(
        config: &MemoryConfig,
        strategy: BoundsStrategy,
    ) -> Result<LinearMemory, MemoryError> {
        let max_bytes = config.max_pages as usize * WASM_PAGE;
        let reserve = config.reserve_bytes.max(max_bytes).max(WASM_PAGE);
        let reserve = round_up_to_page(reserve);
        let initial_bytes = config.initial_pages as usize * WASM_PAGE;

        // Fast path: reuse parked parts — no mmap, no UFFDIO_REGISTER, at
        // most one delta mprotect, all done inside `acquire`.
        if let Some(parts) = pool::acquire(strategy, reserve, initial_bytes) {
            return Ok(LinearMemory {
                parts: ManuallyDrop::new(parts),
                strategy,
                requested: config.strategy,
                max_pages: (max_bytes.min(reserve) / WASM_PAGE) as u32,
                from_pool: true,
            });
        }

        let initial_prot = match strategy {
            BoundsStrategy::Mprotect => Protection::None,
            _ => Protection::ReadWrite,
        };
        let reservation = Reservation::new(reserve, initial_prot).map_err(MemoryError::Reserve)?;
        if strategy == BoundsStrategy::Mprotect && initial_bytes > 0 {
            if let Some(e) = lb_chaos::inject("core.mprotect.init") {
                return Err(MemoryError::Protect(e));
            }
            reservation
                .protect(0, round_up_to_page(initial_bytes), Protection::ReadWrite)
                .map_err(MemoryError::Protect)?;
        }

        let uffd = if strategy == BoundsStrategy::Uffd {
            let u = Uffd::new_sigbus().map_err(MemoryError::Uffd)?;
            u.register_missing(reservation.base().as_ptr() as usize, reserve)
                .map_err(MemoryError::Uffd)?;
            Some(u)
        } else {
            None
        };

        let desc = Box::new(ArenaDesc::new(
            reservation.base().as_ptr() as usize,
            reserve,
            initial_bytes,
            strategy,
            uffd.as_ref().map(|u| u.raw_fd()).unwrap_or(-1),
        ));
        let (desc_slot, desc) = ARENAS.register(desc);
        // RW high-water: mprotect starts with just the initial window
        // writable; every other strategy maps the whole reservation RW.
        let rw_high = match strategy {
            BoundsStrategy::Mprotect => round_up_to_page(initial_bytes),
            _ => reserve,
        };

        Ok(LinearMemory {
            parts: ManuallyDrop::new(ArenaParts {
                reservation,
                desc_slot,
                desc,
                uffd,
                strategy,
                rw_high: AtomicUsize::new(rw_high),
            }),
            strategy,
            requested: config.strategy,
            max_pages: (max_bytes.min(reserve) / WASM_PAGE) as u32,
            from_pool: false,
        })
    }

    fn desc(&self) -> &ArenaDesc {
        self.parts.desc()
    }

    /// The effective bounds-checking strategy (after any fallback).
    pub fn strategy(&self) -> BoundsStrategy {
        self.strategy
    }

    /// The strategy the configuration asked for, before any fallback.
    pub fn requested_strategy(&self) -> BoundsStrategy {
        self.requested
    }

    /// Whether construction degraded to a different strategy than requested.
    pub fn fell_back(&self) -> bool {
        self.strategy != self.requested
    }

    /// Whether this memory was served from the instance pool rather than
    /// freshly mapped.
    pub fn from_pool(&self) -> bool {
        self.from_pool
    }

    /// Base address of the reservation (for engines generating raw access).
    pub fn base(&self) -> *mut u8 {
        self.parts.reservation.base().as_ptr()
    }

    /// Currently accessible bytes.
    pub fn committed(&self) -> usize {
        self.desc().committed.load(Ordering::Acquire)
    }

    /// Raw pointer to the committed-size atomic, for JIT-generated code
    /// that reloads the bound on every software-checked access.
    pub fn committed_ptr(&self) -> *const usize {
        self.desc().committed.as_ptr() as *const usize
    }

    /// Current size in wasm pages.
    pub fn size_pages(&self) -> u32 {
        (self.committed() / WASM_PAGE) as u32
    }

    /// Maximum size in wasm pages.
    pub fn max_pages(&self) -> u32 {
        self.max_pages
    }

    /// Virtual reservation size in bytes.
    pub fn reserved_bytes(&self) -> usize {
        self.parts.reservation.len()
    }

    /// Grow by `delta_pages`, returning the previous page count, or `None`
    /// if the limit would be exceeded (wasm `memory.grow` then yields −1).
    pub fn grow(&self, delta_pages: u32) -> Option<u32> {
        let old_bytes = self.committed();
        let old_pages = (old_bytes / WASM_PAGE) as u32;
        let new_pages = old_pages.checked_add(delta_pages)?;
        if new_pages > self.max_pages {
            return None;
        }
        if delta_pages == 0 {
            // A successful no-op grow still counts as one grow operation.
            stats::count_grow(self.strategy);
            return Some(old_pages);
        }
        let new_bytes = new_pages as usize * WASM_PAGE;
        if self.strategy == BoundsStrategy::Mprotect {
            // Windows at or below the RW high-water mark are already
            // writable (a pooled predecessor committed them); only the
            // genuinely new range needs the syscall.
            let rw_high = self.parts.rw_high.load(Ordering::Relaxed);
            if new_bytes > rw_high {
                // An injected or real failure (e.g. ENOMEM) surfaces as a
                // clean wasm-level `memory.grow` of −1, never a crash.
                if lb_chaos::inject("core.mprotect.grow").is_some() {
                    return None;
                }
                let from = old_bytes.max(rw_high);
                // The syscall whose VMA-lock serialization the paper
                // measures; spanned so profiles show grow latency next
                // to the sampled PCs.
                let _span = lb_telemetry::span!("mem.protect_grow", delta_pages);
                if self
                    .parts
                    .reservation
                    .protect(from, new_bytes - from, Protection::ReadWrite)
                    .is_err()
                {
                    return None;
                }
                self.parts.rw_high.store(new_bytes, Ordering::Relaxed);
            }
        }
        self.desc().committed.store(new_bytes, Ordering::Release);
        // Counted only after the grow can no longer fail (the old code
        // counted before the mprotect above, so a failed protect still
        // inflated `mem.grow`), and exactly once per logical grow even
        // though strategies differ in mechanism.
        stats::count_grow(self.strategy);
        Some(old_pages)
    }

    #[inline]
    fn effective(&self, addr: u32, offset: u32) -> usize {
        addr as usize + offset as usize
    }

    /// Load a `T` at `addr + offset` under this memory's strategy.
    ///
    /// For guard-based strategies the access is raw: an out-of-bounds
    /// address faults, and the fault surfaces as a wasm trap **only when
    /// the caller runs under [`crate::signals::catch_traps`]**.
    ///
    /// # Errors
    /// `trap` strategy: OOB yields `Err(Trap)`. `clamp`: OOB reads the last
    /// valid bytes instead (matching the paper's clamp semantics); only an
    /// empty memory errors.
    #[inline]
    pub fn load<T: Pod>(&self, addr: u32, offset: u32) -> Result<T, Trap> {
        let ea = self.effective(addr, offset);
        let size = std::mem::size_of::<T>();
        match self.strategy {
            BoundsStrategy::Trap => {
                let committed = self.desc().committed.load(Ordering::Relaxed);
                if ea + size > committed {
                    return Err(Trap::oob_at(self.base() as usize + ea));
                }
                // SAFETY: bounds checked above.
                Ok(unsafe { std::ptr::read_unaligned(self.base().add(ea) as *const T) })
            }
            BoundsStrategy::Clamp => {
                let committed = self.desc().committed.load(Ordering::Relaxed);
                if committed < size {
                    return Err(Trap::oob());
                }
                let ea = ea.min(committed - size);
                // SAFETY: clamped into the committed range.
                Ok(unsafe { std::ptr::read_unaligned(self.base().add(ea) as *const T) })
            }
            _ => {
                // SAFETY: ea < 2^33 ≤ reservation; an access beyond the
                // committed range faults and is handled by the trap
                // machinery (or silently succeeds under `none`, which is
                // the point of that unsafe baseline).
                Ok(unsafe { std::ptr::read_unaligned(self.base().add(ea) as *const T) })
            }
        }
    }

    /// Store a `T` at `addr + offset` under this memory's strategy.
    ///
    /// # Errors
    /// As for [`LinearMemory::load`].
    #[inline]
    pub fn store<T: Pod>(&self, addr: u32, offset: u32, v: T) -> Result<(), Trap> {
        let ea = self.effective(addr, offset);
        let size = std::mem::size_of::<T>();
        match self.strategy {
            BoundsStrategy::Trap => {
                let committed = self.desc().committed.load(Ordering::Relaxed);
                if ea + size > committed {
                    return Err(Trap::oob_at(self.base() as usize + ea));
                }
                // SAFETY: bounds checked above.
                unsafe { std::ptr::write_unaligned(self.base().add(ea) as *mut T, v) };
                Ok(())
            }
            BoundsStrategy::Clamp => {
                let committed = self.desc().committed.load(Ordering::Relaxed);
                if committed < size {
                    return Err(Trap::oob());
                }
                let ea = ea.min(committed - size);
                // SAFETY: clamped into the committed range.
                unsafe { std::ptr::write_unaligned(self.base().add(ea) as *mut T, v) };
                Ok(())
            }
            _ => {
                // SAFETY: see `load`.
                unsafe { std::ptr::write_unaligned(self.base().add(ea) as *mut T, v) };
                Ok(())
            }
        }
    }

    /// Copy bytes out of memory with an explicit bounds check (host-side
    /// access; strategy-independent).
    ///
    /// # Errors
    /// OOB ranges yield a trap regardless of strategy.
    pub fn read_bytes(&self, addr: u32, out: &mut [u8]) -> Result<(), Trap> {
        let ea = addr as usize;
        let end = ea.checked_add(out.len()).ok_or_else(Trap::oob)?;
        if end > self.committed() {
            return Err(Trap::oob());
        }
        // Host context: uffd pages inside the committed range may still be
        // missing, and no catch_traps frame is armed here, so populate
        // explicitly (and fail cleanly) before the raw copy — see
        // write_bytes.
        if self.strategy == BoundsStrategy::Uffd {
            self.populate(ea, out.len()).map_err(|_| Trap::oob())?;
        }
        // SAFETY: range checked against committed; uffd pages populated.
        unsafe {
            std::ptr::copy_nonoverlapping(self.base().add(ea), out.as_mut_ptr(), out.len());
        }
        Ok(())
    }

    /// Copy bytes into memory with an explicit bounds check (host-side
    /// access; strategy-independent; used for data segments).
    ///
    /// # Errors
    /// OOB ranges yield a trap regardless of strategy.
    pub fn write_bytes(&self, addr: u32, data: &[u8]) -> Result<(), Trap> {
        let ea = addr as usize;
        let end = ea.checked_add(data.len()).ok_or_else(Trap::oob)?;
        if end > self.committed() {
            return Err(Trap::oob());
        }
        // For mprotect memory the pages are RW (committed); for uffd they
        // may be missing, but this is host context under catch_traps-free
        // code — uffd missing pages under committed resolve via the SIGBUS
        // handler only during wasm execution, so populate explicitly here.
        // A populate failure must surface *before* the raw copy below, or
        // the copy would fault with no handler armed and abort the process.
        if self.strategy == BoundsStrategy::Uffd {
            self.populate(ea, data.len()).map_err(|_| Trap::oob())?;
        }
        // SAFETY: range checked against committed; uffd pages populated.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.base().add(ea), data.len());
        }
        Ok(())
    }

    /// Eagerly populate `[addr, addr+len)` for uffd memories (no-op for
    /// other strategies).
    ///
    /// # Errors
    /// Propagates `UFFDIO_ZEROPAGE` failures. `EEXIST` (already present)
    /// is success; transient `EAGAIN` is retried a bounded number of times.
    pub fn populate(&self, addr: usize, len: usize) -> io::Result<()> {
        let Some(u) = &self.parts.uffd else {
            return Ok(());
        };
        let start = addr & !(4095);
        let end = round_up_to_page(addr + len);
        let mut attempts = 0;
        loop {
            match u.zeropage(self.base() as usize + start, end - start) {
                Ok(()) => return Ok(()),
                Err(e) if e.raw_os_error() == Some(libc::EEXIST) => return Ok(()),
                Err(e) if e.raw_os_error() == Some(libc::EAGAIN) && attempts < 16 => {
                    attempts += 1;
                    std::hint::spin_loop();
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for LinearMemory {
    fn drop(&mut self) {
        // SAFETY: parts are taken exactly once, here; self is not used
        // again. `release` either parks them (resetting contents) or runs
        // the full teardown.
        let parts = unsafe { ManuallyDrop::take(&mut self.parts) };
        pool::release(parts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::catch_traps;
    use crate::trap::TrapKind;
    use crate::uffd::sigbus_mode_available;

    fn cfg(strategy: BoundsStrategy) -> MemoryConfig {
        // Small reservation to keep tests fast.
        MemoryConfig::new(strategy, 2, 8).with_reserve(16 * WASM_PAGE)
    }

    #[test]
    fn roundtrip_all_strategies() {
        for s in BoundsStrategy::ALL {
            if s == BoundsStrategy::Uffd && !sigbus_mode_available() {
                continue;
            }
            let m = LinearMemory::new(&cfg(s)).unwrap();
            let r = catch_traps(|| {
                m.store::<u64>(16, 0, 0xDEAD_BEEF_CAFE_F00D)?;
                m.store::<f64>(100, 4, 2.5)?;
                let a: u64 = m.load(16, 0)?;
                let b: f64 = m.load(100, 4)?;
                Ok((a, b))
            })
            .unwrap();
            assert_eq!(r, (0xDEAD_BEEF_CAFE_F00D, 2.5), "strategy {s}");
        }
    }

    #[test]
    fn grow_updates_size_and_respects_max() {
        let m = LinearMemory::new(&cfg(BoundsStrategy::Mprotect)).unwrap();
        assert_eq!(m.size_pages(), 2);
        assert_eq!(m.grow(3), Some(2));
        assert_eq!(m.size_pages(), 5);
        assert_eq!(m.grow(10), None, "over max");
        assert_eq!(m.size_pages(), 5);
        assert_eq!(m.grow(0), Some(5));
        // Newly grown pages are writable.
        catch_traps(|| m.store::<u32>((4 * WASM_PAGE) as u32, 0, 7)).unwrap();
    }

    #[test]
    fn trap_strategy_returns_err_on_oob() {
        let m = LinearMemory::new(&cfg(BoundsStrategy::Trap)).unwrap();
        let e = m.load::<u32>(2 * WASM_PAGE as u32 - 2, 0).unwrap_err();
        assert_eq!(*e.kind(), TrapKind::OutOfBounds);
        // Just inside is fine.
        m.load::<u32>(2 * WASM_PAGE as u32 - 4, 0).unwrap();
        // Offset participates in the check.
        assert!(m.load::<u8>(0, 2 * WASM_PAGE as u32).is_err());
    }

    #[test]
    fn clamp_strategy_redirects_to_end() {
        let m = LinearMemory::new(&cfg(BoundsStrategy::Clamp)).unwrap();
        let end = 2 * WASM_PAGE as u32;
        m.store::<u32>(end - 4, 0, 0x55AA55AA).unwrap();
        // An OOB read clamps to the last valid word.
        let v: u32 = m.load(end + 1000, 0).unwrap();
        assert_eq!(v, 0x55AA55AA);
        // An OOB write also lands there.
        m.store::<u32>(end + 5000, 0, 1).unwrap();
        assert_eq!(m.load::<u32>(end - 4, 0).unwrap(), 1);
    }

    #[test]
    fn mprotect_oob_traps_via_sigsegv() {
        let m = LinearMemory::new(&cfg(BoundsStrategy::Mprotect)).unwrap();
        let e = catch_traps(|| m.load::<u32>((3 * WASM_PAGE) as u32, 0)).unwrap_err();
        assert_eq!(*e.kind(), TrapKind::OutOfBounds);
        assert!(e.fault_addr().is_some());
        // Memory still usable after the trap.
        catch_traps(|| m.store::<u8>(0, 0, 1)).unwrap();
    }

    #[test]
    fn uffd_lazy_populate_and_oob() {
        if !sigbus_mode_available() {
            eprintln!("skipping: uffd unavailable");
            return;
        }
        let m = LinearMemory::new(&cfg(BoundsStrategy::Uffd)).unwrap();
        let before = crate::stats::snapshot();
        // First touch of a committed page: SIGBUS → zeropage → retry.
        let v = catch_traps(|| m.load::<u64>(WASM_PAGE as u32, 0)).unwrap();
        assert_eq!(v, 0);
        let after = crate::stats::snapshot();
        assert!(
            after.uffd_zeropage > before.uffd_zeropage,
            "fault must be resolved via UFFDIO_ZEROPAGE in the handler"
        );
        // Beyond committed: SIGBUS → OOB trap.
        let e = catch_traps(|| m.load::<u8>((2 * WASM_PAGE) as u32, 0)).unwrap_err();
        assert_eq!(*e.kind(), TrapKind::OutOfBounds);
        // Growing makes it accessible without any syscall.
        let sys_before = crate::stats::snapshot();
        m.grow(1).unwrap();
        let sys_after = crate::stats::snapshot();
        assert_eq!(
            sys_before.mprotect, sys_after.mprotect,
            "uffd grow must not call mprotect"
        );
        let v = catch_traps(|| m.load::<u8>((2 * WASM_PAGE) as u32, 0)).unwrap();
        assert_eq!(v, 0);
    }

    #[test]
    fn none_strategy_allows_silent_oob_within_reservation() {
        let m = LinearMemory::new(&cfg(BoundsStrategy::None)).unwrap();
        // This is the unsafe baseline: no trap, access "succeeds".
        let v = catch_traps(|| m.load::<u8>((4 * WASM_PAGE) as u32, 0)).unwrap();
        assert_eq!(v, 0);
    }

    #[test]
    fn data_segment_write_and_read_back() {
        for s in [BoundsStrategy::Trap, BoundsStrategy::Mprotect] {
            let m = LinearMemory::new(&cfg(s)).unwrap();
            m.write_bytes(64, b"hello wasm").unwrap();
            let mut buf = [0u8; 10];
            m.read_bytes(64, &mut buf).unwrap();
            assert_eq!(&buf, b"hello wasm");
            assert!(m.write_bytes((2 * WASM_PAGE) as u32, b"x").is_err());
            assert!(m.read_bytes(u32::MAX, &mut buf).is_err());
        }
    }

    #[test]
    fn grow_counts_mprotect_calls_only_for_mprotect_strategy() {
        let pre = crate::stats::snapshot();
        let m = LinearMemory::new(&cfg(BoundsStrategy::Trap)).unwrap();
        m.grow(4).unwrap();
        let mid = crate::stats::snapshot();
        assert_eq!(pre.mprotect, mid.mprotect);
        let m2 = LinearMemory::new(&cfg(BoundsStrategy::Mprotect)).unwrap();
        m2.grow(4).unwrap();
        let post = crate::stats::snapshot();
        assert!(post.mprotect > mid.mprotect);
    }

    #[test]
    fn bad_config_rejected() {
        let c = MemoryConfig::new(BoundsStrategy::Trap, 10, 2);
        assert!(matches!(
            LinearMemory::new(&c),
            Err(MemoryError::BadConfig(_))
        ));
    }
}
