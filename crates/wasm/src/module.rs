//! The WebAssembly module model: functions, globals, memory, table,
//! exports, imports, and data/element segments.

use crate::error::ModuleError;
use crate::instr::Instr;
use crate::types::{FuncType, GlobalType, MemoryType, TableType, ValType};
use crate::value::Value;

/// A complete WebAssembly module.
///
/// The function index space is imports first, then locally-defined
/// functions, as in the wasm specification.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// The type section: deduplicated function signatures.
    pub types: Vec<FuncType>,
    /// Imported host functions.
    pub imports: Vec<Import>,
    /// Locally defined functions.
    pub functions: Vec<Function>,
    /// The (single, optional) function table.
    pub table: Option<TableType>,
    /// The (single, optional) linear memory.
    pub memory: Option<MemoryType>,
    /// Global variables.
    pub globals: Vec<Global>,
    /// Exported items.
    pub exports: Vec<Export>,
    /// Optional start function, run at instantiation.
    pub start: Option<u32>,
    /// Element segments initializing the function table.
    pub elems: Vec<ElemSegment>,
    /// Data segments initializing linear memory.
    pub data: Vec<DataSegment>,
}

/// An imported host function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Import {
    /// Import module namespace (e.g. `"env"`).
    pub module: String,
    /// Import field name.
    pub name: String,
    /// Index into [`Module::types`].
    pub type_idx: u32,
}

/// A locally-defined function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Index into [`Module::types`].
    pub type_idx: u32,
    /// Types of the declared (non-parameter) locals.
    pub locals: Vec<ValType>,
    /// Flat instruction sequence, terminated by `End`.
    pub body: Vec<Instr>,
    /// Optional debug name.
    pub name: Option<String>,
}

/// A global variable with a constant initializer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Global {
    /// Type and mutability.
    pub ty: GlobalType,
    /// Constant initial value (must match `ty.content`).
    pub init: Value,
}

/// What an export refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportKind {
    /// A function, by index in the function index space.
    Func(u32),
    /// The module's linear memory.
    Memory,
    /// The module's function table.
    Table,
    /// A global, by index.
    Global(u32),
}

/// A named export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Export {
    /// Export name.
    pub name: String,
    /// Exported item.
    pub kind: ExportKind,
}

/// A table element segment with a constant offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElemSegment {
    /// Start index in the table.
    pub offset: u32,
    /// Function indices placed at `offset..offset+funcs.len()`.
    pub funcs: Vec<u32>,
}

/// A memory data segment with a constant offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSegment {
    /// Start byte address in linear memory.
    pub offset: u32,
    /// Bytes copied at instantiation.
    pub bytes: Vec<u8>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Number of imported functions (the defined functions start at this index).
    pub fn num_imported_funcs(&self) -> u32 {
        self.imports.len() as u32
    }

    /// Total number of functions in the index space.
    pub fn num_funcs(&self) -> u32 {
        (self.imports.len() + self.functions.len()) as u32
    }

    /// The signature of the function at `func_idx` in the function index space.
    ///
    /// # Errors
    /// Returns [`ModuleError::FuncIndex`] if the index is out of range, or
    /// [`ModuleError::TypeIndex`] if the function references a bad type.
    pub fn func_type(&self, func_idx: u32) -> Result<&FuncType, ModuleError> {
        let type_idx = self.func_type_idx(func_idx)?;
        self.types
            .get(type_idx as usize)
            .ok_or(ModuleError::TypeIndex(type_idx))
    }

    /// The type index of the function at `func_idx`.
    ///
    /// # Errors
    /// Returns [`ModuleError::FuncIndex`] if the index is out of range.
    pub fn func_type_idx(&self, func_idx: u32) -> Result<u32, ModuleError> {
        let ni = self.num_imported_funcs();
        if func_idx < ni {
            Ok(self.imports[func_idx as usize].type_idx)
        } else {
            self.functions
                .get((func_idx - ni) as usize)
                .map(|f| f.type_idx)
                .ok_or(ModuleError::FuncIndex(func_idx))
        }
    }

    /// The defined (non-import) function at `func_idx`, if it is one.
    pub fn defined_func(&self, func_idx: u32) -> Option<&Function> {
        let ni = self.num_imported_funcs();
        func_idx
            .checked_sub(ni)
            .and_then(|i| self.functions.get(i as usize))
    }

    /// Look up an export by name.
    pub fn export(&self, name: &str) -> Option<&Export> {
        self.exports.iter().find(|e| e.name == name)
    }

    /// Look up an exported function index by name.
    pub fn exported_func(&self, name: &str) -> Option<u32> {
        match self.export(name)?.kind {
            ExportKind::Func(i) => Some(i),
            _ => None,
        }
    }

    /// Intern a function type, reusing an existing identical entry.
    pub fn intern_type(&mut self, ty: FuncType) -> u32 {
        if let Some(i) = self.types.iter().position(|t| *t == ty) {
            i as u32
        } else {
            self.types.push(ty);
            (self.types.len() - 1) as u32
        }
    }

    /// A human-readable name for a function (debug name or `func[N]`).
    pub fn func_name(&self, func_idx: u32) -> String {
        if let Some(f) = self.defined_func(func_idx) {
            if let Some(n) = &f.name {
                return n.clone();
            }
        } else if let Some(imp) = self.imports.get(func_idx as usize) {
            return format!("{}.{}", imp.module, imp.name);
        }
        format!("func[{func_idx}]")
    }

    /// Declared memory type, or a reasonable default (0 pages) if absent.
    pub fn memory_type(&self) -> Option<MemoryType> {
        self.memory
    }

    /// Total static instruction count across all defined functions.
    pub fn instr_count(&self) -> usize {
        self.functions.iter().map(|f| f.body.len()).sum()
    }
}

impl Function {
    /// Construct a function with the given signature index, locals and body.
    pub fn new(type_idx: u32, locals: Vec<ValType>, body: Vec<Instr>) -> Function {
        Function {
            type_idx,
            locals,
            body,
            name: None,
        }
    }
}

/// The type of a table referenced by `call_indirect`: `TableType` re-export
/// convenience constructor.
impl TableType {
    /// A table with exactly `n` elements.
    pub fn fixed(n: u32) -> TableType {
        TableType {
            limits: crate::types::Limits::new(n, Some(n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Limits;

    fn demo_module() -> Module {
        let mut m = Module::new();
        let t0 = m.intern_type(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
        let t1 = m.intern_type(FuncType::new(vec![], vec![]));
        m.imports.push(Import {
            module: "env".into(),
            name: "host".into(),
            type_idx: t1,
        });
        m.functions.push(Function::new(
            t0,
            vec![],
            vec![Instr::LocalGet(0), Instr::End],
        ));
        m.exports.push(Export {
            name: "id".into(),
            kind: ExportKind::Func(1),
        });
        m.memory = Some(MemoryType {
            limits: Limits::new(1, Some(4)),
        });
        m
    }

    #[test]
    fn type_interning_dedups() {
        let mut m = Module::new();
        let a = m.intern_type(FuncType::new(vec![ValType::I32], vec![]));
        let b = m.intern_type(FuncType::new(vec![ValType::I32], vec![]));
        let c = m.intern_type(FuncType::new(vec![ValType::I64], vec![]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(m.types.len(), 2);
    }

    #[test]
    fn func_index_space_spans_imports() {
        let m = demo_module();
        assert_eq!(m.num_imported_funcs(), 1);
        assert_eq!(m.num_funcs(), 2);
        // index 0 is the import
        assert_eq!(m.func_type(0).unwrap().params.len(), 0);
        // index 1 is the defined function
        assert_eq!(m.func_type(1).unwrap().params, vec![ValType::I32]);
        assert!(m.defined_func(0).is_none());
        assert!(m.defined_func(1).is_some());
        assert!(m.func_type(2).is_err());
    }

    #[test]
    fn export_lookup() {
        let m = demo_module();
        assert_eq!(m.exported_func("id"), Some(1));
        assert_eq!(m.exported_func("missing"), None);
    }

    #[test]
    fn func_names() {
        let m = demo_module();
        assert_eq!(m.func_name(0), "env.host");
        assert_eq!(m.func_name(1), "func[1]");
    }
}
