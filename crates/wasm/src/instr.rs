//! The WebAssembly instruction set (MVP numeric subset).
//!
//! Instructions are stored flat, as in the binary format: structured control
//! (`block`/`loop`/`if`) is delimited by `end`/`else` markers, and the
//! validator resolves branch targets into side tables.

use crate::types::{BlockType, ValType};

/// The alignment/offset immediate carried by every memory access instruction.
///
/// WebAssembly effective addresses are `base (u32) + offset (u32)` computed
/// in 64-bit arithmetic — this is what makes the 8 GiB guard-region trick
/// described in the paper (§2.3) sound: the effective address mathematically
/// cannot exceed 2^33.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MemArg {
    /// log2 of the alignment hint (unused by our engines, kept for format fidelity).
    pub align: u32,
    /// Constant byte offset added to the dynamic base address.
    pub offset: u32,
}

impl MemArg {
    /// A MemArg with the given constant offset and natural alignment 0.
    pub fn offset(offset: u32) -> MemArg {
        MemArg { align: 0, offset }
    }
}

/// A single WebAssembly instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    // ── Control flow ────────────────────────────────────────────────
    /// Trap unconditionally.
    Unreachable,
    /// Do nothing.
    Nop,
    /// Begin a block; branches to it jump to its end.
    Block(BlockType),
    /// Begin a loop; branches to it jump back to its start.
    Loop(BlockType),
    /// Begin an if; pops an i32 condition.
    If(BlockType),
    /// Begin the else arm of the innermost if.
    Else,
    /// End the innermost block/loop/if or the function body.
    End,
    /// Unconditional branch to the `n`-th enclosing label.
    Br(u32),
    /// Conditional branch (pops i32 condition).
    BrIf(u32),
    /// Indexed branch: pops i32 selector, jumps to `targets[sel]` or the default.
    BrTable(Box<BrTable>),
    /// Return from the current function.
    Return,
    /// Call the function with the given index.
    Call(u32),
    /// Indirect call through the function table; immediate is the type index.
    CallIndirect(u32),

    // ── Parametric ─────────────────────────────────────────────────
    /// Pop and discard one value.
    Drop,
    /// Pop i32 `c`, then `b`, then `a`; push `a` if `c != 0` else `b`.
    Select,

    // ── Variables ──────────────────────────────────────────────────
    /// Push the value of a local.
    LocalGet(u32),
    /// Pop into a local.
    LocalSet(u32),
    /// Copy top of stack into a local without popping.
    LocalTee(u32),
    /// Push the value of a global.
    GlobalGet(u32),
    /// Pop into a mutable global.
    GlobalSet(u32),

    // ── Memory ─────────────────────────────────────────────────────
    /// Load a 32-bit integer.
    I32Load(MemArg),
    /// Load a 64-bit integer.
    I64Load(MemArg),
    /// Load a 32-bit float.
    F32Load(MemArg),
    /// Load a 64-bit float.
    F64Load(MemArg),
    /// Load 8 bits, sign-extend to i32.
    I32Load8S(MemArg),
    /// Load 8 bits, zero-extend to i32.
    I32Load8U(MemArg),
    /// Load 16 bits, sign-extend to i32.
    I32Load16S(MemArg),
    /// Load 16 bits, zero-extend to i32.
    I32Load16U(MemArg),
    /// Load 8 bits, sign-extend to i64.
    I64Load8S(MemArg),
    /// Load 8 bits, zero-extend to i64.
    I64Load8U(MemArg),
    /// Load 16 bits, sign-extend to i64.
    I64Load16S(MemArg),
    /// Load 16 bits, zero-extend to i64.
    I64Load16U(MemArg),
    /// Load 32 bits, sign-extend to i64.
    I64Load32S(MemArg),
    /// Load 32 bits, zero-extend to i64.
    I64Load32U(MemArg),
    /// Store a 32-bit integer.
    I32Store(MemArg),
    /// Store a 64-bit integer.
    I64Store(MemArg),
    /// Store a 32-bit float.
    F32Store(MemArg),
    /// Store a 64-bit float.
    F64Store(MemArg),
    /// Store the low 8 bits of an i32.
    I32Store8(MemArg),
    /// Store the low 16 bits of an i32.
    I32Store16(MemArg),
    /// Store the low 8 bits of an i64.
    I64Store8(MemArg),
    /// Store the low 16 bits of an i64.
    I64Store16(MemArg),
    /// Store the low 32 bits of an i64.
    I64Store32(MemArg),
    /// Push the current memory size in pages.
    MemorySize,
    /// Grow memory by the popped page count; push old size or -1.
    MemoryGrow,

    // ── Constants ──────────────────────────────────────────────────
    /// Push an i32 constant.
    I32Const(i32),
    /// Push an i64 constant.
    I64Const(i64),
    /// Push an f32 constant.
    F32Const(f32),
    /// Push an f64 constant.
    F64Const(f64),

    // ── i32 comparisons ────────────────────────────────────────────
    /// i32 == 0.
    I32Eqz,
    /// i32 equality.
    I32Eq,
    /// i32 inequality.
    I32Ne,
    /// i32 signed less-than.
    I32LtS,
    /// i32 unsigned less-than.
    I32LtU,
    /// i32 signed greater-than.
    I32GtS,
    /// i32 unsigned greater-than.
    I32GtU,
    /// i32 signed less-or-equal.
    I32LeS,
    /// i32 unsigned less-or-equal.
    I32LeU,
    /// i32 signed greater-or-equal.
    I32GeS,
    /// i32 unsigned greater-or-equal.
    I32GeU,

    // ── i64 comparisons ────────────────────────────────────────────
    /// i64 == 0.
    I64Eqz,
    /// i64 equality.
    I64Eq,
    /// i64 inequality.
    I64Ne,
    /// i64 signed less-than.
    I64LtS,
    /// i64 unsigned less-than.
    I64LtU,
    /// i64 signed greater-than.
    I64GtS,
    /// i64 unsigned greater-than.
    I64GtU,
    /// i64 signed less-or-equal.
    I64LeS,
    /// i64 unsigned less-or-equal.
    I64LeU,
    /// i64 signed greater-or-equal.
    I64GeS,
    /// i64 unsigned greater-or-equal.
    I64GeU,

    // ── f32 comparisons ────────────────────────────────────────────
    /// f32 equality.
    F32Eq,
    /// f32 inequality.
    F32Ne,
    /// f32 less-than.
    F32Lt,
    /// f32 greater-than.
    F32Gt,
    /// f32 less-or-equal.
    F32Le,
    /// f32 greater-or-equal.
    F32Ge,

    // ── f64 comparisons ────────────────────────────────────────────
    /// f64 equality.
    F64Eq,
    /// f64 inequality.
    F64Ne,
    /// f64 less-than.
    F64Lt,
    /// f64 greater-than.
    F64Gt,
    /// f64 less-or-equal.
    F64Le,
    /// f64 greater-or-equal.
    F64Ge,

    // ── i32 arithmetic ─────────────────────────────────────────────
    /// Count leading zeros.
    I32Clz,
    /// Count trailing zeros.
    I32Ctz,
    /// Population count.
    I32Popcnt,
    /// Wrapping addition.
    I32Add,
    /// Wrapping subtraction.
    I32Sub,
    /// Wrapping multiplication.
    I32Mul,
    /// Signed division (traps on 0 and overflow).
    I32DivS,
    /// Unsigned division (traps on 0).
    I32DivU,
    /// Signed remainder (traps on 0).
    I32RemS,
    /// Unsigned remainder (traps on 0).
    I32RemU,
    /// Bitwise and.
    I32And,
    /// Bitwise or.
    I32Or,
    /// Bitwise xor.
    I32Xor,
    /// Shift left (mod 32).
    I32Shl,
    /// Arithmetic shift right (mod 32).
    I32ShrS,
    /// Logical shift right (mod 32).
    I32ShrU,
    /// Rotate left (mod 32).
    I32Rotl,
    /// Rotate right (mod 32).
    I32Rotr,

    // ── i64 arithmetic ─────────────────────────────────────────────
    /// Count leading zeros.
    I64Clz,
    /// Count trailing zeros.
    I64Ctz,
    /// Population count.
    I64Popcnt,
    /// Wrapping addition.
    I64Add,
    /// Wrapping subtraction.
    I64Sub,
    /// Wrapping multiplication.
    I64Mul,
    /// Signed division (traps on 0 and overflow).
    I64DivS,
    /// Unsigned division (traps on 0).
    I64DivU,
    /// Signed remainder (traps on 0).
    I64RemS,
    /// Unsigned remainder (traps on 0).
    I64RemU,
    /// Bitwise and.
    I64And,
    /// Bitwise or.
    I64Or,
    /// Bitwise xor.
    I64Xor,
    /// Shift left (mod 64).
    I64Shl,
    /// Arithmetic shift right (mod 64).
    I64ShrS,
    /// Logical shift right (mod 64).
    I64ShrU,
    /// Rotate left (mod 64).
    I64Rotl,
    /// Rotate right (mod 64).
    I64Rotr,

    // ── f32 arithmetic ─────────────────────────────────────────────
    /// Absolute value.
    F32Abs,
    /// Negation.
    F32Neg,
    /// Round up.
    F32Ceil,
    /// Round down.
    F32Floor,
    /// Round toward zero.
    F32Trunc,
    /// Round to nearest, ties to even.
    F32Nearest,
    /// Square root.
    F32Sqrt,
    /// Addition.
    F32Add,
    /// Subtraction.
    F32Sub,
    /// Multiplication.
    F32Mul,
    /// Division.
    F32Div,
    /// Minimum (NaN-propagating).
    F32Min,
    /// Maximum (NaN-propagating).
    F32Max,
    /// Copy sign of second operand.
    F32Copysign,

    // ── f64 arithmetic ─────────────────────────────────────────────
    /// Absolute value.
    F64Abs,
    /// Negation.
    F64Neg,
    /// Round up.
    F64Ceil,
    /// Round down.
    F64Floor,
    /// Round toward zero.
    F64Trunc,
    /// Round to nearest, ties to even.
    F64Nearest,
    /// Square root.
    F64Sqrt,
    /// Addition.
    F64Add,
    /// Subtraction.
    F64Sub,
    /// Multiplication.
    F64Mul,
    /// Division.
    F64Div,
    /// Minimum (NaN-propagating).
    F64Min,
    /// Maximum (NaN-propagating).
    F64Max,
    /// Copy sign of second operand.
    F64Copysign,

    // ── Conversions ────────────────────────────────────────────────
    /// Truncate i64 to i32.
    I32WrapI64,
    /// f32 → i32, signed, trapping.
    I32TruncF32S,
    /// f32 → i32, unsigned, trapping.
    I32TruncF32U,
    /// f64 → i32, signed, trapping.
    I32TruncF64S,
    /// f64 → i32, unsigned, trapping.
    I32TruncF64U,
    /// Sign-extend i32 to i64.
    I64ExtendI32S,
    /// Zero-extend i32 to i64.
    I64ExtendI32U,
    /// f32 → i64, signed, trapping.
    I64TruncF32S,
    /// f32 → i64, unsigned, trapping.
    I64TruncF32U,
    /// f64 → i64, signed, trapping.
    I64TruncF64S,
    /// f64 → i64, unsigned, trapping.
    I64TruncF64U,
    /// i32 → f32, signed.
    F32ConvertI32S,
    /// i32 → f32, unsigned.
    F32ConvertI32U,
    /// i64 → f32, signed.
    F32ConvertI64S,
    /// i64 → f32, unsigned.
    F32ConvertI64U,
    /// f64 → f32.
    F32DemoteF64,
    /// i32 → f64, signed.
    F64ConvertI32S,
    /// i32 → f64, unsigned.
    F64ConvertI32U,
    /// i64 → f64, signed.
    F64ConvertI64S,
    /// i64 → f64, unsigned.
    F64ConvertI64U,
    /// f32 → f64.
    F64PromoteF32,
    /// Reinterpret f32 bits as i32.
    I32ReinterpretF32,
    /// Reinterpret f64 bits as i64.
    I64ReinterpretF64,
    /// Reinterpret i32 bits as f32.
    F32ReinterpretI32,
    /// Reinterpret i64 bits as f64.
    F64ReinterpretI64,
}

/// The targets of a `br_table` instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrTable {
    /// Branch targets indexed by the popped selector.
    pub targets: Vec<u32>,
    /// Target used when the selector is out of range.
    pub default: u32,
}

/// Classification of a memory access instruction: what it loads/stores and
/// how many bytes it touches. Used by the validator, both engines, and the
/// ISA cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// The value type pushed (loads) or popped (stores).
    pub ty: ValType,
    /// Bytes accessed in linear memory (1, 2, 4 or 8).
    pub bytes: u32,
    /// True for stores, false for loads.
    pub is_store: bool,
    /// True if a sub-width integer load sign-extends.
    pub sign_extend: bool,
    /// The static memarg immediate.
    pub memarg: MemArg,
}

impl Instr {
    /// If this instruction accesses linear memory, describe the access.
    pub fn mem_access(&self) -> Option<MemAccess> {
        use Instr::*;
        use ValType::*;
        let (ty, bytes, is_store, sign_extend, m) = match *self {
            I32Load(m) => (I32, 4, false, false, m),
            I64Load(m) => (I64, 8, false, false, m),
            F32Load(m) => (F32, 4, false, false, m),
            F64Load(m) => (F64, 8, false, false, m),
            I32Load8S(m) => (I32, 1, false, true, m),
            I32Load8U(m) => (I32, 1, false, false, m),
            I32Load16S(m) => (I32, 2, false, true, m),
            I32Load16U(m) => (I32, 2, false, false, m),
            I64Load8S(m) => (I64, 1, false, true, m),
            I64Load8U(m) => (I64, 1, false, false, m),
            I64Load16S(m) => (I64, 2, false, true, m),
            I64Load16U(m) => (I64, 2, false, false, m),
            I64Load32S(m) => (I64, 4, false, true, m),
            I64Load32U(m) => (I64, 4, false, false, m),
            I32Store(m) => (I32, 4, true, false, m),
            I64Store(m) => (I64, 8, true, false, m),
            F32Store(m) => (F32, 4, true, false, m),
            F64Store(m) => (F64, 8, true, false, m),
            I32Store8(m) => (I32, 1, true, false, m),
            I32Store16(m) => (I32, 2, true, false, m),
            I64Store8(m) => (I64, 1, true, false, m),
            I64Store16(m) => (I64, 2, true, false, m),
            I64Store32(m) => (I64, 4, true, false, m),
            _ => return None,
        };
        Some(MemAccess {
            ty,
            bytes,
            is_store,
            sign_extend,
            memarg: m,
        })
    }

    /// Whether this instruction opens a new structured block.
    pub fn is_block_start(&self) -> bool {
        matches!(self, Instr::Block(_) | Instr::Loop(_) | Instr::If(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_access_classification() {
        let a = Instr::I32Load8S(MemArg::offset(4)).mem_access().unwrap();
        assert_eq!(a.ty, ValType::I32);
        assert_eq!(a.bytes, 1);
        assert!(a.sign_extend);
        assert!(!a.is_store);
        assert_eq!(a.memarg.offset, 4);

        let s = Instr::I64Store32(MemArg::default()).mem_access().unwrap();
        assert_eq!(s.ty, ValType::I64);
        assert_eq!(s.bytes, 4);
        assert!(s.is_store);

        assert!(Instr::I32Add.mem_access().is_none());
        assert!(Instr::MemoryGrow.mem_access().is_none());
    }

    #[test]
    fn block_start() {
        assert!(Instr::Block(BlockType::Empty).is_block_start());
        assert!(Instr::Loop(BlockType::Empty).is_block_start());
        assert!(Instr::If(BlockType::Empty).is_block_start());
        assert!(!Instr::End.is_block_start());
    }
}

/// Coarse cost classification of instructions, used by the ISA cost model
/// (`lb-isa-model`) to estimate cycles on CPUs we cannot run natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CostClass {
    /// Structured-control bookkeeping (block/loop/end/nop).
    Control,
    /// Conditional and unconditional branches.
    Branch,
    /// Direct and indirect calls (plus return).
    Call,
    /// Local get/set/tee.
    LocalVar,
    /// Global get/set.
    Global,
    /// Constants.
    Const,
    /// Memory loads.
    MemLoad,
    /// Memory stores.
    MemStore,
    /// memory.size / memory.grow.
    MemMgmt,
    /// Integer add/sub/logic/shift.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide/remainder.
    IntDiv,
    /// Integer comparisons.
    IntCmp,
    /// Float add/sub/abs/neg/rounding.
    FpAdd,
    /// Float multiply.
    FpMul,
    /// Float divide.
    FpDiv,
    /// Float square root.
    FpSqrt,
    /// Float comparisons / min / max.
    FpCmp,
    /// Conversions and reinterprets.
    Convert,
    /// Select and drop.
    Parametric,
}

/// Number of [`CostClass`] variants.
pub const COST_CLASS_COUNT: usize = 20;

impl CostClass {
    /// Every variant, in `repr` order (matches `OpCounts` indexing).
    pub const ALL: [CostClass; COST_CLASS_COUNT] = [
        CostClass::Control,
        CostClass::Branch,
        CostClass::Call,
        CostClass::LocalVar,
        CostClass::Global,
        CostClass::Const,
        CostClass::MemLoad,
        CostClass::MemStore,
        CostClass::MemMgmt,
        CostClass::IntAlu,
        CostClass::IntMul,
        CostClass::IntDiv,
        CostClass::IntCmp,
        CostClass::FpAdd,
        CostClass::FpMul,
        CostClass::FpDiv,
        CostClass::FpSqrt,
        CostClass::FpCmp,
        CostClass::Convert,
        CostClass::Parametric,
    ];

    /// Stable lowercase label (used as a telemetry counter suffix).
    pub fn name(self) -> &'static str {
        match self {
            CostClass::Control => "control",
            CostClass::Branch => "branch",
            CostClass::Call => "call",
            CostClass::LocalVar => "local_var",
            CostClass::Global => "global",
            CostClass::Const => "const",
            CostClass::MemLoad => "mem_load",
            CostClass::MemStore => "mem_store",
            CostClass::MemMgmt => "mem_mgmt",
            CostClass::IntAlu => "int_alu",
            CostClass::IntMul => "int_mul",
            CostClass::IntDiv => "int_div",
            CostClass::IntCmp => "int_cmp",
            CostClass::FpAdd => "fp_add",
            CostClass::FpMul => "fp_mul",
            CostClass::FpDiv => "fp_div",
            CostClass::FpSqrt => "fp_sqrt",
            CostClass::FpCmp => "fp_cmp",
            CostClass::Convert => "convert",
            CostClass::Parametric => "parametric",
        }
    }
}

/// Dynamic instruction counts by [`CostClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts(pub [u64; COST_CLASS_COUNT]);

impl OpCounts {
    /// Record one executed instruction.
    #[inline]
    pub fn bump(&mut self, c: CostClass) {
        self.0[c as usize] += 1;
    }

    /// Count for one class.
    pub fn get(&self, c: CostClass) -> u64 {
        self.0[c as usize]
    }

    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Memory accesses (loads + stores) — the operations bounds checking
    /// taxes.
    pub fn mem_accesses(&self) -> u64 {
        self.get(CostClass::MemLoad) + self.get(CostClass::MemStore)
    }
}

impl Instr {
    /// The instruction's [`CostClass`].
    pub fn cost_class(&self) -> CostClass {
        use CostClass::*;
        use Instr::*;
        match self {
            Unreachable | Nop | Block(_) | Loop(_) | End | Else => Control,
            If(_) | Br(_) | BrIf(_) | BrTable(_) => Branch,
            Return | Instr::Call(_) | CallIndirect(_) => CostClass::Call,
            LocalGet(_) | LocalSet(_) | LocalTee(_) => LocalVar,
            GlobalGet(_) | GlobalSet(_) => Global,
            I32Const(_) | I64Const(_) | F32Const(_) | F64Const(_) => Const,
            MemorySize | MemoryGrow => MemMgmt,
            I32Add | I32Sub | I32And | I32Or | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl
            | I32Rotr | I32Clz | I32Ctz | I32Popcnt | I64Add | I64Sub | I64And | I64Or | I64Xor
            | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr | I64Clz | I64Ctz | I64Popcnt => {
                IntAlu
            }
            I32Mul | I64Mul => IntMul,
            I32DivS | I32DivU | I32RemS | I32RemU | I64DivS | I64DivU | I64RemS | I64RemU => IntDiv,
            I32Eqz | I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU
            | I32GeS | I32GeU | I64Eqz | I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU
            | I64LeS | I64LeU | I64GeS | I64GeU => IntCmp,
            F32Add | F32Sub | F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest
            | F64Add | F64Sub | F64Abs | F64Neg | F64Ceil | F64Floor | F64Trunc | F64Nearest => {
                FpAdd
            }
            F32Mul | F64Mul => FpMul,
            F32Div | F64Div => FpDiv,
            F32Sqrt | F64Sqrt => FpSqrt,
            F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge | F64Eq | F64Ne | F64Lt | F64Gt
            | F64Le | F64Ge | F32Min | F32Max | F32Copysign | F64Min | F64Max | F64Copysign => {
                FpCmp
            }
            I32WrapI64 | I32TruncF32S | I32TruncF32U | I32TruncF64S | I32TruncF64U
            | I64ExtendI32S | I64ExtendI32U | I64TruncF32S | I64TruncF32U | I64TruncF64S
            | I64TruncF64U | F32ConvertI32S | F32ConvertI32U | F32ConvertI64S | F32ConvertI64U
            | F32DemoteF64 | F64ConvertI32S | F64ConvertI32U | F64ConvertI64S | F64ConvertI64U
            | F64PromoteF32 | I32ReinterpretF32 | I64ReinterpretF64 | F32ReinterpretI32
            | F64ReinterpretI64 => Convert,
            Drop | Select => Parametric,
            other => {
                if let Some(a) = other.mem_access() {
                    if a.is_store {
                        MemStore
                    } else {
                        MemLoad
                    }
                } else {
                    Control
                }
            }
        }
    }
}
