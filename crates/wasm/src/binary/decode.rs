//! Decoding of the standard WebAssembly binary format into a [`Module`].

use super::leb::Reader;
use crate::error::DecodeError;
use crate::instr::{BrTable, Instr, MemArg};
use crate::module::{
    DataSegment, ElemSegment, Export, ExportKind, Function, Global, Import, Module,
};
use crate::types::{
    BlockType, FuncType, GlobalType, Limits, MemoryType, Mutability, TableType, ValType,
};
use crate::value::Value;

/// Sanity cap on declared item counts, to reject hostile inputs early.
const MAX_COUNT: u64 = 1_000_000;

/// Decode a wasm binary into a [`Module`].
///
/// Only the MVP numeric subset produced by [`super::encode::encode`] is
/// supported; unknown opcodes and section kinds produce [`DecodeError`]s.
///
/// # Errors
/// Any malformed, truncated or unsupported input yields a [`DecodeError`].
pub fn decode(bytes: &[u8]) -> Result<Module, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.bytes(4)? != b"\0asm" {
        return Err(DecodeError::BadHeader);
    }
    let version = r.bytes(4)?;
    if version != [1, 0, 0, 0] {
        return Err(DecodeError::BadHeader);
    }

    let mut module = Module::new();
    let mut func_type_indices: Vec<u32> = Vec::new();
    let mut names: Vec<(u32, String)> = Vec::new();

    while !r.is_empty() {
        let id = r.byte()?;
        let size = r.u32()? as usize;
        let content = r.bytes(size)?;
        let mut s = Reader::new(content);
        match id {
            0 => {
                // Custom section: decode function names, ignore others.
                if let Ok(n) = s.name() {
                    if n == "name" {
                        let _ = decode_names(&mut s, &mut names);
                    }
                }
            }
            1 => {
                let count = checked_count(s.u32()?)?;
                for _ in 0..count {
                    if s.byte()? != 0x60 {
                        return Err(DecodeError::BadType(0x60));
                    }
                    let np = checked_count(s.u32()?)?;
                    let mut params = Vec::with_capacity(np as usize);
                    for _ in 0..np {
                        params.push(val_type(&mut s)?);
                    }
                    let nr = checked_count(s.u32()?)?;
                    let mut results = Vec::with_capacity(nr as usize);
                    for _ in 0..nr {
                        results.push(val_type(&mut s)?);
                    }
                    module.types.push(FuncType::new(params, results));
                }
            }
            2 => {
                let count = checked_count(s.u32()?)?;
                for _ in 0..count {
                    let imod = s.name()?;
                    let iname = s.name()?;
                    let kind = s.byte()?;
                    if kind != 0x00 {
                        return Err(DecodeError::BadSection(kind));
                    }
                    let type_idx = s.u32()?;
                    module.imports.push(Import {
                        module: imod,
                        name: iname,
                        type_idx,
                    });
                }
            }
            3 => {
                let count = checked_count(s.u32()?)?;
                for _ in 0..count {
                    func_type_indices.push(s.u32()?);
                }
            }
            4 => {
                let count = s.u32()?;
                if count > 1 {
                    return Err(DecodeError::BadCount(count as u64));
                }
                if count == 1 {
                    if s.byte()? != 0x70 {
                        return Err(DecodeError::BadType(0x70));
                    }
                    let l = decode_limits(&mut s)?;
                    module.table = Some(TableType { limits: l });
                }
            }
            5 => {
                let count = s.u32()?;
                if count > 1 {
                    return Err(DecodeError::BadCount(count as u64));
                }
                if count == 1 {
                    let l = decode_limits(&mut s)?;
                    module.memory = Some(MemoryType { limits: l });
                }
            }
            6 => {
                let count = checked_count(s.u32()?)?;
                for _ in 0..count {
                    let content_ty = val_type(&mut s)?;
                    let mutability = match s.byte()? {
                        0 => Mutability::Const,
                        1 => Mutability::Var,
                        b => return Err(DecodeError::BadType(b)),
                    };
                    let init = decode_const_expr(&mut s)?;
                    module.globals.push(Global {
                        ty: GlobalType {
                            content: content_ty,
                            mutability,
                        },
                        init,
                    });
                }
            }
            7 => {
                let count = checked_count(s.u32()?)?;
                for _ in 0..count {
                    let ename = s.name()?;
                    let kind = s.byte()?;
                    let idx = s.u32()?;
                    let kind = match kind {
                        0x00 => ExportKind::Func(idx),
                        0x01 => ExportKind::Table,
                        0x02 => ExportKind::Memory,
                        0x03 => ExportKind::Global(idx),
                        b => return Err(DecodeError::BadSection(b)),
                    };
                    module.exports.push(Export { name: ename, kind });
                }
            }
            8 => {
                module.start = Some(s.u32()?);
            }
            9 => {
                let count = checked_count(s.u32()?)?;
                for _ in 0..count {
                    let flags = s.u32()?;
                    if flags != 0 {
                        return Err(DecodeError::BadSection(9));
                    }
                    let offset = match decode_const_expr(&mut s)? {
                        Value::I32(v) => v as u32,
                        _ => return Err(DecodeError::BadType(0x41)),
                    };
                    let n = checked_count(s.u32()?)?;
                    let mut funcs = Vec::with_capacity(n as usize);
                    for _ in 0..n {
                        funcs.push(s.u32()?);
                    }
                    module.elems.push(ElemSegment { offset, funcs });
                }
            }
            10 => {
                let count = checked_count(s.u32()?)?;
                if count as usize != func_type_indices.len() {
                    return Err(DecodeError::SectionSize);
                }
                for type_idx in &func_type_indices {
                    let body_size = s.u32()? as usize;
                    let body_bytes = s.bytes(body_size)?;
                    let mut b = Reader::new(body_bytes);
                    let nlocals = checked_count(b.u32()?)?;
                    let mut locals = Vec::new();
                    for _ in 0..nlocals {
                        let n = checked_count(b.u32()?)?;
                        let t = val_type(&mut b)?;
                        for _ in 0..n {
                            locals.push(t);
                        }
                    }
                    let mut body = Vec::new();
                    while !b.is_empty() {
                        body.push(decode_instr(&mut b)?);
                    }
                    if body.last() != Some(&Instr::End) {
                        return Err(DecodeError::SectionSize);
                    }
                    module
                        .functions
                        .push(Function::new(*type_idx, locals, body));
                }
            }
            11 => {
                let count = checked_count(s.u32()?)?;
                for _ in 0..count {
                    let flags = s.u32()?;
                    if flags != 0 {
                        return Err(DecodeError::BadSection(11));
                    }
                    let offset = match decode_const_expr(&mut s)? {
                        Value::I32(v) => v as u32,
                        _ => return Err(DecodeError::BadType(0x41)),
                    };
                    let n = s.u32()? as usize;
                    let bytes = s.bytes(n)?.to_vec();
                    module.data.push(DataSegment { offset, bytes });
                }
            }
            other => return Err(DecodeError::BadSection(other)),
        }
    }

    // Attach decoded debug names.
    let ni = module.num_imported_funcs();
    for (idx, n) in names {
        if let Some(f) = idx
            .checked_sub(ni)
            .and_then(|i| module.functions.get_mut(i as usize))
        {
            f.name = Some(n);
        }
    }
    Ok(module)
}

fn checked_count(n: u32) -> Result<u32, DecodeError> {
    if u64::from(n) > MAX_COUNT {
        return Err(DecodeError::BadCount(u64::from(n)));
    }
    Ok(n)
}

fn decode_names(s: &mut Reader<'_>, out: &mut Vec<(u32, String)>) -> Result<(), DecodeError> {
    while !s.is_empty() {
        let sub_id = s.byte()?;
        let sub_len = s.u32()? as usize;
        let content = s.bytes(sub_len)?;
        if sub_id == 1 {
            let mut r = Reader::new(content);
            let count = checked_count(r.u32()?)?;
            for _ in 0..count {
                let idx = r.u32()?;
                let n = r.name()?;
                out.push((idx, n));
            }
        }
    }
    Ok(())
}

fn val_type(s: &mut Reader<'_>) -> Result<ValType, DecodeError> {
    let b = s.byte()?;
    ValType::from_byte(b).ok_or(DecodeError::BadType(b))
}

fn decode_limits(s: &mut Reader<'_>) -> Result<Limits, DecodeError> {
    match s.byte()? {
        0x00 => Ok(Limits::new(s.u32()?, None)),
        0x01 => {
            let min = s.u32()?;
            let max = s.u32()?;
            Ok(Limits::new(min, Some(max)))
        }
        b => return Err(DecodeError::BadType(b)),
    }
}

fn decode_const_expr(s: &mut Reader<'_>) -> Result<Value, DecodeError> {
    let op = s.byte()?;
    let v = match op {
        0x41 => Value::I32(s.i32()?),
        0x42 => Value::I64(s.i64()?),
        0x43 => Value::F32(s.f32()?),
        0x44 => Value::F64(s.f64()?),
        b => return Err(DecodeError::BadOpcode(b)),
    };
    if s.byte()? != 0x0B {
        return Err(DecodeError::BadOpcode(op));
    }
    Ok(v)
}

fn block_type(s: &mut Reader<'_>) -> Result<BlockType, DecodeError> {
    let b = s.byte()?;
    if b == 0x40 {
        Ok(BlockType::Empty)
    } else {
        ValType::from_byte(b)
            .map(BlockType::Value)
            .ok_or(DecodeError::BadType(b))
    }
}

fn memarg(s: &mut Reader<'_>) -> Result<MemArg, DecodeError> {
    let align = s.u32()?;
    let offset = s.u32()?;
    Ok(MemArg { align, offset })
}

/// Decode a single instruction.
pub fn decode_instr(s: &mut Reader<'_>) -> Result<Instr, DecodeError> {
    use Instr::*;
    let op = s.byte()?;
    Ok(match op {
        0x00 => Unreachable,
        0x01 => Nop,
        0x02 => Block(block_type(s)?),
        0x03 => Loop(block_type(s)?),
        0x04 => If(block_type(s)?),
        0x05 => Else,
        0x0B => End,
        0x0C => Br(s.u32()?),
        0x0D => BrIf(s.u32()?),
        0x0E => {
            let n = checked_count(s.u32()?)?;
            let mut targets = Vec::with_capacity(n as usize);
            for _ in 0..n {
                targets.push(s.u32()?);
            }
            let default = s.u32()?;
            BrTable(Box::new(crate::instr::BrTable { targets, default }))
        }
        0x0F => Return,
        0x10 => Call(s.u32()?),
        0x11 => {
            let t = s.u32()?;
            let table = s.byte()?;
            if table != 0 {
                return Err(DecodeError::BadOpcode(op));
            }
            CallIndirect(t)
        }
        0x1A => Drop,
        0x1B => Select,
        0x20 => LocalGet(s.u32()?),
        0x21 => LocalSet(s.u32()?),
        0x22 => LocalTee(s.u32()?),
        0x23 => GlobalGet(s.u32()?),
        0x24 => GlobalSet(s.u32()?),
        0x28 => I32Load(memarg(s)?),
        0x29 => I64Load(memarg(s)?),
        0x2A => F32Load(memarg(s)?),
        0x2B => F64Load(memarg(s)?),
        0x2C => I32Load8S(memarg(s)?),
        0x2D => I32Load8U(memarg(s)?),
        0x2E => I32Load16S(memarg(s)?),
        0x2F => I32Load16U(memarg(s)?),
        0x30 => I64Load8S(memarg(s)?),
        0x31 => I64Load8U(memarg(s)?),
        0x32 => I64Load16S(memarg(s)?),
        0x33 => I64Load16U(memarg(s)?),
        0x34 => I64Load32S(memarg(s)?),
        0x35 => I64Load32U(memarg(s)?),
        0x36 => I32Store(memarg(s)?),
        0x37 => I64Store(memarg(s)?),
        0x38 => F32Store(memarg(s)?),
        0x39 => F64Store(memarg(s)?),
        0x3A => I32Store8(memarg(s)?),
        0x3B => I32Store16(memarg(s)?),
        0x3C => I64Store8(memarg(s)?),
        0x3D => I64Store16(memarg(s)?),
        0x3E => I64Store32(memarg(s)?),
        0x3F => {
            if s.byte()? != 0 {
                return Err(DecodeError::BadOpcode(op));
            }
            MemorySize
        }
        0x40 => {
            if s.byte()? != 0 {
                return Err(DecodeError::BadOpcode(op));
            }
            MemoryGrow
        }
        0x41 => I32Const(s.i32()?),
        0x42 => I64Const(s.i64()?),
        0x43 => F32Const(s.f32()?),
        0x44 => F64Const(s.f64()?),
        0x45 => I32Eqz,
        0x46 => I32Eq,
        0x47 => I32Ne,
        0x48 => I32LtS,
        0x49 => I32LtU,
        0x4A => I32GtS,
        0x4B => I32GtU,
        0x4C => I32LeS,
        0x4D => I32LeU,
        0x4E => I32GeS,
        0x4F => I32GeU,
        0x50 => I64Eqz,
        0x51 => I64Eq,
        0x52 => I64Ne,
        0x53 => I64LtS,
        0x54 => I64LtU,
        0x55 => I64GtS,
        0x56 => I64GtU,
        0x57 => I64LeS,
        0x58 => I64LeU,
        0x59 => I64GeS,
        0x5A => I64GeU,
        0x5B => F32Eq,
        0x5C => F32Ne,
        0x5D => F32Lt,
        0x5E => F32Gt,
        0x5F => F32Le,
        0x60 => F32Ge,
        0x61 => F64Eq,
        0x62 => F64Ne,
        0x63 => F64Lt,
        0x64 => F64Gt,
        0x65 => F64Le,
        0x66 => F64Ge,
        0x67 => I32Clz,
        0x68 => I32Ctz,
        0x69 => I32Popcnt,
        0x6A => I32Add,
        0x6B => I32Sub,
        0x6C => I32Mul,
        0x6D => I32DivS,
        0x6E => I32DivU,
        0x6F => I32RemS,
        0x70 => I32RemU,
        0x71 => I32And,
        0x72 => I32Or,
        0x73 => I32Xor,
        0x74 => I32Shl,
        0x75 => I32ShrS,
        0x76 => I32ShrU,
        0x77 => I32Rotl,
        0x78 => I32Rotr,
        0x79 => I64Clz,
        0x7A => I64Ctz,
        0x7B => I64Popcnt,
        0x7C => I64Add,
        0x7D => I64Sub,
        0x7E => I64Mul,
        0x7F => I64DivS,
        0x80 => I64DivU,
        0x81 => I64RemS,
        0x82 => I64RemU,
        0x83 => I64And,
        0x84 => I64Or,
        0x85 => I64Xor,
        0x86 => I64Shl,
        0x87 => I64ShrS,
        0x88 => I64ShrU,
        0x89 => I64Rotl,
        0x8A => I64Rotr,
        0x8B => F32Abs,
        0x8C => F32Neg,
        0x8D => F32Ceil,
        0x8E => F32Floor,
        0x8F => F32Trunc,
        0x90 => F32Nearest,
        0x91 => F32Sqrt,
        0x92 => F32Add,
        0x93 => F32Sub,
        0x94 => F32Mul,
        0x95 => F32Div,
        0x96 => F32Min,
        0x97 => F32Max,
        0x98 => F32Copysign,
        0x99 => F64Abs,
        0x9A => F64Neg,
        0x9B => F64Ceil,
        0x9C => F64Floor,
        0x9D => F64Trunc,
        0x9E => F64Nearest,
        0x9F => F64Sqrt,
        0xA0 => F64Add,
        0xA1 => F64Sub,
        0xA2 => F64Mul,
        0xA3 => F64Div,
        0xA4 => F64Min,
        0xA5 => F64Max,
        0xA6 => F64Copysign,
        0xA7 => I32WrapI64,
        0xA8 => I32TruncF32S,
        0xA9 => I32TruncF32U,
        0xAA => I32TruncF64S,
        0xAB => I32TruncF64U,
        0xAC => I64ExtendI32S,
        0xAD => I64ExtendI32U,
        0xAE => I64TruncF32S,
        0xAF => I64TruncF32U,
        0xB0 => I64TruncF64S,
        0xB1 => I64TruncF64U,
        0xB2 => F32ConvertI32S,
        0xB3 => F32ConvertI32U,
        0xB4 => F32ConvertI64S,
        0xB5 => F32ConvertI64U,
        0xB6 => F32DemoteF64,
        0xB7 => F64ConvertI32S,
        0xB8 => F64ConvertI32U,
        0xB9 => F64ConvertI64S,
        0xBA => F64ConvertI64U,
        0xBB => F64PromoteF32,
        0xBC => I32ReinterpretF32,
        0xBD => I64ReinterpretF64,
        0xBE => F32ReinterpretI32,
        0xBF => F64ReinterpretI64,
        other => return Err(DecodeError::BadOpcode(other)),
    })
}

// Silence an unused-import lint when BrTable is only used qualified above.
#[allow(unused_imports)]
use BrTable as _BrTableAlias;
