//! The standard WebAssembly binary format: encoding and decoding.

pub mod decode;
pub mod encode;
pub mod leb;

pub use decode::decode;
pub use encode::encode;

#[cfg(test)]
mod tests {
    use crate::builder::ModuleBuilder;
    use crate::instr::{Instr, MemArg};
    use crate::module::Module;
    use crate::types::{BlockType, FuncType, Mutability, ValType};
    use crate::value::Value;

    fn roundtrip(m: &Module) -> Module {
        let bytes = super::encode(m);
        super::decode(&bytes).expect("decode failed")
    }

    #[test]
    fn empty_module_roundtrips() {
        let m = Module::new();
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn full_module_roundtrips() {
        let mut mb = ModuleBuilder::new();
        mb.memory(2, Some(16));
        mb.table(4);
        let g = mb.global(Mutability::Var, Value::F64(3.5));
        let imp = mb.import_func("env", "tick", FuncType::new(vec![ValType::I64], vec![]));
        let f = mb.begin_func(
            "kernel",
            FuncType::new(vec![ValType::I32], vec![ValType::F64]),
        );
        {
            let mut b = mb.func_mut(f);
            let acc = b.local(ValType::F64);
            let p = b.param(0);
            b.block(BlockType::Empty, |b| {
                b.get(p).br_if(0);
                b.emit(Instr::I64Const(1)).call(imp);
            });
            b.get(p)
                .emit(Instr::F64ConvertI32S)
                .emit(Instr::GlobalGet(g.0))
                .emit(Instr::F64Mul)
                .set(acc);
            b.get(acc);
        }
        mb.export_func("kernel", f);
        mb.export_memory("mem");
        mb.elems(1, vec![f]);
        mb.data(64, vec![1, 2, 3, 4]);
        let m = mb.finish();
        let rt = roundtrip(&m);
        assert_eq!(rt, m);
        // Debug names survive via the name section.
        assert_eq!(rt.functions[0].name.as_deref(), Some("kernel"));
    }

    #[test]
    fn all_memory_instrs_roundtrip() {
        let mem = MemArg {
            align: 3,
            offset: 123456,
        };
        let instrs = vec![
            Instr::I32Load(mem),
            Instr::I64Load(mem),
            Instr::F32Load(mem),
            Instr::F64Load(mem),
            Instr::I32Load8S(mem),
            Instr::I32Load8U(mem),
            Instr::I32Load16S(mem),
            Instr::I32Load16U(mem),
            Instr::I64Load8S(mem),
            Instr::I64Load8U(mem),
            Instr::I64Load16S(mem),
            Instr::I64Load16U(mem),
            Instr::I64Load32S(mem),
            Instr::I64Load32U(mem),
            Instr::I32Store(mem),
            Instr::I64Store(mem),
            Instr::F32Store(mem),
            Instr::F64Store(mem),
            Instr::I32Store8(mem),
            Instr::I32Store16(mem),
            Instr::I64Store8(mem),
            Instr::I64Store16(mem),
            Instr::I64Store32(mem),
            Instr::MemorySize,
            Instr::MemoryGrow,
        ];
        for i in &instrs {
            let mut out = Vec::new();
            super::encode::encode_instr(&mut out, i);
            let mut r = super::leb::Reader::new(&out);
            let back = super::decode::decode_instr(&mut r).unwrap();
            assert_eq!(&back, i);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn br_table_roundtrips() {
        let i = Instr::BrTable(Box::new(crate::instr::BrTable {
            targets: vec![0, 2, 1],
            default: 3,
        }));
        let mut out = Vec::new();
        super::encode::encode_instr(&mut out, &i);
        let mut r = super::leb::Reader::new(&out);
        assert_eq!(super::decode::decode_instr(&mut r).unwrap(), i);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(super::decode(b"not wasm").is_err());
        assert!(super::decode(b"\0asm\x02\0\0\0").is_err());
        // Truncated section.
        let mut bytes = b"\0asm\x01\0\0\0".to_vec();
        bytes.push(1);
        bytes.push(200); // claims 200 bytes
        assert!(super::decode(&bytes).is_err());
    }
}
