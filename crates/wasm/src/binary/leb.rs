//! LEB128 variable-length integer encoding, as used by the wasm binary format.

use crate::error::DecodeError;

/// Append an unsigned LEB128 integer to `out`.
pub fn write_u32(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append an unsigned 64-bit LEB128 integer to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a signed LEB128 integer to `out`.
pub fn write_i32(out: &mut Vec<u8>, v: i32) {
    write_i64(out, v as i64);
}

/// Append a signed 64-bit LEB128 integer to `out`.
pub fn write_i64(out: &mut Vec<u8>, mut v: i64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        let sign_clear = byte & 0x40 == 0;
        if (v == 0 && sign_clear) || (v == -1 && !sign_clear) {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A cursor over a byte slice for decoding.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Create a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Current byte position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the input is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Read one byte.
    ///
    /// # Errors
    /// [`DecodeError::UnexpectedEof`] at end of input.
    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read `n` raw bytes.
    ///
    /// # Errors
    /// [`DecodeError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read an unsigned LEB128 u32.
    ///
    /// # Errors
    /// [`DecodeError::IntTooLong`] on overlong encodings, EOF on truncation.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let mut result: u32 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift == 28 && byte & 0xF0 != 0 {
                return Err(DecodeError::IntTooLong);
            }
            result |= u32::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
            if shift > 28 {
                return Err(DecodeError::IntTooLong);
            }
        }
    }

    /// Read an unsigned LEB128 u64.
    ///
    /// # Errors
    /// [`DecodeError::IntTooLong`] on overlong encodings, EOF on truncation.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift == 63 && byte & 0xFE != 0 {
                return Err(DecodeError::IntTooLong);
            }
            result |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
            if shift > 63 {
                return Err(DecodeError::IntTooLong);
            }
        }
    }

    /// Read a signed LEB128 i32.
    ///
    /// # Errors
    /// [`DecodeError::IntTooLong`] on overlong encodings, EOF on truncation.
    pub fn i32(&mut self) -> Result<i32, DecodeError> {
        let v = self.i64()?;
        i32::try_from(v).map_err(|_| DecodeError::IntTooLong)
    }

    /// Read a signed LEB128 i64.
    ///
    /// # Errors
    /// [`DecodeError::IntTooLong`] on overlong encodings, EOF on truncation.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        let mut result: i64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            result |= i64::from(byte & 0x7F) << shift;
            shift += 7;
            if byte & 0x80 == 0 {
                if shift < 64 && byte & 0x40 != 0 {
                    result |= -1i64 << shift; // sign-extend
                }
                return Ok(result);
            }
            if shift >= 70 {
                return Err(DecodeError::IntTooLong);
            }
        }
    }

    /// Read a little-endian f32.
    ///
    /// # Errors
    /// EOF on truncation.
    pub fn f32(&mut self) -> Result<f32, DecodeError> {
        let b = self.bytes(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian f64.
    ///
    /// # Errors
    /// EOF on truncation.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        let b = self.bytes(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a length-prefixed UTF-8 name.
    ///
    /// # Errors
    /// [`DecodeError::BadName`] on invalid UTF-8, EOF on truncation.
    pub fn name(&mut self) -> Result<String, DecodeError> {
        let n = self.u32()? as usize;
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadName)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u32(v: u32) -> u32 {
        let mut out = Vec::new();
        write_u32(&mut out, v);
        Reader::new(&out).u32().unwrap()
    }

    fn roundtrip_i64(v: i64) -> i64 {
        let mut out = Vec::new();
        write_i64(&mut out, v);
        Reader::new(&out).i64().unwrap()
    }

    #[test]
    fn u32_roundtrips() {
        for v in [0, 1, 127, 128, 300, 16384, u32::MAX] {
            assert_eq!(roundtrip_u32(v), v);
        }
    }

    #[test]
    fn i64_roundtrips() {
        for v in [0, -1, 63, -64, 64, -65, i64::MAX, i64::MIN, 0x7FFF_FFFF] {
            assert_eq!(roundtrip_i64(v), v, "value {v}");
        }
    }

    #[test]
    fn i32_roundtrips() {
        for v in [0i32, -1, i32::MIN, i32::MAX, 1 << 20] {
            let mut out = Vec::new();
            write_i32(&mut out, v);
            assert_eq!(Reader::new(&out).i32().unwrap(), v);
        }
    }

    #[test]
    fn truncated_input_is_eof() {
        let mut out = Vec::new();
        write_u32(&mut out, 300);
        out.pop();
        assert_eq!(Reader::new(&out).u32(), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn overlong_is_rejected() {
        // 6-byte encoding of a u32 is never valid.
        let bytes = [0x80, 0x80, 0x80, 0x80, 0x80, 0x01];
        assert_eq!(Reader::new(&bytes).u32(), Err(DecodeError::IntTooLong));
    }

    #[test]
    fn floats_roundtrip() {
        let mut out = Vec::new();
        out.extend_from_slice(&1.5f32.to_le_bytes());
        out.extend_from_slice(&(-2.25f64).to_le_bytes());
        let mut r = Reader::new(&out);
        assert_eq!(r.f32().unwrap(), 1.5);
        assert_eq!(r.f64().unwrap(), -2.25);
    }

    #[test]
    fn names_roundtrip() {
        let mut out = Vec::new();
        write_u32(&mut out, 5);
        out.extend_from_slice(b"hello");
        assert_eq!(Reader::new(&out).name().unwrap(), "hello");
    }
}

#[cfg(test)]
mod proptests {
    //! Randomized round-trips on a deterministic SplitMix64 stream
    //! (offline build — no proptest; fixed seeds keep failures
    //! reproducible). Boundary values are checked explicitly on top of
    //! the random sweep.

    use super::*;

    struct Rng(u64);

    impl Rng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    const CASES: u32 = 4000;

    #[test]
    fn u32_roundtrips_all() {
        let mut rng = Rng(0x1EB_32);
        let check = |v: u32| {
            let mut out = Vec::new();
            write_u32(&mut out, v);
            assert!(out.len() <= 5);
            let mut r = Reader::new(&out);
            assert_eq!(r.u32().unwrap(), v);
            assert!(r.is_empty());
        };
        for v in [0, 1, 127, 128, u32::MAX] {
            check(v);
        }
        for _ in 0..CASES {
            check(rng.next_u64() as u32);
        }
    }

    #[test]
    fn u64_roundtrips_all() {
        let mut rng = Rng(0x1EB_64);
        let check = |v: u64| {
            let mut out = Vec::new();
            write_u64(&mut out, v);
            assert!(out.len() <= 10);
            assert_eq!(Reader::new(&out).u64().unwrap(), v);
        };
        for v in [0, 1, 127, 128, u64::MAX] {
            check(v);
        }
        for _ in 0..CASES {
            check(rng.next_u64());
        }
    }

    #[test]
    fn i32_roundtrips_all() {
        let mut rng = Rng(0x51EB_32);
        let check = |v: i32| {
            let mut out = Vec::new();
            write_i32(&mut out, v);
            assert_eq!(Reader::new(&out).i32().unwrap(), v);
        };
        for v in [0, -1, 63, 64, -64, -65, i32::MIN, i32::MAX] {
            check(v);
        }
        for _ in 0..CASES {
            check(rng.next_u64() as i32);
        }
    }

    #[test]
    fn i64_roundtrips_all() {
        let mut rng = Rng(0x51EB_64);
        let check = |v: i64| {
            let mut out = Vec::new();
            write_i64(&mut out, v);
            assert!(out.len() <= 10);
            assert_eq!(Reader::new(&out).i64().unwrap(), v);
        };
        for v in [0, -1, 63, 64, -64, -65, i64::MIN, i64::MAX] {
            check(v);
        }
        for _ in 0..CASES {
            check(rng.next_u64() as i64);
        }
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn reader_never_panics() {
        let mut rng = Rng(0xBAD_B17E5);
        for _ in 0..CASES {
            let len = (rng.next_u64() % 16) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let mut r = Reader::new(&bytes);
            let _ = r.u32();
            let mut r = Reader::new(&bytes);
            let _ = r.i64();
            let mut r = Reader::new(&bytes);
            let _ = r.name();
        }
    }
}
