//! Encoding of modules to the standard WebAssembly binary format.

use super::leb::{write_i32, write_i64, write_u32};
use crate::instr::{Instr, MemArg};
use crate::module::{ExportKind, Module};
use crate::types::{BlockType, Mutability, ValType};

/// Encode a module to wasm binary bytes.
///
/// The output uses the standard MVP binary format: a module produced here
/// decodes back with [`super::decode::decode`], and the numeric subset is
/// valid input for standard tooling.
pub fn encode(module: &Module) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(b"\0asm");
    out.extend_from_slice(&1u32.to_le_bytes());

    // Type section (1)
    if !module.types.is_empty() {
        let mut sec = Vec::new();
        write_u32(&mut sec, module.types.len() as u32);
        for ty in &module.types {
            sec.push(0x60);
            write_u32(&mut sec, ty.params.len() as u32);
            for p in &ty.params {
                sec.push(p.to_byte());
            }
            write_u32(&mut sec, ty.results.len() as u32);
            for r in &ty.results {
                sec.push(r.to_byte());
            }
        }
        section(&mut out, 1, &sec);
    }

    // Import section (2)
    if !module.imports.is_empty() {
        let mut sec = Vec::new();
        write_u32(&mut sec, module.imports.len() as u32);
        for imp in &module.imports {
            name(&mut sec, &imp.module);
            name(&mut sec, &imp.name);
            sec.push(0x00); // func import
            write_u32(&mut sec, imp.type_idx);
        }
        section(&mut out, 2, &sec);
    }

    // Function section (3)
    if !module.functions.is_empty() {
        let mut sec = Vec::new();
        write_u32(&mut sec, module.functions.len() as u32);
        for f in &module.functions {
            write_u32(&mut sec, f.type_idx);
        }
        section(&mut out, 3, &sec);
    }

    // Table section (4)
    if let Some(t) = module.table {
        let mut sec = Vec::new();
        write_u32(&mut sec, 1);
        sec.push(0x70); // funcref
        limits(&mut sec, t.limits.min, t.limits.max);
        section(&mut out, 4, &sec);
    }

    // Memory section (5)
    if let Some(m) = module.memory {
        let mut sec = Vec::new();
        write_u32(&mut sec, 1);
        limits(&mut sec, m.limits.min, m.limits.max);
        section(&mut out, 5, &sec);
    }

    // Global section (6)
    if !module.globals.is_empty() {
        let mut sec = Vec::new();
        write_u32(&mut sec, module.globals.len() as u32);
        for g in &module.globals {
            sec.push(g.ty.content.to_byte());
            sec.push(match g.ty.mutability {
                Mutability::Const => 0,
                Mutability::Var => 1,
            });
            const_expr(&mut sec, g.init);
        }
        section(&mut out, 6, &sec);
    }

    // Export section (7)
    if !module.exports.is_empty() {
        let mut sec = Vec::new();
        write_u32(&mut sec, module.exports.len() as u32);
        for e in &module.exports {
            name(&mut sec, &e.name);
            match e.kind {
                ExportKind::Func(i) => {
                    sec.push(0x00);
                    write_u32(&mut sec, i);
                }
                ExportKind::Table => {
                    sec.push(0x01);
                    write_u32(&mut sec, 0);
                }
                ExportKind::Memory => {
                    sec.push(0x02);
                    write_u32(&mut sec, 0);
                }
                ExportKind::Global(i) => {
                    sec.push(0x03);
                    write_u32(&mut sec, i);
                }
            }
        }
        section(&mut out, 7, &sec);
    }

    // Start section (8)
    if let Some(s) = module.start {
        let mut sec = Vec::new();
        write_u32(&mut sec, s);
        section(&mut out, 8, &sec);
    }

    // Element section (9)
    if !module.elems.is_empty() {
        let mut sec = Vec::new();
        write_u32(&mut sec, module.elems.len() as u32);
        for e in &module.elems {
            write_u32(&mut sec, 0); // table index / flags
            let mut off = Vec::new();
            off.push(0x41); // i32.const
            write_i32(&mut off, e.offset as i32);
            off.push(0x0B); // end
            sec.extend_from_slice(&off);
            write_u32(&mut sec, e.funcs.len() as u32);
            for &f in &e.funcs {
                write_u32(&mut sec, f);
            }
        }
        section(&mut out, 9, &sec);
    }

    // Code section (10)
    if !module.functions.is_empty() {
        let mut sec = Vec::new();
        write_u32(&mut sec, module.functions.len() as u32);
        for f in &module.functions {
            let mut body = Vec::new();
            // Locals: run-length encode consecutive same types.
            let mut runs: Vec<(u32, ValType)> = Vec::new();
            for &l in &f.locals {
                match runs.last_mut() {
                    Some((n, t)) if *t == l => *n += 1,
                    _ => runs.push((1, l)),
                }
            }
            write_u32(&mut body, runs.len() as u32);
            for (n, t) in runs {
                write_u32(&mut body, n);
                body.push(t.to_byte());
            }
            for i in &f.body {
                encode_instr(&mut body, i);
            }
            write_u32(&mut sec, body.len() as u32);
            sec.extend_from_slice(&body);
        }
        section(&mut out, 10, &sec);
    }

    // Data section (11)
    if !module.data.is_empty() {
        let mut sec = Vec::new();
        write_u32(&mut sec, module.data.len() as u32);
        for d in &module.data {
            write_u32(&mut sec, 0);
            let mut off = Vec::new();
            off.push(0x41);
            write_i32(&mut off, d.offset as i32);
            off.push(0x0B);
            sec.extend_from_slice(&off);
            write_u32(&mut sec, d.bytes.len() as u32);
            sec.extend_from_slice(&d.bytes);
        }
        section(&mut out, 11, &sec);
    }

    // Custom "name" section with function names, for debuggability.
    let named: Vec<(u32, &str)> = module
        .functions
        .iter()
        .enumerate()
        .filter_map(|(i, f)| {
            f.name
                .as_deref()
                .map(|n| (module.num_imported_funcs() + i as u32, n))
        })
        .collect();
    if !named.is_empty() {
        let mut sec = Vec::new();
        name(&mut sec, "name");
        let mut sub = Vec::new();
        write_u32(&mut sub, named.len() as u32);
        for (i, n) in named {
            write_u32(&mut sub, i);
            name(&mut sub, n);
        }
        sec.push(1); // function-names subsection
        write_u32(&mut sec, sub.len() as u32);
        sec.extend_from_slice(&sub);
        section(&mut out, 0, &sec);
    }

    out
}

fn section(out: &mut Vec<u8>, id: u8, content: &[u8]) {
    out.push(id);
    write_u32(out, content.len() as u32);
    out.extend_from_slice(content);
}

fn name(out: &mut Vec<u8>, s: &str) {
    write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn limits(out: &mut Vec<u8>, min: u32, max: Option<u32>) {
    match max {
        None => {
            out.push(0x00);
            write_u32(out, min);
        }
        Some(m) => {
            out.push(0x01);
            write_u32(out, min);
            write_u32(out, m);
        }
    }
}

fn const_expr(out: &mut Vec<u8>, v: crate::value::Value) {
    use crate::value::Value;
    match v {
        Value::I32(x) => {
            out.push(0x41);
            write_i32(out, x);
        }
        Value::I64(x) => {
            out.push(0x42);
            write_i64(out, x);
        }
        Value::F32(x) => {
            out.push(0x43);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(0x44);
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
    out.push(0x0B);
}

fn block_type(out: &mut Vec<u8>, bt: BlockType) {
    match bt {
        BlockType::Empty => out.push(0x40),
        BlockType::Value(t) => out.push(t.to_byte()),
    }
}

fn memarg(out: &mut Vec<u8>, m: MemArg) {
    write_u32(out, m.align);
    write_u32(out, m.offset);
}

/// Encode a single instruction.
pub fn encode_instr(out: &mut Vec<u8>, i: &Instr) {
    use Instr::*;
    match i {
        Unreachable => out.push(0x00),
        Nop => out.push(0x01),
        Block(bt) => {
            out.push(0x02);
            block_type(out, *bt);
        }
        Loop(bt) => {
            out.push(0x03);
            block_type(out, *bt);
        }
        If(bt) => {
            out.push(0x04);
            block_type(out, *bt);
        }
        Else => out.push(0x05),
        End => out.push(0x0B),
        Br(d) => {
            out.push(0x0C);
            write_u32(out, *d);
        }
        BrIf(d) => {
            out.push(0x0D);
            write_u32(out, *d);
        }
        BrTable(t) => {
            out.push(0x0E);
            write_u32(out, t.targets.len() as u32);
            for &x in &t.targets {
                write_u32(out, x);
            }
            write_u32(out, t.default);
        }
        Return => out.push(0x0F),
        Call(f) => {
            out.push(0x10);
            write_u32(out, *f);
        }
        CallIndirect(t) => {
            out.push(0x11);
            write_u32(out, *t);
            out.push(0x00); // table index
        }
        Drop => out.push(0x1A),
        Select => out.push(0x1B),
        LocalGet(i) => {
            out.push(0x20);
            write_u32(out, *i);
        }
        LocalSet(i) => {
            out.push(0x21);
            write_u32(out, *i);
        }
        LocalTee(i) => {
            out.push(0x22);
            write_u32(out, *i);
        }
        GlobalGet(i) => {
            out.push(0x23);
            write_u32(out, *i);
        }
        GlobalSet(i) => {
            out.push(0x24);
            write_u32(out, *i);
        }
        I32Load(m) => {
            out.push(0x28);
            memarg(out, *m);
        }
        I64Load(m) => {
            out.push(0x29);
            memarg(out, *m);
        }
        F32Load(m) => {
            out.push(0x2A);
            memarg(out, *m);
        }
        F64Load(m) => {
            out.push(0x2B);
            memarg(out, *m);
        }
        I32Load8S(m) => {
            out.push(0x2C);
            memarg(out, *m);
        }
        I32Load8U(m) => {
            out.push(0x2D);
            memarg(out, *m);
        }
        I32Load16S(m) => {
            out.push(0x2E);
            memarg(out, *m);
        }
        I32Load16U(m) => {
            out.push(0x2F);
            memarg(out, *m);
        }
        I64Load8S(m) => {
            out.push(0x30);
            memarg(out, *m);
        }
        I64Load8U(m) => {
            out.push(0x31);
            memarg(out, *m);
        }
        I64Load16S(m) => {
            out.push(0x32);
            memarg(out, *m);
        }
        I64Load16U(m) => {
            out.push(0x33);
            memarg(out, *m);
        }
        I64Load32S(m) => {
            out.push(0x34);
            memarg(out, *m);
        }
        I64Load32U(m) => {
            out.push(0x35);
            memarg(out, *m);
        }
        I32Store(m) => {
            out.push(0x36);
            memarg(out, *m);
        }
        I64Store(m) => {
            out.push(0x37);
            memarg(out, *m);
        }
        F32Store(m) => {
            out.push(0x38);
            memarg(out, *m);
        }
        F64Store(m) => {
            out.push(0x39);
            memarg(out, *m);
        }
        I32Store8(m) => {
            out.push(0x3A);
            memarg(out, *m);
        }
        I32Store16(m) => {
            out.push(0x3B);
            memarg(out, *m);
        }
        I64Store8(m) => {
            out.push(0x3C);
            memarg(out, *m);
        }
        I64Store16(m) => {
            out.push(0x3D);
            memarg(out, *m);
        }
        I64Store32(m) => {
            out.push(0x3E);
            memarg(out, *m);
        }
        MemorySize => {
            out.push(0x3F);
            out.push(0x00);
        }
        MemoryGrow => {
            out.push(0x40);
            out.push(0x00);
        }
        I32Const(v) => {
            out.push(0x41);
            write_i32(out, *v);
        }
        I64Const(v) => {
            out.push(0x42);
            write_i64(out, *v);
        }
        F32Const(v) => {
            out.push(0x43);
            out.extend_from_slice(&v.to_le_bytes());
        }
        F64Const(v) => {
            out.push(0x44);
            out.extend_from_slice(&v.to_le_bytes());
        }
        other => out.push(numeric_opcode(other)),
    }
}

/// The opcode byte for a pure numeric instruction (no immediates).
fn numeric_opcode(i: &Instr) -> u8 {
    use Instr::*;
    match i {
        I32Eqz => 0x45,
        I32Eq => 0x46,
        I32Ne => 0x47,
        I32LtS => 0x48,
        I32LtU => 0x49,
        I32GtS => 0x4A,
        I32GtU => 0x4B,
        I32LeS => 0x4C,
        I32LeU => 0x4D,
        I32GeS => 0x4E,
        I32GeU => 0x4F,
        I64Eqz => 0x50,
        I64Eq => 0x51,
        I64Ne => 0x52,
        I64LtS => 0x53,
        I64LtU => 0x54,
        I64GtS => 0x55,
        I64GtU => 0x56,
        I64LeS => 0x57,
        I64LeU => 0x58,
        I64GeS => 0x59,
        I64GeU => 0x5A,
        F32Eq => 0x5B,
        F32Ne => 0x5C,
        F32Lt => 0x5D,
        F32Gt => 0x5E,
        F32Le => 0x5F,
        F32Ge => 0x60,
        F64Eq => 0x61,
        F64Ne => 0x62,
        F64Lt => 0x63,
        F64Gt => 0x64,
        F64Le => 0x65,
        F64Ge => 0x66,
        I32Clz => 0x67,
        I32Ctz => 0x68,
        I32Popcnt => 0x69,
        I32Add => 0x6A,
        I32Sub => 0x6B,
        I32Mul => 0x6C,
        I32DivS => 0x6D,
        I32DivU => 0x6E,
        I32RemS => 0x6F,
        I32RemU => 0x70,
        I32And => 0x71,
        I32Or => 0x72,
        I32Xor => 0x73,
        I32Shl => 0x74,
        I32ShrS => 0x75,
        I32ShrU => 0x76,
        I32Rotl => 0x77,
        I32Rotr => 0x78,
        I64Clz => 0x79,
        I64Ctz => 0x7A,
        I64Popcnt => 0x7B,
        I64Add => 0x7C,
        I64Sub => 0x7D,
        I64Mul => 0x7E,
        I64DivS => 0x7F,
        I64DivU => 0x80,
        I64RemS => 0x81,
        I64RemU => 0x82,
        I64And => 0x83,
        I64Or => 0x84,
        I64Xor => 0x85,
        I64Shl => 0x86,
        I64ShrS => 0x87,
        I64ShrU => 0x88,
        I64Rotl => 0x89,
        I64Rotr => 0x8A,
        F32Abs => 0x8B,
        F32Neg => 0x8C,
        F32Ceil => 0x8D,
        F32Floor => 0x8E,
        F32Trunc => 0x8F,
        F32Nearest => 0x90,
        F32Sqrt => 0x91,
        F32Add => 0x92,
        F32Sub => 0x93,
        F32Mul => 0x94,
        F32Div => 0x95,
        F32Min => 0x96,
        F32Max => 0x97,
        F32Copysign => 0x98,
        F64Abs => 0x99,
        F64Neg => 0x9A,
        F64Ceil => 0x9B,
        F64Floor => 0x9C,
        F64Trunc => 0x9D,
        F64Nearest => 0x9E,
        F64Sqrt => 0x9F,
        F64Add => 0xA0,
        F64Sub => 0xA1,
        F64Mul => 0xA2,
        F64Div => 0xA3,
        F64Min => 0xA4,
        F64Max => 0xA5,
        F64Copysign => 0xA6,
        I32WrapI64 => 0xA7,
        I32TruncF32S => 0xA8,
        I32TruncF32U => 0xA9,
        I32TruncF64S => 0xAA,
        I32TruncF64U => 0xAB,
        I64ExtendI32S => 0xAC,
        I64ExtendI32U => 0xAD,
        I64TruncF32S => 0xAE,
        I64TruncF32U => 0xAF,
        I64TruncF64S => 0xB0,
        I64TruncF64U => 0xB1,
        F32ConvertI32S => 0xB2,
        F32ConvertI32U => 0xB3,
        F32ConvertI64S => 0xB4,
        F32ConvertI64U => 0xB5,
        F32DemoteF64 => 0xB6,
        F64ConvertI32S => 0xB7,
        F64ConvertI32U => 0xB8,
        F64ConvertI64S => 0xB9,
        F64ConvertI64U => 0xBA,
        F64PromoteF32 => 0xBB,
        I32ReinterpretF32 => 0xBC,
        I64ReinterpretF64 => 0xBD,
        F32ReinterpretI32 => 0xBE,
        F64ReinterpretI64 => 0xBF,
        other => unreachable!("instruction {other:?} has immediates"),
    }
}
