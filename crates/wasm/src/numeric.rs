//! Exact WebAssembly numeric semantics shared by the interpreter and the
//! JIT's helper calls: NaN-propagating min/max, trapping float→int
//! truncations, and integer division rules.

/// Result of a trapping numeric operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumError {
    /// Division or remainder by zero.
    DivByZero,
    /// Signed overflow (`INT_MIN / -1`).
    Overflow,
    /// Float→int conversion of NaN or an out-of-range value.
    InvalidConversion,
}

/// wasm `fNN.min`: NaN-propagating, and `min(-0, +0) = -0`.
pub fn wasm_fmin<T: Float>(a: T, b: T) -> T {
    if a.is_nan() || b.is_nan() {
        return T::canonical_nan();
    }
    if a.eq_val(b) {
        // ±0 tie: negative zero wins for min → OR the sign bits.
        return T::from_bits_u64(a.bits() | b.bits());
    }
    if a.lt_val(b) {
        a
    } else {
        b
    }
}

/// wasm `fNN.max`: NaN-propagating, and `max(-0, +0) = +0`.
pub fn wasm_fmax<T: Float>(a: T, b: T) -> T {
    if a.is_nan() || b.is_nan() {
        return T::canonical_nan();
    }
    if a.eq_val(b) {
        // ±0 tie: positive zero wins for max → AND the sign bits.
        return T::from_bits_u64(a.bits() & b.bits());
    }
    if a.lt_val(b) {
        b
    } else {
        a
    }
}

/// Abstraction over f32/f64 for the helpers above. Sealed.
pub trait Float: Copy + private::Sealed {
    /// Bit pattern widened to u64.
    fn bits(self) -> u64;
    /// Reconstruct from (possibly widened) bits.
    fn from_bits_u64(bits: u64) -> Self;
    /// IEEE NaN check.
    fn is_nan(self) -> bool;
    /// IEEE equality.
    fn eq_val(self, other: Self) -> bool;
    /// IEEE less-than.
    fn lt_val(self, other: Self) -> bool;
    /// The canonical quiet NaN.
    fn canonical_nan() -> Self;
}

mod private {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

impl Float for f32 {
    fn bits(self) -> u64 {
        u64::from(self.to_bits())
    }
    fn from_bits_u64(bits: u64) -> f32 {
        f32::from_bits(bits as u32)
    }
    fn is_nan(self) -> bool {
        self.is_nan()
    }
    fn eq_val(self, other: f32) -> bool {
        self == other
    }
    fn lt_val(self, other: f32) -> bool {
        self < other
    }
    fn canonical_nan() -> f32 {
        f32::from_bits(0x7FC0_0000)
    }
}

impl Float for f64 {
    fn bits(self) -> u64 {
        self.to_bits()
    }
    fn from_bits_u64(bits: u64) -> f64 {
        f64::from_bits(bits)
    }
    fn is_nan(self) -> bool {
        self.is_nan()
    }
    fn eq_val(self, other: f64) -> bool {
        self == other
    }
    fn lt_val(self, other: f64) -> bool {
        self < other
    }
    fn canonical_nan() -> f64 {
        f64::from_bits(0x7FF8_0000_0000_0000)
    }
}

/// wasm `i32.trunc_fNN_s` (input widened to f64; exact for both widths).
///
/// # Errors
/// NaN or out-of-range values yield [`NumError::InvalidConversion`].
pub fn trunc_f_to_i32_s(v: f64) -> Result<i32, NumError> {
    if v.is_nan() {
        return Err(NumError::InvalidConversion);
    }
    let t = v.trunc();
    if t < -2_147_483_648.0 || t > 2_147_483_647.0 {
        return Err(NumError::InvalidConversion);
    }
    Ok(t as i32)
}

/// wasm `i32.trunc_fNN_u`.
///
/// # Errors
/// NaN or out-of-range values yield [`NumError::InvalidConversion`].
pub fn trunc_f_to_i32_u(v: f64) -> Result<u32, NumError> {
    if v.is_nan() {
        return Err(NumError::InvalidConversion);
    }
    let t = v.trunc();
    if t < 0.0 || t > 4_294_967_295.0 {
        return Err(NumError::InvalidConversion);
    }
    Ok(t as u32)
}

/// wasm `i64.trunc_fNN_s`.
///
/// # Errors
/// NaN or out-of-range values yield [`NumError::InvalidConversion`].
pub fn trunc_f_to_i64_s(v: f64) -> Result<i64, NumError> {
    if v.is_nan() {
        return Err(NumError::InvalidConversion);
    }
    let t = v.trunc();
    // 2^63 is exactly representable; i64::MAX is not. Valid range is
    // [-2^63, 2^63): the comparison below is exact in f64.
    if t < -9_223_372_036_854_775_808.0 || t >= 9_223_372_036_854_775_808.0 {
        return Err(NumError::InvalidConversion);
    }
    Ok(t as i64)
}

/// wasm `i64.trunc_fNN_u`.
///
/// # Errors
/// NaN or out-of-range values yield [`NumError::InvalidConversion`].
pub fn trunc_f_to_i64_u(v: f64) -> Result<u64, NumError> {
    if v.is_nan() {
        return Err(NumError::InvalidConversion);
    }
    let t = v.trunc();
    if t < 0.0 || t >= 18_446_744_073_709_551_616.0 {
        return Err(NumError::InvalidConversion);
    }
    Ok(t as u64)
}

/// wasm `i32.div_s`.
///
/// # Errors
/// Division by zero or `i32::MIN / -1`.
pub fn i32_div_s(a: i32, b: i32) -> Result<i32, NumError> {
    if b == 0 {
        return Err(NumError::DivByZero);
    }
    if a == i32::MIN && b == -1 {
        return Err(NumError::Overflow);
    }
    Ok(a.wrapping_div(b))
}

/// wasm `i32.rem_s` (`i32::MIN % -1 == 0`, no trap).
///
/// # Errors
/// Division by zero.
pub fn i32_rem_s(a: i32, b: i32) -> Result<i32, NumError> {
    if b == 0 {
        return Err(NumError::DivByZero);
    }
    Ok(a.wrapping_rem(b))
}

/// wasm `i64.div_s`.
///
/// # Errors
/// Division by zero or `i64::MIN / -1`.
pub fn i64_div_s(a: i64, b: i64) -> Result<i64, NumError> {
    if b == 0 {
        return Err(NumError::DivByZero);
    }
    if a == i64::MIN && b == -1 {
        return Err(NumError::Overflow);
    }
    Ok(a.wrapping_div(b))
}

/// wasm `i64.rem_s` (`i64::MIN % -1 == 0`, no trap).
///
/// # Errors
/// Division by zero.
pub fn i64_rem_s(a: i64, b: i64) -> Result<i64, NumError> {
    if b == 0 {
        return Err(NumError::DivByZero);
    }
    Ok(a.wrapping_rem(b))
}

/// Unsigned division helper shared by i32/i64 paths.
///
/// # Errors
/// Division by zero.
pub fn udiv<T: Unsigned>(a: T, b: T) -> Result<T, NumError> {
    if b.is_zero() {
        return Err(NumError::DivByZero);
    }
    Ok(a.div(b))
}

/// Unsigned remainder helper shared by i32/i64 paths.
///
/// # Errors
/// Division by zero.
pub fn urem<T: Unsigned>(a: T, b: T) -> Result<T, NumError> {
    if b.is_zero() {
        return Err(NumError::DivByZero);
    }
    Ok(a.rem(b))
}

/// Abstraction over u32/u64 for the helpers above. Sealed.
pub trait Unsigned: Copy + private2::Sealed {
    /// Zero check.
    fn is_zero(self) -> bool;
    /// Wrapping division (divisor nonzero).
    fn div(self, b: Self) -> Self;
    /// Wrapping remainder (divisor nonzero).
    fn rem(self, b: Self) -> Self;
}

mod private2 {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

impl Unsigned for u32 {
    fn is_zero(self) -> bool {
        self == 0
    }
    fn div(self, b: u32) -> u32 {
        self / b
    }
    fn rem(self, b: u32) -> u32 {
        self % b
    }
}

impl Unsigned for u64 {
    fn is_zero(self) -> bool {
        self == 0
    }
    fn div(self, b: u64) -> u64 {
        self / b
    }
    fn rem(self, b: u64) -> u64 {
        self % b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_nan_and_zero_rules() {
        assert!(wasm_fmin(f64::NAN, 1.0).is_nan());
        assert!(wasm_fmax(1.0, f64::NAN).is_nan());
        assert_eq!(wasm_fmin(-0.0f64, 0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(wasm_fmax(-0.0f64, 0.0).to_bits(), (0.0f64).to_bits());
        assert_eq!(wasm_fmin(1.0f32, 2.0), 1.0);
        assert_eq!(wasm_fmax(1.0f32, 2.0), 2.0);
        assert_eq!(wasm_fmin(-1.0f64, -2.0), -2.0);
    }

    #[test]
    fn trunc_ranges() {
        assert_eq!(trunc_f_to_i32_s(-2147483648.0), Ok(i32::MIN));
        assert_eq!(trunc_f_to_i32_s(2147483647.9), Ok(i32::MAX));
        assert!(trunc_f_to_i32_s(2147483648.0).is_err());
        assert!(trunc_f_to_i32_s(f64::NAN).is_err());
        assert_eq!(trunc_f_to_i32_u(4294967295.9), Ok(u32::MAX));
        assert!(trunc_f_to_i32_u(-1.0).is_err());
        assert_eq!(trunc_f_to_i32_u(-0.9), Ok(0));

        assert_eq!(trunc_f_to_i64_s(-9.223372036854776e18), Ok(i64::MIN));
        assert!(trunc_f_to_i64_s(9.223372036854776e18).is_err());
        assert_eq!(
            trunc_f_to_i64_u(1.8446744073709550e19).map(|v| v > 0),
            Ok(true)
        );
        assert!(trunc_f_to_i64_u(1.8446744073709552e19).is_err());
    }

    #[test]
    fn div_rules() {
        assert_eq!(i32_div_s(7, -2), Ok(-3));
        assert_eq!(i32_div_s(1, 0), Err(NumError::DivByZero));
        assert_eq!(i32_div_s(i32::MIN, -1), Err(NumError::Overflow));
        assert_eq!(i32_rem_s(i32::MIN, -1), Ok(0));
        assert_eq!(i64_div_s(i64::MIN, -1), Err(NumError::Overflow));
        assert_eq!(i64_rem_s(i64::MIN, -1), Ok(0));
        assert_eq!(udiv(7u32, 2), Ok(3));
        assert_eq!(urem(7u64, 4), Ok(3));
        assert_eq!(udiv(1u64, 0), Err(NumError::DivByZero));
    }
}

#[cfg(test)]
mod proptests {
    //! Randomized property checks on a deterministic SplitMix64 stream
    //! (this repo builds offline, so proptest is unavailable; fixed seeds
    //! keep failures reproducible).

    use super::*;

    struct Rng(u64);

    impl Rng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Any f64 bit pattern — includes NaNs, infinities, subnormals.
        fn any_f64(&mut self) -> f64 {
            f64::from_bits(self.next_u64())
        }

        fn any_i32(&mut self) -> i32 {
            self.next_u64() as i32
        }

        /// Uniform in `[lo, hi)` (finite operands only).
        fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
            let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            lo + u * (hi - lo)
        }
    }

    const CASES: u32 = 2000;

    /// Truncations agree with Rust's casts whenever they succeed, and
    /// fail exactly when the value is outside range.
    #[test]
    fn trunc_i32_matches_reference() {
        let mut rng = Rng(0xDEC0DE);
        for _ in 0..CASES {
            let v = rng.any_f64();
            match trunc_f_to_i32_s(v) {
                Ok(x) => {
                    assert!(!v.is_nan());
                    assert_eq!(x, v.trunc() as i32, "v = {v:?}");
                }
                Err(_) => {
                    assert!(
                        v.is_nan() || v.trunc() < i32::MIN as f64 || v.trunc() > i32::MAX as f64,
                        "v = {v:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn fmin_fmax_are_commutative_modulo_nan() {
        let mut rng = Rng(0xF10A7);
        for _ in 0..CASES {
            let (a, b) = (rng.any_f64(), rng.any_f64());
            let m1 = wasm_fmin(a, b);
            let m2 = wasm_fmin(b, a);
            assert_eq!(m1.is_nan(), m2.is_nan(), "a = {a:?}, b = {b:?}");
            if !m1.is_nan() {
                assert_eq!(m1.to_bits(), m2.to_bits(), "a = {a:?}, b = {b:?}");
            }
            let x1 = wasm_fmax(a, b);
            let x2 = wasm_fmax(b, a);
            assert_eq!(x1.is_nan(), x2.is_nan(), "a = {a:?}, b = {b:?}");
            if !x1.is_nan() {
                assert_eq!(x1.to_bits(), x2.to_bits(), "a = {a:?}, b = {b:?}");
            }
        }
    }

    /// min ≤ max for ordered operands.
    #[test]
    fn fmin_le_fmax() {
        let mut rng = Rng(0x3C0FE);
        for _ in 0..CASES {
            let a = rng.f64_in(-1e300, 1e300);
            let b = rng.f64_in(-1e300, 1e300);
            assert!(wasm_fmin(a, b) <= wasm_fmax(a, b), "a = {a}, b = {b}");
        }
    }

    #[test]
    fn div_rem_identity() {
        let mut rng = Rng(0xD1F);
        for _ in 0..CASES {
            let (a, b) = (rng.any_i32(), rng.any_i32());
            if let (Ok(q), Ok(r)) = (i32_div_s(a, b), i32_rem_s(a, b)) {
                assert_eq!(q.wrapping_mul(b).wrapping_add(r), a, "a = {a}, b = {b}");
            }
        }
    }
}
