//! Error types for module construction, validation and binary decoding.

use crate::types::ValType;
use std::fmt;

/// Errors from structural module queries and construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModuleError {
    /// A function index was out of range.
    FuncIndex(u32),
    /// A type index was out of range.
    TypeIndex(u32),
    /// A global index was out of range.
    GlobalIndex(u32),
    /// A local index was out of range.
    LocalIndex(u32),
}

impl fmt::Display for ModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleError::FuncIndex(i) => write!(f, "function index {i} out of range"),
            ModuleError::TypeIndex(i) => write!(f, "type index {i} out of range"),
            ModuleError::GlobalIndex(i) => write!(f, "global index {i} out of range"),
            ModuleError::LocalIndex(i) => write!(f, "local index {i} out of range"),
        }
    }
}

impl std::error::Error for ModuleError {}

/// Errors produced by the validator.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidateError {
    /// Underlying structural error.
    Module(ModuleError),
    /// A value of one type was found where another was expected.
    TypeMismatch {
        /// Which function the error occurred in.
        func: u32,
        /// Instruction offset within the function body.
        at: usize,
        /// Expected type.
        expected: ValType,
        /// Actual type found, if the stack was non-empty.
        found: Option<ValType>,
    },
    /// The operand stack was empty when a value was required.
    StackUnderflow {
        /// Which function.
        func: u32,
        /// Instruction offset.
        at: usize,
    },
    /// Branch depth exceeds the enclosing block nesting.
    BadBranchDepth {
        /// Which function.
        func: u32,
        /// Instruction offset.
        at: usize,
        /// The requested relative depth.
        depth: u32,
    },
    /// `else`/`end` without a matching opener, or a missing terminator.
    UnbalancedControl {
        /// Which function.
        func: u32,
        /// Instruction offset (or body length for missing `End`).
        at: usize,
    },
    /// Block left a wrong number/type of values on the stack.
    BlockArity {
        /// Which function.
        func: u32,
        /// Instruction offset.
        at: usize,
    },
    /// `global.set` of an immutable global.
    ImmutableGlobal {
        /// Which function.
        func: u32,
        /// Global index.
        global: u32,
    },
    /// A memory instruction was used but the module declares no memory.
    NoMemory {
        /// Which function.
        func: u32,
        /// Instruction offset.
        at: usize,
    },
    /// `call_indirect` was used but the module declares no table.
    NoTable {
        /// Which function.
        func: u32,
        /// Instruction offset.
        at: usize,
    },
    /// A global initializer's type does not match its declared type.
    GlobalInitType {
        /// Global index.
        global: u32,
    },
    /// An element segment references an out-of-range function or table slot.
    BadElemSegment {
        /// Segment index.
        segment: usize,
    },
    /// A data segment falls outside the declared initial memory.
    BadDataSegment {
        /// Segment index.
        segment: usize,
    },
    /// The start function has a non-empty signature.
    BadStartFunc,
    /// The function's signature declares more than one result (not in subset).
    UnsupportedMultiValue {
        /// Type index.
        type_idx: u32,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Module(e) => write!(f, "{e}"),
            ValidateError::TypeMismatch {
                func,
                at,
                expected,
                found,
            } => match found {
                Some(t) => write!(
                    f,
                    "type mismatch in func {func} at {at}: expected {expected}, found {t}"
                ),
                None => write!(
                    f,
                    "type mismatch in func {func} at {at}: expected {expected}, stack empty"
                ),
            },
            ValidateError::StackUnderflow { func, at } => {
                write!(f, "stack underflow in func {func} at {at}")
            }
            ValidateError::BadBranchDepth { func, at, depth } => {
                write!(
                    f,
                    "branch depth {depth} out of range in func {func} at {at}"
                )
            }
            ValidateError::UnbalancedControl { func, at } => {
                write!(f, "unbalanced control structure in func {func} at {at}")
            }
            ValidateError::BlockArity { func, at } => {
                write!(f, "wrong block result arity in func {func} at {at}")
            }
            ValidateError::ImmutableGlobal { func, global } => {
                write!(f, "global.set of immutable global {global} in func {func}")
            }
            ValidateError::NoMemory { func, at } => {
                write!(
                    f,
                    "memory instruction without memory in func {func} at {at}"
                )
            }
            ValidateError::NoTable { func, at } => {
                write!(f, "call_indirect without table in func {func} at {at}")
            }
            ValidateError::GlobalInitType { global } => {
                write!(f, "global {global} initializer type mismatch")
            }
            ValidateError::BadElemSegment { segment } => {
                write!(f, "element segment {segment} out of range")
            }
            ValidateError::BadDataSegment { segment } => {
                write!(f, "data segment {segment} out of initial memory range")
            }
            ValidateError::BadStartFunc => write!(f, "start function must have empty signature"),
            ValidateError::UnsupportedMultiValue { type_idx } => {
                write!(f, "type {type_idx} declares multiple results (unsupported)")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

impl From<ModuleError> for ValidateError {
    fn from(e: ModuleError) -> ValidateError {
        ValidateError::Module(e)
    }
}

/// Errors produced when decoding the binary format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended prematurely.
    UnexpectedEof,
    /// The magic/version header was wrong.
    BadHeader,
    /// An unknown section id was found.
    BadSection(u8),
    /// An unknown or unsupported opcode byte.
    BadOpcode(u8),
    /// An invalid type byte.
    BadType(u8),
    /// A LEB128 integer overflowed its target width.
    IntTooLong,
    /// A count or size field was implausibly large.
    BadCount(u64),
    /// A section's declared size did not match its content.
    SectionSize,
    /// Malformed UTF-8 in a name.
    BadName,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::BadHeader => write!(f, "bad wasm magic or version"),
            DecodeError::BadSection(id) => write!(f, "unknown section id {id}"),
            DecodeError::BadOpcode(op) => write!(f, "unknown or unsupported opcode 0x{op:02x}"),
            DecodeError::BadType(b) => write!(f, "invalid type byte 0x{b:02x}"),
            DecodeError::IntTooLong => write!(f, "LEB128 integer too long"),
            DecodeError::BadCount(n) => write!(f, "implausible count {n}"),
            DecodeError::SectionSize => write!(f, "section size mismatch"),
            DecodeError::BadName => write!(f, "invalid UTF-8 in name"),
        }
    }
}

impl std::error::Error for DecodeError {}
