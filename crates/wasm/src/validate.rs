//! Module validation and control-flow side-table construction.
//!
//! Validation performs full type-checking of every function body (the
//! standard wasm algorithm with unreachable-polymorphism) and, as a
//! byproduct, resolves all structured control flow into flat side tables:
//!
//! * for every `if`/`else`, the precomputed jump destination,
//! * for every `br`/`br_if`/`br_table`, a [`BranchDest`] carrying the
//!   absolute destination pc, the number of values the label keeps, and the
//!   operand-stack height the destination expects.
//!
//! Both the interpreter and the JIT consume these tables, so neither engine
//! needs a runtime label stack.

use crate::error::ValidateError;
use crate::instr::Instr;
use crate::module::Module;
use crate::types::{BlockType, Mutability, ValType, PAGE_SIZE};
use std::collections::HashMap;

/// Resolution of one branch edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchDest {
    /// Absolute instruction index execution continues at.
    pub dest_pc: u32,
    /// Number of top-of-stack values carried across the branch.
    pub keep: u8,
    /// Operand-stack height (excluding the kept values) at the destination.
    pub target_height: u32,
}

/// Per-function metadata produced by validation.
#[derive(Debug, Clone, Default)]
pub struct FuncMeta {
    /// Types of all locals: parameters first, then declared locals.
    pub local_types: Vec<ValType>,
    /// Number of parameters.
    pub n_params: u32,
    /// Result type, if the function returns a value.
    pub result: Option<ValType>,
    /// Worst-case operand stack depth.
    pub max_stack: u32,
    /// Per-instruction control word, aligned with the body:
    /// * `If` — pc to jump to when the condition is false,
    /// * `Else` — pc to jump to when reached by fallthrough,
    /// * `Br`/`BrIf`/`BrTable` — index into [`FuncMeta::branch_table`]
    ///   (`br_table` occupies `targets.len() + 1` consecutive entries,
    ///   default last).
    pub ctrl: Vec<u32>,
    /// Flat storage for resolved branch destinations.
    pub branch_table: Vec<BranchDest>,
    /// Operand-stack height (relative to the function's operand base)
    /// *before* each instruction executes. Engines use this to reconstruct
    /// canonical stack layouts at branch-target labels.
    pub height_at: Vec<u32>,
    /// Result types at every pc where a value is produced — unused by
    /// engines, retained for the cost model's operand-width accounting.
    pub body_len: u32,
}

/// Validation output for a whole module.
#[derive(Debug, Clone, Default)]
pub struct ModuleMeta {
    /// Metadata for each *defined* function (index parallel to
    /// `module.functions`, i.e. excluding imports).
    pub funcs: Vec<FuncMeta>,
}

/// Validate a module and build execution side-tables.
///
/// # Errors
/// Returns a [`ValidateError`] describing the first problem found.
pub fn validate(module: &Module) -> Result<ModuleMeta, ValidateError> {
    // Module-level checks.
    for (i, ty) in module.types.iter().enumerate() {
        if ty.results.len() > 1 {
            return Err(ValidateError::UnsupportedMultiValue { type_idx: i as u32 });
        }
    }
    for (i, g) in module.globals.iter().enumerate() {
        if g.init.ty() != g.ty.content {
            return Err(ValidateError::GlobalInitType { global: i as u32 });
        }
    }
    if let Some(start) = module.start {
        let ty = module.func_type(start)?;
        if !ty.params.is_empty() || !ty.results.is_empty() {
            return Err(ValidateError::BadStartFunc);
        }
    }
    for (si, seg) in module.elems.iter().enumerate() {
        let table = module
            .table
            .ok_or(ValidateError::BadElemSegment { segment: si })?;
        let end = seg.offset as u64 + seg.funcs.len() as u64;
        if end > table.limits.min as u64 {
            return Err(ValidateError::BadElemSegment { segment: si });
        }
        for &f in &seg.funcs {
            if f >= module.num_funcs() {
                return Err(ValidateError::BadElemSegment { segment: si });
            }
        }
    }
    for (si, seg) in module.data.iter().enumerate() {
        let mem = module
            .memory
            .ok_or(ValidateError::BadDataSegment { segment: si })?;
        let end = seg.offset as u64 + seg.bytes.len() as u64;
        if end > mem.limits.min as u64 * PAGE_SIZE as u64 {
            return Err(ValidateError::BadDataSegment { segment: si });
        }
    }

    let mut metas = Vec::with_capacity(module.functions.len());
    for (i, _) in module.functions.iter().enumerate() {
        let func_idx = module.num_imported_funcs() + i as u32;
        metas.push(validate_func(module, func_idx)?);
    }
    Ok(ModuleMeta { funcs: metas })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameKind {
    Func,
    Block,
    Loop,
    If,
    Else,
}

#[derive(Debug, Clone)]
struct Frame {
    kind: FrameKind,
    bt: BlockType,
    /// Operand-stack height at block entry.
    height: u32,
    /// pc of the opening instruction (Loop start for back-branches).
    start_pc: u32,
    unreachable: bool,
}

impl Frame {
    /// Types a branch to this label carries.
    fn label_arity(&self) -> u8 {
        match self.kind {
            FrameKind::Loop => 0,
            _ => self.bt.arity() as u8,
        }
    }

    fn label_type(&self) -> Option<ValType> {
        match self.kind {
            FrameKind::Loop => None,
            _ => self.bt.result(),
        }
    }
}

struct Checker<'m> {
    module: &'m Module,
    func: u32,
    locals: Vec<ValType>,
    stack: Vec<ValType>,
    frames: Vec<Frame>,
    max_stack: u32,
    meta: FuncMeta,
    /// end pc (and optional else pc) for each opener, from the pre-scan.
    end_of: HashMap<u32, u32>,
    else_of: HashMap<u32, u32>,
}

/// First pass: match every `block`/`loop`/`if` with its `else`/`end`.
fn scan_control(
    body: &[Instr],
    func: u32,
) -> Result<(HashMap<u32, u32>, HashMap<u32, u32>), ValidateError> {
    let mut end_of = HashMap::new();
    let mut else_of = HashMap::new();
    let mut stack: Vec<u32> = Vec::new(); // opener pcs; sentinel for function level
    let mut func_closed = false;
    for (pc, instr) in body.iter().enumerate() {
        if func_closed {
            return Err(ValidateError::UnbalancedControl { func, at: pc });
        }
        match instr {
            Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => stack.push(pc as u32),
            Instr::Else => {
                let &opener = stack
                    .last()
                    .ok_or(ValidateError::UnbalancedControl { func, at: pc })?;
                if !matches!(body[opener as usize], Instr::If(_)) || else_of.contains_key(&opener) {
                    return Err(ValidateError::UnbalancedControl { func, at: pc });
                }
                else_of.insert(opener, pc as u32);
            }
            Instr::End => match stack.pop() {
                Some(opener) => {
                    end_of.insert(opener, pc as u32);
                }
                None => func_closed = true, // the function's own End
            },
            _ => {}
        }
    }
    if !func_closed || !stack.is_empty() {
        return Err(ValidateError::UnbalancedControl {
            func,
            at: body.len(),
        });
    }
    Ok((end_of, else_of))
}

fn validate_func(module: &Module, func_idx: u32) -> Result<FuncMeta, ValidateError> {
    let f = module
        .defined_func(func_idx)
        .ok_or(crate::error::ModuleError::FuncIndex(func_idx))?;
    let ty = module.func_type(func_idx)?.clone();
    let (end_of, else_of) = scan_control(&f.body, func_idx)?;

    let mut locals = ty.params.clone();
    locals.extend_from_slice(&f.locals);

    let body_len = f.body.len();
    let mut ck = Checker {
        module,
        func: func_idx,
        locals,
        stack: Vec::new(),
        frames: vec![Frame {
            kind: FrameKind::Func,
            bt: match ty.result() {
                Some(t) => BlockType::Value(t),
                None => BlockType::Empty,
            },
            height: 0,
            start_pc: 0,
            unreachable: false,
        }],
        max_stack: 0,
        meta: FuncMeta {
            local_types: Vec::new(),
            n_params: ty.params.len() as u32,
            result: ty.result(),
            max_stack: 0,
            ctrl: vec![0; body_len],
            branch_table: Vec::new(),
            height_at: Vec::with_capacity(body_len),
            body_len: body_len as u32,
        },
        end_of,
        else_of,
    };
    ck.run(&f.body)?;
    let mut meta = ck.meta;
    meta.local_types = {
        let mut l = ty.params.clone();
        l.extend_from_slice(&f.locals);
        l
    };
    meta.max_stack = ck.max_stack;
    Ok(meta)
}

impl Checker<'_> {
    fn push(&mut self, t: ValType) {
        self.stack.push(t);
        self.max_stack = self.max_stack.max(self.stack.len() as u32);
    }

    fn top_frame(&self) -> &Frame {
        self.frames.last().expect("frame stack never empty")
    }

    /// Pop any value; returns `None` when polymorphic (unreachable code).
    fn pop_any(&mut self, at: usize) -> Result<Option<ValType>, ValidateError> {
        let fr = self.top_frame();
        if self.stack.len() as u32 == fr.height {
            if fr.unreachable {
                return Ok(None);
            }
            return Err(ValidateError::StackUnderflow {
                func: self.func,
                at,
            });
        }
        Ok(self.stack.pop())
    }

    fn pop_expect(&mut self, t: ValType, at: usize) -> Result<(), ValidateError> {
        match self.pop_any(at)? {
            None => Ok(()),
            Some(found) if found == t => Ok(()),
            Some(found) => Err(ValidateError::TypeMismatch {
                func: self.func,
                at,
                expected: t,
                found: Some(found),
            }),
        }
    }

    fn set_unreachable(&mut self) {
        let fr = self.frames.last_mut().expect("frame stack never empty");
        fr.unreachable = true;
        let h = fr.height;
        self.stack.truncate(h as usize);
    }

    fn frame_at_depth(&self, depth: u32, at: usize) -> Result<&Frame, ValidateError> {
        let n = self.frames.len();
        if (depth as usize) < n {
            Ok(&self.frames[n - 1 - depth as usize])
        } else {
            Err(ValidateError::BadBranchDepth {
                func: self.func,
                at,
                depth,
            })
        }
    }

    /// Check a branch's operands and produce its resolved destination.
    fn resolve_branch(&mut self, depth: u32, at: usize) -> Result<BranchDest, ValidateError> {
        let fr = self.frame_at_depth(depth, at)?.clone();
        // Branch operands: the label's types must be on top of the stack.
        if let Some(t) = fr.label_type() {
            self.pop_expect(t, at)?;
            self.push(t); // branch does not consume for fallthrough checks (br_if)
        }
        let dest_pc = match fr.kind {
            FrameKind::Loop => fr.start_pc + 1,
            FrameKind::Func => self.meta.body_len,
            _ => {
                // Forward: to just past the matching End.
                let end = *self
                    .end_of
                    .get(&fr.start_pc)
                    .expect("opener always has end after scan");
                end + 1
            }
        };
        Ok(BranchDest {
            dest_pc,
            keep: fr.label_arity(),
            target_height: fr.height,
        })
    }

    fn check_mem(&self, at: usize) -> Result<(), ValidateError> {
        if self.module.memory.is_none() {
            return Err(ValidateError::NoMemory {
                func: self.func,
                at,
            });
        }
        Ok(())
    }

    fn local_ty(&self, idx: u32, _at: usize) -> Result<ValType, ValidateError> {
        self.locals
            .get(idx as usize)
            .copied()
            .ok_or(ValidateError::Module(
                crate::error::ModuleError::LocalIndex(idx),
            ))
    }

    fn run(&mut self, body: &[Instr]) -> Result<(), ValidateError> {
        use Instr::*;
        for (at, instr) in body.iter().enumerate() {
            let pc = at as u32;
            self.meta.height_at.push(self.stack.len() as u32);
            match instr {
                Unreachable => self.set_unreachable(),
                Nop => {}

                Block(bt) | Loop(bt) => {
                    let kind = if matches!(instr, Block(_)) {
                        FrameKind::Block
                    } else {
                        FrameKind::Loop
                    };
                    self.frames.push(Frame {
                        kind,
                        bt: *bt,
                        height: self.stack.len() as u32,
                        start_pc: pc,
                        unreachable: false,
                    });
                }
                If(bt) => {
                    self.pop_expect(ValType::I32, at)?;
                    // Precompute the false-destination.
                    let end = *self.end_of.get(&pc).expect("scanned");
                    let false_dest = match self.else_of.get(&pc) {
                        Some(&e) => e + 1,
                        None => {
                            if bt.arity() != 0 {
                                // `if` with a result requires an else arm.
                                return Err(ValidateError::BlockArity {
                                    func: self.func,
                                    at,
                                });
                            }
                            end + 1
                        }
                    };
                    self.meta.ctrl[at] = false_dest;
                    self.frames.push(Frame {
                        kind: FrameKind::If,
                        bt: *bt,
                        height: self.stack.len() as u32,
                        start_pc: pc,
                        unreachable: false,
                    });
                }
                Else => {
                    // Close the then-arm like an End, reopen as else-arm.
                    let fr = self.frames.pop().expect("frame stack never empty");
                    if fr.kind != FrameKind::If {
                        return Err(ValidateError::UnbalancedControl {
                            func: self.func,
                            at,
                        });
                    }
                    self.close_frame(&fr, at)?;
                    self.stack.truncate(fr.height as usize);
                    // Fallthrough from then-arm jumps past the matching End.
                    let end = *self.end_of.get(&fr.start_pc).expect("scanned");
                    self.meta.ctrl[at] = end + 1;
                    self.frames.push(Frame {
                        kind: FrameKind::Else,
                        bt: fr.bt,
                        height: fr.height,
                        start_pc: fr.start_pc,
                        unreachable: false,
                    });
                }
                End => {
                    let fr = self.frames.pop().expect("frame stack never empty");
                    self.close_frame(&fr, at)?;
                    self.stack.truncate(fr.height as usize);
                    if let Some(t) = fr.bt.result() {
                        self.push(t);
                    }
                    if self.frames.is_empty() {
                        // Function end: must be the last instruction.
                        if at + 1 != body.len() {
                            return Err(ValidateError::UnbalancedControl {
                                func: self.func,
                                at,
                            });
                        }
                        return Ok(());
                    }
                }

                Br(depth) => {
                    let dest = self.resolve_branch(*depth, at)?;
                    // Br consumes the label values.
                    if dest.keep == 1 {
                        self.pop_any(at)?;
                    }
                    self.meta.ctrl[at] = self.meta.branch_table.len() as u32;
                    self.meta.branch_table.push(dest);
                    self.set_unreachable();
                }
                BrIf(depth) => {
                    self.pop_expect(ValType::I32, at)?;
                    let dest = self.resolve_branch(*depth, at)?;
                    self.meta.ctrl[at] = self.meta.branch_table.len() as u32;
                    self.meta.branch_table.push(dest);
                    // Fallthrough keeps the label values on the stack.
                }
                BrTable(bt) => {
                    self.pop_expect(ValType::I32, at)?;
                    let default = self.resolve_branch(bt.default, at)?;
                    let base = self.meta.branch_table.len() as u32;
                    self.meta.ctrl[at] = base;
                    let mut dests = Vec::with_capacity(bt.targets.len() + 1);
                    for &t in &bt.targets {
                        let d = self.resolve_branch(t, at)?;
                        if d.keep != default.keep {
                            return Err(ValidateError::BlockArity {
                                func: self.func,
                                at,
                            });
                        }
                        dests.push(d);
                    }
                    dests.push(default);
                    self.meta.branch_table.extend(dests);
                    if default.keep == 1 {
                        self.pop_any(at)?;
                    }
                    self.set_unreachable();
                }
                Return => {
                    if let Some(t) = self.meta.result {
                        self.pop_expect(t, at)?;
                    }
                    self.set_unreachable();
                }
                Call(fi) => {
                    let ty = self.module.func_type(*fi)?.clone();
                    for &p in ty.params.iter().rev() {
                        self.pop_expect(p, at)?;
                    }
                    if let Some(r) = ty.result() {
                        self.push(r);
                    }
                }
                CallIndirect(type_idx) => {
                    if self.module.table.is_none() {
                        return Err(ValidateError::NoTable {
                            func: self.func,
                            at,
                        });
                    }
                    let ty = self
                        .module
                        .types
                        .get(*type_idx as usize)
                        .ok_or(crate::error::ModuleError::TypeIndex(*type_idx))?
                        .clone();
                    self.pop_expect(ValType::I32, at)?; // table index
                    for &p in ty.params.iter().rev() {
                        self.pop_expect(p, at)?;
                    }
                    if let Some(r) = ty.result() {
                        self.push(r);
                    }
                }

                Drop => {
                    self.pop_any(at)?;
                }
                Select => {
                    self.pop_expect(ValType::I32, at)?;
                    let b = self.pop_any(at)?;
                    let a = self.pop_any(at)?;
                    match (a, b) {
                        (Some(x), Some(y)) if x != y => {
                            return Err(ValidateError::TypeMismatch {
                                func: self.func,
                                at,
                                expected: x,
                                found: Some(y),
                            })
                        }
                        _ => {}
                    }
                    // Push the known type, or default to i32 in dead code.
                    self.push(a.or(b).unwrap_or(ValType::I32));
                }

                LocalGet(i) => {
                    let t = self.local_ty(*i, at)?;
                    self.push(t);
                }
                LocalSet(i) => {
                    let t = self.local_ty(*i, at)?;
                    self.pop_expect(t, at)?;
                }
                LocalTee(i) => {
                    let t = self.local_ty(*i, at)?;
                    self.pop_expect(t, at)?;
                    self.push(t);
                }
                GlobalGet(i) => {
                    let g = self
                        .module
                        .globals
                        .get(*i as usize)
                        .ok_or(crate::error::ModuleError::GlobalIndex(*i))?;
                    self.push(g.ty.content);
                }
                GlobalSet(i) => {
                    let g = *self
                        .module
                        .globals
                        .get(*i as usize)
                        .ok_or(crate::error::ModuleError::GlobalIndex(*i))?;
                    if g.ty.mutability != Mutability::Var {
                        return Err(ValidateError::ImmutableGlobal {
                            func: self.func,
                            global: *i,
                        });
                    }
                    self.pop_expect(g.ty.content, at)?;
                }

                MemorySize => {
                    self.check_mem(at)?;
                    self.push(ValType::I32);
                }
                MemoryGrow => {
                    self.check_mem(at)?;
                    self.pop_expect(ValType::I32, at)?;
                    self.push(ValType::I32);
                }

                I32Const(_) => self.push(ValType::I32),
                I64Const(_) => self.push(ValType::I64),
                F32Const(_) => self.push(ValType::F32),
                F64Const(_) => self.push(ValType::F64),

                _ => {
                    if let Some(acc) = instr.mem_access() {
                        self.check_mem(at)?;
                        if acc.is_store {
                            self.pop_expect(acc.ty, at)?;
                            self.pop_expect(ValType::I32, at)?;
                        } else {
                            self.pop_expect(ValType::I32, at)?;
                            self.push(acc.ty);
                        }
                    } else {
                        self.check_numeric(instr, at)?;
                    }
                }
            }
        }
        // scan_control guarantees the final End returns above.
        unreachable!("function body must end with End")
    }

    /// Check that a frame being closed ends with exactly its result types
    /// above its entry height. Called after the frame has been popped, so it
    /// validates against the closed frame itself, not the new top frame.
    fn close_frame(&mut self, fr: &Frame, at: usize) -> Result<(), ValidateError> {
        if fr.unreachable {
            // Polymorphic: anything goes; the caller truncates the stack.
            return Ok(());
        }
        let expected = fr.height + fr.bt.arity() as u32;
        if self.stack.len() as u32 != expected {
            return Err(ValidateError::BlockArity {
                func: self.func,
                at,
            });
        }
        if let Some(t) = fr.bt.result() {
            let found = *self.stack.last().expect("arity checked above");
            if found != t {
                return Err(ValidateError::TypeMismatch {
                    func: self.func,
                    at,
                    expected: t,
                    found: Some(found),
                });
            }
        }
        Ok(())
    }

    /// Type-check the pure numeric instructions (comparisons, arithmetic,
    /// conversions) from signature tables.
    fn check_numeric(&mut self, instr: &Instr, at: usize) -> Result<(), ValidateError> {
        use Instr::*;
        use ValType::*;
        // (pops, push)
        let (pops, push): (&[ValType], Option<ValType>) = match instr {
            I32Eqz => (&[I32], Some(I32)),
            I64Eqz => (&[I64], Some(I32)),
            I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS
            | I32GeU => (&[I32, I32], Some(I32)),
            I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS
            | I64GeU => (&[I64, I64], Some(I32)),
            F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge => (&[F32, F32], Some(I32)),
            F64Eq | F64Ne | F64Lt | F64Gt | F64Le | F64Ge => (&[F64, F64], Some(I32)),

            I32Clz | I32Ctz | I32Popcnt => (&[I32], Some(I32)),
            I64Clz | I64Ctz | I64Popcnt => (&[I64], Some(I64)),
            I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS | I32RemU | I32And | I32Or
            | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr => (&[I32, I32], Some(I32)),
            I64Add | I64Sub | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU | I64And | I64Or
            | I64Xor | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr => (&[I64, I64], Some(I64)),

            F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt => {
                (&[F32], Some(F32))
            }
            F64Abs | F64Neg | F64Ceil | F64Floor | F64Trunc | F64Nearest | F64Sqrt => {
                (&[F64], Some(F64))
            }
            F32Add | F32Sub | F32Mul | F32Div | F32Min | F32Max | F32Copysign => {
                (&[F32, F32], Some(F32))
            }
            F64Add | F64Sub | F64Mul | F64Div | F64Min | F64Max | F64Copysign => {
                (&[F64, F64], Some(F64))
            }

            I32WrapI64 => (&[I64], Some(I32)),
            I32TruncF32S | I32TruncF32U => (&[F32], Some(I32)),
            I32TruncF64S | I32TruncF64U => (&[F64], Some(I32)),
            I64ExtendI32S | I64ExtendI32U => (&[I32], Some(I64)),
            I64TruncF32S | I64TruncF32U => (&[F32], Some(I64)),
            I64TruncF64S | I64TruncF64U => (&[F64], Some(I64)),
            F32ConvertI32S | F32ConvertI32U => (&[I32], Some(F32)),
            F32ConvertI64S | F32ConvertI64U => (&[I64], Some(F32)),
            F32DemoteF64 => (&[F64], Some(F32)),
            F64ConvertI32S | F64ConvertI32U => (&[I32], Some(F64)),
            F64ConvertI64S | F64ConvertI64U => (&[I64], Some(F64)),
            F64PromoteF32 => (&[F32], Some(F64)),
            I32ReinterpretF32 => (&[F32], Some(I32)),
            I64ReinterpretF64 => (&[F64], Some(I64)),
            F32ReinterpretI32 => (&[I32], Some(F32)),
            F64ReinterpretI64 => (&[I64], Some(F64)),

            other => unreachable!("non-numeric instruction {other:?} reached check_numeric"),
        };
        for &p in pops.iter().rev() {
            self.pop_expect(p, at)?;
        }
        if let Some(t) = push {
            self.push(t);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::FuncType;

    fn single_func(params: Vec<ValType>, results: Vec<ValType>, body: Vec<Instr>) -> Module {
        let mut m = Module::new();
        let t = m.intern_type(FuncType::new(params, results));
        m.functions
            .push(crate::module::Function::new(t, vec![], body));
        m
    }

    #[test]
    fn validates_simple_add() {
        use Instr::*;
        let m = single_func(
            vec![ValType::I32, ValType::I32],
            vec![ValType::I32],
            vec![LocalGet(0), LocalGet(1), I32Add, End],
        );
        let meta = validate(&m).unwrap();
        assert_eq!(meta.funcs[0].max_stack, 2);
        assert_eq!(meta.funcs[0].result, Some(ValType::I32));
    }

    #[test]
    fn rejects_type_mismatch() {
        use Instr::*;
        let m = single_func(
            vec![ValType::I32],
            vec![ValType::I32],
            vec![LocalGet(0), F64Const(1.0), I32Add, End],
        );
        assert!(matches!(
            validate(&m),
            Err(ValidateError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_stack_underflow() {
        use Instr::*;
        let m = single_func(vec![], vec![], vec![I32Add, End]);
        assert!(matches!(
            validate(&m),
            Err(ValidateError::StackUnderflow { .. })
        ));
    }

    #[test]
    fn rejects_unbalanced_control() {
        use Instr::*;
        let m = single_func(vec![], vec![], vec![Block(BlockType::Empty), End]);
        assert!(matches!(
            validate(&m),
            Err(ValidateError::UnbalancedControl { .. })
        ));
    }

    #[test]
    fn rejects_bad_branch_depth() {
        use Instr::*;
        let m = single_func(vec![], vec![], vec![Br(3), End]);
        assert!(matches!(
            validate(&m),
            Err(ValidateError::BadBranchDepth { .. })
        ));
    }

    #[test]
    fn loop_branch_goes_backwards() {
        use Instr::*;
        // loop { br_if 0 (i32.const 0) } end
        let m = single_func(
            vec![],
            vec![],
            vec![
                Loop(BlockType::Empty), // pc 0
                I32Const(0),            // pc 1
                BrIf(0),                // pc 2
                End,                    // pc 3
                End,                    // pc 4
            ],
        );
        let meta = validate(&m).unwrap();
        let f = &meta.funcs[0];
        let dest = f.branch_table[f.ctrl[2] as usize];
        assert_eq!(dest.dest_pc, 1); // just past the Loop opener
        assert_eq!(dest.keep, 0);
    }

    #[test]
    fn block_branch_goes_forward() {
        use Instr::*;
        // block { br 0 } end
        let m = single_func(
            vec![],
            vec![],
            vec![
                Block(BlockType::Empty), // pc 0
                Br(0),                   // pc 1
                End,                     // pc 2
                End,                     // pc 3
            ],
        );
        let meta = validate(&m).unwrap();
        let f = &meta.funcs[0];
        let dest = f.branch_table[f.ctrl[1] as usize];
        assert_eq!(dest.dest_pc, 3); // just past the block's End
    }

    #[test]
    fn branch_to_function_label_is_return() {
        use Instr::*;
        let m = single_func(vec![], vec![ValType::I32], vec![I32Const(7), Br(0), End]);
        let meta = validate(&m).unwrap();
        let f = &meta.funcs[0];
        let dest = f.branch_table[f.ctrl[1] as usize];
        assert_eq!(dest.dest_pc, 3); // past the final End
        assert_eq!(dest.keep, 1);
        assert_eq!(dest.target_height, 0);
    }

    #[test]
    fn if_without_else_needs_empty_type() {
        use Instr::*;
        let bad = single_func(
            vec![],
            vec![ValType::I32],
            vec![
                I32Const(1),
                If(BlockType::Value(ValType::I32)),
                I32Const(2),
                End,
                End,
            ],
        );
        assert!(validate(&bad).is_err());
    }

    #[test]
    fn if_else_false_dest_resolved() {
        use Instr::*;
        // if (i32.const 1) { nop } else { nop } end
        let m = single_func(
            vec![],
            vec![],
            vec![
                I32Const(1),          // 0
                If(BlockType::Empty), // 1
                Nop,                  // 2
                Else,                 // 3
                Nop,                  // 4
                End,                  // 5
                End,                  // 6
            ],
        );
        let meta = validate(&m).unwrap();
        let f = &meta.funcs[0];
        assert_eq!(f.ctrl[1], 4); // false → first instr of else arm
        assert_eq!(f.ctrl[3], 6); // fallthrough at Else → past the End
    }

    #[test]
    fn rejects_immutable_global_set() {
        let mut mb = ModuleBuilder::new();
        let g = mb.global(Mutability::Const, crate::value::Value::I32(1));
        let f = mb.begin_func("f", FuncType::new(vec![], vec![]));
        {
            let mut b = mb.func_mut(f);
            b.i32_const(3);
            b.emit(Instr::GlobalSet(g.0));
        }
        let m = mb.finish();
        assert!(matches!(
            validate(&m),
            Err(ValidateError::ImmutableGlobal { .. })
        ));
    }

    #[test]
    fn rejects_memory_ops_without_memory() {
        use Instr::*;
        let m = single_func(
            vec![],
            vec![],
            vec![
                I32Const(0),
                I32Load(crate::instr::MemArg::default()),
                Drop,
                End,
            ],
        );
        assert!(matches!(validate(&m), Err(ValidateError::NoMemory { .. })));
    }

    #[test]
    fn rejects_bad_data_segment() {
        let mut mb = ModuleBuilder::new();
        mb.memory(1, None);
        mb.data(PAGE_SIZE as u32 - 1, vec![0, 0]);
        let m = mb.finish();
        assert!(matches!(
            validate(&m),
            Err(ValidateError::BadDataSegment { .. })
        ));
    }

    #[test]
    fn validates_br_table() {
        use Instr::*;
        let m = single_func(
            vec![ValType::I32],
            vec![],
            vec![
                Block(BlockType::Empty), // 0
                Block(BlockType::Empty), // 1
                LocalGet(0),             // 2
                BrTable(Box::new(crate::instr::BrTable {
                    targets: vec![0, 1],
                    default: 1,
                })), // 3
                End,                     // 4
                End,                     // 5
                End,                     // 6
            ],
        );
        let meta = validate(&m).unwrap();
        let f = &meta.funcs[0];
        let base = f.ctrl[3] as usize;
        assert_eq!(f.branch_table[base].dest_pc, 5); // inner block end+1
        assert_eq!(f.branch_table[base + 1].dest_pc, 6); // outer block end+1
        assert_eq!(f.branch_table[base + 2].dest_pc, 6); // default = depth 1
    }

    #[test]
    fn unreachable_code_is_polymorphic() {
        use Instr::*;
        // After `unreachable`, bogus-but-balanced code must validate.
        let m = single_func(vec![], vec![ValType::I32], vec![Unreachable, I32Add, End]);
        validate(&m).unwrap();
    }

    #[test]
    fn select_requires_matching_types() {
        use Instr::*;
        let m = single_func(
            vec![],
            vec![],
            vec![I32Const(1), F64Const(2.0), I32Const(0), Select, Drop, End],
        );
        assert!(matches!(
            validate(&m),
            Err(ValidateError::TypeMismatch { .. })
        ));
    }
}
