//! Core WebAssembly type definitions: value types, function signatures,
//! limits, and the types of memories, tables and globals.

use std::fmt;

/// One of WebAssembly's four primitive value types.
///
/// The paper (§2.1) notes: "There are only four value types in the language:
/// 32 and 64-bit variants of integers and floating point numbers."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValType {
    /// 32-bit integer (sign-agnostic).
    I32,
    /// 64-bit integer (sign-agnostic).
    I64,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
}

impl ValType {
    /// Size of a value of this type in bytes when stored in linear memory.
    pub const fn size_bytes(self) -> u32 {
        match self {
            ValType::I32 | ValType::F32 => 4,
            ValType::I64 | ValType::F64 => 8,
        }
    }

    /// Whether this is an integer type.
    pub const fn is_int(self) -> bool {
        matches!(self, ValType::I32 | ValType::I64)
    }

    /// Whether this is a floating-point type.
    pub const fn is_float(self) -> bool {
        matches!(self, ValType::F32 | ValType::F64)
    }

    /// The binary-format type byte (as in the wasm spec).
    pub const fn to_byte(self) -> u8 {
        match self {
            ValType::I32 => 0x7F,
            ValType::I64 => 0x7E,
            ValType::F32 => 0x7D,
            ValType::F64 => 0x7C,
        }
    }

    /// Parse a binary-format type byte.
    pub const fn from_byte(b: u8) -> Option<ValType> {
        match b {
            0x7F => Some(ValType::I32),
            0x7E => Some(ValType::I64),
            0x7D => Some(ValType::F32),
            0x7C => Some(ValType::F64),
            _ => None,
        }
    }
}

impl fmt::Display for ValType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValType::I32 => "i32",
            ValType::I64 => "i64",
            ValType::F32 => "f32",
            ValType::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// A function signature: parameter types and result types.
///
/// The MVP subset implemented here allows at most one result, matching the
/// original WebAssembly specification the paper's runtimes targeted.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FuncType {
    /// Parameter value types, in order.
    pub params: Vec<ValType>,
    /// Result value types (0 or 1 entries in the MVP subset).
    pub results: Vec<ValType>,
}

impl FuncType {
    /// Create a new function type.
    pub fn new(params: Vec<ValType>, results: Vec<ValType>) -> FuncType {
        FuncType { params, results }
    }

    /// The single result type, if any.
    pub fn result(&self) -> Option<ValType> {
        self.results.first().copied()
    }
}

impl fmt::Display for FuncType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ") -> (")?;
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

/// Size limits for memories and tables, in units of pages or elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Limits {
    /// Initial size.
    pub min: u32,
    /// Optional maximum size.
    pub max: Option<u32>,
}

impl Limits {
    /// Create limits with the given minimum and optional maximum.
    pub fn new(min: u32, max: Option<u32>) -> Limits {
        Limits { min, max }
    }

    /// Whether `n` is within these limits.
    pub fn contains(&self, n: u32) -> bool {
        n >= self.min && self.max.map_or(true, |m| n <= m)
    }
}

/// The type of a linear memory: its limits in 64 KiB pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryType {
    /// Page limits.
    pub limits: Limits,
}

/// Size of one WebAssembly page in bytes (64 KiB).
pub const PAGE_SIZE: usize = 65536;

/// Maximum number of pages addressable with a 32-bit pointer (4 GiB).
pub const MAX_PAGES: u32 = 65536;

/// The type of a function table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableType {
    /// Element count limits.
    pub limits: Limits,
}

/// Mutability of a global.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutability {
    /// The global may not be written after instantiation.
    Const,
    /// The global may be written with `global.set`.
    Var,
}

/// The type of a global variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalType {
    /// The value type stored in the global.
    pub content: ValType,
    /// Whether the global is mutable.
    pub mutability: Mutability,
}

/// The type of a block/loop/if construct.
///
/// The MVP subset supports empty blocks and blocks producing one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlockType {
    /// Block produces no values.
    #[default]
    Empty,
    /// Block produces a single value of the given type.
    Value(ValType),
}

impl BlockType {
    /// Number of results this block type produces (0 or 1).
    pub fn arity(self) -> usize {
        match self {
            BlockType::Empty => 0,
            BlockType::Value(_) => 1,
        }
    }

    /// The result type, if any.
    pub fn result(self) -> Option<ValType> {
        match self {
            BlockType::Empty => None,
            BlockType::Value(v) => Some(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valtype_sizes() {
        assert_eq!(ValType::I32.size_bytes(), 4);
        assert_eq!(ValType::F32.size_bytes(), 4);
        assert_eq!(ValType::I64.size_bytes(), 8);
        assert_eq!(ValType::F64.size_bytes(), 8);
    }

    #[test]
    fn valtype_byte_roundtrip() {
        for t in [ValType::I32, ValType::I64, ValType::F32, ValType::F64] {
            assert_eq!(ValType::from_byte(t.to_byte()), Some(t));
        }
        assert_eq!(ValType::from_byte(0x00), None);
    }

    #[test]
    fn limits_contains() {
        let l = Limits::new(2, Some(10));
        assert!(!l.contains(1));
        assert!(l.contains(2));
        assert!(l.contains(10));
        assert!(!l.contains(11));
        let unbounded = Limits::new(0, None);
        assert!(unbounded.contains(u32::MAX));
    }

    #[test]
    fn functype_display() {
        let ft = FuncType::new(vec![ValType::I32, ValType::F64], vec![ValType::I64]);
        assert_eq!(ft.to_string(), "(i32, f64) -> (i64)");
        assert_eq!(ft.result(), Some(ValType::I64));
    }

    #[test]
    fn blocktype_arity() {
        assert_eq!(BlockType::Empty.arity(), 0);
        assert_eq!(BlockType::Value(ValType::F32).arity(), 1);
        assert_eq!(BlockType::Value(ValType::F32).result(), Some(ValType::F32));
    }
}
