//! Runtime values for the four WebAssembly primitive types.

use crate::types::ValType;
use std::fmt;

/// A runtime WebAssembly value.
///
/// Floats are stored by bit pattern where equality matters (NaN-safe
/// comparisons are provided via [`Value::bits_eq`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
}

impl Value {
    /// The type of this value.
    pub fn ty(&self) -> ValType {
        match self {
            Value::I32(_) => ValType::I32,
            Value::I64(_) => ValType::I64,
            Value::F32(_) => ValType::F32,
            Value::F64(_) => ValType::F64,
        }
    }

    /// A zero value of the given type (wasm's default for locals/globals).
    pub fn zero(ty: ValType) -> Value {
        match ty {
            ValType::I32 => Value::I32(0),
            ValType::I64 => Value::I64(0),
            ValType::F32 => Value::F32(0.0),
            ValType::F64 => Value::F64(0.0),
        }
    }

    /// Extract an `i32`, if this value has type i32.
    pub fn as_i32(&self) -> Option<i32> {
        match *self {
            Value::I32(v) => Some(v),
            _ => None,
        }
    }

    /// Extract an `i64`, if this value has type i64.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Extract an `f32`, if this value has type f32.
    pub fn as_f32(&self) -> Option<f32> {
        match *self {
            Value::F32(v) => Some(v),
            _ => None,
        }
    }

    /// Extract an `f64`, if this value has type f64.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The raw 64-bit representation used by engines' untyped stacks.
    ///
    /// i32 is zero-extended; floats are stored by IEEE bit pattern.
    pub fn to_bits(self) -> u64 {
        match self {
            Value::I32(v) => v as u32 as u64,
            Value::I64(v) => v as u64,
            Value::F32(v) => v.to_bits() as u64,
            Value::F64(v) => v.to_bits(),
        }
    }

    /// Reconstruct a value of type `ty` from its raw 64-bit representation.
    pub fn from_bits(ty: ValType, bits: u64) -> Value {
        match ty {
            ValType::I32 => Value::I32(bits as u32 as i32),
            ValType::I64 => Value::I64(bits as i64),
            ValType::F32 => Value::F32(f32::from_bits(bits as u32)),
            ValType::F64 => Value::F64(f64::from_bits(bits)),
        }
    }

    /// Bit-pattern equality: identical to `==` for integers, and compares
    /// float bit patterns so that NaN == NaN (useful for differential tests).
    pub fn bits_eq(&self, other: &Value) -> bool {
        self.ty() == other.ty() && self.to_bits() == other.to_bits()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}:i32"),
            Value::I64(v) => write!(f, "{v}:i64"),
            Value::F32(v) => write!(f, "{v}:f32"),
            Value::F64(v) => write!(f, "{v}:f64"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I32(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::I32(v as i32)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::I64(v as i64)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::F32(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let vals = [
            Value::I32(-1),
            Value::I64(i64::MIN),
            Value::F32(1.5),
            Value::F64(-0.0),
            Value::F64(f64::NAN),
        ];
        for v in vals {
            let rt = Value::from_bits(v.ty(), v.to_bits());
            assert!(v.bits_eq(&rt), "{v} != {rt}");
        }
    }

    #[test]
    fn i32_is_zero_extended() {
        assert_eq!(Value::I32(-1).to_bits(), 0xFFFF_FFFF);
    }

    #[test]
    fn nan_bits_eq() {
        let a = Value::F64(f64::NAN);
        let b = Value::F64(f64::NAN);
        assert!(a.bits_eq(&b));
        assert!(!Value::F64(0.0).bits_eq(&Value::F64(-0.0)));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3u32), Value::I32(3));
        assert_eq!(Value::from(3i64).ty(), ValType::I64);
        assert_eq!(Value::zero(ValType::F32), Value::F32(0.0));
    }
}
