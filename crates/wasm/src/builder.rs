//! Ergonomic builders for modules and function bodies.
//!
//! The higher-level kernel DSL (`lb-dsl`) lowers onto these builders; they
//! can also be used directly:
//!
//! ```rust
//! use lb_wasm::builder::ModuleBuilder;
//! use lb_wasm::types::{FuncType, ValType};
//! use lb_wasm::instr::Instr;
//!
//! let mut mb = ModuleBuilder::new();
//! let add = mb.begin_func("add", FuncType::new(vec![ValType::I32, ValType::I32],
//!                                              vec![ValType::I32]));
//! {
//!     let mut f = mb.func_mut(add);
//!     f.emit(Instr::LocalGet(0));
//!     f.emit(Instr::LocalGet(1));
//!     f.emit(Instr::I32Add);
//! }
//! mb.export_func("add", add);
//! let module = mb.finish();
//! assert!(module.exported_func("add").is_some());
//! ```

use crate::instr::{BrTable, Instr, MemArg};
use crate::module::{
    DataSegment, ElemSegment, Export, ExportKind, Function, Global, Import, Module,
};
use crate::types::{
    BlockType, FuncType, GlobalType, Limits, MemoryType, Mutability, TableType, ValType,
};
use crate::value::Value;

/// Handle to a function being built (its index in the function index space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuncId(pub u32);

/// Handle to a declared local (parameter or extra local).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalId(pub u32);

/// Handle to a declared global.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalId(pub u32);

/// Builder for a [`Module`].
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    module: Module,
    funcs_in_progress: Vec<FuncInProgress>,
}

#[derive(Debug)]
struct FuncInProgress {
    type_idx: u32,
    n_params: u32,
    locals: Vec<ValType>,
    body: Vec<Instr>,
    name: Option<String>,
}

impl ModuleBuilder {
    /// A fresh, empty module builder.
    pub fn new() -> ModuleBuilder {
        ModuleBuilder::default()
    }

    /// Declare the module's linear memory (initial and optional max pages).
    pub fn memory(&mut self, initial_pages: u32, max_pages: Option<u32>) -> &mut Self {
        self.module.memory = Some(MemoryType {
            limits: Limits::new(initial_pages, max_pages),
        });
        self
    }

    /// Declare the function table with `n` fixed elements.
    pub fn table(&mut self, n: u32) -> &mut Self {
        self.module.table = Some(TableType::fixed(n));
        self
    }

    /// Add an element segment setting table slots starting at `offset`.
    pub fn elems(&mut self, offset: u32, funcs: Vec<FuncId>) -> &mut Self {
        self.module.elems.push(ElemSegment {
            offset,
            funcs: funcs.into_iter().map(|f| f.0).collect(),
        });
        self
    }

    /// Add a data segment initializing memory at `offset`.
    pub fn data(&mut self, offset: u32, bytes: Vec<u8>) -> &mut Self {
        self.module.data.push(DataSegment { offset, bytes });
        self
    }

    /// Declare a global with a constant initial value.
    pub fn global(&mut self, mutability: Mutability, init: Value) -> GlobalId {
        self.module.globals.push(Global {
            ty: GlobalType {
                content: init.ty(),
                mutability,
            },
            init,
        });
        GlobalId((self.module.globals.len() - 1) as u32)
    }

    /// Declare an imported host function. All imports must be declared
    /// before the first `begin_func` (the wasm index space requires it).
    ///
    /// # Panics
    /// Panics if a defined function has already been started.
    pub fn import_func(&mut self, module: &str, name: &str, ty: FuncType) -> FuncId {
        assert!(
            self.funcs_in_progress.is_empty() && self.module.functions.is_empty(),
            "imports must be declared before defined functions"
        );
        let type_idx = self.module.intern_type(ty);
        self.module.imports.push(Import {
            module: module.to_string(),
            name: name.to_string(),
            type_idx,
        });
        FuncId((self.module.imports.len() - 1) as u32)
    }

    /// Begin a new defined function with the given debug name and signature.
    /// Returns its handle; populate the body via [`ModuleBuilder::func_mut`].
    pub fn begin_func(&mut self, name: &str, ty: FuncType) -> FuncId {
        let n_params = ty.params.len() as u32;
        let type_idx = self.module.intern_type(ty);
        let idx = self.module.num_imported_funcs() + self.funcs_in_progress.len() as u32;
        self.funcs_in_progress.push(FuncInProgress {
            type_idx,
            n_params,
            locals: Vec::new(),
            body: Vec::new(),
            name: Some(name.to_string()),
        });
        FuncId(idx)
    }

    /// Access the body builder for a function created with `begin_func`.
    ///
    /// # Panics
    /// Panics if `id` does not refer to an in-progress defined function.
    pub fn func_mut(&mut self, id: FuncId) -> FuncBody<'_> {
        let ni = self.module.num_imported_funcs();
        let fip = self
            .funcs_in_progress
            .get_mut((id.0 - ni) as usize)
            .expect("not an in-progress function");
        FuncBody { fip }
    }

    /// Export a function under `name`.
    pub fn export_func(&mut self, name: &str, id: FuncId) -> &mut Self {
        self.module.exports.push(Export {
            name: name.to_string(),
            kind: ExportKind::Func(id.0),
        });
        self
    }

    /// Export the linear memory under `name`.
    pub fn export_memory(&mut self, name: &str) -> &mut Self {
        self.module.exports.push(Export {
            name: name.to_string(),
            kind: ExportKind::Memory,
        });
        self
    }

    /// Set the start function.
    pub fn start(&mut self, id: FuncId) -> &mut Self {
        self.module.start = Some(id.0);
        self
    }

    /// Finish building: seals all function bodies (appending the implicit
    /// terminating `End`) and returns the module.
    pub fn finish(mut self) -> Module {
        for fip in self.funcs_in_progress.drain(..) {
            let mut body = fip.body;
            body.push(Instr::End);
            let mut f = Function::new(fip.type_idx, fip.locals, body);
            f.name = fip.name;
            self.module.functions.push(f);
        }
        self.module
    }
}

/// Mutable view over an in-progress function body.
#[derive(Debug)]
pub struct FuncBody<'a> {
    fip: &'a mut FuncInProgress,
}

impl FuncBody<'_> {
    /// Declare an extra local of the given type; returns its index handle.
    pub fn local(&mut self, ty: ValType) -> LocalId {
        self.fip.locals.push(ty);
        LocalId(self.fip.n_params + self.fip.locals.len() as u32 - 1)
    }

    /// The `i`-th parameter as a local handle.
    pub fn param(&self, i: u32) -> LocalId {
        assert!(i < self.fip.n_params, "parameter index out of range");
        LocalId(i)
    }

    /// Append a raw instruction.
    pub fn emit(&mut self, i: Instr) -> &mut Self {
        self.fip.body.push(i);
        self
    }

    /// Append many raw instructions.
    pub fn emit_all<I: IntoIterator<Item = Instr>>(&mut self, it: I) -> &mut Self {
        self.fip.body.extend(it);
        self
    }

    /// Current instruction count (useful for tests).
    pub fn len(&self) -> usize {
        self.fip.body.len()
    }

    /// Whether the body is still empty.
    pub fn is_empty(&self) -> bool {
        self.fip.body.is_empty()
    }

    // ── structured-control sugar ───────────────────────────────────

    /// Emit `block bt … end` around the body built by `f`.
    pub fn block(&mut self, bt: BlockType, f: impl FnOnce(&mut Self)) -> &mut Self {
        self.emit(Instr::Block(bt));
        f(self);
        self.emit(Instr::End)
    }

    /// Emit `loop bt … end` around the body built by `f`.
    pub fn loop_(&mut self, bt: BlockType, f: impl FnOnce(&mut Self)) -> &mut Self {
        self.emit(Instr::Loop(bt));
        f(self);
        self.emit(Instr::End)
    }

    /// Emit `if bt … end` (no else) around the body built by `then`.
    pub fn if_(&mut self, bt: BlockType, then: impl FnOnce(&mut Self)) -> &mut Self {
        self.emit(Instr::If(bt));
        then(self);
        self.emit(Instr::End)
    }

    /// Emit `if bt … else … end`.
    pub fn if_else(
        &mut self,
        bt: BlockType,
        then: impl FnOnce(&mut Self),
        els: impl FnOnce(&mut Self),
    ) -> &mut Self {
        self.emit(Instr::If(bt));
        then(self);
        self.emit(Instr::Else);
        els(self);
        self.emit(Instr::End)
    }

    // ── common shorthands ──────────────────────────────────────────

    /// Push an i32 constant.
    pub fn i32_const(&mut self, v: i32) -> &mut Self {
        self.emit(Instr::I32Const(v))
    }

    /// Push an i64 constant.
    pub fn i64_const(&mut self, v: i64) -> &mut Self {
        self.emit(Instr::I64Const(v))
    }

    /// Push an f64 constant.
    pub fn f64_const(&mut self, v: f64) -> &mut Self {
        self.emit(Instr::F64Const(v))
    }

    /// Read a local.
    pub fn get(&mut self, l: LocalId) -> &mut Self {
        self.emit(Instr::LocalGet(l.0))
    }

    /// Write a local.
    pub fn set(&mut self, l: LocalId) -> &mut Self {
        self.emit(Instr::LocalSet(l.0))
    }

    /// Tee a local.
    pub fn tee(&mut self, l: LocalId) -> &mut Self {
        self.emit(Instr::LocalTee(l.0))
    }

    /// Branch to the `depth`-th enclosing label.
    pub fn br(&mut self, depth: u32) -> &mut Self {
        self.emit(Instr::Br(depth))
    }

    /// Conditional branch.
    pub fn br_if(&mut self, depth: u32) -> &mut Self {
        self.emit(Instr::BrIf(depth))
    }

    /// Indexed branch.
    pub fn br_table(&mut self, targets: Vec<u32>, default: u32) -> &mut Self {
        self.emit(Instr::BrTable(Box::new(BrTable { targets, default })))
    }

    /// Call a function.
    pub fn call(&mut self, f: FuncId) -> &mut Self {
        self.emit(Instr::Call(f.0))
    }

    /// f64 load at constant offset.
    pub fn f64_load(&mut self, offset: u32) -> &mut Self {
        self.emit(Instr::F64Load(MemArg::offset(offset)))
    }

    /// f64 store at constant offset.
    pub fn f64_store(&mut self, offset: u32) -> &mut Self {
        self.emit(Instr::F64Store(MemArg::offset(offset)))
    }

    /// i32 load at constant offset.
    pub fn i32_load(&mut self, offset: u32) -> &mut Self {
        self.emit(Instr::I32Load(MemArg::offset(offset)))
    }

    /// i32 store at constant offset.
    pub fn i32_store(&mut self, offset: u32) -> &mut Self {
        self.emit(Instr::I32Store(MemArg::offset(offset)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_add_function() {
        let mut mb = ModuleBuilder::new();
        let add = mb.begin_func(
            "add",
            FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]),
        );
        {
            let mut f = mb.func_mut(add);
            let p0 = f.param(0);
            let p1 = f.param(1);
            f.get(p0).get(p1).emit(Instr::I32Add);
        }
        mb.export_func("add", add);
        let m = mb.finish();
        assert_eq!(m.functions.len(), 1);
        let body = &m.functions[0].body;
        assert_eq!(body.last(), Some(&Instr::End));
        assert_eq!(body.len(), 4);
        assert_eq!(m.exported_func("add"), Some(0));
    }

    #[test]
    fn imports_shift_function_indices() {
        let mut mb = ModuleBuilder::new();
        let imp = mb.import_func("env", "h", FuncType::new(vec![], vec![]));
        let f = mb.begin_func("f", FuncType::new(vec![], vec![]));
        assert_eq!(imp.0, 0);
        assert_eq!(f.0, 1);
        let m = mb.finish();
        assert_eq!(m.num_imported_funcs(), 1);
        assert_eq!(m.num_funcs(), 2);
    }

    #[test]
    fn structured_sugar_balances() {
        let mut mb = ModuleBuilder::new();
        let f = mb.begin_func("f", FuncType::new(vec![], vec![]));
        {
            let mut b = mb.func_mut(f);
            b.block(BlockType::Empty, |b| {
                b.loop_(BlockType::Empty, |b| {
                    b.i32_const(0);
                    b.br_if(1);
                });
            });
        }
        let m = mb.finish();
        let body = &m.functions[0].body;
        let opens = body.iter().filter(|i| i.is_block_start()).count();
        let ends = body.iter().filter(|i| matches!(i, Instr::End)).count();
        assert_eq!(opens + 1, ends); // +1 for the function's own End
    }

    #[test]
    fn locals_numbered_after_params() {
        let mut mb = ModuleBuilder::new();
        let f = mb.begin_func("f", FuncType::new(vec![ValType::I32], vec![]));
        let (l0, l1);
        {
            let mut b = mb.func_mut(f);
            l0 = b.local(ValType::F64);
            l1 = b.local(ValType::I64);
        }
        assert_eq!(l0.0, 1);
        assert_eq!(l1.0, 2);
        let m = mb.finish();
        assert_eq!(m.functions[0].locals, vec![ValType::F64, ValType::I64]);
    }
}
