//! A WAT-like pretty-printer for modules, used in error messages and
//! debugging dumps (`Module::to_wat_string` via [`print_module`]).

use crate::instr::Instr;
use crate::module::Module;
use std::fmt::Write;

/// Render a module in a WAT-like textual form.
///
/// The output is for human consumption (diagnostics, test failure dumps);
/// it is not guaranteed to be parseable by external WAT tooling.
pub fn print_module(m: &Module) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "(module");
    for (i, ty) in m.types.iter().enumerate() {
        let _ = writeln!(s, "  (type {i} {ty})");
    }
    if let Some(mem) = m.memory {
        let _ = writeln!(
            s,
            "  (memory {}{})",
            mem.limits.min,
            mem.limits.max.map(|x| format!(" {x}")).unwrap_or_default()
        );
    }
    if let Some(t) = m.table {
        let _ = writeln!(s, "  (table {} funcref)", t.limits.min);
    }
    for (i, g) in m.globals.iter().enumerate() {
        let _ = writeln!(s, "  (global {i} {} {})", g.ty.content, g.init);
    }
    for imp in &m.imports {
        let _ = writeln!(s, "  (import \"{}\" \"{}\" (func))", imp.module, imp.name);
    }
    for (fi, f) in m.functions.iter().enumerate() {
        let idx = m.num_imported_funcs() + fi as u32;
        let ty = &m.types[f.type_idx as usize];
        let _ = writeln!(s, "  (func ${} {}", m.func_name(idx), ty);
        if !f.locals.is_empty() {
            let locals: Vec<String> = f.locals.iter().map(|l| l.to_string()).collect();
            let _ = writeln!(s, "    (local {})", locals.join(" "));
        }
        let mut indent = 2usize;
        for (pc, i) in f.body.iter().enumerate() {
            if matches!(i, Instr::End | Instr::Else) {
                indent = indent.saturating_sub(1);
            }
            let pad = "  ".repeat(indent + 1);
            let _ = writeln!(s, "{pad}{pc:4}: {}", print_instr(i));
            if i.is_block_start() || matches!(i, Instr::Else) {
                indent += 1;
            }
        }
        let _ = writeln!(s, "  )");
    }
    for e in &m.exports {
        let _ = writeln!(s, "  (export \"{}\" {:?})", e.name, e.kind);
    }
    s.push(')');
    s
}

/// Render one instruction in a WAT-like form.
pub fn print_instr(i: &Instr) -> String {
    use Instr::*;
    match i {
        Block(bt) => format!("block {bt:?}"),
        Loop(bt) => format!("loop {bt:?}"),
        If(bt) => format!("if {bt:?}"),
        Br(d) => format!("br {d}"),
        BrIf(d) => format!("br_if {d}"),
        BrTable(t) => format!("br_table {:?} default={}", t.targets, t.default),
        Call(f) => format!("call {f}"),
        CallIndirect(t) => format!("call_indirect (type {t})"),
        LocalGet(i) => format!("local.get {i}"),
        LocalSet(i) => format!("local.set {i}"),
        LocalTee(i) => format!("local.tee {i}"),
        GlobalGet(i) => format!("global.get {i}"),
        GlobalSet(i) => format!("global.set {i}"),
        I32Const(v) => format!("i32.const {v}"),
        I64Const(v) => format!("i64.const {v}"),
        F32Const(v) => format!("f32.const {v}"),
        F64Const(v) => format!("f64.const {v}"),
        other => {
            if let Some(a) = other.mem_access() {
                let op = format!("{other:?}");
                let name = op.split('(').next().unwrap_or(&op);
                format!("{} offset={}", name.to_lowercase(), a.memarg.offset)
            } else {
                format!("{other:?}").to_lowercase()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::{FuncType, ValType};

    #[test]
    fn prints_something_sensible() {
        let mut mb = ModuleBuilder::new();
        mb.memory(1, None);
        let f = mb.begin_func(
            "double",
            FuncType::new(vec![ValType::I32], vec![ValType::I32]),
        );
        {
            let mut b = mb.func_mut(f);
            let p = b.param(0);
            b.get(p).get(p).emit(Instr::I32Add);
        }
        mb.export_func("double", f);
        let m = mb.finish();
        let s = print_module(&m);
        assert!(s.contains("(module"));
        assert!(s.contains("$double"));
        assert!(s.contains("local.get 0"));
        assert!(s.contains("i32add"));
        assert!(s.contains("(memory 1)"));
    }

    #[test]
    fn mem_instrs_show_offset() {
        let s = print_instr(&Instr::F64Load(crate::instr::MemArg::offset(16)));
        assert!(s.contains("offset=16"), "{s}");
    }
}
