//! # lb-wasm — the WebAssembly substrate
//!
//! A from-scratch implementation of the WebAssembly MVP numeric subset used
//! by the *Leaps and bounds* (IISWC 2022) reproduction: the module model,
//! typed instruction set, ergonomic builders, a full validator producing
//! flat control side-tables, and the standard binary format codec.
//!
//! This crate is purely structural — execution engines live in `lb-interp`
//! (a Wasm3-style interpreter) and `lb-jit` (an x86-64 baseline JIT), and
//! the bounds-checked linear memory lives in `lb-core`.
//!
//! ## Example
//!
//! ```rust
//! use lb_wasm::builder::ModuleBuilder;
//! use lb_wasm::types::{FuncType, ValType};
//! use lb_wasm::instr::Instr;
//! use lb_wasm::validate::validate;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new();
//! let sq = mb.begin_func("square", FuncType::new(vec![ValType::I32], vec![ValType::I32]));
//! {
//!     let f = &mut mb.func_mut(sq);
//!     f.emit(Instr::LocalGet(0));
//!     f.emit(Instr::LocalGet(0));
//!     f.emit(Instr::I32Mul);
//! }
//! mb.export_func("square", sq);
//! let module = mb.finish();
//! let meta = validate(&module)?;
//! assert_eq!(meta.funcs.len(), 1);
//!
//! // Round-trip through the standard binary format.
//! let bytes = lb_wasm::binary::encode(&module);
//! let decoded = lb_wasm::binary::decode(&bytes)?;
//! assert_eq!(decoded, module);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod binary;
pub mod builder;
pub mod error;
pub mod fmt;
pub mod instr;
pub mod module;
pub mod numeric;
pub mod types;
pub mod validate;
pub mod value;

pub use error::{DecodeError, ModuleError, ValidateError};
pub use instr::{Instr, MemArg};
pub use module::Module;
pub use types::{BlockType, FuncType, Limits, MemoryType, ValType, MAX_PAGES, PAGE_SIZE};
pub use validate::{validate, FuncMeta, ModuleMeta};
pub use value::Value;
