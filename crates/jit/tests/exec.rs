//! End-to-end JIT execution tests: semantics, traps, strategies, calls,
//! tiering — everything runs real generated x86-64 code.

use lb_core::exec::{Engine, Linker};
use lb_core::{BoundsStrategy, MemoryConfig, TrapKind};
use lb_jit::{JitEngine, JitProfile};
use lb_wasm::builder::ModuleBuilder;
use lb_wasm::instr::{Instr, MemArg};
use lb_wasm::types::{BlockType, FuncType, Mutability, ValType};
use lb_wasm::{Module, Value};

fn engines() -> Vec<JitEngine> {
    vec![
        JitEngine::new(JitProfile::wavm()),
        JitEngine::new(JitProfile::wasmtime()),
        JitEngine::new(JitProfile::v8()),
    ]
}

fn run_with(
    engine: &JitEngine,
    module: &Module,
    strategy: BoundsStrategy,
    func: &str,
    args: &[Value],
) -> Result<Option<Value>, lb_core::Trap> {
    let loaded = engine.load(module).expect("load");
    let config = MemoryConfig::new(strategy, 0, 64).with_reserve(1 << 24);
    let mut inst = loaded.instantiate(&config, &Linker::new()).expect("inst");
    inst.invoke(func, args)
}

fn run1(module: &Module, func: &str, args: &[Value]) -> Option<Value> {
    run_with(
        &JitEngine::new(JitProfile::wavm()),
        module,
        BoundsStrategy::Trap,
        func,
        args,
    )
    .unwrap()
}

fn i32_module(name: &str, params: usize, body: Vec<Instr>) -> Module {
    let mut mb = ModuleBuilder::new();
    let f = mb.begin_func(
        name,
        FuncType::new(vec![ValType::I32; params], vec![ValType::I32]),
    );
    mb.func_mut(f).emit_all(body);
    mb.export_func(name, f);
    mb.finish()
}

#[test]
fn constant_and_add() {
    let m = i32_module(
        "f",
        2,
        vec![Instr::LocalGet(0), Instr::LocalGet(1), Instr::I32Add],
    );
    for e in engines() {
        let r = run_with(&e, &m, BoundsStrategy::Trap, "f", &[19.into(), 23.into()]).unwrap();
        assert_eq!(r, Some(Value::I32(42)), "engine {}", e.name());
    }
}

#[test]
fn loop_sum() {
    let mut mb = ModuleBuilder::new();
    let f = mb.begin_func("sum", FuncType::new(vec![ValType::I32], vec![ValType::I32]));
    {
        let mut b = mb.func_mut(f);
        let n = b.param(0);
        let acc = b.local(ValType::I32);
        b.loop_(BlockType::Empty, |b| {
            b.get(acc).get(n).emit(Instr::I32Add).set(acc);
            b.get(n).i32_const(1).emit(Instr::I32Sub).tee(n);
            b.br_if(0);
        });
        b.get(acc);
    }
    mb.export_func("sum", f);
    let m = mb.finish();
    for e in engines() {
        let r = run_with(&e, &m, BoundsStrategy::Trap, "sum", &[Value::I32(1000)]).unwrap();
        assert_eq!(r, Some(Value::I32(500500)), "engine {}", e.name());
    }
}

#[test]
fn fib_recursion_and_calls() {
    let mut mb = ModuleBuilder::new();
    let fib = mb.begin_func("fib", FuncType::new(vec![ValType::I32], vec![ValType::I32]));
    {
        let mut b = mb.func_mut(fib);
        let n = b.param(0);
        b.get(n).i32_const(2).emit(Instr::I32LtS);
        b.if_else(
            BlockType::Value(ValType::I32),
            |b| {
                b.get(n);
            },
            |b| {
                b.get(n).i32_const(1).emit(Instr::I32Sub).call(fib);
                b.get(n).i32_const(2).emit(Instr::I32Sub).call(fib);
                b.emit(Instr::I32Add);
            },
        );
    }
    mb.export_func("fib", fib);
    let m = mb.finish();
    for e in engines() {
        let r = run_with(&e, &m, BoundsStrategy::Trap, "fib", &[Value::I32(15)]).unwrap();
        assert_eq!(r, Some(Value::I32(610)), "engine {}", e.name());
    }
}

#[test]
fn float_math() {
    let mut mb = ModuleBuilder::new();
    let f = mb.begin_func(
        "quad",
        FuncType::new(vec![ValType::F64, ValType::F64], vec![ValType::F64]),
    );
    {
        let mut b = mb.func_mut(f);
        let (x, y) = (b.param(0), b.param(1));
        // sqrt(x*x + y*y)
        b.get(x).get(x).emit(Instr::F64Mul);
        b.get(y).get(y).emit(Instr::F64Mul);
        b.emit(Instr::F64Add).emit(Instr::F64Sqrt);
    }
    mb.export_func("quad", f);
    let m = mb.finish();
    let r = run1(&m, "quad", &[Value::F64(3.0), Value::F64(4.0)]);
    assert_eq!(r, Some(Value::F64(5.0)));
}

#[test]
fn division_semantics() {
    let div = i32_module(
        "div",
        2,
        vec![Instr::LocalGet(0), Instr::LocalGet(1), Instr::I32DivS],
    );
    assert_eq!(
        run1(&div, "div", &[Value::I32(-7), Value::I32(2)]),
        Some(Value::I32(-3))
    );
    let e = JitEngine::new(JitProfile::wavm());
    let t = run_with(&e, &div, BoundsStrategy::Trap, "div", &[1.into(), 0.into()]).unwrap_err();
    assert_eq!(*t.kind(), TrapKind::IntegerDivByZero);
    let t = run_with(
        &e,
        &div,
        BoundsStrategy::Trap,
        "div",
        &[i32::MIN.into(), Value::I32(-1)],
    )
    .unwrap_err();
    assert_eq!(*t.kind(), TrapKind::IntegerOverflow);

    let rem = i32_module(
        "rem",
        2,
        vec![Instr::LocalGet(0), Instr::LocalGet(1), Instr::I32RemS],
    );
    assert_eq!(
        run1(&rem, "rem", &[i32::MIN.into(), Value::I32(-1)]),
        Some(Value::I32(0))
    );
}

fn memory_module() -> Module {
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(4));
    let f = mb.begin_func(
        "poke",
        FuncType::new(vec![ValType::I32], vec![ValType::I32]),
    );
    {
        let mut b = mb.func_mut(f);
        let p = b.param(0);
        b.get(p).i32_load(0);
    }
    mb.export_func("poke", f);
    let g = mb.begin_func(
        "store",
        FuncType::new(vec![ValType::I32, ValType::I32], vec![]),
    );
    {
        let mut b = mb.func_mut(g);
        let (a, v) = (b.param(0), b.param(1));
        b.get(a).get(v).i32_store(0);
    }
    mb.export_func("store", g);
    mb.finish()
}

#[test]
fn memory_roundtrip_all_strategies() {
    let m = memory_module();
    for e in engines() {
        for s in BoundsStrategy::ALL {
            if s == BoundsStrategy::Uffd && !lb_core::uffd::sigbus_mode_available() {
                continue;
            }
            let loaded = e.load(&m).unwrap();
            let config = MemoryConfig::new(s, 1, 4).with_reserve(1 << 24);
            let mut inst = loaded.instantiate(&config, &Linker::new()).unwrap();
            inst.invoke("store", &[Value::I32(1000), Value::I32(0x5A5A)])
                .unwrap();
            let r = inst.invoke("poke", &[Value::I32(1000)]).unwrap();
            assert_eq!(r, Some(Value::I32(0x5A5A)), "{} {}", e.name(), s);
        }
    }
}

#[test]
fn oob_traps_under_checking_strategies() {
    let m = memory_module();
    let mut strategies = vec![BoundsStrategy::Trap, BoundsStrategy::Mprotect];
    if lb_core::uffd::sigbus_mode_available() {
        strategies.push(BoundsStrategy::Uffd);
    }
    for e in engines() {
        for &s in &strategies {
            let loaded = e.load(&m).unwrap();
            let config = MemoryConfig::new(s, 1, 4).with_reserve(1 << 24);
            let mut inst = loaded.instantiate(&config, &Linker::new()).unwrap();
            let t = inst.invoke("poke", &[Value::I32(65536 + 8)]).unwrap_err();
            assert_eq!(*t.kind(), TrapKind::OutOfBounds, "{} {}", e.name(), s);
            // Instance is still usable after the trap.
            assert!(inst.invoke("poke", &[Value::I32(0)]).is_ok());
        }
    }
}

#[test]
fn clamp_strategy_redirects() {
    let m = memory_module();
    let e = JitEngine::new(JitProfile::wavm());
    let loaded = e.load(&m).unwrap();
    let config = MemoryConfig::new(BoundsStrategy::Clamp, 1, 1).with_reserve(1 << 24);
    let mut inst = loaded.instantiate(&config, &Linker::new()).unwrap();
    inst.invoke("store", &[Value::I32(65536 - 4), Value::I32(77)])
        .unwrap();
    // OOB read clamps to the last word.
    let r = inst.invoke("poke", &[Value::I32(1 << 20)]).unwrap();
    assert_eq!(r, Some(Value::I32(77)));
}

#[test]
fn memory_grow_and_size() {
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(3));
    let f = mb.begin_func(
        "grow",
        FuncType::new(vec![ValType::I32], vec![ValType::I32]),
    );
    {
        let mut b = mb.func_mut(f);
        let p = b.param(0);
        b.get(p).emit(Instr::MemoryGrow);
        b.i32_const(100).emit(Instr::I32Mul);
        b.emit(Instr::MemorySize).emit(Instr::I32Add);
    }
    mb.export_func("grow", f);
    let m = mb.finish();
    for s in [BoundsStrategy::Mprotect, BoundsStrategy::Trap] {
        let e = JitEngine::new(JitProfile::wavm());
        let loaded = e.load(&m).unwrap();
        let config = MemoryConfig::new(s, 1, 3).with_reserve(1 << 24);
        let mut inst = loaded.instantiate(&config, &Linker::new()).unwrap();
        assert_eq!(
            inst.invoke("grow", &[Value::I32(1)]).unwrap(),
            Some(Value::I32(102)),
            "{s}"
        );
        assert_eq!(
            inst.invoke("grow", &[Value::I32(5)]).unwrap(),
            Some(Value::I32(-98)),
            "{s}"
        );
    }
}

#[test]
fn call_indirect_dispatch_and_traps() {
    let mut mb = ModuleBuilder::new();
    mb.table(3);
    let ty = FuncType::new(vec![ValType::I32], vec![ValType::I32]);
    let double = mb.begin_func("double", ty.clone());
    {
        let mut b = mb.func_mut(double);
        let p = b.param(0);
        b.get(p).get(p).emit(Instr::I32Add);
    }
    let square = mb.begin_func("square", ty.clone());
    {
        let mut b = mb.func_mut(square);
        let p = b.param(0);
        b.get(p).get(p).emit(Instr::I32Mul);
    }
    let wrong = mb.begin_func("wrong", FuncType::new(vec![], vec![]));
    mb.func_mut(wrong).emit(Instr::Nop);
    let disp = mb.begin_func(
        "disp",
        FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]),
    );
    {
        let mut b = mb.func_mut(disp);
        let which = b.param(0);
        let x = b.param(1);
        b.get(x).get(which);
        b.emit(Instr::CallIndirect(0));
    }
    mb.elems(0, vec![double, square, wrong]);
    mb.export_func("disp", disp);
    let m = mb.finish();

    for e in engines() {
        let loaded = e.load(&m).unwrap();
        let config = MemoryConfig::new(BoundsStrategy::Trap, 0, 0);
        let mut inst = loaded.instantiate(&config, &Linker::new()).unwrap();
        assert_eq!(
            inst.invoke("disp", &[Value::I32(0), Value::I32(21)])
                .unwrap(),
            Some(Value::I32(42)),
            "{}",
            e.name()
        );
        assert_eq!(
            inst.invoke("disp", &[Value::I32(1), Value::I32(7)])
                .unwrap(),
            Some(Value::I32(49))
        );
        let t = inst
            .invoke("disp", &[Value::I32(2), Value::I32(7)])
            .unwrap_err();
        assert_eq!(*t.kind(), TrapKind::IndirectCallTypeMismatch);
        let t = inst
            .invoke("disp", &[Value::I32(9), Value::I32(7)])
            .unwrap_err();
        assert_eq!(*t.kind(), TrapKind::TableOutOfBounds);
    }
}

#[test]
fn br_table_and_select() {
    let mut mb = ModuleBuilder::new();
    let f = mb.begin_func("sel", FuncType::new(vec![ValType::I32], vec![ValType::I32]));
    {
        let mut b = mb.func_mut(f);
        let n = b.param(0);
        b.block(BlockType::Empty, |b| {
            b.block(BlockType::Empty, |b| {
                b.block(BlockType::Empty, |b| {
                    b.get(n);
                    b.br_table(vec![0, 1], 2);
                });
                b.i32_const(10);
                b.emit(Instr::Return);
            });
            b.i32_const(20);
            b.emit(Instr::Return);
        });
        // select(99, 100, n == 7)
        b.i32_const(99).i32_const(100);
        b.get(n).i32_const(7).emit(Instr::I32Eq);
        b.emit(Instr::Select);
    }
    mb.export_func("sel", f);
    let m = mb.finish();
    assert_eq!(run1(&m, "sel", &[Value::I32(0)]), Some(Value::I32(10)));
    assert_eq!(run1(&m, "sel", &[Value::I32(1)]), Some(Value::I32(20)));
    assert_eq!(run1(&m, "sel", &[Value::I32(7)]), Some(Value::I32(99)));
    assert_eq!(run1(&m, "sel", &[Value::I32(9)]), Some(Value::I32(100)));
}

#[test]
fn globals_and_host_imports() {
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Arc;

    let mut mb = ModuleBuilder::new();
    let tick = mb.import_func(
        "env",
        "tick",
        FuncType::new(vec![ValType::I64], vec![ValType::I64]),
    );
    let g = mb.global(Mutability::Var, Value::I64(5));
    let f = mb.begin_func("f", FuncType::new(vec![ValType::I64], vec![ValType::I64]));
    {
        let mut b = mb.func_mut(f);
        // g = g + tick(x); return g
        b.emit(Instr::GlobalGet(g.0));
        let p = b.param(0);
        b.get(p).call(tick);
        b.emit(Instr::I64Add);
        b.emit(Instr::GlobalSet(g.0));
        b.emit(Instr::GlobalGet(g.0));
    }
    mb.export_func("f", f);
    let m = mb.finish();

    let total = Arc::new(AtomicI64::new(0));
    let t2 = Arc::clone(&total);
    let mut linker = Linker::new();
    linker.func("env", "tick", move |_, args| {
        let v = args[0].as_i64().unwrap();
        t2.fetch_add(v, Ordering::Relaxed);
        Ok(Some(Value::I64(v * 10)))
    });

    for e in engines() {
        total.store(0, Ordering::Relaxed);
        let loaded = e.load(&m).unwrap();
        let config = MemoryConfig::new(BoundsStrategy::Trap, 0, 0);
        let mut inst = loaded.instantiate(&config, &linker).unwrap();
        let out = inst.invoke("f", &[Value::I64(7)]).unwrap();
        assert_eq!(out, Some(Value::I64(75)), "{}", e.name());
        assert_eq!(total.load(Ordering::Relaxed), 7);
    }
}

#[test]
fn unreachable_and_stack_overflow() {
    let m = i32_module("f", 0, vec![Instr::Unreachable]);
    let e = JitEngine::new(JitProfile::wavm());
    let t = run_with(&e, &m, BoundsStrategy::Trap, "f", &[]).unwrap_err();
    assert_eq!(*t.kind(), TrapKind::Unreachable);

    // Infinite recursion must hit the stack check, not crash.
    let mut mb = ModuleBuilder::new();
    let f = mb.begin_func("f", FuncType::new(vec![], vec![]));
    {
        let mut b = mb.func_mut(f);
        b.call(f);
    }
    mb.export_func("f", f);
    let m = mb.finish();
    let t = run_with(&e, &m, BoundsStrategy::Trap, "f", &[]).unwrap_err();
    assert_eq!(*t.kind(), TrapKind::StackOverflow);
}

#[test]
fn float_comparisons_and_nan() {
    let mut mb = ModuleBuilder::new();
    let f = mb.begin_func(
        "lt",
        FuncType::new(vec![ValType::F64, ValType::F64], vec![ValType::I32]),
    );
    {
        let mut b = mb.func_mut(f);
        let (p0, p1) = (b.param(0), b.param(1));
        b.get(p0).get(p1).emit(Instr::F64Lt);
    }
    mb.export_func("lt", f);
    let m = mb.finish();
    assert_eq!(
        run1(&m, "lt", &[Value::F64(1.0), Value::F64(2.0)]),
        Some(Value::I32(1))
    );
    assert_eq!(
        run1(&m, "lt", &[Value::F64(2.0), Value::F64(1.0)]),
        Some(Value::I32(0))
    );
    assert_eq!(
        run1(&m, "lt", &[Value::F64(f64::NAN), Value::F64(1.0)]),
        Some(Value::I32(0))
    );
}

#[test]
fn conversions() {
    let mut mb = ModuleBuilder::new();
    let f = mb.begin_func("t", FuncType::new(vec![ValType::F64], vec![ValType::I32]));
    {
        let mut b = mb.func_mut(f);
        let p = b.param(0);
        b.get(p).emit(Instr::I32TruncF64S);
    }
    mb.export_func("t", f);
    let g = mb.begin_func("c", FuncType::new(vec![ValType::I32], vec![ValType::F64]));
    {
        let mut b = mb.func_mut(g);
        let p = b.param(0);
        b.get(p).emit(Instr::F64ConvertI32S);
    }
    mb.export_func("c", g);
    let m = mb.finish();
    assert_eq!(run1(&m, "t", &[Value::F64(-3.99)]), Some(Value::I32(-3)));
    assert_eq!(run1(&m, "c", &[Value::I32(-5)]), Some(Value::F64(-5.0)));
    let e = JitEngine::new(JitProfile::wavm());
    let t = run_with(&e, &m, BoundsStrategy::Trap, "t", &[Value::F64(1e99)]).unwrap_err();
    assert_eq!(*t.kind(), TrapKind::InvalidConversion);
}

#[test]
fn sub_width_memory_ops() {
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(1));
    let f = mb.begin_func("go", FuncType::new(vec![], vec![ValType::I64]));
    {
        let mut b = mb.func_mut(f);
        b.i32_const(10)
            .i32_const(0x1FF)
            .emit(Instr::I32Store8(MemArg::offset(0)));
        b.i32_const(20)
            .i64_const(-2)
            .emit(Instr::I64Store16(MemArg::offset(0)));
        // load8_u(10) + load16_s(20 as i64)
        b.i32_const(10).emit(Instr::I32Load8U(MemArg::offset(0)));
        b.emit(Instr::I64ExtendI32U);
        b.i32_const(20).emit(Instr::I64Load16S(MemArg::offset(0)));
        b.emit(Instr::I64Add);
    }
    mb.export_func("go", f);
    let m = mb.finish();
    assert_eq!(run1(&m, "go", &[]), Some(Value::I64(0xFF - 2)));
}

#[test]
fn v8_profile_tiers_up_and_keeps_answering() {
    // Hammer an export on the tiered engine long enough for the background
    // optimizer to swap code in; results must stay correct throughout.
    let mut mb = ModuleBuilder::new();
    let f = mb.begin_func("sq", FuncType::new(vec![ValType::I32], vec![ValType::I32]));
    {
        let mut b = mb.func_mut(f);
        let p = b.param(0);
        b.get(p).get(p).emit(Instr::I32Mul);
    }
    mb.export_func("sq", f);
    let m = mb.finish();
    let e = JitEngine::new(JitProfile::v8());
    let loaded = e.load(&m).unwrap();
    let config = MemoryConfig::new(BoundsStrategy::Mprotect, 0, 0);
    let mut inst = loaded.instantiate(&config, &Linker::new()).unwrap();
    let start = std::time::Instant::now();
    let mut i = 0i32;
    while start.elapsed() < std::time::Duration::from_millis(200) {
        let v = (i % 1000) + 1;
        let r = inst.invoke("sq", &[Value::I32(v)]).unwrap();
        assert_eq!(r, Some(Value::I32(v * v)));
        i += 1;
    }
    assert!(i > 100);
}
