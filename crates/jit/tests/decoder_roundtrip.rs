//! Decoder round-trip: every public `Asm` emitter, re-encoded bit-identical.
//!
//! Exercises the full instruction vocabulary of `crates/jit/src/asm.rs` —
//! including REX edge cases (r8–r15, sil/dil/spl/bpl), disp8/disp32
//! selection with rsp/rbp/r12/r13 bases, SIB index/scale combinations, and
//! xmm moves — then decodes the emitted bytes with `lb-verify` and asserts
//! that re-encoding reproduces the original byte stream exactly.

use lb_jit::asm::{Asm, Cc, Mem, Reg, Xmm, W};
use lb_verify::decode::decode_all;
use lb_verify::isa::encode;

const ALL_REGS: [Reg; 16] = [
    Reg::RAX,
    Reg::RCX,
    Reg::RDX,
    Reg::RBX,
    Reg::RSP,
    Reg::RBP,
    Reg::RSI,
    Reg::RDI,
    Reg::R8,
    Reg::R9,
    Reg::R10,
    Reg::R11,
    Reg::R12,
    Reg::R13,
    Reg::R14,
    Reg::R15,
];

const ALL_CC: [Cc; 16] = [
    Cc::O,
    Cc::No,
    Cc::B,
    Cc::Ae,
    Cc::E,
    Cc::Ne,
    Cc::Be,
    Cc::A,
    Cc::S,
    Cc::Ns,
    Cc::P,
    Cc::Np,
    Cc::L,
    Cc::Ge,
    Cc::Le,
    Cc::G,
];

/// Memory operands covering every ModRM/SIB/disp selection path: plain
/// bases (including the rsp/r12 SIB-forced and rbp/r13 disp-forced rows),
/// disp8 boundaries, disp32, and indexed forms at every scale.
fn mem_cases() -> Vec<Mem> {
    let mut v = Vec::new();
    for base in ALL_REGS {
        v.push(Mem::base(base, 0));
        v.push(Mem::base(base, 127));
        v.push(Mem::base(base, -128));
        v.push(Mem::base(base, 128));
        v.push(Mem::base(base, -129));
        v.push(Mem::base(base, 0x1234_5678));
    }
    for index in ALL_REGS {
        if index == Reg::RSP {
            continue; // rsp cannot be an index
        }
        for scale in [1u8, 2, 4, 8] {
            v.push(Mem {
                base: Reg::R14,
                index: Some((index, scale)),
                disp: 0x40,
            });
            v.push(Mem {
                base: Reg::RBP,
                index: Some((index, scale)),
                disp: 0,
            });
            v.push(Mem {
                base: Reg::RSP,
                index: Some((index, scale)),
                disp: -129,
            });
        }
    }
    v
}

fn roundtrip(what: &str, bytes: &[u8]) {
    let decoded = match decode_all(bytes) {
        Ok(d) => d,
        Err(e) => panic!("{what}: {e} (bytes: {bytes:02x?})"),
    };
    let mut re = Vec::new();
    for (_, inst) in &decoded {
        encode(inst, &mut re);
    }
    assert_eq!(
        re, bytes,
        "{what}: re-encoding differs\n decoded: {decoded:#x?}"
    );
}

fn check(what: &str, build: impl FnOnce(&mut Asm)) {
    let mut a = Asm::new();
    build(&mut a);
    roundtrip(what, &a.finish());
}

#[test]
fn moves_roundtrip() {
    check("mov_ri64 forms", |a| {
        for d in ALL_REGS {
            a.mov_ri64(d, 0);
            a.mov_ri64(d, 1);
            a.mov_ri64(d, u32::MAX as i64); // widest zero-extended form
            a.mov_ri64(d, -1); // sign-extended C7 form
            a.mov_ri64(d, i32::MIN as i64);
            a.mov_ri64(d, u32::MAX as i64 + 1); // smallest movabs
            a.mov_ri64(d, i64::MIN);
            a.mov_ri64(d, 0x1122_3344_5566_7788);
            a.mov_ri32(d, 0);
            a.mov_ri32(d, -1);
            a.mov_ri32(d, i32::MAX);
        }
    });
    check("mov_rr all pairs", |a| {
        for d in ALL_REGS {
            for s in ALL_REGS {
                a.mov_rr(W::W32, d, s);
                a.mov_rr(W::W64, d, s);
            }
        }
    });
    check("mov_rm/mov_mr/lea/cmp_rm over mem cases", |a| {
        for m in mem_cases() {
            a.mov_rm(W::W32, Reg::RAX, m);
            a.mov_rm(W::W64, Reg::R9, m);
            a.mov_mr(W::W32, m, Reg::RDI);
            a.mov_mr(W::W64, m, Reg::R15);
            a.lea(W::W32, Reg::RCX, m);
            a.lea(W::W64, Reg::R11, m);
            a.cmp_rm(W::W32, Reg::RDX, m);
            a.cmp_rm(W::W64, Reg::R8, m);
        }
    });
    check("mov_mi over mem cases and imm boundaries", |a| {
        for m in mem_cases() {
            a.mov_mi(m, 0);
            a.mov_mi(m, -1);
        }
        let m = Mem::base(Reg::RBP, -24);
        for v in [1, 127, -128, 128, -129, i32::MAX, i32::MIN] {
            a.mov_mi(m, v);
        }
    });
    check("narrow stores incl. forced-REX byte regs", |a| {
        let m = Mem::base(Reg::R14, 3);
        for s in ALL_REGS {
            a.mov_mr8(m, s); // spl/bpl/sil/dil need REX 0x40
            a.mov_mr16(m, s);
        }
        a.mov_mr8(Mem::base(Reg::RAX, 0), Reg::RCX); // no REX at all
    });
    check("widening loads", |a| {
        for m in [
            Mem::base(Reg::R14, 0),
            Mem::base(Reg::RBP, -8),
            Mem {
                base: Reg::R14,
                index: Some((Reg::R10, 4)),
                disp: 1000,
            },
        ] {
            for d in [Reg::RAX, Reg::R12] {
                a.movzx8(d, m);
                a.movzx16(d, m);
                for w in [W::W32, W::W64] {
                    a.movsx8(w, d, m);
                    a.movsx16(w, d, m);
                }
                a.movsxd_m(d, m);
            }
        }
        for d in ALL_REGS {
            for s in ALL_REGS {
                a.movsxd_r(d, s);
            }
        }
    });
}

#[test]
fn alu_roundtrip() {
    check("alu rr families", |a| {
        for d in ALL_REGS {
            for s in ALL_REGS {
                for w in [W::W32, W::W64] {
                    a.add_rr(w, d, s);
                    a.sub_rr(w, d, s);
                    a.and_rr(w, d, s);
                    a.or_rr(w, d, s);
                    a.xor_rr(w, d, s);
                    a.cmp_rr(w, d, s);
                    a.test_rr(w, d, s);
                    a.imul_rr(w, d, s);
                }
            }
        }
    });
    check("alu ri imm8/imm32 boundaries", |a| {
        for d in ALL_REGS {
            for w in [W::W32, W::W64] {
                for v in [0, 1, -1, 127, -128, 128, -129, i32::MAX, i32::MIN] {
                    a.add_ri(w, d, v);
                    a.sub_ri(w, d, v);
                    a.and_ri(w, d, v);
                    a.cmp_ri(w, d, v);
                }
            }
        }
    });
    check("unary + division + shifts + bitcnt", |a| {
        for w in [W::W32, W::W64] {
            a.cdq_cqo(w);
            for r in ALL_REGS {
                a.neg(w, r);
                a.idiv(w, r);
                a.div(w, r);
                a.shl_cl(w, r);
                a.shr_cl(w, r);
                a.sar_cl(w, r);
                a.rol_cl(w, r);
                a.ror_cl(w, r);
                a.shl_i(w, r, 1);
                a.shl_i(w, r, 63);
                a.shr_i(w, r, 31);
                for s in [Reg::RAX, Reg::R13] {
                    a.popcnt(w, r, s);
                    a.lzcnt(w, r, s);
                    a.tzcnt(w, r, s);
                }
            }
        }
    });
    check("setcc/cmov all conditions", |a| {
        for cc in ALL_CC {
            for d in ALL_REGS {
                a.setcc(cc, d); // d.low() >= 4 forces REX
                a.cmov(W::W32, cc, d, Reg::R9);
                a.cmov(W::W64, cc, Reg::RSI, d);
            }
        }
    });
}

#[test]
fn control_flow_roundtrip() {
    check("branches forward and backward", |a| {
        let top = a.label();
        let out = a.label();
        a.bind(top);
        a.cmp_ri(W::W32, Reg::RAX, 10);
        for cc in ALL_CC {
            a.jcc(cc, out);
        }
        a.jmp(top);
        a.bind(out);
        a.ret();
    });
    check("calls, stack ops, traps, padding", |a| {
        for r in ALL_REGS {
            a.call_r(r);
            a.push(r);
            a.pop(r);
        }
        a.call_m(Mem::base(Reg::R15, 24));
        a.call_m(Mem::base(Reg::RSP, 0));
        a.ud2_trap(0);
        a.ud2_trap(255);
        a.nop();
        a.ret();
    });
}

#[test]
fn sse_roundtrip() {
    let xmms: Vec<Xmm> = (0..16).map(Xmm).collect();
    check("float load/store over mem cases", |a| {
        for m in mem_cases() {
            for &x in &[Xmm(0), Xmm(7), Xmm(8), Xmm(15)] {
                for double in [false, true] {
                    a.fload(double, x, m);
                    a.fstore(double, m, x);
                }
            }
        }
    });
    check("xmm register forms", |a| {
        for &d in &xmms {
            for &s in &xmms {
                a.fmov(d, s);
                for double in [false, true] {
                    for op in [0x58, 0x5C, 0x59, 0x5E, 0x51] {
                        a.farith(double, op, d, s);
                    }
                    a.ucomis(double, d, s);
                }
                a.cvt_d2s(d, s);
                a.cvt_s2d(d, s);
                for mode in [0, 1, 2, 3] {
                    a.rounds(true, d, s, mode);
                    a.rounds(false, d, s, mode);
                }
                a.pxor(d, s);
                for op in [0x54, 0x55, 0x56, 0x57] {
                    a.fbit(op, d, s);
                }
            }
        }
    });
    check("int/float transfers", |a| {
        for &x in &xmms {
            for r in ALL_REGS {
                for w in [W::W32, W::W64] {
                    for double in [false, true] {
                        a.cvtt_f2i(double, w, r, x);
                        a.cvt_i2f(double, w, x, r);
                    }
                    a.movq_xr(w, x, r);
                    a.movq_rx(w, r, x);
                }
            }
        }
    });
}

#[test]
fn decoded_stream_is_dense() {
    // decode_all must consume every byte with no gaps or overlaps.
    let mut a = Asm::new();
    a.push(Reg::RBP);
    a.mov_rr(W::W64, Reg::RBP, Reg::RSP);
    a.mov_rm(W::W64, Reg::R14, Mem::base(Reg::R15, 0));
    a.movzx8(Reg::RAX, Mem::base(Reg::R14, 0x1000));
    a.pop(Reg::RBP);
    a.ret();
    let bytes = a.finish();
    let decoded = decode_all(&bytes).unwrap();
    let mut pos = 0;
    for (off, inst) in &decoded {
        assert_eq!(*off, pos, "gap before {inst:?}");
        let mut one = Vec::new();
        encode(inst, &mut one);
        pos += one.len();
    }
    assert_eq!(pos, bytes.len());
}
